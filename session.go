package sprinkler

import (
	"context"
	"errors"
	"fmt"

	"sprinkler/internal/metrics"
	"sprinkler/internal/ssd"
)

// Session is an online simulation: callers submit requests while the run
// is in progress, advance simulated time in windows, observe mid-run
// metrics with Snapshot, and finish with Drain. Unlike Device.Run — which
// replays a complete workload — a Session interleaves admission and
// observation, which is how warmup/measurement-window experiments and
// live dashboards drive the simulator.
//
// A Session is not safe for concurrent use; it advances a single
// deterministic event loop.
type Session struct {
	dev       *ssd.Device
	cfg       Config
	nextID    int64
	submitted int64
	closed    bool

	// pool recycles completed request objects so long-lived sessions
	// admit at zero steady-state allocations per I/O. An arena-backed
	// session (WithArena) borrows the pooled device's own free list, so
	// consecutive sessions on one recycled device warm from a hot pool.
	pool *ioPool

	// pub/arena are set when the session's device was checked out of a
	// DeviceArena; Drain hands it back.
	pub   *Device
	arena *DeviceArena
}

// Open builds a Session from the configuration, validating it first. With
// WithArena, the session's device is checked out of the arena (recycled
// from a previous run or session on the same topology) and returned to it
// on Drain.
func Open(cfg Config, opts ...Option) (*Session, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if o.snapshot != nil {
		if o.precondition != nil {
			return nil, fmt.Errorf("sprinkler: Open with both WithSnapshot and WithPrecondition (the snapshot already embodies a warm-up)")
		}
		if !o.snapshot.CompatibleConfig(cfg) {
			return nil, fmt.Errorf("sprinkler: session config differs from the snapshot's beyond the scheduler and host-side observation knobs")
		}
	}
	s := &Session{cfg: cfg}
	if o.arena != nil {
		pub, err := o.arena.Get(cfg)
		if err != nil {
			return nil, err
		}
		s.pub, s.arena = pub, o.arena
		s.dev = pub.inner
		s.pool = &pub.adapter.pool
	} else {
		icfg, sch, err := cfg.toInternal()
		if err != nil {
			return nil, err
		}
		inner, err := ssd.New(icfg, sch)
		if err != nil {
			return nil, err
		}
		s.dev = inner
		s.pool = new(ioPool)
	}
	if snap := o.snapshot; snap != nil {
		// On error the device is tainted (possibly part-hydrated): it is
		// dropped here, never handed back to the arena.
		if err := snap.hydrateInner(s.dev, cfg); err != nil {
			return nil, err
		}
	}
	if p := o.precondition; p != nil {
		s.dev.Precondition(p.FillFrac, p.ChurnFrac, p.Seed)
	}
	s.dev.SetIORetire(s.pool.put)
	return s, nil
}

// errClosed reports use after Drain.
var errClosed = errors.New("sprinkler: session already drained")

// Submit admits one request into the running simulation. Arrival times in
// the simulated past are clamped to the current simulation time, so
// callers may submit with ArrivalNS zero and let submission order decide.
func (s *Session) Submit(r Request) error {
	if s.closed {
		return errClosed
	}
	io, err := s.pool.build(s.nextID, r)
	if err != nil {
		return err
	}
	s.nextID++
	s.submitted++
	s.dev.Submit(io)
	return nil
}

// Feed pulls up to n requests from src into the session (all of them when
// n <= 0), returning how many were admitted. Feeding schedules arrivals;
// interleave with Advance to bound the number outstanding.
func (s *Session) Feed(src Source, n int64) (int64, error) {
	if s.closed {
		return 0, errClosed
	}
	var fed int64
	for n <= 0 || fed < n {
		r, ok := src.Next()
		if !ok {
			if err := sourceErr(src); err != nil {
				return fed, err
			}
			return fed, nil
		}
		if err := s.Submit(r); err != nil {
			return fed, err
		}
		fed++
	}
	return fed, nil
}

// Advance runs the simulation for dNS more nanoseconds of simulated time,
// then returns with later events still queued. The windowing primitive:
// submit, advance, snapshot, repeat.
func (s *Session) Advance(dNS int64) error {
	if s.closed {
		return errClosed
	}
	if dNS < 0 {
		return fmt.Errorf("sprinkler: Advance by negative duration %d", dNS)
	}
	s.dev.Advance(s.dev.Now() + simTime(dNS))
	return nil
}

// NowNS returns the current simulation time in nanoseconds.
func (s *Session) NowNS() int64 { return int64(s.dev.Now()) }

// Inflight reports how many submitted I/Os have arrived but not yet
// completed.
func (s *Session) Inflight() int { return s.dev.Inflight() }

// Drain runs every outstanding event to completion and returns the final
// measurements. The session cannot be used afterwards. On context
// cancellation it returns the snapshot so far with ctx's error, and the
// session stays open.
func (s *Session) Drain(ctx context.Context) (*Result, error) {
	if s.closed {
		return nil, errClosed
	}
	res, err := s.dev.Drain(ctx)
	if err != nil {
		if res != nil {
			return publicResult(res), err
		}
		return nil, err
	}
	s.closed = true
	if s.arena != nil {
		// The run drained: the device is pristine after its next Reset.
		// Uninstall our retire hook before recycling so the pooled device
		// does not call into a dead session.
		s.dev.SetIORetire(nil)
		s.arena.Put(s.pub)
		s.pub, s.arena = nil, nil
	}
	return publicResult(res), nil
}

// Discard abandons the session without draining: the session is closed
// immediately and its device is dropped rather than recycled — a device
// abandoned mid-run holds live simulation state no arena may reuse. The
// forced-reclamation path for servers expiring a session whose Drain did
// not complete in time; prefer Drain, which finishes the run and returns
// an arena-checked-out device to its pool.
func (s *Session) Discard() {
	if s.closed {
		return
	}
	s.closed = true
	s.dev.SetIORetire(nil)
	s.pub, s.arena = nil, nil
}

// Snapshot reports the measurements accumulated so far without advancing
// the simulation. Successive snapshots are monotone in SimTimeNS,
// IOsSubmitted, IOsCompleted and byte counts; windowed rates come from
// Since.
func (s *Session) Snapshot() Snapshot {
	r := s.dev.Snapshot()
	return snapshotOf(r, s.submitted, s.dev.Inflight())
}

// Snapshot is a cheap point-in-time view of a running simulation.
// Cumulative counters are exact; rates are averaged from simulation start.
// Subtract two snapshots with Since for warmup-excluded measurement
// windows.
//
// Snapshot (like Result) carries explicit JSON field tags: the encoding is
// a stable wire format — the serving daemon streams windowed snapshots
// over it — pinned by the golden test in wire_test.go. The raw window
// integrals are part of the format so a decoded Snapshot still supports
// Since on the client side.
type Snapshot struct {
	// SimTimeNS is the simulation clock.
	SimTimeNS int64 `json:"simTimeNS"`

	IOsSubmitted int64 `json:"iosSubmitted"`
	IOsCompleted int64 `json:"iosCompleted"`
	Inflight     int   `json:"inflight"`

	BytesRead    int64 `json:"bytesRead"`
	BytesWritten int64 `json:"bytesWritten"`

	// TotalLatencyNS sums device-level response times over completed
	// I/Os, so windowed average latency is derivable from deltas.
	TotalLatencyNS int64 `json:"totalLatencyNS"`

	// BandwidthKBps, IOPS and AvgLatencyNS are cumulative averages.
	BandwidthKBps float64 `json:"bandwidthKBps"`
	IOPS          float64 `json:"iops"`
	AvgLatencyNS  int64   `json:"avgLatencyNS"`

	// ChipUtilization and QueueStallFraction are cumulative fractions.
	ChipUtilization    float64 `json:"chipUtilization"`
	QueueStallFraction float64 `json:"queueStallFraction"`

	GCRuns int64 `json:"gcRuns"`

	// Raw integrals for windowed utilization/stall arithmetic (Since).
	BusyChipIntegral float64 `json:"rawBusyChipIntegral"`
	SysBusyNS        int64   `json:"rawSysBusyNS"`
	QueueFullNS      int64   `json:"rawQueueFullNS"`
	Chips            int     `json:"chips"`

	// Fault-injection counters, all zero (and omitted on the wire) when
	// fault injection is disabled. DegradedMode reports the drive's
	// current read-only state, not a delta.
	ReadRetries   int64 `json:"readRetries,omitempty"`
	ProgramFails  int64 `json:"programFails,omitempty"`
	RetiredBlocks int64 `json:"retiredBlocks,omitempty"`
	FailedIOs     int64 `json:"failedIOs,omitempty"`
	DegradedMode  bool  `json:"degradedMode,omitempty"`
}

// snapshotOf flattens an internal mid-run result.
func snapshotOf(r *metrics.Result, submitted int64, inflight int) Snapshot {
	snap := Snapshot{
		SimTimeNS:          int64(r.Duration),
		IOsSubmitted:       submitted,
		IOsCompleted:       r.IOsCompleted,
		Inflight:           inflight,
		BytesRead:          r.BytesRead,
		BytesWritten:       r.BytesWritten,
		TotalLatencyNS:     int64(r.Latency.Sum()),
		BandwidthKBps:      r.BandwidthKBps(),
		IOPS:               r.IOPS(),
		AvgLatencyNS:       int64(r.AvgLatency()),
		ChipUtilization:    r.ChipUtilization,
		QueueStallFraction: r.QueueStallFraction(),
		GCRuns:             r.GC.GCRuns,
		BusyChipIntegral:   r.BusyChipIntegral,
		SysBusyNS:          int64(r.SysBusyTime),
		QueueFullNS:        int64(r.QueueFullTime),
		Chips:              r.Chips,
		ReadRetries:        r.ReadRetries,
		ProgramFails:       r.ProgramFails,
		RetiredBlocks:      r.GC.RetiredBlocks,
		FailedIOs:          r.FailedIOs,
		DegradedMode:       r.DegradedMode,
	}
	return snap
}

// Since returns the measurement window between prev and s: counters are
// deltas, rates and fractions are recomputed over the window. Use it to
// discard warmup:
//
//	warm := sess.Snapshot()          // after the warmup window
//	...                              // measured work
//	win := sess.Snapshot().Since(warm)
func (s Snapshot) Since(prev Snapshot) Snapshot {
	w := Snapshot{
		SimTimeNS:        s.SimTimeNS - prev.SimTimeNS,
		IOsSubmitted:     s.IOsSubmitted - prev.IOsSubmitted,
		IOsCompleted:     s.IOsCompleted - prev.IOsCompleted,
		Inflight:         s.Inflight,
		BytesRead:        s.BytesRead - prev.BytesRead,
		BytesWritten:     s.BytesWritten - prev.BytesWritten,
		TotalLatencyNS:   s.TotalLatencyNS - prev.TotalLatencyNS,
		GCRuns:           s.GCRuns - prev.GCRuns,
		BusyChipIntegral: s.BusyChipIntegral - prev.BusyChipIntegral,
		SysBusyNS:        s.SysBusyNS - prev.SysBusyNS,
		QueueFullNS:      s.QueueFullNS - prev.QueueFullNS,
		Chips:            s.Chips,
		ReadRetries:      s.ReadRetries - prev.ReadRetries,
		ProgramFails:     s.ProgramFails - prev.ProgramFails,
		RetiredBlocks:    s.RetiredBlocks - prev.RetiredBlocks,
		FailedIOs:        s.FailedIOs - prev.FailedIOs,
		DegradedMode:     s.DegradedMode,
	}
	if w.SimTimeNS > 0 {
		secs := float64(w.SimTimeNS) / 1e9
		w.BandwidthKBps = float64(w.BytesRead+w.BytesWritten) / 1024 / secs
		w.IOPS = float64(w.IOsCompleted) / secs
		w.QueueStallFraction = float64(w.QueueFullNS) / float64(w.SimTimeNS)
	}
	if w.IOsCompleted > 0 {
		w.AvgLatencyNS = w.TotalLatencyNS / w.IOsCompleted
	}
	if w.SysBusyNS > 0 && w.Chips > 0 {
		w.ChipUtilization = w.BusyChipIntegral / (float64(w.Chips) * float64(w.SysBusyNS))
	}
	return w
}
