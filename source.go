package sprinkler

import (
	"fmt"
	"io"
	"math"

	"sprinkler/internal/req"
	"sprinkler/internal/sim"
	"sprinkler/internal/trace"
)

// Source supplies host I/O requests in arrival order, one at a time.
// Sources are how workloads reach a Device: a slice replay, a CSV trace
// file, a synthetic generator (possibly infinite), or an open-loop
// arrival wrapper. The device pulls the source one request ahead of the
// simulation clock, so the request stream itself needs O(1) memory no
// matter how long the workload is.
//
// A Source may additionally implement `Err() error`; Run and Session.Feed
// consult it once Next reports exhaustion, so scanning sources (CSV) can
// surface mid-stream failures.
type Source interface {
	// Next returns the next request and true, or false when the workload
	// is exhausted.
	Next() (Request, bool)
}

// errSource is the optional failure-reporting side of a Source.
type errSource interface{ Err() error }

// sourceErr extracts a source's terminal error, if it reports one.
func sourceErr(s Source) error {
	if es, ok := s.(errSource); ok {
		return es.Err()
	}
	return nil
}

// Resettable is the optional rewind side of a Source. Reset rewinds the
// source to replay from the beginning, emitting exactly the stream a fresh
// construction with the given seed would produce — which is what lets a
// sweep pool one source across cells (DeviceArena.GetSource) instead of
// rebuilding it per cell.
//
// Every built-in source and combinator implements it. The seed discipline
// for composites: a wrapper resets its own generator state from seed and
// propagates seed unchanged to a single inner source; multi-child
// combinators (Mix, Phases) reset child i with SubSeed(seed, i), and their
// builders must construct child i with the same derivation for reset
// parity to hold (the spec-level constructors do). Sources with baked-in
// content (SliceSource; a CSV stream) replay the same requests regardless
// of seed.
type Resettable interface {
	// Reset rewinds the source for reuse. It fails when the source cannot
	// replay (e.g. a CSV source over a non-seekable reader).
	Reset(seed uint64) error
}

// ResetSource rewinds a source for reuse, failing descriptively when the
// source does not support replay.
func ResetSource(src Source, seed uint64) error {
	r, ok := src.(Resettable)
	if !ok {
		return fmt.Errorf("sprinkler: source %T is not resettable", src)
	}
	return r.Reset(seed)
}

// SubSeed derives the seed of the i-th child of a composite source from
// the composite's seed. Mix and Phases reset child i with SubSeed(seed, i);
// hand-built composites must construct child i from the same derivation if
// they are to be pooled across seeds (the SourceSpec combinator
// constructors follow it automatically).
func SubSeed(seed uint64, i int) uint64 {
	s := (seed ^ (uint64(i+1) * 0x9E3779B97F4A7C15)) * 0x2545F4914F6CDD1D
	if s == 0 {
		s = 1
	}
	return s
}

// SliceSource replays a fully materialized request list.
func SliceSource(requests []Request) Source {
	return &sliceSource{reqs: requests}
}

type sliceSource struct {
	reqs []Request
	i    int
}

func (s *sliceSource) Next() (Request, bool) {
	if s.i >= len(s.reqs) {
		return Request{}, false
	}
	r := s.reqs[s.i]
	s.i++
	return r, true
}

// Reset implements Resettable: the slice replays from the start. The
// content is baked in, so the seed is ignored.
func (s *sliceSource) Reset(uint64) error {
	s.i = 0
	return nil
}

// Limit caps a source at n requests. A non-positive n yields an empty
// source. Use it to take a measurable slice of an infinite generator.
func Limit(src Source, n int64) Source {
	return &limitSource{src: src, n: n, left: n}
}

type limitSource struct {
	src  Source
	n    int64
	left int64
}

func (s *limitSource) Next() (Request, bool) {
	if s.left <= 0 {
		return Request{}, false
	}
	s.left--
	return s.src.Next()
}

func (s *limitSource) Err() error { return sourceErr(s.src) }

// Reset implements Resettable, restoring the full budget and rewinding the
// inner source.
func (s *limitSource) Reset(seed uint64) error {
	if err := ResetSource(s.src, seed); err != nil {
		return err
	}
	s.left = s.n
	return nil
}

// CSVSource streams requests from a CSV trace (arrival_ns,op,lpn,pages;
// '#' comments), parsing one line per Next call — a multi-gigabyte trace
// file replays in constant memory. Check Err after the run; Device.Run
// does so automatically.
type CSVSource struct {
	src io.Reader
	rd  *trace.Reader
	err error
}

// NewCSVSource wraps an io.Reader producing the repository's CSV trace
// format. When the reader is also an io.Seeker (a file, a bytes.Reader),
// the source is resettable: Reset seeks back to the start and replays.
func NewCSVSource(r io.Reader) *CSVSource {
	return &CSVSource{src: r, rd: trace.NewReader(r)}
}

// Reset implements Resettable by seeking the underlying reader back to the
// beginning (the trace's content is fixed, so the seed is ignored). It
// fails when the reader does not support seeking.
func (s *CSVSource) Reset(uint64) error {
	sk, ok := s.src.(io.Seeker)
	if !ok {
		return fmt.Errorf("sprinkler: CSV source over non-seekable %T cannot replay", s.src)
	}
	if _, err := sk.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("sprinkler: CSV source rewind: %w", err)
	}
	s.rd.Reset(s.src)
	s.err = nil
	return nil
}

// Next implements Source.
func (s *CSVSource) Next() (Request, bool) {
	if s.err != nil {
		return Request{}, false
	}
	rec, err := s.rd.Next()
	if err == io.EOF {
		return Request{}, false
	}
	if err != nil {
		s.err = err
		return Request{}, false
	}
	return Request{
		ArrivalNS: int64(rec.Arrival),
		Write:     rec.Kind == req.Write,
		LPN:       int64(rec.LPN),
		Pages:     rec.Pages,
	}, true
}

// Err reports the first parse failure, or nil.
func (s *CSVSource) Err() error { return s.err }

// WriteCSV emits requests in the CSV trace format read by NewCSVSource.
func WriteCSV(w io.Writer, requests []Request) error {
	recs := make([]trace.Record, len(requests))
	for i, r := range requests {
		kind := req.Read
		if r.Write {
			kind = req.Write
		}
		recs[i] = trace.Record{
			Arrival: simTime(r.ArrivalNS),
			Kind:    kind,
			LPN:     req.LPN(r.LPN),
			Pages:   r.Pages,
		}
	}
	return trace.Write(w, recs)
}

// WorkloadSpec parameterizes a synthetic Table 1 workload source.
type WorkloadSpec struct {
	// Name picks the Table 1 workload (see Workloads()).
	Name string
	// Requests bounds the stream; <= 0 makes it infinite (wrap with
	// Limit, cancel the run's context, or drive it in session windows).
	Requests int
	// MaxPages caps one request's length in pages (default 1024).
	MaxPages int
	// Seed perturbs generation; 0 derives a stable seed from Name.
	Seed uint64
}

// NewWorkloadSource builds an incremental generator for a named Table 1
// workload, sized for this configuration's logical space. Generation is
// deterministic and O(1) in memory, so the stream may be unbounded.
func (c Config) NewWorkloadSource(spec WorkloadSpec) (Source, error) {
	w, ok := trace.ByName(spec.Name)
	if !ok {
		return nil, fmt.Errorf("sprinkler: unknown workload %q (see Workloads())", spec.Name)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	icfg, err := c.internalConfig()
	if err != nil {
		return nil, err
	}
	g, err := trace.NewStream(w, trace.GenConfig{
		Instructions: spec.Requests,
		LogicalPages: icfg.Geo.TotalPages() * 9 / 10,
		PageSize:     icfg.Geo.PageSize,
		MaxPages:     spec.MaxPages,
		AlignStride:  int64(icfg.Geo.NumChips()),
		Seed:         spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &streamSource{g: g}, nil
}

type streamSource struct {
	g *trace.Stream
}

func (s *streamSource) Next() (Request, bool) {
	rec, ok := s.g.NextRecord()
	if !ok {
		return Request{}, false
	}
	return Request{
		ArrivalNS: int64(rec.Arrival),
		Write:     rec.Kind == req.Write,
		LPN:       int64(rec.LPN),
		Pages:     rec.Pages,
	}, true
}

// Reset implements Resettable: the generator rewinds and replays as if
// built with the given seed (zero derives the stable per-workload seed).
func (s *streamSource) Reset(seed uint64) error {
	s.g.Reset(seed)
	return nil
}

// FixedSpec describes a fixed-transfer-size workload for sensitivity
// sweeps: Requests same-size requests, sequential or uniformly random
// over the logical space, all arriving at t=0 (closed loop — the
// device-level queue's backpressure paces the host).
type FixedSpec struct {
	Requests   int
	Pages      int
	Write      bool
	Sequential bool
	Seed       uint64
}

// NewFixedSource builds a closed-loop fixed-size source sized for this
// configuration's logical space. The source generates incrementally (O(1)
// memory however many requests) and is resettable for pooled reuse.
func (c Config) NewFixedSource(spec FixedSpec) (Source, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	icfg, err := c.internalConfig()
	if err != nil {
		return nil, err
	}
	kind := req.Read
	if spec.Write {
		kind = req.Write
	}
	g, err := trace.NewFixedStream(trace.FixedConfig{
		Count:        spec.Requests,
		Pages:        spec.Pages,
		Kind:         kind,
		Sequential:   spec.Sequential,
		LogicalPages: logicalSpan(icfg.LogicalPages, icfg.Geo.TotalPages()),
		Seed:         spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &fixedSource{g: g}, nil
}

type fixedSource struct {
	g *trace.FixedStream
}

func (s *fixedSource) Next() (Request, bool) {
	rec, ok := s.g.NextRecord()
	if !ok {
		return Request{}, false
	}
	return Request{
		ArrivalNS: int64(rec.Arrival),
		Write:     rec.Kind == req.Write,
		LPN:       int64(rec.LPN),
		Pages:     rec.Pages,
	}, true
}

// Reset implements Resettable.
func (s *fixedSource) Reset(seed uint64) error {
	s.g.Reset(seed)
	return nil
}

// logicalSpan resolves the logical address space (default 90% of
// physical, leaving over-provisioning headroom).
func logicalSpan(configured, physical int64) int64 {
	if configured > 0 {
		return configured
	}
	return physical * 9 / 10
}

// Poisson turns any source into an open-loop arrival process: request
// contents pass through unchanged while arrival times are rewritten as a
// Poisson process with the given mean rate (requests per simulated
// second). This decouples submission from completion — the paper's
// heavy-traffic regime, where the host does not wait for the device.
func Poisson(src Source, requestsPerSec float64, seed uint64) Source {
	return &poissonSource{src: src, rate: requestsPerSec, rng: sim.NewRand(seed + 0x9E37)}
}

type poissonSource struct {
	src  Source
	rate float64
	rng  *sim.Rand
	now  float64 // next arrival, in ns
}

// Reset implements Resettable: the arrival process restarts at t=0 with
// the given seed (applying the constructor's seed derivation) and the
// inner source rewinds with the same seed.
func (s *poissonSource) Reset(seed uint64) error {
	if err := ResetSource(s.src, seed); err != nil {
		return err
	}
	s.rng.Reseed(seed + 0x9E37)
	s.now = 0
	return nil
}

func (s *poissonSource) Next() (Request, bool) {
	r, ok := s.src.Next()
	if !ok {
		return Request{}, false
	}
	r.ArrivalNS = int64(s.now)
	if s.rate > 0 {
		// Exponential inter-arrival with mean 1/rate seconds.
		u := s.rng.Float64()
		s.now += -math.Log(1-u) / s.rate * 1e9
	}
	return r, true
}

func (s *poissonSource) Err() error { return sourceErr(s.src) }

// ioPool recycles retired request objects. The device hands each host
// I/O back (SetIORetire) once it has fully completed and left every
// internal structure; the next admission reuses it via req.IO.Reset, so
// steady-state streaming performs zero per-request heap allocations —
// the request working set is bounded by the peak in-flight count, not
// the workload length.
type ioPool struct {
	free []*req.IO
}

// ioPoolMax bounds retained free objects. In-flight requests are bounded
// by the device queue plus the admission backlog, so the pool rarely
// grows past a few hundred; the cap just keeps a pathological burst from
// pinning memory forever.
const ioPoolMax = 4096

// build converts one public request, validating it, recycling a retired
// I/O when one is available.
func (p *ioPool) build(id int64, r Request) (*req.IO, error) {
	if r.Pages <= 0 {
		return nil, fmt.Errorf("sprinkler: request %d has %d pages", id, r.Pages)
	}
	if r.LPN < 0 {
		return nil, fmt.Errorf("sprinkler: request %d has negative LPN %d", id, r.LPN)
	}
	kind := req.Read
	if r.Write {
		kind = req.Write
	}
	var io *req.IO
	if n := len(p.free); n > 0 {
		io = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		io.Reset(id, kind, req.LPN(r.LPN), r.Pages, simTime(r.ArrivalNS))
	} else {
		io = req.NewIO(id, kind, req.LPN(r.LPN), r.Pages, simTime(r.ArrivalNS))
	}
	io.FUA = r.FUA
	return io, nil
}

// put returns a retired I/O to the pool (the device's SetIORetire hook).
func (p *ioPool) put(io *req.IO) {
	if len(p.free) < ioPoolMax {
		p.free = append(p.free, io)
	}
}

// ioAdapter bridges a public Source to the internal device feed: it
// assigns sequential IDs, validates each request, recycles retired
// request objects, and records the source's terminal error so Run can
// surface it.
type ioAdapter struct {
	src  Source
	next int64
	err  error
	pool ioPool
}

func (a *ioAdapter) Next() (*req.IO, bool) {
	r, ok := a.src.Next()
	if !ok {
		a.err = sourceErr(a.src)
		return nil, false
	}
	io, err := a.pool.build(a.next, r)
	if err != nil {
		a.err = err
		return nil, false
	}
	a.next++
	return io, true
}
