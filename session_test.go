package sprinkler_test

import (
	"context"
	"testing"

	"sprinkler"
)

// TestSessionSnapshotMonotonic interleaves submission, time windows and
// snapshots, checking every cumulative counter is non-decreasing.
func TestSessionSnapshotMonotonic(t *testing.T) {
	sess, err := sprinkler.Open(smallConfig(sprinkler.SPK3))
	if err != nil {
		t.Fatal(err)
	}
	var prev sprinkler.Snapshot
	lpn := int64(0)
	for w := 0; w < 8; w++ {
		for i := 0; i < 40; i++ {
			if err := sess.Submit(sprinkler.Request{LPN: lpn, Pages: 4, Write: w%2 == 0}); err != nil {
				t.Fatal(err)
			}
			lpn += 4
		}
		if err := sess.Advance(2_000_000); err != nil { // 2 ms windows
			t.Fatal(err)
		}
		snap := sess.Snapshot()
		if snap.SimTimeNS < prev.SimTimeNS {
			t.Fatalf("window %d: sim time went backwards: %d < %d", w, snap.SimTimeNS, prev.SimTimeNS)
		}
		if snap.IOsCompleted < prev.IOsCompleted {
			t.Fatalf("window %d: completions went backwards", w)
		}
		if snap.IOsSubmitted < prev.IOsSubmitted {
			t.Fatalf("window %d: submissions went backwards", w)
		}
		if snap.BytesRead < prev.BytesRead || snap.BytesWritten < prev.BytesWritten {
			t.Fatalf("window %d: byte counters went backwards", w)
		}
		if snap.TotalLatencyNS < prev.TotalLatencyNS {
			t.Fatalf("window %d: latency sum went backwards", w)
		}
		if snap.IOsCompleted > snap.IOsSubmitted {
			t.Fatalf("window %d: completed %d > submitted %d", w, snap.IOsCompleted, snap.IOsSubmitted)
		}
		prev = snap
	}

	res, err := sess.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.IOsCompleted != 8*40 {
		t.Fatalf("drained %d/%d I/Os", res.IOsCompleted, 8*40)
	}
	final := sess.Snapshot()
	if final.IOsCompleted != 8*40 || final.Inflight != 0 {
		t.Fatalf("final snapshot inconsistent: %+v", final)
	}
}

// TestSessionWindowSince measures a window with warmup excluded.
func TestSessionWindowSince(t *testing.T) {
	sess, err := sprinkler.Open(smallConfig(sprinkler.SPK2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := sess.Submit(sprinkler.Request{LPN: int64(i * 8), Pages: 8}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Advance(1_000_000_000); err != nil {
		t.Fatal(err)
	}
	warm := sess.Snapshot()
	if warm.IOsCompleted == 0 {
		t.Fatal("warmup window completed nothing")
	}

	for i := 100; i < 300; i++ {
		if err := sess.Submit(sprinkler.Request{LPN: int64(i * 8), Pages: 8}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sess.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	win := sess.Snapshot().Since(warm)
	if win.IOsCompleted != 300-warm.IOsCompleted {
		t.Fatalf("window completions %d, want %d", win.IOsCompleted, 300-warm.IOsCompleted)
	}
	if win.SimTimeNS <= 0 {
		t.Fatal("window has no duration")
	}
	if win.BandwidthKBps <= 0 || win.IOPS <= 0 || win.AvgLatencyNS <= 0 {
		t.Fatalf("degenerate window rates: %+v", win)
	}
	if win.BytesRead != win.IOsCompleted*8*2048 {
		t.Fatalf("window bytes %d for %d I/Os", win.BytesRead, win.IOsCompleted)
	}
}

// TestSessionFeed streams a source into a session in chunks.
func TestSessionFeed(t *testing.T) {
	cfg := smallConfig(sprinkler.VAS)
	sess, err := sprinkler.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := cfg.NewWorkloadSource(sprinkler.WorkloadSpec{Name: "proj0", Requests: 90, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for {
		n, err := sess.Feed(src, 25)
		if err != nil {
			t.Fatal(err)
		}
		total += n
		if n == 0 {
			break
		}
		if err := sess.Advance(1_000_000); err != nil {
			t.Fatal(err)
		}
	}
	if total != 90 {
		t.Fatalf("fed %d/90", total)
	}
	res, err := sess.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.IOsCompleted != 90 {
		t.Fatalf("completed %d/90", res.IOsCompleted)
	}
}

// TestSessionUseAfterDrain rejects operations on a drained session.
func TestSessionUseAfterDrain(t *testing.T) {
	sess, err := sprinkler.Open(smallConfig(sprinkler.VAS))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(sprinkler.Request{Pages: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(sprinkler.Request{Pages: 2}); err == nil {
		t.Fatal("Submit accepted after Drain")
	}
	if err := sess.Advance(1); err == nil {
		t.Fatal("Advance accepted after Drain")
	}
	if _, err := sess.Drain(context.Background()); err == nil {
		t.Fatal("second Drain accepted")
	}
}

// TestSessionRejectsBadRequest validates requests at submission.
func TestSessionRejectsBadRequest(t *testing.T) {
	sess, err := sprinkler.Open(smallConfig(sprinkler.VAS))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Submit(sprinkler.Request{Pages: 0}); err == nil {
		t.Fatal("accepted zero-page request")
	}
	if err := sess.Submit(sprinkler.Request{Pages: 4, LPN: -1}); err == nil {
		t.Fatal("accepted negative LPN")
	}
}

// TestOpenWithPrecondition fragments the device so GC runs during the
// session workload.
// TestSessionWithArena: sessions check devices out of a DeviceArena and
// return them on Drain; an arena-recycled session produces the identical
// Result a fresh-built one does.
func TestSessionWithArena(t *testing.T) {
	cfg := smallConfig(sprinkler.SPK3)
	drive := func(opts ...sprinkler.Option) *sprinkler.Result {
		sess, err := sprinkler.Open(cfg, opts...)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			req := sprinkler.Request{LPN: int64(i * 4), Pages: 4, Write: i%3 == 0}
			if err := sess.Submit(req); err != nil {
				t.Fatal(err)
			}
		}
		res, err := sess.Drain(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := drive()

	arena := sprinkler.NewDeviceArena()
	first := drive(sprinkler.WithArena(arena))
	if arena.Size() != 1 {
		t.Fatalf("drained session did not return its device: arena holds %d", arena.Size())
	}
	// The second session must recycle the pooled device (arena empties at
	// checkout) and still match the fresh-built result exactly.
	second := drive(sprinkler.WithArena(arena))
	if arena.Size() != 1 {
		t.Fatalf("second session did not recycle: arena holds %d", arena.Size())
	}
	for i, res := range []*sprinkler.Result{first, second} {
		if res.IOsCompleted != want.IOsCompleted ||
			res.DurationNS != want.DurationNS ||
			res.AvgLatencyNS != want.AvgLatencyNS ||
			res.BandwidthKBps != want.BandwidthKBps {
			t.Fatalf("arena session %d diverged from fresh: %+v vs %+v", i, res, want)
		}
	}
}

func TestOpenWithPrecondition(t *testing.T) {
	cfg := smallConfig(sprinkler.SPK3)
	cfg.BlocksPerPlane = 12
	cfg.PagesPerBlock = 16
	sess, err := sprinkler.Open(cfg, sprinkler.WithPrecondition(sprinkler.Precondition{
		FillFrac: 0.95, ChurnFrac: 0.5, Seed: 1,
	}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := sess.Submit(sprinkler.Request{Write: true, LPN: int64((i * 37) % 2000), Pages: 4}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sess.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.GCRuns == 0 {
		t.Fatal("preconditioned session never ran GC under write pressure")
	}
}
