package sprinkler_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"sprinkler"
)

var updateGolden = flag.Bool("update", false, "rewrite the wire-format golden files")

// wireResult is a fully populated Result: every field non-zero so a
// dropped or renamed JSON tag shows up in the golden diff.
func wireResult() *sprinkler.Result {
	return &sprinkler.Result{
		Scheduler:           "SPK3",
		DurationNS:          123456789,
		IOsCompleted:        1000,
		BytesRead:           1 << 21,
		BytesWritten:        1 << 20,
		BandwidthKBps:       2048.5,
		IOPS:                8100.25,
		AvgLatencyNS:        210000,
		P50LatencyNS:        180000,
		P99LatencyNS:        950000,
		MaxLatencyNS:        1500000,
		LatencyEstimated:    true,
		QueueStallNS:        4242,
		QueueStallFraction:  0.0125,
		ChipUtilization:     0.75,
		InterChipIdleness:   0.25,
		IntraChipIdleness:   0.5,
		MemoryLevelIdleness: 0.625,
		Exec:                sprinkler.ExecBreakdown{BusOp: 0.1, BusContention: 0.2, CellOp: 0.3, Idle: 0.4},
		FLPShares:           [4]float64{0.4, 0.3, 0.2, 0.1},
		Transactions:        512,
		AvgFLPDegree:        1.953125,
		GCRuns:              7,
		GCPageMoves:         210,
		GCErases:            7,
		WriteAmplification:  1.21,
		BadBlocks:           1,
		WearLevels:          2,
		StaleRetranslations: 3,
		ReadRetries:         12,
		ReadUncorrectable:   1,
		ProgramFails:        4,
		EraseFails:          2,
		RetiredBlocks:       2,
		FailedIOs:           1,
		DegradedMode:        true,
		Series: []sprinkler.SeriesPoint{
			{Index: 1, ArrivalNS: 100, LatencyNS: 200000},
			{Index: 2, ArrivalNS: 300, LatencyNS: 190000},
		},
	}
}

// wireSnapshot is a fully populated Snapshot, raw integrals included.
func wireSnapshot() sprinkler.Snapshot {
	return sprinkler.Snapshot{
		SimTimeNS:          987654321,
		IOsSubmitted:       1100,
		IOsCompleted:       1000,
		Inflight:           100,
		BytesRead:          1 << 21,
		BytesWritten:       1 << 20,
		TotalLatencyNS:     210000000,
		BandwidthKBps:      2048.5,
		IOPS:               8100.25,
		AvgLatencyNS:       210000,
		ChipUtilization:    0.75,
		QueueStallFraction: 0.0125,
		GCRuns:             7,
		BusyChipIntegral:   1.5e9,
		SysBusyNS:          900000000,
		QueueFullNS:        12345678,
		Chips:              64,
		ReadRetries:        12,
		ProgramFails:       4,
		RetiredBlocks:      2,
		FailedIOs:          1,
		DegradedMode:       true,
	}
}

// checkGolden pins v's indented JSON encoding against the golden file.
func checkGolden(t *testing.T, name string, v any) {
	t.Helper()
	got, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test -run TestWireFormat -update` after a deliberate wire-format change)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: wire encoding changed — this breaks daemon clients and archived results.\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// TestWireFormatGolden pins the public JSON wire format of Result and
// Snapshot: the serving daemon's responses and archived result files are
// encoded with these exact field names. A failure here means the wire
// format changed; if the change is deliberate, regenerate with -update
// and call it out as a format break.
func TestWireFormatGolden(t *testing.T) {
	checkGolden(t, "result_wire.golden.json", wireResult())
	checkGolden(t, "snapshot_wire.golden.json", wireSnapshot())
}

// TestWireFormatRoundTrip: a decoded Snapshot still supports windowed
// Since arithmetic — the raw integrals survive the wire.
func TestWireFormatRoundTrip(t *testing.T) {
	prev := wireSnapshot()
	cur := prev
	cur.SimTimeNS += 1e9
	cur.IOsCompleted += 500
	cur.TotalLatencyNS += 100e6
	cur.SysBusyNS += 9e8
	cur.BusyChipIntegral += 3.2e10
	cur.QueueFullNS += 1e6

	direct := cur.Since(prev)

	b, err := json.Marshal(cur)
	if err != nil {
		t.Fatal(err)
	}
	var decoded sprinkler.Snapshot
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	viaWire := decoded.Since(prev)
	if direct != viaWire {
		t.Fatalf("Since after a wire round trip diverged:\ndirect: %+v\nwire:   %+v", direct, viaWire)
	}

	var res sprinkler.Result
	rb, err := json.Marshal(wireResult())
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(rb, &res); err != nil {
		t.Fatal(err)
	}
	rb2, err := json.Marshal(&res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rb, rb2) {
		t.Fatalf("Result does not round-trip: %s vs %s", rb, rb2)
	}
}

// TestWireFormatOmitsZeroFaultCounters: the fault counters are additive
// wire fields guarded by omitempty — a fault-free run encodes exactly the
// pre-fault wire format, so archived results and old clients are
// unaffected.
func TestWireFormatOmitsZeroFaultCounters(t *testing.T) {
	res := wireResult()
	res.ReadRetries, res.ReadUncorrectable, res.ProgramFails = 0, 0, 0
	res.EraseFails, res.RetiredBlocks, res.FailedIOs = 0, 0, 0
	res.DegradedMode = false
	snap := wireSnapshot()
	snap.ReadRetries, snap.ProgramFails, snap.RetiredBlocks, snap.FailedIOs = 0, 0, 0, 0
	snap.DegradedMode = false

	for _, enc := range []struct {
		name string
		v    any
	}{{"Result", res}, {"Snapshot", snap}} {
		b, err := json.Marshal(enc.v)
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range []string{"readRetries", "readUncorrectable", "programFails",
			"eraseFails", "retiredBlocks", "failedIOs", "degradedMode"} {
			if bytes.Contains(b, []byte(key)) {
				t.Errorf("%s with zero fault counters still encodes %q:\n%s", enc.name, key, b)
			}
		}
	}
}
