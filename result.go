package sprinkler

import (
	"sprinkler/internal/metrics"
	"sprinkler/internal/sim"
)

// simTime converts nanoseconds.
func simTime(ns int64) sim.Time { return sim.Time(ns) }

// ExecBreakdown decomposes total chip-time into the four components of
// the paper's Figure 13. Fractions sum to 1.
type ExecBreakdown struct {
	BusOp         float64 `json:"busOp"`
	BusContention float64 `json:"busContention"`
	CellOp        float64 `json:"cellOp"`
	Idle          float64 `json:"idle"`
}

// SeriesPoint is one completed I/O for time-series analysis (Figure 12).
type SeriesPoint struct {
	Index     int64 `json:"index"`
	ArrivalNS int64 `json:"arrivalNS"`
	LatencyNS int64 `json:"latencyNS"`
}

// Result reports everything a simulation run measures.
//
// Result (like Snapshot) carries explicit JSON field tags: the encoding is
// a stable, versioned wire format — the serving daemon's responses and any
// archived result files depend on it — pinned by the golden test in
// wire_test.go. Renaming or re-typing a tagged field is a wire-format
// break; add new fields instead.
type Result struct {
	// Scheduler that produced this result.
	Scheduler string `json:"scheduler"`

	// DurationNS is the simulated run length in nanoseconds.
	DurationNS int64 `json:"durationNS"`

	IOsCompleted int64 `json:"iosCompleted"`
	BytesRead    int64 `json:"bytesRead"`
	BytesWritten int64 `json:"bytesWritten"`

	// BandwidthKBps and IOPS are throughput over the run.
	BandwidthKBps float64 `json:"bandwidthKBps"`
	IOPS          float64 `json:"iops"`

	// Latency statistics over per-I/O device-level response times.
	// Percentiles are exact while the run is within Config's
	// MetricsSampleCap; longer runs report fixed-memory estimates
	// (<= 0.8% relative error) and set LatencyEstimated. Avg and Max are
	// exact in both modes.
	AvgLatencyNS     int64 `json:"avgLatencyNS"`
	P50LatencyNS     int64 `json:"p50LatencyNS"`
	P99LatencyNS     int64 `json:"p99LatencyNS"`
	MaxLatencyNS     int64 `json:"maxLatencyNS"`
	LatencyEstimated bool  `json:"latencyEstimated,omitempty"`

	// QueueStallNS is how long the device-level queue was full with the
	// host blocked behind it; QueueStallFraction normalizes it by the
	// run duration (Figure 10d's quantity).
	QueueStallNS       int64   `json:"queueStallNS"`
	QueueStallFraction float64 `json:"queueStallFraction"`

	// ChipUtilization is the busy-chip fraction while the device had work
	// (Figure 6). InterChipIdleness is its complement; IntraChipIdleness
	// is the unused die/plane share of busy chips (§5.3).
	ChipUtilization   float64 `json:"chipUtilization"`
	InterChipIdleness float64 `json:"interChipIdleness"`
	IntraChipIdleness float64 `json:"intraChipIdleness"`

	// MemoryLevelIdleness is the idle share of every (die, plane)
	// resource while the device had work — the Figure 1b curve that
	// grows as chips are added faster than the workload can use them.
	MemoryLevelIdleness float64 `json:"memoryLevelIdleness"`

	// Exec is the Figure 13 execution-time breakdown.
	Exec ExecBreakdown `json:"exec"`

	// FLPShares gives the fraction of memory requests served at each
	// parallelism level: NON-PAL, PAL1, PAL2, PAL3 (Figure 14).
	FLPShares [4]float64 `json:"flpShares"`

	// Transactions counts executed flash transactions; AvgFLPDegree is
	// memory requests per transaction (Figure 16 / §5.8).
	Transactions int64   `json:"transactions"`
	AvgFLPDegree float64 `json:"avgFLPDegree"`

	// GCRuns counts background garbage collections; GCPageMoves and
	// GCErases its live-page migrations and block erases.
	// WriteAmplification is (host+GC)/host page writes. BadBlocks counts
	// blocks retired by erase failures; WearLevels counts wear-leveling
	// victim rotations.
	GCRuns             int64   `json:"gcRuns"`
	GCPageMoves        int64   `json:"gcPageMoves"`
	GCErases           int64   `json:"gcErases"`
	WriteAmplification float64 `json:"writeAmplification"`
	BadBlocks          int64   `json:"badBlocks"`
	WearLevels         int64   `json:"wearLevels"`

	// StaleRetranslations counts commit-time address fixups forced by
	// live-data migration under schedulers without the readdressing
	// callback (§4.3).
	StaleRetranslations int64 `json:"staleRetranslations"`

	// Fault-injection outcomes, all zero (and omitted from the wire
	// encoding, so pre-fault clients are unaffected) when Config.Faults is
	// the zero value: read-retry ladder entries, uncorrectable reads,
	// program and erase failures at the chips, blocks retired to the spare
	// pool, host I/Os failed unrecoverably, and whether the drive ended
	// the run degraded to read-only mode (spare pool exhausted).
	ReadRetries       int64 `json:"readRetries,omitempty"`
	ReadUncorrectable int64 `json:"readUncorrectable,omitempty"`
	ProgramFails      int64 `json:"programFails,omitempty"`
	EraseFails        int64 `json:"eraseFails,omitempty"`
	RetiredBlocks     int64 `json:"retiredBlocks,omitempty"`
	FailedIOs         int64 `json:"failedIOs,omitempty"`
	DegradedMode      bool  `json:"degradedMode,omitempty"`

	// Series is the per-I/O latency series when CollectSeries was set.
	Series []SeriesPoint `json:"series,omitempty"`
}

// publicResult flattens the internal result.
func publicResult(r *metrics.Result) *Result { return publicResultInto(new(Result), r) }

// publicResultInto flattens the internal result into out — a fresh
// object, or one recycled through a ResultArena. Every field is
// overwritten; the only state that survives from out's previous life is
// the capacity of its Series storage.
func publicResultInto(out *Result, r *metrics.Result) *Result {
	series := out.Series[:0]
	*out = Result{
		Scheduler:           r.Scheduler,
		DurationNS:          int64(r.Duration),
		IOsCompleted:        r.IOsCompleted,
		BytesRead:           r.BytesRead,
		BytesWritten:        r.BytesWritten,
		BandwidthKBps:       r.BandwidthKBps(),
		IOPS:                r.IOPS(),
		AvgLatencyNS:        int64(r.AvgLatency()),
		P50LatencyNS:        int64(r.Latency.Percentile(50)),
		P99LatencyNS:        int64(r.Latency.Percentile(99)),
		MaxLatencyNS:        int64(r.Latency.Max()),
		LatencyEstimated:    r.Latency.Bucketed(),
		QueueStallNS:        int64(r.QueueFullTime),
		QueueStallFraction:  r.QueueStallFraction(),
		ChipUtilization:     r.ChipUtilization,
		InterChipIdleness:   r.InterChipIdleness,
		IntraChipIdleness:   r.IntraChipIdleness,
		MemoryLevelIdleness: r.MemoryLevelIdleness,
		Exec: ExecBreakdown{
			BusOp:         r.Exec.BusOp,
			BusContention: r.Exec.BusContention,
			CellOp:        r.Exec.CellOp,
			Idle:          r.Exec.Idle,
		},
		Transactions:        r.Transactions,
		AvgFLPDegree:        r.AvgFLPDegree,
		GCRuns:              r.GC.GCRuns,
		GCPageMoves:         r.GC.GCWrites,
		GCErases:            r.GC.GCErases,
		BadBlocks:           r.GC.BadBlocks,
		WearLevels:          r.GC.WearLevels,
		StaleRetranslations: r.StaleRetranslations,
		ReadRetries:         r.ReadRetries,
		ReadUncorrectable:   r.ReadUncorrectable,
		ProgramFails:        r.ProgramFails,
		EraseFails:          r.EraseFails,
		RetiredBlocks:       r.GC.RetiredBlocks,
		FailedIOs:           r.FailedIOs,
		DegradedMode:        r.DegradedMode,
	}
	out.FLPShares = r.FLP.Share
	if r.GC.HostWrites > 0 {
		out.WriteAmplification = float64(r.GC.HostWrites+r.GC.GCWrites) / float64(r.GC.HostWrites)
	} else {
		out.WriteAmplification = 1
	}
	if len(r.Series) > 0 {
		for _, p := range r.Series {
			series = append(series, SeriesPoint{
				Index: p.Index, ArrivalNS: int64(p.Arrival), LatencyNS: int64(p.Latency),
			})
		}
		out.Series = series
	}
	return out
}
