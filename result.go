package sprinkler

import (
	"sprinkler/internal/metrics"
	"sprinkler/internal/sim"
)

// simTime converts nanoseconds.
func simTime(ns int64) sim.Time { return sim.Time(ns) }

// ExecBreakdown decomposes total chip-time into the four components of
// the paper's Figure 13. Fractions sum to 1.
type ExecBreakdown struct {
	BusOp         float64
	BusContention float64
	CellOp        float64
	Idle          float64
}

// SeriesPoint is one completed I/O for time-series analysis (Figure 12).
type SeriesPoint struct {
	Index     int64
	ArrivalNS int64
	LatencyNS int64
}

// Result reports everything a simulation run measures.
type Result struct {
	// Scheduler that produced this result.
	Scheduler string

	// DurationNS is the simulated run length in nanoseconds.
	DurationNS int64

	IOsCompleted int64
	BytesRead    int64
	BytesWritten int64

	// BandwidthKBps and IOPS are throughput over the run.
	BandwidthKBps float64
	IOPS          float64

	// Latency statistics over per-I/O device-level response times.
	// Percentiles are exact while the run is within Config's
	// MetricsSampleCap; longer runs report fixed-memory estimates
	// (<= 0.8% relative error) and set LatencyEstimated. Avg and Max are
	// exact in both modes.
	AvgLatencyNS     int64
	P50LatencyNS     int64
	P99LatencyNS     int64
	MaxLatencyNS     int64
	LatencyEstimated bool

	// QueueStallNS is how long the device-level queue was full with the
	// host blocked behind it; QueueStallFraction normalizes it by the
	// run duration (Figure 10d's quantity).
	QueueStallNS       int64
	QueueStallFraction float64

	// ChipUtilization is the busy-chip fraction while the device had work
	// (Figure 6). InterChipIdleness is its complement; IntraChipIdleness
	// is the unused die/plane share of busy chips (§5.3).
	ChipUtilization   float64
	InterChipIdleness float64
	IntraChipIdleness float64

	// MemoryLevelIdleness is the idle share of every (die, plane)
	// resource while the device had work — the Figure 1b curve that
	// grows as chips are added faster than the workload can use them.
	MemoryLevelIdleness float64

	// Exec is the Figure 13 execution-time breakdown.
	Exec ExecBreakdown

	// FLPShares gives the fraction of memory requests served at each
	// parallelism level: NON-PAL, PAL1, PAL2, PAL3 (Figure 14).
	FLPShares [4]float64

	// Transactions counts executed flash transactions; AvgFLPDegree is
	// memory requests per transaction (Figure 16 / §5.8).
	Transactions int64
	AvgFLPDegree float64

	// GCRuns counts background garbage collections; GCPageMoves and
	// GCErases its live-page migrations and block erases.
	// WriteAmplification is (host+GC)/host page writes. BadBlocks counts
	// blocks retired by erase failures; WearLevels counts wear-leveling
	// victim rotations.
	GCRuns             int64
	GCPageMoves        int64
	GCErases           int64
	WriteAmplification float64
	BadBlocks          int64
	WearLevels         int64

	// StaleRetranslations counts commit-time address fixups forced by
	// live-data migration under schedulers without the readdressing
	// callback (§4.3).
	StaleRetranslations int64

	// Series is the per-I/O latency series when CollectSeries was set.
	Series []SeriesPoint
}

// publicResult flattens the internal result.
func publicResult(r *metrics.Result) *Result {
	out := &Result{
		Scheduler:           r.Scheduler,
		DurationNS:          int64(r.Duration),
		IOsCompleted:        r.IOsCompleted,
		BytesRead:           r.BytesRead,
		BytesWritten:        r.BytesWritten,
		BandwidthKBps:       r.BandwidthKBps(),
		IOPS:                r.IOPS(),
		AvgLatencyNS:        int64(r.AvgLatency()),
		P50LatencyNS:        int64(r.Latency.Percentile(50)),
		P99LatencyNS:        int64(r.Latency.Percentile(99)),
		MaxLatencyNS:        int64(r.Latency.Max()),
		LatencyEstimated:    r.Latency.Bucketed(),
		QueueStallNS:        int64(r.QueueFullTime),
		QueueStallFraction:  r.QueueStallFraction(),
		ChipUtilization:     r.ChipUtilization,
		InterChipIdleness:   r.InterChipIdleness,
		IntraChipIdleness:   r.IntraChipIdleness,
		MemoryLevelIdleness: r.MemoryLevelIdleness,
		Exec: ExecBreakdown{
			BusOp:         r.Exec.BusOp,
			BusContention: r.Exec.BusContention,
			CellOp:        r.Exec.CellOp,
			Idle:          r.Exec.Idle,
		},
		Transactions:        r.Transactions,
		AvgFLPDegree:        r.AvgFLPDegree,
		GCRuns:              r.GC.GCRuns,
		GCPageMoves:         r.GC.GCWrites,
		GCErases:            r.GC.GCErases,
		BadBlocks:           r.GC.BadBlocks,
		WearLevels:          r.GC.WearLevels,
		StaleRetranslations: r.StaleRetranslations,
	}
	out.FLPShares = r.FLP.Share
	if r.GC.HostWrites > 0 {
		out.WriteAmplification = float64(r.GC.HostWrites+r.GC.GCWrites) / float64(r.GC.HostWrites)
	} else {
		out.WriteAmplification = 1
	}
	for _, p := range r.Series {
		out.Series = append(out.Series, SeriesPoint{
			Index: p.Index, ArrivalNS: int64(p.Arrival), LatencyNS: int64(p.Latency),
		})
	}
	return out
}
