package sprinkler_test

// Determinism golden test: the simulator must be a pure function of its
// inputs. Representative workloads (a seeded msnfs1 trace and a sequential
// stream) run under every scheduler, and the full public Result must be
// byte-identical across repeated runs and across Runner concurrency
// levels. This is the safety net for every kernel/scheduler performance
// change: an optimization that perturbs event order, tie-breaking, or
// scheduling decisions shows up here as a field-level diff.

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"sprinkler"
)

// goldenCells builds the scheduler × workload grid the golden test runs.
func goldenCells() []sprinkler.Cell {
	var cells []sprinkler.Cell
	for _, kind := range sprinkler.Schedulers() {
		kind := kind
		cfg := sprinkler.Platform(16)
		cfg.BlocksPerPlane = 64
		cfg.Scheduler = kind
		cells = append(cells,
			sprinkler.Cell{
				Name:   string(kind) + "/msnfs1",
				Config: cfg,
				Seed:   7,
				Source: func(seed uint64) (sprinkler.Source, error) {
					return cfg.NewWorkloadSource(sprinkler.WorkloadSpec{
						Name: "msnfs1", Requests: 400, Seed: seed,
					})
				},
			},
			sprinkler.Cell{
				Name:   string(kind) + "/seqread",
				Config: cfg,
				Seed:   7,
				Source: func(seed uint64) (sprinkler.Source, error) {
					return sprinkler.SliceSource(sprinkler.SequentialReads(300, 8)), nil
				},
			},
			sprinkler.Cell{
				Name:   string(kind) + "/seqwrite",
				Config: cfg,
				Seed:   7,
				Source: func(seed uint64) (sprinkler.Source, error) {
					return sprinkler.SliceSource(sprinkler.SequentialWrites(300, 8)), nil
				},
			},
		)
	}
	return cells
}

// resultFingerprint renders every exported Result field, so a drift in any
// measurement — not just the headline numbers — fails the comparison.
func resultFingerprint(t *testing.T, r *sprinkler.Result) string {
	t.Helper()
	if r == nil {
		return "<nil>"
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return string(b)
}

func runGolden(t *testing.T, workers int) map[string]string {
	t.Helper()
	out := map[string]string{}
	results := sprinkler.Runner{Workers: workers}.Run(context.Background(), goldenCells())
	for _, cr := range results {
		if cr.Err != nil {
			t.Fatalf("cell %s failed: %v", cr.Name, cr.Err)
		}
		out[cr.Name] = resultFingerprint(t, cr.Result)
	}
	return out
}

// TestDeterminismGolden asserts run-to-run reproducibility for all five
// schedulers on the representative workloads.
func TestDeterminismGolden(t *testing.T) {
	first := runGolden(t, 1)
	second := runGolden(t, 1)
	if !reflect.DeepEqual(first, second) {
		for name, fp := range first {
			if second[name] != fp {
				t.Errorf("cell %s not reproducible:\n run1: %s\n run2: %s", name, fp, second[name])
			}
		}
		t.Fatal("simulation results drifted between identical runs")
	}
}

// TestDeterminismAcrossConcurrency asserts that Runner worker count does
// not leak into results: concurrent sweeps must equal serial ones.
func TestDeterminismAcrossConcurrency(t *testing.T) {
	serial := runGolden(t, 1)
	for _, workers := range []int{2, 8} {
		got := runGolden(t, workers)
		if !reflect.DeepEqual(serial, got) {
			for name, fp := range serial {
				if got[name] != fp {
					t.Errorf("workers=%d: cell %s diverged:\n serial:     %s\n concurrent: %s",
						workers, name, fp, got[name])
				}
			}
			t.Fatalf("results depend on Runner concurrency (workers=%d)", workers)
		}
	}
}
