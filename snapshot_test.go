package sprinkler_test

// Warm-state snapshot tests: the restore-vs-replay parity contract
// (a device hydrated from a checkpoint is byte-identical in behaviour to
// one that replayed the preconditioning), the file-format robustness
// guarantees (corrupt, truncated, version-skewed and oversized inputs are
// rejected with descriptive errors and nothing is partially hydrated),
// and the plumbing layers above the codec: DeviceArena registration,
// Grid/Runner sweep hydration, and Session opening.

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sprinkler"
)

// agedConfig is the parity tests' platform: small enough to keep the
// matrix fast, with blocks shrunk and the logical space clipped the way
// the GC-stress path does, so preconditioning produces real GC pressure
// and the snapshot carries non-trivial FTL state.
func agedConfig(kind sprinkler.SchedulerKind) sprinkler.Config {
	cfg := sprinkler.Platform(8)
	cfg.Scheduler = kind
	cfg.BlocksPerPlane = 24
	cfg.PagesPerBlock = 32
	cfg.LogicalPages = cfg.TotalPages() * 85 / 100
	return cfg
}

// checkpointOf preconditions a fresh device on cfg and returns its
// serialized warm state.
func checkpointOf(t *testing.T, cfg sprinkler.Config, fill, churn float64, seed uint64) []byte {
	t.Helper()
	dev, err := sprinkler.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev.Precondition(fill, churn, seed)
	var buf bytes.Buffer
	if err := dev.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runWorkload replays a deterministic workload and fingerprints the full
// Result.
func runWorkload(t *testing.T, dev *sprinkler.Device, workload string, n int, seed uint64) string {
	t.Helper()
	src, err := dev.Config().NewWorkloadSource(sprinkler.WorkloadSpec{Name: workload, Requests: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dev.Run(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSnapshotRestoreReplayParity is the tentpole contract, randomized
// over schedulers, kernels (serial and partitioned per-channel) and fault
// specs: a device restored from a checkpoint must produce a byte-identical
// Result to a device that replayed the same preconditioning.
func TestSnapshotRestoreReplayParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	workloads := []string{"msnfs1", "cfs0", "proj2"}
	faultSpecs := []sprinkler.FaultSpec{
		{},
		{ReadFailProb: 0.01, ProgramFailProb: 0.005, EraseFailProb: 0.002,
			ReadRetryMax: 3, ReadRetryMult: 2, RewriteMax: 3, SpareBlockFrac: 0.1, Seed: 99},
	}
	for _, kind := range sprinkler.Schedulers() {
		for _, parallel := range []int{0, 2} {
			for fi, faults := range faultSpecs {
				kind, parallel, fi, faults := kind, parallel, fi, faults
				name := fmt.Sprintf("%s/par=%d/faults=%d", kind, parallel, fi)
				fill := 0.5 + rng.Float64()*0.4
				churn := rng.Float64() * 0.5
				preSeed := rng.Uint64()
				wl := workloads[rng.Intn(len(workloads))]
				runSeed := rng.Uint64()
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					cfg := agedConfig(kind)
					cfg.ParallelChannels = parallel
					cfg.Faults = faults
					if parallel > 0 {
						// Background GC forces the serial kernel; turn it off
						// so this variant truly exercises the partitioned
						// per-channel kernel's channel clocks.
						cfg.DisableGC = true
						cfg.LogicalPages = 0
					}

					// Reference: replay the warm-up, then the workload.
					ref, err := sprinkler.New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					ref.Precondition(fill, churn, preSeed)
					want := runWorkload(t, ref, wl, 300, runSeed)

					// Restored: the same warm-up through a checkpoint file.
					raw := checkpointOf(t, cfg, fill, churn, preSeed)
					dev, err := sprinkler.RestoreDevice(bytes.NewReader(raw))
					if err != nil {
						t.Fatal(err)
					}
					if got := runWorkload(t, dev, wl, 300, runSeed); got != want {
						t.Errorf("restored device diverged from replayed one:\n replay:  %s\n restore: %s", want, got)
					}
				})
			}
		}
	}
}

// TestSnapshotSchedulerOverride pins the CompatibleConfig contract: one
// snapshot hydrates a device per scheduler, each byte-identical to a
// device that replayed the warm-up under that scheduler.
func TestSnapshotSchedulerOverride(t *testing.T) {
	base := agedConfig(sprinkler.SPK3)
	raw := checkpointOf(t, base, 0.8, 0.3, 21)
	snap, err := sprinkler.ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range sprinkler.Schedulers() {
		cfg := base
		cfg.Scheduler = kind
		ref, err := sprinkler.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref.Precondition(0.8, 0.3, 21)
		want := runWorkload(t, ref, "cfs4", 250, 5)

		dev, err := snap.NewDevice(cfg)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if got := runWorkload(t, dev, "cfs4", 250, 5); got != want {
			t.Errorf("%s: hydrated device diverged:\n replay:  %s\n restore: %s", kind, want, got)
		}
	}
}

// TestSnapshotConfigCompatibility pins which knobs may differ between
// capture and hydration (scheduler, host-side observation budgets, the
// event-kernel selector) and that everything else is refused.
func TestSnapshotConfigCompatibility(t *testing.T) {
	base := agedConfig(sprinkler.SPK3)
	raw := checkpointOf(t, base, 0.7, 0.2, 3)
	snap, err := sprinkler.ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}

	allowed := []func(*sprinkler.Config){
		func(c *sprinkler.Config) { c.Scheduler = sprinkler.VAS },
		func(c *sprinkler.Config) { c.MaxBacklog = 4096 },
		func(c *sprinkler.Config) { c.CollectSeries = true; c.SeriesWindow = 64 },
		func(c *sprinkler.Config) { c.ParallelChannels = 2 },
	}
	for i, mutate := range allowed {
		cfg := base
		mutate(&cfg)
		if !snap.CompatibleConfig(cfg) {
			t.Errorf("allowed mutation %d judged incompatible", i)
		}
		if _, err := snap.NewDevice(cfg); err != nil {
			t.Errorf("allowed mutation %d refused: %v", i, err)
		}
	}

	refused := []func(*sprinkler.Config){
		func(c *sprinkler.Config) { c.ChipsPerChan *= 2 },
		func(c *sprinkler.Config) { c.QueueDepth = 8 },
		func(c *sprinkler.Config) { c.MetricsSampleCap = 128 },
		func(c *sprinkler.Config) { c.Faults.ReadFailProb = 0.5 },
		func(c *sprinkler.Config) { c.LogicalPages = c.TotalPages() / 2 },
	}
	for i, mutate := range refused {
		cfg := base
		mutate(&cfg)
		if snap.CompatibleConfig(cfg) {
			t.Errorf("refused mutation %d judged compatible", i)
		}
		if _, err := snap.NewDevice(cfg); err == nil {
			t.Errorf("refused mutation %d hydrated without error", i)
		}
	}
}

// mutateSnapshot applies f to a copy of raw and recomputes the CRC
// trailer, producing a structurally corrupted but checksum-valid file.
func mutateSnapshot(raw []byte, f func([]byte) []byte) []byte {
	body := append([]byte(nil), raw[:len(raw)-4]...)
	body = f(body)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body))
	return append(body, crc[:]...)
}

// TestSnapshotRejectsDamage feeds every flavour of damaged file through
// ReadSnapshot/RestoreDevice and demands a descriptive error — never a
// device, never a panic.
func TestSnapshotRejectsDamage(t *testing.T) {
	raw := checkpointOf(t, agedConfig(sprinkler.SPK2), 0.6, 0.3, 7)

	cases := []struct {
		name string
		in   []byte
		want string // substring of the error
	}{
		{"empty", nil, "truncated"},
		{"short", raw[:8], "truncated"},
		{"bad magic", append([]byte("NOTASNAP"), raw[8:]...), "bad magic"},
		{"truncated mid-payload", raw[:len(raw)/2], "checksum"},
		{"flipped payload byte", flipByte(raw, len(raw)/2), "checksum"},
		{"flipped trailer byte", flipByte(raw, len(raw)-1), "checksum"},
		{"future version", mutateSnapshot(raw, func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:12], sprinkler.SnapshotVersion+1)
			return b
		}), "version"},
		{"trailing bytes", mutateSnapshot(raw, func(b []byte) []byte {
			return append(b, 0xDE, 0xAD)
		}), "trailing"},
		{"config length overruns", mutateSnapshot(raw, func(b []byte) []byte {
			// Replace everything after the version with a huge uvarint.
			return append(b[:12], 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F)
		}), "exceeds"},
		{"payload garbage", mutateSnapshot(raw, func(b []byte) []byte {
			// Find the payload (after the config JSON) and zero its head:
			// the codec must reject it, not build a half-device.
			_, off := binary.Uvarint(b[12:])
			n, _ := binary.Uvarint(b[12:])
			payloadStart := 12 + off + int(n)
			for i := payloadStart + 2; i < payloadStart+10 && i < len(b); i++ {
				b[i] = 0xFF
			}
			return b
		}), "snapshot"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := sprinkler.ReadSnapshot(bytes.NewReader(tc.in)); err == nil {
				t.Fatal("damaged snapshot decoded without error")
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			if dev, err := sprinkler.RestoreDevice(bytes.NewReader(tc.in)); err == nil || dev != nil {
				t.Errorf("RestoreDevice returned (%v, %v) for damaged input", dev, err)
			}
		})
	}
}

// flipByte copies b with one byte XOR-flipped.
func flipByte(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0x5A
	return out
}

// TestSnapshotGoldenFixture decodes the checked-in fixture — written by
// testdata/gen_snapshot.go on the version-1 format — and runs a workload
// on it. This pins backward readability: a codec change that cannot read
// version-1 files must bump SnapshotVersion, not silently misdecode.
func TestSnapshotGoldenFixture(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "warm_v1.snap"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := sprinkler.ReadSnapshot(f)
	if err != nil {
		t.Fatalf("golden fixture no longer decodes: %v", err)
	}
	cfg := snap.Config()
	if cfg.Channels != 2 || cfg.ChipsPerChan != 4 || cfg.Scheduler != sprinkler.SPK3 {
		t.Fatalf("fixture config drifted: %+v", cfg)
	}
	dev, err := snap.NewDevice()
	if err != nil {
		t.Fatal(err)
	}
	fp := runWorkload(t, dev, "msnfs1", 200, 13)

	// The fixture must hydrate deterministically: a second device from the
	// same decoded snapshot replays identically.
	dev2, err := snap.NewDevice()
	if err != nil {
		t.Fatal(err)
	}
	if fp2 := runWorkload(t, dev2, "msnfs1", 200, 13); fp2 != fp {
		t.Errorf("fixture hydration not deterministic:\n first:  %s\n second: %s", fp, fp2)
	}
}

// TestArenaGetFromSnapshot covers the pooled hydration path: fresh build,
// recycled checkout (Reset + hydrate), and the unknown-name error.
func TestArenaGetFromSnapshot(t *testing.T) {
	cfg := agedConfig(sprinkler.SPK1)
	raw := checkpointOf(t, cfg, 0.75, 0.4, 17)
	snap, err := sprinkler.ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}

	ref, err := snap.NewDevice()
	if err != nil {
		t.Fatal(err)
	}
	want := runWorkload(t, ref, "proj0", 200, 23)

	arena := sprinkler.NewDeviceArena()
	arena.RegisterSnapshot("warm", snap)
	if _, err := arena.GetFromSnapshot("missing"); err == nil {
		t.Error("unknown snapshot name did not error")
	}

	// First checkout builds fresh; the second recycles the pooled device
	// through Reset before hydrating. Both must match the reference.
	for round := 0; round < 2; round++ {
		dev, err := arena.GetFromSnapshot("warm", cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got := runWorkload(t, dev, "proj0", 200, 23); got != want {
			t.Errorf("round %d: arena-hydrated device diverged:\n want: %s\n got:  %s", round, want, got)
		}
		arena.Put(dev)
	}
	stats := arena.Stats()
	if stats.DeviceHits == 0 {
		t.Errorf("second checkout did not recycle the pooled device: %+v", stats)
	}
}

// TestGridSnapshotSweep runs an aged-drive scheduler sweep hydrated from
// one registered snapshot — concurrently, with and without device reuse —
// and checks every cell equals a directly hydrated reference run.
func TestGridSnapshotSweep(t *testing.T) {
	base := agedConfig(sprinkler.SPK3)
	raw := checkpointOf(t, base, 0.85, 0.35, 29)
	snap, err := sprinkler.ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}

	grid := sprinkler.Grid{
		Base:       base,
		Schedulers: sprinkler.Schedulers(),
		Workloads:  []string{"msnfs1", "cfs0"},
		Requests:   150,
		Snapshot:   "warm",
	}

	for _, noreuse := range []bool{false, true} {
		arena := sprinkler.NewDeviceArena()
		arena.RegisterSnapshot("warm", snap)
		runner := sprinkler.Runner{Workers: 4, Arena: arena, NoReuse: noreuse}
		for _, cr := range runner.Run(context.Background(), grid.Cells()) {
			if cr.Err != nil {
				t.Fatalf("noreuse=%v: cell %s: %v", noreuse, cr.Name, cr.Err)
			}
			cfg := base
			cfg.Scheduler = sprinkler.SchedulerKind(cr.Labels["scheduler"])
			ref, err := snap.NewDevice(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := runWorkload(t, ref, cr.Labels["workload"], 150, cr.Seed)
			got, err := json.Marshal(cr.Result)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != want {
				t.Errorf("noreuse=%v: cell %s diverged from direct hydration:\n want: %s\n got:  %s",
					noreuse, cr.Name, want, got)
			}
		}
	}
}

// TestGridSnapshotPreconditionConflict pins the both-warmups error.
func TestGridSnapshotPreconditionConflict(t *testing.T) {
	base := agedConfig(sprinkler.SPK3)
	raw := checkpointOf(t, base, 0.6, 0.2, 31)
	snap, err := sprinkler.ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	arena := sprinkler.NewDeviceArena()
	arena.RegisterSnapshot("warm", snap)
	grid := sprinkler.Grid{
		Base:         base,
		Workloads:    []string{"cfs0"},
		Requests:     50,
		Snapshot:     "warm",
		Precondition: &sprinkler.Precondition{FillFrac: 0.5, ChurnFrac: 0.1},
	}
	for _, cr := range (sprinkler.Runner{Arena: arena}).Run(context.Background(), grid.Cells()) {
		if cr.Err == nil || !strings.Contains(cr.Err.Error(), "both Snapshot and Precondition") {
			t.Errorf("cell %s: want both-warmups error, got %v", cr.Name, cr.Err)
		}
	}
}

// TestSessionWithSnapshot opens a Session hydrated from a snapshot and
// checks its drained Result equals a session that replayed the
// preconditioning, plus the option-misuse errors.
func TestSessionWithSnapshot(t *testing.T) {
	cfg := agedConfig(sprinkler.SPK2)
	raw := checkpointOf(t, cfg, 0.8, 0.25, 41)
	snap, err := sprinkler.ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}

	drive := func(sess *sprinkler.Session) string {
		t.Helper()
		for i := 0; i < 120; i++ {
			if err := sess.Submit(sprinkler.Request{LPN: int64(i * 8), Pages: 8, Write: i%3 == 0}); err != nil {
				t.Fatal(err)
			}
		}
		res, err := sess.Drain(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	replayed, err := sprinkler.Open(cfg, sprinkler.WithPrecondition(sprinkler.Precondition{
		FillFrac: 0.8, ChurnFrac: 0.25, Seed: 41,
	}))
	if err != nil {
		t.Fatal(err)
	}
	want := drive(replayed)

	hydrated, err := sprinkler.Open(cfg, sprinkler.WithSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	if got := drive(hydrated); got != want {
		t.Errorf("snapshot-hydrated session diverged:\n replay:  %s\n restore: %s", want, got)
	}

	if _, err := sprinkler.Open(cfg, sprinkler.WithSnapshot(snap),
		sprinkler.WithPrecondition(sprinkler.Precondition{FillFrac: 0.5})); err == nil {
		t.Error("WithSnapshot + WithPrecondition did not error")
	}
	bad := cfg
	bad.QueueDepth = 8
	if _, err := sprinkler.Open(bad, sprinkler.WithSnapshot(snap)); err == nil {
		t.Error("incompatible session config did not error")
	}
}

// TestCheckpointDrainedDevice pins that the checkpoint boundary works on
// every quiescent state a device passes through publicly: fresh, after
// preconditioning, and after a completed run — and that each restores.
func TestCheckpointDrainedDevice(t *testing.T) {
	cfg := agedConfig(sprinkler.SPK3)
	dev, err := sprinkler.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkpoint := func(stage string) {
		t.Helper()
		var buf bytes.Buffer
		if err := dev.Checkpoint(&buf); err != nil {
			t.Fatalf("%s: %v", stage, err)
		}
		if _, err := sprinkler.RestoreDevice(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("%s: restore: %v", stage, err)
		}
	}
	checkpoint("fresh device")
	dev.Precondition(0.7, 0.3, 3)
	checkpoint("preconditioned device")
	_ = runWorkload(t, dev, "cfs0", 100, 9)
	checkpoint("drained device")
}
