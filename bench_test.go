package sprinkler_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§5). Each bench runs the corresponding experiment at
// a reduced-but-faithful scale (every scheduler, workload and code path is
// exercised; only instruction counts and sweep densities shrink).
// Regenerate the full-scale numbers with:
//
//	go run ./cmd/experiments -fig all
//
// The per-iteration metric reported by each bench (ns/op) is simulator
// wall time, not simulated SSD performance; the simulated results are what
// cmd/experiments prints.

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"sprinkler"
	"sprinkler/internal/experiments"
)

// benchOpts is the scale used by the benches.
func benchOpts() experiments.Options {
	return experiments.Options{Scale: 0.05, Chips: 16}
}

// BenchmarkTable1Traces regenerates the Table 1 workload catalogue and
// synthesizes each trace.
func BenchmarkTable1Traces(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := experiments.Table1Report(); len(out) == 0 {
			b.Fatal("empty report")
		}
		cfg := sprinkler.DefaultConfig()
		for _, name := range sprinkler.Workloads() {
			if _, err := cfg.GenerateWorkload(name, 200, 1); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig1Stagnation reruns the die-count sensitivity sweep behind
// Figures 1a and 1b.
func BenchmarkFig1Stagnation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFig1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) == 0 {
			b.Fatal("no points")
		}
	}
}

// evalOnce runs the shared 5-scheduler × 16-workload sweep (Figures 6,
// 10a–d, 11a/b, 13, 14) once per benchmark run and caches it.
var cachedEval *experiments.Evaluation

func evalOnce(b *testing.B) *experiments.Evaluation {
	b.Helper()
	if cachedEval == nil {
		ev, err := experiments.RunEvaluation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		cachedEval = ev
	}
	return cachedEval
}

// BenchmarkFig6Potential regenerates the Figure 6 utilization-potential
// table.
func BenchmarkFig6Potential(b *testing.B) {
	b.ReportAllocs()
	ev := evalOnce(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(ev.Fig6()) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFig10Bandwidth regenerates Figure 10a.
func BenchmarkFig10Bandwidth(b *testing.B) {
	b.ReportAllocs()
	ev := evalOnce(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(ev.Fig10a()) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFig10IOPS regenerates Figure 10b.
func BenchmarkFig10IOPS(b *testing.B) {
	b.ReportAllocs()
	ev := evalOnce(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(ev.Fig10b()) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFig10Latency regenerates Figure 10c.
func BenchmarkFig10Latency(b *testing.B) {
	b.ReportAllocs()
	ev := evalOnce(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(ev.Fig10c()) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFig10QueueStall regenerates Figure 10d.
func BenchmarkFig10QueueStall(b *testing.B) {
	b.ReportAllocs()
	ev := evalOnce(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(ev.Fig10d()) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFig11Idleness regenerates Figures 11a and 11b.
func BenchmarkFig11Idleness(b *testing.B) {
	b.ReportAllocs()
	ev := evalOnce(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(ev.Fig11a())+len(ev.Fig11b()) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFig12TimeSeries reruns the msnfs1 latency time series (§5.4).
func BenchmarkFig12TimeSeries(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := experiments.RunFig12(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFig13Breakdown regenerates the execution-time breakdown (§5.5).
func BenchmarkFig13Breakdown(b *testing.B) {
	b.ReportAllocs()
	ev := evalOnce(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig13(ev)) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFig14FLP regenerates the FLP breakdown (§5.6).
func BenchmarkFig14FLP(b *testing.B) {
	b.ReportAllocs()
	ev := evalOnce(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig14(ev)) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFig15Utilization reruns the transfer-size × chip-count chip
// utilization sweep (§5.7); the same points carry Figure 16's counts.
func BenchmarkFig15Utilization(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFig15(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(experiments.FormatFig15(pts)) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFig16Transactions formats the transaction-reduction tables
// (§5.8) from a fresh sweep.
func BenchmarkFig16Transactions(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFig15(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(experiments.FormatFig16(pts)) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkFig17GC reruns the garbage-collection / readdressing-callback
// bandwidth study (§5.9).
func BenchmarkFig17GC(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFig17(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(experiments.FormatFig17(pts)) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkAblation reruns the design-choice ablation study (over-commit
// depth, FARO priority, decision window, allocation scheme).
func BenchmarkAblation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunAblation(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(experiments.FormatAblation(rows)) == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkStreamingOpenLoop streams 100k open-loop (Poisson) requests
// per iteration through Device.Run without materializing the request
// slice: an infinite generator wrapped in Poisson arrivals, bounded by
// Limit, with the host-side backlog capped. Scale the same pipeline up
// (examples/streaming drives >= 1M requests) and memory stays flat.
func BenchmarkStreamingOpenLoop(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := sprinkler.Platform(64)
		cfg.Scheduler = sprinkler.SPK3
		cfg.MaxBacklog = 4096
		gen, err := cfg.NewWorkloadSource(sprinkler.WorkloadSpec{Name: "msnfs1", Requests: 0, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		src := sprinkler.Limit(sprinkler.Poisson(gen, 200_000, 1), 100_000)
		dev, err := sprinkler.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := dev.Run(context.Background(), src)
		if err != nil {
			b.Fatal(err)
		}
		if res.IOsCompleted != 100_000 {
			b.Fatalf("completed %d/100000", res.IOsCompleted)
		}
	}
}

// sweepBenchCells declares the sweep-bench grid: all five schedulers ×
// five workloads on one 16-chip topology (25 cells), the shape whose
// per-cell device-construction cost the arena exists to amortize.
func sweepBenchCells() []sprinkler.Cell {
	cfg := sprinkler.Platform(16)
	cfg.BlocksPerPlane = 64
	return sprinkler.Grid{
		Base:       cfg,
		Schedulers: sprinkler.Schedulers(),
		Workloads:  []string{"cfs0", "cfs4", "msnfs1", "hm0", "proj4"},
		Requests:   150,
	}.Cells()
}

// withoutSourceKeys strips the grid's source-pool keys so a bench can
// isolate device reuse from source reuse (the PR 4 measurement).
func withoutSourceKeys(cells []sprinkler.Cell) []sprinkler.Cell {
	out := make([]sprinkler.Cell, len(cells))
	copy(out, cells)
	for i := range out {
		out[i].SourceKey = ""
	}
	return out
}

// runSweepBench executes the grid serially (one worker keeps allocs/op a
// deterministic property of the code, not goroutine interleaving) and
// sanity-checks the results.
func runSweepBench(b *testing.B, r sprinkler.Runner, cells []sprinkler.Cell) {
	b.Helper()
	for _, cr := range r.Run(context.Background(), cells) {
		if cr.Err != nil {
			b.Fatal(cr.Err)
		}
		if cr.Result.IOsCompleted == 0 {
			b.Fatalf("cell %s completed nothing", cr.Name)
		}
	}
}

// BenchmarkSweepFresh is the reference path: every cell builds a fresh
// device (Runner.NoReuse), paying full construction per cell.
func BenchmarkSweepFresh(b *testing.B) {
	b.ReportAllocs()
	cells := withoutSourceKeys(sweepBenchCells())
	for i := 0; i < b.N; i++ {
		runSweepBench(b, sprinkler.Runner{Workers: 1, NoReuse: true}, cells)
	}
}

// BenchmarkSweepArena runs the identical 25-cell grid through a shared
// DeviceArena with source pooling disabled (keys stripped): one device is
// built on the first cell and Reset-recycled for the other 24 (and for
// every subsequent iteration), but every cell still constructs its own
// source. CI guards this bench's allocs/op — a regression here means
// device reuse started re-allocating per-cell state.
func BenchmarkSweepArena(b *testing.B) {
	b.ReportAllocs()
	cells := withoutSourceKeys(sweepBenchCells())
	arena := sprinkler.NewDeviceArena()
	for i := 0; i < b.N; i++ {
		runSweepBench(b, sprinkler.Runner{Workers: 1, Arena: arena}, cells)
	}
}

// BenchmarkSweepPooledSources is the full per-arena pooling path — the
// grid exactly as Grid.Cells emits it: devices recycle through the arena
// AND each workload coordinate's source is built once then Reset-replayed
// for every scheduler and iteration, with the retired-I/O free list riding
// along inside the pooled device. The delta against BenchmarkSweepArena is
// the per-cell source/trace construction and adapter-pool warmup this PR
// eliminates; CI guards it against bench/BENCH_pr5_baseline.txt.
func BenchmarkSweepPooledSources(b *testing.B) {
	b.ReportAllocs()
	cells := sweepBenchCells()
	arena := sprinkler.NewDeviceArena()
	for i := 0; i < b.N; i++ {
		runSweepBench(b, sprinkler.Runner{Workers: 1, Arena: arena}, cells)
	}
}

// BenchmarkSweepReusedResults layers the caller-owned result arena on the
// fully pooled sweep: devices, sources, retired-I/O free lists, and now
// the Result objects and the CellResult slice all recycle between
// iterations (Runner.Results + ResultArena.Recycle). The delta against
// BenchmarkSweepPooledSources is the per-sweep result rendering and
// Runner bookkeeping this PR eliminates; CI guards allocs/op against
// bench/BENCH_pr10_baseline.txt.
func BenchmarkSweepReusedResults(b *testing.B) {
	b.ReportAllocs()
	cells := sweepBenchCells()
	arena := sprinkler.NewDeviceArena()
	results := sprinkler.NewResultArena()
	r := sprinkler.Runner{Workers: 1, Arena: arena, Results: results}
	for i := 0; i < b.N; i++ {
		crs := r.Run(context.Background(), cells)
		for _, cr := range crs {
			if cr.Err != nil {
				b.Fatal(cr.Err)
			}
			if cr.Result.IOsCompleted == 0 {
				b.Fatalf("cell %s completed nothing", cr.Name)
			}
		}
		results.Recycle(crs)
	}
}

// BenchmarkWarmRestore prices the warm-state checkpoint/restore path
// against the preconditioning it replaces, on a GC-heavy 64-chip aged
// platform. "precondition" is the reference: build a fresh device and
// simulate the fill+churn aging pass. "restore" reads the same warm
// state back from an in-memory snapshot (decode + hydrate, the
// RestoreDevice path); "hydrate" hydrates from an already-decoded
// DeviceSnapshot (the DeviceArena/Runner path, paying no parsing). The
// restored device is byte-identical in behavior to the preconditioned
// one (TestSnapshotRestoreReplayParity), so the ns/op ratio between
// "precondition" and "restore" is the speedup a snapshot-hydrated sweep
// cell sees — >=10x at this scale, and growing with device size since
// restore cost scales with state size while preconditioning scales with
// simulated work. CI guards the restore rows' allocs/op against
// bench/BENCH_pr9_baseline.txt.
func BenchmarkWarmRestore(b *testing.B) {
	cfg := sprinkler.Platform(64)
	cfg.Scheduler = sprinkler.SPK3
	cfg.BlocksPerPlane = 24
	cfg.LogicalPages = cfg.TotalPages() * 85 / 100
	const fill, churn, seed = 0.9, 0.4, 42

	src, err := sprinkler.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	src.Precondition(fill, churn, seed)
	var buf bytes.Buffer
	if err := src.Checkpoint(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	snap, err := sprinkler.ReadSnapshot(bytes.NewReader(raw))
	if err != nil {
		b.Fatal(err)
	}

	b.Run("precondition", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d, err := sprinkler.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			d.Precondition(fill, churn, seed)
		}
	})
	b.Run("restore", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sprinkler.RestoreDevice(bytes.NewReader(raw)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hydrate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := snap.NewDevice(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDeviceSPK3 measures raw simulator throughput: one 64-chip SSD
// serving sequential reads under SPK3 (events per wall-second is the
// simulator's own figure of merit).
func BenchmarkDeviceSPK3(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := sprinkler.DefaultConfig()
		cfg.BlocksPerPlane = 128
		dev, err := sprinkler.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dev.RunRequests(sprinkler.SequentialReads(500, 8)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelDevice measures the partitioned per-channel kernel
// against its own serial fallback on the same simulation: w1 keeps the
// serial kernel (ParallelChannels < 2 never partitions), w2..w8 run the
// lockstep-epoch kernel with that many pool workers. Results are
// byte-identical across the axis — the benchmark exists to price the
// coordination overhead and to expose the scaling curve on multi-core
// hosts. On a single-core runner (GOMAXPROCS=1) the parallel rows can
// only show overhead, never speedup; read them accordingly.
//
// Three variants cover the kernel's eligibility surface:
//
//	ch8,ch16   — pristine drive, GC off (the original PR 7 rows)
//	gc/ch8     — aged drive under collection pressure: the configuration
//	             the paper actually evaluates, preconditioned per
//	             iteration, with background GC competing during the run
//	gc/ch8/hydrated — identical aged runs, but the warm state comes from
//	             one snapshot hydrated per iteration instead of
//	             re-simulating the aging pass
//
// CI guards the w1 (serial-path) rows of the gc and hydrated variants
// against bench/BENCH_pr10_baseline.txt.
func BenchmarkParallelDevice(b *testing.B) {
	for _, channels := range []int{8, 16} {
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("ch%d/w%d", channels, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					cfg := sprinkler.DefaultConfig()
					cfg.Channels = channels
					cfg.ChipsPerChan = 2
					cfg.BlocksPerPlane = 128
					cfg.QueueDepth = 64
					cfg.DisableGC = true
					cfg.ParallelChannels = workers
					dev, err := sprinkler.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					reqs, err := cfg.GenerateWorkload("msnfs1", 600, 16)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := dev.RunRequests(reqs); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}

	gcCfg := func(workers int) sprinkler.Config {
		cfg := sprinkler.DefaultConfig()
		cfg.Channels = 8
		cfg.ChipsPerChan = 2
		cfg.BlocksPerPlane = 24
		cfg.LogicalPages = cfg.TotalPages() * 85 / 100
		cfg.GCFreeTarget = 8
		cfg.QueueDepth = 64
		cfg.ParallelChannels = workers
		return cfg
	}
	const fill, churn, pseed = 0.8, 0.5, 17

	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("gc/ch8/w%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			cfg := gcCfg(workers)
			for i := 0; i < b.N; i++ {
				dev, err := sprinkler.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				dev.Precondition(fill, churn, pseed)
				reqs, err := cfg.GenerateWorkload("msnfs1", 600, 16)
				if err != nil {
					b.Fatal(err)
				}
				res, err := dev.RunRequests(reqs)
				if err != nil {
					b.Fatal(err)
				}
				if res.GCRuns == 0 {
					b.Fatal("aged run triggered no GC; the row prices nothing")
				}
			}
		})
	}

	// One warm snapshot, captured once, hydrates every iteration of the
	// hydrated rows — the sweep-cell shape PR 9 built and this PR lets
	// run on the partitioned kernel.
	var warm bytes.Buffer
	{
		cfg := gcCfg(0)
		dev, err := sprinkler.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		dev.Precondition(fill, churn, pseed)
		if err := dev.Checkpoint(&warm); err != nil {
			b.Fatal(err)
		}
	}
	snap, err := sprinkler.ReadSnapshot(bytes.NewReader(warm.Bytes()))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("gc/ch8/hydrated/w%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			cfg := gcCfg(workers)
			for i := 0; i < b.N; i++ {
				dev, err := snap.NewDevice(cfg)
				if err != nil {
					b.Fatal(err)
				}
				reqs, err := cfg.GenerateWorkload("msnfs1", 600, 16)
				if err != nil {
					b.Fatal(err)
				}
				res, err := dev.RunRequests(reqs)
				if err != nil {
					b.Fatal(err)
				}
				if res.GCRuns == 0 {
					b.Fatal("hydrated run triggered no GC; the row prices nothing")
				}
			}
		})
	}
}

// BenchmarkSchedulers measures per-scheduler simulation cost on the same
// workload (scheduler algorithmic overhead shows up here).
func BenchmarkSchedulers(b *testing.B) {
	b.ReportAllocs()
	for _, kind := range sprinkler.Schedulers() {
		kind := kind
		b.Run(string(kind), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := sprinkler.DefaultConfig()
				cfg.Channels = 4
				cfg.ChipsPerChan = 4
				cfg.BlocksPerPlane = 128
				cfg.Scheduler = kind
				dev, err := sprinkler.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := dev.RunRequests(sprinkler.SequentialReads(300, 8)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
