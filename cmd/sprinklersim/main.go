// Command sprinklersim runs one workload through one scheduler on a
// configurable many-chip SSD and prints the measurements. Workloads are
// streamed through the public Source API, so a trace file of any size
// replays in constant memory.
//
// Usage:
//
//	sprinklersim -sched SPK3 -workload msnfs1 -n 2000
//	sprinklersim -sched VAS -trace mytrace.csv -chips 256
//	sprinklersim -sched PAS -seqread 1000 -pages 16
//	sprinklersim -sched SPK3 -workload cfs4 -n 100000 -rate 50000
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"sprinkler"
	"sprinkler/internal/cliutil"
)

func main() {
	app := cliutil.NewApp("sprinklersim")
	defer app.Close()

	var plat cliutil.Platform
	plat.Register(flag.CommandLine)
	workload := flag.String("workload", "", "Table 1 workload to synthesize")
	traceFile := flag.String("trace", "", "CSV trace file to replay (streamed)")
	n := flag.Int("n", 2000, "requests for -workload")
	seqread := flag.Int("seqread", 0, "run N sequential reads instead of a trace")
	seqwrite := flag.Int("seqwrite", 0, "run N sequential writes instead of a trace")
	pages := flag.Int("pages", 8, "pages per request for -seqread/-seqwrite")
	rate := flag.Float64("rate", 0, "open-loop Poisson arrival rate (requests/s); 0 keeps trace timing")
	seed := flag.Uint64("seed", 0, "trace seed")
	var warm cliutil.WarmState
	warm.Register(flag.CommandLine)
	flag.Parse()

	// The device comes first: under -load-state the snapshot supplies the
	// platform, and the sources below must size themselves to it.
	dev, cfg, err := warm.Device(plat.Config(), plat.Precondition(*seed))
	app.Check(err)

	var src sprinkler.Source
	switch {
	case *traceFile != "":
		f, ferr := os.Open(*traceFile)
		app.Check(ferr)
		defer f.Close()
		src = sprinkler.NewCSVSource(f)
	case *workload != "":
		src, err = cfg.NewWorkloadSource(sprinkler.WorkloadSpec{
			Name: *workload, Requests: *n, Seed: *seed,
		})
		app.Check(err)
	case *seqread > 0:
		src, err = cfg.NewFixedSource(sprinkler.FixedSpec{
			Requests: *seqread, Pages: *pages, Sequential: true, Seed: *seed,
		})
		app.Check(err)
	case *seqwrite > 0:
		src, err = cfg.NewFixedSource(sprinkler.FixedSpec{
			Requests: *seqwrite, Pages: *pages, Write: true, Sequential: true, Seed: *seed,
		})
		app.Check(err)
	default:
		fmt.Fprintln(os.Stderr, "sprinklersim: need one of -workload, -trace, -seqread, -seqwrite")
		flag.Usage()
		os.Exit(2)
	}
	if *rate > 0 {
		src = sprinkler.Poisson(src, *rate, *seed)
	}

	res, err := dev.Run(context.Background(), src)
	app.Check(err)

	fmt.Printf("scheduler        %s\n", res.Scheduler)
	fmt.Printf("platform         %d chips (%d ch x %d), %d dies x %d planes\n",
		dev.NumChips(), cfg.Channels, cfg.ChipsPerChan, cfg.DiesPerChip, cfg.PlanesPerDie)
	fmt.Printf("I/Os completed   %d (%d MB read, %d MB written)\n",
		res.IOsCompleted, res.BytesRead>>20, res.BytesWritten>>20)
	fmt.Printf("duration         %.3fms\n", float64(res.DurationNS)/1e6)
	fmt.Printf("bandwidth        %.1f MB/s\n", res.BandwidthKBps/1024)
	fmt.Printf("IOPS             %.0f\n", res.IOPS)
	fmt.Printf("avg latency      %.3fms\n", float64(res.AvgLatencyNS)/1e6)
	fmt.Printf("queue stall      %.1f%% of run\n", 100*res.QueueStallFraction)
	fmt.Printf("chip utilization %.1f%%\n", 100*res.ChipUtilization)
	fmt.Printf("idleness         inter-chip %.1f%%, intra-chip %.1f%%\n",
		100*res.InterChipIdleness, 100*res.IntraChipIdleness)
	fmt.Printf("transactions     %d (avg FLP degree %.2f)\n", res.Transactions, res.AvgFLPDegree)
	fmt.Printf("FLP shares       NON-PAL %.1f%%, PAL1 %.1f%%, PAL2 %.1f%%, PAL3 %.1f%%\n",
		100*res.FLPShares[0], 100*res.FLPShares[1], 100*res.FLPShares[2], 100*res.FLPShares[3])
	fmt.Printf("exec breakdown   bus %.1f%%, contention %.1f%%, cell %.1f%%, idle %.1f%%\n",
		100*res.Exec.BusOp, 100*res.Exec.BusContention, 100*res.Exec.CellOp, 100*res.Exec.Idle)
	if res.GCRuns > 0 {
		fmt.Printf("garbage collect  %d runs, %d migrations, %d erases\n",
			res.GCRuns, res.GCPageMoves, res.GCErases)
	}
	if res.StaleRetranslations > 0 {
		fmt.Printf("stale addresses  %d re-translations\n", res.StaleRetranslations)
	}
	if res.ReadRetries+res.ReadUncorrectable+res.ProgramFails+res.EraseFails+res.FailedIOs > 0 {
		fmt.Printf("faults           %d read retries (%d uncorrectable), %d program fails, %d erase fails, %d failed I/Os\n",
			res.ReadRetries, res.ReadUncorrectable, res.ProgramFails, res.EraseFails, res.FailedIOs)
	}
	if res.DegradedMode {
		fmt.Printf("DEGRADED         spare blocks exhausted; drive is read-only (%d retired)\n", res.RetiredBlocks)
	}
}
