// Command sprinklersim runs one workload through one scheduler on a
// configurable many-chip SSD and prints the measurements.
//
// Usage:
//
//	sprinklersim -sched SPK3 -workload msnfs1 -n 2000
//	sprinklersim -sched VAS -trace mytrace.csv -chips 256
//	sprinklersim -sched PAS -seqread 1000 -pages 16
package main

import (
	"flag"
	"fmt"
	"os"

	"sprinkler/internal/experiments"
	"sprinkler/internal/req"
	"sprinkler/internal/ssd"
	"sprinkler/internal/trace"
)

func main() {
	schedName := flag.String("sched", "SPK3", "scheduler: VAS, PAS, SPK1, SPK2, SPK3")
	workload := flag.String("workload", "", "Table 1 workload to synthesize")
	traceFile := flag.String("trace", "", "CSV trace file to replay")
	n := flag.Int("n", 2000, "instructions for -workload")
	seqread := flag.Int("seqread", 0, "run N sequential reads instead of a trace")
	seqwrite := flag.Int("seqwrite", 0, "run N sequential writes instead of a trace")
	pages := flag.Int("pages", 8, "pages per request for -seqread/-seqwrite")
	chips := flag.Int("chips", 64, "total flash chips")
	queue := flag.Int("queue", 64, "device-level queue depth")
	gcStress := flag.Bool("gc", false, "precondition to 95% full so GC runs")
	seed := flag.Uint64("seed", 0, "trace seed")
	flag.Parse()

	cfg := experiments.Platform(*chips)
	cfg.QueueDepth = *queue

	var ios []*req.IO
	var err error
	switch {
	case *traceFile != "":
		f, ferr := os.Open(*traceFile)
		fail(ferr)
		recs, perr := trace.Parse(f)
		f.Close()
		fail(perr)
		ios = trace.ToIOs(recs)
	case *workload != "":
		w, ok := trace.ByName(*workload)
		if !ok {
			fail(fmt.Errorf("unknown workload %q", *workload))
		}
		ios, err = trace.Generate(w, trace.GenConfig{
			Instructions: *n,
			LogicalPages: cfg.Geo.TotalPages() * 9 / 10,
			PageSize:     cfg.Geo.PageSize,
			AlignStride:  int64(cfg.Geo.NumChips()),
			Seed:         *seed,
		})
		fail(err)
	case *seqread > 0:
		ios, err = trace.GenerateFixed(trace.FixedConfig{
			Count: *seqread, Pages: *pages, Kind: req.Read, Sequential: true,
			LogicalPages: cfg.Geo.TotalPages() * 9 / 10,
		})
		fail(err)
	case *seqwrite > 0:
		ios, err = trace.GenerateFixed(trace.FixedConfig{
			Count: *seqwrite, Pages: *pages, Kind: req.Write, Sequential: true,
			LogicalPages: cfg.Geo.TotalPages() * 9 / 10,
		})
		fail(err)
	default:
		fmt.Fprintln(os.Stderr, "sprinklersim: need one of -workload, -trace, -seqread, -seqwrite")
		flag.Usage()
		os.Exit(2)
	}

	s, err := experiments.NewScheduler(*schedName)
	fail(err)
	if *gcStress {
		cfg.Geo.BlocksPerPlane = 24
		cfg.Geo.PagesPerBlock = 64
		cfg.LogicalPages = cfg.Geo.TotalPages() * 85 / 100
	}
	dev, err := ssd.New(cfg, s)
	fail(err)
	if *gcStress {
		dev.Precondition(0.95, 0.5, *seed)
	}

	res, err := dev.Run(&ssd.SliceSource{IOs: ios})
	fail(err)

	fmt.Printf("scheduler        %s\n", res.Scheduler)
	fmt.Printf("platform         %d chips (%d ch x %d), %d dies x %d planes\n",
		cfg.Geo.NumChips(), cfg.Geo.Channels, cfg.Geo.ChipsPerChan, cfg.Geo.DiesPerChip, cfg.Geo.PlanesPerDie)
	fmt.Printf("I/Os completed   %d (%d MB read, %d MB written)\n",
		res.IOsCompleted, res.BytesRead>>20, res.BytesWritten>>20)
	fmt.Printf("duration         %v\n", res.Duration)
	fmt.Printf("bandwidth        %.1f MB/s\n", res.BandwidthKBps()/1024)
	fmt.Printf("IOPS             %.0f\n", res.IOPS())
	fmt.Printf("avg latency      %v\n", res.AvgLatency())
	fmt.Printf("queue stall      %.1f%% of run\n", 100*res.QueueStallFraction())
	fmt.Printf("chip utilization %.1f%%\n", 100*res.ChipUtilization)
	fmt.Printf("idleness         inter-chip %.1f%%, intra-chip %.1f%%\n",
		100*res.InterChipIdleness, 100*res.IntraChipIdleness)
	fmt.Printf("transactions     %d (avg FLP degree %.2f)\n", res.Transactions, res.AvgFLPDegree)
	fmt.Printf("FLP shares       NON-PAL %.1f%%, PAL1 %.1f%%, PAL2 %.1f%%, PAL3 %.1f%%\n",
		100*res.FLP.Share[0], 100*res.FLP.Share[1], 100*res.FLP.Share[2], 100*res.FLP.Share[3])
	fmt.Printf("exec breakdown   bus %.1f%%, contention %.1f%%, cell %.1f%%, idle %.1f%%\n",
		100*res.Exec.BusOp, 100*res.Exec.BusContention, 100*res.Exec.CellOp, 100*res.Exec.Idle)
	if res.GC.GCRuns > 0 {
		fmt.Printf("garbage collect  %d runs, %d migrations, %d erases\n",
			res.GC.GCRuns, res.GC.GCWrites, res.GC.GCErases)
	}
	if res.StaleRetranslations > 0 {
		fmt.Printf("stale addresses  %d re-translations\n", res.StaleRetranslations)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "sprinklersim:", err)
		os.Exit(1)
	}
}
