// Command sprinklerd serves the simulator as a daemon: clients open named
// sessions over HTTP/JSON against a shared bounded arena of warm devices,
// stream requests in, advance simulated time, and stream snapshot windows
// out. Admission is controlled (session cap, device budget, per-session
// backlog budgets) with 429/503 + Retry-After backpressure; idle sessions
// are reclaimed back into the arena; SIGTERM drains gracefully — every
// accepted session still produces its final Result before exit 0.
//
// Usage:
//
//	sprinklerd -addr :8080 -max-sessions 64 -max-devices 8
//	sprinklerd -addr :8080 -chips 256 -sched SPK2 -idle-expiry 1m
//	sprinklerd -smoke http://127.0.0.1:8080   # CI smoke driver
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sprinkler/internal/cliutil"
	"sprinkler/internal/serve"
	"sprinkler/internal/serve/client"
)

func main() {
	app := cliutil.NewApp("sprinklerd")
	defer app.Close()

	var plat cliutil.Platform
	plat.Register(flag.CommandLine)
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	maxSessions := flag.Int("max-sessions", 64, "concurrent session cap (opens beyond it get 429)")
	maxDevices := flag.Int("max-devices", 8, "live simulated device budget (opens beyond it get 503); every open session holds a device, so this also bounds concurrency")
	maxBacklog := flag.Int("max-backlog", 64<<10, "per-session submitted-but-uncompleted I/O budget")
	seriesWindow := flag.Int("series-window", 4096, "per-session retained latency-series budget")
	idleExpiry := flag.Duration("idle-expiry", 2*time.Minute, "reclaim sessions idle this long (0 disables)")
	reqTimeout := flag.Duration("request-timeout", 30*time.Second, "max wait for a busy session before 503")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "per-session drain budget at expiry/shutdown")
	snapshotDir := flag.String("snapshot-dir", "", "directory of warm-state snapshot files that sessions may name via warmState (empty disables)")
	smoke := flag.String("smoke", "", "run the smoke client against a daemon at this URL and exit")
	flag.Parse()

	if *smoke != "" {
		app.Check(runSmoke(*smoke))
		fmt.Println("smoke: ok")
		return
	}

	opts := serve.DefaultOptions()
	opts.BaseConfig = plat.Config()
	opts.MaxSessions = *maxSessions
	opts.MaxDevices = *maxDevices
	opts.MaxBacklog = *maxBacklog
	opts.SeriesWindow = *seriesWindow
	opts.IdleExpiry = *idleExpiry
	opts.RequestTimeout = *reqTimeout
	opts.DrainTimeout = *drainTimeout
	opts.SnapshotDir = *snapshotDir
	app.Check(opts.BaseConfig.Validate())

	srv := serve.NewServer(opts)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "sprinklerd: serving on %s (%d chips, %s, %d sessions over %d devices)\n",
			*addr, opts.BaseConfig.Channels*opts.BaseConfig.ChipsPerChan, opts.BaseConfig.Scheduler,
			opts.MaxSessions, opts.MaxDevices)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		app.Check(err)
	case <-ctx.Done():
	}

	// Graceful drain: stop accepting connections, finish in-flight
	// requests, then drain every open session to its final Result. A clean
	// shutdown exits 0 with each checkpointed result logged.
	fmt.Fprintln(os.Stderr, "sprinklerd: shutting down, draining sessions...")
	shCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout+30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "sprinklerd: http shutdown:", err)
	}
	open := srv.Sessions()
	if err := srv.Close(shCtx); err != nil {
		app.Failf("drain: %v", err)
	}
	for _, info := range open {
		if res, rerr, ok := srv.Result(info.ID); ok && rerr == nil && res != nil {
			fmt.Fprintf(os.Stderr, "sprinklerd: session %s drained: %d I/Os, %.1f KB/s, avg latency %.3f ms\n",
				info.ID, res.IOsCompleted, res.BandwidthKBps, float64(res.AvgLatencyNS)/1e6)
		}
	}
	fmt.Fprintln(os.Stderr, "sprinklerd: drained cleanly")
}

// runSmoke drives a short end-to-end workload against a running daemon:
// open, feed a named workload, advance in windows, watch, drain, verify
// the Result and the /metrics exposition. Exits non-zero on any failure —
// the CI daemon-smoke job runs exactly this.
func runSmoke(base string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := client.New(base)

	sess, err := c.OpenWait(ctx, serve.OpenRequest{Name: "smoke", Scheduler: "SPK3", Seed: 42})
	if err != nil {
		return fmt.Errorf("open: %w", err)
	}

	const want = 500
	fed, err := sess.Feed(ctx, serve.FeedSpec{
		Workload: &serve.WorkloadSpec{Name: "cfs0", Requests: want},
	})
	if err != nil {
		return fmt.Errorf("feed: %w", err)
	}
	if fed.Fed != want {
		return fmt.Errorf("feed admitted %d of %d requests", fed.Fed, want)
	}

	// Advance until the backlog clears, watching the snapshot stream move.
	prev, err := sess.Snapshot(ctx)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	for i := 0; i < 10000; i++ {
		snap, err := sess.Advance(ctx, 10_000_000) // 10ms windows
		if err != nil {
			return fmt.Errorf("advance: %w", err)
		}
		if snap.SimTimeNS <= prev.SimTimeNS {
			return fmt.Errorf("advance did not move simulated time (%d -> %d)", prev.SimTimeNS, snap.SimTimeNS)
		}
		win := snap.Since(prev)
		if win.SimTimeNS <= 0 {
			return fmt.Errorf("windowed delta is degenerate: %+v", win)
		}
		prev = snap
		if snap.IOsCompleted >= want {
			break
		}
	}
	if prev.IOsCompleted < want {
		return fmt.Errorf("backlog never cleared: %d of %d completed", prev.IOsCompleted, want)
	}

	// The long-poll watch must return immediately once sim time passed it.
	if _, err := sess.Watch(ctx, prev.SimTimeNS-1, 5*time.Second); err != nil {
		return fmt.Errorf("watch: %w", err)
	}

	res, err := sess.Drain(ctx)
	if err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if res.IOsCompleted != want {
		return fmt.Errorf("result completed %d of %d I/Os", res.IOsCompleted, want)
	}
	if res.Scheduler != "SPK3" {
		return fmt.Errorf("result scheduler %q, want SPK3", res.Scheduler)
	}

	metrics, err := c.Metrics(ctx)
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	for _, series := range []string{
		"sprinklerd_sessions_open",
		"sprinklerd_sessions_opened_total",
		"sprinklerd_sessions_drained_total",
		"sprinklerd_requests_admitted_total",
		"sprinklerd_ios_submitted_total",
		"sprinklerd_arena_device_misses_total",
	} {
		if !strings.Contains(metrics, series) {
			return fmt.Errorf("metrics exposition is missing %s:\n%s", series, metrics)
		}
	}

	return nil
}
