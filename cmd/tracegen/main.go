// Command tracegen emits synthetic workload traces from the Table 1
// catalogue in the repository's CSV format (arrival_ns,op,lpn,pages),
// ready for replay with `sprinklersim -trace` or sprinkler.NewCSVSource.
//
// Usage:
//
//	tracegen -list
//	tracegen -workload msnfs1 -n 3000 > msnfs1.csv
//	tracegen -workload cfs3 -n 1000 -seed 7 -o cfs3.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"sprinkler"
	"sprinkler/internal/trace"
)

func main() {
	list := flag.Bool("list", false, "list catalogue workloads and exit")
	name := flag.String("workload", "", "Table 1 workload name (see -list)")
	n := flag.Int("n", 2000, "number of I/O requests")
	seed := flag.Uint64("seed", 0, "generator seed (0 = derived from the name)")
	out := flag.String("o", "", "output file (default stdout)")
	chips := flag.Int("chips", 64, "target platform chip count (sizes the address space)")
	flag.Parse()

	if *list {
		fmt.Printf("%-8s %9s %9s %8s %8s %9s\n", "name", "readMB", "writeMB", "avgR(KB)", "avgW(KB)", "locality")
		for _, w := range trace.Table1() {
			fmt.Printf("%-8s %9d %9d %8.1f %8.1f %9s\n",
				w.Name, w.ReadMB, w.WriteMB, w.AvgReadKB(), w.AvgWriteKB(), w.TxnLocality)
		}
		return
	}

	cfg := sprinkler.Platform(*chips)
	reqs, err := cfg.GenerateWorkload(*name, *n, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v (use -list)\n", err)
		os.Exit(1)
	}

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		dst = f
	}
	if err := sprinkler.WriteCSV(dst, reqs); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
