// Command tracegen emits synthetic workload traces from the Table 1
// catalogue in the repository's CSV format (arrival_ns,op,lpn,pages),
// ready for replay with `sprinklersim -trace` or sprinkler.NewCSVSource.
// Workload-structure combinators — weighted mixes, Poisson arrivals,
// on/off burst envelopes, Zipf spatial skew, read-ratio rewrites — can be
// stacked onto the base workload so a generated CSV exercises them
// standalone.
//
// Usage:
//
//	tracegen -list
//	tracegen -workload msnfs1 -n 3000 > msnfs1.csv
//	tracegen -workload cfs3 -n 1000 -seed 7 -o cfs3.csv
//	tracegen -mix msnfs1:3,cfs0:1 -n 5000 > mixed.csv
//	tracegen -workload hm0 -n 10000 -poisson 150000 -burst-on 2000000 -burst-off 6000000 > bursty.csv
//	tracegen -workload websearch1 -n 2000 -zipf 0.99 -read-frac 0.8 > skewed.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sprinkler"
	"sprinkler/internal/trace"
)

func main() {
	list := flag.Bool("list", false, "list catalogue workloads and exit")
	name := flag.String("workload", "", "Table 1 workload name (see -list)")
	mix := flag.String("mix", "", "weighted workload mix, e.g. msnfs1:3,cfs0:1 (overrides -workload)")
	n := flag.Int("n", 2000, "number of I/O requests")
	seed := flag.Uint64("seed", 0, "generator seed (0 = derived from the name)")
	out := flag.String("o", "", "output file (default stdout)")
	chips := flag.Int("chips", 64, "target platform chip count (sizes the address space)")
	poisson := flag.Float64("poisson", 0, "rewrite arrivals as open-loop Poisson at this rate (req/s; 0 = keep the generator's timeline)")
	burstOn := flag.Int64("burst-on", 0, "burst on-window in ns (with -burst-off; duty cycle = on/(on+off))")
	burstOff := flag.Int64("burst-off", 0, "burst off-gap in ns")
	zipf := flag.Float64("zipf", 0, "redraw addresses from a Zipf-like power law with this theta (0 = keep)")
	readFrac := flag.Float64("read-frac", -1, "redraw request directions: read with this probability (-1 = keep)")
	flag.Parse()

	if *list {
		fmt.Printf("%-8s %9s %9s %8s %8s %9s\n", "name", "readMB", "writeMB", "avgR(KB)", "avgW(KB)", "locality")
		for _, w := range trace.Table1() {
			fmt.Printf("%-8s %9d %9d %8.1f %8.1f %9s\n",
				w.Name, w.ReadMB, w.WriteMB, w.AvgReadKB(), w.AvgWriteKB(), w.TxnLocality)
		}
		return
	}
	if *n <= 0 {
		fail(fmt.Errorf("-n must be positive, got %d", *n))
	}

	spec, err := baseSpec(*name, *mix, *n)
	fail(err)
	if *zipf > 0 {
		spec = spec.WithZipf(*zipf)
	}
	if *readFrac >= 0 {
		spec = spec.WithReadRatio(*readFrac)
	}
	if *poisson > 0 {
		spec = spec.WithPoisson(*poisson)
	}
	if *burstOn > 0 || *burstOff > 0 {
		spec = spec.WithBurst(*burstOn, *burstOff)
	}

	cfg := sprinkler.Platform(*chips)
	src, err := spec.New(cfg, *seed)
	fail(err)
	reqs := make([]sprinkler.Request, 0, *n)
	for len(reqs) < *n {
		r, ok := src.Next()
		if !ok {
			break
		}
		reqs = append(reqs, r)
	}
	fail(sprinklerErr(src))

	dst := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		fail(err)
		defer f.Close()
		dst = f
	}
	fail(sprinkler.WriteCSV(dst, reqs))
}

// baseSpec resolves the workload axis: a single Table 1 workload, or a
// weighted mix of them (each component unbounded, the mix capped at n).
func baseSpec(name, mix string, n int) (sprinkler.SourceSpec, error) {
	if mix == "" {
		if name == "" {
			return sprinkler.SourceSpec{}, fmt.Errorf("need -workload or -mix (use -list)")
		}
		return sprinkler.WorkloadSpec{Name: name, Requests: n}.Spec(), nil
	}
	var items []sprinkler.WeightedSpec
	var labels []string
	for _, part := range strings.Split(mix, ",") {
		part = strings.TrimSpace(part)
		w, weight := part, 1.0
		if i := strings.LastIndex(part, ":"); i >= 0 {
			var err error
			if weight, err = strconv.ParseFloat(part[i+1:], 64); err != nil || weight <= 0 {
				return sprinkler.SourceSpec{}, fmt.Errorf("bad mix weight in %q", part)
			}
			w = part[:i]
		}
		if w == "" {
			return sprinkler.SourceSpec{}, fmt.Errorf("bad mix component %q", part)
		}
		items = append(items, sprinkler.WeightedSpec{
			Spec:   sprinkler.WorkloadSpec{Name: w, Requests: 0}.Spec(),
			Weight: weight,
		})
		labels = append(labels, part)
	}
	if len(items) == 0 {
		return sprinkler.SourceSpec{}, fmt.Errorf("empty -mix")
	}
	label := "mix(" + strings.Join(labels, ",") + ")"
	return sprinkler.MixSpec(label, items...).WithLimit(int64(n)), nil
}

// sprinklerErr surfaces a source's terminal error, if any.
func sprinklerErr(src sprinkler.Source) error {
	if es, ok := src.(interface{ Err() error }); ok {
		return es.Err()
	}
	return nil
}

func fail(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}
