// Command experiments regenerates the tables and figures of the paper's
// evaluation (§5).
//
// Usage:
//
//	experiments -fig all            # everything (minutes at full scale)
//	experiments -fig 10a -scale 0.2 # one figure, scaled down
//	experiments -fig table1
//
// Figures sharing the 5-scheduler × 16-workload sweep (6, 10a-d, 11a/b,
// 13, 14, summary) run it once and slice it.
package main

import (
	"flag"
	"fmt"
	"strings"

	"sprinkler/internal/cliutil"
	"sprinkler/internal/experiments"
)

func main() {
	app := cliutil.NewApp("experiments")
	defer app.Close()

	fig := flag.String("fig", "all", "figure to regenerate: table1, 1, 6, 10a, 10b, 10c, 10d, 11, 12, 13, 14, 15, 16, 17, burst, ablation, faults, summary, all")
	scale := flag.Float64("scale", 1.0, "experiment scale in (0,1]; smaller = faster")
	chips := flag.Int("chips", 64, "platform size for the per-workload evaluation")
	seed := flag.Uint64("seed", 0, "synthetic trace seed")
	workers := flag.Int("workers", 0, "concurrent sweep cells (0 = all CPU cores)")
	parallel := flag.Int("parallel-channels", 0, "per-device parallel-kernel worker threads (results stay byte-identical, GC and fault cells included; <2 or a single-channel platform keeps the serial kernel)")
	noreuse := flag.Bool("noreuse", false, "build a fresh device per sweep cell instead of recycling through the device arena (results are identical; useful for profiling construction cost)")
	saveState := flag.String("save-state", "", "precondition the evaluation platform to GC steady state once, write its warm state to this file, and exit")
	loadState := flag.String("load-state", "", "hydrate every evaluation cell from this warm-state snapshot (aged-drive evaluation at fresh-drive cost)")
	var faults cliutil.Platform
	faults.RegisterFaults(flag.CommandLine)
	profiles := app.ProfileFlags(flag.CommandLine)
	flag.Parse()

	// Profile teardown must run even on a failed run: app.Check routes
	// through the cleanups before exiting, so an aborted sweep still leaves
	// a usable CPU profile and a heap snapshot of the failure point.
	app.Check(profiles.Start())
	fail := app.Check

	opts := experiments.Options{Scale: *scale, Chips: *chips, Seed: *seed, Workers: *workers, NoReuse: *noreuse, Parallel: *parallel, Faults: faults.Faults(), LoadState: *loadState}
	if *parallel != 0 {
		// Report which event kernel the knob resolves to on this platform
		// (eligibility no longer depends on GC, only on the channel count).
		kcfg := experiments.Platform(*chips)
		kcfg.ParallelChannels = *parallel
		if kcfg.UsesParallelKernel() {
			fmt.Printf("event kernel: partitioned per-channel, %d workers per device\n", *parallel)
		} else {
			fmt.Println("event kernel: serial (-parallel-channels ineligible on this platform)")
		}
	}
	if *saveState != "" {
		app.Check(experiments.SaveWarmState(opts, *saveState))
		fmt.Printf("warm state saved to %s\n", *saveState)
		return
	}
	want := strings.ToLower(*fig)
	has := func(names ...string) bool {
		if want == "all" {
			return true
		}
		for _, n := range names {
			if want == n {
				return true
			}
		}
		return false
	}

	if has("table1") {
		fmt.Println(experiments.Table1Report())
	}
	if has("1", "1a", "1b") {
		pts, err := experiments.RunFig1(opts)
		fail(err)
		fmt.Println(experiments.FormatFig1(pts))
	}

	needEval := has("6", "10a", "10b", "10c", "10d", "11", "11a", "11b", "13", "14", "summary")
	if needEval {
		ev, err := experiments.RunEvaluation(opts)
		fail(err)
		if has("6") {
			fmt.Println(ev.Fig6())
		}
		if has("10a") {
			fmt.Println(ev.Fig10a())
		}
		if has("10b") {
			fmt.Println(ev.Fig10b())
		}
		if has("10c") {
			fmt.Println(ev.Fig10c())
		}
		if has("10d") {
			fmt.Println(ev.Fig10d())
		}
		if has("11", "11a", "11b") {
			fmt.Println(ev.Fig11a())
			fmt.Println(ev.Fig11b())
		}
		if has("13") {
			fmt.Println(experiments.Fig13(ev))
		}
		if has("14") {
			fmt.Println(experiments.Fig14(ev))
		}
		if has("summary") {
			fmt.Println(ev.Summary())
		}
	}

	if has("12") {
		out, err := experiments.RunFig12(opts)
		fail(err)
		fmt.Println(out)
	}
	if has("15", "16") {
		pts, err := experiments.RunFig15(opts)
		fail(err)
		if has("15") {
			fmt.Println(experiments.FormatFig15(pts))
		}
		if has("16") {
			fmt.Println(experiments.FormatFig16(pts))
		}
	}
	if has("17") {
		pts, err := experiments.RunFig17(opts)
		fail(err)
		fmt.Println(experiments.FormatFig17(pts))
	}
	if has("burst") {
		pts, err := experiments.RunBurstiness(opts)
		fail(err)
		fmt.Println(experiments.FormatBurstiness(pts))
	}
	if has("ablation") {
		rows, err := experiments.RunAblation(opts)
		fail(err)
		fmt.Println(experiments.FormatAblation(rows))
	}
	if has("faults") {
		pts, err := experiments.RunFaultStudy(opts)
		fail(err)
		fmt.Println(experiments.FormatFaultStudy(pts))
	}
}
