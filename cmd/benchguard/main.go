// Command benchguard diffs two `go test -bench` output files and fails
// (exit 1) when a named benchmark regressed beyond a tolerance. CI runs
// it after the bench sweep to hold the line against the archived PR 2
// baseline:
//
//	go run ./cmd/benchguard -baseline bench/BENCH_pr2_baseline.txt \
//	    -current BENCH_pr.txt -metric allocs -max-regress 0.15 \
//	    BenchmarkStreamingOpenLoop BenchmarkSchedulers/SPK3
//
// Metrics: "allocs" (allocs/op — deterministic across machines, the CI
// default), "bytes" (B/op) and "ns" (ns/op — only meaningful when both
// files came from the same machine class).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// measurement is one benchmark line's parsed metrics.
type measurement struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
	hasNS       bool
	hasBytes    bool
	hasAllocs   bool
}

// parseBench reads a `go test -bench` output file into name → measurement.
// Names are normalized with the -N GOMAXPROCS suffix stripped.
func parseBench(path string) (map[string]measurement, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]measurement{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var m measurement
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.nsPerOp, m.hasNS = v, true
			case "B/op":
				m.bytesPerOp, m.hasBytes = v, true
			case "allocs/op":
				m.allocsPerOp, m.hasAllocs = v, true
			}
		}
		out[name] = m
	}
	return out, sc.Err()
}

// metricOf extracts the requested metric, reporting whether it was present.
func metricOf(m measurement, metric string) (float64, bool) {
	switch metric {
	case "ns":
		return m.nsPerOp, m.hasNS
	case "bytes":
		return m.bytesPerOp, m.hasBytes
	case "allocs":
		return m.allocsPerOp, m.hasAllocs
	}
	return 0, false
}

func main() {
	baseline := flag.String("baseline", "", "baseline bench output file")
	current := flag.String("current", "", "current bench output file")
	metric := flag.String("metric", "allocs", "metric to guard: allocs, bytes, or ns")
	maxRegress := flag.Float64("max-regress", 0.15, "maximum allowed relative regression (0.15 = +15%)")
	flag.Parse()
	benches := flag.Args()
	if *baseline == "" || *current == "" || len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchguard -baseline FILE -current FILE [-metric allocs|bytes|ns] [-max-regress F] Benchmark...")
		os.Exit(2)
	}
	base, err := parseBench(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	cur, err := parseBench(*current)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	failed := false
	for _, name := range benches {
		b, ok := base[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: %s missing from baseline %s\n", name, *baseline)
			failed = true
			continue
		}
		c, ok := cur[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchguard: %s missing from current %s\n", name, *current)
			failed = true
			continue
		}
		bv, bok := metricOf(b, *metric)
		cv, cok := metricOf(c, *metric)
		if !bok || !cok {
			fmt.Fprintf(os.Stderr, "benchguard: %s lacks %s/op in one of the files\n", name, *metric)
			failed = true
			continue
		}
		if bv == 0 {
			// A zero baseline cannot regress relatively; require zero.
			if cv > 0 {
				fmt.Fprintf(os.Stderr, "FAIL %s: %s/op %v, baseline 0\n", name, *metric, cv)
				failed = true
			}
			continue
		}
		ratio := cv/bv - 1
		status := "ok"
		if ratio > *maxRegress {
			status = "FAIL"
			failed = true
		}
		fmt.Printf("%-4s %s: %s/op %v -> %v (%+.1f%%, limit +%.0f%%)\n",
			status, name, *metric, bv, cv, ratio*100, *maxRegress*100)
	}
	if failed {
		os.Exit(1)
	}
}
