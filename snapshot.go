package sprinkler

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"sprinkler/internal/ssd"
)

// Warm-state snapshots: precondition once, hydrate everywhere.
//
// Preconditioning a large platform to GC steady state costs minutes of
// wall-clock at figure scale and is byte-identical every time it runs
// with the same parameters — so pay it once. Checkpoint serializes a
// quiescent device's complete warm state (FTL page tables and wear,
// per-plane spare pools and bad-block retirements, metrics accumulators,
// queue admission counters, engine clocks, and every deterministic RNG
// stream position) into a versioned, checksummed binary file, and
// RestoreDevice rebuilds a device from it that behaves byte-identically
// to one that replayed the warm-up. The snapshot embeds the full Config
// it was captured under; restoring never requires — and never accepts —
// a second configuration that could drift from it.
//
// File layout (all integers little-endian):
//
//	[8]  magic "SPKSNAP1"
//	[4]  format version (uint32)
//	[v]  uvarint config length, then that many bytes of Config JSON
//	[v]  uvarint payload length, then the binary device-state payload
//	[4]  CRC-32 (IEEE) of everything above
//
// Readers load the whole file and verify the checksum before decoding a
// single field, so a truncated or corrupted snapshot is rejected with a
// descriptive error and nothing is ever partially hydrated.

// snapshotMagic brands snapshot files; the trailing digit is bumped only
// if the framing itself (not the payload) changes shape.
const snapshotMagic = "SPKSNAP1"

// SnapshotVersion is the current snapshot format version. Readers reject
// other versions rather than guess at payload layout.
const SnapshotVersion = 1

// DeviceSnapshot is a decoded warm-state snapshot: the configuration it
// was
// captured under plus the device state. Decode once with ReadSnapshot,
// then hydrate any number of devices from it — NewDevice builds fresh
// ones, and DeviceArena.GetFromSnapshot recycles pooled ones.
type DeviceSnapshot struct {
	cfg   Config
	state *ssd.DeviceState
}

// Config returns the configuration the snapshot was captured under.
func (s *DeviceSnapshot) Config() Config { return s.cfg }

// SnapshotStats summarizes how aged a snapshot's captured device is —
// the numbers a catalog shows so a client can pick a warm state without
// hydrating it. All counters are cumulative over the capture's history.
type SnapshotStats struct {
	// SimTimeNS is the captured simulation clock.
	SimTimeNS int64 `json:"simTimeNS"`

	// IOsCompleted counts host I/Os the captured device had completed.
	IOsCompleted int64 `json:"iosCompleted"`

	// HostWrites/GCRuns/GCErases measure the aging itself: page writes
	// the host issued, and how much background collection they forced.
	HostWrites int64 `json:"hostWrites"`
	GCRuns     int64 `json:"gcRuns"`
	GCErases   int64 `json:"gcErases"`

	// BadBlocks/RetiredBlocks/SparesUsed/Degraded carry the fault
	// model's wear state: blocks retired to the spare pool and whether
	// the drive was already degraded to read-only when captured.
	BadBlocks     int64 `json:"badBlocks,omitempty"`
	RetiredBlocks int64 `json:"retiredBlocks,omitempty"`
	SparesUsed    int64 `json:"sparesUsed,omitempty"`
	Degraded      bool  `json:"degraded,omitempty"`

	// SeriesPoints counts carried latency-series points (non-zero only
	// for mid-experiment captures, which constrain hydration configs).
	SeriesPoints int `json:"seriesPoints,omitempty"`
}

// Stats summarizes the snapshot's warm state.
func (s *DeviceSnapshot) Stats() SnapshotStats {
	return SnapshotStats{
		SimTimeNS:     int64(s.state.Engine.Now),
		IOsCompleted:  s.state.IOsDone,
		HostWrites:    s.state.FTL.HostWrites,
		GCRuns:        s.state.FTL.GCRuns,
		GCErases:      s.state.FTL.GCErases,
		BadBlocks:     s.state.FTL.BadBlocks,
		RetiredBlocks: s.state.FTL.RetiredBlocks,
		SparesUsed:    s.state.FTL.SparesUsed,
		Degraded:      s.state.FTL.Degraded,
		SeriesPoints:  len(s.state.Series),
	}
}

// CompatibleConfig reports whether cfg may run on a device hydrated from
// this snapshot: it must equal the captured configuration in every field
// except Scheduler, MaxBacklog, ParallelChannels, CollectSeries and
// SeriesWindow. Warm state is scheduler-independent (preconditioning
// never touches the scheduler, and per-run scheduler state is never part
// of a snapshot), MaxBacklog only bounds host-side buffering (arrival
// timestamps — and therefore the simulation — are unaffected),
// ParallelChannels only selects the event kernel (serial and partitioned
// kernels produce byte-identical timelines, and a quiescent snapshot
// carries no pending events, so hydration adapts the clock shape), and
// the series knobs only select what a run records. Any other difference
// would change what the warm-up itself produced, so it is refused. One
// caveat enforced at hydration time: a snapshot that itself carries
// latency-series points (captured mid-experiment rather than after
// preconditioning) requires the series knobs to match exactly, since a
// different window would have retained a different history.
func (s *DeviceSnapshot) CompatibleConfig(cfg Config) bool {
	c := s.cfg
	c.Scheduler = cfg.Scheduler
	c.MaxBacklog = cfg.MaxBacklog
	c.ParallelChannels = cfg.ParallelChannels
	c.CollectSeries = cfg.CollectSeries
	c.SeriesWindow = cfg.SeriesWindow
	return c == cfg
}

// Checkpoint writes the device's complete warm state to w. The device
// must be quiescent — freshly preconditioned, drained, or reset; a
// checkpoint mid-run (I/Os in flight, events pending) is refused.
func (d *Device) Checkpoint(w io.Writer) error {
	st, err := d.inner.CaptureState()
	if err != nil {
		return err
	}
	return encodeSnapshot(w, d.cfg, st)
}

// RestoreDevice reads a snapshot and builds a device from it, ready to
// run as if it had just replayed the warm-up the snapshot captured.
func RestoreDevice(r io.Reader) (*Device, error) {
	snap, err := ReadSnapshot(r)
	if err != nil {
		return nil, err
	}
	return snap.NewDevice()
}

// ReadSnapshot reads and fully validates a snapshot: magic, version,
// checksum, configuration, and payload structure. Nothing device-shaped
// is built yet; use NewDevice (or DeviceArena.GetFromSnapshot) for that.
func ReadSnapshot(r io.Reader) (*DeviceSnapshot, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("sprinkler: reading snapshot: %w", err)
	}
	const overhead = len(snapshotMagic) + 4 /* version */ + 1 + 1 /* min lengths */ + 4 /* crc */
	if len(raw) < overhead {
		return nil, fmt.Errorf("sprinkler: snapshot truncated: %d bytes is shorter than the minimal header", len(raw))
	}
	if string(raw[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("sprinkler: not a snapshot file (bad magic %q)", raw[:len(snapshotMagic)])
	}
	body, trailer := raw[:len(raw)-4], raw[len(raw)-4:]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(trailer); got != want {
		return nil, fmt.Errorf("sprinkler: snapshot checksum mismatch (file corrupted or truncated): computed %08x, stored %08x", got, want)
	}
	rest := body[len(snapshotMagic):]
	version := binary.LittleEndian.Uint32(rest[:4])
	if version != SnapshotVersion {
		return nil, fmt.Errorf("sprinkler: snapshot format version %d not supported (this build reads version %d)", version, SnapshotVersion)
	}
	rest = rest[4:]
	cfgJSON, rest, err := lengthPrefixed(rest, "config")
	if err != nil {
		return nil, err
	}
	payload, rest, err := lengthPrefixed(rest, "payload")
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("sprinkler: snapshot has %d trailing bytes after the payload", len(rest))
	}
	var cfg Config
	dec := json.NewDecoder(bytes.NewReader(cfgJSON))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return nil, fmt.Errorf("sprinkler: snapshot config: %w", err)
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("sprinkler: snapshot config invalid: %w", err)
	}
	st, err := ssd.DecodeDeviceState(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("sprinkler: %w", err)
	}
	return &DeviceSnapshot{cfg: cfg, state: st}, nil
}

// NewDevice builds a fresh device from the snapshot. The optional cfg
// overrides the embedded configuration; it must satisfy CompatibleConfig
// — warm state is scheduler-independent, so one preconditioned snapshot
// hydrates a device for each scheduler under test.
func (s *DeviceSnapshot) NewDevice(cfg ...Config) (*Device, error) {
	runCfg := s.cfg
	if len(cfg) > 1 {
		return nil, fmt.Errorf("sprinkler: NewDevice takes at most one config override")
	}
	if len(cfg) == 1 {
		if !s.CompatibleConfig(cfg[0]) {
			return nil, fmt.Errorf("sprinkler: config differs from the snapshot's beyond the scheduler and host-side observation knobs")
		}
		runCfg = cfg[0]
	}
	d, err := New(runCfg)
	if err != nil {
		return nil, err
	}
	if err := s.hydrate(d); err != nil {
		return nil, err
	}
	return d, nil
}

// hydrate loads the snapshot state into a freshly built or freshly Reset
// device whose config satisfies CompatibleConfig. On error the device
// must be discarded — state may be partially applied.
func (s *DeviceSnapshot) hydrate(d *Device) error { return s.hydrateInner(d.inner, d.cfg) }

// hydrateInner is hydrate for callers holding the internal device (the
// Session open path). It enforces the series caveat CompatibleConfig
// defers to hydration time: series-carrying snapshots only restore under
// the series configuration they were captured with.
func (s *DeviceSnapshot) hydrateInner(inner *ssd.Device, cfg Config) error {
	if len(s.state.Series) > 0 &&
		(cfg.CollectSeries != s.cfg.CollectSeries || cfg.SeriesWindow != s.cfg.SeriesWindow) {
		return fmt.Errorf("sprinkler: snapshot carries a latency series; CollectSeries/SeriesWindow must match the captured config")
	}
	if err := inner.LoadState(s.state); err != nil {
		return fmt.Errorf("sprinkler: hydrating from snapshot: %w", err)
	}
	return nil
}

// encodeSnapshot frames config + payload with magic, version and CRC.
func encodeSnapshot(w io.Writer, cfg Config, st *ssd.DeviceState) error {
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return fmt.Errorf("sprinkler: encoding snapshot config: %w", err)
	}
	var payload bytes.Buffer
	if err := st.Encode(&payload); err != nil {
		return fmt.Errorf("sprinkler: encoding snapshot payload: %w", err)
	}
	var buf bytes.Buffer
	buf.Grow(len(snapshotMagic) + 4 + 2*binary.MaxVarintLen64 + len(cfgJSON) + payload.Len() + 4)
	buf.WriteString(snapshotMagic)
	var scratch [binary.MaxVarintLen64]byte
	binary.LittleEndian.PutUint32(scratch[:4], SnapshotVersion)
	buf.Write(scratch[:4])
	buf.Write(scratch[:binary.PutUvarint(scratch[:], uint64(len(cfgJSON)))])
	buf.Write(cfgJSON)
	buf.Write(scratch[:binary.PutUvarint(scratch[:], uint64(payload.Len()))])
	buf.Write(payload.Bytes())
	binary.LittleEndian.PutUint32(scratch[:4], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(scratch[:4])
	if _, err := w.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("sprinkler: writing snapshot: %w", err)
	}
	return nil
}

// lengthPrefixed splits one uvarint-length-prefixed section off b.
func lengthPrefixed(b []byte, what string) (section, rest []byte, err error) {
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return nil, nil, fmt.Errorf("sprinkler: snapshot %s length malformed", what)
	}
	b = b[w:]
	if n > uint64(len(b)) {
		return nil, nil, fmt.Errorf("sprinkler: snapshot %s length %d exceeds remaining %d bytes", what, n, len(b))
	}
	return b[:n], b[n:], nil
}
