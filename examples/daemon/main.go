// Daemon: drive a live sprinklerd over HTTP with the Go client. The
// example opens a named session, lets the server build a Table 1 workload
// from the declarative spec, advances simulated time in windows while
// computing warmup-excluded measurement deltas with Snapshot.Since, and
// drains to the final Result — the serving-mode equivalent of the
// streaming example, with the simulation living in another process.
//
// Start a daemon first:
//
//	go run ./cmd/sprinklerd -addr 127.0.0.1:8080
//
// then:
//
//	go run ./examples/daemon -url http://127.0.0.1:8080
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"sprinkler/internal/serve"
	"sprinkler/internal/serve/client"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8080", "sprinklerd base URL")
	workload := flag.String("workload", "msnfs1", "Table 1 workload the server synthesizes")
	n := flag.Int("n", 5000, "requests to run")
	rate := flag.Float64("rate", 100_000, "open-loop arrival rate (requests/s)")
	flag.Parse()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	c := client.New(*url)

	// OpenWait retries politely through 429/503 backpressure: a saturated
	// daemon answers with Retry-After instead of queueing silently.
	sess, err := c.OpenWait(ctx, serve.OpenRequest{
		Name:      "example",
		Scheduler: "SPK3",
		Seed:      1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("session %s: %d chips, %s\n", sess.ID, sess.Info.Chips, sess.Info.Scheduler)

	// The server builds the workload: generator -> Poisson arrivals, fed
	// up to the session's backlog budget per call. Feeding and advancing
	// interleave until the whole stream is in.
	spec := serve.FeedSpec{
		Workload:    &serve.WorkloadSpec{Name: *workload, Requests: *n},
		PoissonRate: *rate,
	}
	var fed int64
	for {
		fr, err := sess.Feed(ctx, spec)
		if err != nil {
			if apiErr, ok := err.(*client.APIError); ok && apiErr.Retryable() {
				if _, err := sess.Advance(ctx, int64(50*time.Millisecond)); err != nil {
					log.Fatal(err)
				}
				continue
			}
			log.Fatal(err)
		}
		fed += fr.Fed
		if fr.Fed == 0 {
			break
		}
		spec = serve.FeedSpec{} // continuation: keep pulling the same stream
	}
	fmt.Printf("fed %d requests\n", fed)

	// Advance in 50ms windows; the first windows are warmup, the rest are
	// measured via snapshot deltas — the same discipline as in-process
	// warmup/measurement experiments, but computed client-side from the
	// wire snapshots.
	warm, err := sess.Advance(ctx, int64(20*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	last := warm
	for last.IOsCompleted < int64(fed) {
		snap, err := sess.Advance(ctx, int64(50*time.Millisecond))
		if err != nil {
			log.Fatal(err)
		}
		win := snap.Since(last)
		fmt.Printf("  t=%6.0fms  window: %6d IOPS, %7.1f KB/s, util %4.1f%%\n",
			float64(snap.SimTimeNS)/1e6, int64(win.IOPS), win.BandwidthKBps,
			100*win.ChipUtilization)
		last = snap
	}

	res, err := sess.Drain(ctx)
	if err != nil {
		log.Fatal(err)
	}
	measured := last.Since(warm)
	fmt.Printf("\nfinal: %d I/Os, %.1f KB/s, avg latency %.3fms (measured window: %d IOPS)\n",
		res.IOsCompleted, res.BandwidthKBps, float64(res.AvgLatencyNS)/1e6, int64(measured.IOPS))
}
