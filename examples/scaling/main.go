// Scaling: the paper's motivating observation (Figure 1) — adding flash
// chips to a conventionally-scheduled SSD stops paying off, while
// Sprinkler keeps the added resources busy. The program sweeps the chip
// count and prints read bandwidth and chip utilization for VAS and SPK3.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sprinkler"
)

func main() {
	fmt.Printf("%6s %6s | %12s %12s | %8s %8s\n",
		"chips", "dies", "VAS MB/s", "SPK3 MB/s", "VAS ut%", "SPK3 ut%")

	for _, chips := range []int{8, 16, 32, 64, 128, 256} {
		vas := measure(chips, sprinkler.VAS)
		spk := measure(chips, sprinkler.SPK3)
		fmt.Printf("%6d %6d | %12.1f %12.1f | %8.1f %8.1f\n",
			chips, chips*2,
			vas.BandwidthKBps/1024, spk.BandwidthKBps/1024,
			100*vas.ChipUtilization, 100*spk.ChipUtilization)
	}
}

func measure(chips int, kind sprinkler.SchedulerKind) *sprinkler.Result {
	cfg := sprinkler.DefaultConfig()
	// Spread chips over channels roughly square, like the paper's
	// platforms (64 chips = 8x8, 256 = 16x16).
	ch := 1
	for ch*ch < chips {
		ch *= 2
	}
	if ch > 32 {
		ch = 32
	}
	cfg.Channels = ch
	cfg.ChipsPerChan = chips / ch
	cfg.BlocksPerPlane = 128
	cfg.Scheduler = kind

	dev, err := sprinkler.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// A fixed amount of random 32 KB read work: if added chips were
	// perfectly utilized, bandwidth would scale linearly.
	rng := rand.New(rand.NewSource(3))
	logical := int64(chips) * 2 * 4 * 128 * 128 * 9 / 10
	reqs := make([]sprinkler.Request, 1500)
	for i := range reqs {
		reqs[i] = sprinkler.Request{LPN: rng.Int63n(logical - 16), Pages: 16}
	}
	res, err := dev.RunRequests(reqs)
	if err != nil {
		log.Fatal(err)
	}
	return res
}
