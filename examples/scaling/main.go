// Scaling: the paper's motivating observation (Figure 1) — adding flash
// chips to a conventionally-scheduled SSD stops paying off, while
// Sprinkler keeps the added resources busy. The program declares the
// sweep as one experiment grid (chip-count axis × {VAS, SPK3}), runs it
// across every CPU core with devices recycled per topology, and prints
// read bandwidth and chip utilization for both schedulers.
package main

import (
	"context"
	"fmt"
	"log"

	"sprinkler"
)

func main() {
	chipCounts := []int{8, 16, 32, 64, 128, 256}

	chipsAxis := sprinkler.Axis{Name: "chips"}
	for _, chips := range chipCounts {
		chips := chips
		chipsAxis.Values = append(chipsAxis.Values, sprinkler.AxisValue{
			Label: fmt.Sprintf("%dc", chips),
			Apply: func(c *sprinkler.Config) { *c = platform(chips) },
		})
	}

	// A fixed amount of random 32 KB read work: if added chips were
	// perfectly utilized, bandwidth would scale linearly. Both schedulers
	// replay the identical workload per chip count (the grid derives one
	// seed per axis point, scheduler excluded).
	grid := sprinkler.Grid{
		Name:       "scaling",
		Base:       platform(chipCounts[0]),
		Schedulers: []sprinkler.SchedulerKind{sprinkler.VAS, sprinkler.SPK3},
		Vary:       []sprinkler.Axis{chipsAxis},
		Sources: []sprinkler.SourceSpec{{
			Label: "rand32K",
			New: func(cfg sprinkler.Config, seed uint64) (sprinkler.Source, error) {
				return cfg.NewFixedSource(sprinkler.FixedSpec{
					Requests: 1500, Pages: 16, Seed: seed,
				})
			},
		}},
	}

	byCell := map[string]*sprinkler.Result{} // "scheduler/chips" -> result
	for _, cr := range (sprinkler.Runner{}).Run(context.Background(), grid.Cells()) {
		if cr.Err != nil {
			log.Fatal(cr.Err)
		}
		byCell[cr.Labels["scheduler"]+"/"+cr.Labels["chips"]] = cr.Result
	}

	fmt.Printf("%6s %6s | %12s %12s | %8s %8s\n",
		"chips", "dies", "VAS MB/s", "SPK3 MB/s", "VAS ut%", "SPK3 ut%")
	for _, chips := range chipCounts {
		key := fmt.Sprintf("%dc", chips)
		vas, spk := byCell["VAS/"+key], byCell["SPK3/"+key]
		fmt.Printf("%6d %6d | %12.1f %12.1f | %8.1f %8.1f\n",
			chips, chips*2,
			vas.BandwidthKBps/1024, spk.BandwidthKBps/1024,
			100*vas.ChipUtilization, 100*spk.ChipUtilization)
	}
}

// platform spreads chips over channels roughly square, like the paper's
// platforms (64 chips = 8x8, 256 = 16x16).
func platform(chips int) sprinkler.Config {
	cfg := sprinkler.DefaultConfig()
	ch := 1
	for ch*ch < chips {
		ch *= 2
	}
	if ch > 32 {
		ch = 32
	}
	cfg.Channels = ch
	cfg.ChipsPerChan = chips / ch
	cfg.BlocksPerPlane = 128
	return cfg
}
