// Scheduler comparison: replay one of the paper's data-center workloads
// (Table 1) under all five device-level schedulers and reproduce the
// Figure 10 comparison — bandwidth, IOPS, latency, queue stall — plus the
// idleness and parallelism metrics of Figures 11 and 14.
//
// The five cells run concurrently through the Sweep/Runner API; each
// scheduler replays the identical trace, and per-cell seeding makes the
// concurrent results identical to a serial run.
//
// Usage: scheduler_comparison [workload] (default msnfs1)
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"sprinkler"
)

func main() {
	workload := "msnfs1"
	if len(os.Args) > 1 {
		workload = os.Args[1]
	}

	cfg := sprinkler.DefaultConfig()
	cells := sprinkler.Sweep(cfg, sprinkler.Schedulers(), []string{workload}, 2000)
	results := sprinkler.Runner{}.Run(context.Background(), cells)

	fmt.Printf("workload %s: 2000 I/Os on a 64-chip SSD, %d cells in parallel\n\n",
		workload, len(cells))
	fmt.Printf("%-6s %10s %8s %10s %8s %8s %8s %8s\n",
		"sched", "MB/s", "IOPS", "lat(ms)", "stall%", "util%", "intra%", "degree")

	var vasBW, vasLat float64
	var spk3BW, spk3Lat float64
	for i, cr := range results {
		if cr.Err != nil {
			log.Fatalf("%s: %v\navailable workloads: %v", cr.Name, cr.Err, sprinkler.Workloads())
		}
		res := cr.Result
		bw := res.BandwidthKBps / 1024
		lat := float64(res.AvgLatencyNS) / 1e6
		switch sprinkler.Schedulers()[i] {
		case sprinkler.VAS:
			vasBW, vasLat = bw, lat
		case sprinkler.SPK3:
			spk3BW, spk3Lat = bw, lat
		}
		fmt.Printf("%-6s %10.1f %8.0f %10.3f %8.1f %8.1f %8.1f %8.2f\n",
			res.Scheduler, bw, res.IOPS, lat,
			100*res.QueueStallFraction, 100*res.ChipUtilization,
			100*res.IntraChipIdleness, res.AvgFLPDegree)
	}

	fmt.Printf("\nSPK3 vs VAS: %.2fx bandwidth, %.0f%% lower latency\n",
		spk3BW/vasBW, 100*(1-spk3Lat/vasLat))
}
