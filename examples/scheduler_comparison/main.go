// Scheduler comparison: replay one of the paper's data-center workloads
// (Table 1) under all five device-level schedulers and reproduce the
// Figure 10 comparison — bandwidth, IOPS, latency, queue stall — plus the
// idleness and parallelism metrics of Figures 11 and 14.
//
// Usage: scheduler_comparison [workload] (default msnfs1)
package main

import (
	"fmt"
	"log"
	"os"

	"sprinkler"
)

func main() {
	workload := "msnfs1"
	if len(os.Args) > 1 {
		workload = os.Args[1]
	}

	cfg := sprinkler.DefaultConfig()
	reqs, err := cfg.GenerateWorkload(workload, 2000, 1)
	if err != nil {
		log.Fatalf("%v\navailable workloads: %v", err, sprinkler.Workloads())
	}

	fmt.Printf("workload %s: %d I/Os on a %d-chip SSD\n\n", workload, len(reqs), 64)
	fmt.Printf("%-6s %10s %8s %10s %8s %8s %8s %8s\n",
		"sched", "MB/s", "IOPS", "lat(ms)", "stall%", "util%", "intra%", "degree")

	var vasBW, vasLat float64
	for _, kind := range sprinkler.Schedulers() {
		cfg.Scheduler = kind
		dev, err := sprinkler.New(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := dev.Run(append([]sprinkler.Request(nil), reqs...))
		if err != nil {
			log.Fatal(err)
		}
		bw := res.BandwidthKBps / 1024
		lat := float64(res.AvgLatencyNS) / 1e6
		if kind == sprinkler.VAS {
			vasBW, vasLat = bw, lat
		}
		fmt.Printf("%-6s %10.1f %8.0f %10.3f %8.1f %8.1f %8.1f %8.2f\n",
			kind, bw, res.IOPS, lat,
			100*res.QueueStallFraction, 100*res.ChipUtilization,
			100*res.IntraChipIdleness, res.AvgFLPDegree)
	}

	fmt.Println()
	cfg.Scheduler = sprinkler.SPK3
	dev, err := sprinkler.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dev.Run(reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SPK3 vs VAS: %.2fx bandwidth, %.0f%% lower latency\n",
		(res.BandwidthKBps/1024)/vasBW,
		100*(1-(float64(res.AvgLatencyNS)/1e6)/vasLat))
}
