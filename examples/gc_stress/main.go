// GC stress: reproduce the §5.9 study — random-write bandwidth on a
// pristine drive versus a fragmented drive where garbage collection and
// live-data migration run underneath the workload. Sprinkler's
// readdressing callback keeps its scheduling decisions valid across
// migrations; VAS has no such callback.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"sprinkler"
)

func main() {
	parallel := flag.Int("parallel-channels", 0, "per-device parallel-kernel worker threads (results stay byte-identical, the fragmented GC runs included; <2 keeps the serial kernel)")
	flag.Parse()

	// A small drive so preconditioning to 95% is quick and writes push
	// planes to the GC threshold immediately.
	base := sprinkler.DefaultConfig()
	base.Channels = 2
	base.ChipsPerChan = 4
	base.BlocksPerPlane = 16
	base.PagesPerBlock = 32
	base.ParallelChannels = *parallel
	if base.UsesParallelKernel() {
		fmt.Printf("event kernel: partitioned per-channel, %d workers\n", *parallel)
	} else {
		fmt.Println("event kernel: serial")
	}

	workload := randomWrites(800, 4, 0.6)

	fmt.Printf("%-6s %16s %16s %10s %6s\n", "sched", "pristine MB/s", "fragmented MB/s", "GC cost", "WA")
	for _, kind := range []sprinkler.SchedulerKind{sprinkler.VAS, sprinkler.PAS, sprinkler.SPK3} {
		pristine := run(base, kind, workload, false)
		frag := run(base, kind, workload, true)
		fmt.Printf("%-6s %16.1f %16.1f %9.1f%% %6.2f\n",
			kind,
			pristine.BandwidthKBps/1024,
			frag.BandwidthKBps/1024,
			100*(1-frag.BandwidthKBps/pristine.BandwidthKBps),
			frag.WriteAmplification)
	}
}

// run executes the workload, optionally on a fragmented device.
func run(cfg sprinkler.Config, kind sprinkler.SchedulerKind, reqs []sprinkler.Request, fragmented bool) *sprinkler.Result {
	cfg.Scheduler = kind
	cfg.DisableGC = !fragmented
	dev, err := sprinkler.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if fragmented {
		dev.Precondition(0.95, 0.5, 42)
	}
	res, err := dev.RunRequests(reqs)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

// randomWrites builds n page-aligned random writes over frac of a small
// logical range (8 chips × 2 dies × 4 planes × 16 blocks × 32 pages
// ≈ 29k logical pages at 90% over-provisioning).
func randomWrites(n, pages int, frac float64) []sprinkler.Request {
	rng := rand.New(rand.NewSource(7))
	span := int64(float64(29000) * frac)
	out := make([]sprinkler.Request, n)
	for i := range out {
		out[i] = sprinkler.Request{
			Write: true,
			LPN:   rng.Int63n(span),
			Pages: pages,
		}
	}
	return out
}
