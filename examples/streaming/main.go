// Streaming: drive one million requests through Device.Run without ever
// materializing the workload. The source chain is
//
//	infinite Table 1 generator -> Poisson open-loop arrivals -> Limit(n)
//
// and the device pulls it one request ahead of the simulation clock, so
// the workload itself costs O(1) memory no matter how large -n gets
// (the FTL's mapping table still grows with the *address space* the
// workload touches, as a real SSD's DRAM map would). Ctrl-C cancels the
// run and still prints the measurements accumulated so far.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"time"

	"sprinkler"
)

func main() {
	n := flag.Int64("n", 1_000_000, "requests to stream")
	rate := flag.Float64("rate", 200_000, "open-loop arrival rate (requests/s)")
	workload := flag.String("workload", "msnfs1", "Table 1 workload to generate")
	chips := flag.Int("chips", 64, "platform chip count")
	seed := flag.Uint64("seed", 1, "generator seed")
	flag.Parse()

	cfg := sprinkler.Platform(*chips)
	cfg.Scheduler = sprinkler.SPK3
	// Bound the host-side backlog so sustained overload (arrivals above
	// the device's service rate) cannot grow memory with the workload.
	cfg.MaxBacklog = 4096

	// An unbounded generator (Requests: 0) wrapped into an open-loop
	// Poisson arrival process, capped at n requests.
	gen, err := cfg.NewWorkloadSource(sprinkler.WorkloadSpec{
		Name: *workload, Requests: 0, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	src := sprinkler.Limit(sprinkler.Poisson(gen, *rate, *seed), *n)

	dev, err := sprinkler.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	res, err := dev.Run(ctx, src)
	wall := time.Since(start)
	runtime.GC() // measure live heap, not floating garbage
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)

	if err != nil && res == nil {
		log.Fatal(err)
	}
	if err != nil {
		fmt.Printf("cancelled: %v (partial results below)\n\n", err)
	}

	fmt.Printf("streamed:      %d I/Os (%d MB) in %.1fs wall\n",
		res.IOsCompleted, (res.BytesRead+res.BytesWritten)>>20, wall.Seconds())
	fmt.Printf("simulated:     %.3f s of device time\n", float64(res.DurationNS)/1e9)
	fmt.Printf("bandwidth:     %.1f MB/s simulated, %.0f I/Os per wall-second\n",
		res.BandwidthKBps/1024, float64(res.IOsCompleted)/wall.Seconds())
	fmt.Printf("avg latency:   %.3f ms (p99 %.3f ms)\n",
		float64(res.AvgLatencyNS)/1e6, float64(res.P99LatencyNS)/1e6)
	fmt.Printf("utilization:   %.1f%% of %d chips\n", 100*res.ChipUtilization, dev.NumChips())
	fmt.Printf("heap in use:   %.1f MB after run (%.1f MB before) — the request slice was never built\n",
		float64(m1.HeapInuse)/(1<<20), float64(m0.HeapInuse)/(1<<20))
}
