// Quickstart: simulate a many-chip SSD under the full Sprinkler scheduler
// (SPK3 = RIOS + FARO) and print the headline measurements.
package main

import (
	"fmt"
	"log"

	"sprinkler"
)

func main() {
	// The default platform mirrors §5.1 of the paper: 64 flash chips over
	// 8 channels, each chip with 2 dies × 4 planes, 2 KB pages.
	cfg := sprinkler.DefaultConfig()
	cfg.Scheduler = sprinkler.SPK3

	dev, err := sprinkler.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 2000 sequential 16 KB reads, issued back to back (closed loop: the
	// device-level queue paces the host).
	res, err := dev.Run(sprinkler.SequentialReads(2000, 8))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("platform:         %d flash chips\n", dev.NumChips())
	fmt.Printf("completed:        %d I/Os, %d MB\n", res.IOsCompleted, res.BytesRead>>20)
	fmt.Printf("bandwidth:        %.1f MB/s\n", res.BandwidthKBps/1024)
	fmt.Printf("IOPS:             %.0f\n", res.IOPS)
	fmt.Printf("avg latency:      %.3f ms\n", float64(res.AvgLatencyNS)/1e6)
	fmt.Printf("chip utilization: %.1f%%\n", 100*res.ChipUtilization)
	fmt.Printf("flash txns:       %d (%.2f memory requests each)\n",
		res.Transactions, res.AvgFLPDegree)
	fmt.Printf("FLP shares:       NON-PAL %.0f%% / PAL1 %.0f%% / PAL2 %.0f%% / PAL3 %.0f%%\n",
		100*res.FLPShares[0], 100*res.FLPShares[1], 100*res.FLPShares[2], 100*res.FLPShares[3])
}
