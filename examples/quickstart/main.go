// Quickstart: simulate a many-chip SSD under the full Sprinkler scheduler
// (SPK3 = RIOS + FARO), three ways.
//
// First the streaming path: a workload Source runs to completion through
// Device.Run. Then the online session path: requests are submitted while
// the simulation runs, with mid-run Snapshot observations — the
// warmup/measurement-window pattern. Finally the combinator path: the
// same base workload reshaped into a bursty, Zipf-skewed open-loop stream
// on a device recycled through Reset.
package main

import (
	"context"
	"fmt"
	"log"

	"sprinkler"
)

func main() {
	// The default platform mirrors §5.1 of the paper: 64 flash chips over
	// 8 channels, each chip with 2 dies × 4 planes, 2 KB pages.
	cfg := sprinkler.DefaultConfig()
	cfg.Scheduler = sprinkler.SPK3

	// --- Bulk run: stream a synthetic Table 1 workload. -----------------
	dev, err := sprinkler.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	src, err := cfg.NewWorkloadSource(sprinkler.WorkloadSpec{Name: "msnfs1", Requests: 2000})
	if err != nil {
		log.Fatal(err)
	}
	res, err := dev.Run(context.Background(), src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("platform:         %d flash chips\n", dev.NumChips())
	fmt.Printf("completed:        %d I/Os, %d MB\n", res.IOsCompleted, (res.BytesRead+res.BytesWritten)>>20)
	fmt.Printf("bandwidth:        %.1f MB/s\n", res.BandwidthKBps/1024)
	fmt.Printf("IOPS:             %.0f\n", res.IOPS)
	fmt.Printf("avg latency:      %.3f ms\n", float64(res.AvgLatencyNS)/1e6)
	fmt.Printf("chip utilization: %.1f%%\n", 100*res.ChipUtilization)
	fmt.Printf("flash txns:       %d (%.2f memory requests each)\n",
		res.Transactions, res.AvgFLPDegree)
	fmt.Printf("FLP shares:       NON-PAL %.0f%% / PAL1 %.0f%% / PAL2 %.0f%% / PAL3 %.0f%%\n",
		100*res.FLPShares[0], 100*res.FLPShares[1], 100*res.FLPShares[2], 100*res.FLPShares[3])

	// --- Online session: submit, advance, observe, drain. ---------------
	sess, err := sprinkler.Open(cfg)
	if err != nil {
		log.Fatal(err)
	}
	// Warmup window: 500 sequential reads, then note the counters.
	for i := 0; i < 500; i++ {
		if err := sess.Submit(sprinkler.Request{LPN: int64(i * 8), Pages: 8}); err != nil {
			log.Fatal(err)
		}
	}
	if err := sess.Advance(5_000_000); err != nil { // 5 ms of simulated time
		log.Fatal(err)
	}
	warm := sess.Snapshot()

	// Measurement window: 1500 more reads, observed without the warmup.
	for i := 500; i < 2000; i++ {
		if err := sess.Submit(sprinkler.Request{LPN: int64(i * 8), Pages: 8}); err != nil {
			log.Fatal(err)
		}
	}
	final, err := sess.Drain(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	// Snapshots stay readable after Drain; subtract the warmup window.
	meas := sess.Snapshot().Since(warm)
	fmt.Printf("\nsession:          %d I/Os total, measurement window %d I/Os\n",
		final.IOsCompleted, meas.IOsCompleted)
	fmt.Printf("window bandwidth: %.1f MB/s (warmup excluded)\n", meas.BandwidthKBps/1024)
	fmt.Printf("window latency:   %.3f ms avg\n", float64(meas.AvgLatencyNS)/1e6)

	// --- Combinators: reshape a workload, reuse the device. --------------
	// The same msnfs1 stream becomes open-loop Poisson arrivals squeezed
	// into 2 ms-on/6 ms-off bursts (25% duty) with a Zipf-skewed address
	// distribution — workload structure is composed, not re-implemented.
	const seed = 42
	gen, err := cfg.NewWorkloadSource(sprinkler.WorkloadSpec{Name: "msnfs1", Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	skewed, err := sprinkler.Zipf(gen, 0.99, cfg.TotalPages()*9/10, seed)
	if err != nil {
		log.Fatal(err)
	}
	bursty, err := sprinkler.Burst(sprinkler.Poisson(skewed, 150_000, seed), 2_000_000, 6_000_000)
	if err != nil {
		log.Fatal(err)
	}
	// Reset recycles the bulk-run device in place — the cheap path mass
	// sweeps take through a DeviceArena.
	if err := dev.Reset(cfg); err != nil {
		log.Fatal(err)
	}
	res, err = dev.Run(context.Background(), sprinkler.Limit(bursty, 2000))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbursty+zipf:      %d I/Os, %.1f MB/s, p99 %.3f ms (25%% duty, theta 0.99)\n",
		res.IOsCompleted, res.BandwidthKBps/1024, float64(res.P99LatencyNS)/1e6)
}
