package sprinkler

import "fmt"

// Validate checks the platform configuration, returning a descriptive
// error for degenerate geometry or queue settings. New and Open validate
// automatically; call it directly to vet configurations built elsewhere.
func (c Config) Validate() error {
	for _, f := range []struct {
		name string
		v    int
	}{
		{"Channels", c.Channels},
		{"ChipsPerChan", c.ChipsPerChan},
		{"DiesPerChip", c.DiesPerChip},
		{"PlanesPerDie", c.PlanesPerDie},
		{"BlocksPerPlane", c.BlocksPerPlane},
		{"PagesPerBlock", c.PagesPerBlock},
		{"PageSize", c.PageSize},
	} {
		if f.v <= 0 {
			return fmt.Errorf("sprinkler: Config.%s must be positive, got %d", f.name, f.v)
		}
	}
	if c.QueueDepth <= 0 {
		return fmt.Errorf("sprinkler: Config.QueueDepth must be positive, got %d (the device-level queue needs at least one tag)", c.QueueDepth)
	}
	if c.MaxBacklog < 0 {
		return fmt.Errorf("sprinkler: Config.MaxBacklog must be non-negative, got %d", c.MaxBacklog)
	}
	if c.LogicalPages < 0 {
		return fmt.Errorf("sprinkler: Config.LogicalPages must be non-negative, got %d", c.LogicalPages)
	}
	if c.GCFreeTarget < 0 {
		return fmt.Errorf("sprinkler: Config.GCFreeTarget must be non-negative, got %d", c.GCFreeTarget)
	}
	if c.SeriesWindow < 0 {
		return fmt.Errorf("sprinkler: Config.SeriesWindow must be non-negative, got %d", c.SeriesWindow)
	}
	if c.ParallelChannels < 0 {
		return fmt.Errorf("sprinkler: Config.ParallelChannels must be non-negative, got %d", c.ParallelChannels)
	}
	switch c.Scheduler {
	case VAS, PAS, SPK1, SPK2, SPK3, "":
	default:
		return fmt.Errorf("sprinkler: unknown scheduler %q (want one of %v)", c.Scheduler, Schedulers())
	}
	switch c.Allocation {
	case ChannelFirst, WayFirst, PlaneFirst, "":
	default:
		return fmt.Errorf("sprinkler: unknown allocation scheme %q", c.Allocation)
	}
	if total := c.TotalPages(); c.LogicalPages > total {
		return fmt.Errorf("sprinkler: Config.LogicalPages %d exceeds the %d physical pages", c.LogicalPages, total)
	}
	if err := c.Faults.check(); err != nil {
		return err
	}
	return nil
}

// options collects session/run knobs set by Option values.
type options struct {
	precondition *Precondition
	arena        *DeviceArena
	snapshot     *DeviceSnapshot
}

// Option customizes Open.
type Option func(*options)

// Precondition describes a device-fragmentation pass: fill FillFrac of
// the logical space, then overwrite ChurnFrac of the filled pages at
// random (seeded by Seed), so garbage collection runs under the workload
// (§5.9 of the paper).
type Precondition struct {
	FillFrac  float64
	ChurnFrac float64
	Seed      uint64
}

// WithPrecondition fragments the device before any request is served.
func WithPrecondition(p Precondition) Option {
	return func(o *options) { o.precondition = &p }
}

// WithSnapshot hydrates the session's device from a decoded warm-state
// snapshot instead of preconditioning it, so a session over an aged
// drive opens at fresh-drive cost. The session config must match the
// snapshot's in every field except Scheduler, and the option is mutually
// exclusive with WithPrecondition — the snapshot already embodies a
// warm-up. Composes with WithArena: the pooled device is Reset and then
// hydrated.
func WithSnapshot(snap *DeviceSnapshot) Option {
	return func(o *options) { o.snapshot = snap }
}

// WithArena checks the session's device out of the arena instead of
// building one: a pooled device on the configuration's topology is Reset
// and reused (with its warmed request free list), and Drain returns it to
// the arena for the next session or sweep cell. A nil arena degrades to
// fresh construction.
func WithArena(a *DeviceArena) Option {
	return func(o *options) { o.arena = a }
}
