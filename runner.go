package sprinkler

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
)

// Cell is one (config, scheduler, workload) point of a sweep. Cells are
// independent: each runs on its own device (checked out of a DeviceArena
// and recycled between cells, or built fresh under Runner.NoReuse — the
// results are byte-identical either way), so a Runner can execute them on
// any number of goroutines with results identical to serial execution.
type Cell struct {
	// Name labels the cell in results ("SPK3/msnfs1"). It also feeds the
	// derived per-cell seed, so give distinct cells distinct names.
	Name string

	// Config is the platform + scheduler under test.
	Config Config

	// Source builds the cell's workload. It is called once, on the
	// worker goroutine, with the cell's deterministic seed — build the
	// source inside so no mutable state is shared across cells.
	Source func(seed uint64) (Source, error)

	// Precondition optionally fragments the device before the run.
	Precondition *Precondition

	// Snapshot, when non-empty, names a warm-state snapshot registered in
	// the Runner's Arena (RegisterSnapshot): the cell's device is hydrated
	// from it instead of running Precondition, so an aged-drive sweep pays
	// fresh-drive cost per cell. The cell's Config must satisfy the
	// snapshot's CompatibleConfig. Mutually exclusive with Precondition —
	// a cell carrying both fails rather than guessing which warm-up was
	// meant.
	Snapshot string

	// Seed overrides the derived per-cell seed when non-zero. Cells that
	// must share a trace (the same workload under different schedulers)
	// set the same non-zero Seed.
	Seed uint64

	// Labels carries the cell's grid coordinates ("scheduler",
	// "workload", axis names), filled by Grid.Cells and echoed on the
	// CellResult so sweep consumers can index results without parsing
	// names.
	Labels map[string]string

	// SourceKey, when non-empty, lets the Runner pool the built source in
	// its DeviceArena: the first cell on the key builds it, later cells
	// check it out Reset to their seed instead of rebuilding (sources that
	// are not Resettable degrade to per-cell builds). Cells sharing a key
	// must build equivalent sources — same spec, differing only by seed.
	// Grid.Cells derives the key from the cell's full workload coordinates
	// (grid name, axis point labels, source label), which is exactly that
	// guarantee; hand-built cells may leave it empty to opt out.
	SourceKey string
}

// CellResult pairs a cell with its outcome.
type CellResult struct {
	Name   string
	Seed   uint64
	Labels map[string]string
	Result *Result
	Err    error
}

// Runner fans sweep cells across worker goroutines. The zero value uses
// all CPU cores, base seed 0, and a private DeviceArena so consecutive
// cells on one topology recycle a device instead of rebuilding it.
// Per-cell seeds are deterministic functions of (base seed, cell name,
// cell index), and device reuse is behaviour-preserving, so results do
// not depend on scheduling order, worker count, or reuse.
type Runner struct {
	// Workers caps concurrency; <= 0 means runtime.GOMAXPROCS(0).
	Workers int

	// Seed is mixed into every derived cell seed, so a sweep can be
	// re-rolled wholesale.
	Seed uint64

	// Arena supplies the devices workers check out per cell. Nil makes
	// Run create a private arena for the call; share one across Runs to
	// recycle devices between sweeps too.
	Arena *DeviceArena

	// NoReuse builds a fresh device for every cell instead of recycling
	// through the arena — the reference path reuse-parity tests and
	// benchmarks compare against.
	NoReuse bool

	// Results, when non-nil, is the caller-owned result arena: Run draws
	// its CellResult slice and each cell's Result object from it instead
	// of allocating, and the caller hands a consumed sweep's results back
	// with Recycle. Rendering into a recycled Result is byte-identical to
	// a fresh one. Nil (the default) allocates per sweep as always.
	Results *ResultArena
}

// ResultArena recycles the result buffers a Runner produces: the
// []CellResult slice and the Result objects (with their latency-series
// storage) inside it. A sweep loop that consumes each sweep's results
// and then Recycles them makes result rendering allocation-free at
// steady state. Opt in via Runner.Results; safe for concurrent use by
// the Runner's workers. The zero value is ready to use.
type ResultArena struct {
	mu     sync.Mutex
	free   []*Result
	slices [][]CellResult
}

// NewResultArena returns an empty result arena.
func NewResultArena() *ResultArena { return &ResultArena{} }

// Recycle returns a finished sweep's results — the slice and every
// Result in it — to the arena. The caller must be completely done with
// them: a later Run on a Runner sharing this arena overwrites both.
func (a *ResultArena) Recycle(results []CellResult) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i := range results {
		if results[i].Result != nil {
			a.free = append(a.free, results[i].Result)
		}
		results[i] = CellResult{}
	}
	a.slices = append(a.slices, results[:0])
}

// getResult pops a recycled Result, or allocates the arena's first few.
func (a *ResultArena) getResult() *Result {
	a.mu.Lock()
	defer a.mu.Unlock()
	if n := len(a.free); n > 0 {
		r := a.free[n-1]
		a.free = a.free[:n-1]
		return r
	}
	return new(Result)
}

// getSlice finds a recycled CellResult slice with enough capacity.
func (a *ResultArena) getSlice(n int) []CellResult {
	a.mu.Lock()
	defer a.mu.Unlock()
	for i, s := range a.slices {
		if cap(s) >= n {
			a.slices[i] = a.slices[len(a.slices)-1]
			a.slices = a.slices[:len(a.slices)-1]
			return s[:n]
		}
	}
	return make([]CellResult, n)
}

// cellSeed derives a cell's seed: the explicit per-cell seed when set,
// otherwise an FNV hash of the cell's name and index, both mixed with
// the runner's base seed.
func (r Runner) cellSeed(c Cell, i int) uint64 {
	s := c.Seed
	if s == 0 {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s#%d", c.Name, i)
		s = h.Sum64()
	}
	if r.Seed != 0 {
		s = (s ^ r.Seed) * 0x2545F4914F6CDD1D
		if s == 0 {
			s = 1
		}
	}
	return s
}

// Run executes every cell and returns results in cell order. A cell
// failure is recorded in its CellResult, not returned: one bad cell does
// not sink a thousand-cell sweep. Cancelling ctx abandons unstarted
// cells (their Err is ctx.Err()) and interrupts running ones.
func (r Runner) Run(ctx context.Context, cells []Cell) []CellResult {
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	// The arena is shared across workers: a worker finishing a cell
	// checks its drained device back in for whichever worker starts the
	// next cell on that topology. Under NoReuse the nil arena degrades
	// every checkout to a fresh build.
	arena := r.Arena
	if arena == nil && !r.NoReuse {
		arena = NewDeviceArena()
	}
	if r.NoReuse {
		arena = nil
	}
	var results []CellResult
	if r.Results != nil {
		results = r.Results.getSlice(len(cells))
	} else {
		results = make([]CellResult, len(cells))
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = r.runCell(ctx, cells[i], i, arena)
			}
		}()
	}
	for i := range cells {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

func (r Runner) runCell(ctx context.Context, c Cell, i int, arena *DeviceArena) CellResult {
	out := CellResult{Name: c.Name, Seed: r.cellSeed(c, i), Labels: c.Labels}
	if err := ctx.Err(); err != nil {
		out.Err = err
		return out
	}
	if c.Source == nil {
		out.Err = fmt.Errorf("sprinkler: cell %q has no Source", c.Name)
		return out
	}
	var dev *Device
	var err error
	if c.Snapshot != "" {
		if c.Precondition != nil {
			out.Err = fmt.Errorf("sprinkler: cell %q has both Snapshot and Precondition", c.Name)
			return out
		}
		// The snapshot registry lives on the runner's own arena so that
		// NoReuse (nil checkout arena) still resolves names; only the
		// device checkout path degrades to a fresh build.
		if arena != nil {
			dev, err = arena.GetFromSnapshot(c.Snapshot, c.Config)
		} else {
			snap, ok := r.Arena.Snapshot(c.Snapshot)
			switch {
			case !ok:
				err = fmt.Errorf("no snapshot registered as %q", c.Snapshot)
			case !snap.CompatibleConfig(c.Config):
				err = fmt.Errorf("config for snapshot %q differs beyond the scheduler and host-side observation knobs", c.Snapshot)
			default:
				if dev, err = New(c.Config); err == nil {
					err = snap.hydrate(dev)
				}
			}
		}
		if err != nil {
			out.Err = fmt.Errorf("sprinkler: cell %q: %w", c.Name, err)
			return out
		}
	} else {
		dev, err = arena.Get(c.Config)
		if err != nil {
			out.Err = fmt.Errorf("sprinkler: cell %q: %w", c.Name, err)
			return out
		}
		if p := c.Precondition; p != nil {
			dev.Precondition(p.FillFrac, p.ChurnFrac, p.Seed)
		}
	}
	src, err := arena.GetSource(c.SourceKey, out.Seed, c.Source)
	if err != nil {
		out.Err = fmt.Errorf("sprinkler: cell %q: %w", c.Name, err)
		return out
	}
	var res *Result
	if r.Results != nil {
		res, err = dev.runInto(ctx, src, r.Results.getResult())
	} else {
		res, err = dev.Run(ctx, src)
	}
	if err != nil {
		// The device (and the source feeding it) may hold mid-run state —
		// cancellation, stalls: drop both rather than recycling a
		// non-pristine simulation.
		out.Err = fmt.Errorf("sprinkler: cell %q: %w", c.Name, err)
		return out
	}
	arena.Put(dev)
	arena.PutSource(c.SourceKey, src)
	out.Result = res
	return out
}
