package sprinkler_test

import (
	"runtime"
	"testing"

	"sprinkler"
)

// metaConfig is a topology whose block metadata is a large share of
// device memory (many small blocks), so the bytes the retained eviction
// arena saves are measurable against construction noise.
func metaConfig(kind sprinkler.SchedulerKind) sprinkler.Config {
	cfg := sprinkler.DefaultConfig()
	cfg.Channels = 2
	cfg.ChipsPerChan = 2
	cfg.BlocksPerPlane = 128
	cfg.PagesPerBlock = 8
	cfg.QueueDepth = 16
	cfg.Scheduler = kind
	return cfg
}

// allocBytes measures the bytes allocated by f on a quiesced heap.
func allocBytes(f func()) uint64 {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	f()
	runtime.ReadMemStats(&m1)
	return m1.TotalAlloc - m0.TotalAlloc
}

// metaSink keeps built devices live so the compiler cannot elide the
// constructions under measurement.
var metaSink *sprinkler.Device

// TestArenaEvictionRetainsBlockMeta pins the cheap-re-admission
// guarantee: after an LRU eviction drops a topology's device, checking
// the same topology out again rebuilds it on the retained FTL
// block-metadata arena, allocating measurably less than a cold build.
func TestArenaEvictionRetainsBlockMeta(t *testing.T) {
	cfgA := metaConfig(sprinkler.SPK3)
	cfgB := metaConfig(sprinkler.SPK3)
	cfgB.ChipsPerChan = 4 // distinct topology, same block shape

	arena := sprinkler.NewDeviceArena()
	arena.MaxDevices = 1

	dA, err := arena.Get(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	arena.Put(dA)
	dB, err := arena.Get(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	arena.Put(dB) // exceeds MaxDevices: evicts A, retaining its block metadata

	if s := arena.Stats(); s.DeviceEvictions != 1 {
		t.Fatalf("evictions = %d, want 1 (stats %+v)", s.DeviceEvictions, s)
	}

	fresh := allocBytes(func() {
		d, err := sprinkler.New(cfgA)
		if err != nil {
			t.Fatal(err)
		}
		metaSink = d
	})
	readmit := allocBytes(func() {
		d, err := arena.Get(cfgA)
		if err != nil {
			t.Fatal(err)
		}
		metaSink = d
	})

	if s := arena.Stats(); s.MetaReuses != 1 {
		t.Fatalf("meta reuses = %d, want 1 (stats %+v)", s.MetaReuses, s)
	}
	if readmit >= fresh {
		t.Fatalf("re-admission allocated %d bytes, fresh build %d: retained metadata saved nothing", readmit, fresh)
	}
	// The topology's block metadata (2048 blocks: ~56 B records + bitmap
	// words + free-list ints + plane structs) is well over 64 KB; require
	// at least that much of it to have been reused.
	if saved := fresh - readmit; saved < 64<<10 {
		t.Fatalf("re-admission saved only %d bytes over a fresh build (fresh %d, re-admit %d), want >= 64 KiB", saved, fresh, readmit)
	}

	// The retained arena is consumed by the re-admission: a second miss on
	// the topology is a plain cold build again.
	d2, err := arena.Get(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	metaSink = d2
	if s := arena.Stats(); s.MetaReuses != 1 {
		t.Fatalf("meta reused twice (stats %+v): retained arena must be single-use", s)
	}
}

// TestMetaReuseParity: a device rebuilt on a retained eviction arena is
// behaviourally indistinguishable from a fresh one — byte-identical
// JSON Results on a GC-heavy workload.
func TestMetaReuseParity(t *testing.T) {
	cfg := metaConfig(sprinkler.SPK3)
	pre := &sprinkler.Precondition{FillFrac: 0.9, ChurnFrac: 0.5, Seed: 99}

	freshDev, err := sprinkler.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := runOn(t, freshDev, cfg, "cfs0", 150, 77, pre)

	// Force an eviction that retains cfg's topology metadata, then
	// re-admit and run the identical cell.
	arena := sprinkler.NewDeviceArena()
	arena.MaxDevices = 1
	d, err := arena.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	arena.Put(d)
	other := metaConfig(sprinkler.SPK3)
	other.Channels = 4
	dOther, err := arena.Get(other)
	if err != nil {
		t.Fatal(err)
	}
	arena.Put(dOther)

	reused, err := arena.Get(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s := arena.Stats(); s.MetaReuses != 1 {
		t.Fatalf("expected a meta-reuse build (stats %+v)", s)
	}
	got := runOn(t, reused, cfg, "cfs0", 150, 77, pre)
	if got != want {
		t.Fatalf("meta-reused device diverged from fresh:\nfresh:  %s\nreused: %s", want, got)
	}
}
