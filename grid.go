package sprinkler

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Grid declares a sweep as a cross product of axes over one base
// configuration: schedulers × workloads (or arbitrary sources) × topology
// knobs × custom axes. Cells() expands it into the concrete cell list a
// Runner executes, with a stable name and a deterministic seed per cell.
//
// Seeds are derived from everything except the scheduler axis, so every
// scheduler replays the identical trace for a given (workload, topology)
// point — differences between scheduler rows are scheduling, not input
// noise — while distinct workloads and topology points get distinct
// streams. Mix Seed (or Runner.Seed) to re-roll a whole grid.
//
//	cells := sprinkler.Grid{
//	    Base:       sprinkler.DefaultConfig(),
//	    Schedulers: sprinkler.Schedulers(),
//	    Workloads:  []string{"cfs0", "msnfs1"},
//	    Requests:   3000,
//	    QueueDepths: []int{32, 64, 128},
//	}.Cells()
//	results := sprinkler.Runner{}.Run(ctx, cells)
type Grid struct {
	// Name, when set, prefixes every cell name ("fig15/...").
	Name string

	// Base is the platform every cell starts from. Axes mutate copies.
	Base Config

	// Schedulers is the scheduler axis; empty keeps Base.Scheduler.
	Schedulers []SchedulerKind

	// Workloads names Table 1 synthetic workloads, each generating
	// Requests requests (MaxPages caps request length; 0 = generator
	// default). Workload cells and Sources cells together form the
	// workload axis; at least one of the two must be non-empty.
	Workloads []string
	Requests  int
	MaxPages  int

	// Sources adds custom workload-axis points: each builds its source
	// from the cell's final config and seed (so a source can size itself
	// from the topology the cell landed on).
	Sources []SourceSpec

	// Topology axes; an empty slice keeps the Base value. These are the
	// knobs a DeviceArena can absorb per-run (QueueDepths) or that key
	// separate pooled devices (Channels, ChipsPerChan).
	Channels     []int
	ChipsPerChan []int
	QueueDepths  []int

	// FaultRates is a built-in fault-injection axis: each value sets the
	// cell's per-operation failure probabilities (read, program and
	// erase) to it, on top of whatever else Base.Faults configures. An
	// empty slice keeps Base.Faults untouched.
	FaultRates []float64

	// Vary appends custom axes, applied to the config in listed order
	// after the built-in topology axes and before the scheduler is set.
	Vary []Axis

	// Precondition fragments every cell's device before its run. An
	// AxisValue's Precondition overrides it for cells on that point
	// (later axes win).
	Precondition *Precondition

	// Snapshot names a registered warm-state snapshot in the Runner's
	// arena; every cell hydrates its device from it instead of
	// preconditioning, so an aged-drive grid runs at fresh-drive cost.
	// Cell configs must satisfy the snapshot's CompatibleConfig (the
	// scheduler axis sweeps freely), and the grid must not also set
	// Precondition (cells carrying both fail).
	Snapshot string

	// Seed is mixed into every derived cell seed, re-rolling the grid's
	// traces wholesale without renaming cells.
	Seed uint64
}

// SourceSpec is one point of a Grid's workload axis: a label plus a
// factory invoked with the cell's final configuration and seed.
type SourceSpec struct {
	Label string
	New   func(cfg Config, seed uint64) (Source, error)
}

// Axis is one custom grid dimension.
type Axis struct {
	// Name keys the axis in Cell.Labels.
	Name   string
	Values []AxisValue
}

// AxisValue is one point of a custom Axis.
type AxisValue struct {
	// Label names the point in cell names and Cell.Labels.
	Label string
	// Apply mutates the cell's configuration.
	Apply func(*Config)
	// Precondition, when non-nil, replaces the grid-level precondition
	// for cells on this point.
	Precondition *Precondition
}

// intAxis lifts a built-in []int knob into a labelled axis.
func intAxis(name, short string, vals []int, apply func(*Config, int)) (Axis, bool) {
	if len(vals) == 0 {
		return Axis{}, false
	}
	ax := Axis{Name: name}
	for _, v := range vals {
		v := v
		ax.Values = append(ax.Values, AxisValue{
			Label: fmt.Sprintf("%s=%d", short, v),
			Apply: func(c *Config) { apply(c, v) },
		})
	}
	return ax, true
}

// axes collects the built-in topology axes and the custom ones, in the
// order they cross-product (left = slowest varying).
func (g Grid) axes() []Axis {
	var out []Axis
	if ax, ok := intAxis("channels", "ch", g.Channels, func(c *Config, v int) { c.Channels = v }); ok {
		out = append(out, ax)
	}
	if ax, ok := intAxis("chips_per_chan", "way", g.ChipsPerChan, func(c *Config, v int) { c.ChipsPerChan = v }); ok {
		out = append(out, ax)
	}
	if ax, ok := intAxis("queue_depth", "qd", g.QueueDepths, func(c *Config, v int) { c.QueueDepth = v }); ok {
		out = append(out, ax)
	}
	if len(g.FaultRates) > 0 {
		ax := Axis{Name: "fault_rate"}
		for _, v := range g.FaultRates {
			v := v
			ax.Values = append(ax.Values, AxisValue{
				Label: fmt.Sprintf("fr=%g", v),
				Apply: func(c *Config) {
					c.Faults.ReadFailProb = v
					c.Faults.ProgramFailProb = v
					c.Faults.EraseFailProb = v
				},
			})
		}
		out = append(out, ax)
	}
	for _, ax := range g.Vary {
		// An empty custom axis means "keep the base", exactly like an
		// empty built-in knob — not a zero-way cross product.
		if len(ax.Values) > 0 {
			out = append(out, ax)
		}
	}
	return out
}

// sources expands the Workloads sugar and appends the custom Sources.
func (g Grid) sources() []SourceSpec {
	out := make([]SourceSpec, 0, len(g.Workloads)+len(g.Sources))
	for _, w := range g.Workloads {
		w := w
		requests := g.Requests
		maxPages := g.MaxPages
		out = append(out, SourceSpec{
			Label: w,
			New: func(cfg Config, seed uint64) (Source, error) {
				if requests <= 0 {
					return nil, fmt.Errorf("sprinkler: Grid.Requests must be positive for workload %q", w)
				}
				return cfg.NewWorkloadSource(WorkloadSpec{
					Name: w, Requests: requests, MaxPages: maxPages, Seed: seed,
				})
			},
		})
	}
	return append(out, g.Sources...)
}

// Cells expands the grid into its cross product, scheduler-major: for
// each scheduler, the axes advance odometer-style (first listed axis
// slowest) with the workload axis innermost. The expansion order, names
// and seeds are all deterministic functions of the grid.
func (g Grid) Cells() []Cell {
	scheds := g.Schedulers
	if len(scheds) == 0 {
		scheds = []SchedulerKind{g.Base.Scheduler}
	}
	axes := g.axes()
	sources := g.sources()
	if len(sources) == 0 {
		// A grid with no workload axis expands to nothing — surface the
		// mistake as one failing cell rather than a silently empty sweep.
		return []Cell{{
			Name:   gridLabel(g.Name, "<no sources>"),
			Config: g.Base,
			Source: func(uint64) (Source, error) {
				return nil, fmt.Errorf("sprinkler: Grid has neither Workloads nor Sources")
			},
		}}
	}

	n := len(scheds) * len(sources)
	for _, ax := range axes {
		n *= len(ax.Values)
	}
	cells := make([]Cell, 0, n)

	idx := make([]int, len(axes))
	for _, sk := range scheds {
		for i := range idx {
			idx[i] = 0
		}
		for {
			// One axis combination: apply values to a copy of Base.
			cfg := g.Base
			pre := g.Precondition
			axisParts := make([]string, 0, len(axes))
			for ai, ax := range axes {
				v := ax.Values[idx[ai]]
				if v.Apply != nil {
					v.Apply(&cfg)
				}
				if v.Precondition != nil {
					pre = v.Precondition
				}
				axisParts = append(axisParts, v.Label)
			}
			cfg.Scheduler = sk
			for _, src := range sources {
				src := src
				cfg := cfg
				labels := make(map[string]string, len(axes)+2)
				labels["scheduler"] = string(resolveKind(sk))
				labels["workload"] = src.Label
				for ai, ax := range axes {
					labels[ax.Name] = axisParts[ai]
				}
				parts := make([]string, 0, len(axisParts)+3)
				if g.Name != "" {
					parts = append(parts, g.Name)
				}
				parts = append(parts, string(resolveKind(sk)))
				parts = append(parts, axisParts...)
				parts = append(parts, src.Label)
				key := g.sourceKey(axisParts, src.Label)
				cells = append(cells, Cell{
					Name:         strings.Join(parts, "/"),
					Config:       cfg,
					Seed:         g.cellSeed(key),
					Labels:       labels,
					Precondition: pre,
					Snapshot:     g.Snapshot,
					SourceKey:    key + "|" + sourceConfigKey(cfg),
					Source: func(seed uint64) (Source, error) {
						return src.New(cfg, seed)
					},
				})
			}
			// Advance the odometer, rightmost axis fastest.
			ai := len(axes) - 1
			for ; ai >= 0; ai-- {
				idx[ai]++
				if idx[ai] < len(axes[ai].Values) {
					break
				}
				idx[ai] = 0
			}
			if ai < 0 {
				break
			}
		}
	}
	return cells
}

// gridLabel joins a grid name with a suffix, tolerating an empty name.
func gridLabel(name, suffix string) string {
	if name == "" {
		return suffix
	}
	return name + "/" + suffix
}

// sourceKey names the cell's workload coordinates — every axis except the
// scheduler — and is the seed-derivation input, so all schedulers replay
// one trace per point. The arena's source-pool key is this string plus a
// config fingerprint (sourceConfigKey): axis labels alone cannot be
// trusted across grids sharing one arena, since two grids may emit the
// same labels over different Base platforms, and a source bakes the
// platform's logical span in at build time.
func (g Grid) sourceKey(axisParts []string, srcLabel string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "grid:%s", g.Name)
	for _, p := range axisParts {
		fmt.Fprintf(&b, "|%s", p)
	}
	fmt.Fprintf(&b, "|src:%s", srcLabel)
	return b.String()
}

// sourceConfigKey fingerprints everything about a cell's configuration a
// source build could depend on. The scheduler is excluded — it is the one
// axis sources must be shareable across — by zeroing it before rendering
// the flat struct.
func sourceConfigKey(cfg Config) string {
	cfg.Scheduler = ""
	return fmt.Sprintf("%+v", cfg)
}

// cellSeed derives the deterministic per-cell seed from the source key,
// i.e. from every coordinate except the scheduler.
func (g Grid) cellSeed(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	s := h.Sum64()
	if g.Seed != 0 {
		s = (s ^ g.Seed) * 0x2545F4914F6CDD1D
	}
	if s == 0 {
		// Zero means "derive from the cell name" to the Runner; keep the
		// grid's seed explicit.
		s = 1
	}
	return s
}

// Sweep builds the scheduler × workload cross product on one platform —
// the paper's evaluation grid — as a convenience wrapper over Grid. Every
// scheduler sees the identical trace for a given workload, so differences
// between rows are scheduling, not input noise.
func Sweep(base Config, scheds []SchedulerKind, workloads []string, requests int) []Cell {
	return Grid{
		Base:       base,
		Schedulers: scheds,
		Workloads:  workloads,
		Requests:   requests,
	}.Cells()
}
