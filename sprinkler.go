// Package sprinkler is a from-scratch reproduction of "Sprinkler:
// Maximizing Resource Utilization in Many-Chip Solid State Disks"
// (Jung & Kandemir, HPCA 2014): an event-driven many-chip SSD simulator
// with the paper's device-level I/O schedulers.
//
// The library models the full SSD of the paper — channels, chips, dies,
// planes, ONFI-style bus timing, MLC program-latency variation, a
// page-level FTL with garbage collection — and five NVMHC schedulers:
//
//	VAS   virtual address scheduler (FIFO baseline)
//	PAS   physical address scheduler (coarse-grain out-of-order baseline)
//	SPK1  Sprinkler with FARO only (FLP-aware request over-commitment)
//	SPK2  Sprinkler with RIOS only (resource-driven I/O scheduling)
//	SPK3  full Sprinkler (RIOS + FARO)
//
// Quick start:
//
//	cfg := sprinkler.DefaultConfig()
//	cfg.Scheduler = sprinkler.SPK3
//	dev, err := sprinkler.New(cfg)
//	if err != nil { ... }
//	res, err := dev.Run(sprinkler.SequentialReads(1000, 8))
//	fmt.Printf("%.1f MB/s\n", res.BandwidthKBps/1024)
package sprinkler

import (
	"fmt"

	"sprinkler/internal/core"
	"sprinkler/internal/ftl"
	"sprinkler/internal/req"
	"sprinkler/internal/sched"
	"sprinkler/internal/ssd"
	"sprinkler/internal/trace"
)

// SchedulerKind selects the device-level I/O scheduler.
type SchedulerKind string

// The five schedulers of the paper's evaluation (§5.1).
const (
	VAS  SchedulerKind = "VAS"
	PAS  SchedulerKind = "PAS"
	SPK1 SchedulerKind = "SPK1"
	SPK2 SchedulerKind = "SPK2"
	SPK3 SchedulerKind = "SPK3"
)

// Schedulers lists every available SchedulerKind.
func Schedulers() []SchedulerKind { return []SchedulerKind{VAS, PAS, SPK1, SPK2, SPK3} }

// AllocationScheme selects the FTL's dynamic page-allocation (striping)
// scheme — which resource dimension consecutive writes advance through
// first. The empty string means ChannelFirst.
type AllocationScheme string

// The supported allocation schemes (see the paper's references [13, 16,
// 36] on page-allocation strategy impact).
const (
	ChannelFirst AllocationScheme = "channel-first"
	WayFirst     AllocationScheme = "way-first"
	PlaneFirst   AllocationScheme = "plane-first"
)

// Config describes the SSD platform. DefaultConfig mirrors §5.1 of the
// paper: 64 chips over 8 channels, 2 dies × 4 planes per chip, 2 KB pages,
// ONFI 2.x channel timing, MLC programming between 200 µs and 2.2 ms.
type Config struct {
	// Platform geometry.
	Channels       int
	ChipsPerChan   int
	DiesPerChip    int
	PlanesPerDie   int
	BlocksPerPlane int
	PagesPerBlock  int
	PageSize       int

	// QueueDepth is the device-level queue's tag capacity.
	QueueDepth int

	// Scheduler picks the NVMHC scheduling strategy.
	Scheduler SchedulerKind

	// Allocation picks the FTL page-allocation scheme (default
	// ChannelFirst).
	Allocation AllocationScheme

	// DisableGC turns background garbage collection off.
	DisableGC bool

	// CollectSeries records a per-I/O latency series in the result.
	CollectSeries bool
}

// DefaultConfig returns the paper's evaluation platform with SPK3.
func DefaultConfig() Config {
	base := ssd.DefaultConfig()
	return Config{
		Channels:       base.Geo.Channels,
		ChipsPerChan:   base.Geo.ChipsPerChan,
		DiesPerChip:    base.Geo.DiesPerChip,
		PlanesPerDie:   base.Geo.PlanesPerDie,
		BlocksPerPlane: base.Geo.BlocksPerPlane,
		PagesPerBlock:  base.Geo.PagesPerBlock,
		PageSize:       base.Geo.PageSize,
		QueueDepth:     base.QueueDepth,
		Scheduler:      SPK3,
	}
}

// toInternal converts the public config.
func (c Config) toInternal() (ssd.Config, sched.Scheduler, error) {
	cfg := ssd.DefaultConfig()
	cfg.Geo.Channels = c.Channels
	cfg.Geo.ChipsPerChan = c.ChipsPerChan
	cfg.Geo.DiesPerChip = c.DiesPerChip
	cfg.Geo.PlanesPerDie = c.PlanesPerDie
	cfg.Geo.BlocksPerPlane = c.BlocksPerPlane
	cfg.Geo.PagesPerBlock = c.PagesPerBlock
	cfg.Geo.PageSize = c.PageSize
	cfg.QueueDepth = c.QueueDepth
	cfg.DisableGC = c.DisableGC
	cfg.CollectSeries = c.CollectSeries

	switch c.Allocation {
	case ChannelFirst, "":
		cfg.Allocation = ftl.AllocChannelFirst
	case WayFirst:
		cfg.Allocation = ftl.AllocWayFirst
	case PlaneFirst:
		cfg.Allocation = ftl.AllocPlaneFirst
	default:
		return ssd.Config{}, nil, fmt.Errorf("sprinkler: unknown allocation scheme %q", c.Allocation)
	}

	var s sched.Scheduler
	switch c.Scheduler {
	case VAS:
		s = sched.NewVAS()
	case PAS:
		s = sched.NewPAS()
	case SPK1:
		s = core.NewSPK1()
	case SPK2:
		s = core.NewSPK2()
	case SPK3, "":
		s = core.NewSPK3()
	default:
		return ssd.Config{}, nil, fmt.Errorf("sprinkler: unknown scheduler %q", c.Scheduler)
	}
	return cfg, s, nil
}

// Request is one host I/O request.
type Request struct {
	// ArrivalNS is the arrival time in nanoseconds from simulation start.
	ArrivalNS int64
	// Write selects the direction (false = read).
	Write bool
	// LPN is the first logical page; Pages the length in pages.
	LPN   int64
	Pages int
	// FUA marks a force-unit-access request that must not be reordered.
	FUA bool
}

// Device is a simulated many-chip SSD. A Device runs one workload; build a
// fresh one per run.
type Device struct {
	inner *ssd.Device
	cfg   Config
}

// New builds a Device from the configuration.
func New(cfg Config) (*Device, error) {
	icfg, s, err := cfg.toInternal()
	if err != nil {
		return nil, err
	}
	inner, err := ssd.New(icfg, s)
	if err != nil {
		return nil, err
	}
	return &Device{inner: inner, cfg: cfg}, nil
}

// NumChips returns the platform's total flash chip count.
func (d *Device) NumChips() int { return d.inner.Geo().NumChips() }

// Precondition fills fillFrac of the logical space and overwrites
// churnFrac of it, fragmenting the physical layout so garbage collection
// runs during the subsequent workload (§5.9).
func (d *Device) Precondition(fillFrac, churnFrac float64, seed uint64) {
	d.inner.Precondition(fillFrac, churnFrac, seed)
}

// Run simulates the requests to completion and returns the measurements.
func (d *Device) Run(requests []Request) (*Result, error) {
	ios := make([]*req.IO, len(requests))
	for i, r := range requests {
		kind := req.Read
		if r.Write {
			kind = req.Write
		}
		if r.Pages <= 0 {
			return nil, fmt.Errorf("sprinkler: request %d has %d pages", i, r.Pages)
		}
		io := req.NewIO(int64(i), kind, req.LPN(r.LPN), r.Pages, simTime(r.ArrivalNS))
		io.FUA = r.FUA
		ios[i] = io
	}
	res, err := d.inner.Run(&ssd.SliceSource{IOs: ios})
	if err != nil {
		return nil, err
	}
	return publicResult(res), nil
}

// Workloads returns the names of the paper's Table 1 trace catalogue.
func Workloads() []string {
	var names []string
	for _, w := range trace.Table1() {
		names = append(names, w.Name)
	}
	return names
}

// GenerateWorkload synthesizes n requests of a named Table 1 workload
// sized for this configuration's logical space.
func (c Config) GenerateWorkload(name string, n int, seed uint64) ([]Request, error) {
	w, ok := trace.ByName(name)
	if !ok {
		return nil, fmt.Errorf("sprinkler: unknown workload %q (see Workloads())", name)
	}
	icfg, _, err := c.toInternal()
	if err != nil {
		return nil, err
	}
	if err := icfg.Validate(); err != nil {
		return nil, err
	}
	ios, err := trace.Generate(w, trace.GenConfig{
		Instructions: n,
		LogicalPages: icfg.Geo.TotalPages() * 9 / 10,
		PageSize:     icfg.Geo.PageSize,
		AlignStride:  int64(icfg.Geo.NumChips()),
		Seed:         seed,
	})
	if err != nil {
		return nil, err
	}
	return fromIOs(ios), nil
}

// SequentialReads builds n back-to-back reads of the given size.
func SequentialReads(n, pages int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = Request{LPN: int64(i * pages), Pages: pages}
	}
	return out
}

// SequentialWrites builds n back-to-back writes of the given size.
func SequentialWrites(n, pages int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = Request{Write: true, LPN: int64(i * pages), Pages: pages}
	}
	return out
}

func fromIOs(ios []*req.IO) []Request {
	out := make([]Request, len(ios))
	for i, io := range ios {
		out[i] = Request{
			ArrivalNS: int64(io.Arrival),
			Write:     io.Kind == req.Write,
			LPN:       int64(io.Start),
			Pages:     io.Pages,
			FUA:       io.FUA,
		}
	}
	return out
}
