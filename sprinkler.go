// Package sprinkler is a from-scratch reproduction of "Sprinkler:
// Maximizing Resource Utilization in Many-Chip Solid State Disks"
// (Jung & Kandemir, HPCA 2014): an event-driven many-chip SSD simulator
// with the paper's device-level I/O schedulers.
//
// The library models the full SSD of the paper — channels, chips, dies,
// planes, ONFI-style bus timing, MLC program-latency variation, a
// page-level FTL with garbage collection — and five NVMHC schedulers:
//
//	VAS   virtual address scheduler (FIFO baseline)
//	PAS   physical address scheduler (coarse-grain out-of-order baseline)
//	SPK1  Sprinkler with FARO only (FLP-aware request over-commitment)
//	SPK2  Sprinkler with RIOS only (resource-driven I/O scheduling)
//	SPK3  full Sprinkler (RIOS + FARO)
//
// Workloads are streams: a Source yields requests one at a time (slice
// replays, CSV trace files, infinite synthetic generators, open-loop
// Poisson arrivals), and the device pulls it one request ahead of the
// simulation clock — the workload itself is never materialized, however
// long it runs. Sources compose through deterministic combinators — Mix,
// Phases, Burst, Zipf, ReadRatio, Resize — and every source is Resettable:
// Reset(seed) rewinds it to replay exactly what a fresh construction with
// that seed would emit, which is what lets sweeps pool sources across
// cells (see DeviceArena and the SourceSpec constructors). Metrics memory
// is O(1): latency percentiles are exact up to Config's MetricsSampleCap
// and then stream into a fixed-size log-bucketed estimator, and completed
// request objects are recycled.
// The FTL's mapping tables cost ~8 bytes per logical/physical page over
// the touched address-space span (the same dense-page-table budget real
// FTL DRAM pays), independent of how long the workload runs.
//
// Quick start (bulk run):
//
//	cfg := sprinkler.DefaultConfig()
//	cfg.Scheduler = sprinkler.SPK3
//	dev, err := sprinkler.New(cfg)
//	if err != nil { ... }
//	src, err := cfg.NewWorkloadSource(sprinkler.WorkloadSpec{Name: "msnfs1", Requests: 100000})
//	if err != nil { ... }
//	res, err := dev.Run(ctx, src)
//	fmt.Printf("%.1f MB/s\n", res.BandwidthKBps/1024)
//
// Online session (submit requests while the simulation runs, observe
// mid-run metrics):
//
//	sess, err := sprinkler.Open(cfg)
//	for _, r := range batch { sess.Submit(r) }
//	sess.Advance(10_000_000)          // 10 ms of simulated time
//	snap := sess.Snapshot()           // bandwidth/latency/utilization so far
//	res, err := sess.Drain(ctx)       // finish everything, final Result
//
// Sweeps (many cells, all CPU cores, deterministic seeds):
//
//	cells := sprinkler.Sweep(cfg, sprinkler.Schedulers(), sprinkler.Workloads(), 3000)
//	results := sprinkler.Runner{}.Run(ctx, cells)
package sprinkler

import (
	"context"
	"fmt"
	"math"

	"sprinkler/internal/core"
	"sprinkler/internal/ftl"
	"sprinkler/internal/req"
	"sprinkler/internal/sched"
	"sprinkler/internal/ssd"
	"sprinkler/internal/trace"
)

// SchedulerKind selects the device-level I/O scheduler.
type SchedulerKind string

// The five schedulers of the paper's evaluation (§5.1).
const (
	VAS  SchedulerKind = "VAS"
	PAS  SchedulerKind = "PAS"
	SPK1 SchedulerKind = "SPK1"
	SPK2 SchedulerKind = "SPK2"
	SPK3 SchedulerKind = "SPK3"
)

// Schedulers lists every available SchedulerKind.
func Schedulers() []SchedulerKind { return []SchedulerKind{VAS, PAS, SPK1, SPK2, SPK3} }

// AllocationScheme selects the FTL's dynamic page-allocation (striping)
// scheme — which resource dimension consecutive writes advance through
// first. The empty string means ChannelFirst.
type AllocationScheme string

// The supported allocation schemes (see the paper's references [13, 16,
// 36] on page-allocation strategy impact).
const (
	ChannelFirst AllocationScheme = "channel-first"
	WayFirst     AllocationScheme = "way-first"
	PlaneFirst   AllocationScheme = "plane-first"
)

// Config describes the SSD platform. DefaultConfig mirrors §5.1 of the
// paper: 64 chips over 8 channels, 2 dies × 4 planes per chip, 2 KB pages,
// ONFI 2.x channel timing, MLC programming between 200 µs and 2.2 ms.
type Config struct {
	// Platform geometry.
	Channels       int
	ChipsPerChan   int
	DiesPerChip    int
	PlanesPerDie   int
	BlocksPerPlane int
	PagesPerBlock  int
	PageSize       int

	// QueueDepth is the device-level queue's tag capacity.
	QueueDepth int

	// Scheduler picks the NVMHC scheduling strategy.
	Scheduler SchedulerKind

	// Allocation picks the FTL page-allocation scheme (default
	// ChannelFirst).
	Allocation AllocationScheme

	// MaxBacklog bounds host-side requests buffered ahead of admission
	// in source-driven runs; zero means unbounded. Set it for open-loop
	// overload scenarios (arrival rate above service rate) so the
	// host-side buffer stays flat: the source is paused at the bound and
	// resumed as admissions drain. Arrival timestamps — and therefore
	// measured latencies — are unaffected.
	MaxBacklog int

	// LogicalPages bounds the logical address space. Zero defaults to
	// ~90% of the physical pages, leaving over-provisioning headroom.
	LogicalPages int64

	// GCFreeTarget is the per-plane free-block threshold that triggers
	// background garbage collection. Zero uses the FTL default.
	GCFreeTarget int

	// MetricsSampleCap bounds the exact latency samples a run retains.
	// Below the cap percentiles are exact (and byte-identical to earlier
	// releases); past it the run switches to a fixed-memory log-bucketed
	// estimator with <= 0.8% relative quantile error, so arbitrarily long
	// runs hold O(1) metrics memory. Zero selects the default cap (2^20
	// samples, ~8 MB); negative streams into buckets from the first
	// sample.
	MetricsSampleCap int

	// DisableGC turns background garbage collection off.
	DisableGC bool

	// ParallelChannels runs the device's event kernel partitioned by
	// channel: each per-channel controller (bus + chips) gets its own
	// sub-engine, and up to ParallelChannels OS threads advance the
	// sub-engines in conservative lockstep epochs bounded by the DMA
	// compose latency. Results are byte-identical to the serial kernel —
	// this is a speed knob, not a model change — and background GC is
	// fully supported: GC flash traffic is chip-local, so a channel whose
	// completion can trigger collection parks at that instant until the
	// epoch coordinator hands it the resulting commits. Values below 2
	// (the default) keep the single-engine serial kernel; the parallel
	// kernel also requires at least two channels and a nonzero compose
	// latency, falling back to the serial kernel otherwise
	// (UsesParallelKernel reports the resolution).
	ParallelChannels int

	// Faults configures deterministic flash fault injection (read-retry
	// ladders, program/erase failures, transient die outages, spare-block
	// provisioning with degraded-mode fallback). The zero value disables
	// the model entirely and is byte-identical to a fault-free build.
	Faults FaultSpec

	// CollectSeries records a per-I/O latency series in the result.
	CollectSeries bool

	// SeriesWindow bounds the collected series to the most recent N
	// completed I/Os (a ring buffer), making series collection safe on
	// arbitrarily long runs. Zero keeps the exact one-point-per-I/O
	// series. Ignored unless CollectSeries is set.
	SeriesWindow int
}

// FaultSpec configures deterministic flash fault injection. Faults are
// drawn from per-chip deterministic streams derived from Seed in chip-local
// order, so a fault schedule is a pure function of the configuration: the
// serial and parallel kernels, and fresh versus arena-recycled devices, all
// replay it byte-for-byte. The JSON tags make the spec part of the daemon's
// wire format (session open requests).
type FaultSpec struct {
	// ReadFailProb, ProgramFailProb and EraseFailProb are per-member
	// failure probabilities for the three flash operations. A failing
	// read sense enters the retry ladder; a failed program is remapped to
	// a fresh block and rewritten; a failed erase retires the block to
	// the spare pool.
	ReadFailProb    float64 `json:"readFailProb,omitempty"`
	ProgramFailProb float64 `json:"programFailProb,omitempty"`
	EraseFailProb   float64 `json:"eraseFailProb,omitempty"`

	// ReadRetryMax bounds the read-retry ladder (0 = a failing sense is
	// immediately uncorrectable); retry r costs r × ReadRetryMult × the
	// base sense time (values below 1 behave as 1).
	ReadRetryMax  int `json:"readRetryMax,omitempty"`
	ReadRetryMult int `json:"readRetryMult,omitempty"`

	// RewriteMax bounds program-fail recovery: how many times one page
	// write may be remapped and re-issued before the host I/O is failed.
	RewriteMax int `json:"rewriteMax,omitempty"`

	// OutagePeriodNS/OutageDurNS define per-die transient outage windows:
	// a flash operation that would start inside a die's window waits it
	// out. Zero disables outages.
	OutagePeriodNS int64 `json:"outagePeriodNS,omitempty"`
	OutageDurNS    int64 `json:"outageDurNS,omitempty"`

	// SpareBlockFrac reserves this fraction of each plane's blocks as
	// bad-block replacement spares. Retirements consume spares; when they
	// run out the drive degrades to read-only mode (Result.DegradedMode):
	// pending and future writes are failed, reads keep being served.
	SpareBlockFrac float64 `json:"spareBlockFrac,omitempty"`

	// Seed is the base fault seed; each chip derives an independent
	// stream from it.
	Seed uint64 `json:"seed,omitempty"`
}

// internal maps the public fault spec onto the engine's.
func (f FaultSpec) internal() ssd.FaultSpec {
	return ssd.FaultSpec{
		ReadFailProb:    f.ReadFailProb,
		ProgramFailProb: f.ProgramFailProb,
		EraseFailProb:   f.EraseFailProb,
		ReadRetryMax:    f.ReadRetryMax,
		ReadRetryMult:   f.ReadRetryMult,
		RewriteMax:      f.RewriteMax,
		OutagePeriod:    simTime(f.OutagePeriodNS),
		OutageDur:       simTime(f.OutageDurNS),
		SpareBlockFrac:  f.SpareBlockFrac,
		Seed:            f.Seed,
	}
}

// check validates the spec with public field names in the errors.
func (f FaultSpec) check() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"ReadFailProb", f.ReadFailProb},
		{"ProgramFailProb", f.ProgramFailProb},
		{"EraseFailProb", f.EraseFailProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("sprinkler: Config.Faults.%s %g outside [0, 1]", p.name, p.v)
		}
	}
	if f.ReadRetryMax < 0 || f.ReadRetryMult < 0 || f.RewriteMax < 0 {
		return fmt.Errorf("sprinkler: Config.Faults retry and rewrite bounds must be non-negative")
	}
	if f.OutagePeriodNS < 0 || f.OutageDurNS < 0 {
		return fmt.Errorf("sprinkler: Config.Faults outage window must be non-negative")
	}
	if f.OutageDurNS > 0 && f.OutagePeriodNS == 0 {
		return fmt.Errorf("sprinkler: Config.Faults.OutageDurNS set without OutagePeriodNS")
	}
	if f.OutagePeriodNS > 0 && f.OutageDurNS >= f.OutagePeriodNS {
		return fmt.Errorf("sprinkler: Config.Faults.OutageDurNS %d must be shorter than OutagePeriodNS %d",
			f.OutageDurNS, f.OutagePeriodNS)
	}
	if f.SpareBlockFrac < 0 || f.SpareBlockFrac >= 1 {
		return fmt.Errorf("sprinkler: Config.Faults.SpareBlockFrac %g outside [0, 1)", f.SpareBlockFrac)
	}
	return nil
}

// TotalPages returns the platform's physical page count.
func (c Config) TotalPages() int64 {
	return int64(c.Channels) * int64(c.ChipsPerChan) * int64(c.DiesPerChip) *
		int64(c.PlanesPerDie) * int64(c.BlocksPerPlane) * int64(c.PagesPerBlock)
}

// DefaultConfig returns the paper's evaluation platform with SPK3.
func DefaultConfig() Config {
	base := ssd.DefaultConfig()
	return Config{
		Channels:       base.Geo.Channels,
		ChipsPerChan:   base.Geo.ChipsPerChan,
		DiesPerChip:    base.Geo.DiesPerChip,
		PlanesPerDie:   base.Geo.PlanesPerDie,
		BlocksPerPlane: base.Geo.BlocksPerPlane,
		PagesPerBlock:  base.Geo.PagesPerBlock,
		PageSize:       base.Geo.PageSize,
		QueueDepth:     base.QueueDepth,
		Scheduler:      SPK3,
	}
}

// UsesParallelKernel reports whether this configuration resolves to the
// partitioned per-channel kernel: ParallelChannels >= 2, at least two
// channels, and a nonzero compose latency. When it returns false a device
// built from the config silently runs the single-engine serial kernel
// (the results are byte-identical either way). Invalid configurations
// report false.
func (c Config) UsesParallelKernel() bool {
	cfg, err := c.internalConfig()
	if err != nil || cfg.Validate() != nil {
		return false
	}
	return cfg.Partitioned()
}

// toInternal converts the public config and builds its scheduler.
func (c Config) toInternal() (ssd.Config, sched.Scheduler, error) {
	cfg, err := c.internalConfig()
	if err != nil {
		return ssd.Config{}, nil, err
	}
	s, err := c.newScheduler()
	if err != nil {
		return ssd.Config{}, nil, err
	}
	return cfg, s, nil
}

// internalConfig converts the public config (scheduler excluded).
func (c Config) internalConfig() (ssd.Config, error) {
	cfg := ssd.DefaultConfig()
	cfg.Geo.Channels = c.Channels
	cfg.Geo.ChipsPerChan = c.ChipsPerChan
	cfg.Geo.DiesPerChip = c.DiesPerChip
	cfg.Geo.PlanesPerDie = c.PlanesPerDie
	cfg.Geo.BlocksPerPlane = c.BlocksPerPlane
	cfg.Geo.PagesPerBlock = c.PagesPerBlock
	cfg.Geo.PageSize = c.PageSize
	cfg.QueueDepth = c.QueueDepth
	cfg.MaxBacklog = c.MaxBacklog
	cfg.LogicalPages = c.LogicalPages
	cfg.GCFreeTarget = c.GCFreeTarget
	cfg.MetricsSampleCap = c.MetricsSampleCap
	cfg.DisableGC = c.DisableGC
	cfg.ParallelChannels = c.ParallelChannels
	cfg.Faults = c.Faults.internal()
	cfg.CollectSeries = c.CollectSeries
	cfg.SeriesWindow = c.SeriesWindow

	switch c.Allocation {
	case ChannelFirst, "":
		cfg.Allocation = ftl.AllocChannelFirst
	case WayFirst:
		cfg.Allocation = ftl.AllocWayFirst
	case PlaneFirst:
		cfg.Allocation = ftl.AllocPlaneFirst
	default:
		return ssd.Config{}, fmt.Errorf("sprinkler: unknown allocation scheme %q", c.Allocation)
	}
	return cfg, nil
}

// newScheduler builds a fresh scheduler for the configured kind.
func (c Config) newScheduler() (sched.Scheduler, error) {
	switch c.Scheduler {
	case VAS:
		return sched.NewVAS(), nil
	case PAS:
		return sched.NewPAS(), nil
	case SPK1:
		return core.NewSPK1(), nil
	case SPK2:
		return core.NewSPK2(), nil
	case SPK3, "":
		return core.NewSPK3(), nil
	default:
		return nil, fmt.Errorf("sprinkler: unknown scheduler %q", c.Scheduler)
	}
}

// resolveKind normalizes the default scheduler selection.
func resolveKind(k SchedulerKind) SchedulerKind {
	if k == "" {
		return SPK3
	}
	return k
}

// Request is one host I/O request.
type Request struct {
	// ArrivalNS is the arrival time in nanoseconds from simulation start.
	ArrivalNS int64
	// Write selects the direction (false = read).
	Write bool
	// LPN is the first logical page; Pages the length in pages.
	LPN   int64
	Pages int
	// FUA marks a force-unit-access request that must not be reordered.
	FUA bool
}

// Device is a simulated many-chip SSD. A Device runs one workload at a
// time; after a run drains it can be Reset and reused for the next one —
// the cheap path mass sweeps take through DeviceArena. For online
// submission and mid-run observation, use Open and the Session API
// instead.
type Device struct {
	inner *ssd.Device
	cfg   Config

	// adapter persists across runs: its retired-I/O free list keeps the
	// request working set hot from one run to the next, so a sweep cell on
	// an arena-recycled device admits at zero steady-state allocations
	// from its first request (the pool would otherwise re-warm from empty
	// every run).
	adapter ioAdapter

	// scheds caches one scheduler instance per kind ever run on this
	// device, so a sweep alternating schedulers on a recycled device
	// reuses them (per-run selection state is dropped through
	// sched.StateResetter on every Reset) instead of rebuilding.
	scheds map[SchedulerKind]sched.Scheduler
}

// New builds a Device from the configuration, validating it first.
func New(cfg Config) (*Device, error) { return newWithMeta(cfg, nil) }

// newWithMeta builds a Device, reusing a retained FTL block-metadata arena
// when the DeviceArena kept one for the topology (nil builds fresh).
func newWithMeta(cfg Config, meta *ftl.BlockMeta) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	icfg, s, err := cfg.toInternal()
	if err != nil {
		return nil, err
	}
	inner, err := ssd.NewWithFTLMeta(icfg, s, meta)
	if err != nil {
		return nil, err
	}
	// Every public path (Run, Drain, Snapshot) flattens the internal
	// result immediately, so rendering may borrow live metric storage.
	inner.SetTransientResults(true)
	return &Device{
		inner:  inner,
		cfg:    cfg,
		scheds: map[SchedulerKind]sched.Scheduler{resolveKind(cfg.Scheduler): s},
	}, nil
}

// Reset re-initializes the device in place for a new run, as if freshly
// built with New(cfg) — but reusing every geometry-sized structure the
// first construction allocated (event slab, controller and chip state,
// FTL metadata pools and mapping tables, queue tags, scheduler indexes),
// which is what makes device construction effectively free across the
// cells of a sweep. The platform geometry must match the device's; every
// per-run knob (scheduler, queue depth, GC policy, allocation scheme,
// metrics options) may change. When the scheduler kind is unchanged the
// existing scheduler instance is recycled too, with its per-run selection
// state dropped.
//
// A reset device produces byte-identical Results to a fresh one — the
// reuse-parity tests pin this for every scheduler. The previous run must
// have completed (or never started); resetting mid-run is a caller bug.
func (d *Device) Reset(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	icfg, err := cfg.internalConfig()
	if err != nil {
		return err
	}
	kind := resolveKind(cfg.Scheduler)
	sch := d.scheds[kind]
	if sch == nil {
		if sch, err = cfg.newScheduler(); err != nil {
			return err
		}
		d.scheds[kind] = sch
	}
	if err := d.inner.Reset(icfg, sch); err != nil {
		return err
	}
	d.cfg = cfg
	return nil
}

// Config returns the configuration the device is currently built for.
func (d *Device) Config() Config { return d.cfg }

// Platform builds the paper's §5.1 evaluation platform for a total chip
// count, spreading chips over channels the way the paper's platforms do
// (64 chips = 8 channels × 8; 1024 chips = 32 × 32). Per-plane block
// counts are kept modest so very large platforms stay within memory;
// capacity is irrelevant to scheduling behaviour.
func Platform(chips int) Config {
	cfg := DefaultConfig()
	channels := int(math.Round(math.Sqrt(float64(chips))))
	if channels < 1 {
		channels = 1
	}
	if channels > 32 {
		channels = 32
	}
	for chips%channels != 0 {
		channels--
	}
	cfg.Channels = channels
	cfg.ChipsPerChan = chips / channels
	cfg.BlocksPerPlane = 256
	cfg.PagesPerBlock = 128
	return cfg
}

// NumChips returns the platform's total flash chip count.
func (d *Device) NumChips() int { return d.inner.Geo().NumChips() }

// Precondition fills fillFrac of the logical space and overwrites
// churnFrac of it, fragmenting the physical layout so garbage collection
// runs during the subsequent workload (§5.9).
func (d *Device) Precondition(fillFrac, churnFrac float64, seed uint64) {
	d.inner.Precondition(fillFrac, churnFrac, seed)
}

// Run streams the source to completion and returns the measurements —
// the primary entry point. The source is pulled one request ahead of the
// simulation clock, so the workload itself costs O(1) memory no matter
// how long it is (per-completed-I/O latency samples for exact
// percentiles still accumulate ~8 bytes each); bound an infinite source
// with Limit or cancel ctx.
//
// On context cancellation Run returns the measurements accumulated so
// far together with ctx's error, so a cancelled run is still observable.
func (d *Device) Run(ctx context.Context, src Source) (*Result, error) {
	return d.runInto(ctx, src, new(Result))
}

// runInto is Run rendering the measurements into a caller-supplied
// Result object — the ResultArena path. Every field of out is
// overwritten before it is returned.
func (d *Device) runInto(ctx context.Context, src Source, out *Result) (*Result, error) {
	// The adapter is the device's own, reused across runs: completed
	// request objects recycle into its free list during the run, and the
	// warmed list carries over to the device's next run (through a
	// DeviceArena, to the next sweep cell). The retire hook is
	// uninstalled afterwards and the source reference dropped, so a
	// finished run pins neither.
	a := &d.adapter
	a.src, a.next, a.err = src, 0, nil
	d.inner.SetIORetire(a.pool.put)
	defer func() {
		d.inner.SetIORetire(nil)
		a.src = nil
	}()
	res, err := d.inner.RunContext(ctx, a)
	if err != nil {
		if res != nil {
			return publicResultInto(out, res), err
		}
		return nil, err
	}
	if a.err != nil {
		return nil, a.err
	}
	return publicResultInto(out, res), nil
}

// RunRequests replays a fully materialized request list — the original
// entry point, retained as a thin wrapper over Run.
func (d *Device) RunRequests(requests []Request) (*Result, error) {
	return d.Run(context.Background(), SliceSource(requests))
}

// Workloads returns the names of the paper's Table 1 trace catalogue.
func Workloads() []string {
	var names []string
	for _, w := range trace.Table1() {
		names = append(names, w.Name)
	}
	return names
}

// GenerateWorkload synthesizes n requests of a named Table 1 workload
// sized for this configuration's logical space. It is a materializing
// wrapper over NewWorkloadSource; prefer the Source for long workloads.
func (c Config) GenerateWorkload(name string, n int, seed uint64) ([]Request, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sprinkler: GenerateWorkload needs a positive request count, got %d", n)
	}
	src, err := c.NewWorkloadSource(WorkloadSpec{Name: name, Requests: n, Seed: seed})
	if err != nil {
		return nil, err
	}
	out := make([]Request, 0, n)
	for {
		r, ok := src.Next()
		if !ok {
			return out, nil
		}
		out = append(out, r)
	}
}

// SequentialReads builds n back-to-back reads of the given size.
func SequentialReads(n, pages int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = Request{LPN: int64(i * pages), Pages: pages}
	}
	return out
}

// SequentialWrites builds n back-to-back writes of the given size.
func SequentialWrites(n, pages int) []Request {
	out := make([]Request, n)
	for i := range out {
		out[i] = Request{Write: true, LPN: int64(i * pages), Pages: pages}
	}
	return out
}

func fromIOs(ios []*req.IO) []Request {
	out := make([]Request, len(ios))
	for i, io := range ios {
		out[i] = Request{
			ArrivalNS: int64(io.Arrival),
			Write:     io.Kind == req.Write,
			LPN:       int64(io.Start),
			Pages:     io.Pages,
			FUA:       io.FUA,
		}
	}
	return out
}
