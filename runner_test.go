package sprinkler_test

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"sprinkler"
)

// sweepCells builds a small scheduler-comparison grid.
func sweepCells() []sprinkler.Cell {
	cfg := smallConfig(sprinkler.SPK3)
	return sprinkler.Sweep(cfg, sprinkler.Schedulers(), []string{"cfs0", "msnfs1"}, 150)
}

// TestSweepConcurrentMatchesSerial runs the same cells with one worker
// and with eight and requires identical results — the determinism
// guarantee of the Runner API.
func TestSweepConcurrentMatchesSerial(t *testing.T) {
	serial := sprinkler.Runner{Workers: 1, Seed: 9}.Run(context.Background(), sweepCells())
	concurrent := sprinkler.Runner{Workers: 8, Seed: 9}.Run(context.Background(), sweepCells())
	if len(serial) != len(concurrent) {
		t.Fatalf("result counts differ: %d != %d", len(serial), len(concurrent))
	}
	for i := range serial {
		s, c := serial[i], concurrent[i]
		if s.Err != nil || c.Err != nil {
			t.Fatalf("cell %q failed: serial=%v concurrent=%v", s.Name, s.Err, c.Err)
		}
		if s.Name != c.Name || s.Seed != c.Seed {
			t.Fatalf("cell order broke: %q/%d vs %q/%d", s.Name, s.Seed, c.Name, c.Seed)
		}
		if s.Result.IOsCompleted != c.Result.IOsCompleted ||
			s.Result.DurationNS != c.Result.DurationNS ||
			s.Result.AvgLatencyNS != c.Result.AvgLatencyNS ||
			s.Result.BandwidthKBps != c.Result.BandwidthKBps ||
			s.Result.Transactions != c.Result.Transactions ||
			s.Result.QueueStallNS != c.Result.QueueStallNS {
			t.Fatalf("cell %q diverged:\nserial:     %+v\nconcurrent: %+v", s.Name, s.Result, c.Result)
		}
	}
}

// TestSweepSharesTracePerWorkload: all schedulers of one workload get the
// same seed, different workloads different seeds.
func TestSweepSharesTracePerWorkload(t *testing.T) {
	results := sprinkler.Runner{Workers: 4}.Run(context.Background(), sweepCells())
	seeds := map[string]map[uint64]bool{}
	for _, cr := range results {
		if cr.Err != nil {
			t.Fatal(cr.Err)
		}
		w := cr.Name[strings.Index(cr.Name, "/")+1:]
		if seeds[w] == nil {
			seeds[w] = map[uint64]bool{}
		}
		seeds[w][cr.Seed] = true
	}
	if len(seeds) != 2 {
		t.Fatalf("expected 2 workloads, got %d", len(seeds))
	}
	var distinct []uint64
	for w, set := range seeds {
		if len(set) != 1 {
			t.Fatalf("workload %s saw %d seeds, want 1 shared across schedulers", w, len(set))
		}
		for s := range set {
			distinct = append(distinct, s)
		}
	}
	if distinct[0] == distinct[1] {
		t.Fatal("different workloads share a seed")
	}
}

// TestRunnerCellErrorIsolated: one broken cell fails alone.
func TestRunnerCellErrorIsolated(t *testing.T) {
	cfg := smallConfig(sprinkler.VAS)
	good := sprinkler.Cell{
		Name:   "good",
		Config: cfg,
		Source: func(seed uint64) (sprinkler.Source, error) {
			return cfg.NewWorkloadSource(sprinkler.WorkloadSpec{Name: "cfs0", Requests: 50, Seed: seed})
		},
	}
	badCfg := cfg
	badCfg.QueueDepth = -1
	bad := sprinkler.Cell{
		Name:   "bad",
		Config: badCfg,
		Source: good.Source,
	}
	noSource := sprinkler.Cell{Name: "nosource", Config: cfg}

	results := sprinkler.Runner{Workers: 2}.Run(context.Background(), []sprinkler.Cell{good, bad, noSource})
	if results[0].Err != nil {
		t.Fatalf("good cell failed: %v", results[0].Err)
	}
	if results[0].Result.IOsCompleted != 50 {
		t.Fatalf("good cell completed %d/50", results[0].Result.IOsCompleted)
	}
	if results[1].Err == nil || !strings.Contains(results[1].Err.Error(), "QueueDepth") {
		t.Fatalf("bad cell error = %v", results[1].Err)
	}
	if results[2].Err == nil || !strings.Contains(results[2].Err.Error(), "no Source") {
		t.Fatalf("nosource cell error = %v", results[2].Err)
	}
}

// TestRunnerCancelled abandons cells when the context is cancelled.
func TestRunnerCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results := sprinkler.Runner{Workers: 2}.Run(ctx, sweepCells())
	for _, cr := range results {
		if cr.Err == nil {
			t.Fatalf("cell %q ran under a cancelled context", cr.Name)
		}
	}
}

// TestResultArenaReuseParity pins the caller-owned result arena: sweeps
// rendering into recycled Result objects are byte-identical to freshly
// allocated ones, across repeated Recycle/Run cycles, and a recycled
// Result carries nothing over from its previous life — in particular a
// series-collecting sweep followed by a plain one must leave no stale
// series on any result.
func TestResultArenaReuseParity(t *testing.T) {
	fingerprint := func(results []sprinkler.CellResult) []string {
		out := make([]string, len(results))
		for i, cr := range results {
			if cr.Err != nil {
				t.Fatalf("cell %q failed: %v", cr.Name, cr.Err)
			}
			b, err := json.Marshal(cr.Result)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = cr.Name + " " + string(b)
		}
		return out
	}

	want := fingerprint(sprinkler.Runner{Workers: 2, Seed: 9}.Run(context.Background(), sweepCells()))

	arena := sprinkler.NewResultArena()
	reuser := sprinkler.Runner{Workers: 2, Seed: 9, Results: arena}
	for round := 0; round < 3; round++ {
		// Alternate a series-collecting sweep in: its recycled Results
		// carry Series storage the plain sweep must fully reset.
		seriesCells := sweepCells()
		for i := range seriesCells {
			seriesCells[i].Config.CollectSeries = true
		}
		withSeries := reuser.Run(context.Background(), seriesCells)
		for _, cr := range withSeries {
			if cr.Err != nil {
				t.Fatalf("series cell %q failed: %v", cr.Name, cr.Err)
			}
			if len(cr.Result.Series) == 0 {
				t.Fatalf("round %d: series cell %q collected no series", round, cr.Name)
			}
		}
		arena.Recycle(withSeries)

		results := reuser.Run(context.Background(), sweepCells())
		for i, got := range fingerprint(results) {
			if got != want[i] {
				t.Fatalf("round %d cell %d: recycled result diverged:\n fresh:    %s\n recycled: %s",
					round, i, want[i], got)
			}
		}
		arena.Recycle(results)
	}
}
