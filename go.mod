module sprinkler

go 1.24
