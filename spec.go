package sprinkler

import "fmt"

// This file lifts sources and combinators to SourceSpec constructors, so a
// Grid can sweep workload *structure* — burst duty cycle, mix ratio, skew
// exponent, read ratio, transfer size — as an axis, the same way it sweeps
// schedulers and topology. Each constructor composes the spec's label (the
// label is the axis point's name, feeds the per-cell seed and the arena's
// source-pool key) and threads the cell seed under the Resettable
// discipline, so spec-built workloads pool across cells like primitive
// sources do.

// Spec lifts a Table 1 workload description to a grid axis point labelled
// with the workload name. A zero Seed follows the cell seed (the usual
// grid discipline); a non-zero Seed pins the trace — the source ignores
// the cell seed on build *and* on pooled Reset, so every cell replays the
// one frozen stream.
func (s WorkloadSpec) Spec() SourceSpec {
	return SourceSpec{
		Label: s.Name,
		New: func(cfg Config, seed uint64) (Source, error) {
			spec := s
			if spec.Seed == 0 {
				spec.Seed = seed
			}
			src, err := cfg.NewWorkloadSource(spec)
			if err != nil {
				return nil, err
			}
			return pinSeed(src, s.Seed), nil
		},
	}
}

// Spec lifts a fixed-transfer-size workload description to a grid axis
// point. Seed semantics are as on WorkloadSpec.Spec: zero follows the
// cell seed, non-zero freezes the stream across cells and pooled resets.
func (s FixedSpec) Spec(label string) SourceSpec {
	return SourceSpec{
		Label: label,
		New: func(cfg Config, seed uint64) (Source, error) {
			spec := s
			if spec.Seed == 0 {
				spec.Seed = seed
			}
			src, err := cfg.NewFixedSource(spec)
			if err != nil {
				return nil, err
			}
			return pinSeed(src, s.Seed), nil
		},
	}
}

// pinSeed freezes a spec-pinned seed across Reset: when the spec carried
// an explicit Seed, a fresh build ignores the cell seed, so a pooled
// Reset must too — otherwise pooled cells would replay a different trace
// than fresh ones. A zero pin passes the caller's seed through.
func pinSeed(src Source, pinned uint64) Source {
	if pinned == 0 {
		return src
	}
	return &pinnedSeedSource{src: src, seed: pinned}
}

type pinnedSeedSource struct {
	src  Source
	seed uint64
}

func (p *pinnedSeedSource) Next() (Request, bool) { return p.src.Next() }
func (p *pinnedSeedSource) Err() error            { return sourceErr(p.src) }

// Reset implements Resettable, replaying under the pinned seed regardless
// of the seed the pool hands in.
func (p *pinnedSeedSource) Reset(uint64) error { return ResetSource(p.src, p.seed) }

// wrap derives a new spec from s: the label gains a "+suffix" tag and the
// built source is transformed by fn (with the cell's config and seed in
// scope for span sizing and seed derivation).
func (s SourceSpec) wrap(suffix string, fn func(src Source, cfg Config, seed uint64) (Source, error)) SourceSpec {
	inner := s.New
	return SourceSpec{
		Label: s.Label + "+" + suffix,
		New: func(cfg Config, seed uint64) (Source, error) {
			src, err := inner(cfg, seed)
			if err != nil {
				return nil, err
			}
			return fn(src, cfg, seed)
		},
	}
}

// Relabel renames the spec's axis point (the default composed labels can
// get long).
func (s SourceSpec) Relabel(label string) SourceSpec {
	return SourceSpec{Label: label, New: s.New}
}

// WithLimit caps the spec's source at n requests.
func (s SourceSpec) WithLimit(n int64) SourceSpec {
	return s.wrap(fmt.Sprintf("limit=%d", n), func(src Source, _ Config, _ uint64) (Source, error) {
		return Limit(src, n), nil
	})
}

// WithPoisson rewrites the spec's arrivals as an open-loop Poisson process
// at the given mean rate (requests per simulated second).
func (s SourceSpec) WithPoisson(requestsPerSec float64) SourceSpec {
	return s.wrap(fmt.Sprintf("poisson=%g", requestsPerSec), func(src Source, _ Config, seed uint64) (Source, error) {
		return Poisson(src, requestsPerSec, seed), nil
	})
}

// WithBurst modulates the spec's arrival timeline into on/off bursts (see
// Burst). Sweep offNS to make burst duty cycle a grid axis.
func (s SourceSpec) WithBurst(onNS, offNS int64) SourceSpec {
	return s.wrap(fmt.Sprintf("burst=%d/%d", onNS, offNS), func(src Source, _ Config, _ uint64) (Source, error) {
		return Burst(src, onNS, offNS)
	})
}

// WithZipf redraws the spec's addresses from a Zipf-like power law with
// exponent theta over the cell configuration's logical space.
func (s SourceSpec) WithZipf(theta float64) SourceSpec {
	return s.wrap(fmt.Sprintf("zipf=%g", theta), func(src Source, cfg Config, seed uint64) (Source, error) {
		return Zipf(src, theta, logicalSpan(cfg.LogicalPages, cfg.TotalPages()), seed)
	})
}

// WithReadRatio redraws the spec's request directions: read with
// probability frac.
func (s SourceSpec) WithReadRatio(frac float64) SourceSpec {
	return s.wrap(fmt.Sprintf("read=%g", frac), func(src Source, _ Config, seed uint64) (Source, error) {
		return ReadRatio(src, frac, seed)
	})
}

// WithPages redraws the spec's transfer sizes uniformly in
// [minPages, maxPages], clamped to the cell configuration's logical space.
func (s SourceSpec) WithPages(minPages, maxPages int) SourceSpec {
	return s.wrap(fmt.Sprintf("pages=%d-%d", minPages, maxPages), func(src Source, cfg Config, seed uint64) (Source, error) {
		return Resize(src, minPages, maxPages, logicalSpan(cfg.LogicalPages, cfg.TotalPages()), seed)
	})
}

// WeightedSpec pairs a spec with its Mix weight.
type WeightedSpec struct {
	Spec   SourceSpec
	Weight float64
}

// MixSpec declares a weighted interleave of specs as one axis point. Child
// i is built with SubSeed(cellSeed, i) — the derivation Mix's Reset
// applies — so mixed workloads pool across cells with exact parity.
func MixSpec(label string, items ...WeightedSpec) SourceSpec {
	return SourceSpec{
		Label: label,
		New: func(cfg Config, seed uint64) (Source, error) {
			ws := make([]Weighted, len(items))
			for i, it := range items {
				if it.Spec.New == nil {
					return nil, fmt.Errorf("sprinkler: MixSpec %q: item %d has no source", label, i)
				}
				src, err := it.Spec.New(cfg, SubSeed(seed, i))
				if err != nil {
					return nil, err
				}
				ws[i] = Weighted{Source: src, Weight: it.Weight}
			}
			return Mix(seed, ws...)
		},
	}
}

// PhaseSpec is one regime of a PhasesSpec (bounds as in Phase).
type PhaseSpec struct {
	Spec       SourceSpec
	Requests   int64
	DurationNS int64
}

// PhasesSpec declares a sequence of regimes as one axis point, with the
// same SubSeed-per-child derivation as MixSpec.
func PhasesSpec(label string, phases ...PhaseSpec) SourceSpec {
	return SourceSpec{
		Label: label,
		New: func(cfg Config, seed uint64) (Source, error) {
			ps := make([]Phase, len(phases))
			for i, p := range phases {
				if p.Spec.New == nil {
					return nil, fmt.Errorf("sprinkler: PhasesSpec %q: phase %d has no source", label, i)
				}
				src, err := p.Spec.New(cfg, SubSeed(seed, i))
				if err != nil {
					return nil, err
				}
				ps[i] = Phase{Source: src, Requests: p.Requests, DurationNS: p.DurationNS}
			}
			return Phases(ps...)
		},
	}
}
