package sprinkler_test

// Fault-injection pins: the three standing determinism contracts of the
// fault model. (1) Serial and parallel kernels replay the identical fault
// schedule — byte-identical JSON Results under randomized fault specs and
// worker counts. (2) A zero-rate spec is byte-identical to a fault-free
// build, even with retry-ladder knobs set: zero probabilities consume no
// RNG draws. (3) Spare exhaustion degrades the drive to read-only mode
// with a flagged Result instead of a panic or hang.

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"sprinkler"
)

// parityFaults draws a randomized fault spec for the parity trials. Erase
// faults and spares are left zero: parity configs disable GC, so the erase
// path never runs there (it is pinned by the arena and degraded-mode
// tests instead).
func parityFaults(rng *rand.Rand) sprinkler.FaultSpec {
	probs := []float64{0.005, 0.02, 0.08, 0.25}
	spec := sprinkler.FaultSpec{
		ReadFailProb:    probs[rng.Intn(len(probs))],
		ProgramFailProb: probs[rng.Intn(len(probs))],
		ReadRetryMax:    1 + rng.Intn(4),
		ReadRetryMult:   1 + rng.Intn(3),
		RewriteMax:      1 + rng.Intn(4),
		Seed:            rng.Uint64(),
	}
	if rng.Intn(2) == 0 {
		spec.OutagePeriodNS = int64(200_000 * (1 + rng.Intn(5)))
		spec.OutageDurNS = spec.OutagePeriodNS / int64(2+rng.Intn(6))
	}
	return spec
}

// TestParallelMatchesSerialFaults extends the kernel parity pin to the
// fault model: randomized fault rates, retry ladders and outage windows
// must produce byte-identical Results under the serial and partitioned
// kernels for every scheduler and worker count. A divergence means a
// fault draw depended on event drain order.
func TestParallelMatchesSerialFaults(t *testing.T) {
	trials, requests := 4, 500
	if testing.Short() {
		trials, requests = 2, 200
	}
	for _, kind := range sprinkler.Schedulers() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(len(kind))*104729 + 17))
			for trial := 0; trial < trials; trial++ {
				cfg := parityConfig(rng, kind)
				cfg.Faults = parityFaults(rng)
				precond := rng.Intn(2) == 0
				pseed := rng.Uint64()
				wseed := rng.Int63()

				serial := cfg
				serial.ParallelChannels = 0
				workers := 2 + rng.Intn(7)
				parallel := cfg
				parallel.ParallelChannels = workers

				srcRng := rand.New(rand.NewSource(wseed))
				want := runOnce(t, serial, precond, pseed, paritySource(t, srcRng, serial, requests))
				srcRng = rand.New(rand.NewSource(wseed))
				got := runOnce(t, parallel, precond, pseed, paritySource(t, srcRng, parallel, requests))
				if want != got {
					t.Fatalf("trial %d (workers=%d faults=%+v): parallel result diverges\nserial:   %s\nparallel: %s",
						trial, workers, cfg.Faults, want, got)
				}
			}
		})
	}
}

// TestParallelFaultCountersNonZero guards the parity suite against
// vacuity: with aggressive rates the fault counters must actually fire
// under both kernels, so the parity trials above compare live fault
// machinery rather than two idle models.
func TestParallelFaultCountersNonZero(t *testing.T) {
	cfg := sprinkler.DefaultConfig()
	cfg.Scheduler = sprinkler.SPK3
	cfg.Channels = 4
	cfg.ChipsPerChan = 2
	cfg.BlocksPerPlane = 64
	cfg.PagesPerBlock = 32
	cfg.DisableGC = true
	cfg.Faults = sprinkler.FaultSpec{
		ReadFailProb:    0.3,
		ProgramFailProb: 0.3,
		ReadRetryMax:    3,
		ReadRetryMult:   2,
		RewriteMax:      3,
		Seed:            7,
	}
	for _, workers := range []int{0, 4} {
		cfg := cfg
		cfg.ParallelChannels = workers
		dev, err := sprinkler.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dev.Precondition(0.5, 0.2, 11)
		src, err := cfg.NewWorkloadSource(sprinkler.WorkloadSpec{Name: "cfs0", Requests: 400, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		res, err := dev.Run(context.Background(), src)
		if err != nil {
			t.Fatal(err)
		}
		if res.ReadRetries == 0 || res.ProgramFails == 0 {
			t.Fatalf("workers=%d: fault model idle under 30%% rates: retries=%d programFails=%d",
				workers, res.ReadRetries, res.ProgramFails)
		}
	}
}

// TestFaultZeroRateParity pins the "zero rates draw nothing" contract: a
// spec with every probability zero but the ladder knobs set must be
// byte-identical to a fully zero FaultSpec — on the GC-enabled default
// pipeline, where any stray RNG draw would perturb the FTL stream.
func TestFaultZeroRateParity(t *testing.T) {
	base := smallConfig(sprinkler.SPK2)

	armed := base
	armed.Faults = sprinkler.FaultSpec{
		ReadRetryMax:   4,
		ReadRetryMult:  3,
		RewriteMax:     2,
		OutagePeriodNS: 0,
		Seed:           0, // a nonzero seed with zero rates must also be inert; see below
	}

	run := func(cfg sprinkler.Config) string {
		dev, err := sprinkler.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		dev.Precondition(0.9, 0.4, 5)
		src, err := cfg.NewWorkloadSource(sprinkler.WorkloadSpec{Name: "hm0", Requests: 300, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		res, err := dev.Run(context.Background(), src)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	want := run(base)
	if got := run(armed); got != want {
		t.Fatalf("zero-rate spec with ladder knobs diverges from fault-free build\nfault-free: %s\nzero-rate:  %s", want, got)
	}
	// The spare pool is the one knob that legitimately changes a zero-rate
	// build (it shrinks usable capacity), so it is excluded here; the seed
	// is not — rates of zero must never reach the RNG.
	armed.Faults.Seed = 0xDECAFBAD
	if got := run(armed); got != want {
		t.Fatal("zero-rate spec consumed RNG draws: changing Faults.Seed changed the result")
	}
}

// TestDegradedModeOnSpareExhaustion is the graceful-degradation pin:
// every erase fails, the spare pool is tiny, and a write-heavy GC-stressed
// workload must exhaust the spares. The run must complete cleanly with
// the Result flagging degraded read-only mode and failed writes — not
// panic, not hang.
func TestDegradedModeOnSpareExhaustion(t *testing.T) {
	cfg := sprinkler.DefaultConfig()
	cfg.Scheduler = sprinkler.SPK3
	cfg.Channels = 2
	cfg.ChipsPerChan = 1
	cfg.BlocksPerPlane = 16
	cfg.PagesPerBlock = 16
	cfg.GCFreeTarget = 4
	cfg.Faults = sprinkler.FaultSpec{
		EraseFailProb:  1.0,
		SpareBlockFrac: 0.1,
		Seed:           13,
	}
	dev, err := sprinkler.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev.Precondition(0.95, 0.5, 21)
	src, err := cfg.NewFixedSource(sprinkler.FixedSpec{Requests: 4000, Pages: 4, Write: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dev.Run(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DegradedMode {
		t.Fatalf("drive did not degrade: %d erase fails, %d retired blocks, %d failed IOs",
			res.EraseFails, res.RetiredBlocks, res.FailedIOs)
	}
	if res.EraseFails == 0 || res.RetiredBlocks == 0 {
		t.Fatalf("degraded without erase activity: eraseFails=%d retired=%d", res.EraseFails, res.RetiredBlocks)
	}
	if res.FailedIOs == 0 {
		t.Fatal("degraded read-only mode failed no writes")
	}
	if res.IOsCompleted == 0 {
		t.Fatal("no I/Os completed before degradation")
	}

	// Degradation must survive Reset: the recycled device starts healthy
	// again (spares restored) and replays the identical schedule.
	before, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	dev.Reset(cfg)
	dev.Precondition(0.95, 0.5, 21)
	src, err = cfg.NewFixedSource(sprinkler.FixedSpec{Requests: 4000, Pages: 4, Write: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := dev.Run(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	after, err := json.Marshal(res2)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatalf("degraded run does not replay after Reset\nfresh: %s\nreset: %s", before, after)
	}
}
