package sprinkler_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"sprinkler"
)

// smallConfig shrinks the platform for fast public-API tests.
func smallConfig(kind sprinkler.SchedulerKind) sprinkler.Config {
	cfg := sprinkler.DefaultConfig()
	cfg.Channels = 2
	cfg.ChipsPerChan = 4
	cfg.BlocksPerPlane = 64
	cfg.PagesPerBlock = 32
	cfg.Scheduler = kind
	return cfg
}

// TestCSVRoundTrip writes a generated workload as CSV, streams it back
// through NewCSVSource, and replays it on a device — the whole loop on
// the public API.
func TestCSVRoundTrip(t *testing.T) {
	cfg := smallConfig(sprinkler.SPK3)
	reqs, err := cfg.GenerateWorkload("cfs0", 120, 7)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := sprinkler.WriteCSV(&buf, reqs); err != nil {
		t.Fatal(err)
	}

	// Parse back and compare field-for-field.
	src := sprinkler.NewCSVSource(bytes.NewReader(buf.Bytes()))
	var parsed []sprinkler.Request
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		parsed = append(parsed, r)
	}
	if err := src.Err(); err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(reqs) {
		t.Fatalf("round trip lost requests: %d != %d", len(parsed), len(reqs))
	}
	for i := range reqs {
		want := reqs[i]
		want.FUA = false // the CSV format does not carry FUA
		if parsed[i] != want {
			t.Fatalf("request %d changed in round trip: %+v != %+v", i, parsed[i], want)
		}
	}

	// Replay the CSV stream through a device.
	dev, err := sprinkler.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dev.Run(context.Background(), sprinkler.NewCSVSource(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if res.IOsCompleted != int64(len(reqs)) {
		t.Fatalf("replayed %d/%d I/Os", res.IOsCompleted, len(reqs))
	}
}

// TestCSVSourceError surfaces a malformed line as a run error.
func TestCSVSourceError(t *testing.T) {
	dev, err := sprinkler.New(smallConfig(sprinkler.SPK3))
	if err != nil {
		t.Fatal(err)
	}
	csv := "0,R,0,4\n100,X,8,4\n"
	_, err = dev.Run(context.Background(), sprinkler.NewCSVSource(strings.NewReader(csv)))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-2 parse error, got %v", err)
	}
}

// TestWorkloadSourceMatchesGenerate checks the incremental generator and
// the materializing wrapper emit the identical sequence.
func TestWorkloadSourceMatchesGenerate(t *testing.T) {
	cfg := smallConfig(sprinkler.SPK3)
	reqs, err := cfg.GenerateWorkload("msnfs1", 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	src, err := cfg.NewWorkloadSource(sprinkler.WorkloadSpec{Name: "msnfs1", Requests: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		r, ok := src.Next()
		if !ok {
			if i != len(reqs) {
				t.Fatalf("stream ended at %d, slice has %d", i, len(reqs))
			}
			return
		}
		if i >= len(reqs) {
			t.Fatalf("stream longer than slice (%d)", len(reqs))
		}
		if r != reqs[i] {
			t.Fatalf("request %d differs: %+v != %+v", i, r, reqs[i])
		}
	}
}

// TestInfiniteWorkloadSourceWithLimit bounds an unbounded generator.
func TestInfiniteWorkloadSourceWithLimit(t *testing.T) {
	cfg := smallConfig(sprinkler.VAS)
	gen, err := cfg.NewWorkloadSource(sprinkler.WorkloadSpec{Name: "hm0", Requests: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	src := sprinkler.Limit(gen, 75)
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if n != 75 {
		t.Fatalf("Limit(75) emitted %d", n)
	}
	// The underlying generator keeps going: it was infinite.
	if _, ok := gen.Next(); !ok {
		t.Fatal("unbounded generator ran dry")
	}
}

// TestPoissonArrivals rewrites arrivals as a strictly monotone open-loop
// process at roughly the requested rate.
func TestPoissonArrivals(t *testing.T) {
	cfg := smallConfig(sprinkler.VAS)
	gen, err := cfg.NewWorkloadSource(sprinkler.WorkloadSpec{Name: "cfs0", Requests: 1000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	const rate = 50_000.0
	src := sprinkler.Poisson(gen, rate, 42)
	var last int64 = -1
	n := 0
	for {
		r, ok := src.Next()
		if !ok {
			break
		}
		if r.ArrivalNS < last {
			t.Fatalf("arrivals went backwards: %d after %d", r.ArrivalNS, last)
		}
		last = r.ArrivalNS
		n++
	}
	if n != 1000 {
		t.Fatalf("Poisson dropped requests: %d", n)
	}
	gotRate := float64(n-1) / (float64(last) / 1e9)
	if gotRate < rate/2 || gotRate > rate*2 {
		t.Fatalf("mean rate %.0f req/s, want ~%.0f", gotRate, rate)
	}
}

// TestConfigValidate checks descriptive errors for degenerate configs.
func TestConfigValidate(t *testing.T) {
	cases := []struct {
		mutate func(*sprinkler.Config)
		want   string
	}{
		{func(c *sprinkler.Config) { c.Channels = 0 }, "Channels"},
		{func(c *sprinkler.Config) { c.ChipsPerChan = -1 }, "ChipsPerChan"},
		{func(c *sprinkler.Config) { c.DiesPerChip = 0 }, "DiesPerChip"},
		{func(c *sprinkler.Config) { c.PlanesPerDie = 0 }, "PlanesPerDie"},
		{func(c *sprinkler.Config) { c.BlocksPerPlane = 0 }, "BlocksPerPlane"},
		{func(c *sprinkler.Config) { c.PagesPerBlock = 0 }, "PagesPerBlock"},
		{func(c *sprinkler.Config) { c.PageSize = 0 }, "PageSize"},
		{func(c *sprinkler.Config) { c.QueueDepth = 0 }, "QueueDepth"},
		{func(c *sprinkler.Config) { c.QueueDepth = -3 }, "QueueDepth"},
		{func(c *sprinkler.Config) { c.MaxBacklog = -1 }, "MaxBacklog"},
		{func(c *sprinkler.Config) { c.LogicalPages = -1 }, "LogicalPages"},
		{func(c *sprinkler.Config) { c.LogicalPages = 1 << 60 }, "physical"},
		{func(c *sprinkler.Config) { c.Scheduler = "nope" }, "scheduler"},
		{func(c *sprinkler.Config) { c.Allocation = "nope" }, "allocation"},
	}
	for _, tc := range cases {
		cfg := sprinkler.DefaultConfig()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("Validate() = %v, want mention of %q", err, tc.want)
		}
		// New and Open must reject the same configs.
		if _, err := sprinkler.New(cfg); err == nil {
			t.Fatalf("New accepted config invalid for %q", tc.want)
		}
		if _, err := sprinkler.Open(cfg); err == nil {
			t.Fatalf("Open accepted config invalid for %q", tc.want)
		}
	}
	if err := sprinkler.DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
}

// TestRunContextCancellation cancels a run mid-stream and checks the
// partial measurements come back with the context error.
func TestRunContextCancellation(t *testing.T) {
	cfg := smallConfig(sprinkler.SPK3)
	dev, err := sprinkler.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	gen, err := cfg.NewWorkloadSource(sprinkler.WorkloadSpec{Name: "msnfs1", Requests: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The source cancels the context itself after 500 requests — a
	// deterministic mid-run cancellation.
	src := &cancellingSource{Source: gen, after: 500, cancel: cancel}
	res, err := dev.Run(ctx, src)
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	if res.IOsCompleted == 0 {
		t.Fatal("cancelled run completed no I/Os before stopping")
	}
	if src.emitted < 500 {
		t.Fatalf("source stopped early: %d", src.emitted)
	}
}

type cancellingSource struct {
	sprinkler.Source
	after   int
	emitted int
	cancel  context.CancelFunc
}

func (s *cancellingSource) Next() (sprinkler.Request, bool) {
	if s.emitted == s.after {
		s.cancel()
	}
	s.emitted++
	return s.Source.Next()
}

// TestMaxBacklogBoundsMemory runs an overloaded open-loop workload and
// checks completion (the bound pauses the source pull without losing or
// reordering requests).
func TestMaxBacklogBoundsMemory(t *testing.T) {
	cfg := smallConfig(sprinkler.SPK3)
	run := func(maxBacklog int) *sprinkler.Result {
		c := cfg
		c.MaxBacklog = maxBacklog
		dev, err := sprinkler.New(c)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := c.NewWorkloadSource(sprinkler.WorkloadSpec{Name: "cfs0", Requests: 2000, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		// An arrival rate far above an 8-chip device's service rate.
		res, err := dev.Run(context.Background(), sprinkler.Poisson(gen, 1e6, 5))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bounded := run(64)
	unbounded := run(0)
	if bounded.IOsCompleted != 2000 || unbounded.IOsCompleted != 2000 {
		t.Fatalf("lost requests: bounded=%d unbounded=%d", bounded.IOsCompleted, unbounded.IOsCompleted)
	}
	// Pausing the pull must not change the simulated outcome: admission
	// order and arrival timestamps are identical either way.
	if bounded.DurationNS != unbounded.DurationNS || bounded.AvgLatencyNS != unbounded.AvgLatencyNS {
		t.Fatalf("backlog bound changed the timeline: %d/%d vs %d/%d",
			bounded.DurationNS, bounded.AvgLatencyNS, unbounded.DurationNS, unbounded.AvgLatencyNS)
	}
}
