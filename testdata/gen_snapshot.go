//go:build ignore

// gen_snapshot writes testdata/warm_v1.snap, the golden warm-state
// fixture TestSnapshotGoldenFixture decodes. Regenerate only on a
// deliberate format-version bump (and then add a new fixture rather than
// replacing this one, so older versions stay covered):
//
//	go run testdata/gen_snapshot.go testdata/warm_v1.snap
package main

import (
	"fmt"
	"os"

	"sprinkler"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: gen_snapshot <out.snap>")
		os.Exit(2)
	}
	cfg := sprinkler.Platform(8) // 2 channels x 4 chips
	cfg.Scheduler = sprinkler.SPK3
	cfg.BlocksPerPlane = 24
	cfg.PagesPerBlock = 32
	cfg.LogicalPages = cfg.TotalPages() * 85 / 100
	dev, err := sprinkler.New(cfg)
	if err != nil {
		panic(err)
	}
	dev.Precondition(0.9, 0.4, 1234)
	f, err := os.Create(os.Args[1])
	if err != nil {
		panic(err)
	}
	if err := dev.Checkpoint(f); err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
	fi, _ := os.Stat(os.Args[1])
	fmt.Printf("wrote %s (%d bytes)\n", os.Args[1], fi.Size())
}
