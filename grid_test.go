package sprinkler_test

import (
	"context"
	"strings"
	"testing"

	"sprinkler"
)

// TestGridCrossProduct checks expansion order, naming, labels and seed
// sharing of the declarative grid.
func TestGridCrossProduct(t *testing.T) {
	g := sprinkler.Grid{
		Name:        "t",
		Base:        smallConfig(sprinkler.SPK3),
		Schedulers:  []sprinkler.SchedulerKind{sprinkler.VAS, sprinkler.SPK3},
		Workloads:   []string{"cfs0", "msnfs1"},
		Requests:    50,
		QueueDepths: []int{16, 64},
	}
	cells := g.Cells()
	if len(cells) != 2*2*2 {
		t.Fatalf("expanded %d cells, want 8", len(cells))
	}
	if cells[0].Name != "t/VAS/qd=16/cfs0" {
		t.Fatalf("first cell named %q", cells[0].Name)
	}
	seeds := map[string]map[string]uint64{} // point -> scheduler -> seed
	for _, c := range cells {
		if c.Seed == 0 {
			t.Fatalf("cell %q has no explicit seed", c.Name)
		}
		if c.Labels["scheduler"] == "" || c.Labels["workload"] == "" || c.Labels["queue_depth"] == "" {
			t.Fatalf("cell %q labels incomplete: %v", c.Name, c.Labels)
		}
		point := c.Labels["workload"] + "/" + c.Labels["queue_depth"]
		if seeds[point] == nil {
			seeds[point] = map[string]uint64{}
		}
		seeds[point][c.Labels["scheduler"]] = c.Seed
		// The axis must actually have applied to the config.
		want := 16
		if c.Labels["queue_depth"] == "qd=64" {
			want = 64
		}
		if c.Config.QueueDepth != want {
			t.Fatalf("cell %q queue depth %d, label %s", c.Name, c.Config.QueueDepth, c.Labels["queue_depth"])
		}
	}
	if len(seeds) != 4 {
		t.Fatalf("expected 4 grid points, got %d", len(seeds))
	}
	var distinct = map[uint64]bool{}
	for point, bySched := range seeds {
		if len(bySched) != 2 {
			t.Fatalf("point %s missing schedulers: %v", point, bySched)
		}
		if bySched["VAS"] != bySched["SPK3"] {
			t.Fatalf("point %s: schedulers see different seeds %d vs %d", point, bySched["VAS"], bySched["SPK3"])
		}
		distinct[bySched["VAS"]] = true
	}
	if len(distinct) != 4 {
		t.Fatalf("grid points share seeds: %v", distinct)
	}
	// Seed mixing re-rolls every trace without renaming cells.
	g2 := g
	g2.Seed = 99
	cells2 := g2.Cells()
	for i := range cells2 {
		if cells2[i].Name != cells[i].Name {
			t.Fatalf("Seed changed cell names: %q vs %q", cells2[i].Name, cells[i].Name)
		}
		if cells2[i].Seed == cells[i].Seed {
			t.Fatalf("cell %q seed did not re-roll", cells[i].Name)
		}
	}
}

// TestGridCustomAxesAndSources drives Vary axes (with a per-value
// precondition) and SourceSpec points end to end through the Runner.
func TestGridCustomAxesAndSources(t *testing.T) {
	base := smallConfig(sprinkler.SPK3)
	pre := &sprinkler.Precondition{FillFrac: 0.5, ChurnFrac: 0.2, Seed: 3}
	g := sprinkler.Grid{
		Name: "ax",
		Base: base,
		Vary: []sprinkler.Axis{{
			Name: "gc",
			Values: []sprinkler.AxisValue{
				{Label: "pristine", Apply: func(c *sprinkler.Config) { c.DisableGC = true }},
				{Label: "fragmented", Precondition: pre},
			},
		}},
		Sources: []sprinkler.SourceSpec{{
			Label: "seqw",
			New: func(cfg sprinkler.Config, seed uint64) (sprinkler.Source, error) {
				return sprinkler.SliceSource(sprinkler.SequentialWrites(60, 4)), nil
			},
		}},
	}
	cells := g.Cells()
	if len(cells) != 2 {
		t.Fatalf("expanded %d cells, want 2", len(cells))
	}
	if cells[0].Precondition != nil {
		t.Fatal("pristine cell inherited a precondition")
	}
	if cells[1].Precondition != pre {
		t.Fatal("fragmented cell lost its axis precondition")
	}
	results := sprinkler.Runner{Workers: 2}.Run(context.Background(), cells)
	for _, cr := range results {
		if cr.Err != nil {
			t.Fatalf("cell %q: %v", cr.Name, cr.Err)
		}
		if cr.Result.IOsCompleted != 60 {
			t.Fatalf("cell %q completed %d/60", cr.Name, cr.Result.IOsCompleted)
		}
		if cr.Labels["gc"] == "" || cr.Labels["workload"] != "seqw" {
			t.Fatalf("cell %q labels wrong: %v", cr.Name, cr.Labels)
		}
	}
	if !strings.HasPrefix(results[0].Name, "ax/SPK3/pristine") {
		t.Fatalf("unexpected first name %q", results[0].Name)
	}
}

// TestGridWorkloadStructureAxis declares workload *structure* — burst duty
// cycle over one base workload — as a grid axis built entirely from
// SourceSpec combinators, and checks the swept structure actually shows in
// the simulated timelines.
func TestGridWorkloadStructureAxis(t *testing.T) {
	// Light arrival-bound load (small reads, 20k req/s -> a 4 ms arrival
	// span) so the burst envelope's 4x time dilation dominates the
	// simulated duration.
	base := sprinkler.WorkloadSpec{Name: "cfs0", Requests: 80, MaxPages: 4}.Spec().
		WithReadRatio(1).
		WithPoisson(20_000)
	g := sprinkler.Grid{
		Name:       "structure",
		Base:       smallConfig(sprinkler.SPK3),
		Schedulers: []sprinkler.SchedulerKind{sprinkler.VAS, sprinkler.SPK3},
		Sources: []sprinkler.SourceSpec{
			base.Relabel("duty=100"),
			base.WithBurst(200_000, 600_000).Relabel("duty=25"),
		},
	}
	cells := g.Cells()
	if len(cells) != 2*2 {
		t.Fatalf("expanded %d cells, want 4", len(cells))
	}
	for _, c := range cells {
		if c.SourceKey == "" {
			t.Fatalf("cell %q has no source-pool key", c.Name)
		}
	}
	duration := map[string]map[string]int64{} // workload -> scheduler -> duration
	for _, cr := range (sprinkler.Runner{Workers: 2}).Run(context.Background(), cells) {
		if cr.Err != nil {
			t.Fatalf("cell %q: %v", cr.Name, cr.Err)
		}
		if cr.Result.IOsCompleted != 80 {
			t.Fatalf("cell %q completed %d/80", cr.Name, cr.Result.IOsCompleted)
		}
		if duration[cr.Labels["workload"]] == nil {
			duration[cr.Labels["workload"]] = map[string]int64{}
		}
		duration[cr.Labels["workload"]][cr.Labels["scheduler"]] = cr.Result.DurationNS
	}
	if len(duration) != 2 {
		t.Fatalf("workload axis collapsed: %v", duration)
	}
	// The 25%-duty envelope dilates the same arrival stream 4x: its
	// simulated runs must take longer than the smooth ones.
	for _, s := range []string{"VAS", "SPK3"} {
		if duration["duty=25"][s] <= duration["duty=100"][s] {
			t.Fatalf("%s: bursty run (%d ns) not longer than smooth (%d ns)",
				s, duration["duty=25"][s], duration["duty=100"][s])
		}
	}
}

// TestGridDefaultSchedulerAndEmptyAxis: an unset Base.Scheduler resolves
// to SPK3 in both the cell name and the label, and an empty custom axis
// means "keep the base" (like the built-in knobs), not a zero-way cross
// product.
func TestGridDefaultSchedulerAndEmptyAxis(t *testing.T) {
	base := smallConfig("")
	cells := sprinkler.Grid{
		Base: base,
		Vary: []sprinkler.Axis{{Name: "empty"}},
		Sources: []sprinkler.SourceSpec{{
			Label: "s",
			New: func(cfg sprinkler.Config, seed uint64) (sprinkler.Source, error) {
				return sprinkler.SliceSource(sprinkler.SequentialReads(5, 2)), nil
			},
		}},
	}.Cells()
	if len(cells) != 1 {
		t.Fatalf("expanded %d cells, want 1", len(cells))
	}
	if cells[0].Name != "SPK3/s" {
		t.Fatalf("cell named %q, want SPK3/s", cells[0].Name)
	}
	if cells[0].Labels["scheduler"] != "SPK3" {
		t.Fatalf("scheduler label %q, want resolved SPK3", cells[0].Labels["scheduler"])
	}
}

// TestGridEmptySourcesSurfacesError: a grid with no workload axis must
// fail loudly, not expand to zero cells.
func TestGridEmptySourcesSurfacesError(t *testing.T) {
	cells := sprinkler.Grid{Base: smallConfig(sprinkler.SPK3)}.Cells()
	if len(cells) != 1 {
		t.Fatalf("expanded %d cells, want 1 error cell", len(cells))
	}
	results := sprinkler.Runner{}.Run(context.Background(), cells)
	if results[0].Err == nil {
		t.Fatal("empty grid ran without error")
	}
}

// TestGridWindowedSeries: the windowed series mode keeps only the last N
// points while exact mode keeps all — the long-run-safe Figure 12 path.
func TestGridWindowedSeries(t *testing.T) {
	cfg := smallConfig(sprinkler.PAS)
	cfg.CollectSeries = true
	cfg.SeriesWindow = 8
	dev, err := sprinkler.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dev.RunRequests(sprinkler.SequentialReads(30, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 8 {
		t.Fatalf("windowed series kept %d points, want 8", len(res.Series))
	}
	for i, p := range res.Series {
		if want := int64(30 - 8 + 1 + i); p.Index != want {
			t.Fatalf("series[%d].Index = %d, want %d (most recent window, in order)", i, p.Index, want)
		}
	}
}
