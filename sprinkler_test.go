package sprinkler

import "testing"

// testConfig shrinks the platform for fast tests.
func testConfig(kind SchedulerKind) Config {
	cfg := DefaultConfig()
	cfg.Channels = 2
	cfg.ChipsPerChan = 4
	cfg.BlocksPerPlane = 64
	cfg.PagesPerBlock = 32
	cfg.Scheduler = kind
	return cfg
}

func TestPublicAPISequentialReads(t *testing.T) {
	for _, kind := range Schedulers() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			dev, err := New(testConfig(kind))
			if err != nil {
				t.Fatal(err)
			}
			res, err := dev.RunRequests(SequentialReads(25, 8))
			if err != nil {
				t.Fatal(err)
			}
			if res.IOsCompleted != 25 {
				t.Fatalf("completed %d/25", res.IOsCompleted)
			}
			if res.BytesRead != 25*8*2048 {
				t.Fatalf("bytes read %d", res.BytesRead)
			}
			if res.BandwidthKBps <= 0 || res.IOPS <= 0 || res.AvgLatencyNS <= 0 {
				t.Fatalf("degenerate result: %+v", res)
			}
			if res.Scheduler != string(kind) {
				t.Fatalf("result labelled %q, want %q", res.Scheduler, kind)
			}
		})
	}
}

func TestPublicAPISequentialWrites(t *testing.T) {
	dev, err := New(testConfig(SPK3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dev.RunRequests(SequentialWrites(20, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesWritten != 20*4*2048 {
		t.Fatalf("bytes written %d", res.BytesWritten)
	}
	if res.WriteAmplification < 1 {
		t.Fatalf("write amplification %v < 1", res.WriteAmplification)
	}
}

func TestPublicAPIRejectsBadRequests(t *testing.T) {
	dev, err := New(testConfig(SPK3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.RunRequests([]Request{{Pages: 0}}); err == nil {
		t.Fatal("accepted zero-page request")
	}
}

func TestPublicAPIRejectsBadScheduler(t *testing.T) {
	cfg := testConfig("nope")
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted unknown scheduler")
	}
}

func TestPublicAPIWorkloadCatalogue(t *testing.T) {
	names := Workloads()
	if len(names) != 16 {
		t.Fatalf("catalogue size %d, want 16", len(names))
	}
	cfg := testConfig(SPK3)
	reqs, err := cfg.GenerateWorkload("cfs0", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 100 {
		t.Fatalf("generated %d requests, want 100", len(reqs))
	}
	dev, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dev.RunRequests(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.IOsCompleted != 100 {
		t.Fatalf("completed %d/100", res.IOsCompleted)
	}
	if _, err := cfg.GenerateWorkload("bogus", 10, 1); err == nil {
		t.Fatal("accepted unknown workload name")
	}
}

func TestPublicAPISeriesCollection(t *testing.T) {
	cfg := testConfig(PAS)
	cfg.CollectSeries = true
	dev, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dev.RunRequests(SequentialReads(12, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 12 {
		t.Fatalf("series %d points, want 12", len(res.Series))
	}
}

func TestPublicAPIGCPrecondition(t *testing.T) {
	cfg := testConfig(SPK3)
	cfg.BlocksPerPlane = 12
	cfg.PagesPerBlock = 16
	dev, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev.Precondition(0.95, 0.5, 1)
	var reqs []Request
	for i := 0; i < 200; i++ {
		reqs = append(reqs, Request{Write: true, LPN: int64((i * 37) % 2000), Pages: 4})
	}
	res, err := dev.RunRequests(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if res.IOsCompleted != 200 {
		t.Fatalf("completed %d/200", res.IOsCompleted)
	}
	if res.GCRuns == 0 {
		t.Fatal("preconditioned device never ran GC under write pressure")
	}
}

func TestPublicAPILatencyPercentilesOrdered(t *testing.T) {
	dev, err := New(testConfig(SPK2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dev.RunRequests(SequentialReads(40, 6))
	if err != nil {
		t.Fatal(err)
	}
	if !(res.P50LatencyNS <= res.P99LatencyNS && res.P99LatencyNS <= res.MaxLatencyNS) {
		t.Fatalf("percentiles unordered: p50=%d p99=%d max=%d",
			res.P50LatencyNS, res.P99LatencyNS, res.MaxLatencyNS)
	}
}

func TestPublicAPIFUAOrdering(t *testing.T) {
	dev, err := New(testConfig(SPK3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := dev.RunRequests([]Request{
		{Write: true, LPN: 0, Pages: 4},
		{Write: true, LPN: 100, Pages: 2, FUA: true},
		{Write: true, LPN: 200, Pages: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.IOsCompleted != 3 {
		t.Fatalf("completed %d/3", res.IOsCompleted)
	}
}

func TestNumChips(t *testing.T) {
	dev, err := New(testConfig(VAS))
	if err != nil {
		t.Fatal(err)
	}
	if dev.NumChips() != 8 {
		t.Fatalf("NumChips = %d, want 8", dev.NumChips())
	}
}
