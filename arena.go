package sprinkler

import "sync"

// DeviceArena is a pool of reusable Devices keyed by platform topology.
// Building a device is the dominant per-cell cost of a mass sweep —
// controller, chip, FTL and kernel state all scale with the geometry — so
// the arena hands a drained device back out for the next cell on the same
// topology, Reset in place, instead of constructing a fresh one. Per-run
// knobs (scheduler, queue depth, GC policy, metrics options) may differ
// freely between the checkout's config and the device's previous run;
// only the seven geometry fields key the pool.
//
// Reuse is behaviour-preserving: a recycled device produces byte-identical
// Results to a fresh one (the reuse-parity tests pin this across every
// scheduler), so callers can treat Get/Put purely as an allocation
// optimization. The zero value is ready to use; a nil *DeviceArena is
// also valid and degrades to fresh construction, which is how Runner
// implements its NoReuse mode.
//
// A DeviceArena is safe for concurrent use. The devices themselves are
// not: a checked-out device belongs to one goroutine until Put.
type DeviceArena struct {
	mu   sync.Mutex
	free map[topology][]*Device
}

// topology is the arena key: the geometry fields a Device cannot change
// after construction.
type topology struct {
	channels, chipsPerChan, diesPerChip, planesPerDie int
	blocksPerPlane, pagesPerBlock, pageSize           int
}

func topologyOf(cfg Config) topology {
	return topology{
		channels:       cfg.Channels,
		chipsPerChan:   cfg.ChipsPerChan,
		diesPerChip:    cfg.DiesPerChip,
		planesPerDie:   cfg.PlanesPerDie,
		blocksPerPlane: cfg.BlocksPerPlane,
		pagesPerBlock:  cfg.PagesPerBlock,
		pageSize:       cfg.PageSize,
	}
}

// NewDeviceArena returns an empty arena.
func NewDeviceArena() *DeviceArena { return &DeviceArena{} }

// Get checks a device out of the arena for cfg: a pooled device on the
// same topology is Reset to cfg and returned; otherwise a fresh one is
// built. On a nil arena Get always builds fresh.
func (a *DeviceArena) Get(cfg Config) (*Device, error) {
	if a == nil {
		return New(cfg)
	}
	key := topologyOf(cfg)
	a.mu.Lock()
	var d *Device
	if l := a.free[key]; len(l) > 0 {
		d = l[len(l)-1]
		l[len(l)-1] = nil
		a.free[key] = l[:len(l)-1]
	}
	a.mu.Unlock()
	if d != nil {
		if err := d.Reset(cfg); err != nil {
			// An invalid config fails identically through New below; a
			// pooled device is never lost to a config it could serve.
			return nil, err
		}
		return d, nil
	}
	return New(cfg)
}

// Put returns a device to the arena for reuse. Only hand back devices
// whose run completed (drained) — a device abandoned mid-run holds live
// simulation state and must simply be dropped instead. Put on a nil
// arena discards the device.
func (a *DeviceArena) Put(d *Device) {
	if a == nil || d == nil {
		return
	}
	key := topologyOf(d.cfg)
	a.mu.Lock()
	if a.free == nil {
		a.free = make(map[topology][]*Device)
	}
	a.free[key] = append(a.free[key], d)
	a.mu.Unlock()
}

// Size reports how many devices are pooled (checked in) across all
// topologies.
func (a *DeviceArena) Size() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, l := range a.free {
		n += len(l)
	}
	return n
}
