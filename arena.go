package sprinkler

import (
	"fmt"
	"sync"

	"sprinkler/internal/ftl"
)

// DeviceArena is a pool of reusable Devices keyed by platform topology,
// plus a pool of reusable workload Sources keyed by spec identity.
// Building a device is the dominant per-cell cost of a mass sweep —
// controller, chip, FTL and kernel state all scale with the geometry — so
// the arena hands a drained device back out for the next cell on the same
// topology, Reset in place, instead of constructing a fresh one. Per-run
// knobs (scheduler, queue depth, GC policy, metrics options) may differ
// freely between the checkout's config and the device's previous run;
// only the seven geometry fields key the pool. Sources pool the same way
// through GetSource/PutSource: a Resettable source built for one cell is
// rewound with the next cell's seed instead of being rebuilt, and the
// retired-I/O free lists ride along inside the pooled devices, so a sweep
// cell warms from hot pools rather than empty ones.
//
// Reuse is behaviour-preserving: a recycled device produces byte-identical
// Results to a fresh one, and a Reset source replays the byte-identical
// stream a fresh build would (the reuse-parity tests pin both across every
// scheduler), so callers can treat the arena purely as an allocation
// optimization. The zero value is ready to use; a nil *DeviceArena is
// also valid and degrades to fresh construction, which is how Runner
// implements its NoReuse mode.
//
// MaxDevices, when positive, bounds how many devices stay pooled: a Put
// that would exceed it evicts the least-recently-used pooled device, so a
// cross-topology sweep cannot accumulate one large retained device per
// topology it ever visited. MaxSources bounds the source pool the same
// way. Set both before the arena is shared. Zero means unbounded.
//
// A DeviceArena is safe for concurrent use. The devices and sources
// themselves are not: a checked-out object belongs to one goroutine until
// Put.
type DeviceArena struct {
	// MaxDevices caps pooled (checked-in) devices across all topologies;
	// 0 means unbounded.
	MaxDevices int

	// MaxSources caps pooled sources across all keys the same way (a
	// pooled CSV source pins a megabyte scan buffer; a combinator tree
	// pins its whole graph). 0 means unbounded.
	MaxSources int

	mu       sync.Mutex
	free     map[topology][]pooledDevice
	devices  int    // pooled device count across topologies
	seq      uint64 // LRU stamp source
	sources  map[string][]pooledSource
	nsources int // pooled source count across keys

	// meta retains the FTL block-metadata arena of the most recently
	// evicted device per topology (at most MaxDevices topologies, LRU),
	// so re-admitting an evicted topology rebuilds its device on the
	// retained arena instead of re-allocating block metadata. The mapping
	// tables — the bulk of a device's memory — are not retained, so the
	// eviction bound still bounds memory.
	meta map[topology]retainedMeta

	// snaps holds registered warm-state snapshots by name. Snapshots are
	// decoded once and shared read-only by every hydration, so a sweep
	// with a thousand aged-drive cells holds one decoded state, not a
	// thousand.
	snaps map[string]*DeviceSnapshot

	stats ArenaStats
}

// retainedMeta stamps a retained eviction arena for LRU bounding.
type retainedMeta struct {
	m     *ftl.BlockMeta
	stamp uint64
}

// ArenaStats counts arena traffic since construction. Hits are checkouts
// served by a pooled object, misses fell through to a fresh build (of
// which MetaReuses rebuilt on a retained eviction arena), and evictions
// count pooled objects dropped at the MaxDevices/MaxSources bounds.
type ArenaStats struct {
	DeviceHits      uint64
	DeviceMisses    uint64
	DeviceEvictions uint64
	MetaReuses      uint64
	SourceHits      uint64
	SourceMisses    uint64
	SourceEvictions uint64
}

// Stats snapshots the arena's traffic counters. Nil-safe (zero stats).
func (a *DeviceArena) Stats() ArenaStats {
	if a == nil {
		return ArenaStats{}
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// pooledSource stamps a checked-in source for LRU eviction, like
// pooledDevice.
type pooledSource struct {
	src   Source
	stamp uint64
}

// pooledDevice stamps a checked-in device for LRU eviction. Put appends
// with an increasing stamp and Get pops from the end, so each topology's
// list stays stamp-sorted: index 0 is that topology's least recently used.
type pooledDevice struct {
	d     *Device
	stamp uint64
}

// topology is the arena key: the geometry fields a Device cannot change
// after construction.
type topology struct {
	channels, chipsPerChan, diesPerChip, planesPerDie int
	blocksPerPlane, pagesPerBlock, pageSize           int
}

func topologyOf(cfg Config) topology {
	return topology{
		channels:       cfg.Channels,
		chipsPerChan:   cfg.ChipsPerChan,
		diesPerChip:    cfg.DiesPerChip,
		planesPerDie:   cfg.PlanesPerDie,
		blocksPerPlane: cfg.BlocksPerPlane,
		pagesPerBlock:  cfg.PagesPerBlock,
		pageSize:       cfg.PageSize,
	}
}

// NewDeviceArena returns an empty unbounded arena.
func NewDeviceArena() *DeviceArena { return &DeviceArena{} }

// Get checks a device out of the arena for cfg: a pooled device on the
// same topology is Reset to cfg and returned; otherwise a fresh one is
// built. On a nil arena Get always builds fresh.
func (a *DeviceArena) Get(cfg Config) (*Device, error) {
	if a == nil {
		return New(cfg)
	}
	key := topologyOf(cfg)
	a.mu.Lock()
	var d *Device
	var meta *ftl.BlockMeta
	if l := a.free[key]; len(l) > 0 {
		d = l[len(l)-1].d
		l[len(l)-1] = pooledDevice{}
		a.free[key] = l[:len(l)-1]
		a.devices--
		a.stats.DeviceHits++
	} else {
		a.stats.DeviceMisses++
		// A fresh build for a topology we evicted earlier rebuilds on the
		// retained block-metadata arena. The entry is consumed: the arena
		// is aliased by the new device from here on.
		if r, ok := a.meta[key]; ok {
			meta = r.m
			delete(a.meta, key)
			a.stats.MetaReuses++
		}
	}
	a.mu.Unlock()
	if d != nil {
		if err := d.Reset(cfg); err != nil {
			// An invalid config fails identically through New below; a
			// pooled device is never lost to a config it could serve.
			return nil, err
		}
		return d, nil
	}
	return newWithMeta(cfg, meta)
}

// RegisterSnapshot registers a decoded warm-state snapshot under a name
// for GetFromSnapshot checkouts. Re-registering a name replaces the
// earlier snapshot. The snapshot is shared read-only across hydrations;
// registering on a nil arena is a no-op (nothing could ever look it up).
func (a *DeviceArena) RegisterSnapshot(name string, snap *DeviceSnapshot) {
	if a == nil || snap == nil {
		return
	}
	a.mu.Lock()
	if a.snaps == nil {
		a.snaps = make(map[string]*DeviceSnapshot)
	}
	a.snaps[name] = snap
	a.mu.Unlock()
}

// Snapshot returns the snapshot registered under name, if any. Nil-safe.
func (a *DeviceArena) Snapshot(name string) (*DeviceSnapshot, bool) {
	if a == nil {
		return nil, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	s, ok := a.snaps[name]
	return s, ok
}

// GetFromSnapshot checks a device out of the arena hydrated from the
// named registered snapshot: the checkout goes through the ordinary Get
// path (a pooled device on the snapshot's topology is Reset in place,
// interacting with LRU eviction and the retained block-metadata arenas
// exactly as any other checkout does), then the warm state is loaded
// onto it. The optional cfg overrides the snapshot's embedded config; it
// must satisfy CompatibleConfig — warm state is scheduler-independent, so
// an aged-drive sweep hydrates one preconditioned state under each
// scheduler at fresh-drive cost, but a knob that shaped the warm-up
// itself is refused rather than silently diverging from a replay.
//
// On a hydration error the device is discarded, never pooled: its state
// may be partially applied.
func (a *DeviceArena) GetFromSnapshot(name string, cfg ...Config) (*Device, error) {
	snap, ok := a.Snapshot(name)
	if !ok {
		return nil, fmt.Errorf("sprinkler: no snapshot registered as %q", name)
	}
	runCfg := snap.cfg
	if len(cfg) > 1 {
		return nil, fmt.Errorf("sprinkler: GetFromSnapshot takes at most one config override")
	}
	if len(cfg) == 1 {
		if !snap.CompatibleConfig(cfg[0]) {
			return nil, fmt.Errorf("sprinkler: config for snapshot %q differs beyond the scheduler and host-side observation knobs", name)
		}
		runCfg = cfg[0]
	}
	d, err := a.Get(runCfg)
	if err != nil {
		return nil, err
	}
	if err := snap.hydrate(d); err != nil {
		return nil, err
	}
	return d, nil
}

// Put returns a device to the arena for reuse, evicting the
// least-recently-used pooled device when MaxDevices would be exceeded.
// Only hand back devices whose run completed (drained) — a device
// abandoned mid-run holds live simulation state and must simply be
// dropped instead. Put on a nil arena discards the device.
func (a *DeviceArena) Put(d *Device) {
	if a == nil || d == nil {
		return
	}
	key := topologyOf(d.cfg)
	a.mu.Lock()
	if a.free == nil {
		a.free = make(map[topology][]pooledDevice)
	}
	a.seq++
	a.free[key] = append(a.free[key], pooledDevice{d: d, stamp: a.seq})
	a.devices++
	for a.MaxDevices > 0 && a.devices > a.MaxDevices {
		a.evictLocked()
	}
	a.mu.Unlock()
}

// evictLocked drops the globally least-recently-used pooled device: the
// minimum stamp over every topology list's head (lists are stamp-sorted).
func (a *DeviceArena) evictLocked() {
	var oldestKey topology
	var oldest uint64
	found := false
	for key, l := range a.free {
		if len(l) == 0 {
			continue
		}
		if !found || l[0].stamp < oldest {
			found = true
			oldest = l[0].stamp
			oldestKey = key
		}
	}
	if !found {
		return
	}
	l := a.free[oldestKey]
	evicted := l[0].d
	copy(l, l[1:])
	l[len(l)-1] = pooledDevice{}
	if len(l) == 1 {
		delete(a.free, oldestKey)
	} else {
		a.free[oldestKey] = l[:len(l)-1]
	}
	a.devices--
	a.stats.DeviceEvictions++
	// Keep the evicted device's FTL block-metadata arena (its mapping
	// tables and kernel state go with the device) so re-admission of this
	// topology after the eviction is cheap. One retained arena per
	// topology, at most MaxDevices topologies, LRU-bounded like the pools.
	if a.meta == nil {
		a.meta = make(map[topology]retainedMeta)
	}
	a.seq++
	a.meta[oldestKey] = retainedMeta{m: evicted.inner.FTL().DetachBlockMeta(), stamp: a.seq}
	max := a.MaxDevices
	if max < 1 {
		max = 1
	}
	for len(a.meta) > max {
		var oldKey topology
		var old uint64
		first := true
		for k, r := range a.meta {
			if first || r.stamp < old {
				first = false
				old = r.stamp
				oldKey = k
			}
		}
		delete(a.meta, oldKey)
	}
}

// Size reports how many devices are pooled (checked in) across all
// topologies.
func (a *DeviceArena) Size() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.devices
}

// GetSource checks a pooled source out for the given spec key, rewound to
// replay under seed, building a fresh one (via build) when nothing
// reusable is pooled. Two callers may share a key only when their build
// functions construct equivalent sources — same workload spec, same
// combinator tree — differing at most by seed; Grid derives its keys from
// the cell's full workload coordinates to guarantee that. A pooled source
// whose Reset fails (e.g. a CSV stream over a non-seekable reader) is
// dropped and replaced by a fresh build. An empty key, or a nil arena,
// always builds fresh.
func (a *DeviceArena) GetSource(key string, seed uint64, build func(seed uint64) (Source, error)) (Source, error) {
	if a == nil || key == "" {
		return build(seed)
	}
	a.mu.Lock()
	var src Source
	if l := a.sources[key]; len(l) > 0 {
		src = l[len(l)-1].src
		l[len(l)-1] = pooledSource{}
		a.sources[key] = l[:len(l)-1]
		a.nsources--
		a.stats.SourceHits++
	} else {
		a.stats.SourceMisses++
	}
	a.mu.Unlock()
	if src != nil {
		if err := ResetSource(src, seed); err == nil {
			return src, nil
		}
	}
	return build(seed)
}

// PutSource returns a source to the pool for its key, evicting the
// least-recently-used pooled source when MaxSources would be exceeded.
// Only Resettable sources are retained — anything else is discarded,
// since it could never be checked out again. Hand back only sources whose
// run completed; a source abandoned mid-pull is safely poolable too
// (Reset rewinds it), but must not still be feeding a device.
func (a *DeviceArena) PutSource(key string, src Source) {
	if a == nil || key == "" || src == nil {
		return
	}
	if _, ok := src.(Resettable); !ok {
		return
	}
	a.mu.Lock()
	if a.sources == nil {
		a.sources = make(map[string][]pooledSource)
	}
	a.seq++
	a.sources[key] = append(a.sources[key], pooledSource{src: src, stamp: a.seq})
	a.nsources++
	for a.MaxSources > 0 && a.nsources > a.MaxSources {
		a.evictSourceLocked()
	}
	a.mu.Unlock()
}

// evictSourceLocked drops the globally least-recently-used pooled source
// (lists are stamp-sorted for the same reason the device lists are).
func (a *DeviceArena) evictSourceLocked() {
	var oldestKey string
	var oldest uint64
	found := false
	for key, l := range a.sources {
		if len(l) == 0 {
			continue
		}
		if !found || l[0].stamp < oldest {
			found = true
			oldest = l[0].stamp
			oldestKey = key
		}
	}
	if !found {
		return
	}
	l := a.sources[oldestKey]
	copy(l, l[1:])
	l[len(l)-1] = pooledSource{}
	if len(l) == 1 {
		delete(a.sources, oldestKey)
	} else {
		a.sources[oldestKey] = l[:len(l)-1]
	}
	a.nsources--
	a.stats.SourceEvictions++
}

// PooledSources reports how many sources are pooled across all keys.
func (a *DeviceArena) PooledSources() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nsources
}
