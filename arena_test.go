package sprinkler_test

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"sprinkler"
)

// runOn drives one workload cell on dev and returns the JSON-rendered
// Result, the byte-exact fingerprint reuse must preserve.
func runOn(t *testing.T, dev *sprinkler.Device, cfg sprinkler.Config, workload string, requests int, seed uint64, pre *sprinkler.Precondition) string {
	t.Helper()
	if pre != nil {
		dev.Precondition(pre.FillFrac, pre.ChurnFrac, pre.Seed)
	}
	src, err := cfg.NewWorkloadSource(sprinkler.WorkloadSpec{Name: workload, Requests: requests, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dev.Run(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestArenaReuseParityRandomized is the reuse-correctness pin: randomized
// cells — every scheduler, varying queue depths, backlog bounds, series
// modes, GC preconditioning and workloads — each run once on a fresh
// device and once on a single arena-recycled device chain. The
// JSON-rendered Results must be byte-identical, proving Reset reproduces
// New exactly across every layer's retained state.
func TestArenaReuseParityRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	workloads := sprinkler.Workloads()
	arena := sprinkler.NewDeviceArena()

	queueDepths := []int{16, 32, 64}
	backlogs := []int{0, 0, 256}
	cells := 0
	for _, kind := range sprinkler.Schedulers() {
		for i := 0; i < 6; i++ {
			cfg := smallConfig(kind)
			cfg.QueueDepth = queueDepths[rng.Intn(len(queueDepths))]
			cfg.MaxBacklog = backlogs[rng.Intn(len(backlogs))]
			cfg.CollectSeries = rng.Intn(2) == 0
			if cfg.CollectSeries && rng.Intn(2) == 0 {
				cfg.SeriesWindow = 16
			}
			var pre *sprinkler.Precondition
			if rng.Intn(3) == 0 {
				pre = &sprinkler.Precondition{FillFrac: 0.9, ChurnFrac: 0.4, Seed: rng.Uint64()}
			}
			// Half the cells run with fault injection armed — including
			// erase faults and a spare pool, so Reset must also restore
			// bad-block maps, spare counters and degraded state exactly.
			if rng.Intn(2) == 0 {
				cfg.Faults = sprinkler.FaultSpec{
					ReadFailProb:    []float64{0.01, 0.1}[rng.Intn(2)],
					ProgramFailProb: []float64{0.01, 0.1}[rng.Intn(2)],
					EraseFailProb:   []float64{0, 0.5}[rng.Intn(2)],
					ReadRetryMax:    1 + rng.Intn(3),
					ReadRetryMult:   2,
					RewriteMax:      2,
					SpareBlockFrac:  0.05,
					Seed:            rng.Uint64(),
				}
				if pre == nil { // erase faults need GC pressure to fire
					pre = &sprinkler.Precondition{FillFrac: 0.9, ChurnFrac: 0.4, Seed: rng.Uint64()}
				}
			}
			workload := workloads[rng.Intn(len(workloads))]
			requests := 60 + rng.Intn(120)
			seed := rng.Uint64()

			fresh, err := sprinkler.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := runOn(t, fresh, cfg, workload, requests, seed, pre)

			reused, err := arena.Get(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := runOn(t, reused, cfg, workload, requests, seed, pre)
			arena.Put(reused)

			if got != want {
				t.Fatalf("%s cell %d (%s qd=%d backlog=%d pre=%v): reused result diverged\nfresh:  %s\nreused: %s",
					kind, i, workload, cfg.QueueDepth, cfg.MaxBacklog, pre != nil, want, got)
			}
			cells++
		}
	}
	if cells < 25 {
		t.Fatalf("parity covered only %d cells", cells)
	}
	// Every reused cell after the first of a topology must actually have
	// recycled: one device per distinct topology remains pooled.
	if n := arena.Size(); n != 1 {
		t.Fatalf("arena pooled %d devices, want 1 (single topology, serial checkouts)", n)
	}
}

// TestRunnerArenaMatchesNoReuse runs one grid through the Runner twice —
// arena-recycled and NoReuse — and requires identical results, the
// Runner-level face of the reuse-parity guarantee.
func TestRunnerArenaMatchesNoReuse(t *testing.T) {
	grid := sprinkler.Grid{
		Base:        smallConfig(sprinkler.SPK3),
		Schedulers:  sprinkler.Schedulers(),
		Workloads:   []string{"cfs0", "msnfs1"},
		Requests:    120,
		QueueDepths: []int{16, 64},
	}
	reused := sprinkler.Runner{Workers: 2}.Run(context.Background(), grid.Cells())
	freshly := sprinkler.Runner{Workers: 2, NoReuse: true}.Run(context.Background(), grid.Cells())
	if len(reused) != len(freshly) {
		t.Fatalf("result counts differ: %d vs %d", len(reused), len(freshly))
	}
	for i := range reused {
		a, b := reused[i], freshly[i]
		if a.Err != nil || b.Err != nil {
			t.Fatalf("cell %q failed: arena=%v fresh=%v", a.Name, a.Err, b.Err)
		}
		aj, _ := json.Marshal(a.Result)
		bj, _ := json.Marshal(b.Result)
		if string(aj) != string(bj) {
			t.Fatalf("cell %q diverged between arena and fresh paths:\narena: %s\nfresh: %s", a.Name, aj, bj)
		}
	}
}

// TestDeviceResetRejectsGeometryChange: the arena key exists because a
// device cannot change shape in place.
func TestDeviceResetRejectsGeometryChange(t *testing.T) {
	cfg := smallConfig(sprinkler.SPK3)
	dev, err := sprinkler.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	bigger := cfg
	bigger.Channels = 4
	if err := dev.Reset(bigger); err == nil {
		t.Fatal("Reset accepted a geometry change")
	}
	// Same geometry, different run knobs: fine.
	again := cfg
	again.Scheduler = sprinkler.VAS
	again.QueueDepth = 16
	if err := dev.Reset(again); err != nil {
		t.Fatalf("Reset rejected a per-run change: %v", err)
	}
	if dev.Config().Scheduler != sprinkler.VAS {
		t.Fatalf("Config not updated after Reset: %+v", dev.Config())
	}
}
