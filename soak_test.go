package sprinkler_test

// Long-run soak: the PR 3 memory-ceiling guarantee. A 5M-request
// open-loop stream must hold metrics memory O(1): the latency histogram
// spills into its fixed bucket array, the request free-list recycles I/O
// objects, and the FTL tables stay bounded by the touched address space.
// The test reads runtime.MemStats at the 1M-request mark (steady state:
// pools warm, histogram spilled) and again at the end; heap growth over
// the last 4M requests must stay under a small fixed bound.

import (
	"context"
	"runtime"
	"testing"

	"sprinkler"
	"sprinkler/internal/sim"
)

// soakSource generates uniform single-page reads incrementally and
// snapshots MemStats when the warmup boundary passes through it. Reads
// of never-written pages resolve through the FTL's virtual preloaded
// image, so the mapping tables stay empty and the probe isolates the
// metrics/request-path memory the tentpole bounds.
type soakSource struct {
	rng     *sim.Rand
	span    int64
	emitted int64
	warmup  int64
	atWarm  runtime.MemStats
	warmed  bool
}

func (s *soakSource) Next() (sprinkler.Request, bool) {
	if s.emitted == s.warmup && !s.warmed {
		s.warmed = true
		runtime.GC()
		runtime.ReadMemStats(&s.atWarm)
	}
	s.emitted++
	return sprinkler.Request{LPN: s.rng.Int63n(s.span), Pages: 1}, true
}

func TestSoakConstantMetricsMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("5M-request soak skipped in -short mode")
	}
	const (
		total  = 5_000_000
		warmup = 1_000_000
	)
	cfg := sprinkler.Platform(16)
	cfg.Scheduler = sprinkler.SPK3
	cfg.MaxBacklog = 2048
	cfg.MetricsSampleCap = 1 << 16 // spill to buckets well before warmup ends
	dev, err := sprinkler.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := &soakSource{
		rng:    sim.NewRand(42),
		span:   cfg.TotalPages() * 9 / 10,
		warmup: warmup,
	}
	open := sprinkler.Limit(sprinkler.Poisson(src, 400_000, 42), total)

	res, err := dev.Run(context.Background(), open)
	if err != nil {
		t.Fatal(err)
	}
	if res.IOsCompleted != total {
		t.Fatalf("completed %d/%d", res.IOsCompleted, total)
	}
	if !res.LatencyEstimated {
		t.Fatal("5M-sample run should have switched to the bucketed estimator")
	}
	if res.P50LatencyNS <= 0 || res.P99LatencyNS < res.P50LatencyNS {
		t.Fatalf("implausible percentiles: p50=%d p99=%d", res.P50LatencyNS, res.P99LatencyNS)
	}

	runtime.GC()
	var end runtime.MemStats
	runtime.ReadMemStats(&end)
	if !src.warmed {
		t.Fatal("warmup probe never fired")
	}

	// Metrics memory ceiling: the last 4M requests must not grow the
	// heap. 8 MB of slack absorbs GC timing and pool-capacity noise —
	// the pre-PR histogram alone would have added ~32 MB (4M float64
	// samples) and failed this by a wide margin.
	const maxGrowth = 8 << 20
	grown := int64(end.HeapAlloc) - int64(src.atWarm.HeapAlloc)
	if grown > maxGrowth {
		t.Fatalf("heap grew %d bytes over the measured window (max %d)", grown, maxGrowth)
	}

	// Steady-state allocation rate: the request path recycles I/Os, so
	// the measured window must average well under one allocation per
	// request (it is ~0 plus periodic structures).
	allocs := end.Mallocs - src.atWarm.Mallocs
	perReq := float64(allocs) / float64(total-warmup)
	if perReq > 1.0 {
		t.Fatalf("steady state allocates %.2f objects/request, want < 1", perReq)
	}
}
