package ssd

import (
	"sprinkler/internal/flash"
	"sprinkler/internal/ftl"
	"sprinkler/internal/req"
	"sprinkler/internal/sim"
)

// Garbage collection orchestration (§4.3, §5.9).
//
// When a write drains a plane's free-block pool to the threshold, the
// device plans a GC job on the FTL (greedy victim) and executes it as
// internal flash traffic on the victim's chip: read every live page,
// program it at its migration destination, erase the victim, then commit
// the mapping changes. The commit fires the FTL's migration observer,
// which the device turns into the readdressing callback for schedulers
// that subscribe to it; other schedulers are left with stale physical
// addresses and pay the re-translation penalty at commit time.

// gcStep is the token attached to internal GC flash requests; advance
// drives the per-job state machine as member requests complete.
type gcStep struct {
	run  *gcRun
	kind flash.Op
}

func (s *gcStep) advance(now sim.Time, failed bool) { s.run.stepDone(now, s.kind, failed) }

// gcRun tracks one in-flight GC job on a chip.
type gcRun struct {
	dev       *Device
	chip      flash.ChipID
	planeIdx  int
	job       *ftl.GCJob
	remaining int
	phase     flash.Op // current phase: read -> program -> erase

	// eraseFailed records a chip-level erase failure on the victim; the
	// commit then retires the block to the spare pool instead of freeing
	// it. Failed GC reads/programs are absorbed (the migration's mapping
	// still commits): the model tracks timing and wear, not payload
	// integrity, and the chip-level counters already record them.
	eraseFailed bool
}

// maybeStartGC launches background collection for the plane containing
// addr when it is under pressure and the chip has no GC in flight.
func (d *Device) maybeStartGC(now sim.Time, addr flash.Addr) {
	if d.gcActive[addr.Chip] {
		return
	}
	if !d.fl.PlaneUnderPressure(addr.Chip, addr.Die, addr.Plane) {
		return
	}
	pi := d.planeIndex(addr)
	job, err := d.fl.PlanGC(pi)
	if err != nil || job == nil {
		return
	}
	d.setGCActive(addr.Chip, true)
	run := &gcRun{dev: d, chip: addr.Chip, planeIdx: pi, job: job}
	run.startReads(now)
}

// setGCActive flips a chip's background-GC flag, keeping the active count
// current (admission stalls consult the count).
func (d *Device) setGCActive(c flash.ChipID, on bool) {
	if d.gcActive[c] == on {
		return
	}
	d.gcActive[c] = on
	if on {
		d.gcActiveCount++
	} else {
		d.gcActiveCount--
	}
}

func (d *Device) planeIndex(a flash.Addr) int {
	return (int(a.Chip)*d.cfg.Geo.DiesPerChip+a.Die)*d.cfg.Geo.PlanesPerDie + a.Plane
}

// planeChip recovers the chip owning a plane index.
func (d *Device) planeChip(planeIdx int) flash.ChipID {
	return flash.ChipID(planeIdx / (d.cfg.Geo.DiesPerChip * d.cfg.Geo.PlanesPerDie))
}

func (r *gcRun) ctl() *controller {
	return r.dev.ctrls[r.dev.cfg.Geo.Channel(r.chip)]
}

// startReads issues the live-page reads. Jobs with no live pages skip
// straight to the erase.
func (r *gcRun) startReads(now sim.Time) {
	if len(r.job.Migrations) == 0 {
		r.startErase(now)
		return
	}
	r.phase = flash.OpRead
	r.remaining = len(r.job.Migrations)
	for _, mg := range r.job.Migrations {
		r.ctl().commit(now, flash.Request{Op: flash.OpRead, Addr: mg.Src, Token: &gcStep{run: r, kind: flash.OpRead}},
			r.dev.chipBusyM[mg.Src.Chip])
	}
}

func (r *gcRun) startPrograms(now sim.Time) {
	r.phase = flash.OpProgram
	r.remaining = len(r.job.Migrations)
	for _, mg := range r.job.Migrations {
		ch := r.dev.cfg.Geo.Channel(mg.Dst.Chip)
		// The parallel kernel's hazard parking relies on GC traffic staying
		// on the victim's channel (ftl.PlanGC allocates destinations on the
		// victim's chip). Fail loudly if the FTL ever breaks that contract
		// rather than silently diverging from the serial timeline.
		if r.dev.par != nil && ch != r.dev.cfg.Geo.Channel(r.chip) {
			panic("ssd: GC migration program left the victim chip's channel")
		}
		r.dev.ctrls[ch].commit(now, flash.Request{Op: flash.OpProgram, Addr: mg.Dst, Token: &gcStep{run: r, kind: flash.OpProgram}},
			r.dev.chipBusyM[mg.Dst.Chip])
	}
}

func (r *gcRun) startErase(now sim.Time) {
	r.phase = flash.OpErase
	r.remaining = 1
	victim := r.job.Victim
	victim.Page = 0
	r.ctl().commit(now, flash.Request{Op: flash.OpErase, Addr: victim, Token: &gcStep{run: r, kind: flash.OpErase}},
		r.dev.chipBusyM[victim.Chip])
}

// stepDone advances the job when a member flash request completes.
func (r *gcRun) stepDone(now sim.Time, kind flash.Op, failed bool) {
	if kind != r.phase {
		panic("ssd: GC completion out of phase")
	}
	if failed && kind == flash.OpErase {
		r.eraseFailed = true
	}
	r.remaining--
	if r.remaining > 0 {
		return
	}
	switch r.phase {
	case flash.OpRead:
		r.startPrograms(now)
	case flash.OpProgram:
		r.startErase(now)
	case flash.OpErase:
		r.finish(now)
	}
}

// finish commits the mapping changes, fires readdressing, and chains the
// next victim if the plane is still under pressure.
func (r *gcRun) finish(now sim.Time) {
	d := r.dev
	applied := d.fl.CommitGCOutcome(r.job, r.eraseFailed)
	d.applyMigrations(applied)
	d.setGCActive(r.chip, false)
	// Chain another pass while the plane stays pressured.
	chip, die, plane := r.planeAddr()
	if d.fl.PlaneUnderPressure(chip, die, plane) {
		if job, err := d.fl.PlanGC(r.planeIdx); err == nil && job != nil {
			d.setGCActive(r.chip, true)
			next := &gcRun{dev: d, chip: r.chip, planeIdx: r.planeIdx, job: job}
			next.startReads(now)
		}
	}
	// Freed space may unblock admission stalled on the allocator.
	d.drainBacklog(now)
	d.pump(now)
}

func (r *gcRun) planeAddr() (flash.ChipID, int, int) {
	g := r.dev.cfg.Geo
	idx := r.planeIdx
	plane := idx % g.PlanesPerDie
	idx /= g.PlanesPerDie
	die := idx % g.DiesPerChip
	return flash.ChipID(idx / g.DiesPerChip), die, plane
}

// applyMigrations is the readdressing callback (§4.3): still-queued reads
// whose physical address just moved are re-pointed at the new location —
// but only for schedulers that subscribe; the rest discover staleness at
// commit time and pay the penalty.
//
// A migration's source chip is known, so the ready index localizes the
// lookup to that chip's queued requests — no standing LPN map needs to be
// maintained on the admission path. Readdress keeps the index consistent
// when a migration crosses chips.
func (d *Device) applyMigrations(applied []ftl.Migration) {
	if !d.sch.NeedsReaddressing() {
		return
	}
	for _, mg := range applied {
		for _, m := range d.ready.List(mg.Src.Chip) {
			if m != nil && m.LPN == mg.LPN && m.Addr == mg.Src &&
				m.IO.Kind == req.Read && m.State == req.StateQueued {
				d.ready.Readdress(m, mg.Dst)
			}
		}
	}
}
