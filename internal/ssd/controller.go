package ssd

import (
	"fmt"

	"sprinkler/internal/bus"
	"sprinkler/internal/flash"
	"sprinkler/internal/sim"
)

// controller is one per-channel flash controller (§2.1): it owns the
// committed per-chip request queues, builds flash transactions, and
// executes them on the chips.
//
// Transaction formation follows §2.2: when a chip becomes ready, the
// controller settles the transaction type within the decision window and
// greedily coalesces every committed request that legally fits (same op,
// distinct die/plane, plane sharing only with matching block/page
// offsets). Requests committed after the decision instant wait for the
// next transaction — the temporal transactional-locality limit. The depth
// of the committed queue is therefore what bounds achievable FLP, which is
// exactly the lever FARO's over-commitment pulls.
//
// All per-chip state is stored in offset-indexed slices, and the build
// timers, chip callbacks, and transaction values are bound once at
// construction, so the commit→build→execute cycle allocates nothing in
// steady state.
type controller struct {
	eng     *sim.Engine
	geo     flash.Geometry
	tim     flash.Timing
	channel int
	bus     *bus.Channel
	chips   []*flash.Chip // by chip offset within the channel

	pending    [][]flash.Request // by chip offset
	buildArmed []bool
	buildT     []*sim.Timer         // fires build after the decision window
	txns       []*flash.Transaction // reused: one in flight per chip
	cbs        []flash.Callbacks
	taken      []int // BuildTransactionInto scratch (build is synchronous)

	// onReqDone routes member-request completions back to the device.
	onReqDone func(now sim.Time, r flash.Request)
	// onTxnStart/onTxnDone keep the device's busy-chip integral current.
	onTxnStart func(now sim.Time, c flash.ChipID)
	onTxnDone  func(now sim.Time, c flash.ChipID)
}

func newController(eng *sim.Engine, geo flash.Geometry, tim flash.Timing, channel int) *controller {
	n := geo.ChipsPerChan
	ctl := &controller{
		eng:        eng,
		geo:        geo,
		tim:        tim,
		channel:    channel,
		bus:        bus.New(eng, channel),
		chips:      make([]*flash.Chip, n),
		pending:    make([][]flash.Request, n),
		buildArmed: make([]bool, n),
		buildT:     make([]*sim.Timer, n),
		txns:       make([]*flash.Transaction, n),
		cbs:        make([]flash.Callbacks, n),
	}
	for off := 0; off < n; off++ {
		off := off
		id := geo.ChipAt(channel, off)
		ctl.chips[off] = flash.NewChip(eng, ctl.bus, id, geo, tim)
		ctl.txns[off] = &flash.Transaction{}
		ctl.buildT[off] = sim.NewTimer(func(now sim.Time) {
			ctl.buildArmed[off] = false
			ctl.build(now, off)
		})
		ctl.cbs[off] = flash.Callbacks{
			RequestDone: func(t sim.Time, r flash.Request) {
				if ctl.onReqDone != nil {
					ctl.onReqDone(t, r)
				}
			},
			TxnDone: func(t sim.Time, _ *flash.Transaction) {
				if ctl.onTxnDone != nil {
					ctl.onTxnDone(t, id)
				}
				ctl.armBuild(id)
			},
		}
	}
	return ctl
}

// reset returns the controller, its bus and its chips to the just-built
// idle state for a new run, retaining every queue's storage. Timing is
// per-run configuration and may change; geometry may not. The engine must
// have been Reset first (no build, bus or chip event may be pending).
func (ctl *controller) reset(tim flash.Timing) {
	ctl.tim = tim
	ctl.bus.Reset()
	for off := range ctl.chips {
		ctl.chips[off].Reset(tim)
		p := ctl.pending[off]
		for i := range p {
			p[i] = flash.Request{}
		}
		ctl.pending[off] = p[:0]
		ctl.buildArmed[off] = false
		ctl.buildT[off].Stop()
		txn := ctl.txns[off]
		for i := range txn.Requests {
			txn.Requests[i] = flash.Request{}
		}
		txn.Reset()
	}
	for i := range ctl.taken {
		ctl.taken[i] = 0
	}
	ctl.taken = ctl.taken[:0]
}

// offset maps a chip ID to its offset on this channel, panicking on
// foreign IDs.
func (ctl *controller) offset(id flash.ChipID) int {
	if ctl.geo.Channel(id) != ctl.channel {
		panic(fmt.Sprintf("ssd: chip %d not on channel %d", id, ctl.channel))
	}
	return ctl.geo.ChipOffset(id)
}

// chip returns the chip object, panicking on foreign IDs.
func (ctl *controller) chip(id flash.ChipID) *flash.Chip {
	return ctl.chips[ctl.offset(id)]
}

// commit appends a memory request to the chip's committed queue and arms
// the transaction builder if the chip is ready.
func (ctl *controller) commit(r flash.Request) {
	id := r.Addr.Chip
	off := ctl.offset(id)
	ctl.pending[off] = append(ctl.pending[off], r)
	ctl.armBuild(id)
}

// pendingLen reports the committed-but-unissued depth for a chip.
func (ctl *controller) pendingLen(id flash.ChipID) int {
	return len(ctl.pending[ctl.offset(id)])
}

// armBuild schedules a transaction build for an idle chip after the
// decision window. Requests committed within the window still make the
// cut; later ones join the next transaction.
func (ctl *controller) armBuild(id flash.ChipID) {
	off := ctl.offset(id)
	if ctl.buildArmed[off] || ctl.chips[off].Busy() || len(ctl.pending[off]) == 0 {
		return
	}
	ctl.buildArmed[off] = true
	ctl.eng.AfterTimer(ctl.tim.DecisionWindow, ctl.buildT[off])
}

// build coalesces the committed queue into one transaction and executes it.
func (ctl *controller) build(now sim.Time, off int) {
	chip := ctl.chips[off]
	if chip.Busy() || len(ctl.pending[off]) == 0 {
		return
	}
	// The previous transaction for this chip has retired (the chip is
	// idle), so its value can be reused.
	txn := ctl.txns[off]
	ctl.taken = flash.BuildTransactionInto(ctl.geo, ctl.pending[off], txn, ctl.taken)
	// Remove the consumed requests, preserving order of the rest.
	rest := ctl.pending[off][:0]
	ti := 0
	for i, r := range ctl.pending[off] {
		if ti < len(ctl.taken) && ctl.taken[ti] == i {
			ti++
			continue
		}
		rest = append(rest, r)
	}
	ctl.pending[off] = rest

	if ctl.onTxnStart != nil {
		ctl.onTxnStart(now, chip.ID)
	}
	chip.Execute(txn, ctl.cbs[off])
}
