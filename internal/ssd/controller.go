package ssd

import (
	"fmt"

	"sprinkler/internal/bus"
	"sprinkler/internal/flash"
	"sprinkler/internal/sim"
)

// controller is one per-channel flash controller (§2.1): it owns the
// committed per-chip request queues, builds flash transactions, and
// executes them on the chips.
//
// Transaction formation follows §2.2: when a chip becomes ready, the
// controller settles the transaction type within the decision window and
// greedily coalesces every committed request that legally fits (same op,
// distinct die/plane, plane sharing only with matching block/page
// offsets). Requests committed after the decision instant wait for the
// next transaction — the temporal transactional-locality limit. The depth
// of the committed queue is therefore what bounds achievable FLP, which is
// exactly the lever FARO's over-commitment pulls.
type controller struct {
	eng     *sim.Engine
	geo     flash.Geometry
	tim     flash.Timing
	channel int
	bus     *bus.Channel
	chips   map[flash.ChipID]*flash.Chip

	pending    map[flash.ChipID][]flash.Request
	buildArmed map[flash.ChipID]bool

	// onReqDone routes member-request completions back to the device.
	onReqDone func(now sim.Time, r flash.Request)
	// onTxnStart/onTxnDone keep the device's busy-chip integral current.
	onTxnStart func(now sim.Time, c flash.ChipID)
	onTxnDone  func(now sim.Time, c flash.ChipID)
}

func newController(eng *sim.Engine, geo flash.Geometry, tim flash.Timing, channel int) *controller {
	ctl := &controller{
		eng:        eng,
		geo:        geo,
		tim:        tim,
		channel:    channel,
		bus:        bus.New(eng, channel),
		chips:      make(map[flash.ChipID]*flash.Chip),
		pending:    make(map[flash.ChipID][]flash.Request),
		buildArmed: make(map[flash.ChipID]bool),
	}
	for off := 0; off < geo.ChipsPerChan; off++ {
		id := geo.ChipAt(channel, off)
		ctl.chips[id] = flash.NewChip(eng, ctl.bus, id, geo, tim)
	}
	return ctl
}

// chip returns the chip object, panicking on foreign IDs.
func (ctl *controller) chip(id flash.ChipID) *flash.Chip {
	c, ok := ctl.chips[id]
	if !ok {
		panic(fmt.Sprintf("ssd: chip %d not on channel %d", id, ctl.channel))
	}
	return c
}

// commit appends a memory request to the chip's committed queue and arms
// the transaction builder if the chip is ready.
func (ctl *controller) commit(r flash.Request) {
	id := r.Addr.Chip
	ctl.pending[id] = append(ctl.pending[id], r)
	ctl.armBuild(id)
}

// pendingLen reports the committed-but-unissued depth for a chip.
func (ctl *controller) pendingLen(id flash.ChipID) int { return len(ctl.pending[id]) }

// armBuild schedules a transaction build for an idle chip after the
// decision window. Requests committed within the window still make the
// cut; later ones join the next transaction.
func (ctl *controller) armBuild(id flash.ChipID) {
	if ctl.buildArmed[id] || ctl.chip(id).Busy() || len(ctl.pending[id]) == 0 {
		return
	}
	ctl.buildArmed[id] = true
	ctl.eng.After(ctl.tim.DecisionWindow, func(now sim.Time) {
		ctl.buildArmed[id] = false
		ctl.build(now, id)
	})
}

// build coalesces the committed queue into one transaction and executes it.
func (ctl *controller) build(now sim.Time, id flash.ChipID) {
	chip := ctl.chip(id)
	if chip.Busy() || len(ctl.pending[id]) == 0 {
		return
	}
	txn, taken := flash.BuildTransaction(ctl.geo, ctl.pending[id])
	// Remove the consumed requests, preserving order of the rest.
	rest := ctl.pending[id][:0]
	ti := 0
	for i, r := range ctl.pending[id] {
		if ti < len(taken) && taken[ti] == i {
			ti++
			continue
		}
		rest = append(rest, r)
	}
	ctl.pending[id] = rest

	if ctl.onTxnStart != nil {
		ctl.onTxnStart(now, id)
	}
	chip.Execute(txn, flash.Callbacks{
		RequestDone: func(t sim.Time, r flash.Request) {
			if ctl.onReqDone != nil {
				ctl.onReqDone(t, r)
			}
		},
		TxnDone: func(t sim.Time, _ *flash.Transaction) {
			if ctl.onTxnDone != nil {
				ctl.onTxnDone(t, id)
			}
			ctl.armBuild(id)
		},
	})
}
