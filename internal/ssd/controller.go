package ssd

import (
	"fmt"

	"sprinkler/internal/bus"
	"sprinkler/internal/flash"
	"sprinkler/internal/req"
	"sprinkler/internal/sim"
)

// controller is one per-channel flash controller (§2.1): it owns the
// committed per-chip request queues, builds flash transactions, and
// executes them on the chips.
//
// Transaction formation follows §2.2: when a chip becomes ready, the
// controller settles the transaction type within the decision window and
// greedily coalesces every committed request that legally fits (same op,
// distinct die/plane, plane sharing only with matching block/page
// offsets). Requests committed after the decision instant wait for the
// next transaction — the temporal transactional-locality limit. The depth
// of the committed queue is therefore what bounds achievable FLP, which is
// exactly the lever FARO's over-commitment pulls.
//
// All per-chip state is stored in offset-indexed slices, and the build
// timers, chip callbacks, and transaction values are bound once at
// construction, so the commit→build→execute cycle allocates nothing in
// steady state.
//
// The controller never calls back into the device synchronously. Progress
// notifications (transaction start/end, member-request completions) are
// staged into a per-channel message list and drained by the device at the
// end of the instant — through a flush event on the single-engine kernel,
// or at the epoch barrier of the parallel per-channel kernel. Staging is
// what makes the two kernels byte-identical: in both, every channel's
// messages for one instant are applied in (channel, staging order).
type controller struct {
	eng     *sim.Engine
	geo     flash.Geometry
	tim     flash.Timing
	channel int
	bus     *bus.Channel
	chips   []*flash.Chip // by chip offset within the channel

	pending    [][]flash.Request // by chip offset
	buildArmed []bool
	buildT     []*sim.Timer         // fires build after the decision window
	txns       []*flash.Transaction // reused: one in flight per chip
	cbs        []flash.Callbacks
	taken      []int // BuildTransactionInto scratch (build is synchronous)

	// staged is the channel→device message queue, in staging order (which
	// is simulation-time order: channel events run time-monotonically).
	// head indexes the first undrained message.
	staged     []stagedMsg
	stagedHead int

	// noteStaged, when set, tells the owner that a message was staged at
	// now. The single-engine device arms its flush event from it; the
	// parallel kernel leaves it nil and drains at epoch barriers.
	noteStaged func(now sim.Time)

	// parkOnHazard is set by the parallel kernel when GC is enabled:
	// staging a completion whose host-side processing can commit GC flash
	// traffic back onto this channel caps the sub-engine at the staging
	// instant, so the channel waits there for the epoch coordinator to
	// deliver the commit before simulating past it. GC migrations are
	// chip-local (ftl.PlanGC allocates destinations on the victim's chip),
	// so the commit always targets the channel that parked.
	parkOnHazard bool
}

// stagedKind discriminates channel→device messages.
type stagedKind uint8

const (
	// stagedTxnStart: a transaction began executing on msg.chip.
	stagedTxnStart stagedKind = iota
	// stagedTxnDone: the in-flight transaction on msg.chip retired.
	stagedTxnDone
	// stagedReqDone: member request msg.r completed.
	stagedReqDone
)

// stagedMsg is one channel→device progress notification.
type stagedMsg struct {
	at   sim.Time
	kind stagedKind
	chip flash.ChipID
	r    flash.Request // stagedReqDone payload
}

func newController(eng *sim.Engine, geo flash.Geometry, tim flash.Timing, faults flash.FaultConfig, channel int) *controller {
	n := geo.ChipsPerChan
	ctl := &controller{
		eng:        eng,
		geo:        geo,
		tim:        tim,
		channel:    channel,
		bus:        bus.New(eng, channel),
		chips:      make([]*flash.Chip, n),
		pending:    make([][]flash.Request, n),
		buildArmed: make([]bool, n),
		buildT:     make([]*sim.Timer, n),
		txns:       make([]*flash.Transaction, n),
		cbs:        make([]flash.Callbacks, n),
	}
	for off := 0; off < n; off++ {
		off := off
		id := geo.ChipAt(channel, off)
		ctl.chips[off] = flash.NewChip(eng, ctl.bus, id, geo, tim)
		ctl.chips[off].SetFaults(faults)
		ctl.txns[off] = &flash.Transaction{}
		ctl.buildT[off] = sim.NewTimer(func(now sim.Time) {
			ctl.buildArmed[off] = false
			ctl.build(now, off)
		})
		ctl.buildT[off].SetLane(int32(channel) + 1)
		ctl.cbs[off] = flash.Callbacks{
			RequestDone: func(t sim.Time, r flash.Request) {
				ctl.stage(stagedMsg{at: t, kind: stagedReqDone, chip: id, r: r})
			},
			TxnDone: func(t sim.Time, _ *flash.Transaction) {
				ctl.stage(stagedMsg{at: t, kind: stagedTxnDone, chip: id})
				// The chip just dropped R/B: re-arm with busy=false rather
				// than reading device-owned mirror state from channel
				// context.
				ctl.armBuild(t, id, false)
			},
		}
	}
	return ctl
}

// stage appends one channel→device message and pings the owner.
func (ctl *controller) stage(msg stagedMsg) {
	ctl.staged = append(ctl.staged, msg)
	if ctl.noteStaged != nil {
		ctl.noteStaged(msg.at)
	}
	if ctl.parkOnHazard && msg.kind == stagedReqDone && hazardousToken(msg.r.Token) {
		ctl.eng.CapRun(msg.at)
	}
}

// hazardousToken reports whether the host-side processing of a completed
// request can commit new flash traffic at the completion instant: GC step
// completions chain the job's next phase (reads → programs → erase → next
// victim), and host write completions can arm a new collection
// (maybeStartGC). Both commit onto the completing request's own chip, so
// the staging channel parks and no other channel is affected. Reading the
// token from channel context is race-free: the fields inspected are set
// before the request is committed to the channel and never change while it
// is in flight.
func hazardousToken(tok interface{}) bool {
	switch t := tok.(type) {
	case *gcStep:
		return true
	case *req.Mem:
		return t.IO.Kind == req.Write
	}
	return false
}

// stagedNext peeks the first undrained message's timestamp.
func (ctl *controller) stagedNext() (sim.Time, bool) {
	if ctl.stagedHead >= len(ctl.staged) {
		return 0, false
	}
	return ctl.staged[ctl.stagedHead].at, true
}

// popStaged removes and returns the first undrained message, reclaiming
// the slice once it fully drains (constantly, at steady state).
func (ctl *controller) popStaged() stagedMsg {
	msg := ctl.staged[ctl.stagedHead]
	ctl.staged[ctl.stagedHead] = stagedMsg{}
	ctl.stagedHead++
	if ctl.stagedHead == len(ctl.staged) {
		ctl.staged = ctl.staged[:0]
		ctl.stagedHead = 0
	}
	return msg
}

// reset returns the controller, its bus and its chips to the just-built
// idle state for a new run, retaining every queue's storage. Timing and
// fault injection are per-run configuration and may change; geometry may
// not. The engine must have been Reset first (no build, bus or chip event
// may be pending).
func (ctl *controller) reset(tim flash.Timing, faults flash.FaultConfig) {
	ctl.tim = tim
	ctl.bus.Reset()
	for off := range ctl.chips {
		ctl.chips[off].Reset(tim)
		ctl.chips[off].SetFaults(faults)
		p := ctl.pending[off]
		for i := range p {
			p[i] = flash.Request{}
		}
		ctl.pending[off] = p[:0]
		ctl.buildArmed[off] = false
		ctl.buildT[off].Stop()
		txn := ctl.txns[off]
		for i := range txn.Requests {
			txn.Requests[i] = flash.Request{}
		}
		txn.Reset()
	}
	for i := range ctl.taken {
		ctl.taken[i] = 0
	}
	ctl.taken = ctl.taken[:0]
	for i := range ctl.staged {
		ctl.staged[i] = stagedMsg{}
	}
	ctl.staged = ctl.staged[:0]
	ctl.stagedHead = 0
}

// offset maps a chip ID to its offset on this channel, panicking on
// foreign IDs.
func (ctl *controller) offset(id flash.ChipID) int {
	if ctl.geo.Channel(id) != ctl.channel {
		panic(fmt.Sprintf("ssd: chip %d not on channel %d", id, ctl.channel))
	}
	return ctl.geo.ChipOffset(id)
}

// chip returns the chip object, panicking on foreign IDs.
func (ctl *controller) chip(id flash.ChipID) *flash.Chip {
	return ctl.chips[ctl.offset(id)]
}

// commit appends a memory request to the chip's committed queue and arms
// the transaction builder if the chip is ready. Callers run in device
// (host) context and pass the current instant plus their view of the
// chip's busy state — the device's staged mirror, which reflects exactly
// the transaction starts/ends the host has processed so far. (On the
// parallel kernel the chip object itself may already have advanced past
// now; the mirror is the causally correct view in both kernels.)
func (ctl *controller) commit(now sim.Time, r flash.Request, chipBusy bool) {
	id := r.Addr.Chip
	off := ctl.offset(id)
	ctl.pending[off] = append(ctl.pending[off], r)
	ctl.armBuild(now, id, chipBusy)
}

// pendingLen reports the committed-but-unissued depth for a chip.
func (ctl *controller) pendingLen(id flash.ChipID) int {
	return len(ctl.pending[ctl.offset(id)])
}

// armBuild schedules a transaction build for an idle chip after the
// decision window. Requests committed within the window still make the
// cut; later ones join the next transaction. busy is the caller's
// causally-consistent view of the chip's R/B state at now (see commit).
func (ctl *controller) armBuild(now sim.Time, id flash.ChipID, busy bool) {
	off := ctl.offset(id)
	if ctl.buildArmed[off] || busy || len(ctl.pending[off]) == 0 {
		return
	}
	ctl.buildArmed[off] = true
	ctl.eng.AtTimer(now+ctl.tim.DecisionWindow, ctl.buildT[off])
}

// build coalesces the committed queue into one transaction and executes it.
func (ctl *controller) build(now sim.Time, off int) {
	chip := ctl.chips[off]
	if chip.Busy() || len(ctl.pending[off]) == 0 {
		return
	}
	// The previous transaction for this chip has retired (the chip is
	// idle), so its value can be reused.
	txn := ctl.txns[off]
	ctl.taken = flash.BuildTransactionInto(ctl.geo, ctl.pending[off], txn, ctl.taken)
	// Remove the consumed requests, preserving order of the rest.
	rest := ctl.pending[off][:0]
	ti := 0
	for i, r := range ctl.pending[off] {
		if ti < len(ctl.taken) && ctl.taken[ti] == i {
			ti++
			continue
		}
		rest = append(rest, r)
	}
	ctl.pending[off] = rest

	ctl.stage(stagedMsg{at: now, kind: stagedTxnStart, chip: chip.ID})
	chip.Execute(txn, ctl.cbs[off])
}
