package ssd

import (
	"fmt"
	"testing"

	"sprinkler/internal/metrics"
	"sprinkler/internal/req"
	"sprinkler/internal/sched"
	"sprinkler/internal/sim"
	"sprinkler/internal/trace"
)

// genIOs synthesizes a deterministic mixed workload.
func genIOs(t *testing.T, cfg Config, n int, seed uint64) []*req.IO {
	t.Helper()
	w, ok := trace.ByName("cfs4")
	if !ok {
		t.Fatal("cfs4 missing")
	}
	ios, err := trace.Generate(w, trace.GenConfig{
		Instructions: n,
		LogicalPages: cfg.Geo.TotalPages() * 9 / 10,
		PageSize:     cfg.Geo.PageSize,
		AlignStride:  int64(cfg.Geo.NumChips()),
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ios
}

func cloneIOsForReset(ios []*req.IO) []*req.IO {
	out := make([]*req.IO, len(ios))
	for i, io := range ios {
		c := req.NewIO(io.ID, io.Kind, io.Start, io.Pages, io.Arrival)
		c.FUA = io.FUA
		out[i] = c
	}
	return out
}

// fingerprint flattens the measurements that must survive reuse exactly.
func fingerprint(r *metrics.Result) string {
	return fmt.Sprintf("ios=%d br=%d bw=%d dur=%d latsum=%v p50=%v p99=%v max=%v txns=%d reqs=%d util=%v stall=%d gc=%+v stale=%d flp=%v",
		r.IOsCompleted, r.BytesRead, r.BytesWritten, r.Duration,
		r.Latency.Sum(), r.Latency.Percentile(50), r.Latency.Percentile(99), r.Latency.Max(),
		r.Transactions, r.Requests, r.ChipUtilization, r.QueueFullTime, r.GC,
		r.StaleRetranslations, r.FLP.Share)
}

// TestDeviceResetMatchesFresh runs a GC-pressured workload on a fresh
// device and on a device Reset after serving two other runs (one with a
// different scheduler and queue depth, one preconditioned), asserting the
// measured fingerprints are identical — Reset must leave no residue in
// any layer. The full-field byte parity lives in the root package's
// arena tests; this is the internal-layer guard.
func TestDeviceResetMatchesFresh(t *testing.T) {
	cfg := smallConfig()
	cfg.Geo.BlocksPerPlane = 12
	cfg.Geo.PagesPerBlock = 16
	ios := genIOs(t, cfg, 250, 11)

	run := func(d *Device) string {
		res, err := d.Run(&SliceSource{IOs: cloneIOsForReset(ios)})
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint(res)
	}

	fresh, err := New(cfg, sched.NewPAS())
	if err != nil {
		t.Fatal(err)
	}
	want := run(fresh)

	dev, err := New(cfg, sched.NewVAS())
	if err != nil {
		t.Fatal(err)
	}
	// Run 1: different scheduler and queue depth.
	other := cfg
	other.QueueDepth = 16
	if err := dev.Reset(other, sched.NewVAS()); err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Run(&SliceSource{IOs: cloneIOsForReset(ios)}); err != nil {
		t.Fatal(err)
	}
	// Run 2: preconditioned, GC-heavy.
	if err := dev.Reset(cfg, sched.NewPAS()); err != nil {
		t.Fatal(err)
	}
	dev.Precondition(0.9, 0.5, 7)
	if _, err := dev.Run(&SliceSource{IOs: cloneIOsForReset(ios)}); err != nil {
		t.Fatal(err)
	}
	// Run 3: the measured one, after Reset — must match the fresh device.
	if err := dev.Reset(cfg, sched.NewPAS()); err != nil {
		t.Fatal(err)
	}
	if got := run(dev); got != want {
		t.Fatalf("reset device diverged from fresh:\nfresh: %s\nreset: %s", want, got)
	}
	if err := dev.FTL().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDeviceResetReusesScheduler pins scheduler-instance reuse: the same
// Sprinkler value serves two consecutive runs (its memoized FARO state
// dropped through sched.StateResetter) with results identical to fresh
// construction each time.
func TestDeviceResetReusesScheduler(t *testing.T) {
	cfg := smallConfig()
	ios := genIOs(t, cfg, 200, 3)

	s := allSchedulers()[4] // SPK3: the variant with memoized state
	dev, err := New(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := dev.Run(&SliceSource{IOs: cloneIOsForReset(ios)})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Reset(cfg, s); err != nil {
		t.Fatal(err)
	}
	res2, err := dev.Run(&SliceSource{IOs: cloneIOsForReset(ios)})
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(res1) != fingerprint(res2) {
		t.Fatalf("scheduler reuse diverged:\nrun1: %s\nrun2: %s", fingerprint(res1), fingerprint(res2))
	}
}

// TestComposeBatchingParity pins the same-instant DMA batching against
// the one-event-each path: with zero compose latency the batched run must
// fire strictly fewer kernel events while producing an identical Result;
// with the default latency the two paths must be event-for-event the same.
func TestComposeBatchingParity(t *testing.T) {
	for _, latency := range []sim.Time{0, 200} {
		cfg := smallConfig()
		cfg.ComposeLatency = latency
		ios := genIOs(t, cfg, 300, 5)

		run := func(batch bool) (uint64, string) {
			d, err := New(cfg, sched.NewPAS())
			if err != nil {
				t.Fatal(err)
			}
			d.SetComposeBatching(batch)
			res, err := d.Run(&SliceSource{IOs: cloneIOsForReset(ios)})
			if err != nil {
				t.Fatal(err)
			}
			return d.Engine().Fired(), fingerprint(res)
		}

		batchedEvents, batched := run(true)
		chainedEvents, chained := run(false)
		if batched != chained {
			t.Fatalf("latency=%v: batched result diverged\nbatched: %s\nchained: %s", latency, batched, chained)
		}
		if latency == 0 && batchedEvents >= chainedEvents {
			t.Fatalf("latency=0: batching saved no events (%d vs %d)", batchedEvents, chainedEvents)
		}
		if latency != 0 && batchedEvents != chainedEvents {
			t.Fatalf("latency=%v: event counts differ (%d vs %d) though batching cannot apply", latency, batchedEvents, chainedEvents)
		}
	}
}
