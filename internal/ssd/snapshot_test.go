package ssd

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"sprinkler/internal/core"
	"sprinkler/internal/req"
	"sprinkler/internal/sim"
)

// gcConfig shrinks blocks and clips the logical space so preconditioning
// produces GC pressure and the captured state is non-trivial.
func gcConfig() Config {
	cfg := smallConfig()
	cfg.Geo.BlocksPerPlane = 24
	cfg.LogicalPages = cfg.Geo.TotalPages() * 85 / 100
	return cfg
}

// TestCaptureStateRefusesMidRun pins the quiescence gate: a device with
// inflight I/O or pending events cannot be checkpointed.
func TestCaptureStateRefusesMidRun(t *testing.T) {
	d, err := New(gcConfig(), core.NewSPK3())
	if err != nil {
		t.Fatal(err)
	}
	for _, io := range seqIOs(40, 8, req.Write) {
		d.Submit(io)
	}
	d.Advance(d.Now() + 1) // far too short to drain anything
	if d.Inflight() == 0 {
		t.Fatal("test premise broken: no I/O in flight after a 1ns window")
	}
	if _, err := d.CaptureState(); err == nil {
		t.Fatal("mid-run capture did not error")
	} else if !strings.Contains(err.Error(), "checkpoint with") {
		t.Fatalf("mid-run capture error not descriptive: %v", err)
	}
	// Draining restores quiescence and the capture succeeds.
	if _, err := d.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CaptureState(); err != nil {
		t.Fatalf("capture after drain: %v", err)
	}
}

// TestDeviceStateCodecRoundTrip pins the binary codec: capture, encode,
// decode, load into a fresh device, re-capture — the two encodings must
// be byte-identical, and the hydrated FTL must satisfy its invariants.
func TestDeviceStateCodecRoundTrip(t *testing.T) {
	cfg := gcConfig()
	d, err := New(cfg, core.NewSPK3())
	if err != nil {
		t.Fatal(err)
	}
	d.Precondition(0.9, 0.5, 17)
	st, err := d.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := st.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeDeviceState(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	d2, err := New(cfg, core.NewSPK2()) // scheduler independence
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.LoadState(decoded); err != nil {
		t.Fatal(err)
	}
	if err := d2.FTL().CheckInvariants(); err != nil {
		t.Fatalf("hydrated FTL violates invariants: %v", err)
	}
	st2, err := d2.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := st2.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("re-captured state differs from the original (%d vs %d bytes)", buf.Len(), buf2.Len())
	}
}

// TestLoadStateRejectsShapeMismatch pins the structural validation: a
// state captured on one geometry cannot hydrate another. Kernel shape is
// NOT part of the structural contract — a serial capture hydrates a
// partitioned device (the sub-engine clocks adopt the host clock) and
// vice versa, since a quiescent snapshot carries no pending events.
func TestLoadStateRejectsShapeMismatch(t *testing.T) {
	d, err := New(gcConfig(), core.NewSPK3())
	if err != nil {
		t.Fatal(err)
	}
	d.Precondition(0.6, 0.2, 5)
	st, err := d.CaptureState()
	if err != nil {
		t.Fatal(err)
	}

	bigger := gcConfig()
	bigger.Geo.ChipsPerChan *= 2
	db, err := New(bigger, core.NewSPK3())
	if err != nil {
		t.Fatal(err)
	}
	if err := db.LoadState(st); err == nil {
		t.Error("geometry mismatch did not error")
	}

	par := gcConfig()
	par.ParallelChannels = 2
	dp, err := New(par, core.NewSPK3())
	if err != nil {
		t.Fatal(err)
	}
	if dp.par == nil {
		t.Fatal("test premise broken: device is not partitioned")
	}
	if err := dp.LoadState(st); err != nil {
		t.Errorf("serial capture did not hydrate a partitioned device: %v", err)
	}
	for ch, ctl := range dp.ctrls {
		if ctl.eng.Now() != dp.eng.Now() {
			t.Errorf("channel %d clock %v, want host clock %v", ch, ctl.eng.Now(), dp.eng.Now())
		}
	}

	// And the reverse: a partitioned capture hydrates a serial device.
	stp, err := dp.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := New(gcConfig(), core.NewSPK3())
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.LoadState(stp); err != nil {
		t.Errorf("partitioned capture did not hydrate a serial device: %v", err)
	}
}

// TestEngineClockRestore pins that hydration restores the simulation
// clock: time continues from the captured instant, not from zero.
func TestEngineClockRestore(t *testing.T) {
	d, err := New(gcConfig(), core.NewSPK3())
	if err != nil {
		t.Fatal(err)
	}
	for _, io := range seqIOs(30, 4, req.Write) {
		d.Submit(io)
	}
	if _, err := d.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if d.Now() == 0 {
		t.Fatal("test premise broken: clock still zero after a run")
	}
	st, err := d.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := New(gcConfig(), core.NewSPK3())
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.LoadState(st); err != nil {
		t.Fatal(err)
	}
	if got, want := d2.Now(), d.Now(); got != want {
		t.Fatalf("restored clock %v, want %v", got, want)
	}
	if got := d2.Now(); got == sim.Time(0) {
		t.Fatal("restored clock is zero")
	}
}
