package ssd

import (
	"testing"

	"sprinkler/internal/flash"
	"sprinkler/internal/sim"
)

func newTestController() (*sim.Engine, *controller) {
	eng := sim.NewEngine()
	geo := flash.Geometry{
		Channels: 1, ChipsPerChan: 2, DiesPerChip: 2, PlanesPerDie: 2,
		BlocksPerPlane: 16, PagesPerBlock: 8, PageSize: 2048,
	}
	return eng, newController(eng, geo, flash.DefaultTiming(), flash.FaultConfig{}, 0)
}

func freq(chip flash.ChipID, die, plane, block, page int, op flash.Op) flash.Request {
	return flash.Request{Op: op, Addr: flash.Addr{Chip: chip, Die: die, Plane: plane, Block: block, Page: page}}
}

func TestControllerCoalescesWithinDecisionWindow(t *testing.T) {
	eng, ctl := newTestController()

	// Two compatible requests committed back-to-back: the build fires
	// after the decision window and must fuse them.
	ctl.commit(0, freq(0, 0, 0, 3, 5, flash.OpRead), false)
	ctl.commit(0, freq(0, 1, 0, 4, 2, flash.OpRead), false)

	// Observe via chip stats after the run.
	eng.Run(0)
	st := ctl.chip(0).Stats()
	if st.Txns != 1 {
		t.Fatalf("executed %d transactions, want 1 fused", st.Txns)
	}
	if st.TxnsByClass[flash.PAL2] != 1 {
		t.Fatalf("fusion class wrong: %v", st.TxnsByClass)
	}
}

func TestControllerLateCommitMissesWindow(t *testing.T) {
	eng, ctl := newTestController()
	ctl.commit(0, freq(0, 0, 0, 3, 5, flash.OpRead), false)
	// Second request arrives after the window (and after the chip went
	// busy): it must be a separate transaction.
	eng.At(ctl.tim.DecisionWindow+1, func(now sim.Time) {
		ctl.commit(now, freq(0, 1, 0, 4, 2, flash.OpRead), ctl.chip(0).Busy())
	})
	eng.Run(0)
	st := ctl.chip(0).Stats()
	if st.Txns != 2 {
		t.Fatalf("executed %d transactions, want 2 (late commit)", st.Txns)
	}
}

func TestControllerAccumulatesWhileBusy(t *testing.T) {
	eng, ctl := newTestController()
	// First request occupies the chip; four compatible requests commit
	// while it is busy and must fuse into ONE follow-up transaction.
	ctl.commit(0, freq(0, 0, 0, 1, 1, flash.OpRead), false)
	eng.At(50*sim.Microsecond, func(now sim.Time) { // mid-execution of txn 1
		busy := ctl.chip(0).Busy()
		ctl.commit(now, freq(0, 0, 0, 2, 2, flash.OpRead), busy)
		ctl.commit(now, freq(0, 0, 1, 2, 2, flash.OpRead), busy)
		ctl.commit(now, freq(0, 1, 0, 3, 4, flash.OpRead), busy)
		ctl.commit(now, freq(0, 1, 1, 3, 4, flash.OpRead), busy)
	})
	eng.Run(0)
	st := ctl.chip(0).Stats()
	if st.Txns != 2 {
		t.Fatalf("executed %d transactions, want 2", st.Txns)
	}
	if st.TxnsByClass[flash.PAL3] != 1 {
		t.Fatalf("accumulated batch should fuse as PAL3: %v", st.TxnsByClass)
	}
}

func TestControllerSeparatesOpKinds(t *testing.T) {
	eng, ctl := newTestController()
	ctl.commit(0, freq(0, 0, 0, 1, 1, flash.OpRead), false)
	ctl.commit(0, freq(0, 1, 0, 2, 1, flash.OpProgram), false)
	eng.Run(0)
	st := ctl.chip(0).Stats()
	if st.Txns != 2 {
		t.Fatalf("mixed ops fused: %d txns", st.Txns)
	}
}

func TestControllerIndependentChips(t *testing.T) {
	eng, ctl := newTestController()
	ctl.commit(0, freq(0, 0, 0, 1, 1, flash.OpRead), false)
	ctl.commit(0, freq(1, 0, 0, 1, 1, flash.OpRead), false)
	// Both chips busy concurrently (they share only the bus).
	eng.RunUntil(30 * sim.Microsecond)
	if !ctl.chip(0).Busy() || !ctl.chip(1).Busy() {
		t.Fatal("chips did not overlap execution")
	}
	eng.Run(0)
	if ctl.chip(0).Stats().Txns != 1 || ctl.chip(1).Stats().Txns != 1 {
		t.Fatal("per-chip transaction accounting wrong")
	}
}

func TestControllerPendingLen(t *testing.T) {
	eng, ctl := newTestController()
	ctl.commit(0, freq(0, 0, 0, 1, 1, flash.OpRead), false)
	ctl.commit(0, freq(0, 0, 0, 2, 1, flash.OpRead), false) // conflicts: same die/plane
	if got := ctl.pendingLen(0); got != 2 {
		t.Fatalf("pendingLen = %d, want 2 before build", got)
	}
	eng.Run(0)
	if got := ctl.pendingLen(0); got != 0 {
		t.Fatalf("pendingLen = %d after drain", got)
	}
	// Conflicting requests must have run as two transactions.
	if got := ctl.chip(0).Stats().Txns; got != 2 {
		t.Fatalf("txns = %d, want 2", got)
	}
}

func TestControllerForeignChipPanics(t *testing.T) {
	_, ctl := newTestController()
	defer func() {
		if recover() == nil {
			t.Fatal("foreign chip did not panic")
		}
	}()
	ctl.chip(flash.ChipID(99))
}
