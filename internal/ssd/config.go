// Package ssd assembles the full many-chip SSD model of Figure 2: the
// NVMHC with its device-level queue and DMA engine, the embedded core
// running the FTL, per-channel flash controllers, the shared channel buses
// and the NAND chips — and drives a workload through it under a pluggable
// device-level I/O scheduler.
package ssd

import (
	"fmt"

	"sprinkler/internal/flash"
	"sprinkler/internal/ftl"
	"sprinkler/internal/sim"
)

// Config parameterizes a Device.
type Config struct {
	Geo flash.Geometry
	Tim flash.Timing

	// QueueDepth is the device-level queue's tag capacity (§2.1). SATA
	// NCQ exposes 32 tags; NVMe-class devices more. Default 64.
	QueueDepth int

	// ComposeLatency models one memory request's data movement between
	// host and SSD (memory request composition, §2.1). Compositions
	// serialize on the DMA engine.
	ComposeLatency sim.Time

	// RetranslatePenalty is charged at commit time when a scheduler
	// without the readdressing callback (§4.3) holds a stale physical
	// address after live-data migration.
	RetranslatePenalty sim.Time

	// MaxBacklog bounds the host-side requests buffered ahead of
	// admission in source-driven runs; zero means unbounded. When the
	// bound is reached the source is paused and resumed as admissions
	// drain. Arrival timestamps are preserved (a late-executed arrival
	// still carries its original time, so latency accounting includes
	// the host-side wait); memory stays flat under sustained overload.
	MaxBacklog int

	// LogicalPages bounds the logical address space. Zero defaults to
	// ~90% of the physical pages, leaving over-provisioning headroom.
	LogicalPages int64

	// GCFreeTarget is the per-plane free-block threshold that triggers
	// background garbage collection. Zero uses the FTL default.
	GCFreeTarget int

	// Allocation picks the FTL's dynamic page-allocation scheme.
	Allocation ftl.Allocation

	// EraseFailProb injects per-erase block retirements (bad-block
	// replacement, §4.3). Zero disables.
	EraseFailProb float64

	// WearDeltaMax enables static wear-leveling when a plane's erase
	// spread exceeds it (§4.3). Zero disables.
	WearDeltaMax int

	// MetricsSampleCap bounds the exact latency samples the device
	// retains: runs shorter than the cap report exact percentiles, longer
	// runs switch to a fixed-memory log-bucketed estimator so metrics
	// memory is O(1) however long the run. Zero selects
	// sim.DefaultHistogramCap; negative streams into buckets from the
	// first sample.
	MetricsSampleCap int

	// DisableGC turns background garbage collection off (pristine-state
	// experiments).
	DisableGC bool

	// ParallelChannels partitions the event kernel by channel: each
	// per-channel controller (bus + chips) runs on its own sub-engine, and
	// up to ParallelChannels worker threads advance the sub-engines in
	// conservative lockstep epochs bounded by the DMA compose latency —
	// the only statically-known cross-channel delay. Values below 2
	// (default) keep the single-engine serial kernel. The partitioned
	// kernel produces timelines byte-identical to the serial one — with
	// background GC enabled too: GC traffic is chip-local, so a channel
	// whose completion can trigger collection parks at that instant until
	// the epoch coordinator delivers the resulting commits. It engages
	// only when the configuration's cross-channel lookahead is
	// non-degenerate (at least two channels and ComposeLatency > 0), and
	// falls back to the serial kernel otherwise.
	ParallelChannels int

	// Faults parameterizes deterministic fault injection (read retries,
	// program/erase failures, transient die outages, spare-block
	// provisioning). The zero value disables the model entirely and is
	// byte-identical to a fault-free build.
	Faults FaultSpec

	// CollectSeries records one SeriesPoint per completed I/O (Figure 12).
	CollectSeries bool

	// SeriesWindow bounds the collected series to the most recent N
	// completed I/Os (a ring buffer), so series collection is safe on
	// arbitrarily long runs. Zero keeps the exact one-point-per-I/O
	// behaviour. Ignored unless CollectSeries is set.
	SeriesWindow int
}

// DefaultConfig mirrors §5.1: 2 KB pages, 2 dies × 4 planes, ONFI 2.x
// channels, with 64 chips over 8 channels.
func DefaultConfig() Config {
	return Config{
		Geo:                flash.DefaultGeometry(),
		Tim:                flash.DefaultTiming(),
		QueueDepth:         64,
		ComposeLatency:     200, // ~2KB over an 8 GB/s host link + overhead
		RetranslatePenalty: 5 * sim.Microsecond,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if err := c.Geo.Validate(); err != nil {
		return err
	}
	if err := c.Tim.Validate(); err != nil {
		return err
	}
	if c.QueueDepth <= 0 {
		return fmt.Errorf("ssd: QueueDepth %d", c.QueueDepth)
	}
	if c.ComposeLatency < 0 {
		return fmt.Errorf("ssd: negative ComposeLatency")
	}
	if c.RetranslatePenalty < 0 {
		return fmt.Errorf("ssd: negative RetranslatePenalty")
	}
	if c.MaxBacklog < 0 {
		return fmt.Errorf("ssd: negative MaxBacklog")
	}
	if c.LogicalPages < 0 {
		return fmt.Errorf("ssd: negative LogicalPages")
	}
	if c.LogicalPages > c.Geo.TotalPages() {
		return fmt.Errorf("ssd: LogicalPages %d exceeds physical %d", c.LogicalPages, c.Geo.TotalPages())
	}
	if c.SeriesWindow < 0 {
		return fmt.Errorf("ssd: negative SeriesWindow")
	}
	if c.ParallelChannels < 0 {
		return fmt.Errorf("ssd: negative ParallelChannels")
	}
	if err := c.Faults.validate(); err != nil {
		return err
	}
	return nil
}

// FaultSpec parameterizes the deterministic fault-injection subsystem. The
// zero value disables every mechanism: no RNG stream is created, no draws
// are made, and results are byte-identical to a fault-free build.
type FaultSpec struct {
	// Per-member failure probabilities for the three flash operations.
	// A failed read sense enters the retry ladder; a failed program
	// triggers a page rewrite to a fresh block; a failed (GC) erase
	// retires the block to the spare pool.
	ReadFailProb    float64
	ProgramFailProb float64
	EraseFailProb   float64

	// ReadRetryMax bounds the read-retry ladder (0 = a failing sense is
	// immediately uncorrectable); ReadRetryMult scales the escalating
	// retry sense time (retry r costs r*mult × the base cell time; values
	// below 1 behave as 1).
	ReadRetryMax  int
	ReadRetryMult int

	// RewriteMax bounds program-fail recovery: how many times one page
	// write may be remapped and re-issued before the host I/O is failed.
	RewriteMax int

	// OutagePeriod/OutageDur (ns) define per-die transient outage windows;
	// a cell phase that would start during a die's window waits it out.
	// Zero period or duration disables outages.
	OutagePeriod sim.Time
	OutageDur    sim.Time

	// SpareBlockFrac reserves this fraction of every plane's blocks as
	// bad-block replacement spares; retirements consume them, and
	// exhaustion degrades the drive to read-only mode.
	SpareBlockFrac float64

	// Seed is the base fault seed; each chip derives an independent
	// deterministic stream from it.
	Seed uint64
}

// Enabled reports whether any fault mechanism is configured.
func (fs *FaultSpec) Enabled() bool {
	return fs.flashConfig().Enabled() || fs.SpareBlockFrac > 0
}

// flashConfig maps the spec onto the chip-level fault model.
func (fs *FaultSpec) flashConfig() flash.FaultConfig {
	return flash.FaultConfig{
		ReadFailProb:    fs.ReadFailProb,
		ProgramFailProb: fs.ProgramFailProb,
		EraseFailProb:   fs.EraseFailProb,
		ReadRetryMax:    fs.ReadRetryMax,
		ReadRetryMult:   fs.ReadRetryMult,
		OutagePeriod:    fs.OutagePeriod,
		OutageDur:       fs.OutageDur,
		Seed:            fs.Seed,
	}
}

func (fs *FaultSpec) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"ReadFailProb", fs.ReadFailProb},
		{"ProgramFailProb", fs.ProgramFailProb},
		{"EraseFailProb", fs.EraseFailProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("ssd: fault %s %g outside [0, 1]", p.name, p.v)
		}
	}
	if fs.ReadRetryMax < 0 {
		return fmt.Errorf("ssd: negative fault ReadRetryMax")
	}
	if fs.ReadRetryMult < 0 {
		return fmt.Errorf("ssd: negative fault ReadRetryMult")
	}
	if fs.RewriteMax < 0 {
		return fmt.Errorf("ssd: negative fault RewriteMax")
	}
	if fs.OutagePeriod < 0 || fs.OutageDur < 0 {
		return fmt.Errorf("ssd: negative fault outage window")
	}
	if fs.OutageDur > 0 && fs.OutagePeriod == 0 {
		return fmt.Errorf("ssd: fault OutageDur set without OutagePeriod")
	}
	if fs.OutagePeriod > 0 && fs.OutageDur >= fs.OutagePeriod {
		return fmt.Errorf("ssd: fault OutageDur %d must be shorter than OutagePeriod %d",
			int64(fs.OutageDur), int64(fs.OutagePeriod))
	}
	if fs.SpareBlockFrac < 0 || fs.SpareBlockFrac >= 1 {
		return fmt.Errorf("ssd: fault SpareBlockFrac %g outside [0, 1)", fs.SpareBlockFrac)
	}
	return nil
}

// partitioned reports whether this configuration runs the per-channel
// partitioned kernel: the knob asks for it and the cross-channel lookahead
// is non-degenerate (at least two channels, ComposeLatency > 0). GC no
// longer forces the serial fallback: its flash traffic is chip-local, so
// the kernel parks a channel at a completion that can trigger collection
// and delivers the resulting commits at the epoch barrier (see
// parallel.go).
func (c *Config) partitioned() bool {
	return c.ParallelChannels >= 2 && c.Geo.Channels >= 2 &&
		c.ComposeLatency > 0
}

// Partitioned exposes the kernel resolution to the public API layer
// (Config.UsesParallelKernel) and the serving daemon's session echo.
func (c *Config) Partitioned() bool { return c.partitioned() }

// logicalPages resolves the default logical space.
func (c *Config) logicalPages() int64 {
	if c.LogicalPages > 0 {
		return c.LogicalPages
	}
	return c.Geo.TotalPages() * 9 / 10
}

// ftlConfig builds the FTL configuration.
func (c *Config) ftlConfig() ftl.Config {
	fc := ftl.DefaultConfig(c.Geo)
	if c.GCFreeTarget > 0 {
		fc.GCFreeTarget = c.GCFreeTarget
	}
	fc.LogicalPages = c.logicalPages()
	fc.Allocation = c.Allocation
	fc.EraseFailProb = c.EraseFailProb
	fc.WearDeltaMax = c.WearDeltaMax
	fc.SpareBlockFrac = c.Faults.SpareBlockFrac
	fc.Seed = c.Faults.Seed
	return fc
}
