// Package ssd assembles the full many-chip SSD model of Figure 2: the
// NVMHC with its device-level queue and DMA engine, the embedded core
// running the FTL, per-channel flash controllers, the shared channel buses
// and the NAND chips — and drives a workload through it under a pluggable
// device-level I/O scheduler.
package ssd

import (
	"fmt"

	"sprinkler/internal/flash"
	"sprinkler/internal/ftl"
	"sprinkler/internal/sim"
)

// Config parameterizes a Device.
type Config struct {
	Geo flash.Geometry
	Tim flash.Timing

	// QueueDepth is the device-level queue's tag capacity (§2.1). SATA
	// NCQ exposes 32 tags; NVMe-class devices more. Default 64.
	QueueDepth int

	// ComposeLatency models one memory request's data movement between
	// host and SSD (memory request composition, §2.1). Compositions
	// serialize on the DMA engine.
	ComposeLatency sim.Time

	// RetranslatePenalty is charged at commit time when a scheduler
	// without the readdressing callback (§4.3) holds a stale physical
	// address after live-data migration.
	RetranslatePenalty sim.Time

	// MaxBacklog bounds the host-side requests buffered ahead of
	// admission in source-driven runs; zero means unbounded. When the
	// bound is reached the source is paused and resumed as admissions
	// drain. Arrival timestamps are preserved (a late-executed arrival
	// still carries its original time, so latency accounting includes
	// the host-side wait); memory stays flat under sustained overload.
	MaxBacklog int

	// LogicalPages bounds the logical address space. Zero defaults to
	// ~90% of the physical pages, leaving over-provisioning headroom.
	LogicalPages int64

	// GCFreeTarget is the per-plane free-block threshold that triggers
	// background garbage collection. Zero uses the FTL default.
	GCFreeTarget int

	// Allocation picks the FTL's dynamic page-allocation scheme.
	Allocation ftl.Allocation

	// EraseFailProb injects per-erase block retirements (bad-block
	// replacement, §4.3). Zero disables.
	EraseFailProb float64

	// WearDeltaMax enables static wear-leveling when a plane's erase
	// spread exceeds it (§4.3). Zero disables.
	WearDeltaMax int

	// MetricsSampleCap bounds the exact latency samples the device
	// retains: runs shorter than the cap report exact percentiles, longer
	// runs switch to a fixed-memory log-bucketed estimator so metrics
	// memory is O(1) however long the run. Zero selects
	// sim.DefaultHistogramCap; negative streams into buckets from the
	// first sample.
	MetricsSampleCap int

	// DisableGC turns background garbage collection off (pristine-state
	// experiments).
	DisableGC bool

	// ParallelChannels partitions the event kernel by channel: each
	// per-channel controller (bus + chips) runs on its own sub-engine, and
	// up to ParallelChannels worker threads advance the sub-engines in
	// conservative lockstep epochs bounded by the DMA compose latency —
	// the only statically-known cross-channel delay. Values below 2
	// (default) keep the single-engine serial kernel. The partitioned
	// kernel produces timelines byte-identical to the serial one; it
	// engages only when the configuration's cross-channel lookahead is
	// non-degenerate (at least two channels, ComposeLatency > 0, and GC
	// disabled — background GC commits flash traffic with zero lookahead),
	// and falls back to the serial kernel otherwise.
	ParallelChannels int

	// CollectSeries records one SeriesPoint per completed I/O (Figure 12).
	CollectSeries bool

	// SeriesWindow bounds the collected series to the most recent N
	// completed I/Os (a ring buffer), so series collection is safe on
	// arbitrarily long runs. Zero keeps the exact one-point-per-I/O
	// behaviour. Ignored unless CollectSeries is set.
	SeriesWindow int
}

// DefaultConfig mirrors §5.1: 2 KB pages, 2 dies × 4 planes, ONFI 2.x
// channels, with 64 chips over 8 channels.
func DefaultConfig() Config {
	return Config{
		Geo:                flash.DefaultGeometry(),
		Tim:                flash.DefaultTiming(),
		QueueDepth:         64,
		ComposeLatency:     200, // ~2KB over an 8 GB/s host link + overhead
		RetranslatePenalty: 5 * sim.Microsecond,
	}
}

// Validate checks the configuration.
func (c *Config) Validate() error {
	if err := c.Geo.Validate(); err != nil {
		return err
	}
	if err := c.Tim.Validate(); err != nil {
		return err
	}
	if c.QueueDepth <= 0 {
		return fmt.Errorf("ssd: QueueDepth %d", c.QueueDepth)
	}
	if c.ComposeLatency < 0 {
		return fmt.Errorf("ssd: negative ComposeLatency")
	}
	if c.RetranslatePenalty < 0 {
		return fmt.Errorf("ssd: negative RetranslatePenalty")
	}
	if c.MaxBacklog < 0 {
		return fmt.Errorf("ssd: negative MaxBacklog")
	}
	if c.LogicalPages < 0 {
		return fmt.Errorf("ssd: negative LogicalPages")
	}
	if c.LogicalPages > c.Geo.TotalPages() {
		return fmt.Errorf("ssd: LogicalPages %d exceeds physical %d", c.LogicalPages, c.Geo.TotalPages())
	}
	if c.SeriesWindow < 0 {
		return fmt.Errorf("ssd: negative SeriesWindow")
	}
	if c.ParallelChannels < 0 {
		return fmt.Errorf("ssd: negative ParallelChannels")
	}
	return nil
}

// partitioned reports whether this configuration runs the per-channel
// partitioned kernel: the knob asks for it and the cross-channel lookahead
// is non-degenerate. Background GC injects flash traffic synchronously at
// completion-processing time (including cross-channel migration programs),
// collapsing the lookahead to zero, so GC configurations always use the
// serial kernel.
func (c *Config) partitioned() bool {
	return c.ParallelChannels >= 2 && c.Geo.Channels >= 2 &&
		c.DisableGC && c.ComposeLatency > 0
}

// logicalPages resolves the default logical space.
func (c *Config) logicalPages() int64 {
	if c.LogicalPages > 0 {
		return c.LogicalPages
	}
	return c.Geo.TotalPages() * 9 / 10
}

// ftlConfig builds the FTL configuration.
func (c *Config) ftlConfig() ftl.Config {
	fc := ftl.DefaultConfig(c.Geo)
	if c.GCFreeTarget > 0 {
		fc.GCFreeTarget = c.GCFreeTarget
	}
	fc.LogicalPages = c.logicalPages()
	fc.Allocation = c.Allocation
	fc.EraseFailProb = c.EraseFailProb
	fc.WearDeltaMax = c.WearDeltaMax
	return fc
}
