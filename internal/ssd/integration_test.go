package ssd

import (
	"testing"
	"testing/quick"

	"sprinkler/internal/core"
	"sprinkler/internal/ftl"
	"sprinkler/internal/req"
	"sprinkler/internal/sched"
	"sprinkler/internal/sim"
)

// TestLifecycleTimestampsOrdered verifies the Figure 3 service routine
// ordering for every I/O: arrival <= enqueue <= first data <= done, and
// per memory request composed <= committed <= finished.
func TestLifecycleTimestampsOrdered(t *testing.T) {
	for _, s := range allSchedulers() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			d, err := New(smallConfig(), s)
			if err != nil {
				t.Fatal(err)
			}
			rng := sim.NewRand(31)
			var ios []*req.IO
			for i := 0; i < 40; i++ {
				kind := req.Read
				if rng.Bool(0.4) {
					kind = req.Write
				}
				ios = append(ios, req.NewIO(int64(i), kind,
					req.LPN(rng.Intn(4096)), 1+rng.Intn(10), sim.Time(i)*3*sim.Microsecond))
			}
			if _, err := d.Run(&SliceSource{IOs: ios}); err != nil {
				t.Fatal(err)
			}
			for _, io := range ios {
				if !(io.Arrival <= io.Enqueued && io.Enqueued <= io.FirstData && io.FirstData <= io.Done) {
					t.Fatalf("io %v timestamps disordered: arr=%v enq=%v first=%v done=%v",
						io, io.Arrival, io.Enqueued, io.FirstData, io.Done)
				}
				for _, m := range io.Mem {
					if m.State != req.StateDone {
						t.Fatalf("%v not done", m)
					}
					if !(m.Composed <= m.Committed && m.Committed <= m.Finished) {
						t.Fatalf("%v phases disordered: %v %v %v", m, m.Composed, m.Committed, m.Finished)
					}
					if m.Finished > io.Done {
						t.Fatalf("%v finished after its I/O completed", m)
					}
				}
			}
		})
	}
}

// TestRequestConservation: the flash level must serve exactly the host's
// page count when GC is off.
func TestRequestConservation(t *testing.T) {
	cfg := smallConfig()
	cfg.DisableGC = true
	for _, s := range allSchedulers() {
		d, err := New(cfg, s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run(&SliceSource{IOs: seqIOs(30, 7, req.Write)})
		if err != nil {
			t.Fatal(err)
		}
		if res.Requests != 30*7 {
			t.Fatalf("%s: flash served %d requests, host issued %d", s.Name(), res.Requests, 30*7)
		}
		var classSum int64
		for _, v := range res.TxnsByClass {
			classSum += v
		}
		if classSum != res.Transactions {
			t.Fatalf("%s: class counts %d != transactions %d", s.Name(), classSum, res.Transactions)
		}
	}
}

// TestSchedulersCompleteRandomWorkloads is a property test across the
// whole stack: any random workload completes under every scheduler with
// FTL invariants intact, and the result is internally consistent.
func TestSchedulersCompleteRandomWorkloads(t *testing.T) {
	prop := func(seed uint16, nRaw uint8) bool {
		n := 5 + int(nRaw)%30
		for _, s := range allSchedulers() {
			cfg := smallConfig()
			d, err := New(cfg, s)
			if err != nil {
				return false
			}
			rng := sim.NewRand(uint64(seed) + 77)
			var ios []*req.IO
			for i := 0; i < n; i++ {
				kind := req.Read
				if rng.Bool(0.5) {
					kind = req.Write
				}
				ios = append(ios, req.NewIO(int64(i), kind,
					req.LPN(rng.Intn(8192)), 1+rng.Intn(20), sim.Time(rng.Intn(200))*sim.Microsecond))
			}
			res, err := d.Run(&SliceSource{IOs: ios})
			if err != nil {
				return false
			}
			if res.IOsCompleted != int64(n) {
				return false
			}
			if res.Latency.Count() != n {
				return false
			}
			if d.FTL().CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestReaddressingRepointsQueuedReads forces a migration while a read
// waits in the queue and verifies Sprinkler sees the new address.
func TestReaddressingRepointsQueuedReads(t *testing.T) {
	cfg := smallConfig()
	d, err := New(cfg, core.NewSPK3())
	if err != nil {
		t.Fatal(err)
	}
	// Manually place a queued read and index it.
	io := req.NewIO(1, req.Read, 500, 1, 0)
	m := io.Mem[0]
	if !d.preprocess(m) {
		t.Fatal("preprocess failed")
	}
	old := m.Addr
	d.ready.Add(m)

	// Write the LPN so a real mapping exists, then fake a migration.
	wio := req.NewIO(2, req.Write, 500, 1, 0)
	if !d.preprocess(wio.Mem[0]) {
		t.Fatal("write preprocess failed")
	}
	// The queued read's address is now stale relative to the mapping; a
	// readdressing callback for (old -> new) must fix only matching reads.
	newAddr := wio.Mem[0].Addr
	d.applyMigrations([]ftl.Migration{{LPN: 500, Src: old, Dst: newAddr}})
	if m.Addr != newAddr {
		t.Fatalf("queued read kept stale address %v, want %v", m.Addr, newAddr)
	}

	// A non-subscribing scheduler must NOT be repointed.
	d2, err := New(cfg, sched.NewVAS())
	if err != nil {
		t.Fatal(err)
	}
	io2 := req.NewIO(1, req.Read, 500, 1, 0)
	m2 := io2.Mem[0]
	if !d2.preprocess(m2) {
		t.Fatal("preprocess failed")
	}
	old2 := m2.Addr
	d2.ready.Add(m2)
	d2.applyMigrations([]ftl.Migration{{LPN: 500, Src: old2, Dst: newAddr}})
	if m2.Addr != old2 {
		t.Fatal("VAS received readdressing it never subscribed to")
	}
}
