package ssd

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"sprinkler/internal/ftl"
	"sprinkler/internal/metrics"
	"sprinkler/internal/nvmhc"
	"sprinkler/internal/sim"
)

// Warm-state device checkpoint/restore. A checkpoint is taken at
// quiescence — no host I/O in flight and every event queue drained —
// which is exactly the state a device is in after Precondition (the
// expensive warm-up this exists to amortize) or after a run drains. At
// quiescence all transient machinery is provably empty: no chip holds an
// in-flight transaction or retry-ladder state, every controller's
// committed queues and staged message lists are empty, the DMA composer
// and host backlog are idle, the buses are free, and no timer is
// pending. None of it is serialized. What remains — and what DeviceState
// carries — is the FTL's warm layout, the engine clock(s), the
// device-level queue's admission counters, the metrics accumulators, the
// per-chip statistics, and the positions of every deterministic RNG
// stream. Restoring that onto a freshly built device of the same
// configuration yields a device byte-identical in behaviour to one that
// replayed the warm-up.

// ChipState is the persistent per-chip state: the accounting counters
// behind metrics.ChipSample and the fault-stream generator position.
type ChipState struct {
	CellActive sim.TimedCounterState
	BusActive  sim.TimedCounterState
	BusyAll    sim.TimedCounterState
	BusWait    sim.Time
	PlaneUse   sim.WeightedSumState

	Txns        int64
	TxnsByClass [4]int64
	ReqsByClass [4]int64
	Requests    int64

	ReadRetries       int64
	ReadUncorrectable int64
	ProgramFails      int64
	EraseFails        int64

	HasFRNG bool
	FRNG    uint64
}

// DeviceState is the complete persistent state of a quiescent Device.
type DeviceState struct {
	FTL ftl.State

	// Engine is the host engine's clock; Channels holds the per-channel
	// sub-engine clocks when the device runs the partitioned kernel
	// (empty on the serial kernel).
	Engine   sim.EngineClock
	Channels []sim.EngineClock

	Queue nvmhc.QueueState

	// Device accounting.
	BusyIntegral   float64
	SysBusyTime    sim.Time
	LastAccount    sim.Time
	EmergencyGCs   int64
	StaleFixes     int64
	FailedIOs      int64
	BytesRead      int64
	BytesWritten   int64
	IOsDone        int64
	LastCompletion sim.Time

	Latency sim.HistogramState

	// Series is the collected latency series in completion order (the
	// windowed ring is unrolled; restore continues overwriting from the
	// front, which is behaviourally identical).
	Series []metrics.SeriesPoint

	// Chips is indexed in (channel, chip offset) order.
	Chips []ChipState
}

// CaptureState snapshots a quiescent device's persistent state. It
// errors when the device is not quiescent: host I/Os in flight, events
// pending, or (belt and braces — these are implied by the first two)
// anything transient non-empty.
func (d *Device) CaptureState() (*DeviceState, error) {
	if d.inflight != 0 {
		return nil, fmt.Errorf("ssd: checkpoint with %d host I/Os in flight", d.inflight)
	}
	if d.eng.Pending() != 0 {
		return nil, fmt.Errorf("ssd: checkpoint with %d events pending", d.eng.Pending())
	}
	if d.par != nil {
		for ch, ctl := range d.ctrls {
			if ctl.eng.Pending() != 0 {
				return nil, fmt.Errorf("ssd: checkpoint with %d events pending on channel %d", ctl.eng.Pending(), ch)
			}
		}
	}
	if d.composing || d.composeHead < len(d.composeQ) {
		return nil, fmt.Errorf("ssd: checkpoint with DMA compositions in flight")
	}
	if d.backlogLen() != 0 {
		return nil, fmt.Errorf("ssd: checkpoint with %d host I/Os backlogged", d.backlogLen())
	}
	qs, err := d.queue.State()
	if err != nil {
		return nil, fmt.Errorf("ssd: checkpoint: %w", err)
	}
	st := &DeviceState{
		FTL:            d.fl.CaptureState(),
		Engine:         d.eng.Clock(),
		Queue:          qs,
		BusyIntegral:   d.busyIntegral,
		SysBusyTime:    d.sysBusyTime,
		LastAccount:    d.lastAccount,
		EmergencyGCs:   d.emergencyGCs,
		StaleFixes:     d.staleFixes,
		FailedIOs:      d.failedIOs,
		BytesRead:      d.bytesRead,
		BytesWritten:   d.bytesWritten,
		IOsDone:        d.iosDone,
		LastCompletion: d.lastCompletion,
	}
	if d.par != nil {
		st.Channels = make([]sim.EngineClock, len(d.ctrls))
		for ch, ctl := range d.ctrls {
			st.Channels[ch] = ctl.eng.Clock()
		}
	}
	hs := d.latency.ExportState()
	hs.Samples = append([]float64(nil), hs.Samples...)
	if hs.Buckets != nil {
		hs.Buckets = append([]uint64(nil), hs.Buckets...)
	}
	st.Latency = hs
	if s := d.seriesSnapshot(); len(s) > 0 {
		st.Series = append([]metrics.SeriesPoint(nil), s...)
	}
	st.Chips = make([]ChipState, 0, d.cfg.Geo.NumChips())
	for ch := range d.ctrls {
		for off := 0; off < d.cfg.Geo.ChipsPerChan; off++ {
			chip := d.ctrls[ch].chip(d.cfg.Geo.ChipAt(ch, off))
			if chip.Busy() {
				return nil, fmt.Errorf("ssd: checkpoint with chip %d busy", chip.ID)
			}
			cs := chip.Stats()
			out := ChipState{
				CellActive:        cs.CellActive.State(),
				BusActive:         cs.BusActive.State(),
				BusyAll:           cs.BusyAll.State(),
				BusWait:           cs.BusWait,
				PlaneUse:          cs.PlaneUse.State(),
				Txns:              cs.Txns,
				TxnsByClass:       cs.TxnsByClass,
				ReqsByClass:       cs.ReqsByClass,
				Requests:          cs.Requests,
				ReadRetries:       cs.ReadRetries,
				ReadUncorrectable: cs.ReadUncorrectable,
				ProgramFails:      cs.ProgramFails,
				EraseFails:        cs.EraseFails,
			}
			out.FRNG, out.HasFRNG = chip.FaultRNGState()
			st.Chips = append(st.Chips, out)
		}
	}
	return st, nil
}

// LoadState rehydrates a freshly built (or Reset) device from a captured
// state. The device's configuration must be the one the state was
// captured under — the public snapshot format embeds the config and
// rebuilds the device from it, so a mismatch here means a corrupted or
// hand-altered snapshot and is reported as an error. Validation is
// complete before any part of the state is applied only at the FTL layer
// (which verifies its own invariants); on error the device is in an
// unspecified state and must be discarded, never run.
func (d *Device) LoadState(st *DeviceState) error {
	if n := d.cfg.Geo.NumChips(); len(st.Chips) != n {
		return fmt.Errorf("ssd: snapshot has %d chips, device has %d", len(st.Chips), n)
	}
	if d.par != nil && len(st.Channels) != 0 && len(st.Channels) != len(d.ctrls) {
		// A serial capture (no channel clocks) adapts below; a partitioned
		// capture must match the channel count exactly.
		return fmt.Errorf("ssd: snapshot has %d channel clocks, partitioned device needs %d",
			len(st.Channels), len(d.ctrls))
	}
	if w := d.cfg.SeriesWindow; d.cfg.CollectSeries && w > 0 && len(st.Series) > w {
		return fmt.Errorf("ssd: snapshot series holds %d points, window is %d", len(st.Series), w)
	}
	if err := d.fl.RestoreState(st.FTL); err != nil {
		return err
	}
	d.eng.SetClock(st.Engine)
	if d.par != nil {
		for ch, ctl := range d.ctrls {
			if len(st.Channels) == 0 {
				// Serial capture hydrating a partitioned device: the model
				// state is kernel-independent (the snapshot is quiescent, so
				// no events carry over), and a sub-engine's clock only needs
				// to not be ahead of the next commit it receives. Adopt the
				// host clock; the sequence counter restarts, which preserves
				// FIFO tie-breaking for all future events.
				ctl.eng.SetClock(sim.EngineClock{Now: st.Engine.Now})
			} else {
				ctl.eng.SetClock(st.Channels[ch])
			}
		}
	}
	// A partitioned capture hydrating a serial device needs no adaptation:
	// the host clock subsumes the channel clocks (each is at most the epoch
	// horizon the host reached), so st.Channels is simply ignored.
	d.queue.SetState(st.Queue)
	d.busyIntegral = st.BusyIntegral
	d.sysBusyTime = st.SysBusyTime
	d.lastAccount = st.LastAccount
	d.emergencyGCs = st.EmergencyGCs
	d.staleFixes = st.StaleFixes
	d.failedIOs = st.FailedIOs
	d.bytesRead = st.BytesRead
	d.bytesWritten = st.BytesWritten
	d.iosDone = st.IOsDone
	d.lastCompletion = st.LastCompletion
	d.latency.ImportState(st.Latency)
	d.series = d.series[:0]
	d.series = append(d.series, st.Series...)
	d.seriesHead = 0
	i := 0
	for ch := range d.ctrls {
		for off := 0; off < d.cfg.Geo.ChipsPerChan; off++ {
			chip := d.ctrls[ch].chip(d.cfg.Geo.ChipAt(ch, off))
			in := &st.Chips[i]
			i++
			_, hasRNG := chip.FaultRNGState()
			if in.HasFRNG != hasRNG {
				return fmt.Errorf("ssd: snapshot chip %d fault stream (present=%v) does not match config (present=%v)",
					chip.ID, in.HasFRNG, hasRNG)
			}
			if in.HasFRNG {
				chip.SetFaultRNGState(in.FRNG)
			}
			cs := chip.Stats()
			cs.CellActive.SetState(in.CellActive)
			cs.BusActive.SetState(in.BusActive)
			cs.BusyAll.SetState(in.BusyAll)
			cs.BusWait = in.BusWait
			cs.PlaneUse.SetState(in.PlaneUse)
			cs.Txns = in.Txns
			cs.TxnsByClass = in.TxnsByClass
			cs.ReqsByClass = in.ReqsByClass
			cs.Requests = in.Requests
			cs.ReadRetries = in.ReadRetries
			cs.ReadUncorrectable = in.ReadUncorrectable
			cs.ProgramFails = in.ProgramFails
			cs.EraseFails = in.EraseFails
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Binary payload codec. Integers are varint/uvarint (delta-coded where
// monotone), floats are fixed 8-byte little-endian IEEE 754, booleans
// one byte. The framing (magic, version, embedded config, CRC trailer)
// belongs to the public snapshot format; this codec is versioned through
// that header.

type stateWriter struct {
	w   io.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (sw *stateWriter) write(p []byte) {
	if sw.err != nil {
		return
	}
	_, sw.err = sw.w.Write(p)
}

func (sw *stateWriter) uvarint(v uint64) { sw.write(sw.buf[:binary.PutUvarint(sw.buf[:], v)]) }
func (sw *stateWriter) varint(v int64)   { sw.write(sw.buf[:binary.PutVarint(sw.buf[:], v)]) }

func (sw *stateWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(sw.buf[:8], v)
	sw.write(sw.buf[:8])
}

func (sw *stateWriter) f64(v float64) { sw.u64(math.Float64bits(v)) }

func (sw *stateWriter) bool(v bool) {
	if v {
		sw.write([]byte{1})
	} else {
		sw.write([]byte{0})
	}
}

func (sw *stateWriter) timedCounter(st sim.TimedCounterState) {
	sw.bool(st.On)
	sw.varint(int64(st.Since))
	sw.varint(int64(st.Total))
}

func (sw *stateWriter) weightedSum(st sim.WeightedSumState) {
	sw.f64(st.Value)
	sw.varint(int64(st.Since))
	sw.f64(st.Sum)
	sw.varint(int64(st.Start))
	sw.bool(st.Began)
}

func (sw *stateWriter) clock(c sim.EngineClock) {
	sw.varint(int64(c.Now))
	sw.uvarint(c.Seq)
	sw.uvarint(c.Fired)
}

type stateReader struct {
	r   io.ByteReader
	buf [8]byte
	err error
}

func newStateReader(r io.Reader) *stateReader {
	br, ok := r.(interface {
		io.Reader
		io.ByteReader
	})
	if !ok {
		br = bufio.NewReader(r)
	}
	return &stateReader{r: br}
}

func (sr *stateReader) fail(err error) {
	if sr.err == nil && err != nil {
		sr.err = err
	}
}

func (sr *stateReader) uvarint() uint64 {
	if sr.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(sr.r)
	sr.fail(err)
	return v
}

func (sr *stateReader) varint() int64 {
	if sr.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(sr.r)
	sr.fail(err)
	return v
}

func (sr *stateReader) u64() uint64 {
	if sr.err != nil {
		return 0
	}
	for i := 0; i < 8; i++ {
		b, err := sr.r.ReadByte()
		if err != nil {
			sr.fail(err)
			return 0
		}
		sr.buf[i] = b
	}
	return binary.LittleEndian.Uint64(sr.buf[:8])
}

func (sr *stateReader) f64() float64 { return math.Float64frombits(sr.u64()) }

func (sr *stateReader) bool() bool {
	if sr.err != nil {
		return false
	}
	b, err := sr.r.ReadByte()
	if err != nil {
		sr.fail(err)
		return false
	}
	if b > 1 {
		sr.fail(fmt.Errorf("invalid boolean byte 0x%02x", b))
	}
	return b == 1
}

// count reads a uvarint length field bounded by max; the bound turns a
// corrupt length into a descriptive error instead of a huge allocation.
func (sr *stateReader) count(what string, max uint64) int {
	n := sr.uvarint()
	if n > max && sr.err == nil {
		sr.fail(fmt.Errorf("%s count %d exceeds limit %d", what, n, max))
	}
	if sr.err != nil {
		return 0
	}
	return int(n)
}

func (sr *stateReader) timedCounter() sim.TimedCounterState {
	return sim.TimedCounterState{
		On:    sr.bool(),
		Since: sim.Time(sr.varint()),
		Total: sim.Time(sr.varint()),
	}
}

func (sr *stateReader) weightedSum() sim.WeightedSumState {
	return sim.WeightedSumState{
		Value: sr.f64(),
		Since: sim.Time(sr.varint()),
		Sum:   sr.f64(),
		Start: sim.Time(sr.varint()),
		Began: sr.bool(),
	}
}

func (sr *stateReader) clock() sim.EngineClock {
	return sim.EngineClock{
		Now:   sim.Time(sr.varint()),
		Seq:   sr.uvarint(),
		Fired: sr.uvarint(),
	}
}

// Decode bounds: generous multiples of anything a real configuration
// produces, small enough that corrupt counts fail fast.
const (
	maxSnapshotPlanes  = 1 << 24
	maxSnapshotBlocks  = 1 << 24
	maxSnapshotPairs   = 1 << 32
	maxSnapshotSamples = 1 << 28
	maxSnapshotSeries  = 1 << 28
	maxSnapshotChips   = 1 << 20
	maxSnapshotChans   = 1 << 16
)

// Encode writes the state in the versioned binary payload layout.
func (st *DeviceState) Encode(w io.Writer) error {
	sw := &stateWriter{w: w}

	// Engine clocks.
	sw.clock(st.Engine)
	sw.uvarint(uint64(len(st.Channels)))
	for _, c := range st.Channels {
		sw.clock(c)
	}

	// Device-level queue.
	sw.varint(st.Queue.Admitted)
	sw.varint(st.Queue.Released)
	sw.timedCounter(st.Queue.Full)

	// Accounting.
	sw.f64(st.BusyIntegral)
	sw.varint(int64(st.SysBusyTime))
	sw.varint(int64(st.LastAccount))
	sw.varint(st.EmergencyGCs)
	sw.varint(st.StaleFixes)
	sw.varint(st.FailedIOs)
	sw.varint(st.BytesRead)
	sw.varint(st.BytesWritten)
	sw.varint(st.IOsDone)
	sw.varint(int64(st.LastCompletion))

	// Latency histogram.
	sw.varint(st.Latency.Count)
	sw.f64(st.Latency.Sum)
	sw.f64(st.Latency.SumSq)
	sw.f64(st.Latency.Min)
	sw.f64(st.Latency.Max)
	sw.varint(int64(st.Latency.Cap))
	sw.bool(st.Latency.Buckets != nil)
	if st.Latency.Buckets != nil {
		sw.uvarint(uint64(len(st.Latency.Buckets)))
		for _, c := range st.Latency.Buckets {
			sw.uvarint(c)
		}
	} else {
		sw.uvarint(uint64(len(st.Latency.Samples)))
		for _, v := range st.Latency.Samples {
			sw.f64(v)
		}
	}

	// Series.
	sw.uvarint(uint64(len(st.Series)))
	for _, p := range st.Series {
		sw.varint(p.Index)
		sw.varint(int64(p.Arrival))
		sw.varint(int64(p.Latency))
	}

	// Chips.
	sw.uvarint(uint64(len(st.Chips)))
	for i := range st.Chips {
		c := &st.Chips[i]
		sw.timedCounter(c.CellActive)
		sw.timedCounter(c.BusActive)
		sw.timedCounter(c.BusyAll)
		sw.varint(int64(c.BusWait))
		sw.weightedSum(c.PlaneUse)
		sw.varint(c.Txns)
		for _, v := range c.TxnsByClass {
			sw.varint(v)
		}
		for _, v := range c.ReqsByClass {
			sw.varint(v)
		}
		sw.varint(c.Requests)
		sw.varint(c.ReadRetries)
		sw.varint(c.ReadUncorrectable)
		sw.varint(c.ProgramFails)
		sw.varint(c.EraseFails)
		sw.bool(c.HasFRNG)
		if c.HasFRNG {
			sw.u64(c.FRNG)
		}
	}

	// FTL: the L2P map delta-coded over its sorted LPNs.
	sw.uvarint(uint64(len(st.FTL.L2P)))
	prev := int64(0)
	for _, e := range st.FTL.L2P {
		sw.uvarint(uint64(e.LPN - prev))
		prev = e.LPN
		sw.uvarint(uint64(e.PPN))
	}
	sw.varint(st.FTL.Cursor)
	sw.u64(st.FTL.RNG)
	sw.uvarint(uint64(len(st.FTL.Planes)))
	for i := range st.FTL.Planes {
		ps := &st.FTL.Planes[i]
		sw.uvarint(uint64(len(ps.Blocks)))
		for _, b := range ps.Blocks {
			sw.uvarint(uint64(b.Written))
			sw.uvarint(uint64(b.Erases))
			var flags byte
			if b.Full {
				flags |= 1
			}
			if b.Bad {
				flags |= 2
			}
			sw.write([]byte{flags})
		}
		sw.uvarint(uint64(len(ps.Free)))
		for _, b := range ps.Free {
			sw.uvarint(uint64(b))
		}
		sw.uvarint(uint64(len(ps.Spare)))
		for _, b := range ps.Spare {
			sw.uvarint(uint64(b))
		}
		sw.varint(int64(ps.Active))
	}
	sw.varint(st.FTL.HostWrites)
	sw.varint(st.FTL.GCWrites)
	sw.varint(st.FTL.GCReads)
	sw.varint(st.FTL.GCErases)
	sw.varint(st.FTL.GCRuns)
	sw.varint(st.FTL.Invalidated)
	sw.varint(st.FTL.BadBlocks)
	sw.varint(st.FTL.WLRuns)
	sw.varint(st.FTL.RetiredBlocks)
	sw.varint(st.FTL.SparesUsed)
	sw.bool(st.FTL.Degraded)

	return sw.err
}

// DecodeDeviceState parses a binary payload written by Encode. Every
// length is bounds-checked; a malformed payload yields a descriptive
// error and no partially-populated state escapes to callers.
func DecodeDeviceState(r io.Reader) (*DeviceState, error) {
	sr := newStateReader(r)
	st := &DeviceState{}

	st.Engine = sr.clock()
	if n := sr.count("channel clock", maxSnapshotChans); n > 0 {
		st.Channels = make([]sim.EngineClock, n)
		for i := range st.Channels {
			st.Channels[i] = sr.clock()
		}
	}

	st.Queue.Admitted = sr.varint()
	st.Queue.Released = sr.varint()
	st.Queue.Full = sr.timedCounter()

	st.BusyIntegral = sr.f64()
	st.SysBusyTime = sim.Time(sr.varint())
	st.LastAccount = sim.Time(sr.varint())
	st.EmergencyGCs = sr.varint()
	st.StaleFixes = sr.varint()
	st.FailedIOs = sr.varint()
	st.BytesRead = sr.varint()
	st.BytesWritten = sr.varint()
	st.IOsDone = sr.varint()
	st.LastCompletion = sim.Time(sr.varint())

	st.Latency.Count = sr.varint()
	st.Latency.Sum = sr.f64()
	st.Latency.SumSq = sr.f64()
	st.Latency.Min = sr.f64()
	st.Latency.Max = sr.f64()
	st.Latency.Cap = int(sr.varint())
	if sr.bool() {
		n := sr.count("histogram bucket", maxSnapshotSamples)
		st.Latency.Buckets = make([]uint64, n)
		for i := range st.Latency.Buckets {
			st.Latency.Buckets[i] = sr.uvarint()
		}
	} else if n := sr.count("latency sample", maxSnapshotSamples); n > 0 {
		st.Latency.Samples = make([]float64, n)
		for i := range st.Latency.Samples {
			st.Latency.Samples[i] = sr.f64()
		}
	}

	if n := sr.count("series point", maxSnapshotSeries); n > 0 {
		st.Series = make([]metrics.SeriesPoint, n)
		for i := range st.Series {
			st.Series[i].Index = sr.varint()
			st.Series[i].Arrival = sim.Time(sr.varint())
			st.Series[i].Latency = sim.Time(sr.varint())
		}
	}

	nChips := sr.count("chip", maxSnapshotChips)
	st.Chips = make([]ChipState, nChips)
	for i := range st.Chips {
		c := &st.Chips[i]
		c.CellActive = sr.timedCounter()
		c.BusActive = sr.timedCounter()
		c.BusyAll = sr.timedCounter()
		c.BusWait = sim.Time(sr.varint())
		c.PlaneUse = sr.weightedSum()
		c.Txns = sr.varint()
		for k := range c.TxnsByClass {
			c.TxnsByClass[k] = sr.varint()
		}
		for k := range c.ReqsByClass {
			c.ReqsByClass[k] = sr.varint()
		}
		c.Requests = sr.varint()
		c.ReadRetries = sr.varint()
		c.ReadUncorrectable = sr.varint()
		c.ProgramFails = sr.varint()
		c.EraseFails = sr.varint()
		c.HasFRNG = sr.bool()
		if c.HasFRNG {
			c.FRNG = sr.u64()
		}
		if sr.err != nil {
			break
		}
	}

	nPairs := sr.count("L2P mapping", maxSnapshotPairs)
	st.FTL.L2P = make([]ftl.MapPair, 0, min(nPairs, 1<<20))
	prev := int64(0)
	for i := 0; i < nPairs && sr.err == nil; i++ {
		prev += int64(sr.uvarint())
		st.FTL.L2P = append(st.FTL.L2P, ftl.MapPair{LPN: prev, PPN: int64(sr.uvarint())})
	}
	st.FTL.Cursor = sr.varint()
	st.FTL.RNG = sr.u64()
	nPlanes := sr.count("plane", maxSnapshotPlanes)
	st.FTL.Planes = make([]ftl.PlaneState2, nPlanes)
	for i := 0; i < nPlanes && sr.err == nil; i++ {
		ps := &st.FTL.Planes[i]
		nBlocks := sr.count("block", maxSnapshotBlocks)
		ps.Blocks = make([]ftl.BlockState, nBlocks)
		for b := range ps.Blocks {
			ps.Blocks[b].Written = int(sr.uvarint())
			ps.Blocks[b].Erases = int(sr.uvarint())
			flags := byte(0)
			if sr.err == nil {
				if v := sr.uvarint(); v > 3 {
					sr.fail(fmt.Errorf("invalid block flags 0x%x", v))
				} else {
					flags = byte(v)
				}
			}
			ps.Blocks[b].Full = flags&1 != 0
			ps.Blocks[b].Bad = flags&2 != 0
		}
		nFree := sr.count("free-list entry", maxSnapshotBlocks)
		ps.Free = make([]int, nFree)
		for k := range ps.Free {
			ps.Free[k] = int(sr.uvarint())
		}
		nSpare := sr.count("spare-pool entry", maxSnapshotBlocks)
		ps.Spare = make([]int, nSpare)
		for k := range ps.Spare {
			ps.Spare[k] = int(sr.uvarint())
		}
		ps.Active = int(sr.varint())
	}
	st.FTL.HostWrites = sr.varint()
	st.FTL.GCWrites = sr.varint()
	st.FTL.GCReads = sr.varint()
	st.FTL.GCErases = sr.varint()
	st.FTL.GCRuns = sr.varint()
	st.FTL.Invalidated = sr.varint()
	st.FTL.BadBlocks = sr.varint()
	st.FTL.WLRuns = sr.varint()
	st.FTL.RetiredBlocks = sr.varint()
	st.FTL.SparesUsed = sr.varint()
	st.FTL.Degraded = sr.bool()

	if sr.err != nil {
		return nil, fmt.Errorf("ssd: malformed snapshot payload: %w", sr.err)
	}
	return st, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
