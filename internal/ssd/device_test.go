package ssd

import (
	"testing"

	"sprinkler/internal/core"
	"sprinkler/internal/flash"
	"sprinkler/internal/req"
	"sprinkler/internal/sched"
	"sprinkler/internal/sim"
)

// smallConfig returns a 2-channel, 8-chip SSD that runs fast in tests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Geo.Channels = 2
	cfg.Geo.ChipsPerChan = 4
	cfg.Geo.BlocksPerPlane = 64
	cfg.Geo.PagesPerBlock = 32
	return cfg
}

// allSchedulers instantiates one of each evaluated scheduler.
func allSchedulers() []sched.Scheduler {
	return []sched.Scheduler{
		sched.NewVAS(), sched.NewPAS(),
		core.NewSPK1(), core.NewSPK2(), core.NewSPK3(),
	}
}

// seqIOs builds n back-to-back I/Os of the given size.
func seqIOs(n, pages int, kind req.Kind) []*req.IO {
	ios := make([]*req.IO, n)
	for i := range ios {
		ios[i] = req.NewIO(int64(i), kind, req.LPN(i*pages), pages, 0)
	}
	return ios
}

func TestDeviceRunsReadsToCompletionAllSchedulers(t *testing.T) {
	for _, s := range allSchedulers() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			d, err := New(smallConfig(), s)
			if err != nil {
				t.Fatal(err)
			}
			res, err := d.Run(&SliceSource{IOs: seqIOs(20, 8, req.Read)})
			if err != nil {
				t.Fatal(err)
			}
			if res.IOsCompleted != 20 {
				t.Fatalf("completed %d, want 20", res.IOsCompleted)
			}
			if res.BytesRead != 20*8*2048 {
				t.Fatalf("bytes read %d", res.BytesRead)
			}
			if res.Duration <= 0 {
				t.Fatal("zero duration")
			}
			if res.Requests != 20*8 {
				t.Fatalf("flash served %d requests, want 160", res.Requests)
			}
			if err := d.FTL().CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDeviceRunsWritesToCompletionAllSchedulers(t *testing.T) {
	for _, s := range allSchedulers() {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			d, err := New(smallConfig(), s)
			if err != nil {
				t.Fatal(err)
			}
			res, err := d.Run(&SliceSource{IOs: seqIOs(20, 8, req.Write)})
			if err != nil {
				t.Fatal(err)
			}
			if res.IOsCompleted != 20 || res.BytesWritten != 20*8*2048 {
				t.Fatalf("completed=%d written=%d", res.IOsCompleted, res.BytesWritten)
			}
		})
	}
}

func TestDeviceLatencyOrdering(t *testing.T) {
	// SPK3 must beat VAS on a workload with heavy chip collisions:
	// many small I/Os hammering overlapping stripes.
	run := func(s sched.Scheduler) sim.Time {
		d, err := New(smallConfig(), s)
		if err != nil {
			t.Fatal(err)
		}
		var ios []*req.IO
		for i := 0; i < 60; i++ {
			// Overlapping offsets: I/O i covers pages [4*(i%10), +12).
			ios = append(ios, req.NewIO(int64(i), req.Read, req.LPN(4*(i%10)), 12, 0))
		}
		res, err := d.Run(&SliceSource{IOs: ios})
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgLatency()
	}
	vas := run(sched.NewVAS())
	spk3 := run(core.NewSPK3())
	if spk3 >= vas {
		t.Fatalf("SPK3 latency %v not better than VAS %v", spk3, vas)
	}
}

func TestDeviceThroughputOrdering(t *testing.T) {
	// On a mixed random workload: SPK3 >= PAS >= VAS in bandwidth (allowing
	// small tolerance for PAS vs VAS, strict for SPK3 vs VAS).
	bw := map[string]float64{}
	for _, s := range allSchedulers() {
		d, err := New(smallConfig(), s)
		if err != nil {
			t.Fatal(err)
		}
		var ios []*req.IO
		rng := sim.NewRand(99)
		for i := 0; i < 80; i++ {
			kind := req.Read
			if rng.Bool(0.3) {
				kind = req.Write
			}
			pages := 1 + rng.Intn(16)
			start := req.LPN(rng.Intn(4096))
			ios = append(ios, req.NewIO(int64(i), kind, start, pages, 0))
		}
		res, err := d.Run(&SliceSource{IOs: ios})
		if err != nil {
			t.Fatal(err)
		}
		bw[s.Name()] = res.BandwidthKBps()
	}
	if bw["SPK3"] <= bw["VAS"] {
		t.Fatalf("SPK3 bw %.0f <= VAS bw %.0f", bw["SPK3"], bw["VAS"])
	}
}

func TestDeviceFLPCoalescing(t *testing.T) {
	// A large sequential read striped by the FTL should let SPK3 build
	// multi-request transactions; VAS should build mostly singletons.
	run := func(s sched.Scheduler) float64 {
		d, err := New(smallConfig(), s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run(&SliceSource{IOs: seqIOs(10, 64, req.Read)})
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgFLPDegree
	}
	vas := run(sched.NewVAS())
	spk3 := run(core.NewSPK3())
	if spk3 <= vas {
		t.Fatalf("SPK3 FLP degree %.2f not above VAS %.2f", spk3, vas)
	}
	if spk3 < 1.5 {
		t.Fatalf("SPK3 FLP degree %.2f suspiciously low", spk3)
	}
}

func TestDeviceTransactionReduction(t *testing.T) {
	// §5.8: over-commitment reduces the number of flash transactions.
	txns := map[string]int64{}
	for _, s := range allSchedulers() {
		d, err := New(smallConfig(), s)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.Run(&SliceSource{IOs: seqIOs(10, 64, req.Read)})
		if err != nil {
			t.Fatal(err)
		}
		txns[s.Name()] = res.Transactions
	}
	if txns["SPK3"] >= txns["VAS"] {
		t.Fatalf("SPK3 txns %d >= VAS txns %d", txns["SPK3"], txns["VAS"])
	}
}

func TestDeviceQueueStall(t *testing.T) {
	cfg := smallConfig()
	cfg.QueueDepth = 2
	d, err := New(cfg, sched.NewVAS())
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(&SliceSource{IOs: seqIOs(30, 8, req.Write)})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueueFullTime <= 0 {
		t.Fatal("depth-2 queue under 30 back-to-back I/Os never filled")
	}
}

func TestDeviceSeriesCollection(t *testing.T) {
	cfg := smallConfig()
	cfg.CollectSeries = true
	d, err := New(cfg, sched.NewPAS())
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(&SliceSource{IOs: seqIOs(15, 4, req.Read)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 15 {
		t.Fatalf("series has %d points, want 15", len(res.Series))
	}
	for _, p := range res.Series {
		if p.Latency <= 0 {
			t.Fatalf("series point with non-positive latency: %+v", p)
		}
	}
}

func TestDevicePacedArrivals(t *testing.T) {
	// I/Os arriving far apart must not overlap: utilization low, and
	// inter-chip idleness gating by system-busy keeps idleness meaningful.
	cfg := smallConfig()
	d, err := New(cfg, core.NewSPK3())
	if err != nil {
		t.Fatal(err)
	}
	var ios []*req.IO
	for i := 0; i < 5; i++ {
		ios = append(ios, req.NewIO(int64(i), req.Read, req.LPN(i*64), 4, sim.Time(i)*50*sim.Millisecond))
	}
	res, err := d.Run(&SliceSource{IOs: ios})
	if err != nil {
		t.Fatal(err)
	}
	if res.IOsCompleted != 5 {
		t.Fatalf("completed %d, want 5", res.IOsCompleted)
	}
	// Utilization is gated by system-busy time, so it complements the
	// inter-chip idleness even on a sparse workload.
	if diff := res.ChipUtilization + res.InterChipIdleness - 1; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("utilization %.3f + inter-chip idleness %.3f != 1",
			res.ChipUtilization, res.InterChipIdleness)
	}
	if res.InterChipIdleness <= 0 {
		t.Fatal("inter-chip idleness should be positive on a sparse workload")
	}
}

func TestDeviceEmptyWorkload(t *testing.T) {
	d, err := New(smallConfig(), sched.NewVAS())
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(&SliceSource{})
	if err != nil {
		t.Fatal(err)
	}
	if res.IOsCompleted != 0 {
		t.Fatal("phantom completions")
	}
}

func TestDeviceConfigValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.QueueDepth = 0
	if _, err := New(cfg, sched.NewVAS()); err == nil {
		t.Fatal("accepted zero queue depth")
	}
	if _, err := New(smallConfig(), nil); err == nil {
		t.Fatal("accepted nil scheduler")
	}
	cfg = smallConfig()
	cfg.LogicalPages = cfg.Geo.TotalPages() + 1
	if _, err := New(cfg, sched.NewVAS()); err == nil {
		t.Fatal("accepted oversubscribed logical space")
	}
}

func TestDeviceExecBreakdownSumsToOne(t *testing.T) {
	d, err := New(smallConfig(), core.NewSPK3())
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(&SliceSource{IOs: seqIOs(30, 16, req.Read)})
	if err != nil {
		t.Fatal(err)
	}
	sum := res.Exec.BusOp + res.Exec.BusContention + res.Exec.CellOp + res.Exec.Idle
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("breakdown sums to %v", sum)
	}
	for _, v := range []float64{res.Exec.BusOp, res.Exec.BusContention, res.Exec.CellOp, res.Exec.Idle} {
		if v < -1e-9 || v > 1+1e-9 {
			t.Fatalf("breakdown component out of range: %+v", res.Exec)
		}
	}
}

func TestDeviceFLPSharesSumToOne(t *testing.T) {
	d, err := New(smallConfig(), core.NewSPK3())
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.Run(&SliceSource{IOs: seqIOs(20, 32, req.Read)})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range res.FLP.Share {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("FLP shares sum to %v (%+v)", sum, res.FLP)
	}
}

func TestDeviceGCUnderWritePressure(t *testing.T) {
	// Tiny drive: hammer overwrites until GC must run, then verify the
	// device still completes everything and mappings stay sound.
	cfg := DefaultConfig()
	cfg.Geo.Channels = 2
	cfg.Geo.ChipsPerChan = 2
	cfg.Geo.DiesPerChip = 2
	cfg.Geo.PlanesPerDie = 2
	cfg.Geo.BlocksPerPlane = 8
	cfg.Geo.PagesPerBlock = 16
	cfg.GCFreeTarget = 2
	// Physical = 4 chips*2*2*8*16 = 2048 pages; logical ~60%.
	cfg.LogicalPages = 1200

	for _, s := range []sched.Scheduler{sched.NewPAS(), core.NewSPK3()} {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			d, err := New(cfg, s)
			if err != nil {
				t.Fatal(err)
			}
			rng := sim.NewRand(5)
			var ios []*req.IO
			for i := 0; i < 400; i++ {
				start := req.LPN(rng.Int63n(cfg.LogicalPages - 16))
				ios = append(ios, req.NewIO(int64(i), req.Write, start, 1+rng.Intn(8), 0))
			}
			res, err := d.Run(&SliceSource{IOs: ios})
			if err != nil {
				t.Fatal(err)
			}
			if res.IOsCompleted != 400 {
				t.Fatalf("completed %d/400", res.IOsCompleted)
			}
			if res.GC.GCRuns == 0 {
				t.Fatal("GC never ran despite overwrite pressure")
			}
			if err := d.FTL().CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestDeviceReaddressingBeatsStaleOnGC(t *testing.T) {
	// With GC churn, SPK3 (readdressing) should not pay retranslations;
	// PAS should record some when reads chase migrated pages.
	cfg := DefaultConfig()
	cfg.Geo.Channels = 2
	cfg.Geo.ChipsPerChan = 2
	cfg.Geo.DiesPerChip = 2
	cfg.Geo.PlanesPerDie = 2
	cfg.Geo.BlocksPerPlane = 8
	cfg.Geo.PagesPerBlock = 16
	cfg.GCFreeTarget = 2
	cfg.LogicalPages = 1200

	run := func(s sched.Scheduler) int64 {
		d, err := New(cfg, s)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRand(7)
		var ios []*req.IO
		for i := 0; i < 500; i++ {
			kind := req.Write
			if i%3 == 0 {
				kind = req.Read
			}
			start := req.LPN(rng.Int63n(cfg.LogicalPages - 8))
			ios = append(ios, req.NewIO(int64(i), kind, start, 1+rng.Intn(8), 0))
		}
		res, err := d.Run(&SliceSource{IOs: ios})
		if err != nil {
			t.Fatal(err)
		}
		return res.StaleRetranslations
	}
	if got := run(core.NewSPK3()); got != 0 {
		t.Fatalf("SPK3 paid %d retranslations despite readdressing", got)
	}
	// PAS may or may not hit stale windows depending on timing; just
	// verify the path doesn't corrupt anything (completion checked in run).
	_ = run(sched.NewPAS())
}

func TestDeviceFUAOrdering(t *testing.T) {
	d, err := New(smallConfig(), core.NewSPK3())
	if err != nil {
		t.Fatal(err)
	}
	a := req.NewIO(0, req.Write, 0, 4, 0)
	fua := req.NewIO(1, req.Write, 100, 2, 0)
	fua.FUA = true
	b := req.NewIO(2, req.Write, 200, 4, 0)
	res, err := d.Run(&SliceSource{IOs: []*req.IO{a, fua, b}})
	if err != nil {
		t.Fatal(err)
	}
	if res.IOsCompleted != 3 {
		t.Fatalf("completed %d/3", res.IOsCompleted)
	}
	if !(a.Done <= fua.FirstData) {
		t.Fatalf("FUA started (%v) before prior I/O completed (%v)", fua.FirstData, a.Done)
	}
	if !(fua.Done <= b.FirstData) {
		t.Fatalf("I/O after FUA started (%v) before FUA completed (%v)", b.FirstData, fua.Done)
	}
}

func TestDeviceDeterminism(t *testing.T) {
	run := func() float64 {
		d, err := New(smallConfig(), core.NewSPK3())
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRand(123)
		var ios []*req.IO
		for i := 0; i < 50; i++ {
			ios = append(ios, req.NewIO(int64(i), req.Read, req.LPN(rng.Intn(2048)), 1+rng.Intn(12), 0))
		}
		res, err := d.Run(&SliceSource{IOs: ios})
		if err != nil {
			t.Fatal(err)
		}
		return res.BandwidthKBps()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("simulation not deterministic: %v vs %v", a, b)
	}
}

func TestDeviceChipBusyFabricView(t *testing.T) {
	d, err := New(smallConfig(), core.NewSPK3())
	if err != nil {
		t.Fatal(err)
	}
	if d.ChipBusy(flash.ChipID(0)) {
		t.Fatal("fresh device reports busy chip")
	}
	if d.Outstanding(0) != 0 {
		t.Fatal("fresh device reports outstanding work")
	}
	if d.Geo().NumChips() != 8 {
		t.Fatalf("geometry plumbing broken: %d chips", d.Geo().NumChips())
	}
}
