package ssd

import (
	"context"
	"errors"
	"fmt"

	"sprinkler/internal/flash"
	"sprinkler/internal/ftl"
	"sprinkler/internal/metrics"
	"sprinkler/internal/nvmhc"
	"sprinkler/internal/req"
	"sprinkler/internal/sched"
	"sprinkler/internal/sim"
)

// IOSource supplies host I/O requests in arrival order. Next returns false
// when the workload is exhausted.
type IOSource interface {
	Next() (*req.IO, bool)
}

// SliceSource replays a fixed request list.
type SliceSource struct {
	IOs []*req.IO
	i   int
}

// Next implements IOSource.
func (s *SliceSource) Next() (*req.IO, bool) {
	if s.i >= len(s.IOs) {
		return nil, false
	}
	io := s.IOs[s.i]
	s.i++
	return io, true
}

// Device is the assembled SSD model. Create one per run with New; a
// Device cannot be reused across workloads.
type Device struct {
	cfg   Config
	eng   *sim.Engine
	sch   sched.Scheduler
	queue *nvmhc.Queue
	fl    *ftl.FTL
	ctrls []*controller

	outstanding []int // per chip: selected-but-unserved memory requests

	// ready is the incremental per-chip index of still-queued memory
	// requests: fed on admission, drained on commitment, re-pointed on
	// readdressing. Schedulers read it through the Fabric interface.
	ready *sched.ReadyIndex

	// DMA engine: memory request composition serializes here (§2.1). The
	// compose queue is head-indexed like the backlog, and the in-flight
	// composition uses a reusable timer (one composition at a time).
	// When the configured compose latency is zero, consecutive queued
	// compositions complete at the same instant; composeBatch (the
	// default) folds them into one timer event instead of bouncing
	// through the heap once per member.
	composeQ     []*req.Mem
	composeHead  int
	composing    bool
	composeM     *req.Mem
	composeTimer *sim.Timer
	composeBatch bool

	// Host front end. The backlog is a head-indexed queue: popping is
	// O(1) so admission stays linear even when an open-loop burst backs
	// thousands of requests up behind the device-level queue.
	backlogHead int
	src         IOSource
	backlog     []*req.IO
	srcStalled  bool // source pull paused at the MaxBacklog bound

	// Source arrivals chain one at a time through a reusable timer.
	arrivalIO    *req.IO
	arrivalTimer *sim.Timer

	pumping bool

	// chipBusyM mirrors each chip's R/B line as of the staged transaction
	// start/done messages the device has processed. Host-side code (the
	// scheduler's Fabric view, commit-time build arming) reads this mirror
	// instead of the chip object: on the single-engine kernel the two are
	// identical at every host event, and on the parallel kernel the chip
	// object may have run ahead of the host clock, making the mirror the
	// only causally correct view.
	chipBusyM []bool

	// flushT drains staged channel→device messages at the end of the
	// current instant on the single-engine kernel. Its lane sorts after
	// every channel lane, so it fires once all channel events of the
	// instant have staged their messages.
	flushT     *sim.Timer
	flushArmed bool

	// par drives the per-channel partitioned kernel; nil on the
	// single-engine kernel.
	par *parRunner

	// retransQ holds the fire times of pending stale-read retranslate
	// commits (finishCompose's RetranslatePenalty events), head-indexed in
	// schedule order — which is fire-time order, because the composer
	// serializes compositions and the penalty is constant. The parallel
	// kernel bounds its epoch horizon by the queue head: a retranslated
	// commit is a host event that lands on an arbitrary channel with no
	// compose-latency lookahead, so no channel may simulate past it.
	// Maintained on both kernels (serial never reads it).
	retransQ    []sim.Time
	retransHead int

	// onRetire, installed with SetIORetire, observes each host I/O after
	// it has fully completed and left every device structure — the
	// free-list recycling hook for the session/source layer.
	onRetire func(*req.IO)

	gcActive      []bool // per chip: background GC job in flight
	gcActiveCount int
	emergencyGCs  int64
	staleFixes    int64
	failedIOs     int64 // host I/Os completed with Failed set (incl. refusals)

	// Accounting.
	busyChips      int
	busyIntegral   float64
	sysBusyTime    sim.Time
	lastAccount    sim.Time
	inflight       int
	latency        sim.Histogram
	series         []metrics.SeriesPoint
	seriesHead     int // ring cursor (oldest point) in SeriesWindow mode
	bytesRead      int64
	bytesWritten   int64
	iosDone        int64
	lastCompletion sim.Time

	// sampleBuf is resultAt's per-chip sample scratch, reused across
	// Results: metrics.Result.Compute folds the samples into aggregates
	// without retaining the slice, so rendering a Result (the per-sweep-cell
	// hot path) does not allocate per chip.
	sampleBuf []metrics.ChipSample

	// transientResults marks every Result this device renders as
	// flatten-and-discard: the caller promises not to retain the
	// metrics.Result (or read its Latency histogram) past the next
	// Observe/Reset, so resultAt borrows the live latency storage
	// instead of Clone-sharing it, and the device's next Reset reuses
	// the grown sample array rather than re-growing from nil. The public
	// API layer sets this — its Run/Drain/Snapshot paths all flatten the
	// internal result immediately — while internal callers keeping
	// self-contained Results leave it off.
	transientResults bool
}

// New builds a Device with the given scheduler.
func New(cfg Config, scheduler sched.Scheduler) (*Device, error) {
	return NewWithFTLMeta(cfg, scheduler, nil)
}

// SetTransientResults declares that every metrics.Result this device
// renders is flattened and discarded before the device next observes a
// sample or resets — the public API's contract. Rendering then borrows
// the live latency storage instead of Clone-sharing it, so recycled
// devices keep their grown sample arrays across runs. Callers that
// retain Results (or read Latency later) must leave this off.
func (d *Device) SetTransientResults(on bool) { d.transientResults = on }

// NewWithFTLMeta builds a Device like New, reusing a retained FTL
// block-metadata arena (from a previously discarded device on the same
// geometry) instead of allocating one. Nil or mismatched metadata falls
// back to fresh allocation; the built device is indistinguishable either
// way.
func NewWithFTLMeta(cfg Config, scheduler sched.Scheduler, meta *ftl.BlockMeta) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if scheduler == nil {
		return nil, errors.New("ssd: nil scheduler")
	}
	fl, err := ftl.NewWithMeta(cfg.ftlConfig(), meta)
	if err != nil {
		return nil, err
	}
	d := &Device{
		cfg:         cfg,
		eng:         sim.NewEngine(),
		sch:         scheduler,
		queue:       nvmhc.NewQueue(cfg.QueueDepth),
		fl:          fl,
		outstanding: make([]int, cfg.Geo.NumChips()),
		ready:       sched.NewReadyIndex(cfg.Geo.NumChips()),
		gcActive:    make([]bool, cfg.Geo.NumChips()),
		chipBusyM:   make([]bool, cfg.Geo.NumChips()),
		sampleBuf:   make([]metrics.ChipSample, 0, cfg.Geo.NumChips()),
	}
	d.flushT = sim.NewTimer(d.flush)
	d.flushT.SetLane(int32(cfg.Geo.Channels) + 1)
	d.latency.SetCap(cfg.MetricsSampleCap)
	d.composeBatch = true
	d.composeTimer = sim.NewTimer(func(t sim.Time) {
		for {
			m := d.composeM
			d.composeM = nil
			d.composing = false
			d.finishCompose(t, m)
			// With zero compose latency the next queued composition also
			// completes at t: serve it within this event (one timer fire
			// per batch instead of per member). Completion order and
			// instants are identical to the chained path.
			if !d.composeBatch || d.cfg.ComposeLatency != 0 || d.composeHead >= len(d.composeQ) {
				break
			}
			d.composing = true
			d.composeM = d.popCompose()
		}
		d.kickComposer(t)
	})
	d.arrivalTimer = sim.NewTimer(func(now sim.Time) {
		io := d.arrivalIO
		d.arrivalIO = nil
		d.arrive(now, io)
	})
	d.buildControllers(cfg.partitioned())
	return d, nil
}

// buildControllers constructs the per-channel controllers, either all bound
// to the device's single engine or — for the partitioned kernel — each to
// its own per-channel sub-engine driven by the epoch runner.
func (d *Device) buildControllers(partitioned bool) {
	d.ctrls = make([]*controller, d.cfg.Geo.Channels)
	for ch := range d.ctrls {
		eng := d.eng
		if partitioned {
			eng = sim.NewEngine()
		}
		ctl := newController(eng, d.cfg.Geo, d.cfg.Tim, d.cfg.Faults.flashConfig(), ch)
		if !partitioned {
			ctl.noteStaged = d.noteStaged
		}
		ctl.parkOnHazard = partitioned && !d.cfg.DisableGC
		d.ctrls[ch] = ctl
	}
	if partitioned {
		d.par = newParRunner(d)
	} else {
		d.par = nil
	}
}

// noteStaged arms the end-of-instant flush on the single-engine kernel.
func (d *Device) noteStaged(now sim.Time) {
	if d.flushArmed {
		return
	}
	d.flushArmed = true
	d.eng.AtTimer(now, d.flushT)
}

// flush applies every staged channel→device message of the current
// instant, in (channel, staging order) — the same order the partitioned
// kernel's epoch barrier applies them in.
func (d *Device) flush(now sim.Time) {
	d.flushArmed = false
	for _, ctl := range d.ctrls {
		for {
			at, ok := ctl.stagedNext()
			if !ok {
				break
			}
			if at != now {
				panic(fmt.Sprintf("ssd: staged message at %v surviving past flush at %v", at, now))
			}
			d.applyStaged(ctl.popStaged())
		}
	}
}

// applyStaged runs one channel→device message in host context.
func (d *Device) applyStaged(msg stagedMsg) {
	switch msg.kind {
	case stagedTxnStart:
		d.account(msg.at)
		d.busyChips++
		d.chipBusyM[msg.chip] = true
	case stagedTxnDone:
		d.account(msg.at)
		d.busyChips--
		d.chipBusyM[msg.chip] = false
		d.pump(msg.at)
	case stagedReqDone:
		d.onFlashReqDone(msg.at, msg.r)
	default:
		panic("ssd: unknown staged message kind")
	}
}

// Reset re-initializes the device in place for a new run, as if freshly
// built by New(cfg, scheduler) — but reusing every geometry-sized arena
// the first construction allocated: the kernel's event slab, the per-chip
// controller state, the FTL's block metadata, bitmap pools and mapping
// tables, the device-level queue's tag slots, and the ready index. Only
// the geometry is fixed at construction; every per-run knob (queue depth,
// timing, GC policy, allocation scheme, metrics caps) may change between
// runs. A reset device produces a timeline — and therefore a Result —
// byte-identical to a fresh device's, which is what lets sweep runners
// recycle devices across cells.
//
// The previous run must have drained (or never started); resetting a
// device with I/Os in flight is a caller bug. The scheduler may be the
// previous run's instance (its per-run state is dropped through
// sched.StateResetter) or a fresh one.
func (d *Device) Reset(cfg Config, scheduler sched.Scheduler) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if scheduler == nil {
		return errors.New("ssd: nil scheduler")
	}
	if cfg.Geo != d.cfg.Geo {
		return fmt.Errorf("ssd: Reset geometry mismatch: device built for %d chips (%dx%d), got %dx%d",
			d.cfg.Geo.NumChips(), d.cfg.Geo.Channels, d.cfg.Geo.ChipsPerChan,
			cfg.Geo.Channels, cfg.Geo.ChipsPerChan)
	}
	if err := d.fl.Reset(cfg.ftlConfig()); err != nil {
		return err
	}
	d.eng.Reset()
	if cfg.QueueDepth == d.cfg.QueueDepth {
		d.queue.Reset()
	} else {
		d.queue = nvmhc.NewQueue(cfg.QueueDepth)
	}
	if was, want := d.cfg.partitioned(), cfg.partitioned(); was != want {
		// The kernel partitioning changed across runs: controllers, buses
		// and chips are bound to their engine at construction, so rebuild
		// them on the new layout. Rare (a per-run knob flip), and the only
		// Reset path that allocates.
		d.cfg = cfg
		d.buildControllers(want)
	} else {
		if d.par != nil {
			for _, ctl := range d.ctrls {
				ctl.eng.Reset()
			}
		}
		for _, ctl := range d.ctrls {
			ctl.reset(cfg.Tim, cfg.Faults.flashConfig())
			// DisableGC is a per-run knob that can flip without changing the
			// kernel partitioning, so re-derive the hazard-parking flag.
			ctl.parkOnHazard = d.par != nil && !cfg.DisableGC
		}
	}
	for i := range d.chipBusyM {
		d.chipBusyM[i] = false
	}
	d.flushT.Stop()
	d.flushArmed = false
	if r, ok := scheduler.(sched.StateResetter); ok {
		r.ResetState()
	}
	d.sch = scheduler
	for i := range d.outstanding {
		d.outstanding[i] = 0
	}
	d.ready.Reset()

	for i := range d.composeQ {
		d.composeQ[i] = nil
	}
	d.composeQ = d.composeQ[:0]
	d.composeHead = 0
	d.composing = false
	d.composeM = nil
	d.composeTimer.Stop()
	d.retransQ = d.retransQ[:0]
	d.retransHead = 0

	for i := range d.backlog {
		d.backlog[i] = nil
	}
	d.backlog = d.backlog[:0]
	d.backlogHead = 0
	d.src = nil
	d.srcStalled = false
	d.arrivalIO = nil
	d.arrivalTimer.Stop()
	d.pumping = false
	d.onRetire = nil

	for i := range d.gcActive {
		d.gcActive[i] = false
	}
	d.gcActiveCount = 0
	d.emergencyGCs, d.staleFixes, d.failedIOs = 0, 0, 0

	d.busyChips = 0
	d.busyIntegral = 0
	d.sysBusyTime, d.lastAccount = 0, 0
	d.inflight = 0
	d.latency.Reset(cfg.MetricsSampleCap)
	if d.cfg.CollectSeries && d.cfg.SeriesWindow > 0 {
		// The windowed ring never escapes into Results; reuse it.
		d.series = d.series[:0]
	} else {
		// Exact-mode series slices escape into the previous run's Result.
		d.series = nil
	}
	d.seriesHead = 0
	d.bytesRead, d.bytesWritten, d.iosDone = 0, 0, 0
	d.lastCompletion = 0
	d.cfg = cfg
	return nil
}

// Engine exposes the simulation engine (tests drive it directly).
func (d *Device) Engine() *sim.Engine { return d.eng }

// FTL exposes the translation layer (preconditioning, tests).
func (d *Device) FTL() *ftl.FTL { return d.fl }

// Scheduler returns the active scheduler.
func (d *Device) Scheduler() sched.Scheduler { return d.sch }

// Geo implements sched.Fabric.
func (d *Device) Geo() flash.Geometry { return d.cfg.Geo }

// Outstanding implements sched.Fabric.
func (d *Device) Outstanding(c flash.ChipID) int { return d.outstanding[int(c)] }

// ChipBusy implements sched.Fabric: the host-side R/B mirror, which
// reflects exactly the transaction starts/ends whose staged messages the
// device has processed. At every host event this equals the chip object's
// own state on the single-engine kernel; on the partitioned kernel the
// chip may have simulated ahead, and the mirror is the causal view.
func (d *Device) ChipBusy(c flash.ChipID) bool {
	return d.chipBusyM[c]
}

// Ready implements sched.Fabric: the per-chip ready index.
func (d *Device) Ready() *sched.ReadyIndex { return d.ready }

// account advances the gated busy-chip integral to now. The gate is
// "system busy": at least one host I/O outstanding (arrived, incomplete).
func (d *Device) account(now sim.Time) {
	if d.inflight > 0 {
		dt := float64(now - d.lastAccount)
		d.busyIntegral += float64(d.busyChips) * dt
		d.sysBusyTime += now - d.lastAccount
	}
	d.lastAccount = now
}

// Precondition fills fillFrac of the logical space and then overwrites
// churnFrac of it at random — the "filled by 95% with random writes just
// before the GC begins" preparation of §5.9. The fill is timing-free (it
// shapes the physical layout, not the measured timeline); FTL activity
// counters are reset afterwards. Call before Run.
func (d *Device) Precondition(fillFrac, churnFrac float64, seed uint64) {
	logical := d.cfg.logicalPages()
	fill := int64(float64(logical) * fillFrac)
	// One reusable I/O for the whole fill+churn: preconditioning touches
	// millions of pages and would otherwise allocate three objects each.
	io := req.NewIO(-1, req.Write, 0, 1, 0)
	for lpn := int64(0); lpn < fill; lpn++ {
		io.Reset(-1, req.Write, req.LPN(lpn), 1, 0)
		d.preprocess(io.Mem[0])
	}
	rng := sim.NewRand(seed + 11)
	churn := int64(float64(fill) * churnFrac)
	for i := int64(0); i < churn; i++ {
		// Sweep the pressured planes periodically instead of leaning on the
		// per-write emergency path: batched collection keeps the churn
		// phase linear in the write count.
		if i%512 == 0 {
			d.mappingGCSweep()
		}
		io.Reset(-1, req.Write, req.LPN(rng.Int63n(fill)), 1, 0)
		d.preprocess(io.Mem[0])
	}
	d.fl.ResetStats()
	d.emergencyGCs = 0
}

// mappingGCSweep runs one timing-free collection pass over every plane
// under pressure (preconditioning only).
func (d *Device) mappingGCSweep() {
	for _, pi := range d.fl.NeedGC() {
		job, err := d.fl.PlanGC(pi)
		if err != nil || job == nil {
			continue
		}
		d.applyMigrations(d.fl.CommitGC(job))
	}
}

// Run drives the workload to completion and returns the measurements.
func (d *Device) Run(src IOSource) (*metrics.Result, error) {
	return d.RunContext(context.Background(), src)
}

// RunContext drives the workload to completion, polling ctx between event
// batches. The source is pulled one request ahead of the simulation clock,
// so the request stream itself costs O(1) memory however long the workload
// is. On cancellation it returns the mid-run snapshot together with the
// context's error.
func (d *Device) RunContext(ctx context.Context, src IOSource) (*metrics.Result, error) {
	d.src = src
	d.scheduleNextArrival()
	return d.drain(ctx)
}

// Drain runs every outstanding event (submitted I/Os, GC, source arrivals)
// to completion and returns the final measurements. Session mode's
// terminal call; RunContext uses the same loop.
func (d *Device) Drain(ctx context.Context) (*metrics.Result, error) {
	return d.drain(ctx)
}

// cancelCheckEvents is how many simulation events execute between context
// polls: coarse enough to stay off the hot path, fine enough that
// cancellation lands within milliseconds of wall time.
const cancelCheckEvents = 1 << 16

func (d *Device) drain(ctx context.Context) (*metrics.Result, error) {
	if d.par != nil {
		if err := d.par.drain(ctx); err != nil {
			return d.Snapshot(), err
		}
	} else {
		for d.eng.Pending() > 0 {
			if err := ctx.Err(); err != nil {
				return d.Snapshot(), err
			}
			d.eng.Run(d.eng.Fired() + cancelCheckEvents)
		}
	}
	d.account(d.eng.Now())
	if d.inflight > 0 {
		return nil, fmt.Errorf("ssd: simulation stalled with %d I/Os in flight (%s)", d.inflight, d.sch.Name())
	}
	return d.result(), nil
}

// Submit schedules one host I/O arrival directly (session mode — no
// IOSource needed). Arrival times in the simulated past are clamped to
// the current simulation time.
func (d *Device) Submit(io *req.IO) {
	at := io.Arrival
	if at < d.eng.Now() {
		at = d.eng.Now()
		io.Arrival = at
	}
	d.eng.At(at, func(now sim.Time) { d.arrive(now, io) })
}

// Advance executes events up to the given absolute simulation time and
// then moves the clock there, leaving later events queued. Session mode's
// windowing primitive.
func (d *Device) Advance(to sim.Time) {
	if d.par != nil {
		d.par.advance(to)
	} else {
		d.eng.RunUntil(to)
	}
	d.account(d.eng.Now())
}

// Now returns the current simulation time.
func (d *Device) Now() sim.Time { return d.eng.Now() }

// SetIORetire installs the completed-I/O observer. The device calls it
// once per host I/O after the tag is released and all accounting is done,
// so the request object (and its member requests) may be recycled. Call
// before the run starts; passing nil removes the hook.
func (d *Device) SetIORetire(fn func(*req.IO)) { d.onRetire = fn }

// Inflight reports how many host I/Os have arrived but not completed.
func (d *Device) Inflight() int { return d.inflight }

// scheduleNextArrival chains host arrivals one event at a time, preserving
// source order even when arrival timestamps collide.
func (d *Device) scheduleNextArrival() {
	if d.src == nil {
		return
	}
	if d.cfg.MaxBacklog > 0 && d.backlogLen() >= d.cfg.MaxBacklog {
		// Pause the pull instead of buffering without bound; admission
		// progress (drainBacklog) resumes it.
		d.srcStalled = true
		return
	}
	d.srcStalled = false
	io, ok := d.src.Next()
	if !ok {
		return
	}
	at := io.Arrival
	if at < d.eng.Now() {
		at = d.eng.Now()
	}
	d.arrivalIO = io
	d.eng.AtTimer(at, d.arrivalTimer)
}

func (d *Device) arrive(now sim.Time, io *req.IO) {
	d.account(now)
	d.inflight++
	d.backlog = append(d.backlog, io)
	d.drainBacklog(now)
	d.scheduleNextArrival()
}

// backlogLen reports the host requests waiting for admission.
func (d *Device) backlogLen() int { return len(d.backlog) - d.backlogHead }

// popBacklog removes the backlog head in O(1), compacting the slice once
// the dead prefix dominates so memory tracks the live queue length.
func (d *Device) popBacklog() {
	d.backlog[d.backlogHead] = nil
	d.backlogHead++
	if d.backlogHead == len(d.backlog) {
		d.backlog = d.backlog[:0]
		d.backlogHead = 0
	} else if d.backlogHead >= 1024 && d.backlogHead*2 >= len(d.backlog) {
		n := copy(d.backlog, d.backlog[d.backlogHead:])
		for i := n; i < len(d.backlog); i++ {
			d.backlog[i] = nil
		}
		d.backlog = d.backlog[:n]
		d.backlogHead = 0
	}
}

// drainBacklog admits host I/Os into the device-level queue while tags are
// free: the tag is secured and the physical layout of every memory request
// is identified (core.preprocess in Algorithm 1) — no data moves yet.
//
// Admission stalls when the allocator cannot place a write even after
// emergency collection (every chip mid-GC); the I/O stays at the backlog
// head and admission retries when a GC job or an I/O completes.
func (d *Device) drainBacklog(now sim.Time) {
	admitted := false
	for d.backlogLen() > 0 && !d.queue.Full() {
		io := d.backlog[d.backlogHead]
		if io.Kind == req.Write && d.fl.Degraded() {
			// Degraded read-only mode (spare pool exhausted): writes are
			// refused at admission instead of wedging the allocator; reads
			// keep flowing. The refusal is progress, so the source pull
			// resumes below like any admission.
			d.popBacklog()
			d.refuseIO(now, io)
			admitted = true
			continue
		}
		ok := true
		for _, m := range io.Mem {
			if m.Resolved {
				continue
			}
			if !d.preprocess(m) {
				ok = false
				break
			}
		}
		if !ok {
			break
		}
		d.popBacklog()
		d.queue.Enqueue(now, io)
		for _, m := range io.Mem {
			d.ready.Add(m)
		}
		admitted = true
	}
	if admitted {
		if d.srcStalled {
			d.scheduleNextArrival()
		}
		d.pump(now)
	}
}

// refuseIO completes a host I/O as failed without servicing it (degraded
// read-only mode). The I/O never secured a tag, so there is no queue
// release; it is counted completed (with Failed set) so sessions and drains
// converge instead of stalling, but contributes no latency or byte counts.
func (d *Device) refuseIO(now sim.Time, io *req.IO) {
	io.Failed = true
	io.Done = now
	d.iosDone++
	d.failedIOs++
	d.lastCompletion = now
	d.account(now)
	d.inflight--
	if d.onRetire != nil {
		d.onRetire(io)
	}
}

// preprocess resolves a memory request's physical address, falling back to
// emergency mapping-level GC passes when the allocator runs dry (the
// background GC normally prevents this). It reports whether the request
// was resolved; false means every reclaimable chip is mid-GC and the
// caller must retry after a completion.
func (d *Device) preprocess(m *req.Mem) bool {
	err := d.fl.Preprocess(m)
	if err == nil {
		m.Resolved = true
		return true
	}
	d.emergencyGCs++
	// Each pass reclaims at most one block, so loop until the write fits
	// or nothing more can be reclaimed right now.
	for attempt := 0; attempt < 16; attempt++ {
		reclaimed := false
		for _, pi := range d.fl.NeedGC() {
			// Never touch a chip with a background GC job in flight: the
			// in-flight job's victim and destinations would be invalidated
			// under it.
			if d.gcActive[d.planeChip(pi)] {
				continue
			}
			job, jerr := d.fl.PlanGC(pi)
			if jerr != nil || job == nil {
				continue
			}
			d.applyMigrations(d.fl.CommitGC(job))
			reclaimed = true
			// Retry as soon as one block is reclaimed: full passes over
			// every pressured plane are wasted work under heavy churn.
			if err = d.fl.Preprocess(m); err == nil {
				m.Resolved = true
				return true
			}
		}
		if !reclaimed {
			if d.gcActiveCount > 0 {
				return false // wait for background GC to finish
			}
			panic(fmt.Sprintf("ssd: out of flash space with no GC in flight: %v", err))
		}
	}
	panic(fmt.Sprintf("ssd: out of flash space even after emergency GC: %v", err))
}

// pump asks the scheduler for the next commitments until it has none.
func (d *Device) pump(now sim.Time) {
	if d.pumping {
		return
	}
	d.pumping = true
	for {
		batch := d.sch.Select(now, d.queue, d)
		if len(batch) == 0 {
			break
		}
		for _, m := range batch {
			if m.State != req.StateQueued {
				panic(fmt.Sprintf("ssd: scheduler re-selected %v", m))
			}
			m.State = req.StateComposed
			m.Composed = now
			d.outstanding[int(m.Addr.Chip)]++
			d.ready.Remove(m)
			d.composeQ = append(d.composeQ, m)
		}
	}
	d.pumping = false
	d.kickComposer(now)
}

// kickComposer runs the DMA engine: one composition at a time. The queue
// is head-indexed so popping is O(1); the slice is reclaimed whenever it
// fully drains, which it does constantly at steady state.
func (d *Device) kickComposer(now sim.Time) {
	if d.composing || d.composeHead >= len(d.composeQ) {
		return
	}
	d.composing = true
	d.composeM = d.popCompose()
	d.eng.AfterTimer(d.cfg.ComposeLatency, d.composeTimer)
}

// popCompose removes and returns the compose queue's head.
func (d *Device) popCompose() *req.Mem {
	m := d.composeQ[d.composeHead]
	d.composeQ[d.composeHead] = nil
	d.composeHead++
	if d.composeHead == len(d.composeQ) {
		d.composeQ = d.composeQ[:0]
		d.composeHead = 0
	}
	return m
}

// SetComposeBatching toggles same-instant composition batching (on by
// default). The one-event-per-composition path is retained so parity
// tests can pin the batched timeline against it.
func (d *Device) SetComposeBatching(on bool) { d.composeBatch = on }

// finishCompose commits a composed request to its flash controller,
// handling stale physical addresses left by live-data migration for
// schedulers without the readdressing callback (§4.3).
func (d *Device) finishCompose(now sim.Time, m *req.Mem) {
	m.IO.NoteFirstData(now)
	if m.IO.Kind == req.Read {
		if fresh, ok := d.fl.Lookup(m.LPN); ok && fresh != m.Addr {
			d.outstanding[int(m.Addr.Chip)]--
			d.outstanding[int(fresh.Chip)]++
			m.Addr = fresh
			if !d.sch.NeedsReaddressing() {
				// The scheduler planned against a stale layout: the core
				// must re-translate before commitment.
				d.staleFixes++
				d.pushRetrans(now + d.cfg.RetranslatePenalty)
				d.eng.After(d.cfg.RetranslatePenalty, func(t sim.Time) {
					d.popRetrans(t)
					d.commit(t, m)
				})
				return
			}
		}
	}
	d.commit(now, m)
}

// pushRetrans records a pending retranslate commit's fire time. Pushes are
// fire-time monotone: the composer serializes compositions and the penalty
// is constant.
func (d *Device) pushRetrans(at sim.Time) {
	if n := len(d.retransQ); n > d.retransHead && d.retransQ[n-1] > at {
		panic("ssd: retranslate fire times out of order")
	}
	d.retransQ = append(d.retransQ, at)
}

// popRetrans retires the head entry when its commit fires.
func (d *Device) popRetrans(at sim.Time) {
	if d.retransHead >= len(d.retransQ) || d.retransQ[d.retransHead] != at {
		panic("ssd: retranslate queue out of sync")
	}
	d.retransHead++
	if d.retransHead == len(d.retransQ) {
		d.retransQ = d.retransQ[:0]
		d.retransHead = 0
	}
}

// nextRetrans peeks the earliest pending retranslate commit's fire time.
func (d *Device) nextRetrans() (sim.Time, bool) {
	if d.retransHead >= len(d.retransQ) {
		return 0, false
	}
	return d.retransQ[d.retransHead], true
}

func (d *Device) commit(now sim.Time, m *req.Mem) {
	m.State = req.StateCommitted
	m.Committed = now
	ch := d.cfg.Geo.Channel(m.Addr.Chip)
	d.ctrls[ch].commit(now, flash.Request{Op: m.Op(), Addr: m.Addr, Token: m}, d.chipBusyM[m.Addr.Chip])
}

// onFlashReqDone routes flash-level completions: host memory requests
// finish their I/O bookkeeping; GC steps advance their job state machine.
func (d *Device) onFlashReqDone(now sim.Time, r flash.Request) {
	switch tok := r.Token.(type) {
	case *req.Mem:
		d.finishMem(now, tok, r.Failed)
	case *gcStep:
		tok.advance(now, r.Failed)
	default:
		panic(fmt.Sprintf("ssd: unknown token %T", r.Token))
	}
}

// rewriteOutcome classifies program-fail recovery attempts.
type rewriteOutcome int

const (
	// rewriteReissued: the page was remapped and the write re-entered the
	// DMA compose queue; the member is not done.
	rewriteReissued rewriteOutcome = iota
	// rewriteStale: the host overwrote the LPN while the failed program
	// was in flight, so the lost data was already stale; complete as-is.
	rewriteStale
	// rewriteExhausted: the rewrite ladder is spent or no replacement page
	// could be allocated; the host I/O fails.
	rewriteExhausted
)

// recoverProgramFail handles a host write whose program reported failure:
// the FTL remaps the page to a fresh block and the member re-enters the DMA
// compose queue. Routing the rewrite through the composer is what keeps the
// parallel kernel's parity contract: the re-commit lands at least
// ComposeLatency ahead of now, inside the epoch lookahead.
func (d *Device) recoverProgramFail(now sim.Time, m *req.Mem) rewriteOutcome {
	if int(m.Rewrites) >= d.cfg.Faults.RewriteMax {
		return rewriteExhausted
	}
	a, ok, err := d.fl.RemapProgramFail(m.LPN, m.Addr)
	if err != nil {
		return rewriteExhausted
	}
	if !ok {
		return rewriteStale
	}
	m.Rewrites++
	m.Addr = a
	m.State = req.StateComposed
	m.Composed = now
	d.outstanding[int(a.Chip)]++
	d.composeQ = append(d.composeQ, m)
	d.kickComposer(now)
	return rewriteReissued
}

func (d *Device) finishMem(now sim.Time, m *req.Mem, failed bool) {
	d.outstanding[int(m.Addr.Chip)]--
	if failed {
		if m.IO.Kind == req.Write {
			switch d.recoverProgramFail(now, m) {
			case rewriteReissued:
				return
			case rewriteStale:
				// Lost data was stale; the member completes as served.
			case rewriteExhausted:
				m.IO.Failed = true
			}
		} else {
			// Uncorrectable read: the retry ladder is exhausted and the
			// payload is lost; the host I/O completes with an error.
			m.IO.Failed = true
		}
	}
	m.State = req.StateDone
	m.Finished = now
	io := m.IO
	// Capture the kind before completion: completeIO may retire the I/O
	// into a free list, after which io must not be read.
	kind := io.Kind
	addr := m.Addr
	if io.MarkDone(m.Index) {
		d.completeIO(now, io)
	}
	if kind == req.Write && !d.cfg.DisableGC {
		d.maybeStartGC(now, addr)
	}
	// No pump here: member completions arrive in bursts within one
	// transaction, and the controller's TxnDone callback pumps once for
	// all of them — scheduling work per transaction, not per page.
}

func (d *Device) completeIO(now sim.Time, io *req.IO) {
	io.Done = now
	d.latency.Observe(float64(io.Latency()))
	if io.Kind == req.Read {
		d.bytesRead += io.Bytes(d.cfg.Geo.PageSize)
	} else {
		d.bytesWritten += io.Bytes(d.cfg.Geo.PageSize)
	}
	d.iosDone++
	if io.Failed {
		d.failedIOs++
	}
	d.lastCompletion = now
	if d.cfg.CollectSeries {
		p := metrics.SeriesPoint{Index: d.iosDone, Arrival: io.Arrival, Latency: io.Latency()}
		if w := d.cfg.SeriesWindow; w > 0 && len(d.series) >= w {
			// Windowed mode: overwrite the oldest point so long runs hold
			// at most w points instead of one per completed I/O.
			d.series[d.seriesHead] = p
			d.seriesHead++
			if d.seriesHead == w {
				d.seriesHead = 0
			}
		} else {
			d.series = append(d.series, p)
		}
	}
	d.queue.Release(now, io)
	d.account(now)
	d.inflight--
	if d.onRetire != nil {
		// The I/O has left the queue, the ready index, and every
		// controller; the hook's owner may recycle it from here on.
		// Retire before resuming admission: with a bounded backlog the
		// next source pull happens synchronously inside drainBacklog,
		// and it should find this object in the free list.
		d.onRetire(io)
	}
	d.drainBacklog(now)
}

// result snapshots the measurements after the run. Duration ends at the
// last I/O completion so trailing idle time does not dilute throughput.
func (d *Device) result() *metrics.Result {
	end := d.lastCompletion
	if end == 0 {
		end = d.eng.Now()
	}
	return d.resultAt(end)
}

// Snapshot reports the measurements accumulated so far without disturbing
// the run: callable mid-simulation (between events) for live bandwidth,
// latency and utilization readings. Mid-run durations use the current
// simulation time so windowed rates are well defined.
func (d *Device) Snapshot() *metrics.Result {
	d.account(d.eng.Now())
	return d.resultAt(d.eng.Now())
}

// seriesSnapshot returns the collected series in completion order. Exact
// mode hands out the accumulated slice (the device is done appending by
// result time; mid-run snapshots only read a prefix); windowed mode
// unrolls the ring into a fresh in-order copy, so the reusable ring never
// escapes into a Result.
func (d *Device) seriesSnapshot() []metrics.SeriesPoint {
	if d.cfg.SeriesWindow <= 0 {
		return d.series
	}
	if len(d.series) == 0 {
		return nil
	}
	out := make([]metrics.SeriesPoint, 0, len(d.series))
	out = append(out, d.series[d.seriesHead:]...)
	out = append(out, d.series[:d.seriesHead]...)
	return out
}

func (d *Device) resultAt(end sim.Time) *metrics.Result {
	// Pre-sorting the live histogram lets the clone below inherit sorted
	// storage: the Result's percentile reads then skip the copy-on-sort.
	// Appends after this snapshot don't reorder the sorted prefix, so the
	// clone stays consistent even while the run continues.
	d.latency.PreSort()
	var lat sim.Histogram
	if d.transientResults {
		lat = d.latency.Borrow()
	} else {
		lat = d.latency.Clone()
	}
	r := &metrics.Result{
		Scheduler:           d.sch.Name(),
		Duration:            end,
		IOsCompleted:        d.iosDone,
		BytesRead:           d.bytesRead,
		BytesWritten:        d.bytesWritten,
		Latency:             lat,
		QueueFullTime:       d.queue.FullTime(end),
		StaleRetranslations: d.staleFixes,
		EmergencyGCs:        d.emergencyGCs,
		GC:                  d.fl.Stats(),
		FailedIOs:           d.failedIOs,
		DegradedMode:        d.fl.Degraded(),
		Series:              d.seriesSnapshot(),
	}
	samples := d.sampleBuf[:0]
	for ch := range d.ctrls {
		for off := 0; off < d.cfg.Geo.ChipsPerChan; off++ {
			chip := d.ctrls[ch].chip(d.cfg.Geo.ChipAt(ch, off))
			st := chip.Stats()
			samples = append(samples, metrics.ChipSample{
				Busy:              st.BusyAll.Total(end),
				CellActive:        st.CellActive.Total(end),
				BusActive:         st.BusActive.Total(end),
				BusWait:           st.BusWait,
				PlaneUseIntegral:  st.PlaneUse.Integral(end),
				Txns:              st.Txns,
				TxnsByClass:       st.TxnsByClass,
				ReqsByClass:       st.ReqsByClass,
				Requests:          st.Requests,
				ReadRetries:       st.ReadRetries,
				ReadUncorrectable: st.ReadUncorrectable,
				ProgramFails:      st.ProgramFails,
				EraseFails:        st.EraseFails,
			})
		}
	}
	r.Compute(d.cfg.Geo, samples, d.busyIntegral, d.sysBusyTime)
	d.sampleBuf = samples
	return r
}
