package ssd

import (
	"context"
	"sync/atomic"

	"sprinkler/internal/sim"
)

// Parallel per-channel device kernel.
//
// The serial kernel runs every component on one engine whose same-instant
// order is (lane, schedule order): host events (lane 0) first, then each
// channel's events (lane = channel+1) in channel order, then the staged
// message flush (last lane). Channels interact with the host only through
// two narrow edges:
//
//   - host → channel: commits. The committing host events are DMA
//     compose-timer fires (at least ComposeLatency past the current epoch
//     start for new compositions, never before the already-scheduled
//     fire) and stale-read retranslations (at the recorded fire times the
//     device's retranslate queue exposes). Processing a staged completion
//     can also commit — GC chains its next phase, a host write completion
//     can arm a collection — but GC migrations are chip-local, so those
//     commits always target the channel that staged the completion.
//   - channel → host: staged messages (transaction start/done, member
//     completions), applied at end-of-instant in (channel, staging order).
//
// That gives a classic conservative lookahead: between one epoch start T
// and the horizon S = min(T+ComposeLatency, pending compose fire, pending
// retranslate fire), no commit from the host's own schedule can occur, so
// every channel's events in [T, S) depend only on state fixed at T — they
// can run concurrently, one goroutine per channel group (phase A). The
// host then replays its own events and the staged messages
// instant-by-instant over [T, S) (phase B), exactly as the serial flush
// would have. When the horizon collapses (a commit is due at T), the
// epoch degenerates to a single instant processed in serial lane order.
//
// With GC enabled, staged-completion processing commits mid-epoch. The
// epoch then runs in rounds: a channel staging a hazardous completion (a
// GC step, or a host write that can arm a collection) parks its
// sub-engine at the staging instant, phase B advances only through the
// earliest parked instant — delivering the hazard's chip-local commits to
// the channel parked exactly there — and the next round resumes it. See
// step for the mechanics.
//
// Because per-engine schedule order restricted to a lane equals the serial
// engine's (lane, seq) order restricted to that lane, the partitioned
// execution replays the serial timeline event-for-event: Results are
// byte-identical. The parity suite (TestParallelMatchesSerial) pins this.
type parRunner struct {
	d       *Device
	workers int

	// Worker pool, live only while a drain/advance call runs. Phase A
	// hands every worker the epoch deadline; workers claim channels off
	// the shared cursor and run their sub-engines to the deadline.
	start  chan sim.Time
	done   chan struct{}
	cursor atomic.Int32
	live   bool

	// engH orders the channel sub-engines by their next pending instant,
	// replacing the per-epoch linear min-scan; stgH orders the channels
	// with undrained staged messages by head timestamp during phase B.
	// Both key ties by channel index, so equal-time pops come in channel
	// order — the serial kernel's lane order. Storage is preallocated
	// here once; epoch maintenance allocates nothing.
	engH chHeap
	stgH chHeap
}

func newParRunner(d *Device) *parRunner {
	w := d.cfg.ParallelChannels
	if w > d.cfg.Geo.Channels {
		w = d.cfg.Geo.Channels
	}
	p := &parRunner{d: d, workers: w}
	p.engH.init(d.cfg.Geo.Channels)
	p.stgH.init(d.cfg.Geo.Channels)
	return p
}

// chEnt is one channel's key in a chHeap.
type chEnt struct {
	at sim.Time
	ch int32
}

// chHeap is a small indexed min-heap over channels keyed (at, ch). pos
// tracks each channel's slot so an entry can be moved or removed in place.
type chHeap struct {
	ents []chEnt
	pos  []int32 // channel -> slot in ents, -1 when absent
}

func (h *chHeap) init(n int) {
	h.ents = make([]chEnt, 0, n)
	h.pos = make([]int32, n)
	for i := range h.pos {
		h.pos[i] = -1
	}
}

func (h *chHeap) clear() {
	for _, e := range h.ents {
		h.pos[e.ch] = -1
	}
	h.ents = h.ents[:0]
}

func (h *chHeap) less(i, j int) bool {
	return h.ents[i].at < h.ents[j].at ||
		(h.ents[i].at == h.ents[j].at && h.ents[i].ch < h.ents[j].ch)
}

func (h *chHeap) swap(i, j int) {
	h.ents[i], h.ents[j] = h.ents[j], h.ents[i]
	h.pos[h.ents[i].ch] = int32(i)
	h.pos[h.ents[j].ch] = int32(j)
}

func (h *chHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *chHeap) down(i int) {
	for {
		l := 2*i + 1
		if l >= len(h.ents) {
			return
		}
		m := l
		if r := l + 1; r < len(h.ents) && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h.swap(i, m)
		i = m
	}
}

// set inserts, moves, or (when !present) removes channel ch's entry.
func (h *chHeap) set(ch int32, at sim.Time, present bool) {
	i := h.pos[ch]
	switch {
	case present && i >= 0:
		old := h.ents[i].at
		h.ents[i].at = at
		if at < old {
			h.up(int(i))
		} else if at > old {
			h.down(int(i))
		}
	case present:
		h.ents = append(h.ents, chEnt{at: at, ch: ch})
		h.pos[ch] = int32(len(h.ents) - 1)
		h.up(len(h.ents) - 1)
	case i >= 0:
		last := len(h.ents) - 1
		h.swap(int(i), last)
		h.ents = h.ents[:last]
		h.pos[ch] = -1
		if int(i) < last {
			h.down(int(i))
			h.up(int(i))
		}
	}
}

func (h *chHeap) min() (chEnt, bool) {
	if len(h.ents) == 0 {
		return chEnt{}, false
	}
	return h.ents[0], true
}

// startPool spins up the phase-A workers for one top-level call.
func (p *parRunner) startPool() {
	if p.live {
		return
	}
	p.start = make(chan sim.Time)
	p.done = make(chan struct{})
	for w := 0; w < p.workers; w++ {
		go func() {
			for deadline := range p.start {
				for {
					i := int(p.cursor.Add(1)) - 1
					if i >= len(p.d.ctrls) {
						break
					}
					p.d.ctrls[i].eng.RunUntil(deadline)
				}
				p.done <- struct{}{}
			}
		}()
	}
	p.live = true
}

// stopPool shuts the workers down; channel state is fully synchronized
// (the pool is only ever stopped between epochs).
func (p *parRunner) stopPool() {
	if !p.live {
		return
	}
	close(p.start)
	p.live = false
}

// runChannels advances every channel sub-engine through deadline: phase A.
// The channel-claiming cursor plus the start/done handshakes give the
// goroutines their happens-before edges with the host.
func (p *parRunner) runChannels(deadline sim.Time) {
	if !p.live || p.workers <= 1 {
		for _, ctl := range p.d.ctrls {
			ctl.eng.RunUntil(deadline)
		}
		return
	}
	p.cursor.Store(0)
	for w := 0; w < p.workers; w++ {
		p.start <- deadline
	}
	for w := 0; w < p.workers; w++ {
		<-p.done
	}
}

// syncEng refreshes one channel's engine-heap entry from its sub-engine.
func (p *parRunner) syncEng(ch int32) {
	at, ok := p.d.ctrls[ch].eng.NextAt()
	p.engH.set(ch, at, ok)
}

// rebuildEng resynchronizes the engine heap with every sub-engine — after
// phase A (all channels advanced) or a collapsed instant (commits at u may
// have scheduled channel work).
func (p *parRunner) rebuildEng() {
	p.engH.clear()
	for i := range p.d.ctrls {
		p.syncEng(int32(i))
	}
}

// nextInstant is the earliest pending instant across every engine: the
// host engine's peek against the channel heap's root. Staged queues are
// empty between epochs, so they need no scan here.
func (p *parRunner) nextInstant() (sim.Time, bool) {
	t, ok := p.d.eng.NextAt()
	if e, eok := p.engH.min(); eok && (!ok || e.at < t) {
		t, ok = e.at, true
	}
	return t, ok
}

// applyStagedAt drains every channel's staged messages timestamped u, in
// (channel, staging order) — the serial flush order.
func (p *parRunner) applyStagedAt(u sim.Time) bool {
	any := false
	for _, ctl := range p.d.ctrls {
		for {
			at, ok := ctl.stagedNext()
			if !ok || at != u {
				break
			}
			p.d.applyStaged(ctl.popStaged())
			any = true
		}
	}
	return any
}

// step runs one epoch of events at instants <= limit. It returns false —
// without advancing any clock — when no such events remain.
func (p *parRunner) step(limit sim.Time) bool {
	d := p.d
	T, ok := p.nextInstant()
	if !ok || T > limit {
		return false
	}

	// Horizon: no commit can land in [T, S) from the host's own schedule.
	// New compositions started at or after T complete at >=
	// T+ComposeLatency; the in-flight one (if any) completes at its
	// already-scheduled fire time; a pending stale-read retranslation
	// commits at its recorded fire time with no compose lookahead, so it
	// bounds the horizon too.
	S := T + d.cfg.ComposeLatency
	if at, pending := d.composeTimer.When(); pending && at < S {
		S = at
	}
	if at, pending := d.nextRetrans(); pending && at < S {
		S = at
	}
	if limit < sim.MaxTime && S > limit+1 {
		S = limit + 1
	}

	if S <= T {
		// The lookahead collapsed (a commit is due at T): process the
		// single instant T in serial lane order.
		p.instant(T)
		return true
	}

	// The epoch runs in rounds. With GC disabled there is exactly one:
	// phase A (channels run [T, S) concurrently, staging messages), then
	// phase B (host events and staged messages, instant by instant). With
	// GC enabled, host-side processing of a staged completion can commit
	// new flash traffic at the staging instant — but only onto the staging
	// channel itself (GC migrations are chip-local), so that channel parks
	// there: its sub-engine caps phase A at the hazard instant
	// (controller.stage → CapRun). Phase B then advances only through the
	// earliest parked instant uH, delivering the hazard's commits to the
	// channel parked exactly there, and the next round resumes it. Rounds
	// repeat until no channel parks before S; each round consumes at least
	// one hazard, so the loop terminates.
	for {
		p.runChannels(S - 1)
		p.rebuildEng()

		uH := S // no parked channel: this round finishes the epoch
		for _, ctl := range d.ctrls {
			if at, capped := ctl.eng.CappedAt(); capped && at < uH {
				uH = at
			}
		}

		// Phase B: host events and staged messages through min(S-1, uH),
		// in instant order. Host events here never commit (compose and
		// retranslate fires are all >= S); staged hazard processing can,
		// but only onto channels parked at the current instant. The staged
		// heap is re-seeded each round: parked channels stage more
		// messages when they resume.
		p.stgH.clear()
		for i, ctl := range d.ctrls {
			if at, sok := ctl.stagedNext(); sok {
				p.stgH.set(int32(i), at, true)
			}
		}
		for {
			u, ok := d.eng.NextAt()
			if e, sok := p.stgH.min(); sok && (!ok || e.at < u) {
				u, ok = e.at, true
			}
			if !ok || u >= S || u > uH {
				break
			}
			d.eng.RunUntil(u)
			// Drain every channel's messages at u in (channel, staging
			// order): equal-time heap pops come in ascending channel index.
			for {
				e, sok := p.stgH.min()
				if !sok || e.at != u {
					break
				}
				ctl := d.ctrls[e.ch]
				for {
					at, mok := ctl.stagedNext()
					if !mok || at != u {
						break
					}
					d.applyStaged(ctl.popStaged())
				}
				at, mok := ctl.stagedNext()
				p.stgH.set(e.ch, at, mok)
			}
			// Events the staged processing scheduled back at u (admission
			// chains) run after the flush, as on the serial kernel.
			d.eng.RunUntil(u)
		}

		if uH >= S {
			break
		}
		// Unpark the channels whose hazard instant was just processed;
		// channels parked later keep their cap for a following round.
		for _, ctl := range d.ctrls {
			if at, capped := ctl.eng.CappedAt(); capped && at <= uH {
				ctl.eng.Uncap()
			}
		}
	}
	d.eng.RunUntil(S - 1)
	return true
}

// instant processes one collapsed-horizon instant u in serial lane order:
// host events, each channel's events in channel order, staged messages,
// repeated until the instant quiesces (a commit at u can arm a build at u
// when the decision window is zero, which stages more work at u).
func (p *parRunner) instant(u sim.Time) {
	d := p.d
	for {
		progress := false
		if at, ok := d.eng.NextAt(); ok && at <= u {
			d.eng.RunUntil(u)
			progress = true
		}
		for _, ctl := range d.ctrls {
			if at, ok := ctl.eng.NextAt(); ok && at <= u {
				ctl.eng.RunUntil(u)
				progress = true
			}
		}
		if p.applyStagedAt(u) {
			progress = true
		}
		if !progress {
			// Hazard caps set while draining this instant are spent (every
			// staged message at u has been applied); clear them so the next
			// epoch's phase A does not falsely park.
			for _, ctl := range d.ctrls {
				ctl.eng.Uncap()
			}
			// Commits at u may have scheduled channel work; resync the
			// engine heap before the next epoch peeks it.
			p.rebuildEng()
			return
		}
	}
}

// pollEpochs is how many epochs run between context polls during a drain.
const pollEpochs = 1024

// drain runs every engine dry, in epochs. The caller (Device.drain) does
// the final accounting and stall check.
func (p *parRunner) drain(ctx context.Context) error {
	p.startPool()
	defer p.stopPool()
	p.rebuildEng()
	for n := 0; ; n++ {
		if n%pollEpochs == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		if !p.step(sim.MaxTime) {
			return nil
		}
	}
}

// advance runs epochs through `to` and then parks every clock exactly at
// `to` — Device.Advance's contract on the partitioned kernel.
func (p *parRunner) advance(to sim.Time) {
	p.startPool()
	defer p.stopPool()
	p.rebuildEng()
	for p.step(to) {
	}
	p.d.eng.RunUntil(to)
	for _, ctl := range p.d.ctrls {
		ctl.eng.RunUntil(to)
	}
}
