package experiments

import (
	"fmt"
	"strings"

	"sprinkler/internal/core"
	"sprinkler/internal/ftl"
	"sprinkler/internal/metrics"
	"sprinkler/internal/req"
	"sprinkler/internal/sched"
	"sprinkler/internal/sim"
	"sprinkler/internal/ssd"
	"sprinkler/internal/trace"
)

// NewScheduler builds a fresh scheduler by evaluation name. The public
// API selects schedulers by Config.Scheduler; this constructor exists for
// studies (like the ablation below) that instantiate internal scheduler
// variants directly.
func NewScheduler(name string) (sched.Scheduler, error) {
	switch name {
	case "VAS":
		return sched.NewVAS(), nil
	case "PAS":
		return sched.NewPAS(), nil
	case "SPK1":
		return core.NewSPK1(), nil
	case "SPK2":
		return core.NewSPK2(), nil
	case "SPK3":
		return core.NewSPK3(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown scheduler %q", name)
	}
}

// internalPlatform mirrors Platform on the internal config type, for the
// ablation's non-public scheduler knobs.
func internalPlatform(chips int) ssd.Config {
	pub := Platform(chips)
	cfg := ssd.DefaultConfig()
	cfg.Geo.Channels = pub.Channels
	cfg.Geo.ChipsPerChan = pub.ChipsPerChan
	cfg.Geo.BlocksPerPlane = pub.BlocksPerPlane
	cfg.Geo.PagesPerBlock = pub.PagesPerBlock
	return cfg
}

// cloneIOs regenerates request objects (IOs carry mutable state and cannot
// be replayed across devices).
func cloneIOs(ios []*req.IO) []*req.IO {
	out := make([]*req.IO, len(ios))
	for i, io := range ios {
		c := req.NewIO(io.ID, io.Kind, io.Start, io.Pages, io.Arrival)
		c.FUA = io.FUA
		out[i] = c
	}
	return out
}

// Ablation isolates the design choices DESIGN.md calls out:
//
//   - over-commitment depth (FARO's Slots knob);
//   - FARO's overlap-depth/connectivity priority versus plain FIFO
//     commitment at the same depth;
//   - the flash controller's transaction-type decision window;
//   - the FTL page-allocation scheme underneath Sprinkler.
//
// Each row reports bandwidth, average FLP degree and intra-chip idleness
// on one mixed workload.
type AblationRow struct {
	Name        string
	BandwidthKB float64
	FLPDegree   float64
	IntraIdle   float64
	Latency     sim.Time
}

// RunAblation executes the four studies on the cfs4 workload (high
// transactional locality, mixed read/write — the regime where every knob
// matters).
func RunAblation(opts Options) ([]AblationRow, error) {
	opts = opts.Defaults()
	base := internalPlatform(opts.Chips)
	logical := base.Geo.TotalPages() * 9 / 10
	w, _ := trace.ByName("cfs4")
	ios, err := trace.Generate(w, trace.GenConfig{
		Instructions: opts.scaled(2000, 150),
		LogicalPages: logical,
		PageSize:     base.Geo.PageSize,
		AlignStride:  int64(base.Geo.NumChips()),
		Seed:         opts.Seed,
	})
	if err != nil {
		return nil, err
	}

	run := func(name string, cfg ssd.Config, s sched.Scheduler) (AblationRow, error) {
		dev, err := ssd.New(cfg, s)
		if err != nil {
			return AblationRow{}, err
		}
		res, err := dev.Run(&ssd.SliceSource{IOs: cloneIOs(ios)})
		if err != nil {
			return AblationRow{}, fmt.Errorf("ablation %s: %w", name, err)
		}
		return AblationRow{
			Name:        name,
			BandwidthKB: res.BandwidthKBps(),
			FLPDegree:   res.AvgFLPDegree,
			IntraIdle:   res.IntraChipIdleness,
			Latency:     res.AvgLatency(),
		}, nil
	}

	var rows []AblationRow
	add := func(r AblationRow, err error) error {
		if err != nil {
			return err
		}
		rows = append(rows, r)
		return nil
	}

	// 1) Over-commitment depth sweep (RIOS + FARO, varying Slots).
	for _, slots := range []int{1, 2, 4, 8, 16, 32} {
		s := &core.Sprinkler{UseRIOS: true, UseFARO: true, Slots: slots, GroupCap: 48}
		if err := add(run(fmt.Sprintf("overcommit/slots=%d", slots), base, s)); err != nil {
			return nil, err
		}
	}

	// 2) FARO priority vs FIFO at the same depth.
	if err := add(run("priority/FARO(slots=16)", base, core.NewSPK3())); err != nil {
		return nil, err
	}
	noPrio := &core.Sprinkler{UseRIOS: true, UseFARO: false, Slots: 16, GroupCap: 48}
	if err := add(run("priority/FIFO(slots=16)", base, noPrio)); err != nil {
		return nil, err
	}

	// 3) Decision-window sweep.
	for _, win := range []sim.Time{500, 2 * sim.Microsecond, 8 * sim.Microsecond} {
		cfg := base
		cfg.Tim.DecisionWindow = win
		if err := add(run(fmt.Sprintf("window/%v", win), cfg, core.NewSPK3())); err != nil {
			return nil, err
		}
	}

	// 4) Page-allocation scheme under SPK3.
	for _, alloc := range []ftl.Allocation{ftl.AllocChannelFirst, ftl.AllocWayFirst, ftl.AllocPlaneFirst} {
		cfg := base
		cfg.Allocation = alloc
		if err := add(run("alloc/"+alloc.String(), cfg, core.NewSPK3())); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// FormatAblation renders the study.
func FormatAblation(rows []AblationRow) string {
	header := []string{"configuration", "KB/s", "FLP degree", "intra-idle%", "avg lat"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Name,
			fmtF(r.BandwidthKB, 0),
			fmtF(r.FLPDegree, 2),
			fmtF(100*r.IntraIdle, 1),
			r.Latency.String(),
		})
	}
	var b strings.Builder
	b.WriteString("Ablation: Sprinkler design choices on cfs4\n")
	b.WriteString(metrics.Table(header, cells))
	return b.String()
}
