package experiments

import (
	"context"
	"fmt"
	"strings"

	"sprinkler"
	"sprinkler/internal/metrics"
)

// Fig17Point is one (chips, transferKB, scheduler, gc?) bandwidth sample
// of the garbage-collection and readdressing-callback study (§5.9).
type Fig17Point struct {
	Chips       int
	TransferKB  int
	Scheduler   string
	GC          bool
	BandwidthKB float64
	GCRuns      int64
}

// fig17Platform keeps planes small so preconditioning to 95% is fast and
// the measured writes quickly push planes to the GC threshold. Scaled-down
// runs shrink the per-plane capacity further: preconditioning cost is
// linear in physical pages and dominates the figure's runtime. The
// options' kernel knob rides along: GC-active cells run the partitioned
// kernel too.
func fig17Platform(chips int, o Options) sprinkler.Config {
	cfg := Platform(chips)
	cfg.ParallelChannels = o.Parallel
	cfg.BlocksPerPlane = 24
	cfg.PagesPerBlock = 64
	if o.Scale < 0.5 {
		cfg.BlocksPerPlane = 12
		cfg.PagesPerBlock = 32
	}
	cfg.GCFreeTarget = 3
	cfg.LogicalPages = cfg.TotalPages() * 85 / 100
	return cfg
}

// RunFig17 measures random-write bandwidth on pristine versus fragmented
// (GC-heavy) devices for VAS, PAS and SPK3. One Grid: scheduler axis ×
// chips axis × a pristine/fragmented axis (the fragmented point attaches
// the §5.9 precondition) × transfer-size source axis, all cells
// concurrent.
func RunFig17(opts Options) ([]Fig17Point, error) {
	opts = opts.Defaults()
	chipCounts := []int{64, 256}
	sizesKB := []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	if opts.Scale < 0.5 {
		chipCounts = []int{64}
		sizesKB = []int{4, 16, 64, 256, 1024}
	}
	schedulers := []string{"VAS", "PAS", "SPK3"}
	totalKB := opts.scaled(32*1024, 2*1024)

	gcAxis := sprinkler.Axis{Name: "gc", Values: []sprinkler.AxisValue{
		{Label: "gc=false", Apply: func(c *sprinkler.Config) { c.DisableGC = true }},
		{Label: "gc=true", Precondition: &sprinkler.Precondition{
			FillFrac: 0.95, ChurnFrac: 0.5, Seed: opts.Seed,
		}},
	}}
	chipLabel := func(chips int) string { return fmt.Sprintf("%dc", chips) }
	cells := sprinkler.Grid{
		Name:       "fig17",
		Base:       fig17Platform(chipCounts[0], opts),
		Schedulers: schedulerKinds(schedulers),
		Vary: []sprinkler.Axis{
			platformAxis("chips", chipCounts, chipLabel,
				func(chips int) sprinkler.Config { return fig17Platform(chips, opts) }),
			gcAxis,
		},
		Sources: fixedSources(sizesKB, opts.Seed, true, false, volumeCount(totalKB)),
	}.Cells()

	chips := countByLabel(chipCounts, chipLabel)
	sizes := kbByLabel(sizesKB)
	var points []Fig17Point
	for _, cr := range opts.runner().Run(context.Background(), cells) {
		if cr.Err != nil {
			return nil, cr.Err
		}
		points = append(points, Fig17Point{
			Chips:       chips[cr.Labels["chips"]],
			TransferKB:  sizes[cr.Labels["workload"]],
			Scheduler:   cr.Labels["scheduler"],
			GC:          cr.Labels["gc"] == "gc=true",
			BandwidthKB: cr.Result.BandwidthKBps,
			GCRuns:      cr.Result.GCRuns,
		})
	}
	return points, nil
}

// FormatFig17 renders per-platform bandwidth tables with and without GC.
func FormatFig17(points []Fig17Point) string {
	type key struct {
		chips, kb int
	}
	cells := map[key]map[string]Fig17Point{}
	var chips, sizes []int
	seenC, seenS := map[int]bool{}, map[int]bool{}
	var cols []string
	seenCol := map[string]bool{}
	for _, p := range points {
		k := key{p.Chips, p.TransferKB}
		if cells[k] == nil {
			cells[k] = map[string]Fig17Point{}
		}
		col := p.Scheduler
		if p.GC {
			col += "-GC"
		}
		cells[k][col] = p
		if !seenC[p.Chips] {
			seenC[p.Chips] = true
			chips = append(chips, p.Chips)
		}
		if !seenS[p.TransferKB] {
			seenS[p.TransferKB] = true
			sizes = append(sizes, p.TransferKB)
		}
		if !seenCol[col] {
			seenCol[col] = true
			cols = append(cols, col)
		}
	}
	var b strings.Builder
	for _, c := range chips {
		header := append([]string{"transferKB"}, cols...)
		var rows [][]string
		for _, kb := range sizes {
			row := []string{fmt.Sprint(kb)}
			for _, col := range cols {
				row = append(row, fmtF(cells[key{c, kb}][col].BandwidthKB, 0))
			}
			rows = append(rows, row)
		}
		fmt.Fprintf(&b, "Figure 17: write bandwidth (KB/s) with and without GC — %d flash chips\n%s\n",
			c, metrics.Table(header, rows))
	}
	return b.String()
}
