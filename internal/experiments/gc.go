package experiments

import (
	"fmt"
	"strings"

	"sprinkler/internal/metrics"
	"sprinkler/internal/req"
	"sprinkler/internal/ssd"
	"sprinkler/internal/trace"
)

// Fig17Point is one (chips, transferKB, scheduler, gc?) bandwidth sample
// of the garbage-collection and readdressing-callback study (§5.9).
type Fig17Point struct {
	Chips       int
	TransferKB  int
	Scheduler   string
	GC          bool
	BandwidthKB float64
	GCRuns      int64
}

// fig17Platform keeps planes small so preconditioning to 95% is fast and
// the measured writes quickly push planes to the GC threshold. Scaled-down
// runs shrink the per-plane capacity further: preconditioning cost is
// linear in physical pages and dominates the figure's runtime.
func fig17Platform(chips int, scale float64) ssd.Config {
	cfg := Platform(chips)
	cfg.Geo.BlocksPerPlane = 24
	cfg.Geo.PagesPerBlock = 64
	if scale < 0.5 {
		cfg.Geo.BlocksPerPlane = 12
		cfg.Geo.PagesPerBlock = 32
	}
	cfg.GCFreeTarget = 3
	cfg.LogicalPages = cfg.Geo.TotalPages() * 85 / 100
	return cfg
}

// RunFig17 measures random-write bandwidth on pristine versus fragmented
// (GC-heavy) devices for VAS, PAS and SPK3.
func RunFig17(opts Options) ([]Fig17Point, error) {
	opts = opts.Defaults()
	chipCounts := []int{64, 256}
	sizesKB := []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	if opts.Scale < 0.5 {
		chipCounts = []int{64}
		sizesKB = []int{4, 16, 64, 256, 1024}
	}
	schedulers := []string{"VAS", "PAS", "SPK3"}
	totalKB := opts.scaled(32*1024, 2*1024)

	var out []Fig17Point
	for _, chips := range chipCounts {
		cfg := fig17Platform(chips, opts.Scale)
		for _, kb := range sizesKB {
			pages := kb * 1024 / cfg.Geo.PageSize
			if pages < 1 {
				pages = 1
			}
			count := totalKB / kb
			if count < 8 {
				count = 8
			}
			mk := func() ([]*req.IO, error) {
				return trace.GenerateFixed(trace.FixedConfig{
					Count: count, Pages: pages, Kind: req.Write,
					LogicalPages: cfg.LogicalPages, Seed: opts.Seed + uint64(kb),
				})
			}
			for _, s := range schedulers {
				for _, gc := range []bool{false, true} {
					ios, err := mk()
					if err != nil {
						return nil, err
					}
					scheduler, err := NewScheduler(s)
					if err != nil {
						return nil, err
					}
					runCfg := cfg
					runCfg.DisableGC = !gc
					dev, err := ssd.New(runCfg, scheduler)
					if err != nil {
						return nil, err
					}
					if gc {
						dev.Precondition(0.95, 0.5, opts.Seed)
					}
					res, err := dev.Run(&ssd.SliceSource{IOs: ios})
					if err != nil {
						return nil, fmt.Errorf("fig17 %s gc=%v: %w", s, gc, err)
					}
					out = append(out, Fig17Point{
						Chips: chips, TransferKB: kb, Scheduler: s, GC: gc,
						BandwidthKB: res.BandwidthKBps(),
						GCRuns:      res.GC.GCRuns,
					})
				}
			}
		}
	}
	return out, nil
}

// FormatFig17 renders per-platform bandwidth tables with and without GC.
func FormatFig17(points []Fig17Point) string {
	type key struct {
		chips, kb int
	}
	cells := map[key]map[string]Fig17Point{}
	var chips, sizes []int
	seenC, seenS := map[int]bool{}, map[int]bool{}
	var cols []string
	seenCol := map[string]bool{}
	for _, p := range points {
		k := key{p.Chips, p.TransferKB}
		if cells[k] == nil {
			cells[k] = map[string]Fig17Point{}
		}
		col := p.Scheduler
		if p.GC {
			col += "-GC"
		}
		cells[k][col] = p
		if !seenC[p.Chips] {
			seenC[p.Chips] = true
			chips = append(chips, p.Chips)
		}
		if !seenS[p.TransferKB] {
			seenS[p.TransferKB] = true
			sizes = append(sizes, p.TransferKB)
		}
		if !seenCol[col] {
			seenCol[col] = true
			cols = append(cols, col)
		}
	}
	var b strings.Builder
	for _, c := range chips {
		header := append([]string{"transferKB"}, cols...)
		var rows [][]string
		for _, kb := range sizes {
			row := []string{fmt.Sprint(kb)}
			for _, col := range cols {
				row = append(row, fmtF(cells[key{c, kb}][col].BandwidthKB, 0))
			}
			rows = append(rows, row)
		}
		fmt.Fprintf(&b, "Figure 17: write bandwidth (KB/s) with and without GC — %d flash chips\n%s\n",
			c, metrics.Table(header, rows))
	}
	return b.String()
}
