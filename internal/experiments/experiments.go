// Package experiments reproduces every table and figure of the paper's
// evaluation (§5). Each runner builds the platform of §5.1, drives the
// workloads through the five schedulers (VAS, PAS, SPK1, SPK2, SPK3) and
// formats the same rows/series the paper reports.
//
// Runners accept an Options scale so the full evaluation can be shrunk for
// tests and benchmarks while keeping every code path exercised.
package experiments

import (
	"fmt"
	"math"

	"sprinkler/internal/core"
	"sprinkler/internal/metrics"
	"sprinkler/internal/req"
	"sprinkler/internal/sched"
	"sprinkler/internal/ssd"
	"sprinkler/internal/trace"
)

// Options controls experiment scale.
type Options struct {
	// Scale in (0, 1] multiplies instruction counts and sweep densities.
	// 1.0 reproduces the full evaluation; tests use ~0.05.
	Scale float64
	// Chips overrides the platform size for the per-workload evaluation
	// (default 64, the smallest platform of §5.1).
	Chips int
	// Seed perturbs the synthetic traces.
	Seed uint64
}

// Defaults fills unset options.
func (o Options) Defaults() Options {
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
	if o.Chips <= 0 {
		o.Chips = 64
	}
	return o
}

// scaled returns max(min, round(n*scale)).
func (o Options) scaled(n int, min int) int {
	v := int(math.Round(float64(n) * o.Scale))
	if v < min {
		v = min
	}
	return v
}

// SchedulerNames lists the evaluated schedulers in the paper's order.
var SchedulerNames = []string{"VAS", "PAS", "SPK1", "SPK2", "SPK3"}

// NewScheduler builds a fresh scheduler by evaluation name.
func NewScheduler(name string) (sched.Scheduler, error) {
	switch name {
	case "VAS":
		return sched.NewVAS(), nil
	case "PAS":
		return sched.NewPAS(), nil
	case "SPK1":
		return core.NewSPK1(), nil
	case "SPK2":
		return core.NewSPK2(), nil
	case "SPK3":
		return core.NewSPK3(), nil
	default:
		return nil, fmt.Errorf("experiments: unknown scheduler %q", name)
	}
}

// Platform builds the §5.1 SSD configuration for a total chip count,
// spreading chips over channels the way the paper's platforms do
// (64 chips = 8 channels × 8; 1024 chips = 32 × 32).
func Platform(chips int) ssd.Config {
	cfg := ssd.DefaultConfig()
	channels := int(math.Round(math.Sqrt(float64(chips))))
	if channels < 1 {
		channels = 1
	}
	if channels > 32 {
		channels = 32
	}
	for chips%channels != 0 {
		channels--
	}
	cfg.Geo.Channels = channels
	cfg.Geo.ChipsPerChan = chips / channels
	// Keep per-plane block counts modest so very large platforms stay
	// within memory; capacity is irrelevant to the scheduling behaviour.
	cfg.Geo.BlocksPerPlane = 256
	cfg.Geo.PagesPerBlock = 128
	return cfg
}

// runTrace drives one workload trace through a named scheduler on cfg.
func runTrace(cfg ssd.Config, schedName, workload string, ios []*req.IO) (*metrics.Result, error) {
	s, err := NewScheduler(schedName)
	if err != nil {
		return nil, err
	}
	dev, err := ssd.New(cfg, s)
	if err != nil {
		return nil, err
	}
	res, err := dev.Run(&ssd.SliceSource{IOs: ios})
	if err != nil {
		return nil, fmt.Errorf("%s/%s: %w", schedName, workload, err)
	}
	res.Workload = workload
	return res, nil
}

// cloneIOs regenerates request objects (IOs carry mutable state and cannot
// be replayed across devices).
func cloneIOs(ios []*req.IO) []*req.IO {
	out := make([]*req.IO, len(ios))
	for i, io := range ios {
		c := req.NewIO(io.ID, io.Kind, io.Start, io.Pages, io.Arrival)
		c.FUA = io.FUA
		out[i] = c
	}
	return out
}

// Evaluation holds the 5-scheduler × 16-workload sweep behind Figures 6,
// 10, 11, 13 and 14.
type Evaluation struct {
	Workloads []string
	// Results[scheduler][workload]
	Results map[string]map[string]*metrics.Result
}

// RunEvaluation executes the sweep once; the per-figure formatters slice it.
func RunEvaluation(opts Options) (*Evaluation, error) {
	opts = opts.Defaults()
	cfg := Platform(opts.Chips)
	logical := cfg.Geo.TotalPages() * 9 / 10
	instructions := opts.scaled(3000, 120)

	ev := &Evaluation{Results: make(map[string]map[string]*metrics.Result)}
	for _, name := range SchedulerNames {
		ev.Results[name] = make(map[string]*metrics.Result)
	}
	for _, w := range trace.Table1() {
		ev.Workloads = append(ev.Workloads, w.Name)
		ios, err := trace.Generate(w, trace.GenConfig{
			Instructions: instructions,
			LogicalPages: logical,
			PageSize:     cfg.Geo.PageSize,
			MaxPages:     256, // cap at 512 KB per request, §2.1's "several bytes to MB"
			AlignStride:  int64(cfg.Geo.NumChips()),
			Seed:         opts.Seed,
		})
		if err != nil {
			return nil, err
		}
		for _, name := range SchedulerNames {
			res, err := runTrace(cfg, name, w.Name, cloneIOs(ios))
			if err != nil {
				return nil, err
			}
			ev.Results[name][w.Name] = res
		}
	}
	return ev, nil
}

// fmtF renders a float with the given decimals.
func fmtF(v float64, dec int) string { return fmt.Sprintf("%.*f", dec, v) }
