// Package experiments reproduces every table and figure of the paper's
// evaluation (§5) on top of the public sprinkler API. Each study is
// declared as a sprinkler.Grid — axes over scheduler, workload, and
// topology knobs, cross-producted into cells with deterministic shared
// seeds — and executed by sprinkler.Runner, which fans the cells across
// CPU cores and recycles devices through a DeviceArena (reuse is
// behaviour-preserving, so concurrent arena-recycled results are
// identical to serial fresh-built ones). Results are indexed back to
// their grid coordinates through CellResult.Labels.
//
// Runners accept an Options scale so the full evaluation can be shrunk for
// tests and benchmarks while keeping every code path exercised.
package experiments

import (
	"context"
	"fmt"
	"math"
	"os"

	"sprinkler"
)

// Options controls experiment scale.
type Options struct {
	// Scale in (0, 1] multiplies instruction counts and sweep densities.
	// 1.0 reproduces the full evaluation; tests use ~0.05.
	Scale float64
	// Chips overrides the platform size for the per-workload evaluation
	// (default 64, the smallest platform of §5.1).
	Chips int
	// Seed perturbs the synthetic traces.
	Seed uint64
	// Workers caps sweep concurrency; <= 0 uses every CPU core.
	Workers int
	// NoReuse builds a fresh device per cell instead of recycling
	// through the runner's DeviceArena (A/B profiling of construction
	// cost; results are identical either way).
	NoReuse bool
	// Parallel sets Config.ParallelChannels on every cell: the partitioned
	// per-channel kernel with this many worker threads. Results are
	// byte-identical, GC-active and fault-armed cells included; cells whose
	// configuration has no cross-channel lookahead to exploit (fewer than
	// two channels) fall back to the serial kernel.
	Parallel int
	// Faults shapes the fault-injection study's base spec (retry ladder,
	// rewrite bound, spare fraction, seed); zero fields take the study
	// defaults. Only RunFaultStudy consults it — the paper's figures stay
	// fault-free.
	Faults sprinkler.FaultSpec
	// LoadState, when set, hydrates every cell of the 5-scheduler ×
	// 16-workload evaluation from this warm-state snapshot file (written
	// by SaveWarmState) instead of running on a fresh drive, so an
	// aged-drive evaluation pays fresh-drive cost. The snapshot's platform
	// must match the evaluation's (Chips/Parallel flags included);
	// scheduler and workload axes sweep freely over the one warm state.
	LoadState string
}

// Defaults fills unset options.
func (o Options) Defaults() Options {
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
	if o.Chips <= 0 {
		o.Chips = 64
	}
	return o
}

// scaled returns max(min, round(n*scale)).
func (o Options) scaled(n int, min int) int {
	v := int(math.Round(float64(n) * o.Scale))
	if v < min {
		v = min
	}
	return v
}

// runner builds the sweep runner for these options.
func (o Options) runner() sprinkler.Runner {
	return sprinkler.Runner{Workers: o.Workers, NoReuse: o.NoReuse}
}

// SchedulerNames lists the evaluated schedulers in the paper's order.
var SchedulerNames = []string{"VAS", "PAS", "SPK1", "SPK2", "SPK3"}

// schedulerKinds converts names to the public axis values.
func schedulerKinds(names []string) []sprinkler.SchedulerKind {
	out := make([]sprinkler.SchedulerKind, len(names))
	for i, n := range names {
		out[i] = sprinkler.SchedulerKind(n)
	}
	return out
}

// Platform builds the §5.1 SSD configuration for a total chip count,
// spreading chips over channels the way the paper's platforms do
// (64 chips = 8 channels × 8; 1024 chips = 32 × 32).
func Platform(chips int) sprinkler.Config {
	return sprinkler.Platform(chips)
}

// platform builds the evaluation platform carrying the options' kernel
// knob.
func (o Options) platform() sprinkler.Config {
	cfg := Platform(o.Chips)
	cfg.ParallelChannels = o.Parallel
	return cfg
}

// Evaluation holds the 5-scheduler × 16-workload sweep behind Figures 6,
// 10, 11, 13 and 14.
type Evaluation struct {
	Workloads []string
	// Results[scheduler][workload]
	Results map[string]map[string]*sprinkler.Result
}

// RunEvaluation executes the sweep once — all cells concurrently, devices
// recycled per topology — and the per-figure formatters slice it. The
// grid derives one seed per workload (the scheduler axis is excluded from
// seed derivation), so every scheduler replays the identical trace.
func RunEvaluation(opts Options) (*Evaluation, error) {
	opts = opts.Defaults()
	workloads := sprinkler.Workloads()
	grid := sprinkler.Grid{
		Base:       opts.platform(),
		Schedulers: schedulerKinds(SchedulerNames),
		Workloads:  workloads,
		Requests:   opts.scaled(3000, 120),
		MaxPages:   256, // cap at 512 KB per request, §2.1's "several bytes to MB"
		Seed:       opts.Seed,
	}
	runner := opts.runner()
	if opts.LoadState != "" {
		snap, err := readWarmState(opts.LoadState)
		if err != nil {
			return nil, err
		}
		if !snap.CompatibleConfig(grid.Base) {
			return nil, fmt.Errorf("experiments: warm state %s was captured on a different platform than the evaluation's (re-save it with the same -chips/-parallel-channels)", opts.LoadState)
		}
		arena := sprinkler.NewDeviceArena()
		arena.RegisterSnapshot("warm", snap)
		runner.Arena = arena
		grid.Snapshot = "warm"
	}
	cells := grid.Cells()

	ev := &Evaluation{Workloads: workloads, Results: make(map[string]map[string]*sprinkler.Result)}
	for _, name := range SchedulerNames {
		ev.Results[name] = make(map[string]*sprinkler.Result)
	}
	for _, cr := range runner.Run(context.Background(), cells) {
		if cr.Err != nil {
			return nil, cr.Err
		}
		ev.Results[cr.Labels["scheduler"]][cr.Labels["workload"]] = cr.Result
	}
	return ev, nil
}

// SaveWarmState preconditions the evaluation platform to GC steady state
// (the §5.9 parameters: fill 95%, churn 50%) and writes the device's warm
// state to path, so later evaluations with Options.LoadState hydrate from
// it instead of replaying the warm-up per cell.
func SaveWarmState(opts Options, path string) error {
	opts = opts.Defaults()
	dev, err := sprinkler.New(opts.platform())
	if err != nil {
		return err
	}
	dev.Precondition(0.95, 0.5, opts.Seed)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = dev.Checkpoint(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// readWarmState decodes a snapshot file written by SaveWarmState.
func readWarmState(path string) (*sprinkler.DeviceSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return sprinkler.ReadSnapshot(f)
}

// fmtF renders a float with the given decimals.
func fmtF(v float64, dec int) string { return fmt.Sprintf("%.*f", dec, v) }
