package experiments

import (
	"context"
	"fmt"
	"strings"

	"sprinkler"
	"sprinkler/internal/metrics"
)

// This file is the workload-structure study: the paper's headline claim is
// that Sprinkler's win grows with workload diversity, and the combinator
// layer makes structure itself a sweep axis. The burstiness sweep holds
// the mean arrival rate fixed and squeezes the same request stream into
// ever-narrower on-windows, so the axis isolates arrival burstiness — the
// regime where request over-commitment (FARO) should absorb bursts that
// stall a conventional queue.

// BurstPoint is one (duty, scheduler) sample of the burstiness sweep.
type BurstPoint struct {
	// DutyPct is the on-window share of the arrival envelope in percent
	// (100 = smooth Poisson arrivals, 12.5 = the same mean rate compressed
	// into 1/8th of the timeline).
	DutyPct      float64
	Scheduler    string
	AvgLatencyMS float64
	P99LatencyMS float64
	BandwidthMB  float64
	Utilization  float64
}

// RunBurstiness sweeps arrival burstiness × scheduler at a fixed mean
// arrival rate: an msnfs1 stream is rewritten as open-loop Poisson
// arrivals at rate/duty inside on-windows of 2 ms, separated by off-gaps
// sized so every duty point delivers the same long-run request rate. The
// workload-structure axis is declared entirely as SourceSpec combinators
// (WithPoisson + WithBurst), so every scheduler replays the identical
// modulated trace per duty point.
func RunBurstiness(opts Options) ([]BurstPoint, error) {
	opts = opts.Defaults()
	n := opts.scaled(4000, 200)
	const meanRate = 150_000.0 // requests per simulated second
	const onNS = int64(2_000_000)
	duties := []float64{1, 0.5, 0.25, 0.125}

	base := sprinkler.WorkloadSpec{Name: "msnfs1", Requests: n, MaxPages: 64}.Spec()
	var sources []sprinkler.SourceSpec
	for _, duty := range duties {
		offNS := int64(float64(onNS)*(1/duty)) - onNS
		spec := base.WithPoisson(meanRate / duty)
		if offNS > 0 {
			spec = spec.WithBurst(onNS, offNS)
		}
		sources = append(sources, spec.Relabel(dutyLabel(duty)))
	}

	cfg := opts.platform()
	cfg.MaxBacklog = 4096 // bursts back thousands of arrivals up; keep memory flat
	cells := sprinkler.Grid{
		Name:       "burst",
		Base:       cfg,
		Schedulers: schedulerKinds(SchedulerNames),
		Sources:    sources,
		Seed:       opts.Seed,
	}.Cells()

	var points []BurstPoint
	duty := map[string]float64{}
	for _, d := range duties {
		duty[dutyLabel(d)] = d * 100
	}
	for _, cr := range opts.runner().Run(context.Background(), cells) {
		if cr.Err != nil {
			return nil, cr.Err
		}
		points = append(points, BurstPoint{
			DutyPct:      duty[cr.Labels["workload"]],
			Scheduler:    cr.Labels["scheduler"],
			AvgLatencyMS: float64(cr.Result.AvgLatencyNS) / 1e6,
			P99LatencyMS: float64(cr.Result.P99LatencyNS) / 1e6,
			BandwidthMB:  cr.Result.BandwidthKBps / 1024,
			Utilization:  cr.Result.ChipUtilization,
		})
	}
	return points, nil
}

func dutyLabel(duty float64) string { return fmt.Sprintf("duty=%g%%", duty*100) }

// FormatBurstiness renders the sweep: per-scheduler average and tail
// latency against burst duty cycle at constant mean load.
func FormatBurstiness(points []BurstPoint) string {
	bySched := map[string]map[float64]BurstPoint{}
	var scheds []string
	var duties []float64
	seenS, seenD := map[string]bool{}, map[float64]bool{}
	for _, p := range points {
		if bySched[p.Scheduler] == nil {
			bySched[p.Scheduler] = map[float64]BurstPoint{}
		}
		bySched[p.Scheduler][p.DutyPct] = p
		if !seenS[p.Scheduler] {
			seenS[p.Scheduler] = true
			scheds = append(scheds, p.Scheduler)
		}
		if !seenD[p.DutyPct] {
			seenD[p.DutyPct] = true
			duties = append(duties, p.DutyPct)
		}
	}
	var b strings.Builder
	render := func(title string, cell func(BurstPoint) string) {
		header := []string{"duty%"}
		header = append(header, scheds...)
		var rows [][]string
		for _, d := range duties {
			row := []string{fmtF(d, 1)}
			for _, s := range scheds {
				row = append(row, cell(bySched[s][d]))
			}
			rows = append(rows, row)
		}
		b.WriteString(title + "\n")
		b.WriteString(metrics.Table(header, rows))
	}
	render("Burstiness sweep: average latency (ms) vs arrival duty cycle at constant mean rate", func(p BurstPoint) string {
		return fmtF(p.AvgLatencyMS, 3)
	})
	b.WriteString("\n")
	render("Burstiness sweep: P99 latency (ms)", func(p BurstPoint) string {
		return fmtF(p.P99LatencyMS, 3)
	})
	b.WriteString("\n")
	render("Burstiness sweep: chip utilization (%)", func(p BurstPoint) string {
		return fmtF(100*p.Utilization, 1)
	})
	return b.String()
}
