package experiments

import (
	"fmt"
	"strings"

	"sprinkler"
	"sprinkler/internal/metrics"
	"sprinkler/internal/trace"
)

// Table1Report prints the workload characteristics table (Table 1).
func Table1Report() string {
	header := []string{"trace", "readMB", "writeMB", "readKinsn", "writeKinsn", "rand-R%", "rand-W%", "avgR(KB)", "avgW(KB)", "locality"}
	var rows [][]string
	for _, w := range trace.Table1() {
		rows = append(rows, []string{
			w.Name,
			fmt.Sprint(w.ReadMB), fmt.Sprint(w.WriteMB),
			fmt.Sprint(w.ReadInsns), fmt.Sprint(w.WriteInsns),
			fmtF(w.ReadRandom, 2), fmtF(w.WriteRandom, 2),
			fmtF(w.AvgReadKB(), 1), fmtF(w.AvgWriteKB(), 1),
			w.TxnLocality.String(),
		})
	}
	return "Table 1: workload characteristics\n" + metrics.Table(header, rows)
}

// row builds one per-workload metric row across schedulers.
func (ev *Evaluation) row(workload string, cell func(*sprinkler.Result) string) []string {
	row := []string{workload}
	for _, s := range SchedulerNames {
		row = append(row, cell(ev.Results[s][workload]))
	}
	return row
}

func (ev *Evaluation) table(title string, cell func(*sprinkler.Result) string) string {
	header := append([]string{"workload"}, SchedulerNames...)
	var rows [][]string
	for _, w := range ev.Workloads {
		rows = append(rows, ev.row(w, cell))
	}
	return title + "\n" + metrics.Table(header, rows)
}

// Fig10a formats I/O bandwidth (KB/s) per scheduler and workload.
func (ev *Evaluation) Fig10a() string {
	return ev.table("Figure 10a: I/O bandwidth (KB/s)", func(r *sprinkler.Result) string {
		return fmtF(r.BandwidthKBps, 0)
	})
}

// Fig10b formats IOPS.
func (ev *Evaluation) Fig10b() string {
	return ev.table("Figure 10b: IOPS", func(r *sprinkler.Result) string {
		return fmtF(r.IOPS, 0)
	})
}

// Fig10c formats average device-level latency in ns.
func (ev *Evaluation) Fig10c() string {
	return ev.table("Figure 10c: average I/O latency (ns)", func(r *sprinkler.Result) string {
		return fmt.Sprint(r.AvgLatencyNS)
	})
}

// Fig10d formats queue stall time normalized to VAS.
func (ev *Evaluation) Fig10d() string {
	header := append([]string{"workload"}, SchedulerNames...)
	var rows [][]string
	for _, w := range ev.Workloads {
		base := float64(ev.Results["VAS"][w].QueueStallNS)
		row := []string{w}
		for _, s := range SchedulerNames {
			v := float64(ev.Results[s][w].QueueStallNS)
			if base > 0 {
				row = append(row, fmtF(v/base, 3))
			} else {
				row = append(row, "0.000")
			}
		}
		rows = append(rows, row)
	}
	return "Figure 10d: queue stall time (normalized to VAS)\n" + metrics.Table(header, rows)
}

// Fig6 formats chip utilization for VAS, PAS, and the full-potential
// scenario (parallelism dependency relaxed + high transactional locality,
// i.e. SPK3).
func (ev *Evaluation) Fig6() string {
	header := []string{"workload", "VAS(typical)", "PAS(improved)", "potential(SPK3)"}
	var rows [][]string
	for _, w := range ev.Workloads {
		rows = append(rows, []string{
			w,
			fmtF(100*ev.Results["VAS"][w].ChipUtilization, 1),
			fmtF(100*ev.Results["PAS"][w].ChipUtilization, 1),
			fmtF(100*ev.Results["SPK3"][w].ChipUtilization, 1),
		})
	}
	return "Figure 6: chip utilization and improvement potential (%)\n" + metrics.Table(header, rows)
}

// Fig11a formats inter-chip idleness (%).
func (ev *Evaluation) Fig11a() string {
	return ev.table("Figure 11a: inter-chip idleness (%)", func(r *sprinkler.Result) string {
		return fmtF(100*r.InterChipIdleness, 1)
	})
}

// Fig11b formats intra-chip idleness (%).
func (ev *Evaluation) Fig11b() string {
	return ev.table("Figure 11b: intra-chip idleness (%)", func(r *sprinkler.Result) string {
		return fmtF(100*r.IntraChipIdleness, 1)
	})
}

// Fig13 formats the execution-time breakdown for PAS and SPK3 (§5.5).
func Fig13(ev *Evaluation) string {
	var b strings.Builder
	for _, s := range []string{"PAS", "SPK3"} {
		header := []string{"workload", "bus-op%", "bus-contention%", "memory-op%", "idle%"}
		var rows [][]string
		for _, w := range ev.Workloads {
			e := ev.Results[s][w].Exec
			rows = append(rows, []string{
				w,
				fmtF(100*e.BusOp, 1), fmtF(100*e.BusContention, 1),
				fmtF(100*e.CellOp, 1), fmtF(100*e.Idle, 1),
			})
		}
		fmt.Fprintf(&b, "Figure 13 (%s): execution time breakdown\n%s\n", s, metrics.Table(header, rows))
	}
	return b.String()
}

// Fig14 formats the FLP breakdown for PAS, SPK1, SPK2 and SPK3 (§5.6).
func Fig14(ev *Evaluation) string {
	var b strings.Builder
	for _, s := range []string{"PAS", "SPK1", "SPK2", "SPK3"} {
		header := []string{"workload", "NON-PAL%", "PAL1%", "PAL2%", "PAL3%"}
		var rows [][]string
		for _, w := range ev.Workloads {
			f := ev.Results[s][w].FLPShares
			rows = append(rows, []string{
				w,
				fmtF(100*f[0], 1), fmtF(100*f[1], 1),
				fmtF(100*f[2], 1), fmtF(100*f[3], 1),
			})
		}
		fmt.Fprintf(&b, "Figure 14 (%s): FLP breakdown\n%s\n", s, metrics.Table(header, rows))
	}
	return b.String()
}

// Summary condenses the headline claims: SPK3 vs VAS/PAS ratios averaged
// over the sixteen workloads (EXPERIMENTS.md tracks these against §1).
func (ev *Evaluation) Summary() string {
	var bwVsVAS, bwVsPAS, latVsVAS, stallVsVAS float64
	var utilVAS, utilPAS, utilSPK3 float64
	var interVAS, interSPK3, intraVAS, intraSPK3 float64
	var txnVAS, txnSPK3 float64
	var degPAS, degSPK3 float64
	n := float64(len(ev.Workloads))
	for _, w := range ev.Workloads {
		vas, pas, spk3 := ev.Results["VAS"][w], ev.Results["PAS"][w], ev.Results["SPK3"][w]
		bwVsVAS += spk3.BandwidthKBps / vas.BandwidthKBps
		bwVsPAS += spk3.BandwidthKBps / pas.BandwidthKBps
		latVsVAS += 1 - float64(spk3.AvgLatencyNS)/float64(vas.AvgLatencyNS)
		if vas.QueueStallNS > 0 {
			stallVsVAS += 1 - float64(spk3.QueueStallNS)/float64(vas.QueueStallNS)
		} else {
			stallVsVAS++
		}
		utilVAS += vas.ChipUtilization
		utilPAS += pas.ChipUtilization
		utilSPK3 += spk3.ChipUtilization
		interVAS += vas.InterChipIdleness
		interSPK3 += spk3.InterChipIdleness
		intraVAS += vas.IntraChipIdleness
		intraSPK3 += spk3.IntraChipIdleness
		txnVAS += float64(vas.Transactions)
		txnSPK3 += float64(spk3.Transactions)
		degPAS += pas.AvgFLPDegree
		degSPK3 += spk3.AvgFLPDegree
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Headline summary (means over %d workloads)\n", len(ev.Workloads))
	fmt.Fprintf(&b, "  SPK3 bandwidth vs VAS:         %.2fx (paper: >= 2.2x)\n", bwVsVAS/n)
	fmt.Fprintf(&b, "  SPK3 bandwidth vs PAS:         %.2fx (paper: >= 1.8x)\n", bwVsPAS/n)
	fmt.Fprintf(&b, "  SPK3 latency reduction vs VAS: %.1f%% (paper: 59.1-92.3%%)\n", 100*latVsVAS/n)
	fmt.Fprintf(&b, "  SPK3 queue stall cut vs VAS:   %.1f%% (paper: ~86%%)\n", 100*stallVsVAS/n)
	fmt.Fprintf(&b, "  chip utilization VAS/PAS/SPK3: %.1f%% / %.1f%% / %.1f%% (paper: 17/24/55)\n",
		100*utilVAS/n, 100*utilPAS/n, 100*utilSPK3/n)
	fmt.Fprintf(&b, "  inter-chip idleness VAS->SPK3: %.1f%% -> %.1f%% (paper: -46.1%%)\n",
		100*interVAS/n, 100*interSPK3/n)
	fmt.Fprintf(&b, "  intra-chip idleness VAS->SPK3: %.1f%% -> %.1f%% (paper: -23.5%%)\n",
		100*intraVAS/n, 100*intraSPK3/n)
	fmt.Fprintf(&b, "  flash transactions SPK3/VAS:   %.2f (paper: ~0.50)\n", txnSPK3/txnVAS)
	fmt.Fprintf(&b, "  FLP degree PAS -> SPK3:        %.2f -> %.2f (paper: +80.2%% FLP)\n", degPAS/n, degSPK3/n)
	return b.String()
}
