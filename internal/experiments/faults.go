package experiments

import (
	"context"
	"fmt"
	"sort"

	"sprinkler"
	"sprinkler/internal/metrics"
)

// Fault-injection degradation study: how gracefully each scheduler's
// bandwidth decays as per-operation flash failure rates climb, and where
// the drive tips into read-only degraded mode. Not a figure of the paper —
// the paper assumes fault-free flash — but the natural robustness
// companion to its §5.9 GC study: the same fragmented platform, with the
// fault model dialled up instead of the GC pressure.

// FaultPoint is one (scheduler, fault-rate) sample of the study.
type FaultPoint struct {
	Scheduler     string
	Rate          float64
	BandwidthKB   float64
	AvgLatencyNS  int64
	ReadRetries   int64
	ProgramFails  int64
	RetiredBlocks int64
	FailedIOs     int64
	Degraded      bool
}

// faultPlatform is the GC-stressed §5.9 platform with the retry ladder and
// a thin spare pool configured: erase failures retire blocks into the
// spares, so the highest rates push the drive toward degraded mode within
// the run. The options' kernel knob rides along via fig17Platform.
func faultPlatform(o Options) sprinkler.Config {
	spec := o.Faults
	cfg := fig17Platform(o.Chips, o)
	if spec.ReadRetryMax == 0 {
		spec.ReadRetryMax = 4
	}
	if spec.ReadRetryMult == 0 {
		spec.ReadRetryMult = 2
	}
	if spec.RewriteMax == 0 {
		spec.RewriteMax = 4
	}
	if spec.SpareBlockFrac == 0 {
		spec.SpareBlockFrac = 0.1
	}
	cfg.Faults = spec
	return cfg
}

// RunFaultStudy sweeps schedulers × fault rates on the fragmented
// platform: a read/write mix over a preconditioned device, every cell
// replaying the identical trace, with the FaultRates axis scaling the
// read, program and erase failure probabilities together. opts.Faults
// seeds the ladder/spare shape (zero fields take the study defaults).
func RunFaultStudy(opts Options) ([]FaultPoint, error) {
	opts = opts.Defaults()
	schedulers := []string{"VAS", "PAS", "SPK3"}
	rates := []float64{0, 1e-4, 1e-3, 1e-2, 5e-2}
	if opts.Scale < 0.5 {
		rates = []float64{0, 1e-3, 5e-2}
	}
	requests := opts.scaled(8000, 600)

	cells := sprinkler.Grid{
		Name:       "faults",
		Base:       faultPlatform(opts),
		Schedulers: schedulerKinds(schedulers),
		FaultRates: rates,
		Precondition: &sprinkler.Precondition{
			FillFrac: 0.95, ChurnFrac: 0.5, Seed: opts.Seed,
		},
		Sources: []sprinkler.SourceSpec{{
			Label: "rw-mix",
			New: func(cfg sprinkler.Config, seed uint64) (sprinkler.Source, error) {
				writes, err := cfg.NewFixedSource(sprinkler.FixedSpec{
					Requests: requests,
					Pages:    4,
					Write:    true,
					Seed:     seed,
				})
				if err != nil {
					return nil, err
				}
				// 30% reads exercise the retry ladder while writes keep
				// the GC (and therefore erase-fault) pressure on.
				return sprinkler.ReadRatio(writes, 0.3, seed)
			},
		}},
	}.Cells()

	rateByLabel := make(map[string]float64, len(rates))
	for _, r := range rates {
		rateByLabel[fmt.Sprintf("fr=%g", r)] = r
	}
	var points []FaultPoint
	for _, cr := range opts.runner().Run(context.Background(), cells) {
		if cr.Err != nil {
			return nil, cr.Err
		}
		points = append(points, FaultPoint{
			Scheduler:     cr.Labels["scheduler"],
			Rate:          rateByLabel[cr.Labels["fault_rate"]],
			BandwidthKB:   cr.Result.BandwidthKBps,
			AvgLatencyNS:  cr.Result.AvgLatencyNS,
			ReadRetries:   cr.Result.ReadRetries,
			ProgramFails:  cr.Result.ProgramFails,
			RetiredBlocks: cr.Result.RetiredBlocks,
			FailedIOs:     cr.Result.FailedIOs,
			Degraded:      cr.Result.DegradedMode,
		})
	}
	sort.SliceStable(points, func(i, j int) bool {
		if points[i].Scheduler != points[j].Scheduler {
			return points[i].Scheduler < points[j].Scheduler
		}
		return points[i].Rate < points[j].Rate
	})
	return points, nil
}

// FormatFaultStudy renders the degradation table: one row per
// (scheduler, rate), bandwidth relative to that scheduler's fault-free row
// so the decay reads directly.
func FormatFaultStudy(points []FaultPoint) string {
	baseline := map[string]float64{}
	for _, p := range points {
		if p.Rate == 0 {
			baseline[p.Scheduler] = p.BandwidthKB
		}
	}
	rows := make([][]string, 0, len(points))
	for _, p := range points {
		rel := "-"
		if b := baseline[p.Scheduler]; b > 0 {
			rel = fmt.Sprintf("%.1f%%", 100*p.BandwidthKB/b)
		}
		degraded := ""
		if p.Degraded {
			degraded = "READ-ONLY"
		}
		rows = append(rows, []string{
			p.Scheduler,
			fmt.Sprintf("%g", p.Rate),
			fmt.Sprintf("%.0f", p.BandwidthKB),
			rel,
			fmt.Sprintf("%.3f", float64(p.AvgLatencyNS)/1e6),
			fmt.Sprintf("%d", p.ReadRetries),
			fmt.Sprintf("%d", p.ProgramFails),
			fmt.Sprintf("%d", p.RetiredBlocks),
			fmt.Sprintf("%d", p.FailedIOs),
			degraded,
		})
	}
	return "Fault-injection degradation (schedulers × failure rates, fragmented device)\n" +
		metrics.Table([]string{
			"sched", "rate", "KB/s", "vs 0", "ms", "retries", "pgmFail", "retired", "failedIO", "mode",
		}, rows)
}
