package experiments

import (
	"strings"
	"testing"
)

// tinyOpts shrinks every experiment to seconds.
func tinyOpts() Options { return Options{Scale: 0.04, Chips: 16} }

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.Defaults()
	if o.Scale != 1 || o.Chips != 64 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	o = Options{Scale: 2}.Defaults()
	if o.Scale != 1 {
		t.Fatal("scale > 1 not clamped")
	}
	if (Options{Scale: 0.5}).Defaults().scaled(100, 10) != 50 {
		t.Fatal("scaled() wrong")
	}
	if (Options{Scale: 0.001}).Defaults().scaled(100, 10) != 10 {
		t.Fatal("scaled() floor wrong")
	}
}

func TestNewSchedulerNames(t *testing.T) {
	for _, n := range SchedulerNames {
		s, err := NewScheduler(n)
		if err != nil {
			t.Fatal(err)
		}
		if s.Name() != n {
			t.Fatalf("scheduler %q reports name %q", n, s.Name())
		}
	}
	if _, err := NewScheduler("bogus"); err == nil {
		t.Fatal("accepted unknown scheduler")
	}
}

func TestPlatformShapes(t *testing.T) {
	cases := map[int][2]int{ // chips -> {channels, chipsPerChan}
		64:   {8, 8},
		256:  {16, 16},
		1024: {32, 32},
		1:    {1, 1},
	}
	for chips, want := range cases {
		cfg := Platform(chips)
		if cfg.Channels != want[0] || cfg.ChipsPerChan != want[1] {
			t.Fatalf("Platform(%d) = %dx%d, want %dx%d",
				chips, cfg.Channels, cfg.ChipsPerChan, want[0], want[1])
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Platform(%d) invalid: %v", chips, err)
		}
	}
}

func TestTable1Report(t *testing.T) {
	out := Table1Report()
	for _, want := range []string{"cfs0", "proj4", "locality", "High"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table1Report missing %q:\n%s", want, out)
		}
	}
}

// TestEvaluationEndToEnd runs the tiny 5x16 sweep once and checks every
// formatter plus the paper's key orderings.
func TestEvaluationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluation sweep is seconds-long")
	}
	ev, err := RunEvaluation(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Workloads) != 16 {
		t.Fatalf("evaluated %d workloads", len(ev.Workloads))
	}
	for _, s := range SchedulerNames {
		for _, w := range ev.Workloads {
			r := ev.Results[s][w]
			if r == nil || r.IOsCompleted == 0 {
				t.Fatalf("missing result %s/%s", s, w)
			}
		}
	}

	// Headline orderings, averaged (individual workloads may vary).
	var bwVAS, bwSPK3, latVAS, latSPK3 float64
	for _, w := range ev.Workloads {
		bwVAS += ev.Results["VAS"][w].BandwidthKBps
		bwSPK3 += ev.Results["SPK3"][w].BandwidthKBps
		latVAS += float64(ev.Results["VAS"][w].AvgLatencyNS)
		latSPK3 += float64(ev.Results["SPK3"][w].AvgLatencyNS)
	}
	if bwSPK3 <= bwVAS {
		t.Fatalf("SPK3 aggregate bandwidth %.0f <= VAS %.0f", bwSPK3, bwVAS)
	}
	if latSPK3 >= latVAS {
		t.Fatalf("SPK3 aggregate latency %.0f >= VAS %.0f", latSPK3, latVAS)
	}

	for name, out := range map[string]string{
		"Fig6":    ev.Fig6(),
		"Fig10a":  ev.Fig10a(),
		"Fig10b":  ev.Fig10b(),
		"Fig10c":  ev.Fig10c(),
		"Fig10d":  ev.Fig10d(),
		"Fig11a":  ev.Fig11a(),
		"Fig11b":  ev.Fig11b(),
		"Fig13":   Fig13(ev),
		"Fig14":   Fig14(ev),
		"Summary": ev.Summary(),
	} {
		if !strings.Contains(out, "cfs0") && name != "Summary" {
			t.Fatalf("%s missing workload rows:\n%s", name, out)
		}
		if len(out) < 100 {
			t.Fatalf("%s suspiciously short:\n%s", name, out)
		}
	}
}

func TestFig1SmallSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is seconds-long")
	}
	pts, err := RunFig1(Options{Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5*6 {
		t.Fatalf("got %d points, want 30", len(pts))
	}
	// Stagnation: bandwidth must NOT keep scaling with dies — the largest
	// platform must be under 4x the 32-die platform for small transfers.
	var bw32, bw512 float64
	for _, p := range pts {
		if p.TransferKB != 8 {
			continue
		}
		switch p.Dies {
		case 32:
			bw32 = p.BandwidthMB
		case 512:
			bw512 = p.BandwidthMB
		}
	}
	if bw32 == 0 || bw512 == 0 {
		t.Fatal("missing sweep points")
	}
	if bw512 > 8*bw32 {
		t.Fatalf("no stagnation: 512 dies %.1f MB/s vs 32 dies %.1f MB/s", bw512, bw32)
	}
	out := FormatFig1(pts)
	if !strings.Contains(out, "Figure 1a") || !strings.Contains(out, "512") {
		t.Fatalf("FormatFig1 output wrong:\n%s", out)
	}
}

func TestFig12Report(t *testing.T) {
	if testing.Short() {
		t.Skip("series run is seconds-long")
	}
	out, err := RunFig12(Options{Scale: 0.05, Chips: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 12", "VAS(ms)", "SPK3(ms)", "means:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fig12 missing %q:\n%s", want, out)
		}
	}
}

func TestFig15And16Sweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is seconds-long")
	}
	pts, err := RunFig15(Options{Scale: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for _, p := range pts {
		if p.Utilization < 0 || p.Utilization > 1 {
			t.Fatalf("utilization out of range: %+v", p)
		}
		if p.Txns <= 0 {
			t.Fatalf("no transactions: %+v", p)
		}
	}
	// SPK3 must not run more transactions than VAS at any sampled point.
	byKey := map[[2]int]map[string]Fig15Point{}
	for _, p := range pts {
		k := [2]int{p.Chips, p.TransferKB}
		if byKey[k] == nil {
			byKey[k] = map[string]Fig15Point{}
		}
		byKey[k][p.Scheduler] = p
	}
	for k, m := range byKey {
		if m["SPK3"].Txns > m["VAS"].Txns {
			t.Fatalf("%v: SPK3 txns %d > VAS %d", k, m["SPK3"].Txns, m["VAS"].Txns)
		}
	}
	if out := FormatFig15(pts); !strings.Contains(out, "Figure 15") {
		t.Fatal("FormatFig15 header missing")
	}
	if out := FormatFig16(pts); !strings.Contains(out, "Figure 16") {
		t.Fatal("FormatFig16 header missing")
	}
}

// TestBurstinessSweep runs the workload-structure study at tiny scale: the
// grid's workload axis is built entirely from combinator specs (Poisson +
// Burst), and burstier arrivals at constant mean rate must not improve
// tail latency.
func TestBurstinessSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is seconds-long")
	}
	pts, err := RunBurstiness(Options{Scale: 0.05, Chips: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5*4 {
		t.Fatalf("got %d points, want 20", len(pts))
	}
	byKey := map[string]map[float64]BurstPoint{}
	for _, p := range pts {
		if p.AvgLatencyMS <= 0 || p.DutyPct == 0 {
			t.Fatalf("degenerate point: %+v", p)
		}
		if byKey[p.Scheduler] == nil {
			byKey[p.Scheduler] = map[float64]BurstPoint{}
		}
		byKey[p.Scheduler][p.DutyPct] = p
	}
	// Compressing the same load into 1/8th of the timeline must not
	// improve latency in aggregate (individual schedulers' tails are noisy
	// at test scale, so the assertion sums over the scheduler axis).
	var smooth, bursty float64
	for _, m := range byKey {
		smooth += m[100].AvgLatencyMS
		bursty += m[12.5].AvgLatencyMS
	}
	if bursty < smooth {
		t.Fatalf("aggregate latency improved under 8x burstiness: %.3f < %.3f", bursty, smooth)
	}
	out := FormatBurstiness(pts)
	for _, want := range []string{"Burstiness sweep", "P99", "duty%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FormatBurstiness missing %q:\n%s", want, out)
		}
	}
}

func TestFig17GCImpact(t *testing.T) {
	if testing.Short() {
		t.Skip("GC sweep is seconds-long")
	}
	pts, err := RunFig17(Options{Scale: 0.04})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	sawGCRun := false
	for _, p := range pts {
		if p.GC && p.GCRuns > 0 {
			sawGCRun = true
		}
		if !p.GC && p.GCRuns != 0 {
			t.Fatalf("pristine run performed GC: %+v", p)
		}
	}
	if !sawGCRun {
		t.Fatal("fragmented runs never triggered GC")
	}
	// GC must cost bandwidth for each scheduler at at least one point.
	type key struct {
		chips, kb int
		s         string
	}
	base := map[key]float64{}
	for _, p := range pts {
		if !p.GC {
			base[key{p.Chips, p.TransferKB, p.Scheduler}] = p.BandwidthKB
		}
	}
	degraded := 0
	for _, p := range pts {
		if p.GC && p.BandwidthKB < base[key{p.Chips, p.TransferKB, p.Scheduler}] {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("GC never degraded bandwidth")
	}
	if out := FormatFig17(pts); !strings.Contains(out, "Figure 17") {
		t.Fatal("FormatFig17 header missing")
	}
}
