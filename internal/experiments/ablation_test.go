package experiments

import (
	"strings"
	"testing"
)

func TestAblationStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation is seconds-long")
	}
	rows, err := RunAblation(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	// 6 overcommit depths + 2 priority + 3 windows + 3 allocations.
	if len(rows) != 14 {
		t.Fatalf("got %d rows, want 14", len(rows))
	}
	byName := map[string]AblationRow{}
	for _, r := range rows {
		if r.BandwidthKB <= 0 || r.FLPDegree < 1 {
			t.Fatalf("degenerate row %+v", r)
		}
		byName[r.Name] = r
	}
	// Deeper over-commitment must raise the FLP degree monotonically-ish:
	// slots=16 must beat slots=1 clearly.
	if byName["overcommit/slots=16"].FLPDegree <= byName["overcommit/slots=1"].FLPDegree {
		t.Fatalf("over-commitment did not raise FLP: %v vs %v",
			byName["overcommit/slots=16"].FLPDegree, byName["overcommit/slots=1"].FLPDegree)
	}
	// FARO's priority matters less than its depth here: the controller
	// re-groups the committed queue at build time, so commit order only
	// shifts which requests make the budget cut. Assert the two stay in
	// the same performance regime (the depth sweep above carries the
	// headline effect).
	faro, fifo := byName["priority/FARO(slots=16)"], byName["priority/FIFO(slots=16)"]
	if faro.BandwidthKB < 0.7*fifo.BandwidthKB {
		t.Fatalf("FARO priority collapsed vs FIFO: %v vs %v KB/s",
			faro.BandwidthKB, fifo.BandwidthKB)
	}
	out := FormatAblation(rows)
	for _, want := range []string{"Ablation", "overcommit/slots=16", "alloc/way-first", "window/"} {
		if !strings.Contains(out, want) {
			t.Fatalf("format missing %q:\n%s", want, out)
		}
	}
}
