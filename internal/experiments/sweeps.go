package experiments

import (
	"context"
	"fmt"
	"strings"

	"sprinkler"
	"sprinkler/internal/metrics"
)

// Fig1Point is one (dies, transferKB) sample of the Figure 1 sensitivity
// study: read bandwidth, chip utilization and memory-level idleness on a
// conventional (VAS) controller.
type Fig1Point struct {
	Dies        int
	TransferKB  int
	BandwidthMB float64
	Utilization float64 // 0..1
	Idleness    float64 // 0..1 (memory-level: idle die/plane share)
}

// fig1Platform shrinks per-plane block counts as the platform grows so the
// 32768-die point stays within memory; scheduling behaviour only depends
// on the chip/die/plane topology.
func fig1Platform(chips int) sprinkler.Config {
	cfg := Platform(chips)
	switch {
	case chips >= 4096:
		cfg.BlocksPerPlane = 8
	case chips >= 512:
		cfg.BlocksPerPlane = 32
	default:
		cfg.BlocksPerPlane = 128
	}
	cfg.Scheduler = sprinkler.VAS
	return cfg
}

// fixedSources builds the transfer-size axis of a sensitivity sweep: one
// SourceSpec per size, each sizing its page count from the cell's final
// platform and its request count from the study's volume rule. The seed
// is per-size, shared across every scheduler and platform point so those
// axes compare on identical workloads.
func fixedSources(sizesKB []int, seed uint64, write, sequential bool, countFor func(kb int) int) []sprinkler.SourceSpec {
	var out []sprinkler.SourceSpec
	for _, kb := range sizesKB {
		kb := kb
		out = append(out, sprinkler.SourceSpec{
			Label: fmt.Sprintf("%dKB", kb),
			New: func(cfg sprinkler.Config, _ uint64) (sprinkler.Source, error) {
				pages := kb * 1024 / cfg.PageSize
				if pages < 1 {
					pages = 1
				}
				return cfg.NewFixedSource(sprinkler.FixedSpec{
					Requests:   countFor(kb),
					Pages:      pages,
					Write:      write,
					Sequential: sequential,
					Seed:       seed + uint64(kb),
				})
			},
		})
	}
	return out
}

// platformAxis builds a custom axis whose points replace the whole
// platform configuration (chip count plus whatever per-plane shrinkage
// the study needs).
func platformAxis(name string, counts []int, label func(int) string, build func(int) sprinkler.Config) sprinkler.Axis {
	ax := sprinkler.Axis{Name: name}
	for _, n := range counts {
		n := n
		ax.Values = append(ax.Values, sprinkler.AxisValue{
			Label: label(n),
			Apply: func(c *sprinkler.Config) { *c = build(n) },
		})
	}
	return ax
}

// kbByLabel inverts fixedSources' size labels, so sweep results map back
// to their transfer size through CellResult.Labels instead of positional
// coupling to the grid's expansion order.
func kbByLabel(sizesKB []int) map[string]int {
	m := make(map[string]int, len(sizesKB))
	for _, kb := range sizesKB {
		m[fmt.Sprintf("%dKB", kb)] = kb
	}
	return m
}

// countByLabel inverts a platform axis's labels the same way.
func countByLabel(counts []int, label func(int) string) map[string]int {
	m := make(map[string]int, len(counts))
	for _, n := range counts {
		m[label(n)] = n
	}
	return m
}

// volumeCount is the shared workload-volume rule of the sensitivity
// sweeps: a fixed total data volume divided by the transfer size, floored
// so tiny scales still exercise scheduling.
func volumeCount(totalKB int) func(kb int) int {
	return func(kb int) int {
		count := totalKB / kb
		if count < 8 {
			count = 8
		}
		return count
	}
}

// RunFig1 sweeps the die count from 2 to 32768 for transfer sizes 4-128 KB,
// reproducing the performance-stagnation observation (Figures 1a and 1b).
// The sweep is one Grid — a dies axis crossed with a transfer-size source
// axis on a VAS base — and every cell runs concurrently, cells sharing a
// platform recycling one device through the runner's arena.
func RunFig1(opts Options) ([]Fig1Point, error) {
	opts = opts.Defaults()
	dieCounts := []int{2, 8, 32, 128, 512, 2048, 8192, 32768}
	if opts.Scale < 0.5 {
		dieCounts = []int{2, 8, 32, 128, 512}
	}
	sizesKB := []int{4, 8, 16, 32, 64, 128}
	count := opts.scaled(512, 64)

	dieLabel := func(dies int) string { return fmt.Sprintf("%dd", dies) }
	cells := sprinkler.Grid{
		Name: "fig1",
		Base: fig1Platform(1),
		Vary: []sprinkler.Axis{platformAxis("dies", dieCounts, dieLabel,
			func(dies int) sprinkler.Config {
				chips := dies / 2
				if chips < 1 {
					chips = 1
				}
				return fig1Platform(chips)
			})},
		Sources: fixedSources(sizesKB, opts.Seed, false, true, func(int) int { return count }),
	}.Cells()

	dies := countByLabel(dieCounts, dieLabel)
	sizes := kbByLabel(sizesKB)
	var points []Fig1Point
	for _, cr := range opts.runner().Run(context.Background(), cells) {
		if cr.Err != nil {
			return nil, cr.Err
		}
		points = append(points, Fig1Point{
			Dies:        dies[cr.Labels["dies"]],
			TransferKB:  sizes[cr.Labels["workload"]],
			BandwidthMB: cr.Result.BandwidthKBps / 1024,
			Utilization: cr.Result.ChipUtilization,
			Idleness:    cr.Result.MemoryLevelIdleness,
		})
	}
	return points, nil
}

// FormatFig1 renders the sweep as the two panels of Figure 1.
func FormatFig1(points []Fig1Point) string {
	bySize := map[int]map[int]Fig1Point{}
	var dies []int
	seenDies := map[int]bool{}
	var sizes []int
	seenSizes := map[int]bool{}
	for _, p := range points {
		if bySize[p.TransferKB] == nil {
			bySize[p.TransferKB] = map[int]Fig1Point{}
		}
		bySize[p.TransferKB][p.Dies] = p
		if !seenDies[p.Dies] {
			seenDies[p.Dies] = true
			dies = append(dies, p.Dies)
		}
		if !seenSizes[p.TransferKB] {
			seenSizes[p.TransferKB] = true
			sizes = append(sizes, p.TransferKB)
		}
	}
	var b strings.Builder
	header := []string{"dies"}
	for _, kb := range sizes {
		header = append(header, fmt.Sprintf("%dKB", kb))
	}
	var bwRows, utilRows, idleRows [][]string
	for _, d := range dies {
		bw := []string{fmt.Sprint(d)}
		ut := []string{fmt.Sprint(d)}
		id := []string{fmt.Sprint(d)}
		for _, kb := range sizes {
			p := bySize[kb][d]
			bw = append(bw, fmtF(p.BandwidthMB, 1))
			ut = append(ut, fmtF(100*p.Utilization, 1))
			id = append(id, fmtF(100*p.Idleness, 1))
		}
		bwRows = append(bwRows, bw)
		utilRows = append(utilRows, ut)
		idleRows = append(idleRows, id)
	}
	b.WriteString("Figure 1a: read bandwidth (MB/s) vs number of flash dies\n")
	b.WriteString(metrics.Table(header, bwRows))
	b.WriteString("\nFigure 1b: chip utilization (%) vs number of flash dies\n")
	b.WriteString(metrics.Table(header, utilRows))
	b.WriteString("\nFigure 1b: memory-level idleness (%) vs number of flash dies\n")
	b.WriteString(metrics.Table(header, idleRows))
	return b.String()
}

// RunFig12 replays the first part of msnfs1 with series collection and
// renders the VAS vs PAS and VAS vs SPK3 latency time series (§5.4).
func RunFig12(opts Options) (string, error) {
	opts = opts.Defaults()
	cfg := opts.platform()
	cfg.CollectSeries = true
	n := opts.scaled(3000, 150)

	cells := sprinkler.Grid{
		Name:       "fig12",
		Base:       cfg,
		Schedulers: schedulerKinds([]string{"VAS", "PAS", "SPK3"}),
		Workloads:  []string{"msnfs1"},
		Requests:   n,
		Seed:       opts.Seed,
	}.Cells()
	series := map[string][]sprinkler.SeriesPoint{}
	for _, cr := range opts.runner().Run(context.Background(), cells) {
		if cr.Err != nil {
			return "", cr.Err
		}
		series[cr.Labels["scheduler"]] = cr.Result.Series
	}

	// Sample every k-th I/O to keep the table readable.
	k := len(series["VAS"]) / 30
	if k < 1 {
		k = 1
	}
	header := []string{"io#", "VAS(ms)", "PAS(ms)", "SPK3(ms)"}
	var rows [][]string
	var sumVAS, sumPAS, sumSPK3 float64
	for i := 0; i < len(series["VAS"]); i++ {
		v := float64(series["VAS"][i].LatencyNS) / 1e6
		p := float64(series["PAS"][i].LatencyNS) / 1e6
		s := float64(series["SPK3"][i].LatencyNS) / 1e6
		sumVAS += v
		sumPAS += p
		sumSPK3 += s
		if i%k == 0 {
			rows = append(rows, []string{
				fmt.Sprint(i), fmtF(v, 3), fmtF(p, 3), fmtF(s, 3),
			})
		}
	}
	n64 := float64(len(series["VAS"]))
	tail := fmt.Sprintf("\nmeans: VAS=%.3fms PAS=%.3fms SPK3=%.3fms (SPK3 %.0f%% below VAS, %.0f%% below PAS; paper: 80%% and 64%%)\n",
		sumVAS/n64, sumPAS/n64, sumSPK3/n64,
		100*(1-sumSPK3/sumVAS), 100*(1-sumSPK3/sumPAS))
	return "Figure 12: msnfs1 latency time series\n" + metrics.Table(header, rows) + tail, nil
}

// Fig15Point is one (chips, transferKB, scheduler) utilization sample.
type Fig15Point struct {
	Chips       int
	TransferKB  int
	Scheduler   string
	Utilization float64
	Txns        int64
	BandwidthKB float64
}

// RunFig15 sweeps transfer sizes 4 KB-4 MB on 64/256/1024-chip platforms
// for VAS, SPK1, SPK2 and SPK3 (chip utilization, Figure 15; the same runs
// yield the transaction counts of Figure 16 and feed Figure 17's pristine
// baseline). One Grid: scheduler axis × chips axis × transfer-size source
// axis; seeds are per-(chips, size) point, so every scheduler replays the
// identical random workload. All cells run concurrently.
func RunFig15(opts Options) ([]Fig15Point, error) {
	opts = opts.Defaults()
	chipCounts := []int{64, 256, 1024}
	sizesKB := []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
	if opts.Scale < 0.5 {
		chipCounts = []int{64, 256}
		sizesKB = []int{4, 16, 64, 256, 1024}
	}
	schedulers := []string{"VAS", "SPK1", "SPK2", "SPK3"}
	// Fixed total data volume per point so the workload is comparable
	// across transfer sizes.
	totalKB := opts.scaled(64*1024, 4*1024)

	chipLabel := func(chips int) string { return fmt.Sprintf("%dc", chips) }
	cells := sprinkler.Grid{
		Name:       "fig15",
		Base:       Platform(chipCounts[0]),
		Schedulers: schedulerKinds(schedulers),
		Vary:       []sprinkler.Axis{platformAxis("chips", chipCounts, chipLabel, Platform)},
		Sources:    fixedSources(sizesKB, opts.Seed, false, false, volumeCount(totalKB)),
	}.Cells()

	chips := countByLabel(chipCounts, chipLabel)
	sizes := kbByLabel(sizesKB)
	var points []Fig15Point
	for _, cr := range opts.runner().Run(context.Background(), cells) {
		if cr.Err != nil {
			return nil, cr.Err
		}
		points = append(points, Fig15Point{
			Chips:       chips[cr.Labels["chips"]],
			TransferKB:  sizes[cr.Labels["workload"]],
			Scheduler:   cr.Labels["scheduler"],
			Utilization: cr.Result.ChipUtilization,
			Txns:        cr.Result.Transactions,
			BandwidthKB: cr.Result.BandwidthKBps,
		})
	}
	return points, nil
}

// FormatFig15 renders per-platform utilization tables.
func FormatFig15(points []Fig15Point) string {
	return formatSweep(points, "Figure 15: chip utilization (%)", func(p Fig15Point) string {
		return fmtF(100*p.Utilization, 1)
	})
}

// FormatFig16 renders per-platform transaction-count tables (§5.8).
func FormatFig16(points []Fig15Point) string {
	var filtered []Fig15Point
	for _, p := range points {
		if p.Chips == 64 || p.Chips == 1024 {
			filtered = append(filtered, p)
		}
	}
	if len(filtered) == 0 {
		filtered = points
	}
	return formatSweep(filtered, "Figure 16: number of flash transactions", func(p Fig15Point) string {
		return fmt.Sprint(p.Txns)
	})
}

func formatSweep(points []Fig15Point, title string, cell func(Fig15Point) string) string {
	byChip := map[int]map[int]map[string]Fig15Point{}
	var chips, sizes []int
	var scheds []string
	seenC, seenS, seenX := map[int]bool{}, map[int]bool{}, map[string]bool{}
	for _, p := range points {
		if byChip[p.Chips] == nil {
			byChip[p.Chips] = map[int]map[string]Fig15Point{}
		}
		if byChip[p.Chips][p.TransferKB] == nil {
			byChip[p.Chips][p.TransferKB] = map[string]Fig15Point{}
		}
		byChip[p.Chips][p.TransferKB][p.Scheduler] = p
		if !seenC[p.Chips] {
			seenC[p.Chips] = true
			chips = append(chips, p.Chips)
		}
		if !seenS[p.TransferKB] {
			seenS[p.TransferKB] = true
			sizes = append(sizes, p.TransferKB)
		}
		if !seenX[p.Scheduler] {
			seenX[p.Scheduler] = true
			scheds = append(scheds, p.Scheduler)
		}
	}
	var b strings.Builder
	for _, c := range chips {
		header := append([]string{"transferKB"}, scheds...)
		var rows [][]string
		for _, kb := range sizes {
			row := []string{fmt.Sprint(kb)}
			for _, s := range scheds {
				row = append(row, cell(byChip[c][kb][s]))
			}
			rows = append(rows, row)
		}
		fmt.Fprintf(&b, "%s — %d flash chips\n%s\n", title, c, metrics.Table(header, rows))
	}
	return b.String()
}
