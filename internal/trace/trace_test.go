package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"sprinkler/internal/req"
	"sprinkler/internal/sim"
)

func TestTable1Catalogue(t *testing.T) {
	ws := Table1()
	if len(ws) != 16 {
		t.Fatalf("catalogue has %d workloads, want 16", len(ws))
	}
	names := map[string]bool{}
	for _, w := range ws {
		if names[w.Name] {
			t.Fatalf("duplicate workload %q", w.Name)
		}
		names[w.Name] = true
		if w.ReadInsns+w.WriteInsns == 0 {
			t.Fatalf("%s has zero instructions", w.Name)
		}
		if w.ReadRandom < 0 || w.ReadRandom > 100 || w.WriteRandom < 0 || w.WriteRandom > 100 {
			t.Fatalf("%s randomness out of range", w.Name)
		}
	}
	for _, want := range []string{"cfs0", "hm1", "msnfs3", "proj4"} {
		if !names[want] {
			t.Fatalf("missing workload %q", want)
		}
	}
}

func TestByName(t *testing.T) {
	w, ok := ByName("msnfs1")
	if !ok || w.Name != "msnfs1" {
		t.Fatal("ByName failed for msnfs1")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName found a phantom workload")
	}
}

func TestAvgSizes(t *testing.T) {
	w, _ := ByName("cfs0")
	// 3607 MB over 406k reads ≈ 9.1 KB.
	if got := w.AvgReadKB(); got < 8 || got > 10 {
		t.Fatalf("cfs0 AvgReadKB = %.1f, want ~9", got)
	}
	if got := w.ReadFraction(); got < 0.7 || got > 0.8 {
		t.Fatalf("cfs0 ReadFraction = %.2f, want ~0.75", got)
	}
	var zero Workload
	if zero.AvgReadKB() != 0 || zero.AvgWriteKB() != 0 || zero.ReadFraction() != 0 {
		t.Fatal("zero workload should report zero stats")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w, _ := ByName("cfs3")
	cfg := GenConfig{Instructions: 200, LogicalPages: 1 << 20}
	a, err := Generate(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || len(a) != 200 {
		t.Fatalf("lengths %d/%d, want 200", len(a), len(b))
	}
	for i := range a {
		if a[i].Start != b[i].Start || a[i].Pages != b[i].Pages ||
			a[i].Kind != b[i].Kind || a[i].Arrival != b[i].Arrival {
			t.Fatalf("generation not deterministic at %d", i)
		}
	}
}

func TestGenerateBounds(t *testing.T) {
	for _, w := range Table1() {
		ios, err := Generate(w, GenConfig{Instructions: 300, LogicalPages: 1 << 18})
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		var last int64 = -1
		for _, io := range ios {
			if io.Start < 0 || int64(io.End()) > 1<<18 {
				t.Fatalf("%s: out-of-range request %v", w.Name, io)
			}
			if io.Pages < 1 || io.Pages > 1024 {
				t.Fatalf("%s: bad length %d", w.Name, io.Pages)
			}
			if int64(io.Arrival) < last {
				t.Fatalf("%s: arrivals not monotone", w.Name)
			}
			last = int64(io.Arrival)
		}
	}
}

func TestGenerateReadWriteMix(t *testing.T) {
	w, _ := ByName("msnfs0") // overwhelmingly writes (41k reads vs 1467k writes)
	ios, err := Generate(w, GenConfig{Instructions: 2000, LogicalPages: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	writes := 0
	for _, io := range ios {
		if io.Kind == req.Write {
			writes++
		}
	}
	if frac := float64(writes) / float64(len(ios)); frac < 0.85 {
		t.Fatalf("msnfs0 write fraction %.2f, want > 0.85", frac)
	}
}

func TestGenerateHighLocalityAlignment(t *testing.T) {
	w, _ := ByName("cfs3") // High locality
	cfg := GenConfig{Instructions: 64, LogicalPages: 1 << 20, AlignStride: 64}
	ios, err := Generate(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Within the first burst, consecutive starts differ by the stride.
	aligned := 0
	for i := 1; i < 16 && i < len(ios); i++ {
		if ios[i].Start-ios[i-1].Start == 64 {
			aligned++
		}
	}
	if aligned < 8 {
		t.Fatalf("high-locality burst alignment weak: %d/15 strides", aligned)
	}
}

func TestGenerateRequiresLogicalPages(t *testing.T) {
	if _, err := Generate(Table1()[0], GenConfig{}); err == nil {
		t.Fatal("accepted zero LogicalPages")
	}
}

func TestGenerateFixedSequential(t *testing.T) {
	ios, err := GenerateFixed(FixedConfig{Count: 10, Pages: 4, Kind: req.Read, Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, io := range ios {
		if io.Start != req.LPN(i*4) {
			t.Fatalf("sequential layout broken at %d: %v", i, io)
		}
		if io.Arrival != 0 {
			t.Fatal("closed-loop arrivals must be zero")
		}
	}
}

func TestGenerateFixedRandomBounds(t *testing.T) {
	ios, err := GenerateFixed(FixedConfig{Count: 500, Pages: 8, Kind: req.Write, LogicalPages: 4096, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, io := range ios {
		if io.Start < 0 || int64(io.End()) > 4096 {
			t.Fatalf("random request out of range: %v", io)
		}
	}
}

func TestGenerateFixedValidation(t *testing.T) {
	if _, err := GenerateFixed(FixedConfig{Count: 0, Pages: 1}); err == nil {
		t.Fatal("accepted zero count")
	}
	if _, err := GenerateFixed(FixedConfig{Count: 1, Pages: 64, LogicalPages: 8}); err == nil {
		t.Fatal("accepted logical space smaller than one request")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	w, _ := ByName("proj3")
	ios, err := Generate(w, GenConfig{Instructions: 150, LogicalPages: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	recs := FromIOs(ios)
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("round trip lost records: %d -> %d", len(recs), len(back))
	}
	for i := range recs {
		if recs[i] != back[i] {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, recs[i], back[i])
		}
	}
	ios2 := ToIOs(back)
	if ios2[0].Kind != ios[0].Kind || ios2[0].Start != ios[0].Start {
		t.Fatal("ToIOs mismatch")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	bad := []string{
		"1,2,3",    // field count
		"x,R,0,1",  // arrival
		"0,Q,0,1",  // op
		"0,R,-1,1", // lpn
		"0,R,0,0",  // pages
		"0,R,0,x",  // pages parse
		"-5,W,0,1", // negative arrival
	}
	for _, line := range bad {
		if _, err := Parse(strings.NewReader(line)); err == nil {
			t.Errorf("accepted malformed line %q", line)
		}
	}
}

func TestParseSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n100,R,5,2\n  \n200,W,9,1\n"
	recs, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("parsed %d records, want 2", len(recs))
	}
	if recs[0].Kind != req.Read || recs[1].Kind != req.Write {
		t.Fatal("ops parsed wrong")
	}
}

func TestLocalityString(t *testing.T) {
	if Low.String() != "Low" || Medium.String() != "Medium" || High.String() != "High" {
		t.Fatal("locality labels wrong")
	}
}

// Property: CSV round trip preserves arbitrary valid records.
func TestCSVRoundTripProperty(t *testing.T) {
	prop := func(raw []uint32) bool {
		var recs []Record
		for _, v := range raw {
			recs = append(recs, Record{
				Arrival: sim.Time(v),
				Kind:    req.Kind(v % 2),
				LPN:     req.LPN(v % 100000),
				Pages:   1 + int(v%256),
			})
		}
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			return false
		}
		back, err := Parse(&buf)
		if err != nil {
			return false
		}
		if len(back) != len(recs) {
			return false
		}
		for i := range recs {
			if recs[i] != back[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
