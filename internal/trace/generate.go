package trace

import (
	"fmt"
	"hash/fnv"

	"sprinkler/internal/req"
	"sprinkler/internal/sim"
)

// GenConfig parameterizes synthetic trace generation.
type GenConfig struct {
	// Instructions is the number of I/O requests to generate (the
	// workload's read/write mix splits it). Default 2000.
	Instructions int

	// LogicalPages bounds generated addresses. Required.
	LogicalPages int64

	// PageSize in bytes converts the workload's KB sizes to pages.
	// Default 2048.
	PageSize int

	// MaxPages caps one request's length (the paper notes request sizes
	// range "from several bytes to an MB"). Default 1024 pages (2 MB).
	MaxPages int

	// AlignStride is the address stride between burst members for
	// high-locality workloads; pointing it at the SSD's stripe width
	// (chips × planes) makes burst members land on the same chips with
	// plane-sharing-compatible offsets. Default 64.
	AlignStride int64

	// IntraBurstGap and InterBurstGap shape arrival timing. Defaults:
	// 1 µs within a burst, 30 µs mean between bursts.
	IntraBurstGap sim.Time
	InterBurstGap sim.Time

	// Seed overrides the name-derived generator seed when non-zero.
	Seed uint64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Instructions <= 0 {
		c.Instructions = 2000
	}
	if c.PageSize <= 0 {
		c.PageSize = 2048
	}
	if c.MaxPages <= 0 {
		c.MaxPages = 1024
	}
	if c.AlignStride <= 0 {
		c.AlignStride = 64
	}
	if c.IntraBurstGap <= 0 {
		c.IntraBurstGap = 1 * sim.Microsecond
	}
	if c.InterBurstGap <= 0 {
		c.InterBurstGap = 30 * sim.Microsecond
	}
	return c
}

// burstLen maps transactional locality to how many requests arrive
// back-to-back with correlated addresses.
func burstLen(l Locality) int {
	switch l {
	case High:
		return 16
	case Medium:
		return 8
	default:
		return 3
	}
}

// Generate synthesizes the workload as a list of host I/O requests in
// arrival order. Generation is deterministic: the same workload and config
// always produce the same trace.
func Generate(w Workload, cfg GenConfig) ([]*req.IO, error) {
	cfg = cfg.withDefaults()
	if cfg.LogicalPages <= 0 {
		return nil, fmt.Errorf("trace: LogicalPages required")
	}
	seed := cfg.Seed
	if seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(w.Name))
		seed = h.Sum64()
	}
	rng := sim.NewRand(seed)

	readPages := kbToPages(w.AvgReadKB(), cfg)
	writePages := kbToPages(w.AvgWriteKB(), cfg)
	readFrac := w.ReadFraction()
	burst := burstLen(w.TxnLocality)

	ios := make([]*req.IO, 0, cfg.Instructions)
	now := sim.Time(0)
	// Sequential cursors for the non-random fraction of each direction.
	var seqRead, seqWrite req.LPN

	for len(ios) < cfg.Instructions {
		// One burst: correlated addresses around a region base.
		isRead := rng.Float64() < readFrac
		base := req.LPN(rng.Int63n(maxInt64(1, cfg.LogicalPages-int64(cfg.MaxPages)*int64(burst))))
		for b := 0; b < burst && len(ios) < cfg.Instructions; b++ {
			kind := req.Write
			pages := writePages
			random := w.WriteRandom / 100
			if isRead {
				kind = req.Read
				pages = readPages
				random = w.ReadRandom / 100
			}
			pages = jitterPages(rng, pages, cfg.MaxPages)

			var start req.LPN
			switch {
			case w.TxnLocality == High:
				// Stride-aligned burst members: same chips, compatible
				// page offsets — high spatial transactional locality.
				start = base + req.LPN(int64(b)*cfg.AlignStride)
			case rng.Float64() < random:
				start = req.LPN(rng.Int63n(cfg.LogicalPages))
			default:
				// Sequential continuation.
				if kind == req.Read {
					start = seqRead
				} else {
					start = seqWrite
				}
			}
			start = clampLPN(start, pages, cfg.LogicalPages)
			if kind == req.Read {
				seqRead = start + req.LPN(pages)
			} else {
				seqWrite = start + req.LPN(pages)
			}

			io := req.NewIO(int64(len(ios)), kind, start, pages, now)
			ios = append(ios, io)
			now += cfg.IntraBurstGap
		}
		// Exponential-ish inter-burst gap in [0.5, 2]× the mean.
		gap := cfg.InterBurstGap/2 + sim.Time(rng.Int63n(int64(cfg.InterBurstGap)*3/2))
		now += gap
	}
	return ios, nil
}

// kbToPages converts a mean KB size to whole pages with sane bounds.
func kbToPages(kb float64, cfg GenConfig) int {
	pages := int(kb * 1024 / float64(cfg.PageSize))
	if pages < 1 {
		pages = 1
	}
	if pages > cfg.MaxPages {
		pages = cfg.MaxPages
	}
	return pages
}

// jitterPages varies a mean length by ±50% to avoid degenerate uniformity.
func jitterPages(rng *sim.Rand, mean, max int) int {
	lo := mean / 2
	if lo < 1 {
		lo = 1
	}
	hi := mean + mean/2
	if hi > max {
		hi = max
	}
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

func clampLPN(start req.LPN, pages int, logical int64) req.LPN {
	if int64(start)+int64(pages) > logical {
		start = req.LPN(logical - int64(pages))
	}
	if start < 0 {
		start = 0
	}
	return start
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// FixedConfig describes a closed-loop fixed-transfer-size workload for the
// sensitivity sweeps (Figures 1, 15, 16, 17).
type FixedConfig struct {
	// Count is the number of I/O requests.
	Count int
	// Pages is the transfer size of each request in pages.
	Pages int
	// Kind selects reads or writes.
	Kind req.Kind
	// Sequential lays requests out back-to-back in LPN space; otherwise
	// offsets are uniform random over LogicalPages.
	Sequential bool
	// LogicalPages bounds random offsets (required unless Sequential).
	LogicalPages int64
	// Seed seeds the offset generator.
	Seed uint64
}

// GenerateFixed produces Count same-size requests, all arriving at t=0
// (closed loop: the device-level queue's backpressure paces them).
func GenerateFixed(cfg FixedConfig) ([]*req.IO, error) {
	if cfg.Count <= 0 || cfg.Pages <= 0 {
		return nil, fmt.Errorf("trace: fixed workload needs positive Count and Pages")
	}
	if !cfg.Sequential && cfg.LogicalPages < int64(cfg.Pages) {
		return nil, fmt.Errorf("trace: LogicalPages %d < request size %d", cfg.LogicalPages, cfg.Pages)
	}
	rng := sim.NewRand(cfg.Seed + 1)
	ios := make([]*req.IO, cfg.Count)
	for i := range ios {
		var start req.LPN
		if cfg.Sequential {
			start = req.LPN(int64(i) * int64(cfg.Pages))
			if cfg.LogicalPages > 0 {
				start = req.LPN(int64(start) % maxInt64(1, cfg.LogicalPages-int64(cfg.Pages)))
			}
		} else {
			start = req.LPN(rng.Int63n(cfg.LogicalPages - int64(cfg.Pages) + 1))
		}
		ios[i] = req.NewIO(int64(i), cfg.Kind, start, cfg.Pages, 0)
	}
	return ios, nil
}
