package trace

import (
	"fmt"
	"hash/fnv"

	"sprinkler/internal/req"
	"sprinkler/internal/sim"
)

// GenConfig parameterizes synthetic trace generation.
type GenConfig struct {
	// Instructions is the number of I/O requests to generate (the
	// workload's read/write mix splits it). Generate defaults it to 2000;
	// a Stream treats <= 0 as unbounded.
	Instructions int

	// LogicalPages bounds generated addresses. Required.
	LogicalPages int64

	// PageSize in bytes converts the workload's KB sizes to pages.
	// Default 2048.
	PageSize int

	// MaxPages caps one request's length (the paper notes request sizes
	// range "from several bytes to an MB"). Default 1024 pages (2 MB).
	MaxPages int

	// AlignStride is the address stride between burst members for
	// high-locality workloads; pointing it at the SSD's stripe width
	// (chips × planes) makes burst members land on the same chips with
	// plane-sharing-compatible offsets. Default 64.
	AlignStride int64

	// IntraBurstGap and InterBurstGap shape arrival timing. Defaults:
	// 1 µs within a burst, 30 µs mean between bursts.
	IntraBurstGap sim.Time
	InterBurstGap sim.Time

	// Seed overrides the name-derived generator seed when non-zero.
	Seed uint64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.PageSize <= 0 {
		c.PageSize = 2048
	}
	if c.MaxPages <= 0 {
		c.MaxPages = 1024
	}
	if c.AlignStride <= 0 {
		c.AlignStride = 64
	}
	if c.IntraBurstGap <= 0 {
		c.IntraBurstGap = 1 * sim.Microsecond
	}
	if c.InterBurstGap <= 0 {
		c.InterBurstGap = 30 * sim.Microsecond
	}
	return c
}

// burstLen maps transactional locality to how many requests arrive
// back-to-back with correlated addresses.
func burstLen(l Locality) int {
	switch l {
	case High:
		return 16
	case Medium:
		return 8
	default:
		return 3
	}
}

// Stream synthesizes a workload one request at a time in O(1) memory.
// A Stream built with Instructions <= 0 never runs dry (infinite open-loop
// feeds); a bounded Stream emits exactly Instructions requests and then
// reports exhaustion. Generation is deterministic: the same workload and
// config always produce the same sequence, and a bounded Stream emits
// exactly what Generate materializes for the same inputs.
type Stream struct {
	cfg GenConfig
	w   Workload
	rng *sim.Rand

	limit int // <= 0 means unbounded

	readPages  int
	writePages int
	readFrac   float64
	burst      int

	emitted int64
	now     sim.Time
	// Sequential cursors for the non-random fraction of each direction.
	seqRead  req.LPN
	seqWrite req.LPN

	// Current burst: correlated addresses around a region base.
	started bool
	b       int // member index within the burst
	isRead  bool
	base    req.LPN
}

// NewStream builds an incremental generator for the workload.
// cfg.Instructions <= 0 makes the stream unbounded.
func NewStream(w Workload, cfg GenConfig) (*Stream, error) {
	cfg = cfg.withDefaults()
	if cfg.LogicalPages <= 0 {
		return nil, fmt.Errorf("trace: LogicalPages required")
	}
	seed := cfg.Seed
	if seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(w.Name))
		seed = h.Sum64()
	}
	g := &Stream{
		cfg:        cfg,
		w:          w,
		rng:        sim.NewRand(seed),
		limit:      cfg.Instructions,
		readPages:  kbToPages(w.AvgReadKB(), cfg),
		writePages: kbToPages(w.AvgWriteKB(), cfg),
		readFrac:   w.ReadFraction(),
		burst:      burstLen(w.TxnLocality),
	}
	g.b = g.burst // force a fresh burst on the first Next
	return g, nil
}

// Emitted reports how many requests the stream has produced.
func (g *Stream) Emitted() int64 { return g.emitted }

// Reset rewinds the stream to replay from the beginning, exactly as if it
// had been built with NewStream and the given seed (a zero seed derives
// the stable per-workload seed, like NewStream). The workload, bounds and
// shape parameters are retained; only the generator state rewinds.
func (g *Stream) Reset(seed uint64) {
	if seed == 0 {
		h := fnv.New64a()
		h.Write([]byte(g.w.Name))
		seed = h.Sum64()
	}
	g.rng.Reseed(seed)
	g.emitted = 0
	g.now = 0
	g.seqRead, g.seqWrite = 0, 0
	g.started = false
	g.isRead = false
	g.base = 0
	g.b = g.burst // force a fresh burst on the first Next
}

// Next produces the next request as a host I/O object, or false when a
// bounded stream is done. Streaming consumers that only need the request
// parameters should use NextRecord, which allocates nothing.
func (g *Stream) Next() (*req.IO, bool) {
	id := g.emitted
	r, ok := g.NextRecord()
	if !ok {
		return nil, false
	}
	return req.NewIO(id, r.Kind, r.LPN, r.Pages, r.Arrival), true
}

// NextRecord produces the next request's parameters without materializing
// a req.IO — the allocation-free generation path behind streaming
// sources. The sequence is identical to Next's.
func (g *Stream) NextRecord() (Record, bool) {
	if g.limit > 0 && g.emitted >= int64(g.limit) {
		return Record{}, false
	}
	if g.b >= g.burst {
		if g.started {
			// Exponential-ish inter-burst gap in [0.5, 2]× the mean.
			g.now += g.cfg.InterBurstGap/2 + sim.Time(g.rng.Int63n(int64(g.cfg.InterBurstGap)*3/2))
		}
		g.started = true
		g.b = 0
		g.isRead = g.rng.Float64() < g.readFrac
		g.base = req.LPN(g.rng.Int63n(maxInt64(1, g.cfg.LogicalPages-int64(g.cfg.MaxPages)*int64(g.burst))))
	}

	kind := req.Write
	pages := g.writePages
	random := g.w.WriteRandom / 100
	if g.isRead {
		kind = req.Read
		pages = g.readPages
		random = g.w.ReadRandom / 100
	}
	pages = jitterPages(g.rng, pages, g.cfg.MaxPages)

	var start req.LPN
	switch {
	case g.w.TxnLocality == High:
		// Stride-aligned burst members: same chips, compatible
		// page offsets — high spatial transactional locality.
		start = g.base + req.LPN(int64(g.b)*g.cfg.AlignStride)
	case g.rng.Float64() < random:
		start = req.LPN(g.rng.Int63n(g.cfg.LogicalPages))
	default:
		// Sequential continuation.
		if kind == req.Read {
			start = g.seqRead
		} else {
			start = g.seqWrite
		}
	}
	start = clampLPN(start, pages, g.cfg.LogicalPages)
	if kind == req.Read {
		g.seqRead = start + req.LPN(pages)
	} else {
		g.seqWrite = start + req.LPN(pages)
	}

	rec := Record{Arrival: g.now, Kind: kind, LPN: start, Pages: pages}
	g.emitted++
	g.b++
	g.now += g.cfg.IntraBurstGap
	return rec, true
}

// Generate synthesizes the workload as a list of host I/O requests in
// arrival order. Generation is deterministic: the same workload and config
// always produce the same trace. cfg.Instructions defaults to 2000.
func Generate(w Workload, cfg GenConfig) ([]*req.IO, error) {
	if cfg.Instructions <= 0 {
		cfg.Instructions = 2000
	}
	g, err := NewStream(w, cfg)
	if err != nil {
		return nil, err
	}
	ios := make([]*req.IO, 0, cfg.Instructions)
	for {
		io, ok := g.Next()
		if !ok {
			return ios, nil
		}
		ios = append(ios, io)
	}
}

// kbToPages converts a mean KB size to whole pages with sane bounds.
func kbToPages(kb float64, cfg GenConfig) int {
	pages := int(kb * 1024 / float64(cfg.PageSize))
	if pages < 1 {
		pages = 1
	}
	if pages > cfg.MaxPages {
		pages = cfg.MaxPages
	}
	return pages
}

// jitterPages varies a mean length by ±50% to avoid degenerate uniformity.
func jitterPages(rng *sim.Rand, mean, max int) int {
	lo := mean / 2
	if lo < 1 {
		lo = 1
	}
	hi := mean + mean/2
	if hi > max {
		hi = max
	}
	if hi <= lo {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

func clampLPN(start req.LPN, pages int, logical int64) req.LPN {
	if int64(start)+int64(pages) > logical {
		start = req.LPN(logical - int64(pages))
	}
	if start < 0 {
		start = 0
	}
	return start
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// FixedConfig describes a closed-loop fixed-transfer-size workload for the
// sensitivity sweeps (Figures 1, 15, 16, 17).
type FixedConfig struct {
	// Count is the number of I/O requests.
	Count int
	// Pages is the transfer size of each request in pages.
	Pages int
	// Kind selects reads or writes.
	Kind req.Kind
	// Sequential lays requests out back-to-back in LPN space; otherwise
	// offsets are uniform random over LogicalPages.
	Sequential bool
	// LogicalPages bounds random offsets (required unless Sequential).
	LogicalPages int64
	// Seed seeds the offset generator.
	Seed uint64
}

// FixedStream generates a fixed-transfer-size workload one request at a
// time in O(1) memory: Count same-size requests, all arriving at t=0
// (closed loop: the device-level queue's backpressure paces them). The
// sequence is identical to what GenerateFixed materializes for the same
// config, and Reset rewinds it for reuse across sweep cells.
type FixedStream struct {
	cfg FixedConfig
	rng *sim.Rand
	i   int
}

// NewFixedStream builds the incremental fixed-size generator.
func NewFixedStream(cfg FixedConfig) (*FixedStream, error) {
	if cfg.Count <= 0 || cfg.Pages <= 0 {
		return nil, fmt.Errorf("trace: fixed workload needs positive Count and Pages")
	}
	if !cfg.Sequential && cfg.LogicalPages < int64(cfg.Pages) {
		return nil, fmt.Errorf("trace: LogicalPages %d < request size %d", cfg.LogicalPages, cfg.Pages)
	}
	return &FixedStream{cfg: cfg, rng: sim.NewRand(cfg.Seed + 1)}, nil
}

// NextRecord produces the next request's parameters, or false once Count
// requests have been emitted.
func (g *FixedStream) NextRecord() (Record, bool) {
	if g.i >= g.cfg.Count {
		return Record{}, false
	}
	var start req.LPN
	if g.cfg.Sequential {
		start = req.LPN(int64(g.i) * int64(g.cfg.Pages))
		if g.cfg.LogicalPages > 0 {
			start = req.LPN(int64(start) % maxInt64(1, g.cfg.LogicalPages-int64(g.cfg.Pages)))
		}
	} else {
		start = req.LPN(g.rng.Int63n(g.cfg.LogicalPages - int64(g.cfg.Pages) + 1))
	}
	g.i++
	return Record{Kind: g.cfg.Kind, LPN: start, Pages: g.cfg.Pages}, true
}

// Reset rewinds the stream to replay as if built with the given seed.
func (g *FixedStream) Reset(seed uint64) {
	g.cfg.Seed = seed
	g.rng.Reseed(seed + 1)
	g.i = 0
}

// GenerateFixed produces Count same-size requests, all arriving at t=0
// (closed loop: the device-level queue's backpressure paces them). It is
// the materializing wrapper over FixedStream.
func GenerateFixed(cfg FixedConfig) ([]*req.IO, error) {
	g, err := NewFixedStream(cfg)
	if err != nil {
		return nil, err
	}
	ios := make([]*req.IO, 0, cfg.Count)
	for {
		rec, ok := g.NextRecord()
		if !ok {
			return ios, nil
		}
		ios = append(ios, req.NewIO(int64(len(ios)), rec.Kind, rec.LPN, rec.Pages, rec.Arrival))
	}
}
