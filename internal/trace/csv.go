package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sprinkler/internal/req"
	"sprinkler/internal/sim"
)

// Record is one trace line in the repository's interchange format:
//
//	arrival_ns,op,lpn,pages
//
// with op being "R" or "W". Lines starting with '#' are comments.
type Record struct {
	Arrival sim.Time
	Kind    req.Kind
	LPN     req.LPN
	Pages   int
}

// ToIOs converts records to host I/O requests with sequential IDs.
func ToIOs(recs []Record) []*req.IO {
	ios := make([]*req.IO, len(recs))
	for i, r := range recs {
		ios[i] = req.NewIO(int64(i), r.Kind, r.LPN, r.Pages, r.Arrival)
	}
	return ios
}

// FromIOs converts host I/O requests to records.
func FromIOs(ios []*req.IO) []Record {
	recs := make([]Record, len(ios))
	for i, io := range ios {
		recs[i] = Record{Arrival: io.Arrival, Kind: io.Kind, LPN: io.Start, Pages: io.Pages}
	}
	return recs
}

// Write emits records in the CSV format with a header comment.
func Write(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# arrival_ns,op,lpn,pages"); err != nil {
		return err
	}
	for _, r := range recs {
		op := "W"
		if r.Kind == req.Read {
			op = "R"
		}
		if _, err := fmt.Fprintf(bw, "%d,%s,%d,%d\n", int64(r.Arrival), op, int64(r.LPN), r.Pages); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Parse reads the CSV format. It rejects malformed lines with the line
// number in the error.
func Parse(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		arrival, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
		if err != nil || arrival < 0 {
			return nil, fmt.Errorf("trace: line %d: bad arrival %q", lineNo, fields[0])
		}
		var kind req.Kind
		switch strings.ToUpper(strings.TrimSpace(fields[1])) {
		case "R":
			kind = req.Read
		case "W":
			kind = req.Write
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", lineNo, fields[1])
		}
		lpn, err := strconv.ParseInt(strings.TrimSpace(fields[2]), 10, 64)
		if err != nil || lpn < 0 {
			return nil, fmt.Errorf("trace: line %d: bad lpn %q", lineNo, fields[2])
		}
		pages, err := strconv.Atoi(strings.TrimSpace(fields[3]))
		if err != nil || pages <= 0 {
			return nil, fmt.Errorf("trace: line %d: bad pages %q", lineNo, fields[3])
		}
		recs = append(recs, Record{Arrival: sim.Time(arrival), Kind: kind, LPN: req.LPN(lpn), Pages: pages})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}
