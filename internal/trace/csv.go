package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sprinkler/internal/req"
	"sprinkler/internal/sim"
)

// Record is one trace line in the repository's interchange format:
//
//	arrival_ns,op,lpn,pages
//
// with op being "R" or "W". Lines starting with '#' are comments.
type Record struct {
	Arrival sim.Time
	Kind    req.Kind
	LPN     req.LPN
	Pages   int
}

// ToIOs converts records to host I/O requests with sequential IDs.
func ToIOs(recs []Record) []*req.IO {
	ios := make([]*req.IO, len(recs))
	for i, r := range recs {
		ios[i] = req.NewIO(int64(i), r.Kind, r.LPN, r.Pages, r.Arrival)
	}
	return ios
}

// FromIOs converts host I/O requests to records.
func FromIOs(ios []*req.IO) []Record {
	recs := make([]Record, len(ios))
	for i, io := range ios {
		recs[i] = Record{Arrival: io.Arrival, Kind: io.Kind, LPN: io.Start, Pages: io.Pages}
	}
	return recs
}

// Write emits records in the CSV format with a header comment.
func Write(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# arrival_ns,op,lpn,pages"); err != nil {
		return err
	}
	for _, r := range recs {
		op := "W"
		if r.Kind == req.Read {
			op = "R"
		}
		if _, err := fmt.Fprintf(bw, "%d,%s,%d,%d\n", int64(r.Arrival), op, int64(r.LPN), r.Pages); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Reader parses the CSV format incrementally, one record per call, so a
// trace can be replayed without materializing it. It rejects malformed
// lines with the line number in the error.
type Reader struct {
	sc     *bufio.Scanner
	buf    []byte
	lineNo int
}

// NewReader wraps r for incremental parsing.
func NewReader(r io.Reader) *Reader {
	rd := &Reader{buf: make([]byte, 1<<20)}
	rd.Reset(r)
	return rd
}

// Reset rebinds the reader to a new input stream, reusing the scan buffer,
// so a replayable trace (e.g. a re-seeked file) can be parsed again without
// reallocating the reader's megabyte line buffer.
func (r *Reader) Reset(src io.Reader) {
	sc := bufio.NewScanner(src)
	sc.Buffer(r.buf, len(r.buf))
	r.sc = sc
	r.lineNo = 0
}

// Next returns the next record. It returns io.EOF at the end of input and
// a descriptive error on a malformed line.
func (r *Reader) Next() (Record, error) {
	for r.sc.Scan() {
		r.lineNo++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return r.parseLine(line)
	}
	if err := r.sc.Err(); err != nil {
		return Record{}, err
	}
	return Record{}, io.EOF
}

func (r *Reader) parseLine(line string) (Record, error) {
	fields := strings.Split(line, ",")
	if len(fields) != 4 {
		return Record{}, fmt.Errorf("trace: line %d: want 4 fields, got %d", r.lineNo, len(fields))
	}
	arrival, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
	if err != nil || arrival < 0 {
		return Record{}, fmt.Errorf("trace: line %d: bad arrival %q", r.lineNo, fields[0])
	}
	var kind req.Kind
	switch strings.ToUpper(strings.TrimSpace(fields[1])) {
	case "R":
		kind = req.Read
	case "W":
		kind = req.Write
	default:
		return Record{}, fmt.Errorf("trace: line %d: bad op %q", r.lineNo, fields[1])
	}
	lpn, err := strconv.ParseInt(strings.TrimSpace(fields[2]), 10, 64)
	if err != nil || lpn < 0 {
		return Record{}, fmt.Errorf("trace: line %d: bad lpn %q", r.lineNo, fields[2])
	}
	pages, err := strconv.Atoi(strings.TrimSpace(fields[3]))
	if err != nil || pages <= 0 {
		return Record{}, fmt.Errorf("trace: line %d: bad pages %q", r.lineNo, fields[3])
	}
	return Record{Arrival: sim.Time(arrival), Kind: kind, LPN: req.LPN(lpn), Pages: pages}, nil
}

// Parse reads the whole CSV stream into a record list.
func Parse(r io.Reader) ([]Record, error) {
	rd := NewReader(r)
	var recs []Record
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
}
