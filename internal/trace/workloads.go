// Package trace supplies the workloads of the paper's evaluation (§5.1):
// a catalogue of the sixteen data-center traces of Table 1 (cfs, hm,
// msnfs, proj families), a deterministic synthetic generator parameterised
// by their measured characteristics, closed-loop fixed-size sources for
// the sensitivity sweeps (Figures 1, 15, 16, 17), and a CSV trace format.
//
// The original MSR Cambridge block traces are not redistributable inside
// this repository, so the generator reproduces the columns of Table 1 that
// the schedulers are sensitive to: total transfer per direction, request
// counts, read/write randomness, and transactional locality (modelled as
// burst size and intra-burst address alignment).
package trace

import "fmt"

// Locality is the static transactional-locality class of Table 1.
type Locality int

const (
	// Low: requests rarely line up on the same chips with compatible
	// die/plane/page offsets.
	Low Locality = iota
	// Medium: moderate alignment.
	Medium
	// High: bursts of requests whose addresses can fuse into high-FLP
	// transactions.
	High
)

// String returns the Table 1 label.
func (l Locality) String() string {
	switch l {
	case Low:
		return "Low"
	case Medium:
		return "Medium"
	case High:
		return "High"
	default:
		return fmt.Sprintf("Locality(%d)", int(l))
	}
}

// Workload mirrors one row of Table 1.
type Workload struct {
	Name string

	// ReadMB and WriteMB are the total transfer sizes in MB.
	ReadMB  int64
	WriteMB int64

	// ReadInsns and WriteInsns are the I/O instruction counts, in
	// thousands (the table's "Numbers of Instructions" column).
	ReadInsns  int64
	WriteInsns int64

	// ReadRandom and WriteRandom are the randomness percentages of the
	// issued reads and writes.
	ReadRandom  float64
	WriteRandom float64

	// TxnLocality is the statically analysed transactional locality.
	TxnLocality Locality
}

// AvgReadKB returns the mean read request size in KB implied by the
// totals; zero when the trace has no reads.
func (w Workload) AvgReadKB() float64 {
	if w.ReadInsns == 0 {
		return 0
	}
	return float64(w.ReadMB) * 1024 / (float64(w.ReadInsns) * 1000)
}

// AvgWriteKB returns the mean write request size in KB.
func (w Workload) AvgWriteKB() float64 {
	if w.WriteInsns == 0 {
		return 0
	}
	return float64(w.WriteMB) * 1024 / (float64(w.WriteInsns) * 1000)
}

// ReadFraction returns the fraction of instructions that are reads.
func (w Workload) ReadFraction() float64 {
	t := w.ReadInsns + w.WriteInsns
	if t == 0 {
		return 0
	}
	return float64(w.ReadInsns) / float64(t)
}

// Table1 returns the sixteen workloads of Table 1: corporate mail file
// server (cfs), hardware monitor (hm), MSN file storage server (msnfs) and
// project directory service (proj).
func Table1() []Workload {
	return []Workload{
		{"cfs0", 3607, 1692, 406, 135, 92.79, 86.59, Low},
		{"cfs1", 2955, 1773, 385, 130, 94.01, 86.12, Medium},
		{"cfs2", 2904, 1845, 384, 135, 94.28, 85.95, Low},
		{"cfs3", 3143, 1649, 387, 132, 93.97, 86.70, High},
		{"cfs4", 3600, 1660, 401, 132, 92.60, 86.59, High},
		{"hm0", 10445, 21471, 1417, 2575, 94.20, 92.84, Medium},
		{"hm1", 8670, 567, 580, 28, 98.29, 98.59, Medium},
		{"msnfs0", 1971, 30519, 41, 1467, 99.79, 87.23, Low},
		{"msnfs1", 17661, 17722, 121, 2100, 88.80, 66.71, Low},
		{"msnfs2", 92772, 24835, 9624, 3003, 98.13, 99.97, High},
		{"msnfs3", 5, 2387, 1, 5, 22.52, 64.79, High},
		{"proj0", 9407, 151274, 527, 3697, 92.05, 79.31, Medium},
		{"proj1", 786810, 2496, 2496, 21142, 82.34, 96.88, Medium},
		{"proj2", 1065308, 176879, 25641, 3624, 78.74, 93.93, Low},
		{"proj3", 19123, 2754, 2128, 116, 75.01, 88.37, Medium},
		{"proj4", 150604, 1058, 6369, 95, 84.39, 95.52, Medium},
	}
}

// ByName returns the catalogue workload with the given name.
func ByName(name string) (Workload, bool) {
	for _, w := range Table1() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}
