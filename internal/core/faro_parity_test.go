package core

import (
	"testing"

	"sprinkler/internal/flash"
	"sprinkler/internal/nvmhc"
	"sprinkler/internal/req"
	"sprinkler/internal/sched"
	"sprinkler/internal/sim"
)

// TestFAROIncrementalMatchesRebuilt is the randomized equivalence suite
// for the incremental FARO grouping: one long-lived Sprinkler carries its
// per-chip grouping caches across many admit/commit/readdress rounds,
// while every round a brand-new Sprinkler rebuilds selection from scratch
// over the scan path. Picks must be pointer-exact at every round — the
// memoized grouping is an acceleration structure, never a behavior
// change. It extends TestIndexSelectMatchesScan, which covers a single
// fresh Select, to the stateful lifetime of a simulation.
func TestFAROIncrementalMatchesRebuilt(t *testing.T) {
	for _, mk := range []func() *Sprinkler{NewSPK1, NewSPK2, NewSPK3} {
		name := mk().Name()
		t.Run(name, func(t *testing.T) {
			rng := sim.NewRand(2024)
			for trial := 0; trial < 20; trial++ {
				idxFab := newFakeFabric()
				idxFab.rx = sched.NewReadyIndex(idxFab.geo.NumChips())
				scanFab := newFakeFabric()
				q := nvmhc.NewQueue(64)

				inc := mk() // persistent: caches survive across rounds
				nextID := int64(trial * 10_000)
				var queued []*req.IO

				admit := func(n int) {
					for i := 0; i < n && !q.Full(); i++ {
						pages := 1 + rng.Intn(6)
						kind := req.Read
						if rng.Bool(0.3) {
							kind = req.Write
						}
						io := req.NewIO(nextID, kind, req.LPN(nextID*64), pages, 0)
						nextID++
						for _, m := range io.Mem {
							m.Addr = flash.Addr{
								Chip:  flash.ChipID(rng.Intn(idxFab.geo.NumChips())),
								Die:   rng.Intn(idxFab.geo.DiesPerChip),
								Plane: rng.Intn(idxFab.geo.PlanesPerDie),
								Block: rng.Intn(idxFab.geo.BlocksPerPlane),
								Page:  rng.Intn(idxFab.geo.PagesPerBlock),
							}
						}
						q.Enqueue(0, io)
						for _, m := range io.Mem {
							idxFab.rx.Add(m)
						}
						queued = append(queued, io)
					}
				}

				admit(6)
				for round := 0; round < 40; round++ {
					// Random per-chip commitment pressure, mirrored on
					// both fabrics.
					for c := 0; c < idxFab.geo.NumChips(); c++ {
						o := rng.Intn(3)
						idxFab.out[flash.ChipID(c)] = o
						scanFab.out[flash.ChipID(c)] = o
					}

					gotInc := append([]*req.Mem(nil), inc.Select(0, q, idxFab)...)
					gotScan := append([]*req.Mem(nil), mk().Select(0, q, scanFab)...)
					if len(gotInc) != len(gotScan) {
						t.Fatalf("trial %d round %d: incremental picked %d, rebuilt %d",
							trial, round, len(gotInc), len(gotScan))
					}
					for i := range gotInc {
						if gotInc[i] != gotScan[i] {
							t.Fatalf("trial %d round %d: pick %d differs: inc io#%d/%d, rebuilt io#%d/%d",
								trial, round, i,
								gotInc[i].IO.ID, gotInc[i].Index,
								gotScan[i].IO.ID, gotScan[i].Index)
						}
					}

					// Commit a random prefix of the picks: states advance
					// and the ready index drops them — the mutation the
					// incremental caches must notice.
					if len(gotInc) > 0 {
						k := 1 + rng.Intn(len(gotInc))
						for _, m := range gotInc[:k] {
							m.State = req.StateComposed
							idxFab.rx.Remove(m)
						}
					}

					// Occasionally readdress one still-queued request
					// (live-data migration): both paths must see the new
					// address, the incremental one via the index hook.
					if rng.Bool(0.3) {
						var cand []*req.Mem
						for _, io := range queued {
							for _, m := range io.Mem {
								if m.State == req.StateQueued {
									cand = append(cand, m)
								}
							}
						}
						if len(cand) > 0 {
							m := cand[rng.Intn(len(cand))]
							dst := flash.Addr{
								Chip:  flash.ChipID(rng.Intn(idxFab.geo.NumChips())),
								Die:   rng.Intn(idxFab.geo.DiesPerChip),
								Plane: rng.Intn(idxFab.geo.PlanesPerDie),
								Block: rng.Intn(idxFab.geo.BlocksPerPlane),
								Page:  rng.Intn(idxFab.geo.PagesPerBlock),
							}
							idxFab.rx.Readdress(m, dst)
						}
					}

					// Release fully-selected I/Os (their tags free up) and
					// admit a few new ones.
					keep := queued[:0]
					for _, io := range queued {
						done := true
						for _, m := range io.Mem {
							if m.State == req.StateQueued {
								done = false
								break
							}
						}
						if done {
							q.Release(0, io)
						} else {
							keep = append(keep, io)
						}
					}
					queued = keep
					admit(rng.Intn(4))
				}
			}
		})
	}
}
