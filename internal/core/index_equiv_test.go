package core

import (
	"testing"

	"sprinkler/internal/flash"
	"sprinkler/internal/nvmhc"
	"sprinkler/internal/req"
	"sprinkler/internal/sched"
	"sprinkler/internal/sim"
)

// TestIndexSelectMatchesScan cross-checks the two selection paths: for
// randomized queue contents, Select driven by the incremental ready index
// must return exactly the memory requests, in exactly the order, that the
// full queue scan produces. This pins the tentpole claim that the index is
// a pure acceleration structure, not a behavior change.
func TestIndexSelectMatchesScan(t *testing.T) {
	for _, mk := range []func() *Sprinkler{NewSPK1, NewSPK2, NewSPK3} {
		name := mk().Name()
		t.Run(name, func(t *testing.T) {
			rng := sim.NewRand(99)
			for trial := 0; trial < 50; trial++ {
				scanFab := newFakeFabric()
				idxFab := newFakeFabric()
				idxFab.rx = sched.NewReadyIndex(idxFab.geo.NumChips())

				q := nvmhc.NewQueue(16)
				nIOs := 1 + rng.Intn(12)
				for i := 0; i < nIOs; i++ {
					pages := 1 + rng.Intn(6)
					io := req.NewIO(int64(trial*100+i), req.Read, req.LPN(i*64), pages, 0)
					for _, m := range io.Mem {
						m.Addr = flash.Addr{
							Chip:  flash.ChipID(rng.Intn(idxFab.geo.NumChips())),
							Die:   rng.Intn(idxFab.geo.DiesPerChip),
							Plane: rng.Intn(idxFab.geo.PlanesPerDie),
							Block: rng.Intn(idxFab.geo.BlocksPerPlane),
							Page:  rng.Intn(idxFab.geo.PagesPerBlock),
						}
					}
					q.Enqueue(0, io)
					for _, m := range io.Mem {
						idxFab.rx.Add(m)
					}
					// Mark a few members as already selected: both paths
					// must skip them.
					for _, m := range io.Mem {
						if rng.Bool(0.2) {
							m.State = req.StateComposed
							idxFab.rx.Remove(m)
						}
					}
				}
				// Random pre-existing per-chip pressure.
				for c := 0; c < idxFab.geo.NumChips(); c++ {
					o := rng.Intn(4)
					scanFab.out[flash.ChipID(c)] = o
					idxFab.out[flash.ChipID(c)] = o
				}

				gotScan := append([]*req.Mem(nil), mk().Select(0, q, scanFab)...)
				gotIdx := append([]*req.Mem(nil), mk().Select(0, q, idxFab)...)
				if len(gotScan) != len(gotIdx) {
					t.Fatalf("trial %d: scan selected %d, index selected %d",
						trial, len(gotScan), len(gotIdx))
				}
				for i := range gotScan {
					if gotScan[i] != gotIdx[i] {
						t.Fatalf("trial %d: position %d differs: scan io#%d/%d, index io#%d/%d",
							trial, i,
							gotScan[i].IO.ID, gotScan[i].Index,
							gotIdx[i].IO.ID, gotIdx[i].Index)
					}
				}
			}
		})
	}
}
