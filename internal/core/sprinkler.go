// Package core implements the paper's contribution: Sprinkler, a
// device-level I/O scheduler that maximizes many-chip SSD resource
// utilization (§4).
//
// Sprinkler combines two mechanisms:
//
//   - RIOS (resource-driven I/O scheduling, §4.1): memory requests are
//     composed and committed per physical flash chip — traversing chips in
//     channel-offset order — instead of per host I/O request, which relaxes
//     the parallelism dependency on I/O sizes, offsets and arrival order.
//
//   - FARO (flash-level-parallelism aware request over-commitment, §4.2):
//     many memory requests are committed to each chip ahead of need,
//     prioritized by overlap depth (how many can fuse into one high-FLP
//     transaction) and connectivity (how many belong to the same I/O), so
//     the flash controller can coalesce them into single die-interleaved,
//     plane-shared transactions.
//
// The three evaluated variants are constructed with NewSPK1 (FARO only),
// NewSPK2 (RIOS only) and NewSPK3 (both).
//
// Selection is driven by the device's incremental per-chip ready index
// (sched.ReadyIndex): instead of rescanning every queued I/O's member list
// on each pump, Sprinkler walks only the chips that hold candidates. The
// index keeps requests in admission order, so the result is identical to
// the full-queue scan it replaces; the scan survives as a fallback for
// fabrics without an index and for queues under a §4.4 FUA barrier.
package core

import (
	"sprinkler/internal/flash"
	"sprinkler/internal/nvmhc"
	"sprinkler/internal/req"
	"sprinkler/internal/sched"
	"sprinkler/internal/sim"
)

// Sprinkler implements sched.Scheduler. The zero value is not useful; use
// one of the constructors.
type Sprinkler struct {
	// UseRIOS composes and commits per chip across the whole queue, in the
	// channel-offset traversal order. When false, composition stays within
	// the Window oldest I/Os, in arrival order (parallelism dependency).
	UseRIOS bool
	// UseFARO over-commits up to Slots requests per chip, ordered by
	// overlap depth then connectivity. When false, requests commit in
	// arrival order.
	UseFARO bool
	// Window bounds how many queue entries a non-RIOS Sprinkler may
	// compose from (SPK1's remaining parallelism dependency). Ignored when
	// UseRIOS is set.
	Window int
	// Slots is the per-chip commitment budget: the over-commitment depth
	// with FARO, or a small pipeline depth without it.
	Slots int
	// GroupCap bounds how many per-chip candidates the FARO grouping
	// examines per Select call; it only limits scheduler work per
	// invocation, not eventual service.
	GroupCap int

	variant string

	// Reusable selection state: Select performs no steady-state heap
	// allocations. All buffers are valid only within one Select call
	// (out until the next call, per the Scheduler contract).
	out       []*req.Mem
	chipBuf   []*req.Mem
	remaining []*req.Mem
	ordered   []*req.Mem
	groupCur  []*req.Mem
	groupBest []*req.Mem
	dies      []dieGroupState // per-die occupancy scratch for buildGroup
	chipOrder []flash.ChipID  // RIOS traversal order, cached per geometry
	chipKeys  []chipKey       // non-RIOS chip ordering scratch

	// groupSizes and readFirstMoved describe the last faroOrder run: the
	// greedy group sizes in output order, and whether the §4.4 read-first
	// pass reordered anything (which misaligns the output from the group
	// boundaries). selectChip copies them into the chip's memo to enable
	// the partial-invalidation fast path.
	groupSizes     []int32
	readFirstMoved bool

	// caches holds the per-chip incremental FARO grouping state: the
	// memoized selection order, keyed by the ready index's membership
	// version. A chip whose candidate set did not change since the last
	// Select (the common case — each pump touches a handful of chips)
	// reuses its cached order instead of rebuilding the O(GroupCap²)
	// grouping, which was the dominant SPK3 scheduling cost. Because the
	// version covers every admit/commit/readdress, the cached order is
	// bit-identical to what a rebuild would produce.
	caches  []faroCache
	cacheRx *sched.ReadyIndex // index the caches were built against
}

// faroCache is one chip's memoized selection order.
type faroCache struct {
	version uint64
	maxSeq  uint64
	valid   bool
	order   []*req.Mem

	// addVer/readdrVer snapshot the index's per-cause counters at memo
	// time: if only removals happened since, the candidate set shrank but
	// nothing entered or moved — the partial-invalidation precondition.
	addVer    uint64
	readdrVer uint64

	// groups holds the greedy group sizes of order, in order. Empty when
	// the boundaries are unusable (the read-first pass reordered output),
	// which disables the fast path until the next full rebuild.
	groups []int32
}

// chipKey orders chips by their earliest candidate's admission position.
type chipKey struct {
	chip flash.ChipID
	seq  uint64
	idx  int32
}

// NewSPK1 returns Sprinkler using only FARO (§5.1). Composition remains
// I/O-arrival-driven within a small window, so it cannot always secure
// enough requests — the weakness §5.2 observes for SPK1 on small-request
// workloads.
func NewSPK1() *Sprinkler {
	return &Sprinkler{UseFARO: true, Window: 8, Slots: 16, GroupCap: 48, variant: "SPK1"}
}

// NewSPK2 returns Sprinkler using only RIOS: full-queue, per-chip,
// fine-grain out-of-order composition with a shallow per-chip pipeline and
// no FLP-aware prioritization.
func NewSPK2() *Sprinkler {
	return &Sprinkler{UseRIOS: true, Slots: 2, GroupCap: 48, variant: "SPK2"}
}

// NewSPK3 returns the full Sprinkler: RIOS traversal plus FARO
// over-commitment.
func NewSPK3() *Sprinkler {
	return &Sprinkler{UseRIOS: true, UseFARO: true, Slots: 16, GroupCap: 48, variant: "SPK3"}
}

// Name implements sched.Scheduler.
func (s *Sprinkler) Name() string {
	if s.variant != "" {
		return s.variant
	}
	return "SPK"
}

// NeedsReaddressing implements sched.Scheduler: Sprinkler exploits the
// internal resource layout, so it subscribes to the readdressing callback
// (§4.3) and always sees post-migration physical addresses.
func (s *Sprinkler) NeedsReaddressing() bool { return true }

// ResetState implements sched.StateResetter: the memoized FARO orders and
// every scratch buffer are dropped so a reused scheduler neither replays
// stale selection state nor pins the previous run's request objects.
// Grown buffer capacities (and the geometry-keyed chip order) survive, so
// reuse stays allocation-free; buffer capacity never influences selection.
func (s *Sprinkler) ResetState() {
	for i := range s.caches {
		cc := &s.caches[i]
		for j := range cc.order {
			cc.order[j] = nil
		}
		s.caches[i] = faroCache{order: cc.order[:0], groups: cc.groups[:0]}
	}
	s.cacheRx = nil
	clear := func(ms []*req.Mem) []*req.Mem {
		for i := range ms {
			ms[i] = nil
		}
		return ms[:0]
	}
	s.out = clear(s.out)
	s.chipBuf = clear(s.chipBuf)
	s.remaining = clear(s.remaining)
	s.ordered = clear(s.ordered)
	s.groupCur = clear(s.groupCur)
	s.groupBest = clear(s.groupBest)
}

// Select implements sched.Scheduler.
func (s *Sprinkler) Select(now sim.Time, q *nvmhc.Queue, fab sched.Fabric) []*req.Mem {
	rx := fab.Ready()
	if rx == nil || q.HasFUA() {
		// No index (test fabrics), or an FUA barrier is in effect: scan
		// the queue, which enforces the §4.4 ordering rules.
		return s.selectScan(now, q, fab)
	}
	g := fab.Geo()
	if s.cacheRx != rx || len(s.caches) != rx.NumChips() {
		// New device/index: every memoized order is meaningless (version
		// counters restart per index), so start from scratch.
		s.cacheRx = rx
		if len(s.caches) != rx.NumChips() {
			s.caches = make([]faroCache, rx.NumChips())
			if s.GroupCap > 0 {
				// One slab backs every cache's group-size storage: group
				// counts never exceed GroupCap (Gather is capped by it),
				// so fixed per-cache capacity avoids per-chip growth
				// reallocations on the hot rebuild path. The three-index
				// slice expression walls the caches off from each other.
				slab := make([]int32, len(s.caches)*s.GroupCap)
				for i := range s.caches {
					lo, hi := i*s.GroupCap, (i+1)*s.GroupCap
					s.caches[i].groups = slab[lo:lo:hi]
				}
				if cap(s.groupSizes) < s.GroupCap {
					s.groupSizes = make([]int32, 0, s.GroupCap)
				}
			}
		} else {
			// Same chip count, new index (a recycled device after Reset):
			// invalidate every memo but keep the grown order/group storage —
			// re-growing it from nil cost ~35 allocations per sweep cell,
			// the dominant residual alloc in pooled sweeps. Stale request
			// pointers are cleared so the dead run's objects are not pinned.
			for i := range s.caches {
				cc := &s.caches[i]
				for j := range cc.order {
					cc.order[j] = nil
				}
				s.caches[i] = faroCache{order: cc.order[:0], groups: cc.groups[:0]}
			}
		}
	}

	// Non-RIOS composition is bounded to the Window oldest queue entries:
	// cap candidates by the admission sequence of the window's last entry.
	maxSeq := ^uint64(0)
	if !s.UseRIOS && s.Window > 0 {
		seq, ok := q.SeqAt(s.Window - 1)
		if !ok {
			return nil
		}
		maxSeq = seq
	}

	out := s.out[:0]
	if s.UseRIOS {
		// Traversal order: RIOS visits equal chip offsets across channels
		// first (§4.1).
		s.ensureChipOrder(g)
		for _, c := range s.chipOrder {
			out = s.selectChip(g, fab, rx, c, maxSeq, out)
		}
	} else {
		// Without RIOS the chip order follows first-candidate arrival,
		// i.e. ascending earliest (admission seq, member index).
		keys := s.chipKeys[:0]
		for c := 0; c < rx.NumChips(); c++ {
			id := flash.ChipID(c)
			m := rx.First(id)
			if m == nil || m.IO.Seq > maxSeq {
				continue
			}
			keys = append(keys, chipKey{chip: id, seq: m.IO.Seq, idx: int32(m.Index)})
		}
		// Insertion sort: key (seq, idx) is unique per chip, the chip
		// count is small, and this stays allocation-free.
		for i := 1; i < len(keys); i++ {
			k := keys[i]
			j := i - 1
			for j >= 0 && (keys[j].seq > k.seq || (keys[j].seq == k.seq && keys[j].idx > k.idx)) {
				keys[j+1] = keys[j]
				j--
			}
			keys[j+1] = k
		}
		s.chipKeys = keys
		for _, k := range keys {
			out = s.selectChip(g, fab, rx, k.chip, maxSeq, out)
		}
	}
	s.out = out
	if len(out) == 0 {
		return nil
	}
	return out
}

// selectChip commits chip c's candidates up to the free budget, in FARO
// priority order when enabled.
//
// With FARO the ordering is memoized per chip and reused verbatim while
// the chip's ready-index version (and SPK1's window bound) are
// unchanged; only chips whose candidate set actually changed since
// their last selection pay the grouping cost. Without FARO (SPK2) the
// order is just the gathered admission order — linear anyway — so the
// memo would only add a copy and is skipped.
func (s *Sprinkler) selectChip(g flash.Geometry, fab sched.Fabric, rx *sched.ReadyIndex, c flash.ChipID, maxSeq uint64, out []*req.Mem) []*req.Mem {
	if rx.Live(c) == 0 {
		return out
	}
	free := s.Slots - fab.Outstanding(c)
	if free <= 0 {
		return out
	}
	var list []*req.Mem
	if s.UseFARO {
		cc := &s.caches[c]
		if cc.valid && cc.maxSeq == maxSeq && cc.version != rx.Version(c) {
			s.tryAdvance(rx, c, cc)
		}
		if !cc.valid || cc.version != rx.Version(c) || cc.maxSeq != maxSeq {
			s.chipBuf = rx.Gather(c, s.chipBuf[:0], s.GroupCap, maxSeq)
			ordered := s.faroOrder(g, s.chipBuf)
			cc.order = append(cc.order[:0], ordered...)
			cc.version = rx.Version(c)
			cc.addVer = rx.AddVersion(c)
			cc.readdrVer = rx.ReaddrVersion(c)
			cc.maxSeq = maxSeq
			cc.valid = true
			if s.readFirstMoved {
				cc.groups = cc.groups[:0]
			} else {
				cc.groups = append(cc.groups[:0], s.groupSizes...)
			}
		}
		list = cc.order
	} else {
		s.chipBuf = rx.Gather(c, s.chipBuf[:0], s.GroupCap, maxSeq)
		list = s.chipBuf
	}
	if len(list) == 0 {
		return out
	}
	if len(list) > free {
		list = list[:free]
	}
	return append(out, list...)
}

// tryAdvance is the FARO partial-invalidation fast path: when the only
// changes to chip c since the memo are removals of a whole-group prefix of
// the cached order, the surviving suffix is exactly what a rebuild would
// produce, so the memo advances in place instead of paying the
// O(GroupCap²) regrouping — the common case, since Select returns (and the
// device then commits) a prefix of the cached order.
//
// Soundness: greedy grouping consumes its working set in rounds, each
// emitting one group; round k+1's input is the admission-ordered candidate
// list minus the members of groups 1..k — which is exactly what Gather
// would return after those members' removal (removal preserves the order
// of the rest). So dropping whole leading groups leaves the remaining
// rounds' output — the cached suffix — unchanged. The guards below
// re-establish that equivalence from the live index:
//
//   - addVer/readdrVer unchanged: nothing entered the list and no address
//     moved, so the candidate universe only shrank;
//   - the removed entries form a prefix of the cached order ending on a
//     group boundary (a split group's leftovers regroup differently);
//   - every surviving entry is still in the chip's list, verified by slot
//     identity — a recycled request object re-admitted elsewhere fails
//     list[m.ReadySlot] == m even if it looks StateQueued;
//   - the suffix covers the chip's whole live set: a Gather capped by
//     GroupCap (or an SPK1 window) hid candidates a rebuild would now
//     surface, so a count mismatch forces the rebuild.
//
// On success the memo's version catches up to the index; otherwise the
// caller's staleness check triggers the full rebuild.
func (s *Sprinkler) tryAdvance(rx *sched.ReadyIndex, c flash.ChipID, cc *faroCache) {
	if len(cc.groups) == 0 ||
		cc.addVer != rx.AddVersion(c) || cc.readdrVer != rx.ReaddrVersion(c) {
		return
	}
	list := rx.List(c)
	indexed := func(m *req.Mem) bool {
		return m.State == req.StateQueued && m.ReadySlot >= 0 &&
			int(m.ReadySlot) < len(list) && list[m.ReadySlot] == m
	}
	cut := 0
	for cut < len(cc.order) && !indexed(cc.order[cut]) {
		cut++
	}
	if cut == 0 {
		return
	}
	gi, rem := 0, cut
	for gi < len(cc.groups) && rem > 0 {
		rem -= int(cc.groups[gi])
		gi++
	}
	if rem != 0 {
		return
	}
	for i := cut; i < len(cc.order); i++ {
		if !indexed(cc.order[i]) {
			return
		}
	}
	if len(cc.order)-cut != rx.Live(c) {
		return
	}
	cc.order = cc.order[:copy(cc.order, cc.order[cut:])]
	cc.groups = cc.groups[:copy(cc.groups, cc.groups[gi:])]
	cc.version = rx.Version(c)
}

// ensureChipOrder caches the RIOS traversal: offset-major, channel-minor.
func (s *Sprinkler) ensureChipOrder(g flash.Geometry) {
	if len(s.chipOrder) == g.NumChips() {
		return
	}
	s.chipOrder = s.chipOrder[:0]
	for off := 0; off < g.ChipsPerChan; off++ {
		for ch := 0; ch < g.Channels; ch++ {
			s.chipOrder = append(s.chipOrder, g.ChipAt(ch, off))
		}
	}
}

// selectScan is the pre-index selection path: gather candidates by
// scanning the queue (honouring FUA barriers), then group per chip.
func (s *Sprinkler) selectScan(now sim.Time, q *nvmhc.Queue, fab sched.Fabric) []*req.Mem {
	window := 0
	if !s.UseRIOS {
		window = s.Window
	}
	cands := sched.CandidateWindow(q, window)
	if len(cands) == 0 {
		return nil
	}
	g := fab.Geo()

	// Categorize per physical chip (Algorithm 1: phy_layout[chip].insert).
	byChip := make(map[flash.ChipID][]*req.Mem)
	var chips []flash.ChipID
	for _, m := range cands {
		c := m.Addr.Chip
		if _, seen := byChip[c]; !seen {
			chips = append(chips, c)
		}
		byChip[c] = append(byChip[c], m)
	}

	// Traversal order: RIOS visits equal chip offsets across channels
	// first (§4.1); without RIOS the chip order follows first-candidate
	// arrival, i.e. the I/O order already present in `chips`.
	if s.UseRIOS {
		sched.SortChipsByOffset(g, chips)
	}

	var out []*req.Mem
	for _, c := range chips {
		free := s.Slots - fab.Outstanding(c)
		if free <= 0 {
			continue
		}
		list := byChip[c]
		if len(list) > s.GroupCap {
			list = list[:s.GroupCap]
		}
		if s.UseFARO {
			list = s.faroOrder(g, list)
		}
		if len(list) > free {
			list = list[:free]
		}
		out = append(out, list...)
	}
	return out
}

// faroOrder orders one chip's candidates by FARO priority: requests are
// grouped into maximal legal transactions; groups with the highest overlap
// depth go first, ties broken by connectivity (§4.2), then by arrival
// order for determinism. Within the final order, a §4.4 write-after-read
// hazard (read and write to the same logical page) keeps the read first.
// The returned slice is scheduler-owned scratch, valid until the next call.
func (s *Sprinkler) faroOrder(g flash.Geometry, cands []*req.Mem) []*req.Mem {
	remaining := append(s.remaining[:0], cands...)
	out := s.ordered[:0]
	s.groupSizes = s.groupSizes[:0]
	for len(remaining) > 0 {
		s.bestGroup(g, remaining)
		out = append(out, s.groupBest...)
		s.groupSizes = append(s.groupSizes, int32(len(s.groupBest)))
		// Remove the chosen members, preserving order.
		keep := remaining[:0]
		for _, m := range remaining {
			inGroup := false
			for _, b := range s.groupBest {
				if b == m {
					inGroup = true
					break
				}
			}
			if !inGroup {
				keep = append(keep, m)
			}
		}
		remaining = keep
	}
	s.remaining = remaining[:0]
	s.ordered = out
	s.readFirstMoved = enforceReadFirst(out)
	return out
}

// bestGroup greedily builds a group seeded at every candidate and leaves
// the best by (depth, connectivity, earliest seed) in s.groupBest.
func (s *Sprinkler) bestGroup(g flash.Geometry, remaining []*req.Mem) {
	s.groupBest = s.groupBest[:0]
	bestDepth, bestConn := 0, 0
	for seed := range remaining {
		depth, conn := s.buildGroup(g, remaining, seed)
		if depth > bestDepth || (depth == bestDepth && conn > bestConn) {
			bestDepth, bestConn = depth, conn
			s.groupBest, s.groupCur = s.groupCur, s.groupBest
		}
		if bestDepth >= g.MaxFLP() {
			break // cannot do better
		}
	}
}

// dieGroupState is one die's occupancy while a group is being built: the
// planes taken so far and the shared-wordline (block, page) the die's
// first member fixed. mask == 0 means the die is untouched.
type dieGroupState struct {
	mask  uint32
	block int32
	page  int32
}

// buildGroup coalesces remaining[seed] with every later-compatible
// candidate into s.groupCur, mirroring what the flash controller's
// transaction builder will do with the committed queue (the §2.2 rules
// flash.Transaction.CanJoin enforces: one request per (die, plane);
// plane sharing needs matching block and page offsets; same operation;
// at most MaxFLP members). The checks run against per-die occupancy
// state instead of a Transaction value, so each candidate costs O(1)
// rather than a scan of the group built so far. It returns the group's
// overlap depth and connectivity.
func (s *Sprinkler) buildGroup(g flash.Geometry, remaining []*req.Mem, seed int) (depth, conn int) {
	if len(s.dies) < g.DiesPerChip {
		s.dies = make([]dieGroupState, g.DiesPerChip)
	}
	dies := s.dies[:g.DiesPerChip]
	for i := range dies {
		dies[i] = dieGroupState{}
	}
	cur := s.groupCur[:0]
	sm := remaining[seed]
	op := sm.IO.Kind
	ds := &dies[sm.Addr.Die]
	ds.mask = 1 << uint(sm.Addr.Plane)
	ds.block, ds.page = int32(sm.Addr.Block), int32(sm.Addr.Page)
	cur = append(cur, sm)
	maxFLP := g.MaxFLP()
	for i, m := range remaining {
		if i == seed {
			continue
		}
		if len(cur) >= maxFLP {
			break
		}
		if m.IO.Kind != op {
			continue
		}
		d := &dies[m.Addr.Die]
		bit := uint32(1) << uint(m.Addr.Plane)
		if d.mask == 0 {
			d.mask = bit
			d.block, d.page = int32(m.Addr.Block), int32(m.Addr.Page)
		} else if d.mask&bit != 0 || d.block != int32(m.Addr.Block) || d.page != int32(m.Addr.Page) {
			continue
		} else {
			d.mask |= bit
		}
		cur = append(cur, m)
	}
	s.groupCur = cur
	// Connectivity: the largest member count sharing one parent I/O. The
	// group is at most MaxFLP wide, so the quadratic scan is trivial.
	for i, m := range cur {
		n := 1
		for j := 0; j < i; j++ {
			if cur[j].IO == m.IO {
				n++
			}
		}
		if n > conn {
			conn = n
		}
	}
	return len(cur), conn
}

// enforceReadFirst stable-reorders so that a read of an LPN issued by an
// older I/O precedes any newer write of the same LPN (§4.4 hazard control:
// serve the read memory requests first in the write-after-read case). The
// pass is quadratic but bounded by GroupCap. It reports whether anything
// moved — a moved read crosses group boundaries, which invalidates the
// partial-invalidation bookkeeping for this order.
func enforceReadFirst(ms []*req.Mem) (moved bool) {
	for i := 0; i < len(ms); i++ {
		w := ms[i]
		if w.IO.Kind != req.Write {
			continue
		}
		for j := i + 1; j < len(ms); j++ {
			r := ms[j]
			if r.IO.Kind != req.Read || r.LPN != w.LPN || r.IO.ID >= w.IO.ID {
				continue
			}
			// The older read is ordered after the newer write: rotate the
			// read to sit just before the write, shifting the rest right.
			copy(ms[i+1:j+1], ms[i:j])
			ms[i] = r
			moved = true
			break
		}
	}
	return moved
}
