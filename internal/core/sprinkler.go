// Package core implements the paper's contribution: Sprinkler, a
// device-level I/O scheduler that maximizes many-chip SSD resource
// utilization (§4).
//
// Sprinkler combines two mechanisms:
//
//   - RIOS (resource-driven I/O scheduling, §4.1): memory requests are
//     composed and committed per physical flash chip — traversing chips in
//     channel-offset order — instead of per host I/O request, which relaxes
//     the parallelism dependency on I/O sizes, offsets and arrival order.
//
//   - FARO (flash-level-parallelism aware request over-commitment, §4.2):
//     many memory requests are committed to each chip ahead of need,
//     prioritized by overlap depth (how many can fuse into one high-FLP
//     transaction) and connectivity (how many belong to the same I/O), so
//     the flash controller can coalesce them into single die-interleaved,
//     plane-shared transactions.
//
// The three evaluated variants are constructed with NewSPK1 (FARO only),
// NewSPK2 (RIOS only) and NewSPK3 (both).
package core

import (
	"sprinkler/internal/flash"
	"sprinkler/internal/nvmhc"
	"sprinkler/internal/req"
	"sprinkler/internal/sched"
	"sprinkler/internal/sim"
)

// Sprinkler implements sched.Scheduler. The zero value is not useful; use
// one of the constructors.
type Sprinkler struct {
	// UseRIOS composes and commits per chip across the whole queue, in the
	// channel-offset traversal order. When false, composition stays within
	// the Window oldest I/Os, in arrival order (parallelism dependency).
	UseRIOS bool
	// UseFARO over-commits up to Slots requests per chip, ordered by
	// overlap depth then connectivity. When false, requests commit in
	// arrival order.
	UseFARO bool
	// Window bounds how many queue entries a non-RIOS Sprinkler may
	// compose from (SPK1's remaining parallelism dependency). Ignored when
	// UseRIOS is set.
	Window int
	// Slots is the per-chip commitment budget: the over-commitment depth
	// with FARO, or a small pipeline depth without it.
	Slots int
	// GroupCap bounds how many per-chip candidates the FARO grouping
	// examines per Select call; it only limits scheduler work per
	// invocation, not eventual service.
	GroupCap int

	variant string
}

// NewSPK1 returns Sprinkler using only FARO (§5.1). Composition remains
// I/O-arrival-driven within a small window, so it cannot always secure
// enough requests — the weakness §5.2 observes for SPK1 on small-request
// workloads.
func NewSPK1() *Sprinkler {
	return &Sprinkler{UseFARO: true, Window: 8, Slots: 16, GroupCap: 48, variant: "SPK1"}
}

// NewSPK2 returns Sprinkler using only RIOS: full-queue, per-chip,
// fine-grain out-of-order composition with a shallow per-chip pipeline and
// no FLP-aware prioritization.
func NewSPK2() *Sprinkler {
	return &Sprinkler{UseRIOS: true, Slots: 2, GroupCap: 48, variant: "SPK2"}
}

// NewSPK3 returns the full Sprinkler: RIOS traversal plus FARO
// over-commitment.
func NewSPK3() *Sprinkler {
	return &Sprinkler{UseRIOS: true, UseFARO: true, Slots: 16, GroupCap: 48, variant: "SPK3"}
}

// Name implements sched.Scheduler.
func (s *Sprinkler) Name() string {
	if s.variant != "" {
		return s.variant
	}
	return "SPK"
}

// NeedsReaddressing implements sched.Scheduler: Sprinkler exploits the
// internal resource layout, so it subscribes to the readdressing callback
// (§4.3) and always sees post-migration physical addresses.
func (s *Sprinkler) NeedsReaddressing() bool { return true }

// Select implements sched.Scheduler.
func (s *Sprinkler) Select(now sim.Time, q *nvmhc.Queue, fab sched.Fabric) []*req.Mem {
	window := 0
	if !s.UseRIOS {
		window = s.Window
	}
	cands := sched.CandidateWindow(q, window)
	if len(cands) == 0 {
		return nil
	}
	g := fab.Geo()

	// Categorize per physical chip (Algorithm 1: phy_layout[chip].insert).
	byChip := make(map[flash.ChipID][]*req.Mem)
	var chips []flash.ChipID
	for _, m := range cands {
		c := m.Addr.Chip
		if _, seen := byChip[c]; !seen {
			chips = append(chips, c)
		}
		byChip[c] = append(byChip[c], m)
	}

	// Traversal order: RIOS visits equal chip offsets across channels
	// first (§4.1); without RIOS the chip order follows first-candidate
	// arrival, i.e. the I/O order already present in `chips`.
	if s.UseRIOS {
		sched.SortChipsByOffset(g, chips)
	}

	var out []*req.Mem
	for _, c := range chips {
		free := s.Slots - fab.Outstanding(c)
		if free <= 0 {
			continue
		}
		list := byChip[c]
		if len(list) > s.GroupCap {
			list = list[:s.GroupCap]
		}
		if s.UseFARO {
			list = faroOrder(g, list)
		}
		if len(list) > free {
			list = list[:free]
		}
		out = append(out, list...)
	}
	return out
}

// faroOrder orders one chip's candidates by FARO priority: requests are
// grouped into maximal legal transactions; groups with the highest overlap
// depth go first, ties broken by connectivity (§4.2), then by arrival
// order for determinism. Within the final order, a §4.4 write-after-read
// hazard (read and write to the same logical page) keeps the read first.
func faroOrder(g flash.Geometry, cands []*req.Mem) []*req.Mem {
	remaining := append([]*req.Mem(nil), cands...)
	out := make([]*req.Mem, 0, len(cands))
	for len(remaining) > 0 {
		gi := bestGroup(g, remaining)
		out = append(out, gi.members...)
		// Remove the chosen members, preserving order.
		keep := remaining[:0]
		inGroup := make(map[*req.Mem]bool, len(gi.members))
		for _, m := range gi.members {
			inGroup[m] = true
		}
		for _, m := range remaining {
			if !inGroup[m] {
				keep = append(keep, m)
			}
		}
		remaining = keep
	}
	enforceReadFirst(out)
	return out
}

// group is a candidate transaction with its FARO metrics.
type group struct {
	members      []*req.Mem
	depth        int // overlap depth: members on distinct (die, plane)
	connectivity int // max members sharing one parent I/O
}

// bestGroup greedily builds a group seeded at every candidate and returns
// the best by (depth, connectivity, earliest seed).
func bestGroup(g flash.Geometry, remaining []*req.Mem) group {
	var best group
	for seed := range remaining {
		gr := buildGroup(g, remaining, seed)
		if gr.depth > best.depth ||
			(gr.depth == best.depth && gr.connectivity > best.connectivity) {
			best = gr
		}
		if best.depth >= g.MaxFLP() {
			break // cannot do better
		}
	}
	return best
}

// buildGroup coalesces remaining[seed] with every later-compatible
// candidate, mirroring what the flash controller's transaction builder
// will do with the committed queue.
func buildGroup(g flash.Geometry, remaining []*req.Mem, seed int) group {
	var txn flash.Transaction
	gr := group{}
	add := func(m *req.Mem) bool {
		if err := txn.Add(g, flash.Request{Op: m.Op(), Addr: m.Addr}); err != nil {
			return false
		}
		gr.members = append(gr.members, m)
		return true
	}
	add(remaining[seed])
	for i, m := range remaining {
		if i == seed {
			continue
		}
		if txn.Len() >= g.MaxFLP() {
			break
		}
		add(m)
	}
	gr.depth = txn.Len()
	perIO := make(map[int64]int)
	for _, m := range gr.members {
		perIO[m.IO.ID]++
		if perIO[m.IO.ID] > gr.connectivity {
			gr.connectivity = perIO[m.IO.ID]
		}
	}
	return gr
}

// enforceReadFirst stable-reorders so that a read of an LPN issued by an
// older I/O precedes any newer write of the same LPN (§4.4 hazard control:
// serve the read memory requests first in the write-after-read case). The
// pass is quadratic but bounded by GroupCap.
func enforceReadFirst(ms []*req.Mem) {
	for i := 0; i < len(ms); i++ {
		w := ms[i]
		if w.IO.Kind != req.Write {
			continue
		}
		for j := i + 1; j < len(ms); j++ {
			r := ms[j]
			if r.IO.Kind != req.Read || r.LPN != w.LPN || r.IO.ID >= w.IO.ID {
				continue
			}
			// The older read is ordered after the newer write: rotate the
			// read to sit just before the write, shifting the rest right.
			copy(ms[i+1:j+1], ms[i:j])
			ms[i] = r
			break
		}
	}
}
