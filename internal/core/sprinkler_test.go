package core

import (
	"testing"

	"sprinkler/internal/flash"
	"sprinkler/internal/nvmhc"
	"sprinkler/internal/req"
	"sprinkler/internal/sched"
)

type fakeFabric struct {
	geo flash.Geometry
	out map[flash.ChipID]int
	rx  *sched.ReadyIndex // nil exercises the queue-scan fallback
}

func newFakeFabric() *fakeFabric {
	return &fakeFabric{
		geo: flash.Geometry{
			Channels: 2, ChipsPerChan: 2, DiesPerChip: 2, PlanesPerDie: 2,
			BlocksPerPlane: 64, PagesPerBlock: 16, PageSize: 2048,
		},
		out: map[flash.ChipID]int{},
	}
}

func (f *fakeFabric) Geo() flash.Geometry            { return f.geo }
func (f *fakeFabric) Outstanding(c flash.ChipID) int { return f.out[c] }
func (f *fakeFabric) ChipBusy(c flash.ChipID) bool   { return false }
func (f *fakeFabric) Ready() *sched.ReadyIndex       { return f.rx }

func ioAt(id int64, kind req.Kind, addrs ...flash.Addr) *req.IO {
	io := req.NewIO(id, kind, req.LPN(id*1000), len(addrs), 0)
	for i, a := range addrs {
		io.Mem[i].Addr = a
	}
	return io
}

func TestSPK2TraversalOrder(t *testing.T) {
	// Chips: channel*2+offset on a 2x2 layout. RIOS must visit offset 0
	// across channels (chips 0, 2) before offset 1 (chips 1, 3).
	fab := newFakeFabric()
	q := nvmhc.NewQueue(8)
	q.Enqueue(0, ioAt(1, req.Read,
		flash.Addr{Chip: 3, Block: 1},
		flash.Addr{Chip: 1, Block: 2},
		flash.Addr{Chip: 2, Block: 3},
		flash.Addr{Chip: 0, Block: 4},
	))
	s := NewSPK2()
	got := s.Select(0, q, fab)
	if len(got) != 4 {
		t.Fatalf("selected %d, want 4", len(got))
	}
	wantChips := []flash.ChipID{0, 2, 1, 3}
	for i, w := range wantChips {
		if got[i].Addr.Chip != w {
			order := make([]flash.ChipID, len(got))
			for j := range got {
				order[j] = got[j].Addr.Chip
			}
			t.Fatalf("traversal order %v, want %v", order, wantChips)
		}
	}
}

func TestSPK2CrossesIOBoundaries(t *testing.T) {
	// Two I/Os target the same chip; RIOS composes per chip, so both I/Os'
	// requests are selected regardless of order — no head-of-line block.
	fab := newFakeFabric()
	fab.out[0] = 2 // chip 0 saturated
	q := nvmhc.NewQueue(8)
	q.Enqueue(0, ioAt(1, req.Read, flash.Addr{Chip: 0}, flash.Addr{Chip: 1}))
	q.Enqueue(0, ioAt(2, req.Read, flash.Addr{Chip: 2, Block: 5}))
	s := NewSPK2()
	got := s.Select(0, q, fab)
	ios := map[int64]bool{}
	for _, m := range got {
		ios[m.IO.ID] = true
		if m.Addr.Chip == 0 {
			t.Fatal("selected request for saturated chip")
		}
	}
	if !ios[1] || !ios[2] {
		t.Fatalf("RIOS failed to span I/O boundaries: %v", ios)
	}
}

func TestSPK3OvercommitDepth(t *testing.T) {
	fab := newFakeFabric()
	q := nvmhc.NewQueue(8)
	// 6 requests to chip 0 from different I/Os, all coalescable-ish.
	for id := int64(1); id <= 6; id++ {
		q.Enqueue(0, ioAt(id, req.Read, flash.Addr{
			Chip: 0, Die: int(id) % 2, Plane: int(id/2) % 2, Block: int(id), Page: int(id),
		}))
	}
	s3 := NewSPK3()
	if got := len(s3.Select(0, q, fab)); got != 6 {
		t.Fatalf("SPK3 over-committed %d, want 6 (slots=16)", got)
	}
	s2 := NewSPK2()
	if got := len(s2.Select(0, q, fab)); got != 2 {
		t.Fatalf("SPK2 committed %d, want 2 (slots=2)", got)
	}
}

func TestFAROPriorityPrefersDeepGroups(t *testing.T) {
	g := newFakeFabric().geo
	// Group A: 4 requests forming a PAL3 transaction (2 dies x 2 planes,
	// same page/block offsets per die). Group B: a lone request that
	// conflicts with A (same die/plane as one member, different page).
	lone := ioAt(1, req.Read, flash.Addr{Chip: 0, Die: 0, Plane: 0, Block: 9, Page: 9}).Mem[0]
	var deep []*req.Mem
	io3 := req.NewIO(3, req.Read, 3000, 4, 0)
	addrs := []flash.Addr{
		{Chip: 0, Die: 0, Plane: 0, Block: 5, Page: 7},
		{Chip: 0, Die: 0, Plane: 1, Block: 5, Page: 7},
		{Chip: 0, Die: 1, Plane: 0, Block: 6, Page: 3},
		{Chip: 0, Die: 1, Plane: 1, Block: 6, Page: 3},
	}
	for i, a := range addrs {
		io3.Mem[i].Addr = a
		deep = append(deep, io3.Mem[i])
	}
	// Arrival order: lone first — FIFO would commit it first.
	cands := append([]*req.Mem{lone}, deep...)
	got := NewSPK3().faroOrder(g, cands)
	if got[0] == lone {
		t.Fatal("FARO kept FIFO order; deep group should outrank the lone request")
	}
	for i := 0; i < 4; i++ {
		if got[i].IO.ID != 3 {
			t.Fatalf("position %d not from the deep group", i)
		}
	}
	if got[4] != lone {
		t.Fatal("lone request should come last")
	}
}

func TestFAROConnectivityBreaksTies(t *testing.T) {
	g := newFakeFabric().geo
	// Two equal-depth groups (2 members each). Group X's members belong to
	// the same I/O (connectivity 2); group Y's to different I/Os
	// (connectivity 1). X must be committed first even though Y arrived
	// earlier.
	yo1 := ioAt(1, req.Read, flash.Addr{Chip: 0, Die: 0, Plane: 0, Block: 1, Page: 1})
	yo2 := ioAt(2, req.Read, flash.Addr{Chip: 0, Die: 0, Plane: 1, Block: 1, Page: 1})
	x := req.NewIO(3, req.Read, 3000, 2, 0)
	x.Mem[0].Addr = flash.Addr{Chip: 0, Die: 1, Plane: 0, Block: 2, Page: 2}
	x.Mem[1].Addr = flash.Addr{Chip: 0, Die: 1, Plane: 1, Block: 2, Page: 2}

	cands := []*req.Mem{yo1.Mem[0], yo2.Mem[0], x.Mem[0], x.Mem[1]}
	got := NewSPK3().faroOrder(g, cands)
	// Hmm: Y group {yo1, yo2} and X group {x0, x1} are actually mutually
	// coalescable (different dies) into one PAL3 group of depth 4, so the
	// greedy grouping fuses them; verify the fused group leads with all 4.
	if len(got) != 4 {
		t.Fatalf("lost candidates: %d", len(got))
	}

	// Force a true tie by making X conflict with Y's die/planes pagewise.
	x.Mem[0].Addr = flash.Addr{Chip: 0, Die: 0, Plane: 0, Block: 2, Page: 2}
	x.Mem[1].Addr = flash.Addr{Chip: 0, Die: 0, Plane: 1, Block: 2, Page: 2}
	cands = []*req.Mem{yo1.Mem[0], yo2.Mem[0], x.Mem[0], x.Mem[1]}
	got = NewSPK3().faroOrder(g, cands)
	if got[0].IO.ID != 3 || got[1].IO.ID != 3 {
		t.Fatalf("connectivity tie-break failed: first group from io#%d", got[0].IO.ID)
	}
}

func TestFAROReadFirstOnWAR(t *testing.T) {
	// Older read (io 1) and newer write (io 2) to the same LPN; if FARO
	// orders the write ahead, hazard control must restore the read first.
	rd := req.NewIO(1, req.Read, 500, 1, 0)
	rd.Mem[0].Addr = flash.Addr{Chip: 0, Die: 0, Plane: 0, Block: 3, Page: 1}
	wr := req.NewIO(2, req.Write, 500, 1, 0)
	wr.Mem[0].Addr = flash.Addr{Chip: 0, Die: 0, Plane: 0, Block: 8, Page: 0}

	out := []*req.Mem{wr.Mem[0], rd.Mem[0]}
	enforceReadFirst(out)
	if out[0] != rd.Mem[0] {
		t.Fatal("WAR hazard: write ordered before older read of same LPN")
	}
}

func TestEnforceReadFirstLeavesRAWAlone(t *testing.T) {
	// A read from a NEWER I/O than the write (read-after-write) is served
	// from the host buffer (§4.4) and needs no reordering.
	rd := req.NewIO(5, req.Read, 500, 1, 0)
	wr := req.NewIO(2, req.Write, 500, 1, 0)
	out := []*req.Mem{wr.Mem[0], rd.Mem[0]}
	enforceReadFirst(out)
	if out[0] != wr.Mem[0] {
		t.Fatal("RAW case must not be reordered")
	}
}

func TestSPK1WindowLimitsCandidates(t *testing.T) {
	fab := newFakeFabric()
	q := nvmhc.NewQueue(16)
	for id := int64(1); id <= 12; id++ {
		q.Enqueue(0, ioAt(id, req.Read, flash.Addr{Chip: flash.ChipID(id % 4), Block: int(id)}))
	}
	s1 := NewSPK1() // window 8
	got := s1.Select(0, q, fab)
	for _, m := range got {
		if m.IO.ID > 8 {
			t.Fatalf("SPK1 selected io#%d beyond its composition window", m.IO.ID)
		}
	}
	if len(got) != 8 {
		t.Fatalf("SPK1 selected %d, want 8", len(got))
	}
}

func TestVariantNames(t *testing.T) {
	if NewSPK1().Name() != "SPK1" || NewSPK2().Name() != "SPK2" || NewSPK3().Name() != "SPK3" {
		t.Fatal("variant names wrong")
	}
	for _, s := range []*Sprinkler{NewSPK1(), NewSPK2(), NewSPK3()} {
		if !s.NeedsReaddressing() {
			t.Fatalf("%s must subscribe to readdressing", s.Name())
		}
	}
	if (&Sprinkler{}).Name() != "SPK" {
		t.Fatal("zero-variant name wrong")
	}
}

func TestSelectEmptyQueue(t *testing.T) {
	fab := newFakeFabric()
	q := nvmhc.NewQueue(4)
	for _, s := range []*Sprinkler{NewSPK1(), NewSPK2(), NewSPK3()} {
		if got := s.Select(0, q, fab); got != nil {
			t.Fatalf("%s returned %v on empty queue", s.Name(), got)
		}
	}
}

func TestSelectNeverExceedsSlots(t *testing.T) {
	fab := newFakeFabric()
	q := nvmhc.NewQueue(64)
	// 40 requests to chip 0.
	for id := int64(1); id <= 40; id++ {
		q.Enqueue(0, ioAt(id, req.Read, flash.Addr{
			Chip: 0, Die: int(id) % 2, Plane: int(id/2) % 2,
			Block: int(id), Page: int(id) % 16,
		}))
	}
	fab.out[0] = 3
	s := NewSPK3() // slots 16
	got := s.Select(0, q, fab)
	if len(got) != 13 {
		t.Fatalf("selected %d, want 13 (16 slots - 3 outstanding)", len(got))
	}
}
