package ftl

import (
	"testing"

	"sprinkler/internal/sim"
)

// TestPageTableParity drives both table variants through a randomized
// op sequence mirrored against a Go map; every observable (get/set/del
// results, live count, iteration contents) must agree.
func TestPageTableParity(t *testing.T) {
	for _, tc := range []struct {
		name string
		tab  pageTable
	}{
		{"dense", &denseTable{}},
		{"paged", &pagedTable{}},
		// Ceiling below the key range: every op splits between the main
		// table and the overflow map.
		{"bounded", &boundedTable{main: &denseTable{}, ceiling: 1 << 15}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := sim.NewRand(17)
			ref := map[int64]int64{}
			const span = 1 << 16
			for op := 0; op < 200_000; op++ {
				k := rng.Int63n(span)
				switch rng.Intn(3) {
				case 0:
					v := rng.Int63n(1 << 30)
					had := tc.tab.set(k, v)
					_, refHad := ref[k]
					if had != refHad {
						t.Fatalf("op %d: set(%d) had=%v ref=%v", op, k, had, refHad)
					}
					ref[k] = v
				case 1:
					had := tc.tab.del(k)
					_, refHad := ref[k]
					if had != refHad {
						t.Fatalf("op %d: del(%d) had=%v ref=%v", op, k, had, refHad)
					}
					delete(ref, k)
				default:
					v, ok := tc.tab.get(k)
					rv, rok := ref[k]
					if ok != rok || (ok && v != rv) {
						t.Fatalf("op %d: get(%d) = %d,%v ref %d,%v", op, k, v, ok, rv, rok)
					}
				}
				if tc.tab.len() != len(ref) {
					t.Fatalf("op %d: len %d, ref %d", op, tc.tab.len(), len(ref))
				}
			}
			seen := map[int64]int64{}
			tc.tab.forEach(func(k, v int64) bool {
				seen[k] = v
				return true
			})
			if len(seen) != len(ref) {
				t.Fatalf("forEach visited %d, ref %d", len(seen), len(ref))
			}
			for k, v := range ref {
				if seen[k] != v {
					t.Fatalf("forEach missed %d -> %d", k, v)
				}
			}
		})
	}
}

// TestPageTableSparseFootprint pins the scale-aware choice: a huge space
// touched sparsely must not allocate proportional memory.
func TestPageTableSparseFootprint(t *testing.T) {
	tab := newTable(1 << 30)
	if _, ok := tab.(*boundedTable).main.(*pagedTable); !ok {
		t.Fatalf("large span chose %T, want *pagedTable", tab.(*boundedTable).main)
	}
	// Touch 100 keys scattered over the full 2^30 space.
	for i := int64(0); i < 100; i++ {
		tab.set(i*(1<<23), i)
	}
	if fp := tab.footprint(); fp > 100*tableChunkSize {
		t.Fatalf("sparse footprint %d entries for 100 keys", fp)
	}
	if small := newTable(1 << 16); func() bool { _, ok := small.(*boundedTable).main.(*denseTable); return !ok }() {
		t.Fatalf("small span chose %T, want *denseTable", small.(*boundedTable).main)
	}
}

// TestPageTableGrowsPastHint: the sizing hint is not a bound.
func TestPageTableGrowsPastHint(t *testing.T) {
	tab := newTable(128)
	tab.set(1_000_000, 7)
	if v, ok := tab.get(1_000_000); !ok || v != 7 {
		t.Fatal("dense table lost a key beyond its hint")
	}
	if tab.del(2_000_000) {
		t.Fatal("del of never-set key past capacity reported true")
	}
}

// TestPageTableHugeKeyCostsOneEntry: one pathological write at an
// enormous LPN must land in the overflow map, not allocate an array
// proportional to the key (the regression a key-indexed table invites
// versus the old Go maps).
func TestPageTableHugeKeyCostsOneEntry(t *testing.T) {
	for _, span := range []int64{1 << 16, 1 << 30} {
		tab := newTable(span)
		tab.set(1<<40, 7)
		if v, ok := tab.get(1 << 40); !ok || v != 7 {
			t.Fatal("huge key lost")
		}
		if fp := tab.footprint(); fp > denseTableMax {
			t.Fatalf("span %d: huge key grew footprint to %d entries", span, fp)
		}
		if tab.len() != 1 {
			t.Fatalf("len = %d, want 1", tab.len())
		}
		if !tab.del(1 << 40) {
			t.Fatal("huge key not deletable")
		}
		seen := 0
		tab.set(1<<41, 9)
		tab.set(3, 4)
		tab.forEach(func(k, v int64) bool { seen++; return true })
		if seen != 2 {
			t.Fatalf("forEach visited %d, want 2", seen)
		}
	}
}
