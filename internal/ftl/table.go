package ftl

// pageTable is the FTL's mapping-table abstraction: a partial map from
// one page-number space to another (LPN→PPN and PPN→LPN), tuned for the
// translate/commit/GC-relocate hot path. Both implementations replace the
// Go maps the FTL used to carry — map probes were ~10% of hot-path CPU —
// with direct slice indexing.
//
// Keys and values are non-negative; the tables use -1 internally as the
// "unmapped" sentinel.
type pageTable interface {
	// get returns the value mapped for k.
	get(k int64) (int64, bool)
	// set maps k to v, reporting whether k was previously mapped.
	set(k int64, v int64) bool
	// del removes k's mapping, reporting whether it existed.
	del(k int64) bool
	// len returns the number of live mappings.
	len() int
	// forEach visits every live mapping until fn returns false.
	forEach(fn func(k, v int64) bool)
	// footprint returns the table's resident entry count (capacity
	// actually allocated), for memory accounting and tests.
	footprint() int64
	// reset drops every mapping while retaining allocated storage, so a
	// reused FTL starts its next run without rebuilding the table.
	reset()
}

// denseTableMax is the page-count threshold up to which newTable picks
// the flat dense layout: 1<<22 entries × 8 bytes = 32 MB worst case. Past
// it the paged variant allocates only the chunks the workload touches —
// the scale-aware choice the ROADMAP called for.
const denseTableMax = 1 << 22

// newTable picks a table for a space of `span` pages. The span is a
// sizing hint, not a bound: keys past it still map correctly (hosts may
// address LPNs beyond the configured logical space in tests), but keys
// far past it — beyond boundedTable's ceiling — spill into a plain map,
// so one pathological huge key costs a map entry, never a
// proportionally huge array.
func newTable(span int64) pageTable {
	var main pageTable
	if span <= denseTableMax {
		main = &denseTable{}
	} else {
		main = &pagedTable{}
	}
	// Twice the hinted span tolerates mildly out-of-range addressing in
	// the slice tables; anything past that is pathological input.
	ceiling := 2 * span
	if ceiling < denseTableMax {
		ceiling = denseTableMax
	}
	return &boundedTable{main: main, ceiling: ceiling}
}

// boundedTable routes keys below the ceiling to the slice-backed main
// table and everything above into an overflow map. The hot path (every
// key a well-formed workload produces) pays one extra compare; outliers
// get the old map semantics at O(touched) memory.
type boundedTable struct {
	main     pageTable
	ceiling  int64
	overflow map[int64]int64
}

func (t *boundedTable) get(k int64) (int64, bool) {
	if k < t.ceiling {
		return t.main.get(k)
	}
	v, ok := t.overflow[k]
	return v, ok
}

func (t *boundedTable) set(k int64, v int64) bool {
	if k < t.ceiling {
		return t.main.set(k, v)
	}
	if t.overflow == nil {
		t.overflow = make(map[int64]int64)
	}
	_, had := t.overflow[k]
	t.overflow[k] = v
	return had
}

func (t *boundedTable) del(k int64) bool {
	if k < t.ceiling {
		return t.main.del(k)
	}
	_, had := t.overflow[k]
	delete(t.overflow, k)
	return had
}

func (t *boundedTable) len() int { return t.main.len() + len(t.overflow) }

func (t *boundedTable) forEach(fn func(k, v int64) bool) {
	done := false
	t.main.forEach(func(k, v int64) bool {
		if !fn(k, v) {
			done = true
			return false
		}
		return true
	})
	if done {
		return
	}
	for k, v := range t.overflow {
		if !fn(k, v) {
			return
		}
	}
}

func (t *boundedTable) footprint() int64 {
	return t.main.footprint() + int64(len(t.overflow))
}

func (t *boundedTable) reset() {
	t.main.reset()
	t.overflow = nil
}

// denseTable is a flat slice indexed by key, grown on demand. Lookups are
// one bounds check and one load.
type denseTable struct {
	v    []int64
	live int
}

func (t *denseTable) grow(k int64) {
	n := int64(len(t.v))
	for n <= k {
		if n == 0 {
			n = 1024
		} else {
			n *= 2
		}
	}
	nv := make([]int64, n)
	copy(nv, t.v)
	for i := len(t.v); i < len(nv); i++ {
		nv[i] = -1
	}
	t.v = nv
}

func (t *denseTable) get(k int64) (int64, bool) {
	if k >= int64(len(t.v)) {
		return 0, false
	}
	v := t.v[k]
	return v, v >= 0
}

func (t *denseTable) set(k int64, v int64) bool {
	if k >= int64(len(t.v)) {
		t.grow(k)
	}
	had := t.v[k] >= 0
	t.v[k] = v
	if !had {
		t.live++
	}
	return had
}

func (t *denseTable) del(k int64) bool {
	if k >= int64(len(t.v)) || t.v[k] < 0 {
		return false
	}
	t.v[k] = -1
	t.live--
	return true
}

func (t *denseTable) len() int { return t.live }

func (t *denseTable) forEach(fn func(k, v int64) bool) {
	for k, v := range t.v {
		if v >= 0 && !fn(int64(k), v) {
			return
		}
	}
}

func (t *denseTable) footprint() int64 { return int64(cap(t.v)) }

func (t *denseTable) reset() {
	for i := range t.v {
		t.v[i] = -1
	}
	t.live = 0
}

// pagedTable chunks the key space into fixed pages allocated on first
// touch, so huge but sparsely-addressed spaces (a 1024-chip platform's
// PPN space, a mostly-cold logical space) cost memory proportional to
// what the workload actually maps.
const (
	tableChunkBits = 12 // 4096 entries (32 KB) per chunk
	tableChunkSize = 1 << tableChunkBits
	tableChunkMask = tableChunkSize - 1
)

type pagedTable struct {
	chunks [][]int64
	live   int
}

func (t *pagedTable) get(k int64) (int64, bool) {
	ci := k >> tableChunkBits
	if ci >= int64(len(t.chunks)) {
		return 0, false
	}
	c := t.chunks[ci]
	if c == nil {
		return 0, false
	}
	v := c[k&tableChunkMask]
	return v, v >= 0
}

func (t *pagedTable) chunk(k int64) []int64 {
	ci := k >> tableChunkBits
	for ci >= int64(len(t.chunks)) {
		t.chunks = append(t.chunks, nil)
	}
	c := t.chunks[ci]
	if c == nil {
		c = make([]int64, tableChunkSize)
		for i := range c {
			c[i] = -1
		}
		t.chunks[ci] = c
	}
	return c
}

func (t *pagedTable) set(k int64, v int64) bool {
	c := t.chunk(k)
	had := c[k&tableChunkMask] >= 0
	c[k&tableChunkMask] = v
	if !had {
		t.live++
	}
	return had
}

func (t *pagedTable) del(k int64) bool {
	ci := k >> tableChunkBits
	if ci >= int64(len(t.chunks)) || t.chunks[ci] == nil {
		return false
	}
	c := t.chunks[ci]
	if c[k&tableChunkMask] < 0 {
		return false
	}
	c[k&tableChunkMask] = -1
	t.live--
	return true
}

func (t *pagedTable) len() int { return t.live }

func (t *pagedTable) forEach(fn func(k, v int64) bool) {
	for ci, c := range t.chunks {
		if c == nil {
			continue
		}
		base := int64(ci) << tableChunkBits
		for i, v := range c {
			if v >= 0 && !fn(base+int64(i), v) {
				return
			}
		}
	}
}

func (t *pagedTable) footprint() int64 {
	var n int64
	for _, c := range t.chunks {
		if c != nil {
			n += tableChunkSize
		}
	}
	return n
}

func (t *pagedTable) reset() {
	for _, c := range t.chunks {
		for i := range c {
			c[i] = -1
		}
	}
	t.live = 0
}
