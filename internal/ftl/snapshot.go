package ftl

import (
	"fmt"
	"sort"

	"sprinkler/internal/flash"
)

// This file implements warm-state capture/restore for the FTL: the
// serializable State mirrors everything that survives a drained run —
// the logical-to-physical map, per-block wear/occupancy metadata, the
// per-plane free/spare pools in their exact LIFO order, the write-stripe
// cursor, the failure-injection generator position, and every activity
// counter (including the sticky degraded-mode ones from bad-block
// retirement). The validity bitmaps, their per-block population counts
// and the reverse (PPN→LPN) table are deliberately NOT part of the
// state: the L2P map determines all three (CheckInvariants pins the
// bijection), so RestoreState rebuilds them — halving the snapshot and
// removing a whole class of internally-inconsistent snapshot inputs.

// MapPair is one L2P entry.
type MapPair struct {
	LPN int64
	PPN int64
}

// BlockState is the persistent per-block metadata.
type BlockState struct {
	Written int
	Erases  int
	Full    bool
	Bad     bool
}

// PlaneState2 is the persistent per-plane allocation state. Free and
// Spare preserve LIFO order — the allocator pops from the tail, so the
// order is behaviour, not an implementation detail.
type PlaneState2 struct {
	Blocks []BlockState
	Free   []int
	Spare  []int
	Active int
}

// State is the complete persistent state of an FTL.
type State struct {
	L2P    []MapPair // sorted by LPN (canonical form)
	Cursor int64
	RNG    uint64
	Planes []PlaneState2

	HostWrites    int64
	GCWrites      int64
	GCReads       int64
	GCErases      int64
	GCRuns        int64
	Invalidated   int64
	BadBlocks     int64
	WLRuns        int64
	RetiredBlocks int64
	SparesUsed    int64
	Degraded      bool
}

// CaptureState snapshots the FTL's persistent state. The returned
// Planes' Blocks/Free/Spare slices are fresh copies; the whole State is
// safe to retain after the FTL keeps running.
func (f *FTL) CaptureState() State {
	st := State{
		Cursor:        f.cursor,
		RNG:           f.rng.State(),
		Planes:        make([]PlaneState2, len(f.planes)),
		HostWrites:    f.hostWrites,
		GCWrites:      f.gcWrites,
		GCReads:       f.gcReads,
		GCErases:      f.gcErases,
		GCRuns:        f.gcRuns,
		Invalidated:   f.invalidated,
		BadBlocks:     f.badBlocks,
		WLRuns:        f.wlRuns,
		RetiredBlocks: f.retiredBlocks,
		SparesUsed:    f.sparesUsed,
		Degraded:      f.degraded,
	}
	st.L2P = make([]MapPair, 0, f.l2p.len())
	f.l2p.forEach(func(k, v int64) bool {
		st.L2P = append(st.L2P, MapPair{LPN: k, PPN: v})
		return true
	})
	// The slice tables iterate in key order but overflow entries (keys
	// far past the sizing hint) come from a Go map: sort so the capture
	// is canonical — identical warm state always captures identically.
	sort.Slice(st.L2P, func(a, b int) bool { return st.L2P[a].LPN < st.L2P[b].LPN })
	for i, ps := range f.planes {
		out := &st.Planes[i]
		out.Blocks = make([]BlockState, len(ps.blocks))
		for b := range ps.blocks {
			blk := &ps.blocks[b]
			out.Blocks[b] = BlockState{Written: blk.written, Erases: blk.erases, Full: blk.full, Bad: blk.bad}
		}
		out.Free = append([]int(nil), ps.free...)
		out.Spare = append([]int(nil), ps.spare...)
		out.Active = ps.active
	}
	return st
}

// RestoreState rehydrates a freshly built (or Reset) FTL from a captured
// State: per-plane metadata and pool order are written back verbatim,
// and the validity bitmaps, per-block valid counts and the reverse table
// are rebuilt from the L2P entries. Every index is bounds-checked and
// the result is verified with CheckInvariants before returning, so a
// corrupted or mismatched snapshot yields an error with the FTL in an
// unspecified-but-memory-safe state (callers discard it on error; no
// partially-hydrated FTL is ever used).
func (f *FTL) RestoreState(st State) error {
	if len(st.Planes) != len(f.planes) {
		return fmt.Errorf("ftl: snapshot has %d planes, geometry needs %d", len(st.Planes), len(f.planes))
	}
	f.l2p.reset()
	f.p2l.reset()
	for i, ps := range f.planes {
		in := &st.Planes[i]
		if len(in.Blocks) != len(ps.blocks) {
			return fmt.Errorf("ftl: snapshot plane %d has %d blocks, geometry needs %d", i, len(in.Blocks), len(ps.blocks))
		}
		for b := range ps.blocks {
			blk := &ps.blocks[b]
			bs := &in.Blocks[b]
			if bs.Written < 0 || bs.Written > f.geo.PagesPerBlock {
				return fmt.Errorf("ftl: snapshot plane %d block %d written %d outside [0, %d]", i, b, bs.Written, f.geo.PagesPerBlock)
			}
			for w := range blk.valid {
				blk.valid[w] = 0
			}
			blk.validCount = 0
			blk.written = bs.Written
			blk.erases = bs.Erases
			blk.full = bs.Full
			blk.bad = bs.Bad
		}
		if in.Active < -1 || in.Active >= len(ps.blocks) {
			return fmt.Errorf("ftl: snapshot plane %d active block %d out of range", i, in.Active)
		}
		ps.active = in.Active
		if len(in.Free)+len(in.Spare) > cap(ps.free) {
			return fmt.Errorf("ftl: snapshot plane %d pools hold %d blocks, plane has %d",
				i, len(in.Free)+len(in.Spare), cap(ps.free))
		}
		ps.free = ps.free[:0]
		for _, b := range in.Free {
			if b < 0 || b >= len(ps.blocks) {
				return fmt.Errorf("ftl: snapshot plane %d free-list block %d out of range", i, b)
			}
			ps.free = append(ps.free, b)
		}
		ps.spare = ps.spare[:0]
		for _, b := range in.Spare {
			if b < 0 || b >= len(ps.blocks) {
				return fmt.Errorf("ftl: snapshot plane %d spare-pool block %d out of range", i, b)
			}
			ps.spare = append(ps.spare, b)
		}
	}
	total := f.geo.TotalPages()
	for _, e := range st.L2P {
		if e.LPN < 0 || e.PPN < 0 || e.PPN >= total {
			return fmt.Errorf("ftl: snapshot mapping lpn %d -> ppn %d out of range", e.LPN, e.PPN)
		}
		a := f.geo.FromPPN(flash.PPN(e.PPN))
		ps := f.planes[f.planeIndex(a.Chip, a.Die, a.Plane)]
		blk := &ps.blocks[a.Block]
		if blk.valid.Get(a.Page) {
			return fmt.Errorf("ftl: snapshot maps ppn %d twice", e.PPN)
		}
		blk.valid.Set(a.Page)
		blk.validCount++
		f.l2p.set(e.LPN, e.PPN)
		f.p2l.set(e.PPN, e.LPN)
	}
	f.cursor = st.Cursor
	f.rng.SetState(st.RNG)
	f.hostWrites = st.HostWrites
	f.gcWrites = st.GCWrites
	f.gcReads = st.GCReads
	f.gcErases = st.GCErases
	f.gcRuns = st.GCRuns
	f.invalidated = st.Invalidated
	f.badBlocks = st.BadBlocks
	f.wlRuns = st.WLRuns
	f.retiredBlocks = st.RetiredBlocks
	f.sparesUsed = st.SparesUsed
	f.degraded = st.Degraded
	if err := f.CheckInvariants(); err != nil {
		return fmt.Errorf("ftl: snapshot fails invariants: %w", err)
	}
	return nil
}
