package ftl

import (
	"testing"

	"sprinkler/internal/req"
)

// churn hammers a small LPN working set and collects whenever pressure
// builds, driving erase counts up.
func churn(t *testing.T, f *FTL, writes, span int) {
	t.Helper()
	for i := 0; i < writes; i++ {
		io := req.NewIO(0, req.Write, req.LPN(i%span), 1, 0)
		err := f.Preprocess(io.Mem[0])
		for attempts := 0; err != nil && attempts < 64; attempts++ {
			progress := false
			for _, pi := range f.NeedGC() {
				job, jerr := f.PlanGC(pi)
				if jerr != nil || job == nil {
					continue
				}
				f.CommitGC(job)
				progress = true
			}
			if !progress {
				t.Fatalf("write %d: no reclaimable space: %v", i, err)
			}
			err = f.Preprocess(io.Mem[0])
		}
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
}

func TestWearLevelingTriggers(t *testing.T) {
	cfg := DefaultConfig(tinyGeo())
	cfg.WearDeltaMax = 2
	cfg.MigrateCrossPlane = false
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A hot working set far smaller than capacity creates skewed wear:
	// the same blocks churn while cold blocks never erase.
	churn(t, f, 4000, 48)
	st := f.Stats()
	if st.WearLevels == 0 {
		t.Fatal("wear-leveler never triggered despite skewed churn")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestWearLevelingDisabledByDefault(t *testing.T) {
	f := newTestFTL(t)
	churn(t, f, 2000, 48)
	if got := f.Stats().WearLevels; got != 0 {
		t.Fatalf("wear-leveler ran %d times with WearDeltaMax=0", got)
	}
}

func TestBadBlockRetirement(t *testing.T) {
	cfg := DefaultConfig(tinyGeo())
	cfg.EraseFailProb = 0.2 // aggressive to retire blocks quickly
	cfg.Seed = 9
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	churn(t, f, 3000, 64)
	st := f.Stats()
	if st.BadBlocks == 0 {
		t.Fatalf("no blocks retired despite %d erases at 20%% failure", st.GCErases)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The device keeps working after retirements: more writes succeed.
	churn(t, f, 500, 64)
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBadBlockNeverReused(t *testing.T) {
	cfg := DefaultConfig(tinyGeo())
	cfg.EraseFailProb = 1.0 // every erase retires its block
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	churn(t, f, 800, 32)
	st := f.Stats()
	if st.BadBlocks != st.GCErases {
		t.Fatalf("retired %d of %d erases at prob 1.0", st.BadBlocks, st.GCErases)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEraseFailureZeroProbIsClean(t *testing.T) {
	f := newTestFTL(t)
	churn(t, f, 2000, 64)
	if got := f.Stats().BadBlocks; got != 0 {
		t.Fatalf("retired %d blocks with failure injection off", got)
	}
}
