// Package ftl implements the flash translation layer running on the SSD's
// embedded core (§2.1): a pure page-level address map (§5.1), a striped
// dynamic page allocator that spreads consecutive logical pages across
// channels, chips, dies and planes, and a greedy garbage collector whose
// live-data migrations drive the §4.3 readdressing callback.
package ftl

import (
	"fmt"
	"sort"

	"sprinkler/internal/flash"
	"sprinkler/internal/req"
	"sprinkler/internal/sim"
)

// Allocation selects the dynamic page-allocation (striping) scheme, i.e.
// which resource dimension consecutive writes advance through first. The
// paper's references [16, 36, 13] show these schemes fix the physical
// layout — and hence the parallelism an I/O can reach — at design time;
// the scheme is a knob here so that interaction can be studied.
type Allocation int

const (
	// AllocChannelFirst stripes consecutive pages across channels, then
	// chips within a channel, then planes, then dies — maximizing channel
	// striping for sequential data (the paper's baseline and our default).
	AllocChannelFirst Allocation = iota
	// AllocWayFirst fills the chips of one channel (the "ways") before
	// moving to the next channel: good channel pipelining, poor striping.
	AllocWayFirst
	// AllocPlaneFirst exhausts a chip's planes and dies before moving to
	// the next chip: maximal flash-level locality, minimal system-level
	// parallelism for sequential data.
	AllocPlaneFirst
)

// String names the scheme.
func (a Allocation) String() string {
	switch a {
	case AllocChannelFirst:
		return "channel-first"
	case AllocWayFirst:
		return "way-first"
	case AllocPlaneFirst:
		return "plane-first"
	default:
		return fmt.Sprintf("alloc(%d)", int(a))
	}
}

// Config parameterizes the FTL.
type Config struct {
	Geo flash.Geometry

	// GCFreeTarget triggers garbage collection on a plane when its free
	// (erased) block count drops to this value or below.
	GCFreeTarget int

	// LogicalPages hints the size of the logical address space, sizing
	// the L2P mapping table: small spaces get a flat dense table, large
	// ones a paged table that allocates only touched chunks. Zero falls
	// back to the physical page count. The hint is not a bound — LPNs
	// beyond it still map correctly.
	LogicalPages int64

	// MigrateCrossPlane lets the GC allocate migration destinations on a
	// sibling plane (the one with the most free space) instead of the
	// victim's plane. Cross-resource migration is what makes the
	// readdressing callback matter (§4.3).
	MigrateCrossPlane bool

	// Allocation picks the write striping scheme.
	Allocation Allocation

	// EraseFailProb is the per-erase probability that a block wears out
	// and is retired (bad-block replacement, §4.3 migration reason 3).
	// Zero disables failure injection.
	EraseFailProb float64

	// WearDeltaMax enables static wear-leveling (§4.3 migration reason 2):
	// when a plane's erase-count spread exceeds this delta, the next GC in
	// that plane victimizes its coldest full block instead of the greedy
	// min-valid choice, rotating cold data into circulation. Zero disables
	// wear-leveling.
	WearDeltaMax int

	// SpareBlockFrac reserves this fraction of every plane's blocks as a
	// spare pool for bad-block replacement: a block retired by a
	// (chip-level) erase failure is remapped to a spare, keeping the
	// usable capacity constant until the pool exhausts — at which point
	// the FTL reports Degraded and the device should stop admitting
	// writes. Must be in [0, 1) and leave enough usable blocks for the GC
	// free target; zero reserves nothing (today's behaviour).
	SpareBlockFrac float64

	// Seed drives the failure-injection generator.
	Seed uint64
}

// DefaultConfig returns the configuration used by the evaluation: GC kicks
// in at 4 free blocks per plane and may migrate across planes.
func DefaultConfig(g flash.Geometry) Config {
	return Config{Geo: g, GCFreeTarget: 4, MigrateCrossPlane: true}
}

// MigrationFunc observes one live-page migration: lpn moved from old to new.
// The SSD layer forwards this to the scheduler's readdressing callback.
type MigrationFunc func(lpn req.LPN, old, new flash.Addr)

// blockMeta tracks one erase block.
type blockMeta struct {
	valid      req.Bitmap // live pages
	validCount int
	written    int  // next free page index (write pointer when active)
	full       bool // no more free pages
	erases     int  // wear counter
	bad        bool // retired (erase failure)
}

// planeState is the per-plane allocation state.
type planeState struct {
	blocks []blockMeta
	free   []int // erased block indices (LIFO)
	spare  []int // reserved bad-block replacement blocks (LIFO)
	active int   // current write block, -1 if none
}

// BlockMeta is the bulk block-metadata arena behind an FTL: the per-plane
// structs, the per-block metadata records, the validity bitmap words and
// the free-list storage, all sized by the geometry and carved from four
// bulk allocations. It exists so a pool that must drop a whole device
// (DeviceArena LRU eviction) can keep just this modest, geometry-shaped
// slice of its memory keyed by topology: re-admitting the topology later
// rebuilds the FTL on the retained arena instead of re-allocating it. The
// mapping tables are deliberately *not* part of it — they are the bulk of
// a device's memory, and retaining them would defeat the eviction bound.
//
// Obtain one from a finished FTL with DetachBlockMeta and hand it to
// NewWithMeta; a BlockMeta whose geometry does not match is ignored.
type BlockMeta struct {
	geo        flash.Geometry
	planePool  []planeState
	blockPool  []blockMeta
	bitmapPool []uint64
	freePool   []int
	sparePool  []int
}

// Geometry reports the geometry the metadata arena is sized for.
func (m *BlockMeta) Geometry() flash.Geometry { return m.geo }

// FTL is the translation layer. It is not safe for concurrent use; the
// simulator is single-threaded by design.
type FTL struct {
	cfg     Config
	geo     flash.Geometry
	l2p     pageTable // LPN -> PPN
	l2pSpan int64     // sizing hint l2p was built for (Reset reuse check)
	p2l     pageTable // PPN -> LPN
	planes  []*planeState
	meta    *BlockMeta // bulk arena the planes are carved from

	// cursor implements the channel-first stripe for write allocation:
	// consecutive writes go to consecutive chips across channels, then
	// advance die and plane round-robin within each chip.
	cursor int64

	onMigrate MigrationFunc
	rng       *sim.Rand

	// Counters.
	hostWrites    int64
	gcWrites      int64
	gcReads       int64
	gcErases      int64
	gcRuns        int64
	invalidated   int64
	badBlocks     int64
	wlRuns        int64
	retiredBlocks int64
	sparesUsed    int64
	degraded      bool
}

// New builds an FTL with every block erased and the logical space unmapped.
func New(cfg Config) (*FTL, error) { return NewWithMeta(cfg, nil) }

// NewWithMeta builds an FTL like New, carving the block metadata out of a
// retained BlockMeta arena instead of allocating it when one with matching
// geometry is supplied (nil, or a mismatched geometry, allocates fresh).
// The resulting FTL is indistinguishable from a freshly allocated one —
// the arena is fully re-initialized — so callers may treat metadata reuse
// purely as an allocation optimization.
func NewWithMeta(cfg Config, meta *BlockMeta) (*FTL, error) {
	if err := cfg.Geo.Validate(); err != nil {
		return nil, err
	}
	if cfg.GCFreeTarget < 1 {
		return nil, fmt.Errorf("ftl: GCFreeTarget %d < 1", cfg.GCFreeTarget)
	}
	nSpare, err := spareBlocks(cfg)
	if err != nil {
		return nil, err
	}
	g := cfg.Geo
	nPlanes := g.NumChips() * g.DiesPerChip * g.PlanesPerDie
	logical := cfg.LogicalPages
	if logical <= 0 {
		logical = g.TotalPages()
	}
	f := &FTL{
		cfg:     cfg,
		geo:     g,
		l2p:     newTable(logical),
		l2pSpan: logical,
		p2l:     newTable(g.TotalPages()),
		planes:  make([]*planeState, nPlanes),
	}
	f.rng = sim.NewRand(cfg.Seed + 0x5EED)
	// All validity bitmaps, plane structs, block metadata and free-list
	// storage come from four bulk allocations: building a device is a
	// per-cell cost in concurrent sweeps, so construction avoids per-block
	// allocations — and the four pools travel as one BlockMeta so eviction
	// can retain them.
	words := (g.PagesPerBlock + 63) / 64
	if meta == nil || meta.geo != g {
		meta = &BlockMeta{
			geo:        g,
			planePool:  make([]planeState, nPlanes),
			blockPool:  make([]blockMeta, nPlanes*g.BlocksPerPlane),
			bitmapPool: make([]uint64, nPlanes*g.BlocksPerPlane*words),
			freePool:   make([]int, nPlanes*g.BlocksPerPlane),
			sparePool:  make([]int, nPlanes*g.BlocksPerPlane),
		}
	} else if meta.sparePool == nil {
		// Retained arena predating the spare pool: grow it in place.
		meta.sparePool = make([]int, nPlanes*g.BlocksPerPlane)
	}
	f.meta = meta
	for i := range f.planes {
		ps := &meta.planePool[i]
		ps.blocks = meta.blockPool[i*g.BlocksPerPlane : (i+1)*g.BlocksPerPlane : (i+1)*g.BlocksPerPlane]
		ps.active = -1
		for b := range ps.blocks {
			off := (i*g.BlocksPerPlane + b) * words
			blk := &ps.blocks[b]
			blk.valid = req.Bitmap(meta.bitmapPool[off : off+words : off+words])
			// A retained arena carries the evicted device's state; scrub it
			// (no-op on the zeroed pools of a fresh build).
			for w := range blk.valid {
				blk.valid[w] = 0
			}
			blk.validCount, blk.written, blk.erases = 0, 0, 0
			blk.full, blk.bad = false, false
		}
		// The top nSpare block indices form the spare pool; the remainder
		// build the free list in descending order so blocks are consumed
		// 0,1,2,... (with nSpare == 0 this is exactly the historic layout).
		ps.spare = meta.sparePool[i*g.BlocksPerPlane : i*g.BlocksPerPlane : (i+1)*g.BlocksPerPlane]
		for b := g.BlocksPerPlane - nSpare; b < g.BlocksPerPlane; b++ {
			ps.spare = append(ps.spare, b)
		}
		ps.free = meta.freePool[i*g.BlocksPerPlane : i*g.BlocksPerPlane : (i+1)*g.BlocksPerPlane]
		for b := g.BlocksPerPlane - nSpare - 1; b >= 0; b-- {
			ps.free = append(ps.free, b)
		}
		f.planes[i] = ps
	}
	return f, nil
}

// spareBlocks returns the per-plane spare-pool size for cfg, or an error
// when the fraction is out of range or would starve the usable block budget
// the garbage collector needs.
func spareBlocks(cfg Config) (int, error) {
	if cfg.SpareBlockFrac < 0 || cfg.SpareBlockFrac >= 1 {
		return 0, fmt.Errorf("ftl: SpareBlockFrac %g outside [0, 1)", cfg.SpareBlockFrac)
	}
	n := int(cfg.SpareBlockFrac * float64(cfg.Geo.BlocksPerPlane))
	if n > 0 && cfg.Geo.BlocksPerPlane-n <= cfg.GCFreeTarget+1 {
		return 0, fmt.Errorf("ftl: SpareBlockFrac %g leaves %d usable blocks per plane, need more than GCFreeTarget+1 = %d",
			cfg.SpareBlockFrac, cfg.Geo.BlocksPerPlane-n, cfg.GCFreeTarget+1)
	}
	return n, nil
}

// DetachBlockMeta hands the FTL's bulk block-metadata arena to the caller
// for retention across the FTL's destruction. The FTL still aliases the
// arena: discard it (and the device around it) after detaching.
func (f *FTL) DetachBlockMeta() *BlockMeta { return f.meta }

// Reset re-initializes the FTL in place for a new run on the same
// geometry: mappings are dropped, every block is returned to the erased
// state, wear and activity counters restart, and the failure-injection
// generator is reseeded — all without touching the bulk block/bitmap
// arenas New allocated, which is what makes device reuse cheap. Per-run
// knobs (GC threshold, allocation scheme, logical-space hint, failure
// injection, wear-leveling) may change; the geometry may not.
func (f *FTL) Reset(cfg Config) error {
	if cfg.Geo != f.geo {
		return fmt.Errorf("ftl: Reset geometry mismatch (have %+v)", f.geo)
	}
	if cfg.GCFreeTarget < 1 {
		return fmt.Errorf("ftl: GCFreeTarget %d < 1", cfg.GCFreeTarget)
	}
	nSpare, err := spareBlocks(cfg)
	if err != nil {
		return err
	}
	logical := cfg.LogicalPages
	if logical <= 0 {
		logical = f.geo.TotalPages()
	}
	if logical == f.l2pSpan {
		f.l2p.reset()
	} else {
		f.l2p = newTable(logical)
		f.l2pSpan = logical
	}
	f.p2l.reset()
	g := f.geo
	for _, ps := range f.planes {
		for b := range ps.blocks {
			blk := &ps.blocks[b]
			for i := range blk.valid {
				blk.valid[i] = 0
			}
			blk.validCount, blk.written, blk.erases = 0, 0, 0
			blk.full, blk.bad = false, false
		}
		ps.spare = ps.spare[:0]
		for b := g.BlocksPerPlane - nSpare; b < g.BlocksPerPlane; b++ {
			ps.spare = append(ps.spare, b)
		}
		ps.free = ps.free[:0]
		for b := g.BlocksPerPlane - nSpare - 1; b >= 0; b-- {
			ps.free = append(ps.free, b)
		}
		ps.active = -1
	}
	f.cfg = cfg
	f.cursor = 0
	f.onMigrate = nil
	f.rng.Reseed(cfg.Seed + 0x5EED)
	f.hostWrites, f.gcWrites, f.gcReads, f.gcErases, f.gcRuns = 0, 0, 0, 0, 0
	f.invalidated, f.badBlocks, f.wlRuns = 0, 0, 0
	f.retiredBlocks, f.sparesUsed, f.degraded = 0, 0, false
	return nil
}

// Geometry returns the configured geometry.
func (f *FTL) Geometry() flash.Geometry { return f.geo }

// OnMigrate installs the migration observer (the readdressing callback
// plumbing). Passing nil removes it.
func (f *FTL) OnMigrate(fn MigrationFunc) { f.onMigrate = fn }

// planeIndex linearizes (chip, die, plane).
func (f *FTL) planeIndex(chip flash.ChipID, die, plane int) int {
	return (int(chip)*f.geo.DiesPerChip+die)*f.geo.PlanesPerDie + plane
}

// planeAddr recovers (chip, die, plane) from a plane index.
func (f *FTL) planeAddr(idx int) (flash.ChipID, int, int) {
	plane := idx % f.geo.PlanesPerDie
	idx /= f.geo.PlanesPerDie
	die := idx % f.geo.DiesPerChip
	chip := flash.ChipID(idx / f.geo.DiesPerChip)
	return chip, die, plane
}

// stripeTarget returns the plane index the next write allocation should
// use, following the configured allocation scheme. The default
// (channel-first) walks chips across channels (chip offset 0 on every
// channel, then offset 1, ...), maximizing channel striping, and advances
// die/plane round-robin on each full sweep so planes fill in lockstep —
// which keeps page offsets aligned for plane sharing.
func (f *FTL) stripeTarget() int {
	g := f.geo
	n := f.cursor
	f.cursor++
	var chip flash.ChipID
	var die, plane int
	switch f.cfg.Allocation {
	case AllocWayFirst:
		// Chips within a channel first, then the next channel.
		chipStep := n % int64(g.NumChips())
		offset := int(chipStep) % g.ChipsPerChan
		channel := int(chipStep) / g.ChipsPerChan
		chip = g.ChipAt(channel, offset)
		rest := n / int64(g.NumChips())
		plane = int(rest) % g.PlanesPerDie
		die = (int(rest) / g.PlanesPerDie) % g.DiesPerChip
	case AllocPlaneFirst:
		// Planes, then dies of one chip, then the next chip.
		flp := int64(g.MaxFLP())
		plane = int(n % int64(g.PlanesPerDie))
		die = int((n / int64(g.PlanesPerDie)) % int64(g.DiesPerChip))
		chipStep := (n / flp) % int64(g.NumChips())
		channel := int(chipStep) % g.Channels
		offset := int(chipStep) / g.Channels
		chip = g.ChipAt(channel, offset)
	default: // AllocChannelFirst
		chipStep := n % int64(g.NumChips())
		channel := int(chipStep) % g.Channels
		offset := int(chipStep) / g.Channels
		chip = g.ChipAt(channel, offset)
		rest := n / int64(g.NumChips())
		plane = int(rest) % g.PlanesPerDie
		die = (int(rest) / g.PlanesPerDie) % g.DiesPerChip
	}
	return f.planeIndex(chip, die, plane)
}

// FreeBlocks returns the erased-block count of a plane (for tests and GC
// policy probes).
func (f *FTL) FreeBlocks(chip flash.ChipID, die, plane int) int {
	return len(f.planes[f.planeIndex(chip, die, plane)].free)
}

// allocate takes the next free page in the plane's active block, refusing
// to dip below reserve free blocks (host writes keep one block in reserve
// so garbage collection always has somewhere to migrate; GC itself
// allocates with reserve 0). It returns an error when the plane is out of
// space (GC must run first).
func (f *FTL) allocate(planeIdx, reserve int) (flash.Addr, error) {
	ps := f.planes[planeIdx]
	if ps.active < 0 || ps.blocks[ps.active].full {
		if len(ps.free) <= reserve {
			chip, die, plane := f.planeAddr(planeIdx)
			return flash.Addr{}, fmt.Errorf("ftl: plane c%d/d%d/p%d out of free blocks", chip, die, plane)
		}
		ps.active = ps.free[len(ps.free)-1]
		ps.free = ps.free[:len(ps.free)-1]
	}
	blk := &ps.blocks[ps.active]
	chip, die, plane := f.planeAddr(planeIdx)
	a := flash.Addr{Chip: chip, Die: die, Plane: plane, Block: ps.active, Page: blk.written}
	blk.written++
	if blk.written >= f.geo.PagesPerBlock {
		blk.full = true
	}
	return a, nil
}

// markValid records that a holds live data for lpn.
func (f *FTL) markValid(a flash.Addr, lpn req.LPN) {
	ps := f.planes[f.planeIndex(a.Chip, a.Die, a.Plane)]
	blk := &ps.blocks[a.Block]
	if blk.valid.Get(a.Page) {
		panic(fmt.Sprintf("ftl: page %v already valid", a))
	}
	blk.valid.Set(a.Page)
	blk.validCount++
	p := f.geo.ToPPN(a)
	f.l2p.set(int64(lpn), int64(p))
	f.p2l.set(int64(p), int64(lpn))
}

// invalidate drops the live mapping at a.
func (f *FTL) invalidate(a flash.Addr) {
	ps := f.planes[f.planeIndex(a.Chip, a.Die, a.Plane)]
	blk := &ps.blocks[a.Block]
	if !blk.valid.Get(a.Page) {
		panic(fmt.Sprintf("ftl: invalidating non-valid page %v", a))
	}
	blk.valid.Clear(a.Page)
	blk.validCount--
	f.p2l.del(int64(f.geo.ToPPN(a)))
	f.invalidated++
}

// Lookup returns the physical address currently mapped for lpn.
func (f *FTL) Lookup(lpn req.LPN) (flash.Addr, bool) {
	p, ok := f.l2p.get(int64(lpn))
	if !ok {
		return flash.Addr{}, false
	}
	return f.geo.FromPPN(flash.PPN(p)), true
}

// VirtualAddr is the deterministic physical placement of a logical page
// that was written before the simulation started (the preloaded drive
// image). Consecutive LPNs stripe channel-first over every (chip, die,
// plane) unit; the row index becomes the block/page offset. Two LPNs in
// the same stripe row therefore share a page offset — sequential data
// keeps its plane-sharing potential — while logically distant pages land
// on different rows, as they would on a long-lived drive.
//
// Virtual placements are read-only fictions: they are not tracked in the
// block validity metadata and never interact with the allocator or GC.
// The first write to such an LPN allocates a real page as usual.
func (f *FTL) VirtualAddr(lpn req.LPN) flash.Addr {
	g := f.geo
	units := int64(g.NumChips()) * int64(g.DiesPerChip) * int64(g.PlanesPerDie)
	u := int64(lpn) % units
	row := int64(lpn) / units
	chipStep := u % int64(g.NumChips())
	channel := int(chipStep) % g.Channels
	offset := int(chipStep) / g.Channels
	rest := u / int64(g.NumChips())
	plane := int(rest) % g.PlanesPerDie
	die := (int(rest) / g.PlanesPerDie) % g.DiesPerChip
	page := int(row) % g.PagesPerBlock
	block := int(row/int64(g.PagesPerBlock)) % g.BlocksPerPlane
	return flash.Addr{Chip: g.ChipAt(channel, offset), Die: die, Plane: plane, Block: block, Page: page}
}

// Preprocess resolves the physical layout of one memory request. This is
// the core.preprocess(tag) step of Algorithm 1: it runs when the tag is
// secured, before any data movement, so schedulers can group requests by
// physical chip.
//
// Reads of never-written pages resolve through the VirtualAddr preloaded
// image. Writes allocate a fresh page and invalidate the previous mapping
// (out-of-place update).
func (f *FTL) Preprocess(m *req.Mem) error {
	switch m.IO.Kind {
	case req.Read:
		if a, ok := f.Lookup(m.LPN); ok {
			m.Addr = a
			return nil
		}
		m.Addr = f.VirtualAddr(m.LPN)
		return nil
	case req.Write:
		// Allocate before invalidating so a failed allocation leaves the
		// old mapping intact (the caller may GC and retry).
		a, err := f.allocate(f.stripeTarget(), 1)
		if err != nil {
			return err
		}
		if old, ok := f.Lookup(m.LPN); ok {
			f.invalidate(old)
		}
		f.markValid(a, m.LPN)
		f.hostWrites++
		m.Addr = a
		return nil
	default:
		return fmt.Errorf("ftl: unknown kind %v", m.IO.Kind)
	}
}

// NeedGC reports the plane indices whose free-block count is at or below
// the GC threshold, most urgent first.
func (f *FTL) NeedGC() []int {
	var idx []int
	for i, ps := range f.planes {
		if len(ps.free) <= f.cfg.GCFreeTarget {
			idx = append(idx, i)
		}
	}
	sort.Slice(idx, func(a, b int) bool {
		fa, fb := len(f.planes[idx[a]].free), len(f.planes[idx[b]].free)
		if fa != fb {
			return fa < fb
		}
		return idx[a] < idx[b]
	})
	return idx
}

// PlaneUnderPressure reports whether the given plane needs GC.
func (f *FTL) PlaneUnderPressure(chip flash.ChipID, die, plane int) bool {
	return len(f.planes[f.planeIndex(chip, die, plane)].free) <= f.cfg.GCFreeTarget
}

// Migration is one live-page move in a GC job.
type Migration struct {
	LPN req.LPN
	Src flash.Addr
	Dst flash.Addr
}

// GCJob is a planned collection of one victim block: read the live pages,
// program them at Dst, erase the victim. The SSD layer simulates the
// corresponding flash transactions and then calls Commit.
type GCJob struct {
	Victim     flash.Addr // Block field identifies the victim; Page is 0
	Migrations []Migration
	// WearLeveling marks a job whose victim was chosen by the static
	// wear-leveler (coldest block) rather than the greedy policy.
	WearLeveling bool
	committed    bool
}

// PlanGC selects a victim in the plane (greedy: fewest valid pages among
// full blocks) and pre-allocates migration destinations. It returns nil if
// the plane has no collectable block — including when every candidate is
// fully valid: erasing such a block reclaims nothing, and collecting it
// anyway would turn GC into an endless migration storm.
func (f *FTL) PlanGC(planeIdx int) (*GCJob, error) {
	ps := f.planes[planeIdx]
	chip, die, plane := f.planeAddr(planeIdx)
	victim := -1
	best := f.geo.PagesPerBlock + 1
	wear := false
	if f.cfg.WearDeltaMax > 0 {
		// Static wear-leveling: when the erase-count spread is too wide,
		// rotate the coldest full block back into circulation even if it
		// is fully valid.
		minE, maxE, cold := f.wearSpread(ps)
		if maxE-minE > f.cfg.WearDeltaMax && cold >= 0 {
			victim, best = cold, ps.blocks[cold].validCount
			wear = true
		}
	}
	if victim < 0 {
		for b := range ps.blocks {
			blk := &ps.blocks[b]
			if !blk.full || b == ps.active || blk.bad {
				continue
			}
			if blk.validCount < best {
				best = blk.validCount
				victim = b
			}
		}
		if victim < 0 || best >= f.geo.PagesPerBlock {
			return nil, nil
		}
	}
	job := &GCJob{
		Victim:       flash.Addr{Chip: chip, Die: die, Plane: plane, Block: victim},
		WearLeveling: wear,
	}
	blk := &ps.blocks[victim]
	for pg := 0; pg < f.geo.PagesPerBlock; pg++ {
		if !blk.valid.Get(pg) {
			continue
		}
		src := flash.Addr{Chip: chip, Die: die, Plane: plane, Block: victim, Page: pg}
		rawLPN, ok := f.p2l.get(int64(f.geo.ToPPN(src)))
		if !ok {
			panic(fmt.Sprintf("ftl: valid page %v with no reverse mapping", src))
		}
		lpn := req.LPN(rawLPN)
		dstPlane := planeIdx
		if f.cfg.MigrateCrossPlane {
			dstPlane = f.bestPlaneOnChip(chip, planeIdx)
		}
		dst, err := f.allocate(dstPlane, 0)
		if err != nil {
			return nil, fmt.Errorf("ftl: no room for GC migration: %w", err)
		}
		job.Migrations = append(job.Migrations, Migration{LPN: lpn, Src: src, Dst: dst})
	}
	return job, nil
}

// bestPlaneOnChip returns the plane index on chip with the most free
// blocks, falling back to the victim's own plane. Only planes with at
// least two free blocks are eligible: migrating into another plane's last
// reserved block would deadlock that plane's own collection, so tight
// chips degrade to in-plane migration (which always has the host-side
// reserve to move into).
func (f *FTL) bestPlaneOnChip(chip flash.ChipID, fallback int) int {
	best, bestFree := fallback, -1
	for die := 0; die < f.geo.DiesPerChip; die++ {
		for plane := 0; plane < f.geo.PlanesPerDie; plane++ {
			i := f.planeIndex(chip, die, plane)
			free := len(f.planes[i].free)
			if i != fallback && free < 2 {
				continue
			}
			if i == fallback {
				free-- // mild penalty: prefer moving away from the victim plane
			}
			if free > bestFree {
				best, bestFree = i, free
			}
		}
	}
	return best
}

// CommitGC applies the mapping changes of a finished job: live pages are
// remapped to their destinations (skipping any the host overwrote while
// the job was in flight), the victim is erased and returned to the free
// list, and the migration observer fires once per applied move.
//
// It returns the migrations actually applied.
func (f *FTL) CommitGC(job *GCJob) []Migration { return f.CommitGCOutcome(job, false) }

// CommitGCOutcome is CommitGC with the simulated erase outcome supplied by
// the caller: when the chip-level fault model reported the victim's erase
// as failed, the block is retired and a spare activated in its place
// instead of returning to the free list. (The FTL's own legacy
// EraseFailProb draw still applies when the erase succeeded, preserving the
// historic stream.)
func (f *FTL) CommitGCOutcome(job *GCJob, eraseFailed bool) []Migration {
	if job.committed {
		panic("ftl: GC job committed twice")
	}
	job.committed = true
	f.gcRuns++
	var applied []Migration
	for _, mg := range job.Migrations {
		cur, ok := f.l2p.get(int64(mg.LPN))
		if !ok || flash.PPN(cur) != f.geo.ToPPN(mg.Src) {
			// The host overwrote this LPN mid-GC; its new location wins and
			// the pre-allocated destination page is simply wasted (it will
			// be reclaimed as invalid later) — matching real FTL behaviour.
			continue
		}
		f.invalidate(mg.Src)
		f.markValid(mg.Dst, mg.LPN)
		f.gcReads++
		f.gcWrites++
		applied = append(applied, mg)
		if f.onMigrate != nil {
			f.onMigrate(mg.LPN, mg.Src, mg.Dst)
		}
	}
	// Erase the victim. An injected erase failure retires the block (bad
	// block replacement: the plane's remaining spares take over, §4.3).
	ps := f.planes[f.planeIndex(job.Victim.Chip, job.Victim.Die, job.Victim.Plane)]
	blk := &ps.blocks[job.Victim.Block]
	if blk.validCount != 0 {
		panic(fmt.Sprintf("ftl: erasing block %v with %d valid pages", job.Victim, blk.validCount))
	}
	blk.valid = req.NewBitmap(f.geo.PagesPerBlock)
	blk.written = 0
	blk.full = false
	blk.erases++
	if job.WearLeveling {
		f.wlRuns++
	}
	switch {
	case eraseFailed:
		f.retireBlock(ps, job.Victim.Block)
	case f.cfg.EraseFailProb > 0 && f.rng.Float64() < f.cfg.EraseFailProb:
		blk.bad = true
		blk.full = true // never allocatable again
		f.badBlocks++
	default:
		ps.free = append(ps.free, job.Victim.Block)
	}
	f.gcErases++
	return applied
}

// retireBlock marks a block bad and activates a spare in its place. When
// the plane's spare pool is empty the FTL transitions to degraded mode:
// usable capacity can no longer be held constant, so the device should stop
// admitting writes (reads keep working).
func (f *FTL) retireBlock(ps *planeState, block int) {
	blk := &ps.blocks[block]
	blk.bad = true
	blk.full = true // never allocatable again
	f.badBlocks++
	f.retiredBlocks++
	if n := len(ps.spare); n > 0 {
		sp := ps.spare[n-1]
		ps.spare = ps.spare[:n-1]
		ps.free = append(ps.free, sp)
		f.sparesUsed++
	} else {
		f.degraded = true
	}
}

// Degraded reports whether a block retirement found the spare pool empty:
// the drive can no longer guarantee its usable capacity and should be
// treated as read-only. The flag is sticky until Reset.
func (f *FTL) Degraded() bool { return f.degraded }

// RemapProgramFail recovers a host write whose program operation reported
// failure: the failed physical page is abandoned (invalidated — it holds
// garbage) and the logical page is remapped to a freshly allocated one for
// the caller to re-issue. ok is false when no rewrite is needed because the
// host overwrote the LPN while the failed program was in flight (the lost
// data was already stale). A non-nil error means the rewrite could not be
// placed even using the host reserve; the caller should fail the I/O.
func (f *FTL) RemapProgramFail(lpn req.LPN, failed flash.Addr) (a flash.Addr, ok bool, err error) {
	cur, mapped := f.l2p.get(int64(lpn))
	if !mapped || flash.PPN(cur) != f.geo.ToPPN(failed) {
		return flash.Addr{}, false, nil
	}
	// Allocate before invalidating so a failed allocation leaves the
	// mapping consistent (pointing at the garbage page, as a real drive
	// that ran out of replacement space would).
	a, err = f.allocate(f.stripeTarget(), 1)
	if err != nil {
		return flash.Addr{}, false, err
	}
	f.invalidate(failed)
	f.markValid(a, lpn)
	return a, true, nil
}

// wearSpread returns the min and max erase counts over a plane's blocks
// and the coldest collectable (full, non-active, healthy) block index.
func (f *FTL) wearSpread(ps *planeState) (minE, maxE, coldest int) {
	minE, maxE, coldest = 1<<30, -1, -1
	coldE := 1 << 30
	for b := range ps.blocks {
		blk := &ps.blocks[b]
		if blk.bad {
			continue
		}
		if blk.erases < minE {
			minE = blk.erases
		}
		if blk.erases > maxE {
			maxE = blk.erases
		}
		if blk.full && b != ps.active && blk.erases < coldE {
			coldE = blk.erases
			coldest = b
		}
	}
	return minE, maxE, coldest
}

// Stats reports FTL activity counters.
type Stats struct {
	HostWrites    int64
	GCWrites      int64
	GCReads       int64
	GCErases      int64
	GCRuns        int64
	Invalidated   int64
	MappedPages   int64
	BadBlocks     int64
	WearLevels    int64
	RetiredBlocks int64 // blocks retired via chip-level erase failures
	SparesUsed    int64 // spare blocks activated to replace retirements
	Degraded      bool  // spare pool exhausted; drive is read-only
}

// Stats returns a snapshot of the counters.
func (f *FTL) Stats() Stats {
	return Stats{
		HostWrites:    f.hostWrites,
		GCWrites:      f.gcWrites,
		GCReads:       f.gcReads,
		GCErases:      f.gcErases,
		GCRuns:        f.gcRuns,
		Invalidated:   f.invalidated,
		MappedPages:   int64(f.l2p.len()),
		BadBlocks:     f.badBlocks,
		WearLevels:    f.wlRuns,
		RetiredBlocks: f.retiredBlocks,
		SparesUsed:    f.sparesUsed,
		Degraded:      f.degraded,
	}
}

// ResetStats zeroes the activity counters (mappings are untouched). Used
// after preconditioning so measurements cover only the workload itself.
func (f *FTL) ResetStats() {
	f.hostWrites, f.gcWrites, f.gcReads, f.gcErases, f.gcRuns, f.invalidated = 0, 0, 0, 0, 0, 0
}

// WriteAmplification returns (host+gc)/host writes, the standard WA metric.
func (f *FTL) WriteAmplification() float64 {
	if f.hostWrites == 0 {
		return 1
	}
	return float64(f.hostWrites+f.gcWrites) / float64(f.hostWrites)
}

// CheckInvariants verifies internal consistency; tests call it after
// workloads. It returns the first violation found.
func (f *FTL) CheckInvariants() error {
	if f.l2p.len() != f.p2l.len() {
		return fmt.Errorf("ftl: l2p has %d entries, p2l has %d", f.l2p.len(), f.p2l.len())
	}
	var ierr error
	f.l2p.forEach(func(lpn, p int64) bool {
		if back, ok := f.p2l.get(p); !ok || back != lpn {
			ierr = fmt.Errorf("ftl: mapping lpn %d -> ppn %d not mirrored", lpn, p)
			return false
		}
		a := f.geo.FromPPN(flash.PPN(p))
		ps := f.planes[f.planeIndex(a.Chip, a.Die, a.Plane)]
		if !ps.blocks[a.Block].valid.Get(a.Page) {
			ierr = fmt.Errorf("ftl: mapped page %v not marked valid", a)
			return false
		}
		return true
	})
	if ierr != nil {
		return ierr
	}
	for i, ps := range f.planes {
		counted := 0
		for b := range ps.blocks {
			blk := &ps.blocks[b]
			if got := blk.valid.Count(); got != blk.validCount {
				return fmt.Errorf("ftl: plane %d block %d validCount %d != bitmap %d", i, b, blk.validCount, got)
			}
			if blk.validCount > blk.written {
				return fmt.Errorf("ftl: plane %d block %d valid %d > written %d", i, b, blk.validCount, blk.written)
			}
			counted += blk.validCount
		}
		_ = counted
		free := map[int]bool{}
		for _, b := range ps.free {
			if free[b] {
				return fmt.Errorf("ftl: plane %d free list duplicates block %d", i, b)
			}
			free[b] = true
			if ps.blocks[b].written != 0 || ps.blocks[b].validCount != 0 {
				return fmt.Errorf("ftl: plane %d free block %d not erased", i, b)
			}
			if ps.blocks[b].bad {
				return fmt.Errorf("ftl: plane %d free list contains bad block %d", i, b)
			}
		}
		for _, b := range ps.spare {
			if free[b] {
				return fmt.Errorf("ftl: plane %d block %d is both free and spare", i, b)
			}
			free[b] = true
			if ps.blocks[b].written != 0 || ps.blocks[b].validCount != 0 {
				return fmt.Errorf("ftl: plane %d spare block %d not erased", i, b)
			}
			if ps.blocks[b].bad {
				return fmt.Errorf("ftl: plane %d spare pool contains bad block %d", i, b)
			}
		}
		for b := range ps.blocks {
			if ps.blocks[b].bad && ps.blocks[b].validCount != 0 {
				return fmt.Errorf("ftl: plane %d bad block %d holds live data", i, b)
			}
		}
	}
	return nil
}
