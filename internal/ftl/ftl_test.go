package ftl

import (
	"testing"
	"testing/quick"

	"sprinkler/internal/flash"
	"sprinkler/internal/req"
)

func tinyGeo() flash.Geometry {
	return flash.Geometry{
		Channels: 2, ChipsPerChan: 2, DiesPerChip: 2, PlanesPerDie: 2,
		BlocksPerPlane: 16, PagesPerBlock: 8, PageSize: 2048,
	}
}

func newTestFTL(t *testing.T) *FTL {
	t.Helper()
	f, err := New(DefaultConfig(tinyGeo()))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func writeMem(t *testing.T, f *FTL, lpn req.LPN) *req.Mem {
	t.Helper()
	io := req.NewIO(0, req.Write, lpn, 1, 0)
	if err := f.Preprocess(io.Mem[0]); err != nil {
		t.Fatalf("preprocess write lpn %d: %v", lpn, err)
	}
	return io.Mem[0]
}

func readMem(t *testing.T, f *FTL, lpn req.LPN) *req.Mem {
	t.Helper()
	io := req.NewIO(0, req.Read, lpn, 1, 0)
	if err := f.Preprocess(io.Mem[0]); err != nil {
		t.Fatalf("preprocess read lpn %d: %v", lpn, err)
	}
	return io.Mem[0]
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{Geo: flash.Geometry{}}); err == nil {
		t.Fatal("accepted invalid geometry")
	}
	cfg := DefaultConfig(tinyGeo())
	cfg.GCFreeTarget = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted zero GCFreeTarget")
	}
}

func TestWriteMapsAndRemaps(t *testing.T) {
	f := newTestFTL(t)
	m1 := writeMem(t, f, 42)
	a1, ok := f.Lookup(42)
	if !ok || a1 != m1.Addr {
		t.Fatalf("lookup after write = %v/%v, want %v", a1, ok, m1.Addr)
	}
	m2 := writeMem(t, f, 42)
	if m2.Addr == m1.Addr {
		t.Fatal("overwrite reused the same physical page (in-place update)")
	}
	a2, _ := f.Lookup(42)
	if a2 != m2.Addr {
		t.Fatalf("lookup returns stale address %v, want %v", a2, m2.Addr)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReadMapsOnFirstTouch(t *testing.T) {
	f := newTestFTL(t)
	m := readMem(t, f, 7)
	if !f.geo.ValidAddr(m.Addr) {
		t.Fatalf("first-touch read got invalid addr %v", m.Addr)
	}
	// Second read must hit the same page.
	m2 := readMem(t, f, 7)
	if m2.Addr != m.Addr {
		t.Fatalf("re-read moved: %v -> %v", m.Addr, m2.Addr)
	}
}

func TestStripeSpreadsAcrossChips(t *testing.T) {
	f := newTestFTL(t)
	g := f.Geometry()
	seen := map[flash.ChipID]bool{}
	for i := 0; i < g.NumChips(); i++ {
		m := writeMem(t, f, req.LPN(i))
		seen[m.Addr.Chip] = true
	}
	if len(seen) != g.NumChips() {
		t.Fatalf("first %d writes touched %d chips, want all %d",
			g.NumChips(), len(seen), g.NumChips())
	}
}

func TestStripeChannelFirst(t *testing.T) {
	f := newTestFTL(t)
	g := f.Geometry()
	// Consecutive writes should land on different channels first (channel
	// striping before channel pipelining).
	m0 := writeMem(t, f, 0)
	m1 := writeMem(t, f, 1)
	if g.Channel(m0.Addr.Chip) == g.Channel(m1.Addr.Chip) {
		t.Fatalf("writes 0,1 on same channel: %v %v", m0.Addr, m1.Addr)
	}
}

func TestStripeAlignsPageOffsets(t *testing.T) {
	// Writing NumChips*PlanesPerDie pages in a row must leave sibling
	// planes with aligned write pointers so plane sharing stays possible.
	f := newTestFTL(t)
	g := f.Geometry()
	n := g.NumChips() * g.PlanesPerDie
	addrs := make([]flash.Addr, 0, n)
	for i := 0; i < n; i++ {
		addrs = append(addrs, writeMem(t, f, req.LPN(i)).Addr)
	}
	byChip := map[flash.ChipID][]flash.Addr{}
	for _, a := range addrs {
		byChip[a.Chip] = append(byChip[a.Chip], a)
	}
	for chip, as := range byChip {
		if len(as) != g.PlanesPerDie {
			t.Fatalf("chip %d received %d writes, want %d", chip, len(as), g.PlanesPerDie)
		}
		for _, a := range as[1:] {
			if a.Page != as[0].Page || a.Block != as[0].Block {
				t.Fatalf("chip %d pages not aligned: %v vs %v", chip, as[0], a)
			}
			if a.Plane == as[0].Plane && a.Die == as[0].Die {
				t.Fatalf("chip %d reused die/plane: %v vs %v", chip, as[0], a)
			}
		}
	}
}

func TestAllocateExhaustsPlane(t *testing.T) {
	g := tinyGeo()
	cfg := DefaultConfig(g)
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Host writes may use everything except one reserved block per plane.
	planes := int64(g.NumChips() * g.DiesPerChip * g.PlanesPerDie)
	usable := g.TotalPages() - planes*int64(g.PagesPerBlock)
	for i := int64(0); i < usable; i++ {
		io := req.NewIO(0, req.Write, req.LPN(i), 1, 0)
		if err := f.Preprocess(io.Mem[0]); err != nil {
			t.Fatalf("write %d/%d failed: %v", i, usable, err)
		}
	}
	// Somewhere in the next plane-sweep the reserve must kick in.
	var failed bool
	for i := int64(0); i < planes; i++ {
		io := req.NewIO(0, req.Write, req.LPN(usable+i), 1, 0)
		if err := f.Preprocess(io.Mem[0]); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Fatal("allocation dipped into the per-plane GC reserve")
	}
}

func TestNeedGCOrdering(t *testing.T) {
	g := tinyGeo()
	f, err := New(Config{Geo: g, GCFreeTarget: 16}) // every plane trips immediately
	if err != nil {
		t.Fatal(err)
	}
	need := f.NeedGC()
	if len(need) != g.NumChips()*g.DiesPerChip*g.PlanesPerDie {
		t.Fatalf("with threshold 16 every plane (%d) should need GC, got %d",
			g.NumChips()*g.DiesPerChip*g.PlanesPerDie, len(need))
	}
}

func TestGCPlanAndCommit(t *testing.T) {
	g := tinyGeo()
	f, err := New(Config{Geo: g, GCFreeTarget: 1, MigrateCrossPlane: false})
	if err != nil {
		t.Fatal(err)
	}
	// Hammer a small LPN working set so old versions accumulate and the
	// free lists run down to the GC threshold (16 planes * 16 blocks * 8
	// pages = 2048 physical pages; 1900 writes leave ~1 free block/plane).
	for i := 0; i < 1900; i++ {
		writeMem(t, f, req.LPN(i%64))
	}
	var migrations int
	f.OnMigrate(func(lpn req.LPN, old, new flash.Addr) { migrations++ })

	need := f.NeedGC()
	if len(need) == 0 {
		t.Fatal("no plane under GC pressure after exhausting free blocks")
	}
	collected := 0
	for _, pi := range need {
		job, err := f.PlanGC(pi)
		if err != nil {
			t.Fatalf("PlanGC: %v", err)
		}
		if job == nil {
			continue
		}
		applied := f.CommitGC(job)
		if len(applied) != len(job.Migrations) {
			t.Fatalf("applied %d of %d planned migrations with no interference",
				len(applied), len(job.Migrations))
		}
		collected++
	}
	if collected == 0 {
		t.Fatal("no plane was collectable after heavy overwrite")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.GCErases == 0 || st.GCRuns == 0 {
		t.Fatalf("GC counters not advanced: %+v", st)
	}
	if migrations != int(st.GCWrites) {
		t.Fatalf("migration callback fired %d times, stats say %d", migrations, st.GCWrites)
	}
}

func TestGCSkipsHostOverwrittenPages(t *testing.T) {
	g := tinyGeo()
	f, err := New(Config{Geo: g, GCFreeTarget: 1, MigrateCrossPlane: false})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 600; i++ {
		writeMem(t, f, req.LPN(i%64))
	}
	var job *GCJob
	for pi := range f.planes {
		j, err := f.PlanGC(pi)
		if err != nil {
			t.Fatal(err)
		}
		if j != nil && len(j.Migrations) > 0 {
			job = j
			break
		}
	}
	if job == nil {
		t.Skip("no job with live migrations; workload too clean")
	}
	// Host overwrites the first migrating LPN mid-flight.
	victimLPN := job.Migrations[0].LPN
	writeMem(t, f, victimLPN)
	applied := f.CommitGC(job)
	for _, mg := range applied {
		if mg.LPN == victimLPN {
			t.Fatal("GC applied a migration for a host-overwritten LPN")
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCommitGCTwicePanics(t *testing.T) {
	f := newTestFTL(t)
	for i := 0; i < 600; i++ {
		writeMem(t, f, req.LPN(i%64))
	}
	var job *GCJob
	for pi := range f.planes {
		j, err := f.PlanGC(pi)
		if err != nil {
			t.Fatal(err)
		}
		if j != nil {
			job = j
			break
		}
	}
	if job == nil {
		t.Fatal("no collectable block")
	}
	f.CommitGC(job)
	defer func() {
		if recover() == nil {
			t.Fatal("double CommitGC did not panic")
		}
	}()
	f.CommitGC(job)
}

func TestWriteAmplification(t *testing.T) {
	f := newTestFTL(t)
	if wa := f.WriteAmplification(); wa != 1 {
		t.Fatalf("WA with no writes = %v, want 1", wa)
	}
	for i := 0; i < 600; i++ {
		writeMem(t, f, req.LPN(i%64))
	}
	for _, pi := range f.NeedGC() {
		job, err := f.PlanGC(pi)
		if err != nil || job == nil {
			continue
		}
		f.CommitGC(job)
	}
	if wa := f.WriteAmplification(); wa < 1 {
		t.Fatalf("WA = %v, want >= 1", wa)
	}
}

// Property: any interleaving of writes over a small LPN space keeps the
// mapping bijective and invariants intact.
func TestMappingInvariantProperty(t *testing.T) {
	prop := func(ops []uint16) bool {
		f, err := New(DefaultConfig(tinyGeo()))
		if err != nil {
			return false
		}
		for _, op := range ops {
			lpn := req.LPN(op % 128)
			kind := req.Write
			if op%3 == 0 {
				kind = req.Read
			}
			io := req.NewIO(0, kind, lpn, 1, 0)
			if err := f.Preprocess(io.Mem[0]); err != nil {
				return false
			}
		}
		return f.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: GC cycles never lose mappings — every LPN written remains
// readable at a consistent address after arbitrary GC activity.
func TestGCDurabilityProperty(t *testing.T) {
	prop := func(seed uint8) bool {
		f, err := New(Config{Geo: tinyGeo(), GCFreeTarget: 2, MigrateCrossPlane: seed%2 == 0})
		if err != nil {
			return false
		}
		live := map[req.LPN]bool{}
		for i := 0; i < 500; i++ {
			lpn := req.LPN((i*7 + int(seed)) % 96)
			io := req.NewIO(0, req.Write, lpn, 1, 0)
			if err := f.Preprocess(io.Mem[0]); err != nil {
				return false
			}
			live[lpn] = true
			if i%50 == 0 {
				for _, pi := range f.NeedGC() {
					job, err := f.PlanGC(pi)
					if err != nil || job == nil {
						continue
					}
					f.CommitGC(job)
				}
			}
		}
		for lpn := range live {
			if _, ok := f.Lookup(lpn); !ok {
				return false
			}
		}
		return f.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsMappedPages(t *testing.T) {
	f := newTestFTL(t)
	for i := 0; i < 10; i++ {
		writeMem(t, f, req.LPN(i))
	}
	if got := f.Stats().MappedPages; got != 10 {
		t.Fatalf("MappedPages = %d, want 10", got)
	}
}
