package ftl

import (
	"testing"

	"sprinkler/internal/flash"
	"sprinkler/internal/req"
)

func allocFTL(t *testing.T, a Allocation) *FTL {
	t.Helper()
	cfg := DefaultConfig(tinyGeo())
	cfg.Allocation = a
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// firstAddrs writes n pages and returns their placements.
func firstAddrs(t *testing.T, f *FTL, n int) []flash.Addr {
	t.Helper()
	out := make([]flash.Addr, n)
	for i := range out {
		io := req.NewIO(0, req.Write, req.LPN(i), 1, 0)
		if err := f.Preprocess(io.Mem[0]); err != nil {
			t.Fatal(err)
		}
		out[i] = io.Mem[0].Addr
	}
	return out
}

func TestAllocChannelFirstAlternatesChannels(t *testing.T) {
	f := allocFTL(t, AllocChannelFirst)
	g := f.Geometry() // 2 channels x 2 chips
	a := firstAddrs(t, f, 4)
	// Consecutive writes must alternate channel: ch0, ch1, ch0, ch1.
	if g.Channel(a[0].Chip) == g.Channel(a[1].Chip) {
		t.Fatalf("channel-first placed writes 0,1 on one channel: %v %v", a[0], a[1])
	}
	if a[0].Chip == a[2].Chip && g.ChipOffset(a[2].Chip) == g.ChipOffset(a[0].Chip) {
		// Third write should be the other chip offset on channel 0.
		t.Fatalf("channel-first did not advance chip offset: %v %v", a[0], a[2])
	}
}

func TestAllocWayFirstFillsChannelWays(t *testing.T) {
	f := allocFTL(t, AllocWayFirst)
	g := f.Geometry()
	a := firstAddrs(t, f, 4)
	// Way-first: first two writes on the SAME channel, different chips.
	if g.Channel(a[0].Chip) != g.Channel(a[1].Chip) {
		t.Fatalf("way-first split writes 0,1 across channels: %v %v", a[0], a[1])
	}
	if a[0].Chip == a[1].Chip {
		t.Fatalf("way-first reused a chip: %v %v", a[0], a[1])
	}
	// Third write moves to the next channel.
	if g.Channel(a[2].Chip) == g.Channel(a[0].Chip) {
		t.Fatalf("way-first never advanced channel: %v", a[2])
	}
}

func TestAllocPlaneFirstStaysOnChip(t *testing.T) {
	f := allocFTL(t, AllocPlaneFirst)
	g := f.Geometry()
	flp := g.MaxFLP() // 2 dies x 2 planes = 4
	a := firstAddrs(t, f, flp+1)
	for i := 1; i < flp; i++ {
		if a[i].Chip != a[0].Chip {
			t.Fatalf("plane-first left the chip early at %d: %v", i, a[i])
		}
	}
	// All flp placements on distinct (die, plane).
	seen := map[[2]int]bool{}
	for i := 0; i < flp; i++ {
		k := [2]int{a[i].Die, a[i].Plane}
		if seen[k] {
			t.Fatalf("plane-first reused die/plane: %v", a[i])
		}
		seen[k] = true
	}
	if a[flp].Chip == a[0].Chip {
		t.Fatalf("plane-first never advanced chip: %v", a[flp])
	}
}

func TestAllocationSchemesCoverAllPlanes(t *testing.T) {
	for _, scheme := range []Allocation{AllocChannelFirst, AllocWayFirst, AllocPlaneFirst} {
		f := allocFTL(t, scheme)
		g := f.Geometry()
		n := g.NumChips() * g.DiesPerChip * g.PlanesPerDie
		seen := map[int]bool{}
		for _, a := range firstAddrs(t, f, n) {
			seen[f.planeIndex(a.Chip, a.Die, a.Plane)] = true
		}
		if len(seen) != n {
			t.Errorf("%v: one stripe sweep touched %d/%d planes", scheme, len(seen), n)
		}
		if err := f.CheckInvariants(); err != nil {
			t.Errorf("%v: %v", scheme, err)
		}
	}
}

func TestAllocationString(t *testing.T) {
	if AllocChannelFirst.String() != "channel-first" ||
		AllocWayFirst.String() != "way-first" ||
		AllocPlaneFirst.String() != "plane-first" {
		t.Fatal("allocation labels wrong")
	}
}
