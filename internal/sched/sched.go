// Package sched defines the device-level I/O scheduler interface of the
// NVMHC and the two state-of-the-art baselines the paper compares against
// (§3): the virtual address scheduler (VAS) and the physical address
// scheduler (PAS). The paper's contribution, Sprinkler, lives in
// internal/core and implements the same interface.
package sched

import (
	"sort"

	"sprinkler/internal/flash"
	"sprinkler/internal/nvmhc"
	"sprinkler/internal/req"
	"sprinkler/internal/sim"
)

// Fabric is the scheduler's read-only view of the SSD internals: physical
// layout and per-chip commitment pressure. The device model implements it.
type Fabric interface {
	// Geo returns the flash geometry (the "internal resource layout").
	Geo() flash.Geometry
	// Outstanding reports how many memory requests are composed/committed
	// to the chip but not yet served. Schedulers budget against this.
	Outstanding(c flash.ChipID) int
	// ChipBusy reports the chip's R/B state.
	ChipBusy(c flash.ChipID) bool
}

// Scheduler selects which memory requests to compose and commit next.
//
// Select returns memory requests in commitment order; the device model
// initiates their data movements (serialized on the DMA engine) and hands
// them to the flash controllers. Select is invoked whenever commitment
// capacity or queue contents change. Requests already selected are in
// states beyond StateQueued and must not be returned again.
type Scheduler interface {
	Name() string
	Select(now sim.Time, q *nvmhc.Queue, fab Fabric) []*req.Mem
	// NeedsReaddressing reports whether the scheduler subscribes to the
	// §4.3 readdressing callback. Schedulers that do see fresh physical
	// addresses after live-data migration; schedulers that don't pay a
	// re-translation penalty at commit time.
	NeedsReaddressing() bool
}

// CandidateWindow gathers still-queued memory requests from the first
// window I/Os of the queue (window <= 0 means every entry), honouring the
// force-unit-access barrier of §4.4: an FUA I/O must not be reordered, so
// the scan stops at an FUA entry unless it is the head, and an FUA head
// blocks the scan after it until fully selected.
func CandidateWindow(q *nvmhc.Queue, window int) []*req.Mem {
	var out []*req.Mem
	for i, io := range q.Entries() {
		if window > 0 && i >= window {
			break
		}
		if io.FUA && i > 0 {
			// Barrier: nothing at or beyond an FUA entry may be selected
			// before the entries ahead of it have fully drained.
			break
		}
		for _, m := range io.Mem {
			if m.State == req.StateQueued {
				out = append(out, m)
			}
		}
		if io.FUA {
			// FUA head: serve it alone, in order.
			break
		}
	}
	return out
}

// budget tracks per-chip commitment capacity within one Select call.
type budget struct {
	fab   Fabric
	slots int
	used  map[flash.ChipID]int
}

func newBudget(fab Fabric, slots int) *budget {
	return &budget{fab: fab, slots: slots, used: make(map[flash.ChipID]int)}
}

// take reserves one slot on m's chip if capacity remains.
func (b *budget) take(m *req.Mem) bool {
	c := m.Addr.Chip
	if b.fab.Outstanding(c)+b.used[c] >= b.slots {
		return false
	}
	b.used[c]++
	return true
}

// fits reports whether every request in ms can be taken together.
func (b *budget) fits(ms []*req.Mem) bool {
	need := make(map[flash.ChipID]int)
	for _, m := range ms {
		need[m.Addr.Chip]++
	}
	for c, n := range need {
		if b.fab.Outstanding(c)+b.used[c]+n > b.slots {
			return false
		}
	}
	return true
}

// VAS is the virtual address scheduler (§3): strict FIFO over the
// device-level queue. It composes the head I/O's memory requests in order
// and cannot advance to the next I/O until every request of the head has
// been committed — the head-of-line blocking that causes the inter-chip
// idleness of Figure 4. VAS is oblivious to physical addresses: it never
// reorders around busy chips.
type VAS struct {
	// Slots is the per-chip commitment depth. The paper's VAS waits for
	// the previously committed request to complete before committing the
	// next one to the same chip (Figure 4b), i.e. depth 1.
	Slots int
}

// NewVAS returns a VAS with the default commitment depth.
func NewVAS() *VAS { return &VAS{Slots: 1} }

// Name implements Scheduler.
func (v *VAS) Name() string { return "VAS" }

// NeedsReaddressing implements Scheduler: VAS has no readdressing callback.
func (v *VAS) NeedsReaddressing() bool { return false }

// Select implements Scheduler.
func (v *VAS) Select(now sim.Time, q *nvmhc.Queue, fab Fabric) []*req.Mem {
	entries := q.Entries()
	if len(entries) == 0 {
		return nil
	}
	// Find the oldest I/O with unselected requests: that is the head VAS
	// is working on. If any of its requests cannot commit now, VAS stalls.
	for _, io := range entries {
		pending := false
		for _, m := range io.Mem {
			if m.State == req.StateQueued {
				pending = true
				break
			}
		}
		if !pending {
			continue
		}
		b := newBudget(fab, v.Slots)
		var out []*req.Mem
		for _, m := range io.Mem {
			if m.State != req.StateQueued {
				continue
			}
			if b.take(m) {
				out = append(out, m)
			}
			// Requests that do not fit stay queued; VAS will not look past
			// this I/O regardless (head-of-line blocking).
		}
		return out
	}
	return nil
}

// PAS is the physical address scheduler (§3, modelled after Ozone and
// PAQ): it sees physical addresses, keeps small extra queues per chip, and
// reorders at I/O-request granularity — it skips I/Os whose target chips
// are saturated and serves later I/Os, a coarse-grain out-of-order
// execution. It still composes memory requests within I/O boundaries, so
// parallelism dependency remains (§3, "composes memory requests and
// commits them based on I/O request arrival order").
type PAS struct {
	// Slots is the per-chip extra queue depth.
	Slots int
}

// NewPAS returns a PAS with the default extra-queue depth.
func NewPAS() *PAS { return &PAS{Slots: 4} }

// Name implements Scheduler.
func (p *PAS) Name() string { return "PAS" }

// NeedsReaddressing implements Scheduler: PAS's hardware preprocessor does
// not track live-data migration (§4.3).
func (p *PAS) NeedsReaddressing() bool { return false }

// Select implements Scheduler.
//
// PAS reorders at I/O granularity (coarse-grain out-of-order, Figure 5a):
// an I/O commits only when every one of its remaining memory requests fits
// the per-chip extra queues; otherwise the whole I/O is skipped and later
// I/Os are considered. The oldest incomplete I/O is exempt from atomicity
// (it may commit partially) so oversized I/Os — more requests to one chip
// than the extra queue holds — still make progress.
func (p *PAS) Select(now sim.Time, q *nvmhc.Queue, fab Fabric) []*req.Mem {
	b := newBudget(fab, p.Slots)
	var out []*req.Mem
	head := true
	for i, io := range q.Entries() {
		if io.FUA && i > 0 {
			break
		}
		var pending []*req.Mem
		for _, m := range io.Mem {
			if m.State == req.StateQueued {
				pending = append(pending, m)
			}
		}
		if len(pending) == 0 {
			continue
		}
		if head {
			// Progress guarantee: commit whatever fits of the head.
			for _, m := range pending {
				if b.take(m) {
					out = append(out, m)
				}
			}
			head = false
		} else if b.fits(pending) {
			for _, m := range pending {
				if !b.take(m) {
					panic("sched: PAS fits/take mismatch")
				}
				out = append(out, m)
			}
		}
		if io.FUA {
			break
		}
	}
	return out
}

// SortChipsByOffset orders chip IDs in the RIOS traversal order (§4.1):
// same chip offset across channels first, then the next offset — so
// commitments stripe across channels before pipelining within one.
func SortChipsByOffset(g flash.Geometry, chips []flash.ChipID) {
	sort.Slice(chips, func(a, b int) bool {
		oa, ob := g.ChipOffset(chips[a]), g.ChipOffset(chips[b])
		if oa != ob {
			return oa < ob
		}
		return g.Channel(chips[a]) < g.Channel(chips[b])
	})
}
