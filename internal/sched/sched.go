// Package sched defines the device-level I/O scheduler interface of the
// NVMHC and the two state-of-the-art baselines the paper compares against
// (§3): the virtual address scheduler (VAS) and the physical address
// scheduler (PAS). The paper's contribution, Sprinkler, lives in
// internal/core and implements the same interface.
package sched

import (
	"sort"

	"sprinkler/internal/flash"
	"sprinkler/internal/nvmhc"
	"sprinkler/internal/req"
	"sprinkler/internal/sim"
)

// Fabric is the scheduler's read-only view of the SSD internals: physical
// layout, per-chip commitment pressure, and the incremental ready index.
// The device model implements it.
type Fabric interface {
	// Geo returns the flash geometry (the "internal resource layout").
	Geo() flash.Geometry
	// Outstanding reports how many memory requests are composed/committed
	// to the chip but not yet served. Schedulers budget against this.
	Outstanding(c flash.ChipID) int
	// ChipBusy reports the chip's R/B state.
	ChipBusy(c flash.ChipID) bool
	// Ready returns the per-chip index of still-queued memory requests,
	// maintained incrementally by the device as I/Os are admitted,
	// selected, and readdressed. A nil index tells schedulers to fall
	// back to scanning the queue (test fabrics do this).
	Ready() *ReadyIndex
}

// Scheduler selects which memory requests to compose and commit next.
//
// Select returns memory requests in commitment order; the device model
// initiates their data movements (serialized on the DMA engine) and hands
// them to the flash controllers. Select is invoked whenever commitment
// capacity or queue contents change. Requests already selected are in
// states beyond StateQueued and must not be returned again.
//
// The returned slice is owned by the scheduler and valid only until the
// next Select call: schedulers reuse it to keep the hot path free of
// allocations, and callers must consume it before invoking Select again.
type Scheduler interface {
	Name() string
	Select(now sim.Time, q *nvmhc.Queue, fab Fabric) []*req.Mem
	// NeedsReaddressing reports whether the scheduler subscribes to the
	// §4.3 readdressing callback. Schedulers that do see fresh physical
	// addresses after live-data migration; schedulers that don't pay a
	// re-translation penalty at commit time.
	NeedsReaddressing() bool
}

// ReadyIndex is the incremental per-chip index of still-queued memory
// requests. The device feeds it on every queue transition — admission
// appends, commitment removes, readdressing moves — so schedulers can
// enumerate each chip's candidates directly instead of rescanning every
// queued I/O's member list on every pump.
//
// Per-chip lists hold requests in admission order (parent I/O admission
// sequence, then member index) — exactly the order a full queue scan would
// discover them, which keeps index-driven scheduling bit-identical to the
// scan it replaces. Removal just nils the slot (O(1), via
// req.Mem.ReadySlot); holes are compacted away during Gather.
type ReadyIndex struct {
	lists [][]*req.Mem
	live  []int32

	// version counts membership/address changes per chip: admission,
	// removal, and readdressing all bump it (housekeeping like hole
	// compaction does not). Schedulers key incremental per-chip state —
	// Sprinkler's memoized FARO grouping — on it: an unchanged version
	// guarantees the chip's candidate set, order and physical addresses
	// are exactly as they were, so cached selection output stays
	// bit-identical to a recomputation.
	version []uint64

	// addVer and readdrVer split version by cause: addVer counts entries
	// entering a chip's list (admission, readdressing inserts), readdrVer
	// counts physical-address rewrites touching it (including the source
	// side of a cross-chip move). A version bump with both unchanged is
	// therefore removal-only — the precondition for Sprinkler's FARO
	// partial invalidation, which advances a memoized order past removed
	// groups instead of regrouping from scratch.
	addVer    []uint64
	readdrVer []uint64
}

// NewReadyIndex returns an empty index over numChips chips.
func NewReadyIndex(numChips int) *ReadyIndex {
	vers := make([]uint64, 3*numChips)
	return &ReadyIndex{
		lists:     make([][]*req.Mem, numChips),
		live:      make([]int32, numChips),
		version:   vers[:numChips:numChips],
		addVer:    vers[numChips : 2*numChips : 2*numChips],
		readdrVer: vers[2*numChips:],
	}
}

// Reset empties the index for a new run, retaining per-chip list storage.
// Slots are nilled so the previous run's requests are not pinned, and
// every chip's version is bumped — not zeroed — so any selection state a
// scheduler memoized against the old contents reads as stale rather than
// accidentally current.
func (x *ReadyIndex) Reset() {
	for c := range x.lists {
		l := x.lists[c]
		for i := range l {
			l[i] = nil
		}
		x.lists[c] = l[:0]
		x.live[c] = 0
		x.version[c]++
		x.addVer[c]++
		x.readdrVer[c]++
	}
}

// Version returns chip c's membership version (see the field comment).
func (x *ReadyIndex) Version(c flash.ChipID) uint64 { return x.version[c] }

// AddVersion returns chip c's entry-insertion counter (see addVer).
func (x *ReadyIndex) AddVersion(c flash.ChipID) uint64 { return x.addVer[c] }

// ReaddrVersion returns chip c's address-rewrite counter (see readdrVer).
func (x *ReadyIndex) ReaddrVersion(c flash.ChipID) uint64 { return x.readdrVer[c] }

// NumChips returns the number of chips the index covers.
func (x *ReadyIndex) NumChips() int { return len(x.lists) }

// Live reports how many queued requests chip c holds.
func (x *ReadyIndex) Live(c flash.ChipID) int { return int(x.live[c]) }

// Add indexes m under its current chip. Admission calls this in queue
// order, so plain appends keep each list sorted by admission order.
func (x *ReadyIndex) Add(m *req.Mem) {
	c := m.Addr.Chip
	m.ReadySlot = int32(len(x.lists[c]))
	x.lists[c] = append(x.lists[c], m)
	x.live[c]++
	x.version[c]++
	x.addVer[c]++
}

// Remove unindexes m in O(1), leaving a hole. Gather compacts holes on
// the Sprinkler path; for schedulers that never Gather (VAS, PAS, or a
// queue under a sustained FUA barrier) the list is compacted here once
// holes dominate, so index memory tracks the live queue depth for every
// scheduler instead of growing with total admissions.
func (x *ReadyIndex) Remove(m *req.Mem) {
	c := x.drop(m)
	if l := x.lists[c]; len(l) >= 64 && int(x.live[c])*2 < len(l) {
		x.lists[c] = compactList(l)
	}
}

// drop nils m's slot without compacting — safe while the chip's list is
// being iterated (Readdress during an applyMigrations walk).
func (x *ReadyIndex) drop(m *req.Mem) flash.ChipID {
	c := m.Addr.Chip
	x.lists[c][m.ReadySlot] = nil
	m.ReadySlot = -1
	x.live[c]--
	x.version[c]++
	return c
}

// Readdress re-points m at dst (live-data migration, §4.3), moving it
// between chip lists when the migration crossed chips. The destination
// insert restores admission order, so index-driven selection stays
// identical to a queue scan even after migration.
func (x *ReadyIndex) Readdress(m *req.Mem, dst flash.Addr) {
	if m.Addr.Chip == dst.Chip {
		// Same chip, new die/plane/block/page: membership and order are
		// untouched but the address feeds FARO grouping, so cached
		// selection state must still be invalidated.
		x.version[dst.Chip]++
		x.readdrVer[dst.Chip]++
		m.Addr = dst
		return
	}
	src := x.drop(m)
	x.readdrVer[src]++
	m.Addr = dst
	l := compactList(x.lists[dst.Chip])
	pos := sort.Search(len(l), func(i int) bool {
		o := l[i]
		if o.IO.Seq != m.IO.Seq {
			return o.IO.Seq > m.IO.Seq
		}
		return o.Index > m.Index
	})
	l = append(l, nil)
	copy(l[pos+1:], l[pos:])
	l[pos] = m
	for i := pos; i < len(l); i++ {
		l[i].ReadySlot = int32(i)
	}
	x.lists[dst.Chip] = l
	x.live[dst.Chip]++
	x.version[dst.Chip]++
	x.addVer[dst.Chip]++
	x.readdrVer[dst.Chip]++
}

// compactList squeezes out nil holes, fixing ReadySlot positions.
func compactList(l []*req.Mem) []*req.Mem {
	w := 0
	for _, m := range l {
		if m == nil {
			continue
		}
		l[w] = m
		m.ReadySlot = int32(w)
		w++
	}
	return l[:w]
}

// List returns chip c's indexed requests in admission order. Entries may
// be nil (removed); callers must skip them and must not mutate or retain
// the slice.
func (x *ReadyIndex) List(c flash.ChipID) []*req.Mem { return x.lists[c] }

// First returns chip c's oldest queued request, or nil when the chip has
// none.
func (x *ReadyIndex) First(c flash.ChipID) *req.Mem {
	for _, m := range x.lists[c] {
		if m != nil {
			return m
		}
	}
	return nil
}

// Gather compacts chip c's list and appends up to max of its requests
// (all of them when max <= 0) whose parent I/O was admitted at or before
// maxSeq to dst, returning the extended slice.
func (x *ReadyIndex) Gather(c flash.ChipID, dst []*req.Mem, max int, maxSeq uint64) []*req.Mem {
	l := x.lists[c]
	w := 0
	taken := 0
	for _, m := range l {
		if m == nil {
			continue
		}
		l[w] = m
		m.ReadySlot = int32(w)
		w++
		if (max <= 0 || taken < max) && m.IO.Seq <= maxSeq {
			dst = append(dst, m)
			taken++
		}
	}
	for i := w; i < len(l); i++ {
		l[i] = nil
	}
	x.lists[c] = l[:w]
	return dst
}

// CandidateWindow gathers still-queued memory requests from the first
// window I/Os of the queue (window <= 0 means every entry), honouring the
// force-unit-access barrier of §4.4: an FUA I/O must not be reordered, so
// the scan stops at an FUA entry unless it is the head, and an FUA head
// blocks the scan after it until fully selected.
func CandidateWindow(q *nvmhc.Queue, window int) []*req.Mem {
	var out []*req.Mem
	i := 0
	for io := q.Head(); io != nil; io = q.Next(io) {
		if window > 0 && i >= window {
			break
		}
		if io.FUA && i > 0 {
			// Barrier: nothing at or beyond an FUA entry may be selected
			// before the entries ahead of it have fully drained.
			break
		}
		for _, m := range io.Mem {
			if m.State == req.StateQueued {
				out = append(out, m)
			}
		}
		if io.FUA {
			// FUA head: serve it alone, in order.
			break
		}
		i++
	}
	return out
}

// StateResetter is implemented by schedulers whose per-run selection
// state can be dropped in place, so one scheduler value can serve
// consecutive runs on a reused device. ResetState must leave the
// scheduler behaving exactly like a freshly constructed one (grown
// scratch capacity may be retained; cached orderings and references to
// the previous run's requests may not).
type StateResetter interface {
	ResetState()
}

// Budget tracks per-chip commitment capacity within one Select call. It is
// owned by a scheduler and reused across calls: Reset bumps an epoch
// counter instead of clearing (or allocating) per-chip state, so a Select
// pass touches only the chips it budgets against.
type Budget struct {
	fab   Fabric
	slots int

	used  []int16
	epoch []uint32
	cur   uint32

	// fits scratch: per-call need counts, epoch-guarded the same way.
	need      []int16
	needEpoch []uint32
	needCur   uint32
	needChips []flash.ChipID
}

// Reset rebinds the budget to fab with the given per-chip slot depth and
// forgets all prior reservations.
func (b *Budget) Reset(fab Fabric, slots int) {
	n := fab.Geo().NumChips()
	if len(b.used) < n {
		b.used = make([]int16, n)
		b.epoch = make([]uint32, n)
		b.need = make([]int16, n)
		b.needEpoch = make([]uint32, n)
	}
	b.fab, b.slots = fab, slots
	b.cur++
}

// usedOn returns the reservations taken on chip c this epoch.
func (b *Budget) usedOn(c flash.ChipID) int16 {
	if b.epoch[c] != b.cur {
		return 0
	}
	return b.used[c]
}

// Take reserves one slot on m's chip if capacity remains.
func (b *Budget) Take(m *req.Mem) bool {
	c := m.Addr.Chip
	u := b.usedOn(c)
	if b.fab.Outstanding(c)+int(u) >= b.slots {
		return false
	}
	b.epoch[c] = b.cur
	b.used[c] = u + 1
	return true
}

// Fits reports whether every request in ms can be taken together.
func (b *Budget) Fits(ms []*req.Mem) bool {
	b.needCur++
	b.needChips = b.needChips[:0]
	for _, m := range ms {
		c := m.Addr.Chip
		if b.needEpoch[c] != b.needCur {
			b.needEpoch[c] = b.needCur
			b.need[c] = 0
			b.needChips = append(b.needChips, c)
		}
		b.need[c]++
	}
	for _, c := range b.needChips {
		if b.fab.Outstanding(c)+int(b.usedOn(c))+int(b.need[c]) > b.slots {
			return false
		}
	}
	return true
}

// VAS is the virtual address scheduler (§3): strict FIFO over the
// device-level queue. It composes the head I/O's memory requests in order
// and cannot advance to the next I/O until every request of the head has
// been committed — the head-of-line blocking that causes the inter-chip
// idleness of Figure 4. VAS is oblivious to physical addresses: it never
// reorders around busy chips.
type VAS struct {
	// Slots is the per-chip commitment depth. The paper's VAS waits for
	// the previously committed request to complete before committing the
	// next one to the same chip (Figure 4b), i.e. depth 1.
	Slots int

	budget Budget
	out    []*req.Mem
}

// NewVAS returns a VAS with the default commitment depth.
func NewVAS() *VAS { return &VAS{Slots: 1} }

// Name implements Scheduler.
func (v *VAS) Name() string { return "VAS" }

// NeedsReaddressing implements Scheduler: VAS has no readdressing callback.
func (v *VAS) NeedsReaddressing() bool { return false }

// ResetState implements StateResetter: VAS keeps no cross-Select state
// beyond scratch, which is released so the previous run is not pinned.
func (v *VAS) ResetState() { v.out = clearMems(v.out) }

// Select implements Scheduler.
func (v *VAS) Select(now sim.Time, q *nvmhc.Queue, fab Fabric) []*req.Mem {
	// Find the oldest I/O with unselected requests: that is the head VAS
	// is working on. If any of its requests cannot commit now, VAS stalls.
	for io := q.Head(); io != nil; io = q.Next(io) {
		pending := false
		for _, m := range io.Mem {
			if m.State == req.StateQueued {
				pending = true
				break
			}
		}
		if !pending {
			continue
		}
		v.budget.Reset(fab, v.Slots)
		out := v.out[:0]
		for _, m := range io.Mem {
			if m.State != req.StateQueued {
				continue
			}
			if v.budget.Take(m) {
				out = append(out, m)
			}
			// Requests that do not fit stay queued; VAS will not look past
			// this I/O regardless (head-of-line blocking).
		}
		v.out = out
		if len(out) == 0 {
			return nil
		}
		return out
	}
	return nil
}

// PAS is the physical address scheduler (§3, modelled after Ozone and
// PAQ): it sees physical addresses, keeps small extra queues per chip, and
// reorders at I/O-request granularity — it skips I/Os whose target chips
// are saturated and serves later I/Os, a coarse-grain out-of-order
// execution. It still composes memory requests within I/O boundaries, so
// parallelism dependency remains (§3, "composes memory requests and
// commits them based on I/O request arrival order").
type PAS struct {
	// Slots is the per-chip extra queue depth.
	Slots int

	budget  Budget
	out     []*req.Mem
	pending []*req.Mem
}

// NewPAS returns a PAS with the default extra-queue depth.
func NewPAS() *PAS { return &PAS{Slots: 4} }

// Name implements Scheduler.
func (p *PAS) Name() string { return "PAS" }

// NeedsReaddressing implements Scheduler: PAS's hardware preprocessor does
// not track live-data migration (§4.3).
func (p *PAS) NeedsReaddressing() bool { return false }

// ResetState implements StateResetter.
func (p *PAS) ResetState() {
	p.out = clearMems(p.out)
	p.pending = clearMems(p.pending)
}

// clearMems nils a scratch slice's entries (dropping references to the
// previous run's requests) and truncates it, keeping capacity.
func clearMems(ms []*req.Mem) []*req.Mem {
	for i := range ms {
		ms[i] = nil
	}
	return ms[:0]
}

// Select implements Scheduler.
//
// PAS reorders at I/O granularity (coarse-grain out-of-order, Figure 5a):
// an I/O commits only when every one of its remaining memory requests fits
// the per-chip extra queues; otherwise the whole I/O is skipped and later
// I/Os are considered. The oldest incomplete I/O is exempt from atomicity
// (it may commit partially) so oversized I/Os — more requests to one chip
// than the extra queue holds — still make progress.
func (p *PAS) Select(now sim.Time, q *nvmhc.Queue, fab Fabric) []*req.Mem {
	p.budget.Reset(fab, p.Slots)
	out := p.out[:0]
	head := true
	i := 0
	for io := q.Head(); io != nil; io = q.Next(io) {
		if io.FUA && i > 0 {
			break
		}
		i++
		pending := p.pending[:0]
		for _, m := range io.Mem {
			if m.State == req.StateQueued {
				pending = append(pending, m)
			}
		}
		p.pending = pending
		if len(pending) == 0 {
			continue
		}
		if head {
			// Progress guarantee: commit whatever fits of the head.
			for _, m := range pending {
				if p.budget.Take(m) {
					out = append(out, m)
				}
			}
			head = false
		} else if p.budget.Fits(pending) {
			for _, m := range pending {
				if !p.budget.Take(m) {
					panic("sched: PAS fits/take mismatch")
				}
				out = append(out, m)
			}
		}
		if io.FUA {
			break
		}
	}
	p.out = out
	if len(out) == 0 {
		return nil
	}
	return out
}

// SortChipsByOffset orders chip IDs in the RIOS traversal order (§4.1):
// same chip offset across channels first, then the next offset — so
// commitments stripe across channels before pipelining within one.
func SortChipsByOffset(g flash.Geometry, chips []flash.ChipID) {
	sort.Slice(chips, func(a, b int) bool {
		oa, ob := g.ChipOffset(chips[a]), g.ChipOffset(chips[b])
		if oa != ob {
			return oa < ob
		}
		return g.Channel(chips[a]) < g.Channel(chips[b])
	})
}
