package sched

import (
	"testing"

	"sprinkler/internal/flash"
	"sprinkler/internal/nvmhc"
	"sprinkler/internal/req"
)

// fakeFabric is a scriptable Fabric for scheduler unit tests.
type fakeFabric struct {
	geo  flash.Geometry
	out  map[flash.ChipID]int
	busy map[flash.ChipID]bool
}

func newFakeFabric() *fakeFabric {
	return &fakeFabric{
		geo: flash.Geometry{
			Channels: 2, ChipsPerChan: 2, DiesPerChip: 2, PlanesPerDie: 2,
			BlocksPerPlane: 64, PagesPerBlock: 16, PageSize: 2048,
		},
		out:  map[flash.ChipID]int{},
		busy: map[flash.ChipID]bool{},
	}
}

func (f *fakeFabric) Geo() flash.Geometry            { return f.geo }
func (f *fakeFabric) Outstanding(c flash.ChipID) int { return f.out[c] }
func (f *fakeFabric) ChipBusy(c flash.ChipID) bool   { return f.busy[c] }
func (f *fakeFabric) Ready() *ReadyIndex             { return nil }

// makeIO builds an I/O whose memory requests target the given chips, one
// request per chip entry, with distinct die/plane/pages.
func makeIO(id int64, kind req.Kind, chips ...flash.ChipID) *req.IO {
	io := req.NewIO(id, kind, req.LPN(id*1000), len(chips), 0)
	for i, c := range chips {
		io.Mem[i].Addr = flash.Addr{
			Chip: c, Die: i % 2, Plane: (i / 2) % 2, Block: i, Page: i,
		}
	}
	return io
}

func TestVASHeadOfLineBlocking(t *testing.T) {
	fab := newFakeFabric()
	q := nvmhc.NewQueue(8)
	a := makeIO(1, req.Read, 0, 1)
	b := makeIO(2, req.Read, 2, 3)
	q.Enqueue(0, a)
	q.Enqueue(0, b)

	// Chip 0 is saturated: a's first request cannot commit.
	fab.out[0] = 2

	v := NewVAS()
	got := v.Select(0, q, fab)
	// VAS may commit a's chip-1 request but must NOT touch b even though
	// chips 2,3 are idle: that is the head-of-line blocking of Figure 4.
	for _, m := range got {
		if m.IO != a {
			t.Fatalf("VAS selected request of io#%d past a blocked head", m.IO.ID)
		}
	}
	if len(got) != 1 || got[0].Addr.Chip != 1 {
		t.Fatalf("VAS selected %v, want exactly a's chip-1 request", got)
	}
}

func TestVASAdvancesAfterHeadFullySelected(t *testing.T) {
	fab := newFakeFabric()
	q := nvmhc.NewQueue(8)
	a := makeIO(1, req.Read, 0, 1)
	b := makeIO(2, req.Read, 2, 3)
	q.Enqueue(0, a)
	q.Enqueue(0, b)

	v := NewVAS()
	first := v.Select(0, q, fab)
	if len(first) != 2 {
		t.Fatalf("first select got %d, want 2 (all of a)", len(first))
	}
	for _, m := range first {
		m.State = req.StateComposed
	}
	second := v.Select(0, q, fab)
	if len(second) != 2 {
		t.Fatalf("second select got %d, want 2 (all of b)", len(second))
	}
	for _, m := range second {
		if m.IO != b {
			t.Fatal("second select should serve b")
		}
	}
}

func TestVASRespectsSlotBudget(t *testing.T) {
	fab := newFakeFabric()
	q := nvmhc.NewQueue(8)
	// One I/O with 4 requests all to chip 0.
	io := makeIO(1, req.Read, 0, 0, 0, 0)
	q.Enqueue(0, io)
	v := NewVAS() // slots = 1
	got := v.Select(0, q, fab)
	if len(got) != 1 {
		t.Fatalf("VAS committed %d to one chip, budget is 1", len(got))
	}
}

func TestPASSkipsBusyChips(t *testing.T) {
	fab := newFakeFabric()
	q := nvmhc.NewQueue(8)
	a := makeIO(1, req.Read, 0, 1)
	b := makeIO(2, req.Read, 2, 3)
	q.Enqueue(0, a)
	q.Enqueue(0, b)
	fab.out[0] = 4 // chip 0 saturated
	p := NewPAS()
	got := v2ios(p.Select(0, q, fab))
	// PAS must serve a's chip-1 request AND all of b (skip-busy).
	if !got[1] || !got[2] {
		t.Fatalf("PAS failed to reorder around busy chip: %v", got)
	}
}

// v2ios maps selected requests to a set of IO IDs.
func v2ios(ms []*req.Mem) map[int64]bool {
	out := map[int64]bool{}
	for _, m := range ms {
		out[m.IO.ID] = true
	}
	return out
}

func TestPASBudgetAcrossIOs(t *testing.T) {
	fab := newFakeFabric()
	q := nvmhc.NewQueue(8)
	// Three I/Os each with 2 requests to chip 0: budget 4 admits only 4.
	for id := int64(1); id <= 3; id++ {
		q.Enqueue(0, makeIO(id, req.Read, 0, 0))
	}
	p := NewPAS()
	got := p.Select(0, q, fab)
	if len(got) != 4 {
		t.Fatalf("PAS committed %d, budget is 4", len(got))
	}
}

func TestCandidateWindowLimitsIOs(t *testing.T) {
	q := nvmhc.NewQueue(8)
	for id := int64(1); id <= 5; id++ {
		q.Enqueue(0, makeIO(id, req.Read, 0))
	}
	if got := len(CandidateWindow(q, 2)); got != 2 {
		t.Fatalf("window 2 returned %d candidates, want 2", got)
	}
	if got := len(CandidateWindow(q, 0)); got != 5 {
		t.Fatalf("window 0 returned %d candidates, want 5", got)
	}
}

func TestCandidateWindowSkipsNonQueued(t *testing.T) {
	q := nvmhc.NewQueue(8)
	io := makeIO(1, req.Read, 0, 1, 2)
	io.Mem[1].State = req.StateCommitted
	q.Enqueue(0, io)
	got := CandidateWindow(q, 0)
	if len(got) != 2 {
		t.Fatalf("got %d candidates, want 2 (one committed)", len(got))
	}
}

func TestCandidateWindowFUABarrier(t *testing.T) {
	q := nvmhc.NewQueue(8)
	a := makeIO(1, req.Read, 0)
	fua := makeIO(2, req.Write, 1)
	fua.FUA = true
	c := makeIO(3, req.Read, 2)
	q.Enqueue(0, a)
	q.Enqueue(0, fua)
	q.Enqueue(0, c)

	got := CandidateWindow(q, 0)
	if len(got) != 1 || got[0].IO != a {
		t.Fatalf("FUA barrier leaked: got %d candidates", len(got))
	}

	// Once a completes and releases its tag, the FUA I/O reaches the head
	// and is served alone (conservative no-reorder semantics).
	a.Mem[0].State = req.StateDone
	q.Release(0, a)
	got = CandidateWindow(q, 0)
	if len(got) != 1 || got[0].IO != fua {
		t.Fatalf("FUA head not served alone: %v", got)
	}

	// After the FUA completes, the rest flows.
	fua.Mem[0].State = req.StateDone
	q.Release(0, fua)
	got = CandidateWindow(q, 0)
	if len(got) != 1 || got[0].IO != c {
		t.Fatalf("post-FUA flow broken: %v", got)
	}
}

func TestSortChipsByOffset(t *testing.T) {
	g := flash.Geometry{
		Channels: 3, ChipsPerChan: 3, DiesPerChip: 1, PlanesPerDie: 1,
		BlocksPerPlane: 1, PagesPerBlock: 1, PageSize: 1,
	}
	// chip = channel*3 + offset
	chips := []flash.ChipID{8, 0, 4, 3, 6, 1}
	SortChipsByOffset(g, chips)
	// offsets: 8->2, 0->0, 4->1, 3->0, 6->0, 1->1
	// order: offset 0 (ch0,ch1,ch2) => 0,3,6; offset 1 => 1,4; offset 2 => 8
	want := []flash.ChipID{0, 3, 6, 1, 4, 8}
	for i, w := range want {
		if chips[i] != w {
			t.Fatalf("order %v, want %v", chips, want)
		}
	}
}

func TestSchedulerNames(t *testing.T) {
	if NewVAS().Name() != "VAS" || NewPAS().Name() != "PAS" {
		t.Fatal("scheduler names wrong")
	}
	if NewVAS().NeedsReaddressing() || NewPAS().NeedsReaddressing() {
		t.Fatal("baselines must not subscribe to readdressing")
	}
}

// TestReadyIndexBoundedUnderChurn: schedulers that never Gather (VAS/PAS)
// still feed the index through admissions and removals; the nil holes left
// by Remove must be compacted so list memory tracks live depth, not total
// admissions.
func TestReadyIndexBoundedUnderChurn(t *testing.T) {
	x := NewReadyIndex(1)
	for i := 0; i < 10000; i++ {
		io := makeIO(int64(i), req.Read, 0)
		x.Add(io.Mem[0])
		x.Remove(io.Mem[0])
		if n := len(x.List(0)); n > 128 {
			t.Fatalf("iteration %d: index list grew to %d slots with 0 live", i, n)
		}
	}
	if x.Live(0) != 0 {
		t.Fatalf("live = %d, want 0", x.Live(0))
	}
}
