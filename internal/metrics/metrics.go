// Package metrics defines the measurement results of a simulation run and
// the derived quantities the paper's evaluation reports: bandwidth, IOPS,
// device-level latency, queue stall time, chip utilization, inter- and
// intra-chip idleness (§5.3), execution-time breakdown (§5.5) and the
// flash-level parallelism breakdown (§5.6).
package metrics

import (
	"fmt"
	"strings"

	"sprinkler/internal/flash"
	"sprinkler/internal/ftl"
	"sprinkler/internal/sim"
)

// ChipSample is one chip's occupancy accounting over a finished run.
type ChipSample struct {
	Busy             sim.Time // R/B asserted
	CellActive       sim.Time // array operations in flight
	BusActive        sim.Time // holding the channel bus
	BusWait          sim.Time // waiting for the channel bus
	PlaneUseIntegral float64  // ∫ active (die,plane) pairs dt during cell phases
	Txns             int64
	TxnsByClass      [4]int64
	ReqsByClass      [4]int64
	Requests         int64

	// Fault-model outcomes (zero when fault injection is disabled).
	ReadRetries       int64
	ReadUncorrectable int64
	ProgramFails      int64
	EraseFails        int64
}

// Breakdown is the §5.5 execution-time decomposition, as fractions of
// total chip-time that sum to 1 with Idle.
type Breakdown struct {
	BusOp         float64
	BusContention float64
	CellOp        float64
	Idle          float64
}

// FLPBreakdown gives the share of served memory requests per FLP class
// (§5.6). Shares sum to 1 when any request was served.
type FLPBreakdown struct {
	Share [4]float64 // indexed by flash.FLPClass
}

// SeriesPoint is one completed I/O in arrival order, for the Figure 12
// time-series analysis.
type SeriesPoint struct {
	Index   int64
	Arrival sim.Time
	Latency sim.Time
}

// Result aggregates everything a run measures.
type Result struct {
	Scheduler string
	Workload  string

	Duration     sim.Time
	IOsCompleted int64
	BytesRead    int64
	BytesWritten int64

	// Latency is the device-level response time per I/O request (§5.2).
	Latency sim.Histogram

	// QueueFullTime is how long the device-level queue was full with the
	// host blocked behind it.
	QueueFullTime sim.Time

	// ChipUtilization is the mean fraction of time chips were busy (R/B
	// asserted) — the "contribution of busy cycles to total execution
	// cycles" of Figure 6.
	ChipUtilization float64

	// InterChipIdleness is the mean fraction of chips sitting fully idle
	// while the device had work outstanding (§5.3).
	InterChipIdleness float64

	// IntraChipIdleness is the unused die/plane share of busy chips' cell
	// time: 1 - (plane-use integral / (maxFLP · cell-active time)).
	IntraChipIdleness float64

	// MemoryLevelIdleness is the idle share of every (die, plane) resource
	// in the SSD while the device had work — the "memory-level idleness"
	// curve of Figure 1b, which grows as chips are added faster than the
	// workload can use them.
	MemoryLevelIdleness float64

	// BusyChipIntegral is ∫(busy chips)dt gated on system-busy time,
	// SysBusyTime the gate's total, and Chips the platform chip count —
	// the raw inputs behind ChipUtilization, exposed so mid-run snapshot
	// deltas can compute windowed utilization.
	BusyChipIntegral float64
	SysBusyTime      sim.Time
	Chips            int

	Exec Breakdown
	FLP  FLPBreakdown

	Transactions int64
	TxnsByClass  [4]int64
	Requests     int64
	// AvgFLPDegree is memory requests per transaction — FARO's
	// transaction-reduction lever (§5.8).
	AvgFLPDegree float64

	StaleRetranslations int64
	EmergencyGCs        int64
	GC                  ftl.Stats

	// Fault-injection outcomes: chip-level counters summed over the
	// platform plus the host-visible failed-I/O count. DegradedMode
	// mirrors the FTL's spare-exhaustion flag.
	ReadRetries       int64
	ReadUncorrectable int64
	ProgramFails      int64
	EraseFails        int64
	FailedIOs         int64
	DegradedMode      bool

	Series []SeriesPoint
}

// BandwidthKBps returns completed bytes per second in KB/s (the unit of
// Figures 10a and 17).
func (r *Result) BandwidthKBps() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.BytesRead+r.BytesWritten) / 1024 / r.Duration.Seconds()
}

// IOPS returns completed I/O requests per second.
func (r *Result) IOPS() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.IOsCompleted) / r.Duration.Seconds()
}

// AvgLatency returns the mean device-level latency.
func (r *Result) AvgLatency() sim.Time {
	return sim.Time(r.Latency.Mean())
}

// QueueStallFraction returns queue-full time over run duration.
func (r *Result) QueueStallFraction() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.QueueFullTime) / float64(r.Duration)
}

// Compute fills the chip-derived fields of r from per-chip samples.
// busyChipIntegral is ∫(number of busy chips)dt restricted to system-busy
// time sysBusy; geo supplies chip counts and the max FLP degree.
func (r *Result) Compute(geo flash.Geometry, chips []ChipSample, busyChipIntegral float64, sysBusy sim.Time) {
	n := len(chips)
	if n == 0 || r.Duration <= 0 {
		return
	}
	var busy, cell, busAct, busWait sim.Time
	var planeUse float64
	var reqsByClass [4]int64
	for _, c := range chips {
		busy += c.Busy
		cell += c.CellActive
		busAct += c.BusActive
		busWait += c.BusWait
		planeUse += c.PlaneUseIntegral
		r.Transactions += c.Txns
		r.Requests += c.Requests
		r.ReadRetries += c.ReadRetries
		r.ReadUncorrectable += c.ReadUncorrectable
		r.ProgramFails += c.ProgramFails
		r.EraseFails += c.EraseFails
		for i, v := range c.TxnsByClass {
			r.TxnsByClass[i] += v
		}
		for i, v := range c.ReqsByClass {
			reqsByClass[i] += v
		}
	}
	r.BusyChipIntegral = busyChipIntegral
	r.SysBusyTime = sysBusy
	r.Chips = n
	total := float64(r.Duration) * float64(n)
	// Utilization is the contribution of busy cycles to execution cycles
	// while the device has work (Figure 6's definition): chips sitting
	// idle during host-idle periods are not the scheduler's fault.
	if sysBusy > 0 {
		r.ChipUtilization = busyChipIntegral / (float64(n) * float64(sysBusy))
	} else {
		r.ChipUtilization = float64(busy) / total
	}
	r.Exec = Breakdown{
		BusOp:         float64(busAct) / total,
		BusContention: float64(busWait) / total,
		CellOp:        float64(cell) / total,
	}
	r.Exec.Idle = 1 - r.Exec.BusOp - r.Exec.BusContention - r.Exec.CellOp
	if sysBusy > 0 {
		r.InterChipIdleness = 1 - busyChipIntegral/(float64(n)*float64(sysBusy))
	}
	if cell > 0 {
		r.IntraChipIdleness = 1 - planeUse/(float64(geo.MaxFLP())*float64(cell))
	}
	if sysBusy > 0 {
		r.MemoryLevelIdleness = 1 - planeUse/(float64(geo.MaxFLP())*float64(n)*float64(sysBusy))
	}
	if r.Transactions > 0 {
		r.AvgFLPDegree = float64(r.Requests) / float64(r.Transactions)
	}
	// FLP share: fraction of served memory requests per class (§5.6).
	if r.Requests > 0 {
		for i, v := range reqsByClass {
			r.FLP.Share[i] = float64(v) / float64(r.Requests)
		}
	}
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s/%s: bw=%.0fKB/s iops=%.0f lat=%v util=%.1f%% inter=%.1f%% intra=%.1f%% txns=%d (deg %.2f)",
		r.Scheduler, r.Workload, r.BandwidthKBps(), r.IOPS(), r.AvgLatency(),
		100*r.ChipUtilization, 100*r.InterChipIdleness, 100*r.IntraChipIdleness,
		r.Transactions, r.AvgFLPDegree)
}

// Table formats rows of results as an aligned text table with the given
// header; render is called per result to produce its cells.
func Table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
