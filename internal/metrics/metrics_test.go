package metrics

import (
	"math"
	"strings"
	"testing"

	"sprinkler/internal/flash"
	"sprinkler/internal/sim"
)

func testGeo() flash.Geometry {
	return flash.Geometry{
		Channels: 2, ChipsPerChan: 2, DiesPerChip: 2, PlanesPerDie: 4,
		BlocksPerPlane: 64, PagesPerBlock: 16, PageSize: 2048,
	}
}

func TestResultRates(t *testing.T) {
	r := &Result{
		Duration:     sim.Second,
		IOsCompleted: 1000,
		BytesRead:    512 * 1024 * 1024,
		BytesWritten: 512 * 1024 * 1024,
	}
	if got := r.BandwidthKBps(); math.Abs(got-1024*1024) > 1 {
		t.Fatalf("bandwidth = %v KB/s, want 1 GB/s", got)
	}
	if got := r.IOPS(); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("IOPS = %v, want 1000", got)
	}
}

func TestResultZeroDuration(t *testing.T) {
	r := &Result{}
	if r.BandwidthKBps() != 0 || r.IOPS() != 0 || r.QueueStallFraction() != 0 {
		t.Fatal("zero-duration result must report zero rates")
	}
}

func TestComputeAggregatesChips(t *testing.T) {
	geo := testGeo()
	r := &Result{Duration: 1000}
	chips := []ChipSample{
		{
			Busy: 500, CellActive: 400, BusActive: 80, BusWait: 20,
			PlaneUseIntegral: 400 * 4, // 4 planes active during cell time
			Txns:             10, TxnsByClass: [4]int64{5, 2, 2, 1},
			ReqsByClass: [4]int64{5, 4, 4, 7}, Requests: 20,
		},
		{
			Busy: 300, CellActive: 200, BusActive: 50, BusWait: 50,
			PlaneUseIntegral: 200 * 2,
			Txns:             5, TxnsByClass: [4]int64{5, 0, 0, 0},
			ReqsByClass: [4]int64{5, 0, 0, 0}, Requests: 5,
		},
	}
	// System busy the whole 1000ns; busy-chip integral: 500+300.
	r.Compute(geo, chips, 800, 1000)

	if r.Transactions != 15 || r.Requests != 25 {
		t.Fatalf("txns/requests = %d/%d", r.Transactions, r.Requests)
	}
	// Utilization: 800 / (2 chips * 1000ns) = 0.4.
	if math.Abs(r.ChipUtilization-0.4) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.4", r.ChipUtilization)
	}
	if math.Abs(r.InterChipIdleness-0.6) > 1e-9 {
		t.Fatalf("inter idleness = %v, want 0.6", r.InterChipIdleness)
	}
	// Intra: plane-use 2000 over maxFLP(8) * cell(600) = 2000/4800.
	want := 1 - 2000.0/4800.0
	if math.Abs(r.IntraChipIdleness-want) > 1e-9 {
		t.Fatalf("intra idleness = %v, want %v", r.IntraChipIdleness, want)
	}
	// Exec fractions over 2 chips x 1000ns.
	if math.Abs(r.Exec.CellOp-600.0/2000) > 1e-9 {
		t.Fatalf("cell fraction = %v", r.Exec.CellOp)
	}
	sum := r.Exec.BusOp + r.Exec.BusContention + r.Exec.CellOp + r.Exec.Idle
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("exec breakdown sums to %v", sum)
	}
	// FLP shares from exact per-class requests: 10/25 NON-PAL ... etc.
	if math.Abs(r.FLP.Share[0]-10.0/25) > 1e-9 {
		t.Fatalf("NON-PAL share = %v", r.FLP.Share[0])
	}
	if math.Abs(r.FLP.Share[3]-7.0/25) > 1e-9 {
		t.Fatalf("PAL3 share = %v", r.FLP.Share[3])
	}
	if math.Abs(r.AvgFLPDegree-25.0/15) > 1e-9 {
		t.Fatalf("degree = %v", r.AvgFLPDegree)
	}
}

func TestComputeEmptyInput(t *testing.T) {
	r := &Result{Duration: 100}
	r.Compute(testGeo(), nil, 0, 0)
	if r.Transactions != 0 || r.ChipUtilization != 0 {
		t.Fatal("empty compute should leave zeros")
	}
	r2 := &Result{} // zero duration
	r2.Compute(testGeo(), []ChipSample{{}}, 0, 0)
	if r2.ChipUtilization != 0 {
		t.Fatal("zero duration compute should leave zeros")
	}
}

func TestAvgLatencyFromHistogram(t *testing.T) {
	r := &Result{}
	r.Latency.Observe(100)
	r.Latency.Observe(300)
	if got := r.AvgLatency(); got != 200 {
		t.Fatalf("avg latency = %v, want 200", got)
	}
}

func TestQueueStallFraction(t *testing.T) {
	r := &Result{Duration: 1000, QueueFullTime: 250}
	if got := r.QueueStallFraction(); math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("stall fraction = %v, want 0.25", got)
	}
}

func TestResultString(t *testing.T) {
	r := &Result{Scheduler: "SPK3", Workload: "cfs0", Duration: sim.Second}
	if s := r.String(); !strings.Contains(s, "SPK3/cfs0") {
		t.Fatalf("String() = %q", s)
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{
		{"xxxxxx", "1"},
		{"y", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
	// All rows equal width.
	for _, l := range lines[1:] {
		if len(l) > len(lines[0])+2 {
			t.Fatalf("ragged table:\n%s", out)
		}
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("missing separator:\n%s", out)
	}
}
