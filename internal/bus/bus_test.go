package bus

import (
	"testing"

	"sprinkler/internal/sim"
)

func TestBusGrantsImmediatelyWhenIdle(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 0)
	var start sim.Time = -1
	b.Acquire(100, func(s sim.Time) { start = s })
	if start != 0 {
		t.Fatalf("idle bus granted at %v, want 0", start)
	}
	if !b.Busy() {
		t.Fatal("bus should be busy after grant")
	}
	eng.Run(0)
	if b.Busy() {
		t.Fatal("bus should free itself after duration")
	}
}

func TestBusFIFOOrder(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 0)
	var starts []sim.Time
	for i := 0; i < 3; i++ {
		b.Acquire(100, func(s sim.Time) { starts = append(starts, s) })
	}
	eng.Run(0)
	want := []sim.Time{0, 100, 200}
	for i, w := range want {
		if starts[i] != w {
			t.Fatalf("grant %d at %v, want %v (all %v)", i, starts[i], w, starts)
		}
	}
	if b.Grants() != 3 {
		t.Fatalf("grants = %d, want 3", b.Grants())
	}
}

func TestBusWaitAccounting(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 0)
	b.Acquire(100, func(sim.Time) {})
	b.Acquire(50, func(sim.Time) {})
	eng.Run(0)
	if got := b.WaitTime(); got != 100 {
		t.Fatalf("wait time = %v, want 100", got)
	}
	if got := b.BusyTime(eng.Now()); got != 150 {
		t.Fatalf("busy time = %v, want 150", got)
	}
}

func TestBusQueueLen(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 0)
	b.Acquire(10, func(sim.Time) {})
	b.Acquire(10, func(sim.Time) {})
	b.Acquire(10, func(sim.Time) {})
	if b.QueueLen() != 2 {
		t.Fatalf("queue len = %d, want 2", b.QueueLen())
	}
	eng.Run(0)
	if b.QueueLen() != 0 {
		t.Fatalf("queue len after drain = %d, want 0", b.QueueLen())
	}
}

func TestBusAcquireDuringHold(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 0)
	var second sim.Time = -1
	b.Acquire(100, func(s sim.Time) {
		// While holding, another user asks at t=40.
		eng.At(40, func(sim.Time) {
			b.Acquire(10, func(s2 sim.Time) { second = s2 })
		})
	})
	eng.Run(0)
	if second != 100 {
		t.Fatalf("second grant at %v, want 100", second)
	}
	if got := b.WaitTime(); got != 60 {
		t.Fatalf("wait = %v, want 60", got)
	}
}

func TestBusZeroDuration(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 0)
	granted := false
	b.Acquire(0, func(sim.Time) { granted = true })
	eng.Run(0)
	if !granted {
		t.Fatal("zero-duration acquire never granted")
	}
	if b.Busy() {
		t.Fatal("bus stuck busy after zero-duration grant")
	}
}

func TestBusNegativeDurationPanics(t *testing.T) {
	eng := sim.NewEngine()
	b := New(eng, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("negative duration did not panic")
		}
	}()
	b.Acquire(-1, func(sim.Time) {})
}

func TestBusUtilizationUnderLoad(t *testing.T) {
	// With back-to-back grants the bus should be 100% busy.
	eng := sim.NewEngine()
	b := New(eng, 0)
	for i := 0; i < 10; i++ {
		b.Acquire(77, func(sim.Time) {})
	}
	end := eng.Run(0)
	if end != 770 {
		t.Fatalf("end = %v, want 770", end)
	}
	if got := b.BusyTime(end); got != 770 {
		t.Fatalf("busy = %v, want 770", got)
	}
}

func TestBusID(t *testing.T) {
	eng := sim.NewEngine()
	if got := New(eng, 7).ID(); got != 7 {
		t.Fatalf("ID = %d, want 7", got)
	}
}
