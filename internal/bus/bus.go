// Package bus models the shared per-channel data path of a many-chip SSD.
// All chips on a channel multiplex their command, address, data and status
// cycles onto one bus; the arbiter grants it FIFO. Bus contention is one of
// the execution-time components the paper breaks down in §5.5.
package bus

import (
	"sprinkler/internal/sim"
)

// Channel is a FIFO-arbitrated shared bus. It satisfies flash.Bus.
type Channel struct {
	eng  *sim.Engine
	id   int
	busy bool
	q    []pending
	qh   int // queue head index; popped entries leave a reusable prefix

	releaseT *sim.Timer // reusable release event (one hold at a time)

	// Accounting.
	busyTime sim.TimedCounter
	waitTime sim.Time // total time grants spent queued
	grants   int64
}

type pending struct {
	dur     sim.Time
	granted func(start sim.Time)
	asked   sim.Time
}

// New returns an idle channel bus bound to eng. The release event runs on
// the channel's lane (id+1): every event owned by one device channel shares
// that lane, so the serial kernel's same-instant order matches the
// per-channel partitioned kernel's.
func New(eng *sim.Engine, id int) *Channel {
	c := &Channel{eng: eng, id: id}
	c.releaseT = sim.NewTimer(c.release)
	c.releaseT.SetLane(int32(id) + 1)
	return c
}

// ID returns the channel index.
func (c *Channel) ID() int { return c.id }

// Reset returns the bus to its just-built idle state, retaining the wait
// queue's storage. The owning engine must have been Reset (or drained)
// first so no grant or release event is still scheduled.
func (c *Channel) Reset() {
	c.busy = false
	for i := range c.q {
		c.q[i] = pending{}
	}
	c.q = c.q[:0]
	c.qh = 0
	c.releaseT.Stop()
	c.busyTime = sim.TimedCounter{}
	c.waitTime = 0
	c.grants = 0
}

// Acquire requests the bus for dur. When granted, granted(start) runs at
// the grant instant; the bus frees itself at start+dur. Grants are FIFO in
// request order, which keeps the simulation deterministic.
func (c *Channel) Acquire(dur sim.Time, granted func(start sim.Time)) {
	if dur < 0 {
		panic("bus: negative duration")
	}
	now := c.eng.Now()
	if !c.busy && c.queueLen() == 0 {
		c.grant(now, pending{dur: dur, granted: granted, asked: now})
		return
	}
	c.q = append(c.q, pending{dur: dur, granted: granted, asked: now})
}

func (c *Channel) grant(now sim.Time, p pending) {
	c.busy = true
	c.busyTime.Set(now, true)
	c.waitTime += now - p.asked
	c.grants++
	p.granted(now)
	c.eng.AtTimer(now+p.dur, c.releaseT)
}

func (c *Channel) release(now sim.Time) {
	c.busy = false
	c.busyTime.Set(now, false)
	if c.queueLen() > 0 {
		next := c.q[c.qh]
		c.q[c.qh] = pending{}
		c.qh++
		if c.qh == len(c.q) {
			c.q = c.q[:0]
			c.qh = 0
		}
		c.grant(now, next)
	}
}

// queueLen reports how many acquisitions are waiting.
func (c *Channel) queueLen() int { return len(c.q) - c.qh }

// Busy reports whether the bus is currently held.
func (c *Channel) Busy() bool { return c.busy }

// QueueLen reports how many acquisitions are waiting.
func (c *Channel) QueueLen() int { return c.queueLen() }

// BusyTime returns the cumulative time the bus was held, through now.
func (c *Channel) BusyTime(now sim.Time) sim.Time { return c.busyTime.Total(now) }

// WaitTime returns the cumulative time acquisitions spent queued.
func (c *Channel) WaitTime() sim.Time { return c.waitTime }

// Grants returns the number of grants issued.
func (c *Channel) Grants() int64 { return c.grants }
