// Package cliutil holds the flag-parsing and config plumbing shared by the
// sprinkler commands — sprinklersim, experiments and sprinklerd — so the
// platform knobs, profiling flags and exit/cleanup discipline stay one
// implementation instead of drifting as per-command copies.
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"sprinkler"
)

// App carries a command's name and its exit-time cleanups (profile
// writers, listeners). Cleanups run exactly once, LIFO, on Close or on
// any Fail/Check exit — so an aborted run still flushes its profiles.
type App struct {
	name     string
	cleanups []func()
}

// NewApp names the command for error prefixes.
func NewApp(name string) *App { return &App{name: name} }

// Defer registers a cleanup to run at exit (normal or failed).
func (a *App) Defer(fn func()) { a.cleanups = append(a.cleanups, fn) }

// Close runs the registered cleanups (idempotent).
func (a *App) Close() {
	for i := len(a.cleanups) - 1; i >= 0; i-- {
		a.cleanups[i]()
	}
	a.cleanups = nil
}

// Check exits through Failf when err is non-nil.
func (a *App) Check(err error) {
	if err != nil {
		a.Failf("%v", err)
	}
}

// Failf prints "name: message" to stderr, runs the cleanups, and exits 1.
func (a *App) Failf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", a.name, fmt.Sprintf(format, args...))
	a.Close()
	os.Exit(1)
}

// Profiles is the -cpuprofile/-memprofile flag pair. Register the flags
// before flag.Parse, call Start after it; the profile writers are
// registered as App cleanups so they flush on every exit path.
type Profiles struct {
	app *App
	cpu string
	mem string
}

// ProfileFlags registers the profiling flags on fs.
func (a *App) ProfileFlags(fs *flag.FlagSet) *Profiles {
	p := &Profiles{app: a}
	fs.StringVar(&p.cpu, "cpuprofile", "", "write a CPU profile of the run to this file")
	fs.StringVar(&p.mem, "memprofile", "", "write an allocation profile (taken at exit) to this file")
	return p
}

// Start begins the CPU profile and arms the exit-time writers.
func (p *Profiles) Start() error {
	if p.cpu != "" {
		f, err := os.Create(p.cpu)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		p.app.Defer(func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if p.mem != "" {
		path := p.mem
		p.app.Defer(func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			runtime.GC() // settle live-heap stats before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
			f.Close()
		})
	}
	return nil
}

// Platform is the shared platform flag set: chip count, queue depth,
// scheduler and the GC-stress shaping sprinklersim introduced. Commands
// register it and derive their base Config from one implementation.
type Platform struct {
	Chips    int
	Queue    int
	Sched    string
	GCStress bool
	Parallel int

	// Fault-injection knobs (-fault-*). FaultRate sets all three
	// per-operation probabilities at once; the per-op flags override it.
	FaultRate    float64
	FaultRead    float64
	FaultProgram float64
	FaultErase   float64
	FaultRetries int
	FaultSpares  float64
	FaultSeed    uint64
}

// Register adds the platform flags to fs with the shared defaults.
func (p *Platform) Register(fs *flag.FlagSet) {
	fs.IntVar(&p.Chips, "chips", 64, "total flash chips")
	fs.IntVar(&p.Queue, "queue", 64, "device-level queue depth")
	fs.StringVar(&p.Sched, "sched", "SPK3", "scheduler: VAS, PAS, SPK1, SPK2, SPK3")
	fs.BoolVar(&p.GCStress, "gc", false, "shrink blocks and precondition to 95% full so GC runs")
	fs.IntVar(&p.Parallel, "parallel-channels", 0,
		"partition the event kernel by channel and advance it with up to this many worker threads (results stay byte-identical, GC and faults included; <2 or a single-channel platform keeps the serial kernel)")
	p.RegisterFaults(fs)
}

// RegisterFaults adds only the -fault-* flags — for commands that manage
// the rest of their platform flags themselves.
func (p *Platform) RegisterFaults(fs *flag.FlagSet) {
	fs.Float64Var(&p.FaultRate, "fault-rate", 0,
		"per-operation flash failure probability (sets read, program and erase at once; 0 disables fault injection)")
	fs.Float64Var(&p.FaultRead, "fault-read", -1, "read-sense failure probability (overrides -fault-rate)")
	fs.Float64Var(&p.FaultProgram, "fault-program", -1, "program failure probability (overrides -fault-rate)")
	fs.Float64Var(&p.FaultErase, "fault-erase", -1, "erase failure probability (overrides -fault-rate)")
	fs.IntVar(&p.FaultRetries, "fault-retries", 4, "read-retry ladder depth (also bounds program-fail rewrites)")
	fs.Float64Var(&p.FaultSpares, "fault-spares", 0,
		"fraction of each plane's blocks reserved as bad-block spares (exhaustion degrades the drive to read-only)")
	fs.Uint64Var(&p.FaultSeed, "fault-seed", 0, "base seed of the deterministic per-chip fault streams")
}

// Faults builds the fault spec the flags describe.
func (p Platform) Faults() sprinkler.FaultSpec {
	pick := func(v float64) float64 {
		if v >= 0 {
			return v
		}
		return p.FaultRate
	}
	return sprinkler.FaultSpec{
		ReadFailProb:    pick(p.FaultRead),
		ProgramFailProb: pick(p.FaultProgram),
		EraseFailProb:   pick(p.FaultErase),
		ReadRetryMax:    p.FaultRetries,
		ReadRetryMult:   2,
		RewriteMax:      p.FaultRetries,
		SpareBlockFrac:  p.FaultSpares,
		Seed:            p.FaultSeed,
	}
}

// Config builds the platform configuration the flags describe.
func (p Platform) Config() sprinkler.Config {
	cfg := sprinkler.Platform(p.Chips)
	cfg.QueueDepth = p.Queue
	cfg.Scheduler = sprinkler.SchedulerKind(p.Sched)
	cfg.ParallelChannels = p.Parallel
	cfg.Faults = p.Faults()
	if p.GCStress {
		cfg.BlocksPerPlane = 24
		cfg.PagesPerBlock = 64
		cfg.LogicalPages = cfg.TotalPages() * 85 / 100
	}
	return cfg
}

// Precondition returns the GC-stress preconditioning pass, nil unless -gc
// was set.
func (p Platform) Precondition(seed uint64) *sprinkler.Precondition {
	if !p.GCStress {
		return nil
	}
	return &sprinkler.Precondition{FillFrac: 0.95, ChurnFrac: 0.5, Seed: seed}
}

// WarmState is the shared -save-state/-load-state flag pair: write a
// device's warm state once after preconditioning, hydrate it on later
// invocations instead of re-running the warm-up.
type WarmState struct {
	SavePath string
	LoadPath string
}

// Register adds the warm-state flags to fs.
func (w *WarmState) Register(fs *flag.FlagSet) {
	fs.StringVar(&w.SavePath, "save-state", "",
		"write the device's warm state (after any preconditioning) to this file, then run as usual")
	fs.StringVar(&w.LoadPath, "load-state", "",
		"hydrate the device from this warm-state snapshot instead of preconditioning (the platform comes from the snapshot; -sched still applies)")
}

// Device builds the run's device honouring the warm-state flags. With
// -load-state the snapshot supplies the platform — only the caller's
// scheduler choice carries over — and pre is skipped, since the snapshot
// already embodies a warm-up. Otherwise a fresh device is built from cfg
// and pre applied. With -save-state the device's warm state is written
// before returning. The returned config is the one the device actually
// runs (the snapshot's under -load-state); callers must build their
// sources from it.
func (w *WarmState) Device(cfg sprinkler.Config, pre *sprinkler.Precondition) (*sprinkler.Device, sprinkler.Config, error) {
	var dev *sprinkler.Device
	if w.LoadPath != "" {
		f, err := os.Open(w.LoadPath)
		if err != nil {
			return nil, cfg, err
		}
		snap, err := sprinkler.ReadSnapshot(f)
		f.Close()
		if err != nil {
			return nil, cfg, err
		}
		run := snap.Config()
		run.Scheduler = cfg.Scheduler
		if dev, err = snap.NewDevice(run); err != nil {
			return nil, cfg, err
		}
		cfg = run
	} else {
		var err error
		if dev, err = sprinkler.New(cfg); err != nil {
			return nil, cfg, err
		}
		if pre != nil {
			dev.Precondition(pre.FillFrac, pre.ChurnFrac, pre.Seed)
		}
	}
	if w.SavePath != "" {
		f, err := os.Create(w.SavePath)
		if err != nil {
			return nil, cfg, err
		}
		err = dev.Checkpoint(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, cfg, err
		}
	}
	return dev, cfg, nil
}
