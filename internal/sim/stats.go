package sim

import (
	"fmt"
	"math"
	"sort"
)

// TimedCounter accumulates the time a boolean condition holds, e.g. "chip
// busy" or "queue full". Callers flip the condition with Set and read the
// total with Total.
type TimedCounter struct {
	on    bool
	since Time
	total Time
}

// Set records a condition transition at time now. Setting the same state
// twice is a no-op, so callers need not track edges themselves.
func (c *TimedCounter) Set(now Time, on bool) {
	if on == c.on {
		return
	}
	if c.on {
		c.total += now - c.since
	}
	c.on = on
	c.since = now
}

// On reports the current condition state.
func (c *TimedCounter) On() bool { return c.on }

// Total returns the accumulated on-time through now.
func (c *TimedCounter) Total(now Time) Time {
	t := c.total
	if c.on {
		t += now - c.since
	}
	return t
}

// WeightedSum integrates a piecewise-constant value over time, e.g. "number
// of active dies". Mean(now) gives the time-weighted average.
type WeightedSum struct {
	value float64
	since Time
	sum   float64 // ∫ value dt, in value·ns
	start Time
	began bool
}

// Set changes the integrated value at time now.
func (w *WeightedSum) Set(now Time, v float64) {
	if !w.began {
		w.began = true
		w.start = now
		w.since = now
		w.value = v
		return
	}
	w.sum += w.value * float64(now-w.since)
	w.value = v
	w.since = now
}

// Add adjusts the current value by delta at time now.
func (w *WeightedSum) Add(now Time, delta float64) { w.Set(now, w.value+delta) }

// Value returns the current instantaneous value.
func (w *WeightedSum) Value() float64 { return w.value }

// Integral returns ∫ value dt from the first Set through now.
func (w *WeightedSum) Integral(now Time) float64 {
	if !w.began {
		return 0
	}
	return w.sum + w.value*float64(now-w.since)
}

// Mean returns the time-weighted mean value from the first Set through now.
func (w *WeightedSum) Mean(now Time) float64 {
	if !w.began || now <= w.start {
		return 0
	}
	return w.Integral(now) / float64(now-w.start)
}

// Histogram is a simple scalar sample accumulator with order statistics.
// It retains all samples; simulations here produce at most a few million.
type Histogram struct {
	samples []float64
	sum     float64
	sorted  bool
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.samples = append(h.samples, v)
	h.sum += v
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Sum returns the sum of samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / float64(len(h.samples))
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	return h.samples[len(h.samples)-1]
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	return h.samples[0]
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank.
func (h *Histogram) Percentile(p float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(h.samples))))
	if rank < 1 {
		rank = 1
	}
	return h.samples[rank-1]
}

// StdDev returns the population standard deviation.
func (h *Histogram) StdDev() float64 {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	mean := h.Mean()
	var ss float64
	for _, v := range h.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.1f p99=%.1f max=%.1f",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(99), h.Max())
}
