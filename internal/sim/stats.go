package sim

import (
	"fmt"
	"math"
	"sort"
)

// TimedCounter accumulates the time a boolean condition holds, e.g. "chip
// busy" or "queue full". Callers flip the condition with Set and read the
// total with Total.
type TimedCounter struct {
	on    bool
	since Time
	total Time
}

// Set records a condition transition at time now. Setting the same state
// twice is a no-op, so callers need not track edges themselves.
func (c *TimedCounter) Set(now Time, on bool) {
	if on == c.on {
		return
	}
	if c.on {
		c.total += now - c.since
	}
	c.on = on
	c.since = now
}

// On reports the current condition state.
func (c *TimedCounter) On() bool { return c.on }

// Total returns the accumulated on-time through now.
func (c *TimedCounter) Total(now Time) Time {
	t := c.total
	if c.on {
		t += now - c.since
	}
	return t
}

// WeightedSum integrates a piecewise-constant value over time, e.g. "number
// of active dies". Mean(now) gives the time-weighted average.
type WeightedSum struct {
	value float64
	since Time
	sum   float64 // ∫ value dt, in value·ns
	start Time
	began bool
}

// Set changes the integrated value at time now.
func (w *WeightedSum) Set(now Time, v float64) {
	if !w.began {
		w.began = true
		w.start = now
		w.since = now
		w.value = v
		return
	}
	w.sum += w.value * float64(now-w.since)
	w.value = v
	w.since = now
}

// Add adjusts the current value by delta at time now.
func (w *WeightedSum) Add(now Time, delta float64) { w.Set(now, w.value+delta) }

// Value returns the current instantaneous value.
func (w *WeightedSum) Value() float64 { return w.value }

// Integral returns ∫ value dt from the first Set through now.
func (w *WeightedSum) Integral(now Time) float64 {
	if !w.began {
		return 0
	}
	return w.sum + w.value*float64(now-w.since)
}

// Mean returns the time-weighted mean value from the first Set through now.
func (w *WeightedSum) Mean(now Time) float64 {
	if !w.began || now <= w.start {
		return 0
	}
	return w.Integral(now) / float64(now-w.start)
}

// DefaultHistogramCap is the exact-sample retention limit of a Histogram
// whose cap was not set explicitly: runs up to one million samples keep
// every sample (byte-identical order statistics); longer runs switch to the
// fixed-memory bucketed estimator.
const DefaultHistogramCap = 1 << 20

// Bucketed-mode geometry: values are assigned to geometrically spaced
// buckets v ∈ [gamma^i, gamma^(i+1)) with gamma = 2^(1/64), i.e. 64
// buckets per octave — a worst-case relative quantile error of ~0.55%.
// 64 octaves starting at 1 cover [1, 2^64) — every latency a simulation
// can produce, from 1 ns through ~5 centuries in ns — so the bucket
// array is a fixed 4096 counters (32 KB) regardless of run length.
// Values below 1 clamp into bucket 0, values at or above 2^64 into the
// top bucket.
const (
	bucketsPerOctave = 64
	bucketOctaves    = 64
	numBuckets       = bucketsPerOctave * bucketOctaves
	// bucketMinExp is the exponent of octave 0's floor: octave 0 holds
	// values in [1, 2).
	bucketMinExp = 0
)

// Histogram is a scalar sample accumulator with order statistics, designed
// for arbitrarily long runs at bounded memory. Up to Cap samples (default
// DefaultHistogramCap) it retains every sample and reports exact
// nearest-rank percentiles — the mode every golden/determinism test runs
// in. Beyond the cap it spills retained samples into a fixed array of
// log-spaced buckets and reports percentile estimates with ≤0.8% relative
// error; Count, Sum, Mean, Min and Max stay exact in both modes.
//
// The zero value is ready to use.
type Histogram struct {
	samples []float64
	sum     float64
	sumsq   float64
	sorted  bool

	// cap is the exact-mode retention limit; 0 means DefaultHistogramCap.
	cap int

	// shared marks a Clone whose sample storage aliases the original's:
	// sorting must copy first so sibling clones stay isolated.
	shared bool

	// Bucketed-mode state. buckets is nil while exact; count/min/max are
	// maintained in both modes so the switch loses no exact scalar.
	buckets  []uint64
	count    int64
	min, max float64
}

// SetCap sets the exact-sample retention limit: observations beyond cap
// switch the histogram to the fixed-memory bucketed estimator. A zero cap
// selects DefaultHistogramCap; a negative cap switches to bucketed mode on
// the first observation. Must be called before the first Observe.
func (h *Histogram) SetCap(cap int) {
	if h.count != 0 {
		panic("sim: Histogram.SetCap after Observe")
	}
	h.cap = cap
}

// Reset empties the histogram for a new run with the given exact-sample
// cap (same semantics as SetCap). Sample storage is reused when no Clone
// aliases it; otherwise — snapshots taken from the previous run must stay
// frozen — fresh storage is grown lazily by the next Observes. The bucket
// array is dropped: a reset histogram starts in exact mode like a new one.
func (h *Histogram) Reset(cap int) {
	if h.shared {
		// Clones alias h.samples; truncating and re-appending in place
		// would rewrite values under them.
		h.samples = nil
		h.shared = false
	} else {
		h.samples = h.samples[:0]
	}
	h.sum, h.sumsq = 0, 0
	h.sorted = false
	h.cap = cap
	h.buckets = nil
	h.count = 0
	h.min, h.max = 0, 0
}

// effCap resolves the exact-mode retention limit.
func (h *Histogram) effCap() int {
	if h.cap == 0 {
		return DefaultHistogramCap
	}
	if h.cap < 0 {
		return 0
	}
	return h.cap
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.sumsq += v * v
	if h.buckets != nil {
		h.buckets[bucketIndex(v)]++
		return
	}
	if len(h.samples) >= h.effCap() {
		h.spill()
		h.buckets[bucketIndex(v)]++
		return
	}
	// Keep the sorted invariant when appends arrive in order: a sorted
	// histogram only becomes unsorted when a sample actually lands out of
	// order, so interleaved Observe/Percentile sequences over monotone
	// data never re-sort. len==0 counts as sorted.
	if len(h.samples) == 0 {
		h.sorted = true
	} else if h.sorted && v < h.samples[len(h.samples)-1] {
		h.sorted = false
	}
	h.samples = append(h.samples, v)
}

// spill converts to bucketed mode, folding every retained sample into the
// fixed bucket array and releasing the sample memory.
func (h *Histogram) spill() {
	h.buckets = make([]uint64, numBuckets)
	for _, v := range h.samples {
		h.buckets[bucketIndex(v)]++
	}
	h.samples = nil
	h.sorted = false
}

// Bucketed reports whether the histogram has switched to the fixed-memory
// estimator (percentiles are approximate).
func (h *Histogram) Bucketed() bool { return h.buckets != nil }

// bucketIndex maps a value to its log-spaced bucket. Non-positive values
// (latencies of zero-duration events) land in bucket 0; values beyond the
// covered range clamp to the edge buckets.
func bucketIndex(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	// Sub-octave position from the fraction: log2(2*frac) in [0, 1).
	sub := int(math.Log2(frac*2) * bucketsPerOctave)
	if sub < 0 {
		sub = 0
	} else if sub >= bucketsPerOctave {
		sub = bucketsPerOctave - 1
	}
	oct := exp - 1 - bucketMinExp // exponent of v's octave floor
	if oct < 0 {
		return 0
	}
	if oct >= bucketOctaves {
		return numBuckets - 1
	}
	return oct*bucketsPerOctave + sub
}

// bucketValue returns the representative value (geometric midpoint) of a
// bucket.
func bucketValue(i int) float64 {
	oct := i/bucketsPerOctave + bucketMinExp
	sub := i % bucketsPerOctave
	return math.Exp2(float64(oct) + (float64(sub)+0.5)/bucketsPerOctave)
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return int(h.count) }

// Sum returns the sum of samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the largest sample, or 0 with no samples. Exact in both
// modes.
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Min returns the smallest sample, or 0 with no samples. Exact in both
// modes.
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank:
// exact while the histogram retains samples, a ≤0.8%-relative-error
// estimate in bucketed mode (clamped to the exact [Min, Max]).
func (h *Histogram) Percentile(p float64) float64 {
	if h.count == 0 {
		return 0
	}
	if p <= 0 {
		return h.Min()
	}
	if p >= 100 {
		return h.Max()
	}
	rank := int64(math.Ceil(p / 100 * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if h.buckets == nil {
		h.ensureSorted()
		return h.samples[rank-1]
	}
	var cum int64
	for i, c := range h.buckets {
		cum += int64(c)
		if cum >= rank {
			v := bucketValue(i)
			// The exact extremes bound every estimate.
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// StdDev returns the population standard deviation. Exact mode computes it
// two-pass over the retained samples (numerically identical to the
// original implementation); bucketed mode uses the running sum of squares.
func (h *Histogram) StdDev() float64 {
	if h.count == 0 {
		return 0
	}
	mean := h.Mean()
	if h.buckets == nil {
		var ss float64
		for _, v := range h.samples {
			d := v - mean
			ss += d * d
		}
		return math.Sqrt(ss / float64(len(h.samples)))
	}
	varr := h.sumsq/float64(h.count) - mean*mean
	if varr < 0 {
		varr = 0
	}
	return math.Sqrt(varr)
}

func (h *Histogram) ensureSorted() {
	if h.sorted {
		return
	}
	if h.shared {
		// Clone storage aliases the live histogram (and possibly other
		// clones): sorting in place would reorder values under them.
		h.samples = append([]float64(nil), h.samples...)
		h.shared = false
	}
	sort.Float64s(h.samples)
	h.sorted = true
}

// MemFootprint returns the bytes retained for sample storage — the
// quantity the long-run soak test asserts is bounded.
func (h *Histogram) MemFootprint() int {
	return 8 * (cap(h.samples) + len(h.buckets))
}

// PreSort sorts exact-mode sample storage in place, ahead of a Clone: the
// snapshot then inherits sorted storage, so its percentile reads skip the
// copy-on-sort (the dominant result-rendering allocation — a full copy of
// the retained sample slice). No-op when already sorted or bucketed.
func (h *Histogram) PreSort() { h.ensureSorted() }

// Clone returns a snapshot that stays fixed while the original keeps
// observing. Exact-mode sample storage is shared until the clone first
// needs to sort (copy-on-sort — appends beyond the snapshot's length are
// invisible to it, and a clone's sort must not reorder values under the
// original or sibling clones); bucketed counters are copied eagerly,
// since the live histogram mutates them in place.
func (h *Histogram) Clone() Histogram {
	c := *h
	if h.buckets != nil {
		c.buckets = append([]uint64(nil), h.buckets...)
	}
	// Both sides now alias the sample storage: whichever sorts first
	// must copy. (Appending is safe — it never reorders the prefix.)
	h.shared = true
	c.shared = true
	return c
}

// Borrow returns a transient read-only snapshot that aliases the live
// sample AND bucket storage without marking the live histogram shared.
// Unlike Clone, the live histogram's next Reset reuses its grown storage
// — the point of borrowing: result rendering that flattens the snapshot
// immediately pays no storage churn on recycled devices. The borrow must
// be discarded before the histogram next observes or resets; retaining
// it would read mutated bucket counters or freed sample storage. The
// borrow itself is marked shared, so a sort on an unsorted borrow copies
// rather than reordering values under the live histogram (PreSort first
// and even that copy is skipped).
func (h *Histogram) Borrow() Histogram {
	c := *h
	c.shared = true
	return c
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%.1f p99=%.1f max=%.1f",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(99), h.Max())
}
