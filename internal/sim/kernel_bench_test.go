package sim

import "testing"

// BenchmarkScheduleFire measures the steady-state schedule+fire cycle: each
// fired event schedules its successor, so the queue stays at a constant
// depth and the slab free list is exercised every event. The target is zero
// allocations per event once the slab is warm.
func BenchmarkScheduleFire(b *testing.B) {
	e := NewEngine()
	n := 0
	var step Event
	step = func(now Time) {
		n++
		if n < b.N {
			e.After(1, step)
		}
	}
	// Keep a realistic queue depth: 64 chains interleaved.
	const chains = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < chains && i < b.N; i++ {
		e.After(Time(i+1), step)
	}
	e.Run(0)
	if n < b.N && b.N > chains {
		b.Fatalf("ran %d events, want %d", n, b.N)
	}
}

// BenchmarkTimerFire is the same steady-state cycle through the reusable
// Timer API — the hot-path pattern model components use.
func BenchmarkTimerFire(b *testing.B) {
	e := NewEngine()
	n := 0
	var t *Timer
	t = NewTimer(func(now Time) {
		n++
		if n < b.N {
			e.AfterTimer(1, t)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	e.AfterTimer(1, t)
	e.Run(0)
	if n != b.N {
		b.Fatalf("ran %d events, want %d", n, b.N)
	}
}

// BenchmarkScheduleCancel measures the schedule+cancel mix: half the
// scheduled events are cancelled before they fire, exercising the eager
// heap removal path.
func BenchmarkScheduleCancel(b *testing.B) {
	e := NewEngine()
	fn := func(Time) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := e.At(e.Now()+Time(i%100)+1, fn)
		if i%2 == 0 {
			h.Cancel()
		}
		if e.Pending() > 128 {
			e.Run(e.Fired() + 64)
		}
	}
	e.Run(0)
}
