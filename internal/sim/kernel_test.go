package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("new engine Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("new engine Pending() = %d, want 0", e.Pending())
	}
}

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []Time
	for _, at := range []Time{30, 10, 20} {
		at := at
		e.At(at, func(now Time) { order = append(order, now) })
	}
	e.Run(0)
	want := []Time{10, 20, 30}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("event %d fired at %v, want %v (order %v)", i, order[i], w, order)
		}
	}
}

func TestEngineTieBreaksByScheduleOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		e.At(100, func(Time) { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", order)
		}
	}
}

func TestEngineAfterUsesCurrentTime(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.At(50, func(now Time) {
		e.After(25, func(n Time) { fired = n })
	})
	e.Run(0)
	if fired != 75 {
		t.Fatalf("nested After fired at %v, want 75", fired)
	}
}

func TestEnginePanicsOnPastEvent(t *testing.T) {
	e := NewEngine()
	e.At(100, func(now Time) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(10, func(Time) {})
	})
	e.Run(0)
}

func TestEnginePanicsOnNegativeDelay(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	e.After(-1, func(Time) {})
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	h := e.At(10, func(Time) { fired = true })
	h.Cancel()
	e.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Drained() {
		t.Fatal("queue not drained after run")
	}
}

func TestEngineCancelIdempotent(t *testing.T) {
	e := NewEngine()
	h := e.At(10, func(Time) {})
	h.Cancel()
	h.Cancel() // must not panic
	var zero Handle
	zero.Cancel() // zero handle must not panic
	e.Run(0)
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Time(1); i <= 10; i++ {
		e.At(i, func(Time) {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run(0)
	if count != 3 {
		t.Fatalf("ran %d events after Stop, want 3", count)
	}
	// Run again resumes.
	e.Run(0)
	if count != 10 {
		t.Fatalf("resumed run executed %d total, want 10", count)
	}
}

func TestEngineBudget(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := Time(1); i <= 100; i++ {
		e.At(i, func(Time) { count++ })
	}
	e.Run(7)
	if count != 7 {
		t.Fatalf("budget run executed %d, want 7", count)
	}
	if e.Fired() != 7 {
		t.Fatalf("Fired() = %d, want 7", e.Fired())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{5, 15, 25} {
		e.At(at, func(now Time) { fired = append(fired, now) })
	}
	e.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(20) fired %d events, want 2", len(fired))
	}
	if e.Now() != 20 {
		t.Fatalf("clock after RunUntil = %v, want 20", e.Now())
	}
	e.Run(0)
	if len(fired) != 3 {
		t.Fatalf("total fired %d, want 3", len(fired))
	}
}

func TestEngineEventCascade(t *testing.T) {
	// An event chain that schedules its successor should run to completion.
	e := NewEngine()
	const depth = 1000
	n := 0
	var step func(Time)
	step = func(Time) {
		n++
		if n < depth {
			e.After(1, step)
		}
	}
	e.After(1, step)
	end := e.Run(0)
	if n != depth {
		t.Fatalf("cascade ran %d steps, want %d", n, depth)
	}
	if end != Time(depth) {
		t.Fatalf("cascade ended at %v, want %d", end, depth)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{2 * Microsecond, "2.000µs"},
		{3 * Millisecond, "3.000ms"},
		{4 * Second, "4.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

// Property: for any set of (time, id) pairs, the engine pops them in
// nondecreasing time order.
func TestEngineOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, d := range delays {
			e.At(Time(d), func(now Time) { fired = append(fired, now) })
		}
		e.Run(0)
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
