// Package sim provides the discrete-event simulation kernel used by the
// many-chip SSD model: a deterministic event queue, a simulation clock, and
// time-weighted statistics helpers.
//
// The kernel is intentionally single-threaded. All model components run as
// callbacks scheduled on one Engine, so a simulation is a pure function of
// its inputs: the same configuration and trace always produce the same
// timeline. Events scheduled for the same instant fire in (lane, schedule
// order): every event belongs to a small integer lane (default 0), lanes
// fire in ascending order within an instant, and within a lane events fire
// in the order they were scheduled (FIFO tie-breaking by sequence number).
//
// Lanes exist for the parallel per-channel device kernel: when a device is
// partitioned into per-channel sub-engines, each sub-engine owns exactly
// one lane, so the serial engine's (time, lane, seq) order restricted to a
// lane equals that sub-engine's local (time, seq) order. That makes the
// partitioned execution's timeline provably identical to the serial one —
// the serial kernel stays the reference, the parallel kernel replays it.
//
// The event queue is a slab-backed 4-ary heap of event values: scheduling
// reuses slab slots through a free list, so steady-state operation performs
// no heap allocations. Components that schedule on the hot path own
// reusable Timer structs (AtTimer/AfterTimer) whose callbacks are bound
// once at construction, eliminating per-event closure allocations too.
package sim

import (
	"fmt"
	"math"
)

// Time is a point in simulated time, in nanoseconds since simulation start.
type Time int64

// Common durations, in nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is a scheduled callback. The Engine passes the current simulation
// time when the event fires.
type Event func(now Time)

// event is one slab slot. A slot is either scheduled (pos >= 0, linked into
// the heap) or free (pos == -1, linked into the free list through next).
// gen increments every time the slot is released, invalidating outstanding
// Handles to the previous occupant.
type event struct {
	at    Time
	seq   uint64 // schedule order, breaks same-lane ties deterministically
	fn    Event
	timer *Timer // owning timer, cleared on fire/cancel; nil for At/After
	lane  int32  // same-instant ordering class; lower lanes fire first
	gen   uint32
	pos   int32 // heap index, -1 when free
	next  int32 // free-list link while free
}

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is valid and refers to nothing.
type Handle struct {
	e   *Engine
	idx int32
	gen uint32
}

// Cancel removes the event from the queue. Cancelling an already-fired or
// already-cancelled event (or the zero Handle) is a no-op.
func (h Handle) Cancel() {
	if h.e == nil {
		return
	}
	ev := &h.e.slab[h.idx]
	if ev.gen != h.gen || ev.pos < 0 {
		return
	}
	if ev.timer != nil {
		ev.timer.h = Handle{}
	}
	h.e.removeAt(ev.pos)
	h.e.release(h.idx)
}

// active reports whether the handle still refers to a scheduled event.
func (h Handle) active() bool {
	if h.e == nil {
		return false
	}
	ev := &h.e.slab[h.idx]
	return ev.gen == h.gen && ev.pos >= 0
}

// Timer is a reusable scheduling slot for components that fire the same
// callback over and over: the callback is bound once, so scheduling through
// AtTimer/AfterTimer allocates nothing. A Timer tracks at most one pending
// schedule at a time.
type Timer struct {
	fn   Event
	h    Handle
	lane int32
}

// NewTimer returns a Timer that runs fn when it fires, on lane 0.
func NewTimer(fn Event) *Timer { return &Timer{fn: fn} }

// SetLane assigns the timer's same-instant ordering lane. Components owned
// by one device channel set the channel's lane once at construction; the
// timer must not be pending.
func (t *Timer) SetLane(lane int32) {
	if t.Pending() {
		panic("sim: SetLane on a pending timer")
	}
	t.lane = lane
}

// Pending reports whether the timer is currently scheduled.
func (t *Timer) Pending() bool { return t.h.active() }

// When returns the fire time of the timer's pending schedule; ok is false
// when the timer is not pending.
func (t *Timer) When() (at Time, ok bool) {
	if !t.h.active() {
		return 0, false
	}
	return t.h.e.slab[t.h.idx].at, true
}

// Stop cancels the pending schedule, if any.
func (t *Timer) Stop() {
	t.h.Cancel()
	t.h = Handle{}
}

// Engine is the simulation event loop.
type Engine struct {
	now     Time
	seq     uint64
	slab    []event
	free    int32   // free-list head, -1 when empty
	heap    []int32 // 4-ary heap of slab indices, ordered by (at, seq)
	fired   uint64
	stopped bool

	// capT/capActive bound RunUntil below its deadline: with a cap set,
	// RunUntil executes no event later than capT and leaves the clock
	// where the last event ran instead of advancing it to the deadline.
	// The parallel device kernel caps a channel's sub-engine at the
	// instant of a staged completion whose host-side processing can
	// commit garbage-collection traffic back onto that channel, so the
	// channel parks there until the coordinator has applied the commit.
	capT      Time
	capActive bool
}

// NewEngine returns an Engine at time zero with an empty event queue.
func NewEngine() *Engine {
	return &Engine{free: -1}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are queued. Cancelled events are removed
// immediately, so every pending event is live.
func (e *Engine) Pending() int { return len(e.heap) }

// schedule allocates a slab slot and pushes it onto the heap.
func (e *Engine) schedule(at Time, fn Event, t *Timer, lane int32) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	var idx int32
	if e.free >= 0 {
		idx = e.free
		e.free = e.slab[idx].next
	} else {
		e.slab = append(e.slab, event{})
		idx = int32(len(e.slab) - 1)
	}
	ev := &e.slab[idx]
	ev.at = at
	ev.seq = e.seq
	ev.fn = fn
	ev.timer = t
	ev.lane = lane
	e.seq++
	ev.pos = int32(len(e.heap))
	e.heap = append(e.heap, idx)
	e.siftUp(int(ev.pos))
	return Handle{e: e, idx: idx, gen: ev.gen}
}

// release returns a slab slot to the free list and invalidates handles.
func (e *Engine) release(idx int32) {
	ev := &e.slab[idx]
	ev.gen++
	ev.fn = nil
	ev.timer = nil
	ev.pos = -1
	ev.next = e.free
	e.free = idx
}

// less orders heap entries by (at, lane, seq).
func (e *Engine) less(a, b int32) bool {
	ea, eb := &e.slab[a], &e.slab[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	if ea.lane != eb.lane {
		return ea.lane < eb.lane
	}
	return ea.seq < eb.seq
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	idx := h[i]
	for i > 0 {
		p := (i - 1) / 4
		if !e.less(idx, h[p]) {
			break
		}
		h[i] = h[p]
		e.slab[h[i]].pos = int32(i)
		i = p
	}
	h[i] = idx
	e.slab[idx].pos = int32(i)
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	idx := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(h[c], h[best]) {
				best = c
			}
		}
		if !e.less(h[best], idx) {
			break
		}
		h[i] = h[best]
		e.slab[h[i]].pos = int32(i)
		i = best
	}
	h[i] = idx
	e.slab[idx].pos = int32(i)
}

// removeAt deletes the heap entry at position pos, restoring heap order.
func (e *Engine) removeAt(pos int32) {
	h := e.heap
	n := len(h) - 1
	last := h[n]
	e.heap = h[:n]
	if int(pos) < n {
		h[pos] = last
		e.slab[last].pos = pos
		e.siftDown(int(pos))
		e.siftUp(int(e.slab[last].pos))
	}
}

// At schedules fn to run at absolute time at, on lane 0. Scheduling in the
// past panics: that is always a model bug, and silently clamping would
// corrupt causality.
func (e *Engine) At(at Time, fn Event) Handle {
	return e.schedule(at, fn, nil, 0)
}

// After schedules fn to run delay nanoseconds from now, on lane 0.
func (e *Engine) After(delay Time, fn Event) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.schedule(e.now+delay, fn, nil, 0)
}

// AtTimer schedules t's callback at absolute time at, on t's lane. The
// timer must not already be pending: components that reuse a timer are
// responsible for one schedule at a time, and double-scheduling is always a
// model bug.
func (e *Engine) AtTimer(at Time, t *Timer) {
	if t.Pending() {
		panic("sim: timer already pending")
	}
	t.h = e.schedule(at, t.fn, t, t.lane)
}

// AfterTimer schedules t's callback delay nanoseconds from now.
func (e *Engine) AfterTimer(delay Time, t *Timer) {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	e.AtTimer(e.now+delay, t)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// CapRun bounds subsequent RunUntil calls to events at or before t. When a
// cap is already set the earlier bound wins. Callable from within an
// executing event: the current RunUntil honours the cap for the events it
// has not yet popped, finishes any remaining events at instants <= t, and
// stops without advancing the clock past the last executed event.
func (e *Engine) CapRun(t Time) {
	if !e.capActive || t < e.capT {
		e.capT = t
	}
	e.capActive = true
}

// Uncap clears the RunUntil bound set by CapRun.
func (e *Engine) Uncap() { e.capActive = false }

// CappedAt returns the active RunUntil bound, if any.
func (e *Engine) CappedAt() (Time, bool) { return e.capT, e.capActive }

// Reset returns the engine to time zero with an empty event queue, as if
// freshly constructed — but with the slab and heap storage retained, so a
// reused engine schedules its next run without growing allocations. Every
// pending event is cancelled: outstanding Handles go stale and owning
// Timers become non-pending. The sequence counter restarts at zero, so a
// reset engine breaks same-instant ties exactly like a new one — the
// property device reuse needs for run-for-run identical timelines.
func (e *Engine) Reset() {
	for _, idx := range e.heap {
		ev := &e.slab[idx]
		if ev.timer != nil {
			ev.timer.h = Handle{}
		}
		e.release(idx)
	}
	e.heap = e.heap[:0]
	e.now, e.seq, e.fired, e.stopped = 0, 0, 0, false
	e.capT, e.capActive = 0, false
}

// pop removes and returns the earliest event's payload, releasing its slot
// before the caller runs the callback (so the callback can schedule new
// events into the freed slot, and handles to the fired event go stale).
func (e *Engine) pop() (Time, Event) {
	idx := e.heap[0]
	ev := &e.slab[idx]
	at, fn, timer := ev.at, ev.fn, ev.timer
	e.removeAt(0)
	e.release(idx)
	if timer != nil {
		timer.h = Handle{}
	}
	return at, fn
}

// Run executes events until the queue drains, the event budget is exhausted,
// or Stop is called. A budget of 0 means unlimited. It returns the time of
// the last executed event.
func (e *Engine) Run(budget uint64) Time {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		at, fn := e.pop()
		if at < e.now {
			panic("sim: event queue went backwards")
		}
		e.now = at
		e.fired++
		fn(e.now)
		if budget != 0 && e.fired >= budget {
			break
		}
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
// With a CapRun bound below the deadline, execution stops at the bound
// instead and the clock stays at the last executed event.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for len(e.heap) > 0 && !e.stopped {
		at := e.slab[e.heap[0]].at
		if at > deadline || (e.capActive && at > e.capT) {
			break
		}
		var fn Event
		at, fn = e.pop()
		e.now = at
		e.fired++
		fn(e.now)
	}
	if e.now < deadline && !e.capActive {
		e.now = deadline
	}
}

// Drained reports whether the queue holds no events.
func (e *Engine) Drained() bool { return len(e.heap) == 0 }

// NextAt peeks at the earliest pending event's timestamp without executing
// anything. ok is false when the queue is empty. The epoch loop of the
// parallel device kernel uses it to size conservative lookahead windows.
func (e *Engine) NextAt() (at Time, ok bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.slab[e.heap[0]].at, true
}

// MaxTime is the largest representable simulation time.
const MaxTime = Time(math.MaxInt64)
