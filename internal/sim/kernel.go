// Package sim provides the discrete-event simulation kernel used by the
// many-chip SSD model: a deterministic event queue, a simulation clock, and
// time-weighted statistics helpers.
//
// The kernel is intentionally single-threaded. All model components run as
// callbacks scheduled on one Engine, so a simulation is a pure function of
// its inputs: the same configuration and trace always produce the same
// timeline. Events scheduled for the same instant fire in the order they
// were scheduled (FIFO tie-breaking by sequence number).
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a point in simulated time, in nanoseconds since simulation start.
type Time int64

// Common durations, in nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// String formats the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Event is a scheduled callback. The Engine passes the current simulation
// time when the event fires.
type Event func(now Time)

// event is an internal heap entry.
type event struct {
	at   Time
	seq  uint64 // schedule order, breaks ties deterministically
	fn   Event
	dead bool // cancelled
}

// eventHeap implements heap.Interface ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Handle identifies a scheduled event so it can be cancelled.
type Handle struct{ e *event }

// Cancel marks the event dead; it will be skipped when popped. Cancelling an
// already-fired or already-cancelled event is a no-op.
func (h Handle) Cancel() {
	if h.e != nil {
		h.e.dead = true
	}
}

// Engine is the simulation event loop.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	fired   uint64
	stopped bool
}

// NewEngine returns an Engine at time zero with an empty event queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are queued (including cancelled ones not
// yet reaped).
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute time at. Scheduling in the past panics:
// that is always a model bug, and silently clamping would corrupt causality.
func (e *Engine) At(at Time, fn Event) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, e.now))
	}
	ev := &event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return Handle{ev}
}

// After schedules fn to run delay nanoseconds from now.
func (e *Engine) After(delay Time, fn Event) Handle {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains, the event budget is exhausted,
// or Stop is called. A budget of 0 means unlimited. It returns the time of
// the last executed event.
func (e *Engine) Run(budget uint64) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(*event)
		if ev.dead {
			continue
		}
		if ev.at < e.now {
			panic("sim: event queue went backwards")
		}
		e.now = ev.at
		e.fired++
		ev.fn(e.now)
		if budget != 0 && e.fired >= budget {
			break
		}
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline and then advances the
// clock to the deadline. Events scheduled beyond the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := e.events[0]
		if ev.at > deadline {
			break
		}
		heap.Pop(&e.events)
		if ev.dead {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn(e.now)
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Drained reports whether the queue holds no live events.
func (e *Engine) Drained() bool {
	for _, ev := range e.events {
		if !ev.dead {
			return false
		}
	}
	return true
}

// MaxTime is the largest representable simulation time.
const MaxTime = Time(math.MaxInt64)
