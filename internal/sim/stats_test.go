package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimedCounterBasic(t *testing.T) {
	var c TimedCounter
	c.Set(10, true)
	c.Set(30, false)
	if got := c.Total(100); got != 20 {
		t.Fatalf("Total = %v, want 20", got)
	}
}

func TestTimedCounterOpenInterval(t *testing.T) {
	var c TimedCounter
	c.Set(10, true)
	if got := c.Total(25); got != 15 {
		t.Fatalf("open-interval Total = %v, want 15", got)
	}
	// Reading Total must not close the interval.
	if got := c.Total(35); got != 25 {
		t.Fatalf("second Total = %v, want 25", got)
	}
}

func TestTimedCounterRedundantSet(t *testing.T) {
	var c TimedCounter
	c.Set(10, true)
	c.Set(15, true) // no-op
	c.Set(20, false)
	c.Set(25, false) // no-op
	if got := c.Total(100); got != 10 {
		t.Fatalf("Total = %v, want 10", got)
	}
}

func TestTimedCounterMultipleIntervals(t *testing.T) {
	var c TimedCounter
	for i := Time(0); i < 10; i++ {
		c.Set(i*10, true)
		c.Set(i*10+3, false)
	}
	if got := c.Total(200); got != 30 {
		t.Fatalf("Total = %v, want 30", got)
	}
}

func TestWeightedSumMean(t *testing.T) {
	var w WeightedSum
	w.Set(0, 2)
	w.Set(10, 4)
	w.Set(20, 0)
	// 2 for 10ns + 4 for 10ns = 60 over 40ns => 1.5
	if got := w.Mean(40); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("Mean = %v, want 1.5", got)
	}
}

func TestWeightedSumAdd(t *testing.T) {
	var w WeightedSum
	w.Set(0, 0)
	w.Add(5, 3)
	w.Add(10, -1)
	if w.Value() != 2 {
		t.Fatalf("Value = %v, want 2", w.Value())
	}
	// 0*5 + 3*5 + 2*10 = 35 over 20
	if got := w.Integral(20); math.Abs(got-35) > 1e-12 {
		t.Fatalf("Integral = %v, want 35", got)
	}
}

func TestWeightedSumBeforeFirstSet(t *testing.T) {
	var w WeightedSum
	if w.Mean(100) != 0 || w.Integral(100) != 0 {
		t.Fatal("unset WeightedSum should report zero")
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if h.Mean() != 3 {
		t.Fatalf("Mean = %v, want 3", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v, want 1/5", h.Min(), h.Max())
	}
	if got := h.Percentile(50); got != 3 {
		t.Fatalf("p50 = %v, want 3", got)
	}
	if got := h.Percentile(100); got != 5 {
		t.Fatalf("p100 = %v, want 5", got)
	}
	if got := h.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v, want 1", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 || h.Percentile(50) != 0 || h.StdDev() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramObserveAfterPercentile(t *testing.T) {
	var h Histogram
	h.Observe(10)
	_ = h.Percentile(50)
	h.Observe(1) // must re-sort
	if got := h.Min(); got != 1 {
		t.Fatalf("Min after late Observe = %v, want 1", got)
	}
}

func TestHistogramStdDev(t *testing.T) {
	var h Histogram
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Observe(v)
	}
	if got := h.StdDev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

// Regression for the sorted-flag interplay: monotone Observe streams
// interleaved with Percentile queries must never invalidate the sorted
// invariant, so no Percentile call after the first pays a re-sort. An
// out-of-order sample must still invalidate it.
func TestHistogramInterleavedObservePercentileKeepsSorted(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i))
		if p := h.Percentile(50); p < 0 {
			t.Fatal("bogus percentile")
		}
		if !h.sorted {
			t.Fatalf("sorted invariant lost after in-order sample %d", i)
		}
	}
	h.Observe(-1) // out of order: now a re-sort is genuinely required
	if h.sorted {
		t.Fatal("out-of-order sample left histogram marked sorted")
	}
	if got := h.Percentile(0); got != -1 {
		t.Fatalf("p0 = %v, want -1", got)
	}
	if got := h.Percentile(50); got != 499 {
		t.Fatalf("p50 = %v, want 499", got)
	}
	if !h.sorted {
		t.Fatal("rank percentile did not restore the sorted invariant")
	}
}

// TestHistogramSpillsAtCap pins the hybrid switch: at the cap the
// histogram converts to fixed-memory buckets, keeps exact count/sum/
// min/max, estimates percentiles within the bucket relative error, and
// stops growing.
func TestHistogramSpillsAtCap(t *testing.T) {
	var h Histogram
	h.SetCap(1000)
	rng := NewRand(3)
	var exact []float64
	for i := 0; i < 50_000; i++ {
		v := float64(100 + rng.Int63n(10_000_000))
		exact = append(exact, v)
		h.Observe(v)
	}
	if !h.Bucketed() {
		t.Fatal("histogram did not spill past its cap")
	}
	if h.Count() != len(exact) {
		t.Fatalf("Count = %d, want %d", h.Count(), len(exact))
	}
	var sum, min, max float64
	min, max = exact[0], exact[0]
	for _, v := range exact {
		sum += v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if h.Sum() != sum || h.Min() != min || h.Max() != max {
		t.Fatalf("exact scalars drifted: sum %v/%v min %v/%v max %v/%v",
			h.Sum(), sum, h.Min(), min, h.Max(), max)
	}
	sorted := append([]float64(nil), exact...)
	sort.Float64s(sorted)
	for _, p := range []float64{1, 25, 50, 90, 99, 99.9} {
		want := sorted[int(p/100*float64(len(sorted))+0.999)-1]
		got := h.Percentile(p)
		if rel := math.Abs(got-want) / want; rel > 0.01 {
			t.Fatalf("p%v = %v, exact %v (rel err %.4f > 1%%)", p, got, want, rel)
		}
	}
	if fp := h.MemFootprint(); fp > 64*1024 {
		t.Fatalf("bucketed footprint %d bytes, want <= 64 KB", fp)
	}
}

// TestHistogramBucketedRange pins the bucket coverage: multi-second
// latencies (overloaded open-loop runs routinely exceed 4.3e9 ns) must
// estimate within the error bound, not clamp at a range edge.
func TestHistogramBucketedRange(t *testing.T) {
	var h Histogram
	h.SetCap(-1)
	h.Observe(1e3)
	h.Observe(60e9) // 60 s
	h.Observe(60e9)
	if got, want := h.Percentile(99), 60e9; math.Abs(got-want)/want > 0.01 {
		t.Fatalf("p99 = %v, want ~%v (multi-second latency clamped?)", got, want)
	}
	if got := h.Percentile(1); math.Abs(got-1e3)/1e3 > 0.01 {
		t.Fatalf("p1 = %v, want ~1e3", got)
	}
	// Out-of-range values clamp to the exact extremes, not garbage.
	var lo Histogram
	lo.SetCap(-1)
	lo.Observe(0.25)
	if got := lo.Percentile(50); got != 0.25 {
		t.Fatalf("sub-unit sample p50 = %v, want clamped 0.25", got)
	}
}

// TestHistogramSiblingCloneIsolation: one clone's percentile query (which
// sorts) must not disturb another clone of the same histogram.
func TestHistogramSiblingCloneIsolation(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(float64(1000 + i)) // in order: h stays sorted
	}
	c1 := h.Clone()
	for i := 0; i < 100; i++ {
		h.Observe(1) // out of order: h becomes unsorted
	}
	c2 := h.Clone()
	if got := c2.Percentile(1); got != 1 {
		t.Fatalf("c2 p1 = %v, want 1", got)
	}
	// c2's sort must not have leaked the late 1s into c1's window.
	if got := c1.Percentile(1); got != 1000 {
		t.Fatalf("c1 p1 = %v, want 1000 (sibling clone corrupted)", got)
	}
	if got := h.Percentile(1); got != 1 {
		t.Fatalf("original p1 = %v, want 1", got)
	}
}

// TestHistogramNegativeCapStartsBucketed covers the immediate-streaming
// mode used by unbounded soak runs.
func TestHistogramNegativeCapStartsBucketed(t *testing.T) {
	var h Histogram
	h.SetCap(-1)
	h.Observe(42)
	if !h.Bucketed() {
		t.Fatal("negative cap should bucket from the first sample")
	}
	if h.Count() != 1 || h.Sum() != 42 || h.Min() != 42 || h.Max() != 42 {
		t.Fatal("scalar stats wrong in immediate bucketed mode")
	}
	if got := h.Percentile(50); math.Abs(got-42)/42 > 0.01 {
		t.Fatalf("p50 = %v, want ~42", got)
	}
}

// TestHistogramCloneIsolation: a Clone taken mid-run must not see later
// observations, in either mode.
func TestHistogramCloneIsolation(t *testing.T) {
	var h Histogram
	h.SetCap(4)
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	snap := h.Clone()
	for i := 0; i < 1000; i++ {
		h.Observe(1e9)
	}
	if snap.Count() != 10 {
		t.Fatalf("clone count %d, want 10", snap.Count())
	}
	if p := snap.Percentile(99); p > 11 {
		t.Fatalf("clone saw later samples: p99 = %v", p)
	}
}

// TestHistogramSetCapAfterObservePanics pins the misuse guard.
func TestHistogramSetCapAfterObservePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetCap after Observe must panic")
		}
	}()
	var h Histogram
	h.Observe(1)
	h.SetCap(10)
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced degenerate stream")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of range", v)
		}
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(11)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRandPanics(t *testing.T) {
	r := NewRand(1)
	for _, fn := range []func(){
		func() { r.Intn(0) },
		func() { r.Int63n(-5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on non-positive bound")
				}
			}()
			fn()
		}()
	}
}

// Property: TimedCounter total never exceeds elapsed time and is
// nonnegative, for any sequence of toggles.
func TestTimedCounterBoundsProperty(t *testing.T) {
	prop := func(toggles []bool) bool {
		var c TimedCounter
		now := Time(0)
		for _, on := range toggles {
			now += 7
			c.Set(now, on)
		}
		total := c.Total(now + 100)
		return total >= 0 && total <= now+100
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram percentiles are monotone in p.
func TestHistogramMonotoneProperty(t *testing.T) {
	prop := func(vals []float64, a, b uint8) bool {
		var h Histogram
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Observe(v)
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return h.Percentile(pa) <= h.Percentile(pb)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
