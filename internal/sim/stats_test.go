package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimedCounterBasic(t *testing.T) {
	var c TimedCounter
	c.Set(10, true)
	c.Set(30, false)
	if got := c.Total(100); got != 20 {
		t.Fatalf("Total = %v, want 20", got)
	}
}

func TestTimedCounterOpenInterval(t *testing.T) {
	var c TimedCounter
	c.Set(10, true)
	if got := c.Total(25); got != 15 {
		t.Fatalf("open-interval Total = %v, want 15", got)
	}
	// Reading Total must not close the interval.
	if got := c.Total(35); got != 25 {
		t.Fatalf("second Total = %v, want 25", got)
	}
}

func TestTimedCounterRedundantSet(t *testing.T) {
	var c TimedCounter
	c.Set(10, true)
	c.Set(15, true) // no-op
	c.Set(20, false)
	c.Set(25, false) // no-op
	if got := c.Total(100); got != 10 {
		t.Fatalf("Total = %v, want 10", got)
	}
}

func TestTimedCounterMultipleIntervals(t *testing.T) {
	var c TimedCounter
	for i := Time(0); i < 10; i++ {
		c.Set(i*10, true)
		c.Set(i*10+3, false)
	}
	if got := c.Total(200); got != 30 {
		t.Fatalf("Total = %v, want 30", got)
	}
}

func TestWeightedSumMean(t *testing.T) {
	var w WeightedSum
	w.Set(0, 2)
	w.Set(10, 4)
	w.Set(20, 0)
	// 2 for 10ns + 4 for 10ns = 60 over 40ns => 1.5
	if got := w.Mean(40); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("Mean = %v, want 1.5", got)
	}
}

func TestWeightedSumAdd(t *testing.T) {
	var w WeightedSum
	w.Set(0, 0)
	w.Add(5, 3)
	w.Add(10, -1)
	if w.Value() != 2 {
		t.Fatalf("Value = %v, want 2", w.Value())
	}
	// 0*5 + 3*5 + 2*10 = 35 over 20
	if got := w.Integral(20); math.Abs(got-35) > 1e-12 {
		t.Fatalf("Integral = %v, want 35", got)
	}
}

func TestWeightedSumBeforeFirstSet(t *testing.T) {
	var w WeightedSum
	if w.Mean(100) != 0 || w.Integral(100) != 0 {
		t.Fatal("unset WeightedSum should report zero")
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, v := range []float64{5, 1, 3, 2, 4} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if h.Mean() != 3 {
		t.Fatalf("Mean = %v, want 3", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 5 {
		t.Fatalf("Min/Max = %v/%v, want 1/5", h.Min(), h.Max())
	}
	if got := h.Percentile(50); got != 3 {
		t.Fatalf("p50 = %v, want 3", got)
	}
	if got := h.Percentile(100); got != 5 {
		t.Fatalf("p100 = %v, want 5", got)
	}
	if got := h.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v, want 1", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 || h.Percentile(50) != 0 || h.StdDev() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramObserveAfterPercentile(t *testing.T) {
	var h Histogram
	h.Observe(10)
	_ = h.Percentile(50)
	h.Observe(1) // must re-sort
	if got := h.Min(); got != 1 {
		t.Fatalf("Min after late Observe = %v, want 1", got)
	}
}

func TestHistogramStdDev(t *testing.T) {
	var h Histogram
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Observe(v)
	}
	if got := h.StdDev(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("StdDev = %v, want 2", got)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced degenerate stream")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of range", v)
		}
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(11)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRandPanics(t *testing.T) {
	r := NewRand(1)
	for _, fn := range []func(){
		func() { r.Intn(0) },
		func() { r.Int63n(-5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on non-positive bound")
				}
			}()
			fn()
		}()
	}
}

// Property: TimedCounter total never exceeds elapsed time and is
// nonnegative, for any sequence of toggles.
func TestTimedCounterBoundsProperty(t *testing.T) {
	prop := func(toggles []bool) bool {
		var c TimedCounter
		now := Time(0)
		for _, on := range toggles {
			now += 7
			c.Set(now, on)
		}
		total := c.Total(now + 100)
		return total >= 0 && total <= now+100
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram percentiles are monotone in p.
func TestHistogramMonotoneProperty(t *testing.T) {
	prop := func(vals []float64, a, b uint8) bool {
		var h Histogram
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Observe(v)
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		return h.Percentile(pa) <= h.Percentile(pb)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
