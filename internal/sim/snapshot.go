package sim

// Warm-state export/import accessors. A drained device checkpoints by
// capturing the exact internal state of its statistics and randomness
// primitives, and a restored device re-imports it verbatim, so the
// restored run continues byte-identically to one that replayed the
// warm-up. Each State type is a plain value mirror of the unexported
// fields; no invariants are re-derived on import beyond slice ownership
// (imports copy, so a decoded snapshot buffer can be reused).

// State returns the generator's raw state word.
func (r *Rand) State() uint64 { return r.state }

// SetState rewinds the generator to a previously captured state word.
func (r *Rand) SetState(s uint64) { r.state = s }

// TimedCounterState is the full state of a TimedCounter.
type TimedCounterState struct {
	On    bool
	Since Time
	Total Time
}

// State captures the counter.
func (c *TimedCounter) State() TimedCounterState {
	return TimedCounterState{On: c.on, Since: c.since, Total: c.total}
}

// SetState restores a captured counter.
func (c *TimedCounter) SetState(st TimedCounterState) {
	c.on, c.since, c.total = st.On, st.Since, st.Total
}

// WeightedSumState is the full state of a WeightedSum.
type WeightedSumState struct {
	Value float64
	Since Time
	Sum   float64
	Start Time
	Began bool
}

// State captures the integrator.
func (w *WeightedSum) State() WeightedSumState {
	return WeightedSumState{Value: w.value, Since: w.since, Sum: w.sum, Start: w.start, Began: w.began}
}

// SetState restores a captured integrator.
func (w *WeightedSum) SetState(st WeightedSumState) {
	w.value, w.since, w.sum, w.start, w.began = st.Value, st.Since, st.Sum, st.Start, st.Began
}

// HistogramState is the full state of a Histogram: exact-mode retained
// samples (in observation order is not preserved — exported storage is
// sorted first, which is observationally identical for every Histogram
// read path) or the bucketed estimator's counters, plus the exact
// scalars maintained in both modes.
type HistogramState struct {
	Samples []float64
	Sum     float64
	SumSq   float64
	Cap     int
	Buckets []uint64
	Count   int64
	Min     float64
	Max     float64
}

// ExportState captures the histogram. Exact-mode sample storage is
// sorted in place first (PreSort) so the export is canonical: two
// histograms that observed the same multiset export identical state.
// The returned slices alias the histogram's storage — callers that
// retain the state across further Observes must copy.
func (h *Histogram) ExportState() HistogramState {
	h.ensureSorted()
	return HistogramState{
		Samples: h.samples,
		Sum:     h.sum,
		SumSq:   h.sumsq,
		Cap:     h.cap,
		Buckets: h.buckets,
		Count:   h.count,
		Min:     h.min,
		Max:     h.max,
	}
}

// ImportState restores a captured histogram, copying the slices so the
// histogram owns its storage. Exact-mode samples are assumed sorted
// (ExportState guarantees it); an unsorted import would only cost a
// re-sort on the first percentile read, never a wrong answer, because
// the sorted flag is re-derived here.
func (h *Histogram) ImportState(st HistogramState) {
	h.samples = append(h.samples[:0:0], st.Samples...)
	h.sum, h.sumsq = st.Sum, st.SumSq
	h.cap = st.Cap
	h.shared = false
	h.buckets = nil
	if st.Buckets != nil {
		h.buckets = append([]uint64(nil), st.Buckets...)
	}
	h.count = st.Count
	h.min, h.max = st.Min, st.Max
	h.sorted = sortedFloat64s(h.samples)
}

func sortedFloat64s(v []float64) bool {
	for i := 1; i < len(v); i++ {
		if v[i] < v[i-1] {
			return false
		}
	}
	return true
}

// EngineClock is the persistent part of an Engine: the simulation time,
// the schedule-order sequence counter (same-instant tie-breaks), and the
// fired-event count. The event queue itself is never part of a
// checkpoint — checkpoints are taken at quiescence, when the queue is
// empty.
type EngineClock struct {
	Now   Time
	Seq   uint64
	Fired uint64
}

// Clock captures the engine's clock state.
func (e *Engine) Clock() EngineClock {
	return EngineClock{Now: e.now, Seq: e.seq, Fired: e.fired}
}

// SetClock restores a captured clock. The engine must be drained: a
// pending event scheduled under the old clock would fire out of order
// under the new one.
func (e *Engine) SetClock(c EngineClock) {
	if len(e.heap) != 0 {
		panic("sim: SetClock on an engine with pending events")
	}
	e.now, e.seq, e.fired = c.Now, c.Seq, c.Fired
}
