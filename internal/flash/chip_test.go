package flash

import (
	"testing"

	"sprinkler/internal/bus"
	"sprinkler/internal/sim"
)

func testRig() (*sim.Engine, *bus.Channel, *Chip) {
	eng := sim.NewEngine()
	ch := bus.New(eng, 0)
	g := smallGeo()
	c := NewChip(eng, ch, 0, g, DefaultTiming())
	return eng, ch, c
}

func TestChipExecutesSingleRead(t *testing.T) {
	eng, _, c := testRig()
	var doneAt sim.Time
	var reqDone []Request
	var tx Transaction
	must(t, tx.Add(c.Geo, req(0, 0, 0, 1, 2, OpRead)))
	c.Execute(&tx, Callbacks{
		RequestDone: func(now sim.Time, r Request) { reqDone = append(reqDone, r) },
		TxnDone:     func(now sim.Time, _ *Transaction) { doneAt = now },
	})
	if !c.Busy() {
		t.Fatal("chip should assert R/B during execution")
	}
	eng.Run(0)
	if c.Busy() {
		t.Fatal("chip should be idle after completion")
	}
	if len(reqDone) != 1 {
		t.Fatalf("RequestDone fired %d times, want 1", len(reqDone))
	}
	want := c.ServiceTime(&tx)
	if doneAt != want {
		t.Fatalf("transaction finished at %v, want %v (uncontended)", doneAt, want)
	}
	// Sanity: a read is dominated by cmd+tR+data-out+status.
	tim := c.Tim
	manual := tim.CommandOverhead(OpRead) + tim.ReadArray +
		tim.DataTransferTime(c.Geo.PageSize) + tim.StatusCycle
	if doneAt != manual {
		t.Fatalf("service time %v != manual %v", doneAt, manual)
	}
}

func TestChipProgramFastSlowPages(t *testing.T) {
	eng, _, c := testRig()
	var fastDone, slowDone sim.Time

	var txFast Transaction
	must(t, txFast.Add(c.Geo, req(0, 0, 0, 1, 2, OpProgram))) // even page: fast
	c.Execute(&txFast, Callbacks{TxnDone: func(now sim.Time, _ *Transaction) { fastDone = now }})
	eng.Run(0)

	var txSlow Transaction
	must(t, txSlow.Add(c.Geo, req(0, 0, 0, 1, 3, OpProgram))) // odd page: slow
	start := eng.Now()
	c.Execute(&txSlow, Callbacks{TxnDone: func(now sim.Time, _ *Transaction) { slowDone = now }})
	eng.Run(0)

	fastDur := fastDone
	slowDur := slowDone - start
	if slowDur-fastDur != c.Tim.ProgramSlow-c.Tim.ProgramFast {
		t.Fatalf("slow-fast delta = %v, want %v", slowDur-fastDur, c.Tim.ProgramSlow-c.Tim.ProgramFast)
	}
}

func TestChipDieInterleaveOverlapsCellTime(t *testing.T) {
	eng, _, c := testRig()

	// Two single-request program transactions, run back-to-back.
	run := func(txs []*Transaction) sim.Time {
		var last sim.Time
		var runNext func(i int)
		runNext = func(i int) {
			if i >= len(txs) {
				return
			}
			c.Execute(txs[i], Callbacks{TxnDone: func(now sim.Time, _ *Transaction) {
				last = now
				runNext(i + 1)
			}})
		}
		runNext(0)
		eng.Run(0)
		return last
	}

	var a, b Transaction
	must(t, a.Add(c.Geo, req(0, 0, 0, 1, 2, OpProgram)))
	must(t, b.Add(c.Geo, req(0, 1, 0, 1, 2, OpProgram)))
	serial := run([]*Transaction{&a, &b})

	// Same two requests coalesced as a die-interleaved transaction.
	eng2 := sim.NewEngine()
	ch2 := bus.New(eng2, 0)
	c2 := NewChip(eng2, ch2, 0, c.Geo, c.Tim)
	var both Transaction
	must(t, both.Add(c.Geo, req(0, 0, 0, 1, 2, OpProgram)))
	must(t, both.Add(c.Geo, req(0, 1, 0, 1, 2, OpProgram)))
	var doneAt sim.Time
	c2.Execute(&both, Callbacks{TxnDone: func(now sim.Time, _ *Transaction) { doneAt = now }})
	eng2.Run(0)

	// Interleaved must save nearly one full cell time.
	saving := serial - doneAt
	if saving < c.Tim.ProgramFast-10*sim.Microsecond {
		t.Fatalf("die interleaving saved only %v; serial=%v interleaved=%v", saving, serial, doneAt)
	}
	if got := both.Class(); got != PAL2 {
		t.Fatalf("class = %v, want PAL2", got)
	}
}

func TestChipPlaneShareSingleCellPhase(t *testing.T) {
	eng, _, c := testRig()
	var tx Transaction
	for p := 0; p < c.Geo.PlanesPerDie; p++ {
		must(t, tx.Add(c.Geo, req(0, 0, p, 5, 4, OpProgram)))
	}
	var doneAt sim.Time
	c.Execute(&tx, Callbacks{TxnDone: func(now sim.Time, _ *Transaction) { doneAt = now }})
	eng.Run(0)
	// One cell phase only: 4 bus-ins + 1 program + status.
	tim := c.Tim
	busIn := sim.Time(4) * (tim.CommandOverhead(OpProgram) + tim.DataTransferTime(c.Geo.PageSize))
	want := busIn + tim.ProgramFast + tim.StatusCycle
	if doneAt != want {
		t.Fatalf("plane-shared program finished at %v, want %v", doneAt, want)
	}
}

func TestChipBusyPanicsOnDoubleExecute(t *testing.T) {
	_, _, c := testRig()
	var tx Transaction
	must(t, tx.Add(c.Geo, req(0, 0, 0, 1, 2, OpRead)))
	c.Execute(&tx, Callbacks{})
	defer func() {
		if recover() == nil {
			t.Fatal("Execute on busy chip did not panic")
		}
	}()
	var tx2 Transaction
	must(t, tx2.Add(c.Geo, req(0, 1, 0, 1, 2, OpRead)))
	c.Execute(&tx2, Callbacks{})
}

func TestChipEmptyTransactionPanics(t *testing.T) {
	_, _, c := testRig()
	defer func() {
		if recover() == nil {
			t.Fatal("empty transaction did not panic")
		}
	}()
	c.Execute(&Transaction{}, Callbacks{})
}

func TestChipStatsAccounting(t *testing.T) {
	eng, _, c := testRig()
	var tx Transaction
	must(t, tx.Add(c.Geo, req(0, 0, 0, 1, 2, OpRead)))
	must(t, tx.Add(c.Geo, req(0, 1, 0, 3, 9, OpRead)))
	c.Execute(&tx, Callbacks{})
	end := eng.Run(0)

	st := c.Stats()
	if st.Txns != 1 || st.Requests != 2 {
		t.Fatalf("txns=%d requests=%d, want 1/2", st.Txns, st.Requests)
	}
	if st.TxnsByClass[PAL2] != 1 {
		t.Fatalf("class accounting wrong: %v", st.TxnsByClass)
	}
	if got := st.CellActive.Total(end); got != c.Tim.ReadArray {
		t.Fatalf("cell active %v, want %v", got, c.Tim.ReadArray)
	}
	busWant := 2*c.Tim.CommandOverhead(OpRead) +
		2*c.Tim.DataTransferTime(c.Geo.PageSize) + c.Tim.StatusCycle
	if got := st.BusActive.Total(end); got != busWant {
		t.Fatalf("bus active %v, want %v", got, busWant)
	}
	if st.BusWait != 0 {
		t.Fatalf("bus wait %v on an uncontended bus, want 0", st.BusWait)
	}
	if got := st.BusyAll.Total(end); got != end {
		t.Fatalf("R/B time %v, want %v (busy the whole run)", got, end)
	}
	// Plane-use integral: degree 2 for the cell phase.
	if got := st.PlaneUse.Integral(end); got != 2*float64(c.Tim.ReadArray) {
		t.Fatalf("plane-use integral %v, want %v", got, 2*float64(c.Tim.ReadArray))
	}
}

func TestTwoChipsShareBusContention(t *testing.T) {
	eng := sim.NewEngine()
	ch := bus.New(eng, 0)
	g := smallGeo()
	tim := DefaultTiming()
	c0 := NewChip(eng, ch, 0, g, tim)
	c1 := NewChip(eng, ch, 1, g, tim)

	var t0, t1 Transaction
	must(t, t0.Add(g, req(0, 0, 0, 1, 2, OpProgram)))
	must(t, t1.Add(g, req(1, 0, 0, 1, 2, OpProgram)))
	c0.Execute(&t0, Callbacks{})
	c1.Execute(&t1, Callbacks{})
	eng.Run(0)

	// Chip 1's bus-in must have waited for chip 0's bus-in to finish.
	busIn := tim.CommandOverhead(OpProgram) + tim.DataTransferTime(g.PageSize)
	if got := c1.Stats().BusWait; got != busIn {
		t.Fatalf("chip1 bus wait = %v, want %v", got, busIn)
	}
	if c0.Stats().BusWait != 0 {
		t.Fatalf("chip0 should not wait, got %v", c0.Stats().BusWait)
	}
	// But their cell phases overlap: total time well under 2x serial.
	if ch.Grants() != 4 { // 2 bus-ins + 2 status
		t.Fatalf("grants = %d, want 4", ch.Grants())
	}
}

func TestServiceTimeMatchesSimulated(t *testing.T) {
	for _, op := range []Op{OpRead, OpProgram, OpErase} {
		eng, _, c := testRig()
		var tx Transaction
		must(t, tx.Add(c.Geo, req(0, 0, 0, 2, 4, op)))
		must(t, tx.Add(c.Geo, req(0, 1, 1, 6, 8, op)))
		var doneAt sim.Time
		c.Execute(&tx, Callbacks{TxnDone: func(now sim.Time, _ *Transaction) { doneAt = now }})
		eng.Run(0)
		if doneAt != c.ServiceTime(&tx) {
			t.Errorf("%v: simulated %v != ServiceTime %v", op, doneAt, c.ServiceTime(&tx))
		}
	}
}

func TestTimingValidate(t *testing.T) {
	tim := DefaultTiming()
	if err := tim.Validate(); err != nil {
		t.Fatalf("default timing invalid: %v", err)
	}
	bad := tim
	bad.ReadArray = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted zero ReadArray")
	}
	bad = tim
	bad.ProgramSlow = tim.ProgramFast - 1
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted ProgramSlow < ProgramFast")
	}
	bad = tim
	bad.DecisionWindow = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("accepted negative DecisionWindow")
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpProgram.String() != "program" || OpErase.String() != "erase" {
		t.Fatal("op mnemonics wrong")
	}
}
