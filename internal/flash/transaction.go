package flash

import (
	"fmt"
)

// FLPClass labels the degree of flash-level parallelism a transaction
// achieves, following §5.6 of the paper.
type FLPClass int

const (
	// NonPAL: a single memory request; only system-level parallelism
	// (channel striping/pipelining) applies.
	NonPAL FLPClass = iota
	// PAL1: plane sharing only — multiple planes of one die activated by a
	// shared wordline access.
	PAL1
	// PAL2: die interleaving only — multiple dies, one plane each.
	PAL2
	// PAL3: die interleaving combined with plane sharing; the highest FLP.
	PAL3
)

// String returns the paper's label for the class.
func (c FLPClass) String() string {
	switch c {
	case NonPAL:
		return "NON-PAL"
	case PAL1:
		return "PAL1"
	case PAL2:
		return "PAL2"
	case PAL3:
		return "PAL3"
	default:
		return fmt.Sprintf("PAL(%d)", int(c))
	}
}

// Request is one page-sized flash memory request as seen by a flash
// controller: an operation at a physical address. Token carries an opaque
// caller cookie (the ssd layer stores its memory-request pointer there) so
// completions can be routed without the flash package importing upper
// layers.
type Request struct {
	Op    Op
	Addr  Addr
	Token interface{}

	// Failed is set by the chip's fault model when the operation did not
	// succeed: an uncorrectable read (retry ladder exhausted), a program
	// failure, or an erase failure. The controller routes failed
	// completions to the recovery paths (rewrite, block retirement).
	Failed bool
}

// Transaction is a set of same-kind requests to a single chip that the
// flash controller executes as one unit: one command/address/data sequence
// per member on the bus, then a single overlapped cell phase across the
// involved dies (§2.2 "a flash transaction is a series of activities...").
type Transaction struct {
	Chip     ChipID
	Op       Op
	Requests []Request
}

// Len returns the number of member requests.
func (t *Transaction) Len() int { return len(t.Requests) }

// Reset empties the transaction, retaining member capacity so a controller
// can reuse one Transaction value per chip without reallocating.
func (t *Transaction) Reset() {
	t.Chip = 0
	t.Op = 0
	t.Requests = t.Requests[:0]
}

// Class computes the FLP class from the member addresses. The pairwise
// scan is allocation-free and bounded by MaxFLP members: two members on
// different dies mean die interleaving, two members sharing a die mean
// plane sharing (CanJoin guarantees they differ in plane).
func (t *Transaction) Class() FLPClass {
	multiDie, multiPlane := false, false
	for i := 1; i < len(t.Requests); i++ {
		di := t.Requests[i].Addr.Die
		for j := 0; j < i; j++ {
			if t.Requests[j].Addr.Die != di {
				multiDie = true
			} else {
				multiPlane = true
			}
		}
	}
	switch {
	case multiDie && multiPlane:
		return PAL3
	case multiDie:
		return PAL2
	case multiPlane:
		return PAL1
	default:
		return NonPAL
	}
}

// Degree returns the number of member requests, i.e. how many page accesses
// the single cell phase serves.
func (t *Transaction) Degree() int { return len(t.Requests) }

// CoalesceError explains why a request cannot join a transaction.
type CoalesceError struct{ Reason string }

func (e *CoalesceError) Error() string { return "flash: cannot coalesce: " + e.Reason }

// Coalescing rejections are preallocated: CanJoin sits on the transaction
// builder's hot path, where constructing an error per rejected candidate
// dominated the allocation profile.
var (
	errDifferentChip = &CoalesceError{"different chip"}
	errDifferentOp   = &CoalesceError{"different op"}
	errAtMaxFLP      = &CoalesceError{"transaction already at max FLP"}
	errPlaneOccupied = &CoalesceError{"die/plane already occupied"}
	errPageMismatch  = &CoalesceError{"plane sharing requires same page offset"}
	errBlockMismatch = &CoalesceError{"plane sharing requires same block offset"}
)

// CanJoin reports whether request r may legally be added to t under the
// flash microarchitecture constraints of §2.2:
//
//   - same chip and same operation kind;
//   - at most one request per (die, plane) — a plane holds one page in its
//     data register;
//   - plane sharing (two requests on the same die) requires the same page
//     offset within the block and, for the shared-wordline access, the
//     same block index across planes (the paper: "addresses ... should
//     indicate the same page and die offset ... but different plane
//     addresses");
//   - the transaction degree cannot exceed dies × planes.
//
// Erases coalesce under the same die/plane rules (multi-plane erase needs
// matching block offsets; the page offset rule is vacuous).
func (t *Transaction) CanJoin(g Geometry, r Request) error {
	if len(t.Requests) == 0 {
		return nil
	}
	if r.Addr.Chip != t.Chip {
		return errDifferentChip
	}
	if r.Op != t.Op {
		return errDifferentOp
	}
	if len(t.Requests) >= g.MaxFLP() {
		return errAtMaxFLP
	}
	for _, m := range t.Requests {
		if m.Addr.Die == r.Addr.Die {
			if m.Addr.Plane == r.Addr.Plane {
				return errPlaneOccupied
			}
			// Plane sharing on this die: shared wordline constraints.
			if m.Addr.Page != r.Addr.Page {
				return errPageMismatch
			}
			if m.Addr.Block != r.Addr.Block {
				return errBlockMismatch
			}
		}
	}
	return nil
}

// Add appends r after validating it with CanJoin. The first request fixes
// the chip and operation kind.
func (t *Transaction) Add(g Geometry, r Request) error {
	if len(t.Requests) == 0 {
		t.Chip = r.Addr.Chip
		t.Op = r.Op
		t.Requests = append(t.Requests[:0], r)
		return nil
	}
	if err := t.CanJoin(g, r); err != nil {
		return err
	}
	t.Requests = append(t.Requests, r)
	return nil
}

// String renders a compact diagnostic description.
func (t *Transaction) String() string {
	return fmt.Sprintf("txn{chip=%d op=%v n=%d class=%v}", t.Chip, t.Op, t.Len(), t.Class())
}

// BuildTransaction greedily coalesces as many of the pending requests as
// legally possible into one transaction, starting from pending[0] (the
// highest-priority request as ordered by the scheduler). It returns the
// transaction and the indices of pending that were consumed.
//
// The greedy order respects the committed order: the flash controller scans
// the per-chip queue once and takes every request that still fits. This is
// exactly the opportunity window FARO widens by over-committing.
func BuildTransaction(g Geometry, pending []Request) (*Transaction, []int) {
	if len(pending) == 0 {
		return nil, nil
	}
	t := &Transaction{}
	return t, BuildTransactionInto(g, pending, t, nil)
}

// BuildTransactionInto is BuildTransaction with caller-owned storage: t is
// reset and filled in place, and the consumed indices are appended to taken
// (reusing its capacity). Controllers on the hot path use this to build
// every transaction without allocating.
func BuildTransactionInto(g Geometry, pending []Request, t *Transaction, taken []int) []int {
	t.Reset()
	if len(pending) == 0 {
		return taken[:0]
	}
	taken = taken[:0]
	for i, r := range pending {
		if err := t.Add(g, r); err == nil {
			taken = append(taken, i)
			if t.Len() >= g.MaxFLP() {
				break
			}
		} else if i == 0 {
			// First request must always be accepted; Add only fails for
			// non-empty transactions, so this cannot happen.
			panic("flash: BuildTransaction failed to seed transaction")
		}
	}
	return taken
}
