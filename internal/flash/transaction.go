package flash

import (
	"fmt"
	"sort"
)

// FLPClass labels the degree of flash-level parallelism a transaction
// achieves, following §5.6 of the paper.
type FLPClass int

const (
	// NonPAL: a single memory request; only system-level parallelism
	// (channel striping/pipelining) applies.
	NonPAL FLPClass = iota
	// PAL1: plane sharing only — multiple planes of one die activated by a
	// shared wordline access.
	PAL1
	// PAL2: die interleaving only — multiple dies, one plane each.
	PAL2
	// PAL3: die interleaving combined with plane sharing; the highest FLP.
	PAL3
)

// String returns the paper's label for the class.
func (c FLPClass) String() string {
	switch c {
	case NonPAL:
		return "NON-PAL"
	case PAL1:
		return "PAL1"
	case PAL2:
		return "PAL2"
	case PAL3:
		return "PAL3"
	default:
		return fmt.Sprintf("PAL(%d)", int(c))
	}
}

// Request is one page-sized flash memory request as seen by a flash
// controller: an operation at a physical address. Token carries an opaque
// caller cookie (the ssd layer stores its memory-request pointer there) so
// completions can be routed without the flash package importing upper
// layers.
type Request struct {
	Op    Op
	Addr  Addr
	Token interface{}
}

// Transaction is a set of same-kind requests to a single chip that the
// flash controller executes as one unit: one command/address/data sequence
// per member on the bus, then a single overlapped cell phase across the
// involved dies (§2.2 "a flash transaction is a series of activities...").
type Transaction struct {
	Chip     ChipID
	Op       Op
	Requests []Request
}

// Len returns the number of member requests.
func (t *Transaction) Len() int { return len(t.Requests) }

// Dies returns the sorted distinct die indices the transaction touches.
func (t *Transaction) Dies() []int {
	seen := map[int]bool{}
	for _, r := range t.Requests {
		seen[r.Addr.Die] = true
	}
	dies := make([]int, 0, len(seen))
	for d := range seen {
		dies = append(dies, d)
	}
	sort.Ints(dies)
	return dies
}

// planesOf returns the distinct planes used on die d.
func (t *Transaction) planesOf(d int) int {
	seen := map[int]bool{}
	for _, r := range t.Requests {
		if r.Addr.Die == d {
			seen[r.Addr.Plane] = true
		}
	}
	return len(seen)
}

// Class computes the FLP class from the member addresses.
func (t *Transaction) Class() FLPClass {
	dies := t.Dies()
	multiPlane := false
	for _, d := range dies {
		if t.planesOf(d) > 1 {
			multiPlane = true
			break
		}
	}
	switch {
	case len(dies) > 1 && multiPlane:
		return PAL3
	case len(dies) > 1:
		return PAL2
	case multiPlane:
		return PAL1
	default:
		return NonPAL
	}
}

// Degree returns the number of member requests, i.e. how many page accesses
// the single cell phase serves.
func (t *Transaction) Degree() int { return len(t.Requests) }

// CoalesceError explains why a request cannot join a transaction.
type CoalesceError struct{ Reason string }

func (e *CoalesceError) Error() string { return "flash: cannot coalesce: " + e.Reason }

// CanJoin reports whether request r may legally be added to t under the
// flash microarchitecture constraints of §2.2:
//
//   - same chip and same operation kind;
//   - at most one request per (die, plane) — a plane holds one page in its
//     data register;
//   - plane sharing (two requests on the same die) requires the same page
//     offset within the block and, for the shared-wordline access, the
//     same block index across planes (the paper: "addresses ... should
//     indicate the same page and die offset ... but different plane
//     addresses");
//   - the transaction degree cannot exceed dies × planes.
//
// Erases coalesce under the same die/plane rules (multi-plane erase needs
// matching block offsets; the page offset rule is vacuous).
func (t *Transaction) CanJoin(g Geometry, r Request) error {
	if len(t.Requests) == 0 {
		return nil
	}
	if r.Addr.Chip != t.Chip {
		return &CoalesceError{"different chip"}
	}
	if r.Op != t.Op {
		return &CoalesceError{fmt.Sprintf("op %v != transaction op %v", r.Op, t.Op)}
	}
	if len(t.Requests) >= g.MaxFLP() {
		return &CoalesceError{"transaction already at max FLP"}
	}
	for _, m := range t.Requests {
		if m.Addr.Die == r.Addr.Die && m.Addr.Plane == r.Addr.Plane {
			return &CoalesceError{"die/plane already occupied"}
		}
		if m.Addr.Die == r.Addr.Die {
			// Plane sharing on this die: shared wordline constraints.
			if m.Addr.Page != r.Addr.Page {
				return &CoalesceError{"plane sharing requires same page offset"}
			}
			if m.Addr.Block != r.Addr.Block {
				return &CoalesceError{"plane sharing requires same block offset"}
			}
		}
	}
	return nil
}

// Add appends r after validating it with CanJoin. The first request fixes
// the chip and operation kind.
func (t *Transaction) Add(g Geometry, r Request) error {
	if len(t.Requests) == 0 {
		t.Chip = r.Addr.Chip
		t.Op = r.Op
		t.Requests = []Request{r}
		return nil
	}
	if err := t.CanJoin(g, r); err != nil {
		return err
	}
	t.Requests = append(t.Requests, r)
	return nil
}

// String renders a compact diagnostic description.
func (t *Transaction) String() string {
	return fmt.Sprintf("txn{chip=%d op=%v n=%d class=%v}", t.Chip, t.Op, t.Len(), t.Class())
}

// BuildTransaction greedily coalesces as many of the pending requests as
// legally possible into one transaction, starting from pending[0] (the
// highest-priority request as ordered by the scheduler). It returns the
// transaction and the indices of pending that were consumed.
//
// The greedy order respects the committed order: the flash controller scans
// the per-chip queue once and takes every request that still fits. This is
// exactly the opportunity window FARO widens by over-committing.
func BuildTransaction(g Geometry, pending []Request) (*Transaction, []int) {
	if len(pending) == 0 {
		return nil, nil
	}
	t := &Transaction{}
	var taken []int
	for i, r := range pending {
		if err := t.Add(g, r); err == nil {
			taken = append(taken, i)
			if t.Len() >= g.MaxFLP() {
				break
			}
		} else if i == 0 {
			// First request must always be accepted; Add only fails for
			// non-empty transactions, so this cannot happen.
			panic("flash: BuildTransaction failed to seed transaction")
		}
	}
	return t, taken
}
