package flash

import "sprinkler/internal/sim"

// FaultConfig parameterizes the deterministic fault model a chip applies to
// its own operations. All outcomes are drawn from a per-chip RNG stream in
// chip-local transaction order, or (for outages) computed as a pure function
// of simulated time — never from shared state — so a run's fault pattern is
// identical whichever kernel (serial or per-channel parallel) drains the
// event population, and identical again after a Reset/arena reuse.
//
// The zero value disables the model entirely: no RNG stream is created and
// no draws are made, so a zero-config run is byte-identical to a build
// without the fault model.
type FaultConfig struct {
	// ReadFailProb is the per-member probability that one array sense
	// fails ECC and must be retried. Each retry re-draws independently.
	ReadFailProb float64
	// ProgramFailProb is the per-member probability that a program
	// operation reports failure at cell-phase end.
	ProgramFailProb float64
	// EraseFailProb is the per-member probability that a block erase
	// reports failure (the block should then be retired by the FTL).
	EraseFailProb float64

	// ReadRetryMax bounds the read-retry ladder: after this many re-senses
	// a still-failing member is delivered as uncorrectable (Failed set).
	ReadRetryMax int
	// ReadRetryMult scales the escalating retry sense time: retry r costs
	// r*ReadRetryMult times the base cell time (calibrated read retries
	// are slower than the nominal tR). Values < 1 are treated as 1.
	ReadRetryMult int

	// OutagePeriod/OutageDur define per-die transient outage windows: each
	// die is unavailable for OutageDur out of every OutagePeriod, at a
	// per-die phase derived from the seed. A cell phase that would start
	// inside a die's outage window is delayed until the window closes.
	// Zero period or duration disables outages.
	OutagePeriod sim.Time
	OutageDur    sim.Time

	// Seed is the base seed; each chip derives its own stream from it.
	Seed uint64
}

// Enabled reports whether any fault mechanism is active.
func (fc FaultConfig) Enabled() bool {
	return fc.ReadFailProb > 0 || fc.ProgramFailProb > 0 || fc.EraseFailProb > 0 ||
		(fc.OutagePeriod > 0 && fc.OutageDur > 0)
}

// mix64 is the splitmix64 finalizer: a bijective avalanche over 64 bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// chipFaultSeed derives chip's RNG stream seed from the base seed. Streams
// are keyed by chip identity, not by draw order across chips, which is what
// keeps the fault pattern independent of event drain order.
func chipFaultSeed(base uint64, chip ChipID) uint64 {
	return mix64(base + 0x9E3779B97F4A7C15*(uint64(chip)+1))
}

// dieOutagePhase derives the (chip, die) outage window offset in [0, period).
func dieOutagePhase(base uint64, chip ChipID, die int, period sim.Time) sim.Time {
	h := mix64(chipFaultSeed(base, chip) ^ (0xD6E8FEB86659FD93 * uint64(die+1)))
	return sim.Time(h % uint64(period))
}
