// Package flash models NAND flash memory at the microarchitecture level:
// chip/die/plane/block/page geometry, physical addresses, the ONFI-style
// operation set with its timing sequences, flash transactions with their
// flash-level-parallelism (FLP) classes, and a per-chip state machine that
// executes transactions on a shared channel bus.
//
// The model follows §2.2 and §5.1 of the Sprinkler paper (Jung & Kandemir,
// HPCA 2014): each chip exposes several dies behind one multiplexed
// interface and a chip-enable; dies operate independently (die
// interleaving); planes within a die share the wordline drivers and can be
// activated together only for same-page-offset accesses (plane sharing).
package flash

import "fmt"

// Geometry describes the physical layout of the flash array in an SSD.
// The zero value is not useful; use DefaultGeometry or fill every field.
type Geometry struct {
	Channels       int // independent I/O channels
	ChipsPerChan   int // chips (targets) per channel, sharing the bus
	DiesPerChip    int // independently operating dies behind one interface
	PlanesPerDie   int // planes sharing a die's wordline drivers
	BlocksPerPlane int // erase blocks per plane
	PagesPerBlock  int // program/read pages per block
	PageSize       int // bytes per page, the atomic flash I/O unit
}

// DefaultGeometry mirrors the configuration in §5.1 of the paper: 2 dies per
// chip, 4 planes per die, 8192 blocks per die (2048 per plane), 128 pages
// per block, 2 KB pages. Channel/chip counts default to the smallest
// platform evaluated (8 channels × 8 chips = 64 chips).
func DefaultGeometry() Geometry {
	return Geometry{
		Channels:       8,
		ChipsPerChan:   8,
		DiesPerChip:    2,
		PlanesPerDie:   4,
		BlocksPerPlane: 2048,
		PagesPerBlock:  128,
		PageSize:       2048,
	}
}

// Validate reports an error when any dimension is non-positive.
func (g Geometry) Validate() error {
	type dim struct {
		name string
		v    int
	}
	for _, d := range []dim{
		{"Channels", g.Channels},
		{"ChipsPerChan", g.ChipsPerChan},
		{"DiesPerChip", g.DiesPerChip},
		{"PlanesPerDie", g.PlanesPerDie},
		{"BlocksPerPlane", g.BlocksPerPlane},
		{"PagesPerBlock", g.PagesPerBlock},
		{"PageSize", g.PageSize},
	} {
		if d.v <= 0 {
			return fmt.Errorf("flash: geometry %s = %d, must be positive", d.name, d.v)
		}
	}
	return nil
}

// NumChips returns the total number of flash chips.
func (g Geometry) NumChips() int { return g.Channels * g.ChipsPerChan }

// NumDies returns the total number of flash dies in the SSD.
func (g Geometry) NumDies() int { return g.NumChips() * g.DiesPerChip }

// PagesPerPlane returns pages in one plane.
func (g Geometry) PagesPerPlane() int { return g.BlocksPerPlane * g.PagesPerBlock }

// PagesPerDie returns pages in one die.
func (g Geometry) PagesPerDie() int { return g.PlanesPerDie * g.PagesPerPlane() }

// PagesPerChip returns pages in one chip.
func (g Geometry) PagesPerChip() int { return g.DiesPerChip * g.PagesPerDie() }

// TotalPages returns the number of physical pages in the SSD.
func (g Geometry) TotalPages() int64 {
	return int64(g.NumChips()) * int64(g.PagesPerChip())
}

// TotalBytes returns the raw capacity in bytes.
func (g Geometry) TotalBytes() int64 { return g.TotalPages() * int64(g.PageSize) }

// MaxFLP returns the maximum flash-level parallelism degree of one chip:
// dies × planes memory requests can be served by a single transaction.
func (g Geometry) MaxFLP() int { return g.DiesPerChip * g.PlanesPerDie }

// ChipID identifies a chip globally. Chips are numbered channel-major:
// chip = channel*ChipsPerChan + offsetWithinChannel.
type ChipID int

// Channel returns the channel index of chip c.
func (g Geometry) Channel(c ChipID) int { return int(c) / g.ChipsPerChan }

// ChipOffset returns c's position within its channel (the "chip offset"
// used by RIOS's traversal order).
func (g Geometry) ChipOffset(c ChipID) int { return int(c) % g.ChipsPerChan }

// ChipAt returns the ChipID at (channel, offset).
func (g Geometry) ChipAt(channel, offset int) ChipID {
	return ChipID(channel*g.ChipsPerChan + offset)
}

// Addr is a fully resolved physical flash address.
type Addr struct {
	Chip  ChipID
	Die   int
	Plane int
	Block int // block index within the plane
	Page  int // page index within the block
}

// String renders the address in a compact diagnostic form.
func (a Addr) String() string {
	return fmt.Sprintf("c%d/d%d/p%d/b%d/pg%d", a.Chip, a.Die, a.Plane, a.Block, a.Page)
}

// Valid reports whether a lies inside geometry g.
func (g Geometry) ValidAddr(a Addr) bool {
	return a.Chip >= 0 && int(a.Chip) < g.NumChips() &&
		a.Die >= 0 && a.Die < g.DiesPerChip &&
		a.Plane >= 0 && a.Plane < g.PlanesPerDie &&
		a.Block >= 0 && a.Block < g.BlocksPerPlane &&
		a.Page >= 0 && a.Page < g.PagesPerBlock
}

// PPN (physical page number) linearizes an Addr. The encoding is
// chip-major, then die, plane, block, page, matching the geometry loops
// used throughout the simulator.
type PPN int64

// ToPPN linearizes a.
func (g Geometry) ToPPN(a Addr) PPN {
	n := int64(a.Chip)
	n = n*int64(g.DiesPerChip) + int64(a.Die)
	n = n*int64(g.PlanesPerDie) + int64(a.Plane)
	n = n*int64(g.BlocksPerPlane) + int64(a.Block)
	n = n*int64(g.PagesPerBlock) + int64(a.Page)
	return PPN(n)
}

// FromPPN recovers the Addr encoded in p.
func (g Geometry) FromPPN(p PPN) Addr {
	n := int64(p)
	var a Addr
	a.Page = int(n % int64(g.PagesPerBlock))
	n /= int64(g.PagesPerBlock)
	a.Block = int(n % int64(g.BlocksPerPlane))
	n /= int64(g.BlocksPerPlane)
	a.Plane = int(n % int64(g.PlanesPerDie))
	n /= int64(g.PlanesPerDie)
	a.Die = int(n % int64(g.DiesPerChip))
	n /= int64(g.DiesPerChip)
	a.Chip = ChipID(n)
	return a
}
