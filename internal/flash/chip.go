package flash

import (
	"fmt"

	"sprinkler/internal/sim"
)

// Bus abstracts the shared channel data path a chip hangs off. The concrete
// implementation lives in internal/bus; the indirection keeps this package
// dependent only on the sim kernel.
type Bus interface {
	// Acquire requests the bus for dur and calls granted at the grant
	// instant. The bus frees itself dur later.
	Acquire(dur sim.Time, granted func(start sim.Time))
}

// Callbacks receives transaction progress notifications from a chip.
type Callbacks struct {
	// RequestDone fires when one member request's payload is fully served
	// (for reads: data streamed out; for programs/erases: cell phase done).
	RequestDone func(now sim.Time, r Request)
	// TxnDone fires after the whole transaction retires and the chip has
	// dropped R/B. The chip is ready for the next transaction.
	TxnDone func(now sim.Time, t *Transaction)
}

// ChipStats aggregates per-chip occupancy accounting used by the metrics
// layer: cell-active time, bus-active time, bus-wait (contention) time, and
// the plane-use integral for intra-chip idleness.
type ChipStats struct {
	CellActive  sim.TimedCounter
	BusActive   sim.TimedCounter
	BusWait     sim.Time
	PlaneUse    sim.WeightedSum // active (die,plane) pairs during cell phases
	Txns        int64
	TxnsByClass [4]int64 // indexed by FLPClass
	ReqsByClass [4]int64 // member requests served per FLPClass
	Requests    int64
	BusyAll     sim.TimedCounter // R/B asserted (any phase)

	// Fault-model outcomes (all zero when the fault model is disabled).
	ReadRetries       int64 // extra sense operations from the retry ladder
	ReadUncorrectable int64 // members delivered Failed after ladder exhaustion
	ProgramFails      int64 // members whose program reported failure
	EraseFails        int64 // members whose erase reported failure
}

// Chip models one NAND flash target: several dies behind a single
// multiplexed interface with one R/B line. A chip executes one transaction
// at a time; while R/B is asserted nothing else may be submitted (§2.2).
//
// The execution sequence mirrors the ONFI command flow:
//
//	program: per member [cmd+addr+data-in] on the bus, then one overlapped
//	         cell phase (dies in parallel, planes shared), then status;
//	read:    per member [cmd+addr] on the bus, then the cell phase, then
//	         per member [data-out], then status;
//	erase:   per member [cmd+addr], cell phase, status.
//
// Because a chip runs exactly one transaction (and holds at most one
// pending bus acquisition) at a time, the phase walk is a state machine
// over fields of the Chip itself, driven by reusable timers and bus-grant
// callbacks bound once at construction — executing a transaction performs
// no heap allocations.
type Chip struct {
	ID    ChipID
	Geo   Geometry
	Tim   Timing
	eng   *sim.Engine
	bus   Bus
	busy  bool
	stats ChipStats

	// Fault model. frng is nil when the model is disabled; retryRung and
	// retryMask track the in-flight read-retry ladder (mask bit i = member
	// i still failing ECC; transactions are bounded by MaxFLP, far below
	// the 64-member mask capacity).
	faults    FaultConfig
	frng      *sim.Rand
	retryRung int
	retryMask uint64

	// In-flight transaction state.
	t     *Transaction
	cb    Callbacks
	idx   int      // member index in the submit/read-out phase
	dur   sim.Time // duration of the pending bus hold
	asked sim.Time // when the pending bus hold was requested

	// Preallocated continuations.
	grantedSubmit func(start sim.Time)
	grantedRead   func(start sim.Time)
	grantedStatus func(start sim.Time)
	submitEnd     *sim.Timer
	cellEnd       *sim.Timer
	readEnd       *sim.Timer
	statusEnd     *sim.Timer
}

// NewChip returns an idle chip bound to eng and bus. All of the chip's
// events run on its channel's lane (channel index + 1), matching the bus it
// hangs off: a channel's whole event population shares one lane, which is
// what lets the parallel device kernel give each channel its own engine
// while reproducing the serial timeline exactly.
func NewChip(eng *sim.Engine, bus Bus, id ChipID, g Geometry, t Timing) *Chip {
	c := &Chip{ID: id, Geo: g, Tim: t, eng: eng, bus: bus}
	lane := int32(g.Channel(id)) + 1
	c.grantedSubmit = func(start sim.Time) {
		c.stats.BusWait += start - c.asked
		c.stats.BusActive.Set(start, true)
		c.eng.AtTimer(start+c.dur, c.submitEnd)
	}
	c.submitEnd = sim.NewTimer(func(now sim.Time) {
		c.stats.BusActive.Set(now, false)
		c.submitPhase(now, c.idx+1)
	})
	c.cellEnd = sim.NewTimer(func(end sim.Time) {
		c.stats.CellActive.Set(end, false)
		c.stats.PlaneUse.Set(end, 0)
		if c.t.Op == OpRead {
			if c.maybeRetryRead(end) {
				return
			}
			c.readOutPhase(end, 0)
			return
		}
		// Programs and erases complete at cell end.
		c.applyWriteFaults()
		for _, r := range c.t.Requests {
			if c.cb.RequestDone != nil {
				c.cb.RequestDone(end, r)
			}
		}
		c.statusPhase(end)
	})
	c.grantedRead = func(start sim.Time) {
		c.stats.BusWait += start - c.asked
		c.stats.BusActive.Set(start, true)
		c.eng.AtTimer(start+c.dur, c.readEnd)
	}
	c.readEnd = sim.NewTimer(func(now sim.Time) {
		c.stats.BusActive.Set(now, false)
		if c.cb.RequestDone != nil {
			c.cb.RequestDone(now, c.t.Requests[c.idx])
		}
		c.readOutPhase(now, c.idx+1)
	})
	c.grantedStatus = func(start sim.Time) {
		c.stats.BusWait += start - c.asked
		c.stats.BusActive.Set(start, true)
		c.eng.AtTimer(start+c.dur, c.statusEnd)
	}
	c.statusEnd = sim.NewTimer(func(now sim.Time) {
		c.stats.BusActive.Set(now, false)
		c.busy = false
		c.stats.BusyAll.Set(now, false)
		t, cb := c.t, c.cb
		c.t, c.cb = nil, Callbacks{}
		if cb.TxnDone != nil {
			cb.TxnDone(now, t)
		}
	})
	c.submitEnd.SetLane(lane)
	c.cellEnd.SetLane(lane)
	c.readEnd.SetLane(lane)
	c.statusEnd.SetLane(lane)
	return c
}

// Reset returns the chip to its just-built idle state for a new run,
// dropping the in-flight transaction reference and zeroing the stats. The
// timing may change between runs (it is per-run configuration, not
// topology); the engine and bus bindings are topology and stay. The owning
// engine must have been Reset (or drained) first.
func (c *Chip) Reset(t Timing) {
	c.Tim = t
	c.busy = false
	c.stats = ChipStats{}
	c.t = nil
	c.cb = Callbacks{}
	c.idx = 0
	c.dur, c.asked = 0, 0
	c.retryRung, c.retryMask = 0, 0
	c.submitEnd.Stop()
	c.cellEnd.Stop()
	c.readEnd.Stop()
	c.statusEnd.Stop()
}

// SetFaults installs (or, with a disabled config, removes) the fault model
// and reseeds the chip's deterministic fault stream. Called at construction
// and again after Reset so an arena-reused chip replays the exact fault
// pattern of a freshly built one.
func (c *Chip) SetFaults(fc FaultConfig) {
	c.faults = fc
	c.retryRung, c.retryMask = 0, 0
	if !fc.Enabled() {
		c.frng = nil
		return
	}
	seed := chipFaultSeed(fc.Seed, c.ID)
	if c.frng == nil {
		c.frng = sim.NewRand(seed)
	} else {
		c.frng.Reseed(seed)
	}
}

// Busy reports the R/B state: true while a transaction is in flight.
func (c *Chip) Busy() bool { return c.busy }

// FaultRNGState captures the chip's fault-stream generator state; ok is
// false when the fault model is disabled (no generator exists). Part of
// the warm-state checkpoint: the stream's position encodes how many
// fault draws the warm-up consumed.
func (c *Chip) FaultRNGState() (state uint64, ok bool) {
	if c.frng == nil {
		return 0, false
	}
	return c.frng.State(), true
}

// SetFaultRNGState restores a captured fault-stream position. SetFaults
// must have installed the fault model first (it owns the generator's
// existence and seeding); restoring onto a chip without a generator is a
// checkpoint/config mismatch and panics.
func (c *Chip) SetFaultRNGState(state uint64) {
	if c.frng == nil {
		panic("flash: SetFaultRNGState without a fault model")
	}
	c.frng.SetState(state)
}

// Stats exposes the accounting counters (read-only use by metrics).
func (c *Chip) Stats() *ChipStats { return &c.stats }

// busInDur is the bus occupancy of submitting one member request.
func (c *Chip) busInDur(r Request) sim.Time {
	d := c.Tim.CommandOverhead(r.Op)
	if r.Op == OpProgram {
		d += c.Tim.DataTransferTime(c.Geo.PageSize)
	}
	return d
}

// cellDur is the overlapped cell-phase duration of t: dies operate in
// parallel and planes within a die share one array operation, so the phase
// lasts as long as the slowest member request.
func (c *Chip) cellDur(t *Transaction) sim.Time {
	var max sim.Time
	for _, r := range t.Requests {
		if ct := c.Tim.CellTime(r.Op, r.Addr); ct > max {
			max = ct
		}
	}
	return max
}

// Execute runs transaction t to completion and reports progress through cb.
// It panics if the chip is already busy — submitting to a busy chip is a
// controller bug, the R/B line makes that state visible in hardware.
func (c *Chip) Execute(t *Transaction, cb Callbacks) {
	if c.busy {
		panic(fmt.Sprintf("flash: chip %d busy, cannot execute %v", c.ID, t))
	}
	if t.Len() == 0 {
		panic("flash: empty transaction")
	}
	now := c.eng.Now()
	c.busy = true
	c.stats.BusyAll.Set(now, true)
	c.stats.Txns++
	cls := t.Class()
	c.stats.TxnsByClass[cls]++
	c.stats.ReqsByClass[cls] += int64(t.Len())
	c.stats.Requests += int64(t.Len())
	c.t = t
	c.cb = cb
	c.submitPhase(now, 0)
}

// submitPhase streams member i's command/address(/data-in) cycles.
func (c *Chip) submitPhase(now sim.Time, i int) {
	if i >= c.t.Len() {
		c.cellPhase(now)
		return
	}
	c.idx = i
	c.dur = c.busInDur(c.t.Requests[i])
	c.asked = now
	c.bus.Acquire(c.dur, c.grantedSubmit)
}

// cellPhase runs the overlapped array operation. With outage windows
// configured, a phase that would start while a member die is transiently
// unavailable waits out the remainder of that die's window first.
func (c *Chip) cellPhase(now sim.Time) {
	dur := c.cellDur(c.t)
	if c.frng != nil && c.faults.OutagePeriod > 0 && c.faults.OutageDur > 0 {
		var delay sim.Time
		for _, r := range c.t.Requests {
			if d := c.outageDelay(now, r.Addr.Die); d > delay {
				delay = d
			}
		}
		dur += delay
	}
	c.stats.CellActive.Set(now, true)
	c.stats.PlaneUse.Set(now, float64(c.t.Degree()))
	c.eng.AtTimer(now+dur, c.cellEnd)
}

// outageDelay returns how long a cell phase starting at now on the given die
// must wait for the die's periodic outage window to close (zero when the die
// is available). The window position is a pure function of (seed, chip, die,
// time): no RNG draw, so the outage pattern cannot depend on drain order.
func (c *Chip) outageDelay(now sim.Time, die int) sim.Time {
	p, d := c.faults.OutagePeriod, c.faults.OutageDur
	phase := dieOutagePhase(c.faults.Seed, c.ID, die, p)
	pos := (now - phase) % p
	if pos < 0 {
		pos += p
	}
	if pos < d {
		return d - pos
	}
	return 0
}

// maybeRetryRead implements the bounded read-retry ladder at cell-phase end.
// It reports true when another (slower) sense was scheduled; false when the
// transaction should proceed to read-out, with any members that exhausted
// the ladder marked Failed (uncorrectable).
func (c *Chip) maybeRetryRead(end sim.Time) bool {
	if c.frng == nil || c.faults.ReadFailProb <= 0 {
		return false
	}
	if c.retryRung == 0 {
		// First sense: draw each member once.
		c.retryMask = 0
		for i := range c.t.Requests {
			if c.frng.Float64() < c.faults.ReadFailProb {
				c.retryMask |= 1 << uint(i)
			}
		}
	} else {
		// A retry sense just finished: redraw only the failing members.
		for i := range c.t.Requests {
			bit := uint64(1) << uint(i)
			if c.retryMask&bit != 0 && c.frng.Float64() >= c.faults.ReadFailProb {
				c.retryMask &^= bit
			}
		}
	}
	if c.retryMask == 0 {
		c.retryRung = 0
		return false
	}
	if c.retryRung >= c.faults.ReadRetryMax {
		// Ladder exhausted: deliver the failing members as uncorrectable.
		for i := range c.t.Requests {
			if c.retryMask&(1<<uint(i)) != 0 {
				c.t.Requests[i].Failed = true
				c.stats.ReadUncorrectable++
			}
		}
		c.retryRung, c.retryMask = 0, 0
		return false
	}
	// Re-sense with an escalated (calibrated, slower) read: retry r costs
	// r*ReadRetryMult times the base cell time.
	c.retryRung++
	c.stats.ReadRetries++
	mult := c.faults.ReadRetryMult
	if mult < 1 {
		mult = 1
	}
	dur := c.cellDur(c.t) * sim.Time(c.retryRung*mult)
	c.stats.CellActive.Set(end, true)
	c.stats.PlaneUse.Set(end, float64(c.t.Degree()))
	c.eng.AtTimer(end+dur, c.cellEnd)
	return true
}

// applyWriteFaults draws program/erase outcomes for every member of the
// in-flight transaction, marking failures before completions are delivered.
func (c *Chip) applyWriteFaults() {
	if c.frng == nil {
		return
	}
	var p float64
	switch c.t.Op {
	case OpProgram:
		p = c.faults.ProgramFailProb
	case OpErase:
		p = c.faults.EraseFailProb
	}
	if p <= 0 {
		return
	}
	for i := range c.t.Requests {
		if c.frng.Float64() < p {
			c.t.Requests[i].Failed = true
			if c.t.Op == OpProgram {
				c.stats.ProgramFails++
			} else {
				c.stats.EraseFails++
			}
		}
	}
}

// readOutPhase streams member i's page out of the data register.
func (c *Chip) readOutPhase(now sim.Time, i int) {
	if i >= c.t.Len() {
		c.statusPhase(now)
		return
	}
	c.idx = i
	c.dur = c.Tim.DataTransferTime(c.Geo.PageSize)
	c.asked = now
	c.bus.Acquire(c.dur, c.grantedRead)
}

// statusPhase reads chip status and retires the transaction.
func (c *Chip) statusPhase(now sim.Time) {
	c.dur = c.Tim.StatusCycle
	c.asked = now
	c.bus.Acquire(c.dur, c.grantedStatus)
}

// ServiceTime estimates, without simulating, how long t would occupy the
// chip on an uncontended bus. Useful for tests and admission heuristics.
func (c *Chip) ServiceTime(t *Transaction) sim.Time {
	var busIn sim.Time
	for _, r := range t.Requests {
		busIn += c.busInDur(r)
	}
	total := busIn + c.cellDur(t) + c.Tim.StatusCycle
	if t.Op == OpRead {
		total += sim.Time(t.Len()) * c.Tim.DataTransferTime(c.Geo.PageSize)
	}
	return total
}
