package flash

import (
	"testing"
	"testing/quick"
)

func smallGeo() Geometry {
	return Geometry{
		Channels: 2, ChipsPerChan: 2, DiesPerChip: 2, PlanesPerDie: 4,
		BlocksPerPlane: 64, PagesPerBlock: 16, PageSize: 2048,
	}
}

func req(chip ChipID, die, plane, block, page int, op Op) Request {
	return Request{Op: op, Addr: Addr{Chip: chip, Die: die, Plane: plane, Block: block, Page: page}}
}

func TestTransactionClassSingle(t *testing.T) {
	g := smallGeo()
	var tx Transaction
	if err := tx.Add(g, req(0, 0, 0, 1, 2, OpRead)); err != nil {
		t.Fatal(err)
	}
	if tx.Class() != NonPAL {
		t.Fatalf("single request class = %v, want NON-PAL", tx.Class())
	}
}

func TestTransactionClassPlaneShare(t *testing.T) {
	g := smallGeo()
	var tx Transaction
	must(t, tx.Add(g, req(0, 0, 0, 5, 7, OpRead)))
	must(t, tx.Add(g, req(0, 0, 1, 5, 7, OpRead)))
	if tx.Class() != PAL1 {
		t.Fatalf("plane-share class = %v, want PAL1", tx.Class())
	}
}

func TestTransactionClassDieInterleave(t *testing.T) {
	g := smallGeo()
	var tx Transaction
	must(t, tx.Add(g, req(0, 0, 0, 5, 7, OpRead)))
	must(t, tx.Add(g, req(0, 1, 0, 9, 3, OpRead)))
	if tx.Class() != PAL2 {
		t.Fatalf("die-interleave class = %v, want PAL2", tx.Class())
	}
}

func TestTransactionClassCombined(t *testing.T) {
	g := smallGeo()
	var tx Transaction
	must(t, tx.Add(g, req(0, 0, 0, 5, 7, OpRead)))
	must(t, tx.Add(g, req(0, 0, 1, 5, 7, OpRead)))
	must(t, tx.Add(g, req(0, 1, 2, 9, 3, OpRead)))
	if tx.Class() != PAL3 {
		t.Fatalf("combined class = %v, want PAL3", tx.Class())
	}
}

func TestCoalesceRejectsDifferentChip(t *testing.T) {
	g := smallGeo()
	var tx Transaction
	must(t, tx.Add(g, req(0, 0, 0, 1, 1, OpRead)))
	if err := tx.Add(g, req(1, 0, 1, 1, 1, OpRead)); err == nil {
		t.Fatal("accepted request for a different chip")
	}
}

func TestCoalesceRejectsDifferentOp(t *testing.T) {
	g := smallGeo()
	var tx Transaction
	must(t, tx.Add(g, req(0, 0, 0, 1, 1, OpRead)))
	if err := tx.Add(g, req(0, 1, 0, 1, 1, OpProgram)); err == nil {
		t.Fatal("accepted mixed read/program transaction")
	}
}

func TestCoalesceRejectsSameDiePlane(t *testing.T) {
	g := smallGeo()
	var tx Transaction
	must(t, tx.Add(g, req(0, 0, 2, 1, 1, OpRead)))
	if err := tx.Add(g, req(0, 0, 2, 9, 9, OpRead)); err == nil {
		t.Fatal("accepted two requests on the same die/plane")
	}
}

func TestCoalescePlaneShareNeedsSamePageOffset(t *testing.T) {
	g := smallGeo()
	var tx Transaction
	must(t, tx.Add(g, req(0, 0, 0, 5, 7, OpRead)))
	if err := tx.Add(g, req(0, 0, 1, 5, 8, OpRead)); err == nil {
		t.Fatal("plane sharing accepted mismatched page offsets")
	}
	if err := tx.Add(g, req(0, 0, 1, 6, 7, OpRead)); err == nil {
		t.Fatal("plane sharing accepted mismatched block offsets")
	}
	// Different die has no page-offset constraint.
	if err := tx.Add(g, req(0, 1, 1, 6, 9, OpRead)); err != nil {
		t.Fatalf("die interleaving wrongly constrained: %v", err)
	}
}

func TestCoalesceMaxFLP(t *testing.T) {
	g := smallGeo() // max FLP = 8
	var tx Transaction
	n := 0
	for die := 0; die < g.DiesPerChip; die++ {
		for plane := 0; plane < g.PlanesPerDie; plane++ {
			if err := tx.Add(g, req(0, die, plane, 5, 7, OpProgram)); err != nil {
				t.Fatalf("add %d: %v", n, err)
			}
			n++
		}
	}
	if tx.Len() != g.MaxFLP() {
		t.Fatalf("built %d members, want %d", tx.Len(), g.MaxFLP())
	}
	if tx.Class() != PAL3 {
		t.Fatalf("full transaction class = %v, want PAL3", tx.Class())
	}
	if err := tx.Add(g, req(0, 0, 0, 5, 7, OpProgram)); err == nil {
		t.Fatal("accepted request beyond max FLP")
	}
}

func TestEraseCoalesce(t *testing.T) {
	g := smallGeo()
	var tx Transaction
	must(t, tx.Add(g, req(0, 0, 0, 5, 0, OpErase)))
	must(t, tx.Add(g, req(0, 0, 1, 5, 0, OpErase)))
	must(t, tx.Add(g, req(0, 1, 0, 7, 0, OpErase)))
	if tx.Class() != PAL3 {
		t.Fatalf("erase class = %v, want PAL3", tx.Class())
	}
}

func TestBuildTransactionGreedy(t *testing.T) {
	g := smallGeo()
	pending := []Request{
		req(0, 0, 0, 5, 7, OpRead),
		req(0, 0, 0, 6, 2, OpRead), // conflicts with [0] (same die/plane)
		req(0, 1, 0, 9, 1, OpRead), // joins via die interleave
		req(0, 0, 1, 5, 7, OpRead), // joins via plane share
	}
	tx, taken := BuildTransaction(g, pending)
	if tx.Len() != 3 {
		t.Fatalf("coalesced %d members, want 3 (%v)", tx.Len(), tx)
	}
	want := []int{0, 2, 3}
	for i, w := range want {
		if taken[i] != w {
			t.Fatalf("taken = %v, want %v", taken, want)
		}
	}
	if tx.Class() != PAL3 {
		t.Fatalf("class = %v, want PAL3", tx.Class())
	}
}

func TestBuildTransactionEmpty(t *testing.T) {
	g := smallGeo()
	tx, taken := BuildTransaction(g, nil)
	if tx != nil || taken != nil {
		t.Fatal("BuildTransaction on empty input should return nils")
	}
}

func TestBuildTransactionSingleAlwaysSucceeds(t *testing.T) {
	g := smallGeo()
	p := []Request{req(1, 1, 3, 60, 15, OpProgram)}
	tx, taken := BuildTransaction(g, p)
	if tx.Len() != 1 || len(taken) != 1 || taken[0] != 0 {
		t.Fatalf("single build wrong: %v %v", tx, taken)
	}
}

// Property: BuildTransaction output is always legal — no duplicated
// (die,plane), one op kind, same-die members share page+block offsets, and
// degree <= MaxFLP.
func TestBuildTransactionLegalProperty(t *testing.T) {
	g := smallGeo()
	prop := func(raw []uint32) bool {
		var pending []Request
		for _, v := range raw {
			pending = append(pending, Request{
				Op: Op(v % 2), // read or program
				Addr: Addr{
					Chip:  0,
					Die:   int(v>>2) % g.DiesPerChip,
					Plane: int(v>>4) % g.PlanesPerDie,
					Block: int(v>>8) % g.BlocksPerPlane,
					Page:  int(v>>16) % g.PagesPerBlock,
				},
			})
		}
		if len(pending) == 0 {
			return true
		}
		tx, taken := BuildTransaction(g, pending)
		if tx.Len() != len(taken) || tx.Len() == 0 || tx.Len() > g.MaxFLP() {
			return false
		}
		seen := map[[2]int]Addr{}
		for _, r := range tx.Requests {
			if r.Op != tx.Op {
				return false
			}
			key := [2]int{r.Addr.Die, r.Addr.Plane}
			if _, dup := seen[key]; dup {
				return false
			}
			for k, prev := range seen {
				if k[0] == r.Addr.Die && (prev.Page != r.Addr.Page || prev.Block != r.Addr.Block) {
					return false
				}
			}
			seen[key] = r.Addr
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestFLPClassString(t *testing.T) {
	cases := map[FLPClass]string{NonPAL: "NON-PAL", PAL1: "PAL1", PAL2: "PAL2", PAL3: "PAL3"}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), want)
		}
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
