package flash

import (
	"testing"

	"sprinkler/internal/sim"
)

func TestPageProgramTimePairing(t *testing.T) {
	tim := DefaultTiming()
	for page := 0; page < 16; page++ {
		got := tim.PageProgramTime(page)
		if page%2 == 0 && got != tim.ProgramFast {
			t.Fatalf("page %d: got %v, want fast %v", page, got, tim.ProgramFast)
		}
		if page%2 == 1 && got != tim.ProgramSlow {
			t.Fatalf("page %d: got %v, want slow %v", page, got, tim.ProgramSlow)
		}
	}
}

func TestCellTimePerOp(t *testing.T) {
	tim := DefaultTiming()
	a := Addr{Page: 2} // fast page
	if got := tim.CellTime(OpRead, a); got != tim.ReadArray {
		t.Fatalf("read cell time %v", got)
	}
	if got := tim.CellTime(OpProgram, a); got != tim.ProgramFast {
		t.Fatalf("program cell time %v", got)
	}
	if got := tim.CellTime(OpErase, a); got != tim.EraseBlock {
		t.Fatalf("erase cell time %v", got)
	}
}

func TestCellTimeUnknownOpPanics(t *testing.T) {
	tim := DefaultTiming()
	defer func() {
		if recover() == nil {
			t.Fatal("unknown op did not panic")
		}
	}()
	tim.CellTime(Op(99), Addr{})
}

func TestCommandOverheadShapes(t *testing.T) {
	tim := DefaultTiming()
	pageOps := tim.CommandOverhead(OpRead)
	if pageOps != tim.CommandOverhead(OpProgram) {
		t.Fatal("read/program command overheads should match (2 cmd + 5 addr)")
	}
	if got, want := pageOps, 2*tim.CmdCycle+5*tim.AddrCycle; got != want {
		t.Fatalf("page op overhead %v, want %v", got, want)
	}
	if got, want := tim.CommandOverhead(OpErase), 2*tim.CmdCycle+3*tim.AddrCycle; got != want {
		t.Fatalf("erase overhead %v, want %v", got, want)
	}
}

func TestCommandOverheadUnknownOpPanics(t *testing.T) {
	tim := DefaultTiming()
	defer func() {
		if recover() == nil {
			t.Fatal("unknown op did not panic")
		}
	}()
	tim.CommandOverhead(Op(42))
}

func TestDataTransferTimeScalesWithPage(t *testing.T) {
	tim := DefaultTiming()
	if tim.DataTransferTime(4096) != 2*tim.DataTransferTime(2048) {
		t.Fatal("transfer time not linear in page size")
	}
	// ONFI 2.x ballpark: a 2 KB page takes ~16 µs at 8 ns/B.
	got := tim.DataTransferTime(2048)
	if got < 10*sim.Microsecond || got > 30*sim.Microsecond {
		t.Fatalf("2KB transfer = %v, outside ONFI 2.x ballpark", got)
	}
}

func TestWriteDominatesRead(t *testing.T) {
	// The paper's premise: programs are 10-100x slower than reads.
	tim := DefaultTiming()
	if tim.ProgramFast < 5*tim.ReadArray {
		t.Fatal("program/read asymmetry lost")
	}
	if tim.ProgramSlow < 10*tim.ProgramFast {
		t.Fatal("fast/slow page variation lost")
	}
}
