package flash

import (
	"testing"
	"testing/quick"
)

func TestDefaultGeometryValid(t *testing.T) {
	g := DefaultGeometry()
	if err := g.Validate(); err != nil {
		t.Fatalf("default geometry invalid: %v", err)
	}
	if g.NumChips() != 64 {
		t.Fatalf("NumChips = %d, want 64", g.NumChips())
	}
	if g.NumDies() != 128 {
		t.Fatalf("NumDies = %d, want 128", g.NumDies())
	}
	if g.MaxFLP() != 8 {
		t.Fatalf("MaxFLP = %d, want 8", g.MaxFLP())
	}
}

func TestGeometryValidateRejectsZeroDims(t *testing.T) {
	mut := []func(*Geometry){
		func(g *Geometry) { g.Channels = 0 },
		func(g *Geometry) { g.ChipsPerChan = -1 },
		func(g *Geometry) { g.DiesPerChip = 0 },
		func(g *Geometry) { g.PlanesPerDie = 0 },
		func(g *Geometry) { g.BlocksPerPlane = 0 },
		func(g *Geometry) { g.PagesPerBlock = 0 },
		func(g *Geometry) { g.PageSize = 0 },
	}
	for i, m := range mut {
		g := DefaultGeometry()
		m(&g)
		if err := g.Validate(); err == nil {
			t.Errorf("mutation %d: Validate accepted invalid geometry", i)
		}
	}
}

func TestGeometryCapacity(t *testing.T) {
	g := DefaultGeometry()
	// 64 chips * 2 dies * 4 planes * 2048 blocks * 128 pages = 134,217,728 pages.
	if got := g.TotalPages(); got != 134217728 {
		t.Fatalf("TotalPages = %d, want 134217728", got)
	}
	// * 2KB = 256 GiB.
	if got := g.TotalBytes(); got != 134217728*2048 {
		t.Fatalf("TotalBytes = %d", got)
	}
}

func TestChannelChipMapping(t *testing.T) {
	g := DefaultGeometry() // 8 channels x 8 chips
	for ch := 0; ch < g.Channels; ch++ {
		for off := 0; off < g.ChipsPerChan; off++ {
			c := g.ChipAt(ch, off)
			if g.Channel(c) != ch {
				t.Fatalf("Channel(%d) = %d, want %d", c, g.Channel(c), ch)
			}
			if g.ChipOffset(c) != off {
				t.Fatalf("ChipOffset(%d) = %d, want %d", c, g.ChipOffset(c), off)
			}
		}
	}
}

func TestPPNRoundTrip(t *testing.T) {
	g := DefaultGeometry()
	addrs := []Addr{
		{},
		{Chip: 63, Die: 1, Plane: 3, Block: 2047, Page: 127},
		{Chip: 17, Die: 0, Plane: 2, Block: 100, Page: 64},
	}
	for _, a := range addrs {
		p := g.ToPPN(a)
		back := g.FromPPN(p)
		if back != a {
			t.Fatalf("round trip %v -> %d -> %v", a, p, back)
		}
	}
}

func TestPPNRoundTripProperty(t *testing.T) {
	g := Geometry{
		Channels: 4, ChipsPerChan: 4, DiesPerChip: 2, PlanesPerDie: 4,
		BlocksPerPlane: 64, PagesPerBlock: 16, PageSize: 2048,
	}
	prop := func(chip, die, plane, block, page uint16) bool {
		a := Addr{
			Chip:  ChipID(int(chip) % g.NumChips()),
			Die:   int(die) % g.DiesPerChip,
			Plane: int(plane) % g.PlanesPerDie,
			Block: int(block) % g.BlocksPerPlane,
			Page:  int(page) % g.PagesPerBlock,
		}
		return g.FromPPN(g.ToPPN(a)) == a && g.ValidAddr(a)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPPNDense(t *testing.T) {
	// PPNs must be a bijection onto [0, TotalPages): check density on a
	// small geometry by enumerating everything.
	g := Geometry{
		Channels: 2, ChipsPerChan: 2, DiesPerChip: 2, PlanesPerDie: 2,
		BlocksPerPlane: 3, PagesPerBlock: 4, PageSize: 512,
	}
	seen := make(map[PPN]bool)
	for chip := 0; chip < g.NumChips(); chip++ {
		for die := 0; die < g.DiesPerChip; die++ {
			for plane := 0; plane < g.PlanesPerDie; plane++ {
				for blk := 0; blk < g.BlocksPerPlane; blk++ {
					for pg := 0; pg < g.PagesPerBlock; pg++ {
						p := g.ToPPN(Addr{ChipID(chip), die, plane, blk, pg})
						if p < 0 || int64(p) >= g.TotalPages() {
							t.Fatalf("PPN %d out of range", p)
						}
						if seen[p] {
							t.Fatalf("PPN %d duplicated", p)
						}
						seen[p] = true
					}
				}
			}
		}
	}
	if int64(len(seen)) != g.TotalPages() {
		t.Fatalf("enumerated %d PPNs, want %d", len(seen), g.TotalPages())
	}
}

func TestValidAddrRejects(t *testing.T) {
	g := DefaultGeometry()
	bad := []Addr{
		{Chip: -1},
		{Chip: ChipID(g.NumChips())},
		{Die: g.DiesPerChip},
		{Plane: g.PlanesPerDie},
		{Block: g.BlocksPerPlane},
		{Page: g.PagesPerBlock},
	}
	for _, a := range bad {
		if g.ValidAddr(a) {
			t.Errorf("ValidAddr(%v) = true, want false", a)
		}
	}
}

func TestAddrString(t *testing.T) {
	a := Addr{Chip: 3, Die: 1, Plane: 2, Block: 17, Page: 9}
	if got, want := a.String(), "c3/d1/p2/b17/pg9"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}
