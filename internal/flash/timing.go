package flash

import (
	"fmt"

	"sprinkler/internal/sim"
)

// Op is a flash operation kind. Transactions may only coalesce memory
// requests of the same kind.
type Op int

const (
	// OpRead senses a page from the array into the data register and then
	// streams it out over the channel bus.
	OpRead Op = iota
	// OpProgram streams a page over the bus into the data register and then
	// programs the array.
	OpProgram
	// OpErase erases a whole block; it carries no page payload.
	OpErase
)

// String returns the operation mnemonic.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpProgram:
		return "program"
	case OpErase:
		return "erase"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Timing holds the NAND and interface timing parameters. Durations are in
// simulated nanoseconds. Defaults model an ONFI 2.x MLC part as configured
// in §5.1 of the paper.
type Timing struct {
	// BusBytePeriod is the time to move one byte over the channel bus.
	// ONFI 2.x synchronous mode ≈ 133 MB/s → 7.5 ns/byte.
	BusBytePeriod sim.Time

	// CmdCycle is the bus occupancy of issuing one command byte plus its
	// associated control signalling.
	CmdCycle sim.Time

	// AddrCycle is the bus occupancy of one address cycle; five are issued
	// per page access, two per erase.
	AddrCycle sim.Time

	// DecisionWindow is how long the flash controller may hold a ready chip
	// while it decides the transaction type (§2.2 "transaction type should
	// be decided within a short period"). Requests committed after the
	// window closes join the next transaction.
	DecisionWindow sim.Time

	// ReadArray is the cell sensing time tR (paper: 20 µs).
	ReadArray sim.Time

	// ProgramFast and ProgramSlow bound the MLC program time tPROG. The
	// paper cites 200 µs (fast page) to 2200 µs (slow page) from the Micron
	// MLC datasheet; which one applies depends on the page address (paired
	// page programming), see PageProgramTime.
	ProgramFast sim.Time
	ProgramSlow sim.Time

	// EraseBlock is the block erase time tBERS.
	EraseBlock sim.Time

	// StatusCycle is the bus occupancy of polling/reading chip status when
	// a transaction completes.
	StatusCycle sim.Time
}

// DefaultTiming returns the §5.1 configuration.
func DefaultTiming() Timing {
	return Timing{
		BusBytePeriod:  8, // ~133 MB/s, ONFI 2.x
		CmdCycle:       100,
		AddrCycle:      100,
		DecisionWindow: 2 * sim.Microsecond,
		ReadArray:      20 * sim.Microsecond,
		ProgramFast:    200 * sim.Microsecond,
		ProgramSlow:    2200 * sim.Microsecond,
		EraseBlock:     3 * sim.Millisecond,
		StatusCycle:    200,
	}
}

// Validate reports an error for non-positive timing parameters.
func (t Timing) Validate() error {
	type d struct {
		name string
		v    sim.Time
	}
	for _, x := range []d{
		{"BusBytePeriod", t.BusBytePeriod},
		{"CmdCycle", t.CmdCycle},
		{"AddrCycle", t.AddrCycle},
		{"ReadArray", t.ReadArray},
		{"ProgramFast", t.ProgramFast},
		{"ProgramSlow", t.ProgramSlow},
		{"EraseBlock", t.EraseBlock},
		{"StatusCycle", t.StatusCycle},
	} {
		if x.v <= 0 {
			return fmt.Errorf("flash: timing %s = %d, must be positive", x.name, int64(x.v))
		}
	}
	if t.DecisionWindow < 0 {
		return fmt.Errorf("flash: timing DecisionWindow = %d, must be >= 0", int64(t.DecisionWindow))
	}
	if t.ProgramSlow < t.ProgramFast {
		return fmt.Errorf("flash: ProgramSlow (%d) < ProgramFast (%d)", int64(t.ProgramSlow), int64(t.ProgramFast))
	}
	return nil
}

// PageProgramTime returns tPROG for a given page index within its block.
// MLC parts pair pages on the same wordline: the LSB page programs fast and
// the MSB page slow. ONFI-style shared pages interleave so that pages 0,1
// are fast then fast/slow pairs alternate; we model the common layout where
// even pages are fast and odd pages slow, which reproduces the paper's
// "intrinsic write variation latency" between 200 and 2200 µs.
func (t Timing) PageProgramTime(pageInBlock int) sim.Time {
	if pageInBlock%2 == 0 {
		return t.ProgramFast
	}
	return t.ProgramSlow
}

// CellTime returns the array (cell) occupancy of op at address a. For
// programs this varies with the page address; reads and erases are fixed.
func (t Timing) CellTime(op Op, a Addr) sim.Time {
	switch op {
	case OpRead:
		return t.ReadArray
	case OpProgram:
		return t.PageProgramTime(a.Page)
	case OpErase:
		return t.EraseBlock
	default:
		panic("flash: unknown op in CellTime")
	}
}

// DataTransferTime returns the bus occupancy of moving one page payload.
func (t Timing) DataTransferTime(pageSize int) sim.Time {
	return sim.Time(pageSize) * t.BusBytePeriod
}

// CommandOverhead returns the bus occupancy of the command+address phase
// for one memory request of kind op (excluding payload transfer).
// Page ops issue two command cycles (e.g. 00h...30h) and five address
// cycles; erases issue two command cycles and three address cycles.
func (t Timing) CommandOverhead(op Op) sim.Time {
	switch op {
	case OpRead, OpProgram:
		return 2*t.CmdCycle + 5*t.AddrCycle
	case OpErase:
		return 2*t.CmdCycle + 3*t.AddrCycle
	default:
		panic("flash: unknown op in CommandOverhead")
	}
}
