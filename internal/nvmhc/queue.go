// Package nvmhc models the non-volatile memory host controller's
// device-level queue (§2.1): a bounded, NCQ-like tag store that admits host
// I/O requests, tracks their lifecycle, and accounts the queue-full stall
// time reported in Figure 10d of the paper.
package nvmhc

import (
	"fmt"

	"sprinkler/internal/req"
	"sprinkler/internal/sim"
)

// slot is one NCQ tag: the occupying I/O plus arrival-order links.
type slot struct {
	io         *req.IO
	prev, next int32
}

// Queue is the device-level queue. Entries stay in arrival order; an entry
// is released when its I/O completes. Out-of-order service is expressed by
// schedulers choosing memory requests from any entry, not by reordering
// the queue itself — exactly how NCQ tags behave.
//
// Tags live in a fixed slot array threaded as a doubly-linked list in
// arrival order. Each queued I/O records its slot (req.IO.QSlot), so
// Release is O(1) instead of a scan — completions are the hottest queue
// operation in a long simulation.
type Queue struct {
	capacity int
	slots    []slot
	freeSlot int32 // free-list head through slot.next, -1 when empty
	head     int32 // oldest queued I/O, -1 when empty
	tail     int32 // newest queued I/O, -1 when empty
	count    int
	fuaCount int // queued FUA entries (schedulers honour the §4.4 barrier)

	full     sim.TimedCounter
	admitted int64
	released int64
}

// NewQueue returns an empty queue with the given tag capacity.
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		panic(fmt.Sprintf("nvmhc: queue capacity %d", capacity))
	}
	q := &Queue{
		capacity: capacity,
		slots:    make([]slot, capacity),
		head:     -1,
		tail:     -1,
	}
	for i := range q.slots {
		q.slots[i].next = int32(i) + 1
	}
	q.slots[capacity-1].next = -1
	q.freeSlot = 0
	return q
}

// Reset empties the queue for a new run, rebuilding the free list in the
// same slot order NewQueue produces and restarting the admission sequence
// at zero — reused queues assign the same Seq numbers a fresh queue would,
// which schedulers' admission-order tie-breaking depends on.
func (q *Queue) Reset() {
	for i := range q.slots {
		q.slots[i] = slot{next: int32(i) + 1}
	}
	q.slots[q.capacity-1].next = -1
	q.freeSlot = 0
	q.head, q.tail = -1, -1
	q.count, q.fuaCount = 0, 0
	q.full = sim.TimedCounter{}
	q.admitted, q.released = 0, 0
}

// Cap returns the tag capacity.
func (q *Queue) Cap() int { return q.capacity }

// Len returns the number of occupied tags.
func (q *Queue) Len() int { return q.count }

// Full reports whether every tag is occupied.
func (q *Queue) Full() bool { return q.count >= q.capacity }

// Empty reports whether no tag is occupied.
func (q *Queue) Empty() bool { return q.count == 0 }

// HasFUA reports whether any queued entry carries the force-unit-access
// flag, i.e. whether the §4.4 reorder barrier is in effect.
func (q *Queue) HasFUA() bool { return q.fuaCount > 0 }

// Enqueue secures a tag for io at time now. It returns false when the
// queue is full (the host must hold the request — that time is the "queue
// stall" the paper measures).
func (q *Queue) Enqueue(now sim.Time, io *req.IO) bool {
	if q.Full() {
		return false
	}
	io.Enqueued = now
	io.Seq = uint64(q.admitted)
	idx := q.freeSlot
	q.freeSlot = q.slots[idx].next
	q.slots[idx] = slot{io: io, prev: q.tail, next: -1}
	if q.tail >= 0 {
		q.slots[q.tail].next = idx
	} else {
		q.head = idx
	}
	q.tail = idx
	io.QSlot = idx
	q.count++
	if io.FUA {
		q.fuaCount++
	}
	q.admitted++
	q.full.Set(now, q.Full())
	return true
}

// Release frees io's tag in O(1). It panics if io is not queued: releasing
// an unknown tag is a controller bug.
func (q *Queue) Release(now sim.Time, io *req.IO) {
	idx := io.QSlot
	if idx < 0 || int(idx) >= len(q.slots) || q.slots[idx].io != io {
		panic(fmt.Sprintf("nvmhc: release of unqueued %v", io))
	}
	s := q.slots[idx]
	if s.prev >= 0 {
		q.slots[s.prev].next = s.next
	} else {
		q.head = s.next
	}
	if s.next >= 0 {
		q.slots[s.next].prev = s.prev
	} else {
		q.tail = s.prev
	}
	q.slots[idx] = slot{next: q.freeSlot}
	q.freeSlot = idx
	io.QSlot = -1
	q.count--
	if io.FUA {
		q.fuaCount--
	}
	q.released++
	q.full.Set(now, q.Full())
}

// Head returns the oldest queued I/O, or nil when the queue is empty.
func (q *Queue) Head() *req.IO {
	if q.head < 0 {
		return nil
	}
	return q.slots[q.head].io
}

// Next returns the I/O queued immediately after io (arrival order), or nil
// at the tail. io must be queued.
func (q *Queue) Next(io *req.IO) *req.IO {
	n := q.slots[io.QSlot].next
	if n < 0 {
		return nil
	}
	return q.slots[n].io
}

// SeqAt returns the admission sequence number of the i-th oldest queued
// entry (0-based), capped at the newest entry. It reports false when the
// queue is empty. Schedulers use it to bound candidate windows without
// materializing the entry list.
func (q *Queue) SeqAt(i int) (uint64, bool) {
	io := q.Head()
	if io == nil {
		return 0, false
	}
	for ; i > 0; i-- {
		n := q.Next(io)
		if n == nil {
			break
		}
		io = n
	}
	return io.Seq, true
}

// Entries returns the queued I/Os in arrival order. It allocates a fresh
// slice per call — a diagnostic/test helper; hot paths iterate with
// Head/Next instead.
func (q *Queue) Entries() []*req.IO {
	out := make([]*req.IO, 0, q.count)
	for io := q.Head(); io != nil; io = q.Next(io) {
		out = append(out, io)
	}
	return out
}

// FullTime returns the cumulative time the queue spent full, through now.
func (q *Queue) FullTime(now sim.Time) sim.Time { return q.full.Total(now) }

// Admitted returns the number of I/Os ever enqueued.
func (q *Queue) Admitted() int64 { return q.admitted }

// Released returns the number of I/Os ever released.
func (q *Queue) Released() int64 { return q.released }

// QueueState is the persistent state of a drained Queue: the lifetime
// admission/release counters (Seq assignment continues from Admitted)
// and the queue-full stall accounting. Tag occupancy is never part of a
// checkpoint — checkpoints are taken at quiescence, when every tag is
// free.
type QueueState struct {
	Admitted int64
	Released int64
	Full     sim.TimedCounterState
}

// State captures the queue's persistent counters. The queue must be
// empty (quiescent); occupied tags cannot be serialized.
func (q *Queue) State() (QueueState, error) {
	if q.count != 0 {
		return QueueState{}, fmt.Errorf("nvmhc: State with %d queued I/Os", q.count)
	}
	return QueueState{Admitted: q.admitted, Released: q.released, Full: q.full.State()}, nil
}

// SetState restores captured counters onto an empty queue, so the next
// Enqueue continues the admission sequence where the checkpointed run
// left off.
func (q *Queue) SetState(st QueueState) {
	if q.count != 0 {
		panic(fmt.Sprintf("nvmhc: SetState with %d queued I/Os", q.count))
	}
	q.admitted, q.released = st.Admitted, st.Released
	q.full.SetState(st.Full)
}
