// Package nvmhc models the non-volatile memory host controller's
// device-level queue (§2.1): a bounded, NCQ-like tag store that admits host
// I/O requests, tracks their lifecycle, and accounts the queue-full stall
// time reported in Figure 10d of the paper.
package nvmhc

import (
	"fmt"

	"sprinkler/internal/req"
	"sprinkler/internal/sim"
)

// Queue is the device-level queue. Entries stay in arrival order; an entry
// is released when its I/O completes. Out-of-order service is expressed by
// schedulers choosing memory requests from any entry, not by reordering
// the queue itself — exactly how NCQ tags behave.
type Queue struct {
	capacity int
	entries  []*req.IO

	full     sim.TimedCounter
	admitted int64
	released int64
}

// NewQueue returns an empty queue with the given tag capacity.
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		panic(fmt.Sprintf("nvmhc: queue capacity %d", capacity))
	}
	return &Queue{capacity: capacity}
}

// Cap returns the tag capacity.
func (q *Queue) Cap() int { return q.capacity }

// Len returns the number of occupied tags.
func (q *Queue) Len() int { return len(q.entries) }

// Full reports whether every tag is occupied.
func (q *Queue) Full() bool { return len(q.entries) >= q.capacity }

// Empty reports whether no tag is occupied.
func (q *Queue) Empty() bool { return len(q.entries) == 0 }

// Enqueue secures a tag for io at time now. It returns false when the
// queue is full (the host must hold the request — that time is the "queue
// stall" the paper measures).
func (q *Queue) Enqueue(now sim.Time, io *req.IO) bool {
	if q.Full() {
		return false
	}
	io.Enqueued = now
	q.entries = append(q.entries, io)
	q.admitted++
	q.full.Set(now, q.Full())
	return true
}

// Release frees io's tag. It panics if io is not queued: releasing an
// unknown tag is a controller bug.
func (q *Queue) Release(now sim.Time, io *req.IO) {
	for i, e := range q.entries {
		if e == io {
			copy(q.entries[i:], q.entries[i+1:])
			q.entries[len(q.entries)-1] = nil
			q.entries = q.entries[:len(q.entries)-1]
			q.released++
			q.full.Set(now, q.Full())
			return
		}
	}
	panic(fmt.Sprintf("nvmhc: release of unqueued %v", io))
}

// Entries returns the queued I/Os in arrival order. Callers must not
// mutate the returned slice.
func (q *Queue) Entries() []*req.IO { return q.entries }

// FullTime returns the cumulative time the queue spent full, through now.
func (q *Queue) FullTime(now sim.Time) sim.Time { return q.full.Total(now) }

// Admitted returns the number of I/Os ever enqueued.
func (q *Queue) Admitted() int64 { return q.admitted }

// Released returns the number of I/Os ever released.
func (q *Queue) Released() int64 { return q.released }
