package nvmhc

import (
	"fmt"
	"strings"
	"testing"

	"sprinkler/internal/req"
	"sprinkler/internal/sim"
)

func TestQueueEnqueueRelease(t *testing.T) {
	q := NewQueue(2)
	a := req.NewIO(1, req.Read, 0, 1, 0)
	b := req.NewIO(2, req.Read, 8, 1, 0)
	c := req.NewIO(3, req.Read, 16, 1, 0)

	if !q.Enqueue(10, a) || !q.Enqueue(20, b) {
		t.Fatal("enqueue into free queue failed")
	}
	if q.Enqueue(30, c) {
		t.Fatal("enqueue into full queue succeeded")
	}
	if !q.Full() || q.Len() != 2 {
		t.Fatalf("Full=%v Len=%d, want true/2", q.Full(), q.Len())
	}
	if a.Enqueued != 10 || b.Enqueued != 20 {
		t.Fatal("Enqueued timestamps not recorded")
	}

	q.Release(50, a)
	if q.Full() || q.Len() != 1 {
		t.Fatal("release did not free a tag")
	}
	if !q.Enqueue(60, c) {
		t.Fatal("enqueue after release failed")
	}
	if got := q.Entries(); len(got) != 2 || got[0] != b || got[1] != c {
		t.Fatal("entries not in arrival order after release")
	}
}

func TestQueueFullTimeAccounting(t *testing.T) {
	q := NewQueue(1)
	a := req.NewIO(1, req.Read, 0, 1, 0)
	q.Enqueue(100, a) // full from 100
	q.Release(250, a) // free at 250
	if got := q.FullTime(1000); got != 150 {
		t.Fatalf("FullTime = %v, want 150", got)
	}
}

func TestQueueReleaseUnknownPanics(t *testing.T) {
	q := NewQueue(1)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("release of unknown IO did not panic")
		}
		// The diagnostic must keep naming the offending I/O.
		if msg := fmt.Sprint(r); !strings.Contains(msg, "release of unqueued") {
			t.Fatalf("panic message lost its diagnostic: %q", msg)
		}
	}()
	q.Release(0, req.NewIO(9, req.Read, 0, 1, 0))
}

// TestQueueDoubleReleasePanics covers the O(1) slot-indexed release: a
// second release of the same I/O must be rejected even though its old slot
// may have been handed to a newer I/O in the meantime.
func TestQueueDoubleReleasePanics(t *testing.T) {
	q := NewQueue(2)
	a := req.NewIO(1, req.Read, 0, 1, 0)
	q.Enqueue(0, a)
	q.Release(5, a)
	b := req.NewIO(2, req.Read, 8, 1, 0)
	q.Enqueue(10, b) // reuses a's slot
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double release did not panic")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "release of unqueued") {
			t.Fatalf("panic message lost its diagnostic: %q", msg)
		}
		if got := q.Entries(); len(got) != 1 || got[0] != b {
			t.Fatal("double release corrupted the queue")
		}
	}()
	q.Release(20, a)
}

// TestQueueOrderSurvivesMiddleReleases churns enqueues with releases from
// the middle and verifies arrival order, Head/Next iteration, and SeqAt
// stay consistent through slot reuse.
func TestQueueOrderSurvivesMiddleReleases(t *testing.T) {
	q := NewQueue(8)
	rng := sim.NewRand(42)
	var live []*req.IO
	next := int64(0)
	for step := 0; step < 500; step++ {
		if !q.Full() && (len(live) == 0 || rng.Bool(0.6)) {
			io := req.NewIO(next, req.Read, req.LPN(next), 1, 0)
			next++
			if !q.Enqueue(sim.Time(step), io) {
				t.Fatal("enqueue into non-full queue failed")
			}
			live = append(live, io)
		} else {
			i := rng.Intn(len(live))
			q.Release(sim.Time(step), live[i])
			live = append(live[:i], live[i+1:]...)
		}
		if q.Len() != len(live) {
			t.Fatalf("step %d: Len=%d want %d", step, q.Len(), len(live))
		}
		i := 0
		for io := q.Head(); io != nil; io = q.Next(io) {
			if io != live[i] {
				t.Fatalf("step %d: position %d holds io#%d, want io#%d",
					step, i, io.ID, live[i].ID)
			}
			i++
		}
		if i != len(live) {
			t.Fatalf("step %d: iterated %d entries, want %d", step, i, len(live))
		}
		if len(live) > 0 {
			if seq, ok := q.SeqAt(len(live) - 1); !ok || seq != live[len(live)-1].Seq {
				t.Fatalf("step %d: SeqAt tail = %d,%v want %d", step, seq, ok, live[len(live)-1].Seq)
			}
			// SeqAt beyond the tail clamps to the newest entry.
			if seq, _ := q.SeqAt(100); seq != live[len(live)-1].Seq {
				t.Fatalf("step %d: SeqAt(100) did not clamp", step)
			}
		}
	}
}

func TestQueueZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewQueue(0)
}

func TestQueueCounters(t *testing.T) {
	q := NewQueue(4)
	for i := 0; i < 3; i++ {
		q.Enqueue(0, req.NewIO(int64(i), req.Write, 0, 1, 0))
	}
	q.Release(10, q.Entries()[0])
	if q.Admitted() != 3 || q.Released() != 1 {
		t.Fatalf("admitted/released = %d/%d, want 3/1", q.Admitted(), q.Released())
	}
	if q.Empty() {
		t.Fatal("queue reported empty with entries present")
	}
}
