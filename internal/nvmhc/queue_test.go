package nvmhc

import (
	"testing"

	"sprinkler/internal/req"
)

func TestQueueEnqueueRelease(t *testing.T) {
	q := NewQueue(2)
	a := req.NewIO(1, req.Read, 0, 1, 0)
	b := req.NewIO(2, req.Read, 8, 1, 0)
	c := req.NewIO(3, req.Read, 16, 1, 0)

	if !q.Enqueue(10, a) || !q.Enqueue(20, b) {
		t.Fatal("enqueue into free queue failed")
	}
	if q.Enqueue(30, c) {
		t.Fatal("enqueue into full queue succeeded")
	}
	if !q.Full() || q.Len() != 2 {
		t.Fatalf("Full=%v Len=%d, want true/2", q.Full(), q.Len())
	}
	if a.Enqueued != 10 || b.Enqueued != 20 {
		t.Fatal("Enqueued timestamps not recorded")
	}

	q.Release(50, a)
	if q.Full() || q.Len() != 1 {
		t.Fatal("release did not free a tag")
	}
	if !q.Enqueue(60, c) {
		t.Fatal("enqueue after release failed")
	}
	if got := q.Entries(); len(got) != 2 || got[0] != b || got[1] != c {
		t.Fatal("entries not in arrival order after release")
	}
}

func TestQueueFullTimeAccounting(t *testing.T) {
	q := NewQueue(1)
	a := req.NewIO(1, req.Read, 0, 1, 0)
	q.Enqueue(100, a) // full from 100
	q.Release(250, a) // free at 250
	if got := q.FullTime(1000); got != 150 {
		t.Fatalf("FullTime = %v, want 150", got)
	}
}

func TestQueueReleaseUnknownPanics(t *testing.T) {
	q := NewQueue(1)
	defer func() {
		if recover() == nil {
			t.Fatal("release of unknown IO did not panic")
		}
	}()
	q.Release(0, req.NewIO(9, req.Read, 0, 1, 0))
}

func TestQueueZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero capacity did not panic")
		}
	}()
	NewQueue(0)
}

func TestQueueCounters(t *testing.T) {
	q := NewQueue(4)
	for i := 0; i < 3; i++ {
		q.Enqueue(0, req.NewIO(int64(i), req.Write, 0, 1, 0))
	}
	q.Release(10, q.Entries()[0])
	if q.Admitted() != 3 || q.Released() != 1 {
		t.Fatalf("admitted/released = %d/%d, want 3/1", q.Admitted(), q.Released())
	}
	if q.Empty() {
		t.Fatal("queue reported empty with entries present")
	}
}
