package req

import (
	"testing"
	"testing/quick"

	"sprinkler/internal/flash"
)

func TestNewIOBuildsMemRequests(t *testing.T) {
	io := NewIO(7, Read, 100, 5, 1000)
	if len(io.Mem) != 5 {
		t.Fatalf("built %d mem requests, want 5", len(io.Mem))
	}
	for i, m := range io.Mem {
		if m.LPN != LPN(100+i) {
			t.Fatalf("mem %d LPN = %d, want %d", i, m.LPN, 100+i)
		}
		if m.IO != io || m.Index != i {
			t.Fatalf("mem %d back-pointer wrong", i)
		}
		if m.State != StateQueued {
			t.Fatalf("mem %d state = %v, want queued", i, m.State)
		}
	}
	if io.End() != 105 {
		t.Fatalf("End = %d, want 105", io.End())
	}
	if io.Bytes(2048) != 5*2048 {
		t.Fatalf("Bytes = %d", io.Bytes(2048))
	}
}

func TestNewIOPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-page IO did not panic")
		}
	}()
	NewIO(1, Write, 0, 0, 0)
}

func TestMarkDoneCompletes(t *testing.T) {
	io := NewIO(1, Write, 0, 3, 0)
	if io.MarkDone(0) {
		t.Fatal("complete after 1/3")
	}
	if io.MarkDone(2) {
		t.Fatal("complete after 2/3")
	}
	if !io.MarkDone(1) {
		t.Fatal("not complete after 3/3")
	}
	if !io.Complete() || io.NumDone() != 3 {
		t.Fatal("completion accounting wrong")
	}
}

func TestMarkDoneTwicePanics(t *testing.T) {
	io := NewIO(1, Write, 0, 2, 0)
	io.MarkDone(0)
	defer func() {
		if recover() == nil {
			t.Fatal("double MarkDone did not panic")
		}
	}()
	io.MarkDone(0)
}

func TestKindFlashOp(t *testing.T) {
	if Read.FlashOp() != flash.OpRead {
		t.Fatal("Read should map to OpRead")
	}
	if Write.FlashOp() != flash.OpProgram {
		t.Fatal("Write should map to OpProgram")
	}
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatal("Kind strings wrong")
	}
}

func TestLatencyAccounting(t *testing.T) {
	io := NewIO(1, Read, 0, 1, 500)
	io.FirstData = 800
	io.Done = 2500
	if io.Latency() != 2000 {
		t.Fatalf("Latency = %v, want 2000", io.Latency())
	}
	if io.QueueWait() != 300 {
		t.Fatalf("QueueWait = %v, want 300", io.QueueWait())
	}
}

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130)
	if len(b) != 3 {
		t.Fatalf("bitmap words = %d, want 3", len(b))
	}
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Count() != 4 {
		t.Fatalf("Count = %d, want 4", b.Count())
	}
	b.Clear(64)
	if b.Get(64) || b.Count() != 3 {
		t.Fatal("Clear failed")
	}
}

func TestBitmapSetClearProperty(t *testing.T) {
	prop := func(idxs []uint8) bool {
		b := NewBitmap(256)
		ref := map[int]bool{}
		for _, i := range idxs {
			b.Set(int(i))
			ref[int(i)] = true
		}
		for i := 0; i < 256; i++ {
			if b.Get(i) != ref[i] {
				return false
			}
		}
		return b.Count() == len(ref)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStateString(t *testing.T) {
	want := map[State]string{
		StateQueued: "queued", StateComposed: "composed",
		StateCommitted: "committed", StateIssued: "issued", StateDone: "done",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), w)
		}
	}
}

func TestStringers(t *testing.T) {
	io := NewIO(3, Write, 10, 2, 0)
	if io.String() == "" || io.Mem[0].String() == "" {
		t.Fatal("String() should be non-empty")
	}
}

// TestIOResetReuse pins the free-list primitive: a recycled I/O must be
// indistinguishable from a fresh one — state, bitmap, timestamps, member
// identity — and must reuse its member storage when capacity allows.
func TestIOResetReuse(t *testing.T) {
	io := NewIO(1, Write, 100, 8, 50)
	io.FUA = true
	// Dirty every resettable field as a completed run would.
	io.Seq = 99
	io.QSlot = 3
	io.NoteFirstData(60)
	for i := 0; i < 8; i++ {
		io.Mem[i].State = StateDone
		io.Mem[i].Resolved = true
		io.Mem[i].Composed = 55
		io.MarkDone(i)
	}
	io.Done = 70

	before := &io.mems[0]
	io.Reset(2, Read, 500, 4, 80)
	if &io.mems[0] != before {
		t.Fatal("Reset reallocated member storage despite sufficient capacity")
	}
	fresh := NewIO(2, Read, 500, 4, 80)
	if io.ID != fresh.ID || io.Kind != fresh.Kind || io.Start != fresh.Start ||
		io.Pages != fresh.Pages || io.Arrival != fresh.Arrival || io.FUA ||
		io.QSlot != -1 || io.Seq != 0 || io.Done != 0 || io.FirstData != 0 ||
		io.NumDone() != 0 || io.Complete() {
		t.Fatalf("recycled header differs from fresh: %+v", io)
	}
	if len(io.Mem) != 4 {
		t.Fatalf("member count %d, want 4", len(io.Mem))
	}
	for i, m := range io.Mem {
		f := fresh.Mem[i]
		if m.IO != io || m.Index != f.Index || m.LPN != f.LPN ||
			m.State != StateQueued || m.Resolved || m.ReadySlot != -1 ||
			m.Composed != 0 || m.Committed != 0 || m.Finished != 0 {
			t.Fatalf("recycled member %d differs from fresh: %+v", i, m)
		}
	}
	// The done bitmap must have been cleared: completing the recycled
	// request must not trip the double-completion panic.
	for i := 0; i < 4; i++ {
		done := io.MarkDone(i)
		if done != (i == 3) {
			t.Fatalf("MarkDone(%d) = %v", i, done)
		}
	}
}

// TestIOResetGrowsForLargerRequest covers the capacity-miss path and the
// >64-page bitmap reuse.
func TestIOResetGrowsForLargerRequest(t *testing.T) {
	io := NewIO(1, Read, 0, 2, 0)
	io.Reset(2, Read, 0, 100, 0)
	if len(io.Mem) != 100 {
		t.Fatalf("member count %d, want 100", len(io.Mem))
	}
	io.MarkDone(99)
	io.Reset(3, Write, 0, 70, 0)
	if io.doneMask.Get(69) || io.doneMask.Count() != 0 {
		t.Fatal("done bitmap not cleared on >64-page reuse")
	}
	for i := 0; i < 70; i++ {
		io.MarkDone(i)
	}
	if !io.Complete() {
		t.Fatal("recycled 70-page I/O did not complete")
	}
}
