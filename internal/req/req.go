// Package req defines the host-side request model shared by the NVMHC,
// the schedulers and the FTL: host I/O requests (tags in the device-level
// queue), the page-sized memory requests they decompose into, and the
// per-tag completion bitmap used to return data in order (§4.4).
package req

import (
	"fmt"

	"sprinkler/internal/flash"
	"sprinkler/internal/sim"
)

// Kind is the host operation type.
type Kind int

const (
	// Read moves data from flash to the host.
	Read Kind = iota
	// Write moves data from the host to flash.
	Write
)

// String returns "read" or "write".
func (k Kind) String() string {
	if k == Read {
		return "read"
	}
	return "write"
}

// FlashOp maps the host kind to the flash operation that serves it.
func (k Kind) FlashOp() flash.Op {
	if k == Read {
		return flash.OpRead
	}
	return flash.OpProgram
}

// LPN is a logical page number: the host block address divided by the
// atomic flash I/O unit (one page).
type LPN int64

// State tracks a memory request through the §2.1 I/O service routine.
type State int

const (
	// StateQueued: the parent tag is secured in the device-level queue but
	// this request has not been composed (no data movement yet).
	StateQueued State = iota
	// StateComposed: data movement between host and SSD was initiated and
	// the request has a physical address.
	StateComposed
	// StateCommitted: handed to a flash controller's per-chip queue.
	StateCommitted
	// StateIssued: part of an executing flash transaction.
	StateIssued
	// StateDone: payload served.
	StateDone
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateComposed:
		return "composed"
	case StateCommitted:
		return "committed"
	case StateIssued:
		return "issued"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// IO is one host I/O request. The host addresses a contiguous LPN range;
// the NVMHC splits it into len(Mem) page-sized memory requests.
type IO struct {
	ID      int64
	Kind    Kind
	Start   LPN // first logical page
	Pages   int // length in pages
	Arrival sim.Time
	FUA     bool // force-unit-access: must not be reordered (§4.4)

	// QSlot is the tag slot this I/O occupies in the device-level queue
	// (-1 when unqueued) and Seq its admission sequence number. Both are
	// owned by nvmhc.Queue; QSlot makes tag release O(1) and Seq gives
	// schedulers a total admission order without rescanning the queue.
	QSlot int32
	Seq   uint64

	// Lifecycle timestamps, filled by the device model.
	Enqueued  sim.Time // secured a tag in the device-level queue
	FirstData sim.Time // first memory request composed
	Done      sim.Time // all memory requests served and data returned

	// Failed marks an I/O that completed with an unrecoverable error: an
	// uncorrectable read, a write whose rewrite ladder exhausted, or a
	// write refused because the device degraded to read-only mode.
	Failed bool

	Mem          []*Mem
	mems         []Mem // backing storage for Mem, kept for Reset reuse
	doneMask     Bitmap
	maskBuf      [1]uint64 // inline doneMask storage for I/Os <= 64 pages
	nDone        int
	firstDataSet bool
}

// NoteFirstData records the first data-movement instant once; later calls
// are no-ops.
func (io *IO) NoteFirstData(now sim.Time) {
	if !io.firstDataSet {
		io.firstDataSet = true
		io.FirstData = now
	}
}

// NewIO builds an I/O and its memory requests. Physical addresses are
// attached later by the FTL preprocessor.
func NewIO(id int64, kind Kind, start LPN, pages int, arrival sim.Time) *IO {
	io := &IO{}
	io.Reset(id, kind, start, pages, arrival)
	return io
}

// Reset re-initializes io in place for a new request, reusing the member
// array, member-pointer slice and completion bitmap when their capacity
// suffices — the free-list primitive that makes steady-state streaming
// allocation-free. The caller must guarantee the previous request fully
// completed (no queue slot, no ready-index slot, no in-flight member).
// FUA is cleared; set it after Reset if needed.
func (io *IO) Reset(id int64, kind Kind, start LPN, pages int, arrival sim.Time) {
	if pages <= 0 {
		panic(fmt.Sprintf("req: IO %d with %d pages", id, pages))
	}
	io.ID, io.Kind, io.Start, io.Pages, io.Arrival = id, kind, start, pages, arrival
	io.FUA = false
	io.QSlot, io.Seq = -1, 0
	io.Enqueued, io.FirstData, io.Done = 0, 0, 0
	io.Failed = false
	io.nDone = 0
	io.firstDataSet = false
	// Round grown capacities up so a recycled I/O converges on the
	// workload's largest request size after a few reuses instead of
	// reallocating on every size change.
	rounded := 8
	for rounded < pages {
		rounded *= 2
	}
	// Prefer a previously grown heap bitmap (cap > 1) over the inline
	// word so mixed-size reuse doesn't reallocate it for every large
	// request; fall back to maskBuf for small I/Os without one.
	words := (pages + 63) / 64
	if cap(io.doneMask) >= words && cap(io.doneMask) > 1 {
		io.doneMask = io.doneMask[:words]
		for i := range io.doneMask {
			io.doneMask[i] = 0
		}
	} else if pages <= 64 {
		io.maskBuf[0] = 0
		io.doneMask = io.maskBuf[:]
	} else {
		io.doneMask = NewBitmap(rounded)[:words]
	}
	if cap(io.mems) >= pages && cap(io.Mem) >= pages {
		io.mems = io.mems[:pages]
		io.Mem = io.Mem[:pages]
	} else {
		io.mems = make([]Mem, pages, rounded)
		io.Mem = make([]*Mem, pages, rounded)
	}
	for i := 0; i < pages; i++ {
		io.mems[i] = Mem{IO: io, Index: i, LPN: start + LPN(i), ReadySlot: -1}
		io.Mem[i] = &io.mems[i]
	}
}

// End returns one past the last LPN.
func (io *IO) End() LPN { return io.Start + LPN(io.Pages) }

// Bytes returns the transfer size given a page size.
func (io *IO) Bytes(pageSize int) int64 { return int64(io.Pages) * int64(pageSize) }

// Latency returns the device-level response time (per I/O request, as in
// §5.2), valid once the I/O completed.
func (io *IO) Latency() sim.Time { return io.Done - io.Arrival }

// QueueWait returns the time between arrival and the first composed memory
// request.
func (io *IO) QueueWait() sim.Time { return io.FirstData - io.Arrival }

// MarkDone records completion of memory request index i and returns true
// when the whole I/O is finished. Marking twice panics: double completion
// is a controller bug.
func (io *IO) MarkDone(i int) bool {
	if io.doneMask.Get(i) {
		panic(fmt.Sprintf("req: IO %d mem %d completed twice", io.ID, i))
	}
	io.doneMask.Set(i)
	io.nDone++
	return io.nDone == io.Pages
}

// NumDone reports how many member requests completed.
func (io *IO) NumDone() int { return io.nDone }

// Complete reports whether every member completed.
func (io *IO) Complete() bool { return io.nDone == io.Pages }

// String renders a compact description.
func (io *IO) String() string {
	return fmt.Sprintf("io#%d{%v lpn=%d+%d}", io.ID, io.Kind, io.Start, io.Pages)
}

// Mem is one page-sized flash memory request (§2.1: "a memory request
// whose data size is the same as the atomic flash I/O unit size").
type Mem struct {
	IO    *IO
	Index int // position within the parent I/O
	LPN   LPN
	State State

	// Addr is the physical target, resolved by the FTL preprocessor when
	// the tag is secured (physical layout identification) and re-resolved
	// by the readdressing callback after live data migration. Resolved
	// records that preprocessing completed (writes allocate exactly once).
	Addr     flash.Addr
	Resolved bool

	// ReadySlot is this request's position in the per-chip ready index
	// while it awaits scheduling (-1 when not indexed). Owned by
	// sched.ReadyIndex; it makes removal on commitment O(1).
	ReadySlot int32

	// Rewrites counts program-fail recoveries for this member: each one
	// remaps the page to a fresh block and re-composes the write. Bounded
	// by the device's rewrite ladder; reset with the parent I/O.
	Rewrites uint8

	Composed  sim.Time
	Committed sim.Time
	Finished  sim.Time
}

// Op returns the flash operation serving this request.
func (m *Mem) Op() flash.Op { return m.IO.Kind.FlashOp() }

// String renders a compact description.
func (m *Mem) String() string {
	return fmt.Sprintf("mem{io=%d idx=%d lpn=%d %v %v}", m.IO.ID, m.Index, m.LPN, m.Addr, m.State)
}

// Bitmap is the per-queue-entry memory request bitmap from §4.4: "NVMHC
// maintains an eight byte memory request bitmap ... Each bit indicates an
// issued memory request". It grows beyond 64 bits for large I/Os.
type Bitmap []uint64

// NewBitmap returns a bitmap able to hold n bits.
func NewBitmap(n int) Bitmap {
	return make(Bitmap, (n+63)/64)
}

// Set sets bit i.
func (b Bitmap) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Clear clears bit i.
func (b Bitmap) Clear(i int) { b[i/64] &^= 1 << (uint(i) % 64) }

// Get reports bit i.
func (b Bitmap) Get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// Count returns the number of set bits.
func (b Bitmap) Count() int {
	n := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}
