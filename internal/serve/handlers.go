package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"sprinkler"
)

// maxBodyBytes bounds a request body; batched submits dominate sizing.
const maxBodyBytes = 8 << 20

// Handler builds the daemon's HTTP API:
//
//	POST   /v1/sessions                  open a named session (429/503 + Retry-After under pressure)
//	GET    /v1/sessions                  list open sessions
//	GET    /v1/snapshots                 catalog of -snapshot-dir warm states (404 when unconfigured)
//	POST   /v1/sessions/{id}/submit      admit one or a batch of I/Os
//	POST   /v1/sessions/{id}/feed        build a workload server-side and feed it
//	POST   /v1/sessions/{id}/advance     run simulated time forward; returns the new snapshot
//	GET    /v1/sessions/{id}/snapshot    current cumulative snapshot
//	GET    /v1/sessions/{id}/watch       long-poll (default) or SSE (?stream=sse) snapshot updates
//	POST   /v1/sessions/{id}/drain       finish the run; returns the final Result
//	DELETE /v1/sessions/{id}             discard without draining
//	GET    /v1/results/{id}              checkpointed Result of a closed session
//	GET    /metrics                      text exposition of server+arena counters
//	GET    /debug/pprof/...              runtime profiles
//	GET    /healthz                      liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleOpen)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("GET /v1/snapshots", s.handleSnapshots)
	mux.HandleFunc("POST /v1/sessions/{id}/submit", s.withSession(s.handleSubmit))
	mux.HandleFunc("POST /v1/sessions/{id}/feed", s.withSession(s.handleFeed))
	mux.HandleFunc("POST /v1/sessions/{id}/advance", s.withSession(s.handleAdvance))
	mux.HandleFunc("GET /v1/sessions/{id}/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /v1/sessions/{id}/watch", s.handleWatch)
	mux.HandleFunc("POST /v1/sessions/{id}/drain", s.withSession(s.handleDrain))
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.withSession(s.handleDiscard))
	mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// writeJSON encodes v with the stable wire encoding.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError maps an error onto its HTTP response: admission rejections
// keep their status and Retry-After, lookups 404, everything else 400.
func writeError(w http.ResponseWriter, err error) {
	var rej *errRejected
	switch {
	case errors.As(err, &rej):
		if rej.retryAfter > 0 {
			secs := int(rej.retryAfter / time.Second)
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
		}
		writeJSON(w, rej.status, ErrorResponse{Error: rej.msg})
	case errors.Is(err, errNotFound):
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: err.Error()})
	default:
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
	}
}

// readJSON decodes a bounded request body. An empty body decodes the zero
// value, so argument-free endpoints accept bare POSTs.
func readJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil
		}
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func (s *Server) handleOpen(w http.ResponseWriter, r *http.Request) {
	var req OpenRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	_, resp, err := s.Open(req)
	if err != nil {
		writeError(w, err)
		return
	}
	s.counters.Admitted.Add(1)
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ListResponse{Sessions: s.Sessions(), Draining: s.Draining()})
}

func (s *Server) handleSnapshots(w http.ResponseWriter, r *http.Request) {
	infos, err := s.listSnapshots()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ListSnapshotsResponse{Snapshots: infos})
}

// withSession resolves the {id} path value and serializes the handler
// behind the session's simulation lock, bounding the wait by the server's
// request timeout — a busy single-threaded simulation backpressures its
// other callers with 503 + Retry-After instead of queueing unboundedly.
func (s *Server) withSession(h func(w http.ResponseWriter, r *http.Request, sess *session)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sess, err := s.get(r.PathValue("id"))
		if err != nil {
			writeError(w, err)
			return
		}
		ctx := r.Context()
		var cancel context.CancelFunc
		if s.opts.RequestTimeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
			defer cancel()
		}
		if err := sess.lock(ctx); err != nil {
			s.counters.RejectedBusy.Add(1)
			writeError(w, &errRejected{
				status:     http.StatusServiceUnavailable,
				retryAfter: time.Second,
				msg:        fmt.Sprintf("session %q is busy: %v", sess.id, err),
			})
			return
		}
		defer sess.unlock()
		if _, closed, _ := sess.observe(); closed {
			// Lost the race with a drain/expiry that was in flight when we
			// queued for the lock.
			writeError(w, errNotFound)
			return
		}
		s.counters.Admitted.Add(1)
		h(w, r, sess)
	}
}

// checkBacklog enforces the session's submitted-but-uncompleted budget.
func (s *Server) checkBacklog(sess *session, adding int64) error {
	if sess.maxBacklog <= 0 {
		return nil
	}
	snap := sess.sess.Snapshot()
	if backlog := snap.IOsSubmitted - snap.IOsCompleted; backlog+adding > int64(sess.maxBacklog) {
		s.counters.RejectedBacklog.Add(1)
		return &errRejected{
			status:     http.StatusTooManyRequests,
			retryAfter: time.Second,
			msg: fmt.Sprintf("session %q backlog %d + %d exceeds budget %d; advance the session first",
				sess.id, backlog, adding, sess.maxBacklog),
		}
	}
	return nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request, sess *session) {
	var req SubmitRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, fmt.Errorf("submit carries no requests"))
		return
	}
	if err := s.checkBacklog(sess, int64(len(req.Requests))); err != nil {
		writeError(w, err)
		return
	}
	for i, io := range req.Requests {
		err := sess.sess.Submit(sprinkler.Request{
			ArrivalNS: io.ArrivalNS,
			Write:     io.Write,
			LPN:       io.LPN,
			Pages:     io.Pages,
			FUA:       io.FUA,
		})
		if err != nil {
			// Partial admission: report what made it in before failing.
			sess.publish(sess.sess.Snapshot())
			writeError(w, fmt.Errorf("request %d: %w", i, err))
			return
		}
	}
	s.counters.IOsSubmitted.Add(uint64(len(req.Requests)))
	snap := sess.sess.Snapshot()
	sess.publish(snap)
	writeJSON(w, http.StatusOK, SubmitResponse{
		Submitted: int64(len(req.Requests)),
		Backlog:   snap.IOsSubmitted - snap.IOsCompleted,
	})
}

func (s *Server) handleFeed(w http.ResponseWriter, r *http.Request, sess *session) {
	var spec FeedSpec
	if err := readJSON(r, &spec); err != nil {
		writeError(w, err)
		return
	}
	if spec.Workload != nil || spec.Fixed != nil {
		src, bounded, err := spec.buildSource(sess.cfg, sess.seed)
		if err != nil {
			writeError(w, err)
			return
		}
		sess.src, sess.feedBounded = src, bounded
	}
	if sess.src == nil {
		writeError(w, fmt.Errorf("session %q has no workload source; name one in the feed spec", sess.id))
		return
	}
	// The backlog budget is enforced by clamping, not rejecting: a feed
	// admits at most the session's remaining headroom and reports how far
	// it got, so the client advances and feeds again — backpressure with
	// progress. Only a session already at its budget is rejected.
	n := spec.Count
	if sess.maxBacklog > 0 {
		snap := sess.sess.Snapshot()
		headroom := int64(sess.maxBacklog) - (snap.IOsSubmitted - snap.IOsCompleted)
		if headroom <= 0 {
			s.counters.RejectedBacklog.Add(1)
			writeError(w, &errRejected{
				status:     http.StatusTooManyRequests,
				retryAfter: time.Second,
				msg:        fmt.Sprintf("session %q is at its backlog budget %d; advance it first", sess.id, sess.maxBacklog),
			})
			return
		}
		if n <= 0 || n > headroom {
			n = headroom
		}
	}
	if n <= 0 && !sess.feedBounded {
		writeError(w, fmt.Errorf("refusing to drain an unbounded source; set count, a backlog budget, or bound the workload"))
		return
	}
	fed, err := sess.sess.Feed(sess.src, n)
	s.counters.IOsSubmitted.Add(uint64(fed))
	snap := sess.sess.Snapshot()
	sess.publish(snap)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, FeedResponse{
		Fed:     fed,
		Backlog: snap.IOsSubmitted - snap.IOsCompleted,
	})
}

func (s *Server) handleAdvance(w http.ResponseWriter, r *http.Request, sess *session) {
	var req AdvanceRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := sess.sess.Advance(req.DNS); err != nil {
		writeError(w, err)
		return
	}
	snap := sess.sess.Snapshot()
	sess.publish(snap)
	writeJSON(w, http.StatusOK, snap)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sess, err := s.get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	// Observation rides the published snapshot: no simulation lock, so a
	// long Advance never blocks dashboards.
	snap, _, _ := sess.observe()
	writeJSON(w, http.StatusOK, snap)
}

// handleWatch streams snapshot updates: long-poll by default (returns the
// first snapshot with SimTimeNS > sinceNS, or the current one at the
// timeout), SSE with ?stream=sse. Clients compute windowed deltas with
// Snapshot.Since — the raw integrals are part of the wire format.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	sess, err := s.get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	if r.URL.Query().Get("stream") == "sse" || r.Header.Get("Accept") == "text/event-stream" {
		s.watchSSE(w, r, sess)
		return
	}
	since := int64(-1)
	if v := r.URL.Query().Get("sinceNS"); v != "" {
		since, err = strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, fmt.Errorf("bad sinceNS: %w", err))
			return
		}
	}
	timeout := 30 * time.Second
	if v := r.URL.Query().Get("timeoutMS"); v != "" {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, fmt.Errorf("bad timeoutMS: %w", err))
			return
		}
		timeout = time.Duration(ms) * time.Millisecond
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		snap, closed, changed := sess.observe()
		if snap.SimTimeNS > since || closed {
			writeJSON(w, http.StatusOK, snap)
			return
		}
		select {
		case <-changed:
		case <-deadline.C:
			writeJSON(w, http.StatusOK, snap)
			return
		case <-r.Context().Done():
			return
		}
	}
}

// watchSSE streams every snapshot change as a server-sent event until the
// session closes or the client disconnects.
func (s *Server) watchSSE(w http.ResponseWriter, r *http.Request, sess *session) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, fmt.Errorf("streaming unsupported by connection"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	var lastSent int64 = -1
	for {
		snap, closed, changed := sess.observe()
		if snap.SimTimeNS > lastSent || closed {
			b, err := json.Marshal(snap)
			if err != nil {
				return
			}
			fmt.Fprintf(w, "event: snapshot\ndata: %s\n\n", b)
			fl.Flush()
			lastSent = snap.SimTimeNS
		}
		if closed {
			fmt.Fprintf(w, "event: close\ndata: {}\n\n")
			fl.Flush()
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request, sess *session) {
	// Bound the drain server-side like the janitor and Close paths: on
	// the client's context alone, a large-backlog drain holds the
	// simulation lock for as long as the client cares to wait, starving
	// every other caller into 503s.
	ctx := r.Context()
	if s.opts.DrainTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.DrainTimeout)
		defer cancel()
	}
	res, err := s.drainSession(ctx, sess)
	if err != nil {
		writeError(w, fmt.Errorf("drain: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleDiscard(w http.ResponseWriter, r *http.Request, sess *session) {
	sess.sess.Discard()
	sess.finish(nil, nil)
	s.remove(sess, nil, nil)
	s.counters.SessionsDiscarded.Add(1)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	res, rerr, ok := s.Result(r.PathValue("id"))
	if !ok {
		writeError(w, errNotFound)
		return
	}
	if rerr != nil || res == nil {
		writeJSON(w, http.StatusGone, ErrorResponse{Error: fmt.Sprintf("session did not drain cleanly: %v", rerr)})
		return
	}
	writeJSON(w, http.StatusOK, res)
}
