package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"sprinkler"
)

// warmStateConfig is the snapshot platform for the daemon tests: the test
// base platform with the GC-stress shaping, so the warm state is the kind
// a gcStress session would otherwise pay preconditioning for.
func warmStateConfig() sprinkler.Config {
	cfg := testOptions().BaseConfig
	cfg.BlocksPerPlane = 24
	cfg.PagesPerBlock = 64
	cfg.LogicalPages = cfg.TotalPages() * 85 / 100
	return cfg
}

// writeWarmState preconditions a device on warmStateConfig and writes its
// snapshot into dir under name, returning the decoded snapshot.
func writeWarmState(t *testing.T, dir, name string) *sprinkler.DeviceSnapshot {
	t.Helper()
	cfg := warmStateConfig()
	dev, err := sprinkler.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dev.Precondition(0.95, 0.5, 7)
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Checkpoint(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	snap, err := sprinkler.ReadSnapshot(rf)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// warmIOs is the request stream both the daemon session and the direct
// reference session replay in TestOpenWarmState.
func warmIOs() []IORequest {
	ios := make([]IORequest, 0, 60)
	for i := 0; i < 60; i++ {
		ios = append(ios, IORequest{LPN: int64(i * 4), Pages: 4, Write: i%2 == 0})
	}
	return ios
}

// TestOpenWarmState opens a session hydrated from a snapshot file over
// HTTP and checks its drained Result is byte-identical to a session
// hydrated from the same snapshot directly through the public API.
func TestOpenWarmState(t *testing.T) {
	dir := t.TempDir()
	snap := writeWarmState(t, dir, "aged.snap")
	opts := testOptions()
	opts.SnapshotDir = dir
	_, ts := newTestServer(t, opts)

	resp := openSession(t, ts, OpenRequest{Name: "warm", WarmState: "aged.snap", Scheduler: "SPK1"})
	if resp.WarmState != "aged.snap" {
		t.Errorf("open response did not echo warmState: %+v", resp)
	}
	if resp.Scheduler != "SPK1" {
		t.Errorf("scheduler override lost: %+v", resp)
	}
	if r := postJSON(t, ts.URL+"/v1/sessions/warm/submit", SubmitRequest{Requests: warmIOs()}, nil); r.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", r.StatusCode)
	}
	var got sprinkler.Result
	if r := postJSON(t, ts.URL+"/v1/sessions/warm/drain", nil, &got); r.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d", r.StatusCode)
	}

	// Reference: the same snapshot hydrated directly, with the config the
	// daemon resolves (scheduler override plus the clamped budgets).
	cfg := warmStateConfig()
	cfg.Scheduler = sprinkler.SPK1
	cfg.MaxBacklog = opts.MaxBacklog
	cfg.CollectSeries = false
	cfg.SeriesWindow = 0
	ref, err := sprinkler.Open(cfg, sprinkler.WithSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	for _, io := range warmIOs() {
		if err := ref.Submit(sprinkler.Request{ArrivalNS: io.ArrivalNS, Write: io.Write, LPN: io.LPN, Pages: io.Pages, FUA: io.FUA}); err != nil {
			t.Fatal(err)
		}
	}
	want, err := ref.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(*want)
	if string(gb) != string(wb) {
		t.Errorf("daemon warm session diverged from direct hydration:\n daemon: %s\n direct: %s", gb, wb)
	}

	// The decoded snapshot must be cached: a second open after the file is
	// deleted still succeeds without touching disk.
	if err := os.Remove(filepath.Join(dir, "aged.snap")); err != nil {
		t.Fatal(err)
	}
	openSession(t, ts, OpenRequest{Name: "warm2", WarmState: "aged.snap"})
}

// TestOpenWarmStateRejections pins the 400 paths: no snapshot directory,
// unknown and path-escaping names, and conflicts with the platform knobs.
func TestOpenWarmStateRejections(t *testing.T) {
	dir := t.TempDir()
	writeWarmState(t, dir, "aged.snap")

	t.Run("no snapshot dir", func(t *testing.T) {
		_, ts := newTestServer(t, testOptions())
		r := postJSON(t, ts.URL+"/v1/sessions", OpenRequest{WarmState: "aged.snap"}, nil)
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", r.StatusCode)
		}
	})

	opts := testOptions()
	opts.SnapshotDir = dir
	_, ts := newTestServer(t, opts)
	cases := []struct {
		name string
		req  OpenRequest
	}{
		{"unknown name", OpenRequest{WarmState: "nope.snap"}},
		{"path escape", OpenRequest{WarmState: "../aged.snap"}},
		{"with gcStress", OpenRequest{WarmState: "aged.snap", GCStress: true}},
		{"with chips", OpenRequest{WarmState: "aged.snap", Chips: 16}},
		{"with faults", OpenRequest{WarmState: "aged.snap", Faults: &sprinkler.FaultSpec{ReadFailProb: 0.1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := postJSON(t, ts.URL+"/v1/sessions", tc.req, nil)
			if r.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", r.StatusCode)
			}
		})
	}
}
