// Package serve is sprinklerd's core: a simulation-as-a-service server
// exposing named sprinkler Sessions over HTTP/JSON. Clients open sessions
// against a shared bounded DeviceArena of warm devices, stream requests in
// (directly or by naming a server-built workload), advance simulated time,
// and stream windowed Snapshot deltas out. The server's job beyond
// plumbing is robustness: admission control with per-session memory
// budgets, backpressure with Retry-After when the arena is exhausted,
// idle-session reclamation back into the arena, and graceful drain on
// shutdown — every accepted session still produces its final Result.
package serve

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"sprinkler"
)

// Options configures a Server. The zero value is unusable; start from
// DefaultOptions.
type Options struct {
	// BaseConfig is the platform sessions start from; OpenRequest knobs
	// override it per session.
	BaseConfig sprinkler.Config

	// MaxSessions caps concurrently open sessions; opens beyond it are
	// rejected with 429 and a Retry-After. Every open session also holds
	// a checked-out device, so the effective concurrency bound is
	// min(MaxSessions, MaxDevices).
	MaxSessions int

	// MaxDevices caps live simulated devices — checked out by sessions
	// plus warm in the arena. Opens that would exceed it are rejected
	// with 503 and a Retry-After: the memory backstop when sessions are
	// large and the cap is below MaxSessions.
	MaxDevices int

	// MaxBacklog is the per-session budget for submitted-but-uncompleted
	// I/Os: sessions may ask for less, never more. Zero means unbounded.
	MaxBacklog int

	// SeriesWindow is the per-session budget for retained latency-series
	// points when a session collects a series. Zero disables collection.
	SeriesWindow int

	// IdleExpiry reclaims sessions with no requests for this long: the
	// session is drained (its Result checkpointed) and the device returns
	// to the arena. Zero disables expiry.
	IdleExpiry time.Duration

	// RequestTimeout bounds how long a request waits for a busy session
	// before giving up with 503 + Retry-After (a session executes one
	// request at a time; the simulation is single-threaded).
	RequestTimeout time.Duration

	// DrainTimeout bounds one session's final drain during idle expiry
	// and shutdown; a session that cannot finish in time is discarded.
	DrainTimeout time.Duration

	// SnapshotDir, when set, lets OpenRequest.WarmState name a warm-state
	// snapshot file (written by Device.Checkpoint / the CLI -save-state
	// flags) inside this directory. The session's device hydrates from it
	// instead of preconditioning, so an aged-drive session opens at
	// fresh-drive cost. Snapshots are decoded once and cached for the
	// server's lifetime.
	SnapshotDir string
}

// DefaultOptions returns the daemon defaults: the paper's 64-chip
// platform, 8 live devices, 64Ki-request session backlogs. The device
// budget is the operative concurrency bound at these defaults — 8
// concurrent sessions, each holding a checked-out device; opens beyond
// it get 503 + Retry-After. MaxSessions = 64 is admission headroom that
// only binds when -max-devices is raised past it.
func DefaultOptions() Options {
	return Options{
		BaseConfig:     sprinkler.DefaultConfig(),
		MaxSessions:    64,
		MaxDevices:     8,
		MaxBacklog:     64 << 10,
		SeriesWindow:   4096,
		IdleExpiry:     2 * time.Minute,
		RequestTimeout: 30 * time.Second,
		DrainTimeout:   10 * time.Second,
	}
}

// Counters is the server's monotonic event counters, readable without
// locks for /metrics.
type Counters struct {
	SessionsOpened    atomic.Uint64
	SessionsDrained   atomic.Uint64
	SessionsExpired   atomic.Uint64
	SessionsDiscarded atomic.Uint64

	Admitted        atomic.Uint64 // requests accepted into a session
	RejectedSession atomic.Uint64 // opens refused at MaxSessions (429)
	RejectedDevice  atomic.Uint64 // opens refused at MaxDevices (503)
	RejectedBacklog atomic.Uint64 // submits refused at the backlog budget (429)
	RejectedBusy    atomic.Uint64 // requests timed out waiting for a busy session (503)

	IOsSubmitted atomic.Uint64
}

// Server owns the arena, the open sessions and the reclamation janitor.
type Server struct {
	opts  Options
	arena *sprinkler.DeviceArena

	mu       sync.Mutex
	sessions map[string]*session
	results  []finishedSession // checkpointed Results of closed sessions
	seq      int64
	draining bool

	counters Counters

	// snapMu guards the decoded warm-state snapshot cache. Decoding is a
	// cold path (once per name); holding the lock across it keeps two
	// racing opens from decoding the same file twice.
	snapMu    sync.Mutex
	snapCache map[string]*sprinkler.DeviceSnapshot

	janitorStop chan struct{}
	janitorDone chan struct{}
}

// finishedSession checkpoints a closed session's final measurements.
type finishedSession struct {
	id  string
	res *sprinkler.Result
	err error
}

// maxRetainedResults bounds the checkpoint buffer; older results fall off.
const maxRetainedResults = 256

// session is one open simulation. The sprinkler Session is single-
// threaded, so sem serializes every simulation-touching operation; nmu
// guards only the cheap observation state (last snapshot, idle clock,
// watcher notification), so watchers and the janitor never wait behind a
// long Advance.
type session struct {
	id         string
	cfg        sprinkler.Config
	seed       uint64
	maxBacklog int

	sem         chan struct{} // capacity 1: the simulation lock
	sess        *sprinkler.Session
	src         sprinkler.Source // current feed source, nil until first feed
	feedBounded bool

	wallStart time.Time

	nmu      sync.Mutex
	last     sprinkler.Snapshot
	lastUsed time.Time
	notify   chan struct{}
	closed   bool
	result   *sprinkler.Result
	closeErr error
}

// lock acquires the simulation lock, giving up when ctx expires.
func (s *session) lock(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *session) unlock() { <-s.sem }

// tryLock acquires the simulation lock only if it is free.
func (s *session) tryLock() bool {
	select {
	case s.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// publish refreshes the observation state and wakes watchers. Call with
// the simulation lock held.
func (s *session) publish(snap sprinkler.Snapshot) {
	s.nmu.Lock()
	s.last = snap
	s.lastUsed = time.Now()
	close(s.notify)
	s.notify = make(chan struct{})
	s.nmu.Unlock()
}

// finish marks the session closed with its final result and wakes
// watchers for the last time. Call with the simulation lock held.
func (s *session) finish(res *sprinkler.Result, err error) {
	s.nmu.Lock()
	s.closed = true
	s.result = res
	s.closeErr = err
	close(s.notify)
	s.notify = make(chan struct{})
	s.nmu.Unlock()
}

// observe returns the current observation state and the channel that
// signals its next change.
func (s *session) observe() (snap sprinkler.Snapshot, closed bool, changed <-chan struct{}) {
	s.nmu.Lock()
	defer s.nmu.Unlock()
	return s.last, s.closed, s.notify
}

// finished returns the session's terminal state, if reached. Under the
// simulation lock the answer is authoritative: every path that closes a
// session holds the lock while doing so.
func (s *session) finished() (res *sprinkler.Result, err error, done bool) {
	s.nmu.Lock()
	defer s.nmu.Unlock()
	return s.result, s.closeErr, s.closed
}

// backlog is the session's submitted-but-uncompleted I/O count per the
// last published snapshot.
func (s *session) backlog() int64 {
	s.nmu.Lock()
	defer s.nmu.Unlock()
	return s.last.IOsSubmitted - s.last.IOsCompleted
}

// idleFor reports how long the session has gone without a request.
func (s *session) idleFor(now time.Time) time.Duration {
	s.nmu.Lock()
	defer s.nmu.Unlock()
	return now.Sub(s.lastUsed)
}

// NewServer builds a Server over a fresh arena sized to opts and starts
// the idle-expiry janitor (when IdleExpiry is set). Close stops it.
func NewServer(opts Options) *Server {
	arena := sprinkler.NewDeviceArena()
	arena.MaxDevices = opts.MaxDevices
	arena.MaxSources = opts.MaxSessions
	s := &Server{
		opts:     opts,
		arena:    arena,
		sessions: make(map[string]*session),
	}
	if opts.IdleExpiry > 0 {
		s.janitorStop = make(chan struct{})
		s.janitorDone = make(chan struct{})
		interval := opts.IdleExpiry / 4
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
		go s.janitor(interval)
	}
	return s
}

// Counters exposes the server's event counters.
func (s *Server) Counters() *Counters { return &s.counters }

// ArenaStats exposes the shared arena's hit/miss/eviction counters.
func (s *Server) ArenaStats() sprinkler.ArenaStats { return s.arena.Stats() }

// errRejected carries an HTTP-mappable admission failure.
type errRejected struct {
	status     int // 429 or 503
	retryAfter time.Duration
	msg        string
}

func (e *errRejected) Error() string { return e.msg }

// errConflict reports a duplicate session name or misuse of a session
// state (e.g. feeding before naming a workload).
var errNotFound = errors.New("no such session")

// loadSnapshot resolves a WarmState name to a decoded snapshot, reading
// and caching <SnapshotDir>/<name> on first use. Names are bare file
// names — path separators (a client reaching outside the directory) are
// rejected.
func (s *Server) loadSnapshot(name string) (*sprinkler.DeviceSnapshot, error) {
	if s.opts.SnapshotDir == "" {
		return nil, fmt.Errorf("warmState: server has no snapshot directory (start sprinklerd with -snapshot-dir)")
	}
	if name != filepath.Base(name) || name == "." || name == ".." {
		return nil, fmt.Errorf("warmState: invalid snapshot name %q", name)
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if snap, ok := s.snapCache[name]; ok {
		return snap, nil
	}
	f, err := os.Open(filepath.Join(s.opts.SnapshotDir, name))
	if err != nil {
		return nil, fmt.Errorf("warmState %q: %w", name, err)
	}
	defer f.Close()
	snap, err := sprinkler.ReadSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("warmState %q: %w", name, err)
	}
	if s.snapCache == nil {
		s.snapCache = make(map[string]*sprinkler.DeviceSnapshot)
	}
	s.snapCache[name] = snap
	return snap, nil
}

// listSnapshots builds the snapshot catalog from SnapshotDir. Every
// regular file in the directory is listed; ones that parse as snapshots
// carry a config summary and aged stats (decoded through the same cache
// the open path hydrates from, so a catalogued image opens for free),
// damaged ones carry the parse error. With no directory configured the
// catalog does not exist, which surfaces as 404 — not an empty list.
func (s *Server) listSnapshots() ([]SnapshotInfo, error) {
	if s.opts.SnapshotDir == "" {
		return nil, fmt.Errorf("%w: server has no snapshot directory (start sprinklerd with -snapshot-dir)", errNotFound)
	}
	entries, err := os.ReadDir(s.opts.SnapshotDir)
	if err != nil {
		return nil, fmt.Errorf("snapshot directory: %w", err)
	}
	infos := make([]SnapshotInfo, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		info := SnapshotInfo{Name: e.Name()}
		snap, err := s.loadSnapshot(e.Name())
		if err != nil {
			info.Error = err.Error()
		} else {
			cfg := snap.Config()
			stats := snap.Stats()
			info.Config = &SnapshotConfigSummary{
				Scheduler:    string(cfg.Scheduler),
				Channels:     cfg.Channels,
				ChipsPerChan: cfg.ChipsPerChan,
				QueueDepth:   cfg.QueueDepth,
				LogicalPages: cfg.LogicalPages,
				GCEnabled:    !cfg.DisableGC,
				FaultsArmed:  cfg.Faults != (sprinkler.FaultSpec{}),
			}
			info.Stats = &stats
		}
		infos = append(infos, info)
	}
	return infos, nil
}

// sessionCfg resolves an OpenRequest against the server's base platform
// and budgets. With a warm-state snapshot the platform comes from the
// snapshot itself — only the scheduler choice and the host-side
// observation budgets apply on top — so the platform knobs are rejected
// rather than silently ignored.
func (s *Server) sessionCfg(req OpenRequest, snap *sprinkler.DeviceSnapshot) (sprinkler.Config, error) {
	if snap != nil {
		if req.Chips > 0 || req.Queue > 0 || req.GCStress || req.ParallelChannels != 0 || req.Faults != nil {
			return sprinkler.Config{}, fmt.Errorf("warmState sessions take their platform from the snapshot; chips, queue, gcStress, parallelChannels and faults cannot be combined with it")
		}
		cfg := snap.Config()
		if req.Scheduler != "" {
			cfg.Scheduler = sprinkler.SchedulerKind(req.Scheduler)
		}
		cfg.MaxBacklog = clampBudget(req.MaxBacklog, s.opts.MaxBacklog)
		cfg.CollectSeries = req.CollectSeries && s.opts.SeriesWindow > 0
		if cfg.CollectSeries {
			cfg.SeriesWindow = clampBudget(req.SeriesWindow, s.opts.SeriesWindow)
		} else {
			cfg.SeriesWindow = 0
		}
		if err := cfg.Validate(); err != nil {
			return cfg, err
		}
		return cfg, nil
	}
	cfg := s.opts.BaseConfig
	if req.Chips > 0 || req.Queue > 0 || req.Scheduler != "" || req.GCStress {
		// Rebuild the platform through the shared CLI plumbing semantics:
		// chips reshape the topology, GC stress shrinks blocks and the
		// logical space.
		base := cfg
		if req.Chips > 0 {
			cfg = sprinkler.Platform(req.Chips)
			cfg.QueueDepth = base.QueueDepth
			cfg.Scheduler = base.Scheduler
			cfg.ParallelChannels = base.ParallelChannels
		}
		if req.Queue > 0 {
			cfg.QueueDepth = req.Queue
		}
		if req.Scheduler != "" {
			cfg.Scheduler = sprinkler.SchedulerKind(req.Scheduler)
		}
		if req.GCStress {
			cfg.BlocksPerPlane = 24
			cfg.PagesPerBlock = 64
			cfg.LogicalPages = cfg.TotalPages() * 85 / 100
		}
	}
	// A non-zero request overrides the daemon's worker count; negatives
	// are carried into the config so Validate rejects them.
	if req.ParallelChannels != 0 {
		cfg.ParallelChannels = req.ParallelChannels
	}
	// A present fault spec replaces the base one wholesale (a partial
	// overlay could silently mix two experiments' fault models); invalid
	// knobs are carried into the config so Validate rejects them with 400.
	if req.Faults != nil {
		cfg.Faults = *req.Faults
	}
	// Clamp the session's memory budgets to the server's.
	cfg.MaxBacklog = clampBudget(req.MaxBacklog, s.opts.MaxBacklog)
	cfg.CollectSeries = req.CollectSeries && s.opts.SeriesWindow > 0
	if cfg.CollectSeries {
		cfg.SeriesWindow = clampBudget(req.SeriesWindow, s.opts.SeriesWindow)
	} else {
		cfg.SeriesWindow = 0
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// clampBudget resolves a requested budget against a server budget: zero
// requests the full budget, larger requests are clamped to it.
func clampBudget(want, budget int) int {
	if budget <= 0 {
		return want
	}
	if want <= 0 || want > budget {
		return budget
	}
	return want
}

// Open admits a new session, or rejects it with an errRejected carrying
// the HTTP status and Retry-After.
func (s *Server) Open(req OpenRequest) (*session, *OpenResponse, error) {
	var snap *sprinkler.DeviceSnapshot
	if req.WarmState != "" {
		var err error
		if snap, err = s.loadSnapshot(req.WarmState); err != nil {
			return nil, nil, err
		}
	}
	cfg, err := s.sessionCfg(req, snap)
	if err != nil {
		return nil, nil, err
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, nil, &errRejected{status: 503, retryAfter: 10 * time.Second, msg: "server is draining"}
	}
	if len(s.sessions) >= s.opts.MaxSessions {
		s.mu.Unlock()
		s.counters.RejectedSession.Add(1)
		return nil, nil, &errRejected{
			status:     429,
			retryAfter: time.Second,
			msg:        fmt.Sprintf("session limit reached (%d open)", s.opts.MaxSessions),
		}
	}
	if s.opts.MaxDevices > 0 && len(s.sessions) >= s.opts.MaxDevices {
		// Every open session holds a device checked out of the arena;
		// warm pooled devices can be evicted, checked-out ones cannot.
		s.mu.Unlock()
		s.counters.RejectedDevice.Add(1)
		return nil, nil, &errRejected{
			status:     503,
			retryAfter: 2 * time.Second,
			msg:        fmt.Sprintf("device arena exhausted (%d devices checked out)", s.opts.MaxDevices),
		}
	}
	id := req.Name
	if id == "" {
		s.seq++
		id = fmt.Sprintf("s-%d", s.seq)
	}
	if _, dup := s.sessions[id]; dup {
		s.mu.Unlock()
		return nil, nil, &errRejected{status: 409, msg: fmt.Sprintf("session %q already open", id)}
	}
	// Reserve the slot before the (potentially slow) device build so
	// concurrent opens cannot overshoot the budgets.
	sess := &session{
		id:         id,
		cfg:        cfg,
		seed:       req.Seed,
		maxBacklog: cfg.MaxBacklog,
		sem:        make(chan struct{}, 1),
		wallStart:  time.Now(),
		notify:     make(chan struct{}),
		lastUsed:   time.Now(),
	}
	// Hold the simulation lock across the build: the session is visible
	// in the map for admission accounting, but a request racing the open
	// (the client chose the name) queues on the lock instead of
	// observing a half-built session with a nil sess.sess.
	sess.sem <- struct{}{}
	s.sessions[id] = sess
	s.mu.Unlock()

	opts := []sprinkler.Option{sprinkler.WithArena(s.arena)}
	if snap != nil {
		opts = append(opts, sprinkler.WithSnapshot(snap))
	}
	if req.GCStress {
		opts = append(opts, sprinkler.WithPrecondition(sprinkler.Precondition{
			FillFrac: 0.95, ChurnFrac: 0.5, Seed: req.Seed,
		}))
	}
	inner, err := sprinkler.Open(cfg, opts...)
	if err != nil {
		// Mark the carcass closed before releasing the lock so queued
		// requests observe a finished session (404), not a nil one.
		sess.finish(nil, err)
		s.mu.Lock()
		delete(s.sessions, id)
		s.mu.Unlock()
		sess.unlock()
		return nil, nil, err
	}
	sess.sess = inner
	sess.publish(inner.Snapshot())
	sess.unlock()
	s.counters.SessionsOpened.Add(1)
	// Echo the kernel the session actually resolved to, not the raw
	// knob: zero tells the client the serial fallback engaged.
	parallel := cfg.ParallelChannels
	if !cfg.UsesParallelKernel() {
		parallel = 0
	}
	return sess, &OpenResponse{
		ID:               id,
		Chips:            cfg.Channels * cfg.ChipsPerChan,
		Scheduler:        string(cfg.Scheduler),
		MaxBacklog:       cfg.MaxBacklog,
		SeriesWindow:     cfg.SeriesWindow,
		ParallelChannels: parallel,
		WarmState:        req.WarmState,
	}, nil
}

// get looks up an open session.
func (s *Server) get(id string) (*session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, errNotFound
	}
	return sess, nil
}

// remove unregisters a closed session and checkpoints its result.
func (s *Server) remove(sess *session, res *sprinkler.Result, err error) {
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.results = append(s.results, finishedSession{id: sess.id, res: res, err: err})
	if len(s.results) > maxRetainedResults {
		s.results = s.results[len(s.results)-maxRetainedResults:]
	}
	s.mu.Unlock()
}

// Result returns the checkpointed Result of a closed session, if still
// retained.
func (s *Server) Result(id string) (*sprinkler.Result, error, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := len(s.results) - 1; i >= 0; i-- {
		if s.results[i].id == id {
			return s.results[i].res, s.results[i].err, true
		}
	}
	return nil, nil, false
}

// drainSession drains sess under its simulation lock and returns the
// device to the arena; on failure (timeout, simulation error) the device
// is discarded instead. The session is unregistered either way.
func (s *Server) drainSession(ctx context.Context, sess *session) (*sprinkler.Result, error) {
	// A session drained by whoever held the lock before us is done:
	// draining it again would count a spurious Discard and checkpoint a
	// second errClosed result that shadows the real one.
	if res, err, done := sess.finished(); done {
		return res, err
	}
	res, err := sess.sess.Drain(ctx)
	if err != nil {
		// The drain did not complete; the device holds live simulation
		// state no arena may reuse.
		sess.sess.Discard()
		s.counters.SessionsDiscarded.Add(1)
	} else {
		s.counters.SessionsDrained.Add(1)
	}
	sess.finish(res, err)
	s.remove(sess, res, err)
	return res, err
}

// janitor periodically reclaims idle sessions: each is drained (final
// Result checkpointed) and its device returns to the arena for the next
// admission.
func (s *Server) janitor(interval time.Duration) {
	defer close(s.janitorDone)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case now := <-t.C:
			s.expireIdle(now)
		}
	}
}

// expireIdle sweeps one round of idle-session reclamation.
func (s *Server) expireIdle(now time.Time) {
	s.mu.Lock()
	var idle []*session
	for _, sess := range s.sessions {
		if sess.idleFor(now) > s.opts.IdleExpiry {
			idle = append(idle, sess)
		}
	}
	s.mu.Unlock()
	for _, sess := range idle {
		// A busy session is not idle — its request will refresh lastUsed.
		if !sess.tryLock() {
			continue
		}
		if _, _, done := sess.finished(); done {
			// Drained by a racing request between the sweep snapshot and
			// our lock; it is already unregistered and checkpointed.
			sess.unlock()
			continue
		}
		if sess.idleFor(time.Now()) <= s.opts.IdleExpiry {
			sess.unlock()
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), s.opts.DrainTimeout)
		s.drainSession(ctx, sess)
		cancel()
		sess.unlock()
		s.counters.SessionsExpired.Add(1)
	}
}

// Sessions lists the open sessions for the listing endpoint and /metrics.
func (s *Server) Sessions() []SessionInfo {
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	now := time.Now()
	infos := make([]SessionInfo, 0, len(sessions))
	for _, sess := range sessions {
		snap, _, _ := sess.observe()
		infos = append(infos, SessionInfo{
			ID:            sess.id,
			SimTimeNS:     snap.SimTimeNS,
			WallNS:        now.Sub(sess.wallStart).Nanoseconds(),
			Backlog:       snap.IOsSubmitted - snap.IOsCompleted,
			IdleNS:        sess.idleFor(now).Nanoseconds(),
			MaxBacklog:    sess.maxBacklog,
			ReadRetries:   snap.ReadRetries,
			ProgramFails:  snap.ProgramFails,
			RetiredBlocks: snap.RetiredBlocks,
			FailedIOs:     snap.FailedIOs,
			Degraded:      snap.DegradedMode,
		})
	}
	return infos
}

// Draining reports whether Close has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Close drains the server: new opens are rejected, the janitor stops, and
// every open session is drained to its final Result (devices returned to
// the arena) within ctx — the graceful-shutdown path, so a SIGTERM still
// checkpoints every accepted session. Sessions that cannot finish in time
// are discarded; the first such failure is returned.
func (s *Server) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	// Stop the janitor before snapshotting the open set so its final
	// sweep cannot drain a session this loop is about to visit.
	if s.janitorStop != nil {
		close(s.janitorStop)
		<-s.janitorDone
	}

	s.mu.Lock()
	open := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		open = append(open, sess)
	}
	s.mu.Unlock()

	var firstErr error
	for _, sess := range open {
		if err := sess.lock(ctx); err != nil {
			// The session is wedged behind a request that will not finish
			// within the drain budget. Discarding it here would race the
			// lock holder, which is still mutating the single-threaded
			// simulation — instead doom it: the discard happens the moment
			// the holder releases the lock (moot if the process exits
			// first; the device dies with it either way).
			go func(sess *session, err error) {
				sess.sem <- struct{}{}
				defer sess.unlock()
				if _, _, done := sess.finished(); done {
					return
				}
				sess.sess.Discard()
				sess.finish(nil, err)
				s.remove(sess, nil, err)
				s.counters.SessionsDiscarded.Add(1)
			}(sess, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if _, _, done := sess.finished(); done {
			// Already drained — e.g. a client POST /drain in flight when
			// shutdown began. Its Result is checkpointed; nothing to do.
			sess.unlock()
			continue
		}
		dctx := ctx
		var cancel context.CancelFunc
		if s.opts.DrainTimeout > 0 {
			dctx, cancel = context.WithTimeout(ctx, s.opts.DrainTimeout)
		}
		if _, err := s.drainSession(dctx, sess); err != nil && firstErr == nil {
			firstErr = err
		}
		if cancel != nil {
			cancel()
		}
		sess.unlock()
	}
	return firstErr
}
