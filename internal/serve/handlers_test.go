package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sprinkler"
)

// testOptions is a small fast platform with tight budgets, suitable for
// exercising the admission-control paths deterministically.
func testOptions() Options {
	cfg := sprinkler.DefaultConfig()
	cfg.Channels = 2
	cfg.ChipsPerChan = 2
	cfg.BlocksPerPlane = 64
	cfg.PagesPerBlock = 16
	cfg.QueueDepth = 16
	opts := DefaultOptions()
	opts.BaseConfig = cfg
	opts.MaxSessions = 4
	opts.MaxDevices = 4
	opts.MaxBacklog = 64
	opts.IdleExpiry = 0 // tests that want the janitor set it explicitly
	opts.RequestTimeout = 200 * time.Millisecond
	opts.DrainTimeout = 5 * time.Second
	return opts
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Close(ctx)
	})
	return srv, ts
}

// postJSON posts v and decodes the response body into out (when non-nil).
func postJSON(t *testing.T, url string, v, out any) *http.Response {
	t.Helper()
	var body bytes.Buffer
	if v != nil {
		if err := json.NewEncoder(&body).Encode(v); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(url, "application/json", &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s response: %v", url, err)
		}
	}
	return resp
}

func openSession(t *testing.T, ts *httptest.Server, req OpenRequest) OpenResponse {
	t.Helper()
	var resp OpenResponse
	r := postJSON(t, ts.URL+"/v1/sessions", req, &resp)
	if r.StatusCode != http.StatusCreated {
		t.Fatalf("open: status %d", r.StatusCode)
	}
	return resp
}

// TestOpenRejectsAtSessionCap pins the 429 + Retry-After admission path.
func TestOpenRejectsAtSessionCap(t *testing.T) {
	opts := testOptions()
	opts.MaxSessions = 2
	srv, ts := newTestServer(t, opts)

	openSession(t, ts, OpenRequest{Name: "a"})
	openSession(t, ts, OpenRequest{Name: "b"})

	resp := postJSON(t, ts.URL+"/v1/sessions", OpenRequest{Name: "c"}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity open: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response carries no Retry-After")
	}
	if got := srv.Counters().RejectedSession.Load(); got != 1 {
		t.Fatalf("RejectedSession = %d, want 1", got)
	}

	// Draining a session frees the slot.
	if r := postJSON(t, ts.URL+"/v1/sessions/a/drain", nil, nil); r.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d", r.StatusCode)
	}
	openSession(t, ts, OpenRequest{Name: "c"})
}

// TestOpenRejectsAtDeviceBudget pins the 503 + Retry-After path when the
// arena's device budget is exhausted below the session cap.
func TestOpenRejectsAtDeviceBudget(t *testing.T) {
	opts := testOptions()
	opts.MaxSessions = 8
	opts.MaxDevices = 2
	srv, ts := newTestServer(t, opts)

	openSession(t, ts, OpenRequest{Name: "a"})
	openSession(t, ts, OpenRequest{Name: "b"})

	resp := postJSON(t, ts.URL+"/v1/sessions", OpenRequest{Name: "c"}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-budget open: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 response carries no Retry-After")
	}
	if got := srv.Counters().RejectedDevice.Load(); got != 1 {
		t.Fatalf("RejectedDevice = %d, want 1", got)
	}
}

// TestDuplicateNameConflicts: opening an already-open name is a 409.
func TestDuplicateNameConflicts(t *testing.T) {
	_, ts := newTestServer(t, testOptions())
	openSession(t, ts, OpenRequest{Name: "dup"})
	if resp := postJSON(t, ts.URL+"/v1/sessions", OpenRequest{Name: "dup"}, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate open: status %d, want 409", resp.StatusCode)
	}
}

// TestBusySessionTimesOut pins the request-timeout path: a request against
// a session whose simulation lock is held gets 503 + Retry-After once the
// server's request timeout elapses.
func TestBusySessionTimesOut(t *testing.T) {
	opts := testOptions()
	opts.RequestTimeout = 50 * time.Millisecond
	srv, ts := newTestServer(t, opts)

	sess, _, err := srv.Open(OpenRequest{Name: "busy"})
	if err != nil {
		t.Fatal(err)
	}
	// Hold the simulation lock, as a long-running Advance would.
	if err := sess.lock(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer sess.unlock()

	start := time.Now()
	resp := postJSON(t, ts.URL+"/v1/sessions/busy/advance", AdvanceRequest{DNS: 1}, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("busy session: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("busy 503 carries no Retry-After")
	}
	if waited := time.Since(start); waited < opts.RequestTimeout {
		t.Fatalf("rejected after %v, before the %v request timeout", waited, opts.RequestTimeout)
	}
	if got := srv.Counters().RejectedBusy.Load(); got != 1 {
		t.Fatalf("RejectedBusy = %d, want 1", got)
	}
}

// TestSubmitBacklogBudget: submits beyond the per-session backlog budget
// are rejected with 429 until the session advances.
func TestSubmitBacklogBudget(t *testing.T) {
	opts := testOptions()
	opts.MaxBacklog = 8
	srv, ts := newTestServer(t, opts)
	openSession(t, ts, OpenRequest{Name: "s"})

	reqs := make([]IORequest, 8)
	for i := range reqs {
		reqs[i] = IORequest{LPN: int64(i * 8), Pages: 1}
	}
	var sub SubmitResponse
	if r := postJSON(t, ts.URL+"/v1/sessions/s/submit", SubmitRequest{Requests: reqs}, &sub); r.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %d", r.StatusCode)
	}
	if sub.Backlog != 8 {
		t.Fatalf("backlog = %d, want 8", sub.Backlog)
	}

	resp := postJSON(t, ts.URL+"/v1/sessions/s/submit",
		SubmitRequest{Requests: []IORequest{{LPN: 0, Pages: 1}}}, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("backlog 429 carries no Retry-After")
	}
	if got := srv.Counters().RejectedBacklog.Load(); got != 1 {
		t.Fatalf("RejectedBacklog = %d, want 1", got)
	}

	// Advancing clears the backlog and re-opens admission.
	var snap sprinkler.Snapshot
	if r := postJSON(t, ts.URL+"/v1/sessions/s/advance", AdvanceRequest{DNS: int64(time.Second)}, &snap); r.StatusCode != http.StatusOK {
		t.Fatalf("advance: status %d", r.StatusCode)
	}
	if snap.IOsCompleted != 8 {
		t.Fatalf("advance completed %d I/Os, want 8", snap.IOsCompleted)
	}
	if r := postJSON(t, ts.URL+"/v1/sessions/s/submit",
		SubmitRequest{Requests: []IORequest{{LPN: 0, Pages: 1}}}, nil); r.StatusCode != http.StatusOK {
		t.Fatalf("post-advance submit: status %d", r.StatusCode)
	}
}

// TestFeedClampsToBacklogBudget: a bounded feed larger than the budget
// admits exactly the headroom and reports it, so clients make progress
// under backpressure instead of failing.
func TestFeedClampsToBacklogBudget(t *testing.T) {
	opts := testOptions()
	opts.MaxBacklog = 16
	_, ts := newTestServer(t, opts)
	openSession(t, ts, OpenRequest{Name: "f"})

	var feed FeedResponse
	spec := FeedSpec{Workload: &WorkloadSpec{Name: "cfs0", Requests: 100}}
	if r := postJSON(t, ts.URL+"/v1/sessions/f/feed", spec, &feed); r.StatusCode != http.StatusOK {
		t.Fatalf("feed: status %d", r.StatusCode)
	}
	if feed.Fed != 16 {
		t.Fatalf("feed admitted %d, want the 16-request headroom", feed.Fed)
	}

	// At the budget: the next feed is rejected until the session advances.
	if r := postJSON(t, ts.URL+"/v1/sessions/f/feed", FeedSpec{}, nil); r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("feed at budget: status %d, want 429", r.StatusCode)
	}
	postJSON(t, ts.URL+"/v1/sessions/f/advance", AdvanceRequest{DNS: int64(time.Second)}, nil)

	// Continuation feed (no spec) pulls the rest of the same stream.
	total := int64(16)
	for range 16 {
		if r := postJSON(t, ts.URL+"/v1/sessions/f/feed", FeedSpec{}, &feed); r.StatusCode != http.StatusOK {
			t.Fatalf("continuation feed: status %d", r.StatusCode)
		}
		postJSON(t, ts.URL+"/v1/sessions/f/advance", AdvanceRequest{DNS: int64(time.Second)}, nil)
		total += feed.Fed
		if feed.Fed == 0 {
			break
		}
	}
	if total != 100 {
		t.Fatalf("stream fed %d requests across feeds, want 100", total)
	}

	var res sprinkler.Result
	if r := postJSON(t, ts.URL+"/v1/sessions/f/drain", nil, &res); r.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d", r.StatusCode)
	}
	if res.IOsCompleted != 100 {
		t.Fatalf("drained %d I/Os, want 100", res.IOsCompleted)
	}
}

// TestFeedRejectsUnboundedDrain: with no backlog budget and no count, an
// infinite workload must not wedge the daemon.
func TestFeedRejectsUnboundedDrain(t *testing.T) {
	opts := testOptions()
	opts.MaxBacklog = 0 // unbounded sessions
	_, ts := newTestServer(t, opts)
	openSession(t, ts, OpenRequest{Name: "u"})

	spec := FeedSpec{Workload: &WorkloadSpec{Name: "cfs0"}} // Requests 0 = infinite
	if r := postJSON(t, ts.URL+"/v1/sessions/u/feed", spec, nil); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("unbounded drain: status %d, want 400", r.StatusCode)
	}
	// With an explicit count the same stream is fine.
	var feed FeedResponse
	if r := postJSON(t, ts.URL+"/v1/sessions/u/feed", FeedSpec{Workload: &WorkloadSpec{Name: "cfs0"}, Count: 10}, &feed); r.StatusCode != http.StatusOK {
		t.Fatalf("counted feed: status %d", r.StatusCode)
	}
	if feed.Fed != 10 {
		t.Fatalf("fed %d, want 10", feed.Fed)
	}
}

// TestUnknownSessionIs404 covers the lookup path for every session verb.
func TestUnknownSessionIs404(t *testing.T) {
	_, ts := newTestServer(t, testOptions())
	for _, ep := range []string{"submit", "feed", "advance", "drain"} {
		if r := postJSON(t, ts.URL+"/v1/sessions/nope/"+ep, nil, nil); r.StatusCode != http.StatusNotFound {
			t.Fatalf("%s on unknown session: status %d, want 404", ep, r.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/sessions/nope/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("snapshot on unknown session: status %d, want 404", resp.StatusCode)
	}
}

// TestIdleExpiryReclaims: an idle session is drained by the janitor, its
// Result checkpointed, and its device returned to the arena so the next
// open is a warm hit.
func TestIdleExpiryReclaims(t *testing.T) {
	opts := testOptions()
	opts.IdleExpiry = 50 * time.Millisecond
	srv, ts := newTestServer(t, opts)

	openSession(t, ts, OpenRequest{Name: "idle"})
	var feed FeedResponse
	spec := FeedSpec{Workload: &WorkloadSpec{Name: "cfs0", Requests: 20}}
	if r := postJSON(t, ts.URL+"/v1/sessions/idle/feed", spec, &feed); r.StatusCode != http.StatusOK {
		t.Fatalf("feed: status %d", r.StatusCode)
	}

	deadline := time.Now().Add(5 * time.Second)
	for srv.Counters().SessionsExpired.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("janitor never expired the idle session")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := len(srv.Sessions()); n != 0 {
		t.Fatalf("%d sessions still open after expiry", n)
	}

	// The expiry drained the session: its Result is checkpointed with the
	// fed I/Os completed.
	res, rerr, ok := srv.Result("idle")
	if !ok || rerr != nil || res == nil {
		t.Fatalf("expired session has no checkpointed Result (ok=%v err=%v)", ok, rerr)
	}
	if res.IOsCompleted != feed.Fed {
		t.Fatalf("checkpointed Result completed %d I/Os, fed %d", res.IOsCompleted, feed.Fed)
	}
	resp, err := http.Get(ts.URL + "/v1/results/idle")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/results/idle: status %d", resp.StatusCode)
	}

	// The reclaimed device is back in the arena: same-topology open hits.
	before := srv.ArenaStats().DeviceHits
	openSession(t, ts, OpenRequest{Name: "warm"})
	if after := srv.ArenaStats().DeviceHits; after != before+1 {
		t.Fatalf("open after expiry was not a warm arena hit (hits %d -> %d)", before, after)
	}
}

// TestGracefulClose: Close drains every open session to a checkpointed
// final Result and rejects new opens while draining.
func TestGracefulClose(t *testing.T) {
	opts := testOptions()
	srv, ts := newTestServer(t, opts)

	fed := map[string]int64{}
	for _, id := range []string{"a", "b", "c"} {
		openSession(t, ts, OpenRequest{Name: id})
		var feed FeedResponse
		spec := FeedSpec{Workload: &WorkloadSpec{Name: "cfs1", Requests: 30}}
		if r := postJSON(t, ts.URL+"/v1/sessions/"+id+"/feed", spec, &feed); r.StatusCode != http.StatusOK {
			t.Fatalf("feed %s: status %d", id, r.StatusCode)
		}
		fed[id] = feed.Fed
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if n := len(srv.Sessions()); n != 0 {
		t.Fatalf("%d sessions open after Close", n)
	}
	for id, want := range fed {
		res, rerr, ok := srv.Result(id)
		if !ok || rerr != nil || res == nil {
			t.Fatalf("session %s has no checkpointed Result after Close (ok=%v err=%v)", id, ok, rerr)
		}
		if res.IOsCompleted != want {
			t.Fatalf("session %s drained %d I/Os, fed %d", id, res.IOsCompleted, want)
		}
	}
	if resp := postJSON(t, ts.URL+"/v1/sessions", OpenRequest{Name: "late"}, nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open while draining: status %d, want 503", resp.StatusCode)
	}
}

// TestOpenRacingRequestNeverSeesHalfBuiltSession: a request racing an
// Open of the same name (the client chose it) must queue on the
// simulation lock or 404/503 — never observe the session between map
// insertion and device construction (a nil sess.sess panicked here).
func TestOpenRacingRequestNeverSeesHalfBuiltSession(t *testing.T) {
	opts := testOptions()
	_, ts := newTestServer(t, opts)

	for round := range 3 {
		name := fmt.Sprintf("race-%d", round)
		stop := make(chan struct{})
		errs := make(chan error, 1)
		go func() {
			for {
				select {
				case <-stop:
					errs <- nil
					return
				default:
				}
				var body bytes.Buffer
				json.NewEncoder(&body).Encode(AdvanceRequest{DNS: 1})
				resp, err := http.Post(ts.URL+"/v1/sessions/"+name+"/advance", "application/json", &body)
				if err != nil {
					errs <- fmt.Errorf("advance during open failed transport-level (handler panic?): %w", err)
					return
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK, http.StatusNotFound, http.StatusServiceUnavailable:
					// Before the insert, queued past the request timeout, or
					// after the build completed — all fine.
				default:
					errs <- fmt.Errorf("advance during open: status %d", resp.StatusCode)
					return
				}
			}
		}()
		// GCStress preconditioning makes the build slow, widening the
		// window between map insertion and sess.sess assignment.
		openSession(t, ts, OpenRequest{Name: name, GCStress: true})
		close(stop)
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
		if r := postJSON(t, ts.URL+"/v1/sessions/"+name+"/drain", nil, nil); r.StatusCode != http.StatusOK {
			t.Fatalf("drain: status %d", r.StatusCode)
		}
	}
}

// TestDrainSessionIdempotent: draining a session that already reached its
// terminal state returns the checkpointed Result instead of failing with
// errClosed, counting a spurious Discard, and shadowing the clean Result —
// the Close-vs-client-drain and janitor-vs-client-drain races.
func TestDrainSessionIdempotent(t *testing.T) {
	srv, ts := newTestServer(t, testOptions())
	sess, _, err := srv.Open(OpenRequest{Name: "x"})
	if err != nil {
		t.Fatal(err)
	}
	spec := FeedSpec{Workload: &WorkloadSpec{Name: "cfs0", Requests: 10}}
	if r := postJSON(t, ts.URL+"/v1/sessions/x/feed", spec, nil); r.StatusCode != http.StatusOK {
		t.Fatalf("feed: status %d", r.StatusCode)
	}

	ctx := context.Background()
	if err := sess.lock(ctx); err != nil {
		t.Fatal(err)
	}
	defer sess.unlock()
	res1, err := srv.drainSession(ctx, sess)
	if err != nil || res1 == nil {
		t.Fatalf("first drain: res=%v err=%v", res1, err)
	}
	res2, err := srv.drainSession(ctx, sess)
	if err != nil {
		t.Fatalf("second drain errored instead of returning the checkpoint: %v", err)
	}
	if res2 != res1 {
		t.Fatalf("second drain returned a different result (%p vs %p)", res2, res1)
	}
	if got := srv.Counters().SessionsDiscarded.Load(); got != 0 {
		t.Fatalf("SessionsDiscarded = %d after a double drain, want 0", got)
	}
	resp, err := http.Get(ts.URL + "/v1/results/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/results/x: status %d, want the clean Result", resp.StatusCode)
	}
}

// TestCloseDefersDiscardOfWedgedSession: when a session cannot be locked
// within Close's budget, the discard must wait for the wedged request to
// release the lock — Discard mutates the single-threaded simulation and
// must never run concurrently with its holder.
func TestCloseDefersDiscardOfWedgedSession(t *testing.T) {
	srv, _ := newTestServer(t, testOptions())
	sess, _, err := srv.Open(OpenRequest{Name: "wedged"})
	if err != nil {
		t.Fatal(err)
	}
	// Hold the simulation lock, as a request stuck in a long Advance would.
	if err := sess.lock(context.Background()); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Close(ctx); err == nil {
		t.Fatal("Close with a wedged session returned nil")
	}
	if got := srv.Counters().SessionsDiscarded.Load(); got != 0 {
		t.Fatal("session discarded while the wedged request still held the lock")
	}

	sess.unlock() // the wedged request finishes
	deadline := time.Now().Add(5 * time.Second)
	for srv.Counters().SessionsDiscarded.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("doomed session was never discarded after the lock released")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := len(srv.Sessions()); n != 0 {
		t.Fatalf("%d sessions still registered after the deferred discard", n)
	}
}

// TestWatchLongPoll: a watch blocks until simulated time moves past
// sinceNS, then returns the newer snapshot.
func TestWatchLongPoll(t *testing.T) {
	_, ts := newTestServer(t, testOptions())
	openSession(t, ts, OpenRequest{Name: "w"})
	spec := FeedSpec{Workload: &WorkloadSpec{Name: "cfs0", Requests: 10}}
	if r := postJSON(t, ts.URL+"/v1/sessions/w/feed", spec, nil); r.StatusCode != http.StatusOK {
		t.Fatalf("feed: status %d", r.StatusCode)
	}

	go func() {
		time.Sleep(50 * time.Millisecond)
		postJSON(t, ts.URL+"/v1/sessions/w/advance", AdvanceRequest{DNS: int64(time.Second)}, nil)
	}()

	start := time.Now()
	resp, err := http.Get(ts.URL + "/v1/sessions/w/watch?sinceNS=0&timeoutMS=5000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap sprinkler.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.SimTimeNS <= 0 {
		t.Fatalf("watch returned a snapshot that never advanced: %+v", snap)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("watch returned before the advance that should have woken it")
	}
}

// TestWatchSSE: the SSE stream emits snapshot events as the simulation
// advances and a close event when the session drains.
func TestWatchSSE(t *testing.T) {
	_, ts := newTestServer(t, testOptions())
	openSession(t, ts, OpenRequest{Name: "sse"})
	spec := FeedSpec{Workload: &WorkloadSpec{Name: "cfs0", Requests: 10}}
	if r := postJSON(t, ts.URL+"/v1/sessions/sse/feed", spec, nil); r.StatusCode != http.StatusOK {
		t.Fatalf("feed: status %d", r.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/v1/sessions/sse/watch?stream=sse")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	go func() {
		time.Sleep(20 * time.Millisecond)
		postJSON(t, ts.URL+"/v1/sessions/sse/advance", AdvanceRequest{DNS: int64(time.Second)}, nil)
		postJSON(t, ts.URL+"/v1/sessions/sse/drain", nil, nil)
	}()

	sc := bufio.NewScanner(resp.Body)
	var events []string
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "event: ") {
			events = append(events, strings.TrimPrefix(line, "event: "))
		}
		if line == "event: close" {
			break
		}
	}
	if len(events) < 2 || events[len(events)-1] != "close" {
		t.Fatalf("SSE stream events = %v, want snapshot updates then close", events)
	}
	for _, ev := range events[:len(events)-1] {
		if ev != "snapshot" {
			t.Fatalf("unexpected SSE event %q in %v", ev, events)
		}
	}
}

// TestMetricsExposition: the required series exist and carry per-session
// gauges while sessions are open.
func TestMetricsExposition(t *testing.T) {
	_, ts := newTestServer(t, testOptions())
	openSession(t, ts, OpenRequest{Name: "m"})
	postJSON(t, ts.URL+"/v1/sessions/m/feed", FeedSpec{Workload: &WorkloadSpec{Name: "cfs0", Requests: 5}}, nil)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, series := range []string{
		"sprinklerd_sessions_open 1",
		"sprinklerd_sessions_opened_total 1",
		"sprinklerd_requests_admitted_total",
		"sprinklerd_ios_submitted_total 5",
		"sprinklerd_arena_device_misses_total",
		`sprinklerd_session_sim_time_ns{session="m"}`,
		`sprinklerd_session_wall_time_ns{session="m"}`,
		`sprinklerd_session_backlog{session="m"}`,
	} {
		if !strings.Contains(text, series) {
			t.Fatalf("metrics exposition is missing %q:\n%s", series, text)
		}
	}
}

// TestSeriesBudgetClamped: a session asking for a larger latency-series
// window than the server budget is clamped to it.
func TestSeriesBudgetClamped(t *testing.T) {
	opts := testOptions()
	opts.SeriesWindow = 32
	_, ts := newTestServer(t, opts)

	resp := openSession(t, ts, OpenRequest{Name: "s", CollectSeries: true, SeriesWindow: 1 << 20})
	if resp.SeriesWindow != 32 {
		t.Fatalf("series window = %d, want clamp to the 32 budget", resp.SeriesWindow)
	}
	spec := FeedSpec{Workload: &WorkloadSpec{Name: "cfs0", Requests: 64}}
	if r := postJSON(t, ts.URL+"/v1/sessions/s/feed", spec, nil); r.StatusCode != http.StatusOK {
		t.Fatalf("feed: status %d", r.StatusCode)
	}
	var res sprinkler.Result
	if r := postJSON(t, ts.URL+"/v1/sessions/s/drain", nil, &res); r.StatusCode != http.StatusOK {
		t.Fatalf("drain: status %d", r.StatusCode)
	}
	if len(res.Series) == 0 || len(res.Series) > 32 {
		t.Fatalf("series has %d points, want 1..32", len(res.Series))
	}
}

// TestDiscard: DELETE abandons the session without a Result and without
// returning the device to the arena.
func TestDiscard(t *testing.T) {
	srv, ts := newTestServer(t, testOptions())
	openSession(t, ts, OpenRequest{Name: "d"})
	postJSON(t, ts.URL+"/v1/sessions/d/feed", FeedSpec{Workload: &WorkloadSpec{Name: "cfs0", Requests: 5}}, nil)

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/d", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("discard: status %d, want 204", resp.StatusCode)
	}
	if n := len(srv.Sessions()); n != 0 {
		t.Fatalf("%d sessions open after discard", n)
	}
	if got := srv.Counters().SessionsDiscarded.Load(); got != 1 {
		t.Fatalf("SessionsDiscarded = %d, want 1", got)
	}
}

// TestOpenRejectsInvalidFaultSpec: fault knobs ride the open request
// through Config.Validate, so malformed specs are a 400, not a panic or a
// silently clamped session.
func TestOpenRejectsInvalidFaultSpec(t *testing.T) {
	_, ts := newTestServer(t, testOptions())
	for _, spec := range []sprinkler.FaultSpec{
		{ReadFailProb: 2},
		{ProgramFailProb: -0.1},
		{ReadRetryMax: -1},
		{OutageDurNS: 100},                      // duration without a period
		{OutagePeriodNS: 100, OutageDurNS: 100}, // window covers the whole period
		{SpareBlockFrac: 1},
	} {
		spec := spec
		resp := postJSON(t, ts.URL+"/v1/sessions", OpenRequest{Faults: &spec}, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("open with fault spec %+v: status %d, want 400", spec, resp.StatusCode)
		}
	}
	// A valid spec on the same server still opens.
	openSession(t, ts, OpenRequest{Name: "ok", Faults: &sprinkler.FaultSpec{ReadFailProb: 0.01, ReadRetryMax: 2}})
}

// TestFaultSessionMetrics: a session opened with an aggressive fault spec
// surfaces its fault counters in the session listing and the Prometheus
// exposition.
func TestFaultSessionMetrics(t *testing.T) {
	srv, ts := newTestServer(t, testOptions())
	openSession(t, ts, OpenRequest{
		Name: "f",
		Faults: &sprinkler.FaultSpec{
			ReadFailProb:    0.4,
			ProgramFailProb: 0.2,
			ReadRetryMax:    3,
			ReadRetryMult:   2,
			RewriteMax:      3,
			Seed:            17,
		},
	})
	postJSON(t, ts.URL+"/v1/sessions/f/feed", FeedSpec{Workload: &WorkloadSpec{Name: "cfs1", Requests: 60}}, nil)
	if r := postJSON(t, ts.URL+"/v1/sessions/f/advance", AdvanceRequest{DNS: int64(time.Second)}, nil); r.StatusCode != http.StatusOK {
		t.Fatalf("advance: status %d", r.StatusCode)
	}

	var info SessionInfo
	for _, s := range srv.Sessions() {
		if s.ID == "f" {
			info = s
		}
	}
	if info.ID != "f" {
		t.Fatal("session f missing from listing")
	}
	if info.ReadRetries == 0 {
		t.Fatalf("session listing shows no read retries under a 40%% read-fail rate: %+v", info)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, series := range []string{
		`sprinklerd_session_fault_read_retries{session="f"}`,
		`sprinklerd_session_fault_program_fails{session="f"}`,
		`sprinklerd_session_fault_retired_blocks{session="f"}`,
		`sprinklerd_session_fault_failed_ios{session="f"}`,
		`sprinklerd_session_fault_degraded{session="f"} 0`,
	} {
		if !strings.Contains(text, series) {
			t.Fatalf("metrics exposition is missing %q:\n%s", series, text)
		}
	}
}
