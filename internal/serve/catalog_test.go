package serve

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
)

// TestListSnapshots pins the snapshot catalog: every file in the daemon's
// -snapshot-dir is listed sorted by name, valid images carry the config
// summary and aged stats, a corrupt file is surfaced with Error set, and
// subdirectories are skipped.
func TestListSnapshots(t *testing.T) {
	dir := t.TempDir()
	snap := writeWarmState(t, dir, "aged.snap")
	if err := os.WriteFile(filepath.Join(dir, "corrupt.snap"), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "subdir"), 0o755); err != nil {
		t.Fatal(err)
	}
	opts := testOptions()
	opts.SnapshotDir = dir
	_, ts := newTestServer(t, opts)

	resp, err := http.Get(ts.URL + "/v1/snapshots")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	var list ListSnapshotsResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Snapshots) != 2 {
		t.Fatalf("got %d rows, want 2 (subdir skipped): %+v", len(list.Snapshots), list.Snapshots)
	}

	good := list.Snapshots[0]
	if good.Name != "aged.snap" || good.Error != "" {
		t.Fatalf("first row should be the valid image: %+v", good)
	}
	cfg := snap.Config()
	if good.Config == nil || good.Config.Channels != cfg.Channels ||
		good.Config.ChipsPerChan != cfg.ChipsPerChan ||
		good.Config.Scheduler != string(cfg.Scheduler) ||
		good.Config.LogicalPages != cfg.LogicalPages ||
		good.Config.GCEnabled != !cfg.DisableGC {
		t.Errorf("config summary mismatch: %+v vs %+v", good.Config, cfg)
	}
	want := snap.Stats()
	if good.Stats == nil || *good.Stats != want {
		t.Errorf("stats mismatch: %+v, want %+v", good.Stats, want)
	}

	bad := list.Snapshots[1]
	if bad.Name != "corrupt.snap" || bad.Error == "" || bad.Config != nil || bad.Stats != nil {
		t.Errorf("corrupt image should be listed with Error and nothing else: %+v", bad)
	}
}

// TestListSnapshotsNoDir pins the 404 when the daemon was started without
// a snapshot directory.
func TestListSnapshotsNoDir(t *testing.T) {
	_, ts := newTestServer(t, testOptions())
	resp, err := http.Get(ts.URL + "/v1/snapshots")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}
