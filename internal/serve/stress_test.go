package serve_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sprinkler"
	"sprinkler/internal/serve"
	"sprinkler/internal/serve/client"
)

// stressConfig is a deliberately small topology so 64+ concurrent devices
// stay cheap under -race.
func stressConfig() sprinkler.Config {
	cfg := sprinkler.DefaultConfig()
	cfg.Channels = 2
	cfg.ChipsPerChan = 2
	cfg.BlocksPerPlane = 64
	cfg.PagesPerBlock = 16
	cfg.QueueDepth = 16
	return cfg
}

// TestConcurrentSessionsStress is the daemon's concurrency acceptance
// test, meant to run under -race: 64 sessions open and run concurrently
// against one bounded arena (with extra churn workers retrying through
// 429/503 backpressure), a subset is abandoned mid-flight for the idle
// janitor to reclaim, and every accepted session must drain to an
// isolated, self-consistent final Result.
func TestConcurrentSessionsStress(t *testing.T) {
	const (
		concurrent = 64 // sessions held open simultaneously
		churn      = 24 // extra workers competing through backpressure
		abandoned  = 8  // of the concurrent workers, left for the janitor
	)

	opts := serve.DefaultOptions()
	opts.BaseConfig = stressConfig()
	opts.MaxSessions = concurrent
	opts.MaxDevices = concurrent
	opts.MaxBacklog = 256
	// Long enough that a worker's inter-request gap under -race never
	// counts as idle, short enough that the abandoned sessions are
	// reclaimed while the churn workers still run.
	opts.IdleExpiry = 3 * time.Second
	opts.RequestTimeout = 10 * time.Second
	opts.DrainTimeout = 10 * time.Second

	srv := serve.NewServer(opts)
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Close(ctx)
	}()
	c := client.New(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	schedulers := []string{"SPK3", "VAS", "PAS", "SPK2", "SPK1"}
	workloads := []string{"cfs0", "cfs1", "hm1", "proj3"}

	// Phase 1: 64 workers open concurrently and hold their sessions until
	// everyone is in — the arena must genuinely sustain 64 checked-out
	// devices at once.
	var opened sync.WaitGroup
	opened.Add(concurrent)
	allIn := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, concurrent+churn)

	runSession := func(w int, sess *client.Session, abandon bool) error {
		sched := schedulers[w%len(schedulers)]
		requests := int64(40 + w%7*8)
		var fed int64
		if w%2 == 0 {
			// Feed mode: the server builds the workload.
			spec := serve.FeedSpec{
				Workload: &serve.WorkloadSpec{Name: workloads[w%len(workloads)], Requests: int(requests)},
				Seed:     uint64(w + 1),
			}
			for fed < requests {
				fr, err := sess.Feed(ctx, spec)
				if err != nil {
					if apiErr, ok := err.(*client.APIError); ok && apiErr.Retryable() {
						if _, err := sess.Advance(ctx, int64(50*time.Millisecond)); err != nil {
							return fmt.Errorf("worker %d advance-for-headroom: %w", w, err)
						}
						continue
					}
					return fmt.Errorf("worker %d feed: %w", w, err)
				}
				fed += fr.Fed
				spec = serve.FeedSpec{} // continuation: same stream
				if fr.Fed == 0 {
					break
				}
			}
		} else {
			// Submit mode: distinct per-worker LPN pattern in batches.
			for fed < requests {
				batch := make([]serve.IORequest, 0, 8)
				for len(batch) < 8 && fed+int64(len(batch)) < requests {
					i := fed + int64(len(batch))
					batch = append(batch, serve.IORequest{
						LPN:   (int64(w)*131 + i*7) % 1024,
						Pages: 1 + int(i%4),
						Write: i%3 == 0,
					})
				}
				if _, err := sess.Submit(ctx, batch...); err != nil {
					if apiErr, ok := err.(*client.APIError); ok && apiErr.Retryable() {
						if _, err := sess.Advance(ctx, int64(50*time.Millisecond)); err != nil {
							return fmt.Errorf("worker %d advance-for-headroom: %w", w, err)
						}
						continue
					}
					return fmt.Errorf("worker %d submit: %w", w, err)
				}
				fed += int64(len(batch))
			}
		}
		if fed != requests {
			return fmt.Errorf("worker %d fed %d of %d requests", w, fed, requests)
		}

		// Mixed observation while advancing the backlog down.
		var last sprinkler.Snapshot
		for i := 0; ; i++ {
			snap, err := sess.Advance(ctx, int64(20*time.Millisecond))
			if err != nil {
				return fmt.Errorf("worker %d advance: %w", w, err)
			}
			if snap.IOsCompleted > requests {
				return fmt.Errorf("worker %d: session leaked I/Os across sessions: completed %d of %d",
					w, snap.IOsCompleted, requests)
			}
			switch i % 3 {
			case 0:
				if _, err := sess.Snapshot(ctx); err != nil {
					return fmt.Errorf("worker %d snapshot: %w", w, err)
				}
			case 1:
				if _, err := sess.Watch(ctx, last.SimTimeNS, 50*time.Millisecond); err != nil {
					return fmt.Errorf("worker %d watch: %w", w, err)
				}
			}
			last = snap
			if snap.IOsCompleted == requests {
				break
			}
			if i > 10000 {
				return fmt.Errorf("worker %d: backlog never cleared (%d of %d)", w, snap.IOsCompleted, requests)
			}
		}

		if abandon {
			// Leave the session for the idle janitor; its checkpointed
			// Result is verified after the workers finish.
			return nil
		}
		res, err := sess.Drain(ctx)
		if err != nil {
			return fmt.Errorf("worker %d drain: %w", w, err)
		}
		if res.IOsCompleted != requests {
			return fmt.Errorf("worker %d: result completed %d of %d I/Os (isolation violated)",
				w, res.IOsCompleted, requests)
		}
		if res.Scheduler != sched {
			return fmt.Errorf("worker %d: result scheduler %q, want %q (session state leaked)",
				w, res.Scheduler, sched)
		}
		return nil
	}

	abandonedIDs := make([]string, 0, abandoned)
	abandonedWant := make(map[string]int64)
	var abandonedMu sync.Mutex

	for w := 0; w < concurrent; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess, err := c.Open(ctx, serve.OpenRequest{
				Name:      fmt.Sprintf("hold-%d", w),
				Scheduler: schedulers[w%len(schedulers)],
				Seed:      uint64(w + 1),
			})
			if err != nil {
				opened.Done()
				errs <- fmt.Errorf("worker %d open: %w", w, err)
				return
			}
			opened.Done()
			<-allIn // hold until all 64 are open at once
			abandon := w < abandoned
			if abandon {
				abandonedMu.Lock()
				abandonedIDs = append(abandonedIDs, sess.ID)
				abandonedWant[sess.ID] = int64(40 + w%7*8)
				abandonedMu.Unlock()
			}
			if err := runSession(w, sess, abandon); err != nil {
				errs <- err
			}
		}(w)
	}

	opened.Wait()
	if got := len(srv.Sessions()); got != concurrent {
		close(allIn)
		wg.Wait()
		t.Fatalf("only %d sessions concurrently open, want %d", got, concurrent)
	}
	// The arena is saturated: one more open must be rejected with
	// backpressure, not admitted or hung.
	if _, err := c.Open(ctx, serve.OpenRequest{Name: "overflow"}); err == nil {
		t.Fatal("65th concurrent open was admitted past the device budget")
	} else if apiErr, ok := err.(*client.APIError); !ok || !apiErr.Retryable() || apiErr.RetryAfter <= 0 {
		t.Fatalf("65th open rejection not retryable backpressure: %v", err)
	}
	close(allIn)

	// Phase 2: churn workers compete for freed slots through OpenWait's
	// 429/503 retry loop.
	for w := concurrent; w < concurrent+churn; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess, err := c.OpenWait(ctx, serve.OpenRequest{
				Name:      fmt.Sprintf("churn-%d", w),
				Scheduler: schedulers[w%len(schedulers)],
				Seed:      uint64(w + 1),
			})
			if err != nil {
				errs <- fmt.Errorf("churn worker %d open: %w", w, err)
				return
			}
			if err := runSession(w, sess, false); err != nil {
				errs <- err
			}
		}(w)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// The abandoned sessions expire mid-flight and are drained by the
	// janitor with their devices recycled; each checkpointed Result must
	// carry exactly its own session's I/Os.
	deadline := time.Now().Add(30 * time.Second)
	for srv.Counters().SessionsExpired.Load() < abandoned {
		if time.Now().After(deadline) {
			t.Fatalf("janitor expired %d of %d abandoned sessions",
				srv.Counters().SessionsExpired.Load(), abandoned)
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, id := range abandonedIDs {
		res, rerr, ok := srv.Result(id)
		if !ok || rerr != nil || res == nil {
			t.Fatalf("abandoned session %s has no checkpointed Result (ok=%v err=%v)", id, ok, rerr)
		}
		if res.IOsCompleted != abandonedWant[id] {
			t.Fatalf("abandoned session %s drained %d I/Os, fed %d (isolation violated)",
				id, res.IOsCompleted, abandonedWant[id])
		}
	}

	if open := srv.Sessions(); len(open) != 0 {
		t.Fatalf("%d sessions still open at the end of the stress run", len(open))
	}
	total := srv.Counters().SessionsDrained.Load()
	if want := uint64(concurrent + churn); total != want {
		t.Fatalf("drained %d sessions, want %d (every accepted session must produce a Result)", total, want)
	}
}

// BenchmarkDaemonSessions measures one full daemon session lifecycle —
// open against the warm arena, feed, advance to completion, drain — with
// parallel clients, the serving-path analogue of the sweep benchmarks.
func BenchmarkDaemonSessions(b *testing.B) {
	opts := serve.DefaultOptions()
	opts.BaseConfig = stressConfig()
	opts.MaxSessions = 32
	opts.MaxDevices = 32
	opts.IdleExpiry = 0
	srv := serve.NewServer(opts)
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Close(ctx)
	}()
	c := client.New(ts.URL)
	ctx := context.Background()
	var seq atomic.Int64

	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			id := seq.Add(1)
			sess, err := c.OpenWait(ctx, serve.OpenRequest{
				Name: fmt.Sprintf("bench-%d", id),
				Seed: uint64(id),
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sess.Feed(ctx, serve.FeedSpec{
				Workload: &serve.WorkloadSpec{Name: "cfs0", Requests: 32},
			}); err != nil {
				b.Fatal(err)
			}
			for {
				snap, err := sess.Advance(ctx, int64(100*time.Millisecond))
				if err != nil {
					b.Fatal(err)
				}
				if snap.IOsCompleted >= 32 {
					break
				}
			}
			res, err := sess.Drain(ctx)
			if err != nil {
				b.Fatal(err)
			}
			if res.IOsCompleted != 32 {
				b.Fatalf("completed %d of 32", res.IOsCompleted)
			}
		}
	})
}
