// Package client is the Go client for sprinklerd's HTTP API. It is the
// reference consumer of the stable wire format: the smoke/load drivers and
// CI use it, and its APIError surfaces the daemon's backpressure
// (429/503 + Retry-After) so callers can implement polite retry.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"sprinkler"
	"sprinkler/internal/serve"
)

// Client talks to one sprinklerd instance.
type Client struct {
	base string
	hc   *http.Client
}

// New builds a client for the daemon at base (e.g. "http://127.0.0.1:8080").
func New(base string) *Client {
	return &Client{base: strings.TrimRight(base, "/"), hc: &http.Client{}}
}

// APIError is a non-2xx daemon response. RetryAfter is zero unless the
// daemon asked the caller to back off.
type APIError struct {
	Status     int
	Msg        string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("sprinklerd: %d %s", e.Status, e.Msg)
}

// Retryable reports whether the daemon asked for backoff-and-retry
// (admission pressure) rather than rejecting the request outright.
func (e *APIError) Retryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// do runs one JSON round trip. in may be nil; out may be nil.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		apiErr := &APIError{Status: resp.StatusCode}
		var e serve.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil {
			apiErr.Msg = e.Error
		}
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, perr := strconv.Atoi(v); perr == nil {
				apiErr.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Open admits a new session.
func (c *Client) Open(ctx context.Context, req serve.OpenRequest) (*Session, error) {
	var resp serve.OpenResponse
	if err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &resp); err != nil {
		return nil, err
	}
	return &Session{c: c, ID: resp.ID, Info: resp}, nil
}

// OpenWait is Open with polite retry: on 429/503 it honors Retry-After
// (capped at a second) until ctx expires.
func (c *Client) OpenWait(ctx context.Context, req serve.OpenRequest) (*Session, error) {
	for {
		s, err := c.Open(ctx, req)
		var apiErr *APIError
		if err == nil || !(isAPIError(err, &apiErr) && apiErr.Retryable()) {
			return s, err
		}
		wait := apiErr.RetryAfter
		if wait <= 0 || wait > time.Second {
			wait = time.Second
		}
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func isAPIError(err error, out **APIError) bool {
	e, ok := err.(*APIError)
	if ok {
		*out = e
	}
	return ok
}

// Sessions lists the daemon's open sessions.
func (c *Client) Sessions(ctx context.Context) (serve.ListResponse, error) {
	var resp serve.ListResponse
	err := c.do(ctx, http.MethodGet, "/v1/sessions", nil, &resp)
	return resp, err
}

// Metrics scrapes the /metrics text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{Status: resp.StatusCode, Msg: string(b)}
	}
	return string(b), nil
}

// Result fetches the checkpointed Result of a closed session.
func (c *Client) Result(ctx context.Context, id string) (*sprinkler.Result, error) {
	var res sprinkler.Result
	if err := c.do(ctx, http.MethodGet, "/v1/results/"+url.PathEscape(id), nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Session is an open daemon session.
type Session struct {
	c    *Client
	ID   string
	Info serve.OpenResponse
}

func (s *Session) path(op string) string {
	p := "/v1/sessions/" + url.PathEscape(s.ID)
	if op != "" {
		p += "/" + op
	}
	return p
}

// Submit admits one or more I/Os.
func (s *Session) Submit(ctx context.Context, reqs ...serve.IORequest) (serve.SubmitResponse, error) {
	var resp serve.SubmitResponse
	err := s.c.do(ctx, http.MethodPost, s.path("submit"), serve.SubmitRequest{Requests: reqs}, &resp)
	return resp, err
}

// Feed has the daemon build the spec's workload and feed it in.
func (s *Session) Feed(ctx context.Context, spec serve.FeedSpec) (serve.FeedResponse, error) {
	var resp serve.FeedResponse
	err := s.c.do(ctx, http.MethodPost, s.path("feed"), spec, &resp)
	return resp, err
}

// Advance runs the session dNS simulated nanoseconds forward and returns
// the snapshot after.
func (s *Session) Advance(ctx context.Context, dNS int64) (sprinkler.Snapshot, error) {
	var snap sprinkler.Snapshot
	err := s.c.do(ctx, http.MethodPost, s.path("advance"), serve.AdvanceRequest{DNS: dNS}, &snap)
	return snap, err
}

// Snapshot fetches the current cumulative snapshot without advancing.
func (s *Session) Snapshot(ctx context.Context) (sprinkler.Snapshot, error) {
	var snap sprinkler.Snapshot
	err := s.c.do(ctx, http.MethodGet, s.path("snapshot"), nil, &snap)
	return snap, err
}

// Watch long-polls for the first snapshot with SimTimeNS > sinceNS,
// returning the current snapshot at the timeout. Compute windowed rates
// client-side with Snapshot.Since.
func (s *Session) Watch(ctx context.Context, sinceNS int64, timeout time.Duration) (sprinkler.Snapshot, error) {
	var snap sprinkler.Snapshot
	p := fmt.Sprintf("%s?sinceNS=%d&timeoutMS=%d", s.path("watch"), sinceNS, timeout.Milliseconds())
	err := s.c.do(ctx, http.MethodGet, p, nil, &snap)
	return snap, err
}

// Drain finishes the run and returns the final Result. The session is
// closed afterwards.
func (s *Session) Drain(ctx context.Context) (*sprinkler.Result, error) {
	var res sprinkler.Result
	if err := s.c.do(ctx, http.MethodPost, s.path("drain"), nil, &res); err != nil {
		return nil, err
	}
	return &res, nil
}

// Discard abandons the session without draining.
func (s *Session) Discard(ctx context.Context) error {
	return s.c.do(ctx, http.MethodDelete, s.path(""), nil, nil)
}
