package serve

import (
	"fmt"
	"net/http"
	"sort"
)

// handleMetrics writes a Prometheus-style text exposition of the server's
// counters, the shared arena's hit/miss/eviction statistics, and one
// sim-time/wall-time gauge pair per open session — enough to see whether
// the daemon is keeping up (sim-time advancing faster than wall-time) and
// whether admissions are being rejected.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")

	sessions := s.Sessions()
	c := &s.counters
	a := s.ArenaStats()

	fmt.Fprintf(w, "# HELP sprinklerd_sessions_open Currently open simulation sessions.\n")
	fmt.Fprintf(w, "# TYPE sprinklerd_sessions_open gauge\n")
	fmt.Fprintf(w, "sprinklerd_sessions_open %d\n", len(sessions))

	counters := []struct {
		name, help string
		v          uint64
	}{
		{"sprinklerd_sessions_opened_total", "Sessions admitted.", c.SessionsOpened.Load()},
		{"sprinklerd_sessions_drained_total", "Sessions finished with a final Result.", c.SessionsDrained.Load()},
		{"sprinklerd_sessions_expired_total", "Sessions reclaimed by idle expiry.", c.SessionsExpired.Load()},
		{"sprinklerd_sessions_discarded_total", "Sessions dropped without a clean drain.", c.SessionsDiscarded.Load()},
		{"sprinklerd_requests_admitted_total", "API requests admitted to a session or open.", c.Admitted.Load()},
		{"sprinklerd_requests_rejected_sessions_total", "Opens rejected at the session cap (429).", c.RejectedSession.Load()},
		{"sprinklerd_requests_rejected_devices_total", "Opens rejected at the device budget (503).", c.RejectedDevice.Load()},
		{"sprinklerd_requests_rejected_backlog_total", "Submits rejected at the per-session backlog budget (429).", c.RejectedBacklog.Load()},
		{"sprinklerd_requests_rejected_busy_total", "Requests timed out waiting on a busy session (503).", c.RejectedBusy.Load()},
		{"sprinklerd_ios_submitted_total", "Simulated I/Os admitted across all sessions.", c.IOsSubmitted.Load()},
		{"sprinklerd_arena_device_hits_total", "Device checkouts served from the warm pool.", a.DeviceHits},
		{"sprinklerd_arena_device_misses_total", "Device checkouts that built a device.", a.DeviceMisses},
		{"sprinklerd_arena_device_evictions_total", "Pooled devices dropped at the arena bound.", a.DeviceEvictions},
		{"sprinklerd_arena_meta_reuses_total", "Evicted-topology re-admissions served from retained block metadata.", a.MetaReuses},
		{"sprinklerd_arena_source_hits_total", "Workload sources served from the pool.", a.SourceHits},
		{"sprinklerd_arena_source_misses_total", "Workload sources built fresh.", a.SourceMisses},
		{"sprinklerd_arena_source_evictions_total", "Pooled sources dropped at the arena bound.", a.SourceEvictions},
	}
	for _, m := range counters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", m.name, m.help, m.name, m.name, m.v)
	}

	sort.Slice(sessions, func(i, j int) bool { return sessions[i].ID < sessions[j].ID })
	fmt.Fprintf(w, "# HELP sprinklerd_session_sim_time_ns Simulated time reached by the session.\n")
	fmt.Fprintf(w, "# TYPE sprinklerd_session_sim_time_ns gauge\n")
	for _, info := range sessions {
		fmt.Fprintf(w, "sprinklerd_session_sim_time_ns{session=%q} %d\n", info.ID, info.SimTimeNS)
	}
	fmt.Fprintf(w, "# HELP sprinklerd_session_wall_time_ns Wall-clock age of the session.\n")
	fmt.Fprintf(w, "# TYPE sprinklerd_session_wall_time_ns gauge\n")
	for _, info := range sessions {
		fmt.Fprintf(w, "sprinklerd_session_wall_time_ns{session=%q} %d\n", info.ID, info.WallNS)
	}
	fmt.Fprintf(w, "# HELP sprinklerd_session_backlog Submitted-but-uncompleted I/Os per session.\n")
	fmt.Fprintf(w, "# TYPE sprinklerd_session_backlog gauge\n")
	for _, info := range sessions {
		fmt.Fprintf(w, "sprinklerd_session_backlog{session=%q} %d\n", info.ID, info.Backlog)
	}

	faultGauges := []struct {
		name, help string
		v          func(SessionInfo) int64
	}{
		{"sprinklerd_session_fault_read_retries", "Read-retry ladder entries in the session's fault model.",
			func(i SessionInfo) int64 { return i.ReadRetries }},
		{"sprinklerd_session_fault_program_fails", "Program failures injected into the session.",
			func(i SessionInfo) int64 { return i.ProgramFails }},
		{"sprinklerd_session_fault_retired_blocks", "Blocks retired to the spare pool after erase failures.",
			func(i SessionInfo) int64 { return i.RetiredBlocks }},
		{"sprinklerd_session_fault_failed_ios", "Host I/Os failed unrecoverably by the fault model.",
			func(i SessionInfo) int64 { return i.FailedIOs }},
		{"sprinklerd_session_fault_degraded", "1 when the session's drive degraded to read-only mode.",
			func(i SessionInfo) int64 {
				if i.Degraded {
					return 1
				}
				return 0
			}},
	}
	for _, g := range faultGauges {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.name, g.help, g.name)
		for _, info := range sessions {
			fmt.Fprintf(w, "%s{session=%q} %d\n", g.name, info.ID, g.v(info))
		}
	}
}
