package serve

import (
	"fmt"

	"sprinkler"
)

// This file is sprinklerd's request wire format. Like Result and Snapshot
// in the root package, every struct carries explicit JSON tags: clients
// are built against these names, so renaming or re-typing a tagged field
// is a wire-format break — add new fields instead.

// OpenRequest opens a named session. The platform knobs mirror the shared
// CLI flags (cliutil.Platform): the daemon starts from its own base
// platform and applies the non-zero fields here.
type OpenRequest struct {
	// Name labels the session; the server generates one when empty.
	// Opening a name that is already open is a conflict.
	Name string `json:"name,omitempty"`

	// Chips/Queue/Scheduler/GCStress override the daemon's base platform
	// (zero values keep the base). GCStress also preconditions the device
	// so garbage collection runs under the session's workload.
	Chips     int    `json:"chips,omitempty"`
	Queue     int    `json:"queue,omitempty"`
	Scheduler string `json:"scheduler,omitempty"`
	GCStress  bool   `json:"gcStress,omitempty"`

	// ParallelChannels overrides the daemon's parallel-kernel worker count
	// for this session (zero keeps the daemon's base; negative is
	// rejected). Results are byte-identical either way — the knob only
	// buys wall-clock speed. GC-enabled sessions run the partitioned
	// kernel too; the device falls back to the serial kernel only when
	// the configuration has no cross-channel lookahead to exploit (fewer
	// than two channels). OpenResponse.ParallelChannels echoes the
	// resolution: zero means the serial kernel engaged.
	ParallelChannels int `json:"parallelChannels,omitempty"`

	// Seed feeds preconditioning and server-built workload sources.
	Seed uint64 `json:"seed,omitempty"`

	// MaxBacklog bounds this session's submitted-but-not-completed I/Os;
	// zero accepts the server budget. Requests beyond the bound are
	// rejected with 429 until the session advances. Values above the
	// server budget are clamped to it.
	MaxBacklog int `json:"maxBacklog,omitempty"`

	// CollectSeries records the per-I/O latency series in the final
	// Result; SeriesWindow bounds it (zero/oversized values are clamped
	// to the server budget).
	CollectSeries bool `json:"collectSeries,omitempty"`
	SeriesWindow  int  `json:"seriesWindow,omitempty"`

	// Faults, when present, replaces the daemon's base fault-injection
	// spec for this session (sprinkler.FaultSpec on the wire). Invalid
	// specs — probabilities outside [0, 1], degenerate outage windows,
	// spare fractions outside [0, 1) — are rejected with 400.
	Faults *sprinkler.FaultSpec `json:"faults,omitempty"`

	// WarmState names a warm-state snapshot file in the daemon's snapshot
	// directory (-snapshot-dir); the session's device hydrates from it
	// instead of preconditioning, so an aged-drive session opens at
	// fresh-drive cost. The snapshot supplies the platform — only
	// Scheduler and the observation budgets (MaxBacklog, CollectSeries,
	// SeriesWindow) apply on top; combining it with the platform knobs or
	// GCStress is rejected with 400.
	WarmState string `json:"warmState,omitempty"`
}

// OpenResponse reports the admitted session and its resolved budgets.
type OpenResponse struct {
	ID           string `json:"id"`
	Chips        int    `json:"chips"`
	Scheduler    string `json:"scheduler"`
	MaxBacklog   int    `json:"maxBacklog"`
	SeriesWindow int    `json:"seriesWindow,omitempty"`

	// ParallelChannels is the session's resolved parallel-kernel worker
	// count (zero when the serial kernel was selected).
	ParallelChannels int `json:"parallelChannels,omitempty"`

	// WarmState echoes the snapshot the session hydrated from, if any.
	WarmState string `json:"warmState,omitempty"`
}

// IORequest is one I/O to submit (sprinkler.Request on the wire).
type IORequest struct {
	ArrivalNS int64 `json:"arrivalNS,omitempty"`
	Write     bool  `json:"write,omitempty"`
	LPN       int64 `json:"lpn"`
	Pages     int   `json:"pages"`
	FUA       bool  `json:"fua,omitempty"`
}

// SubmitRequest admits one or more I/Os into a session.
type SubmitRequest struct {
	Requests []IORequest `json:"requests"`
}

// SubmitResponse reports the admission and the session backlog after it.
type SubmitResponse struct {
	Submitted int64 `json:"submitted"`
	Backlog   int64 `json:"backlog"`
}

// WorkloadSpec names a Table 1 workload (sprinkler.WorkloadSpec on the
// wire).
type WorkloadSpec struct {
	Name     string `json:"name"`
	Requests int    `json:"requests,omitempty"`
	MaxPages int    `json:"maxPages,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
}

// FixedSpec describes a fixed-transfer-size workload (sprinkler.FixedSpec
// on the wire).
type FixedSpec struct {
	Requests   int    `json:"requests"`
	Pages      int    `json:"pages,omitempty"`
	Write      bool   `json:"write,omitempty"`
	Sequential bool   `json:"sequential,omitempty"`
	Seed       uint64 `json:"seed,omitempty"`
}

// FeedSpec asks the server to build a workload source from the declarative
// combinators and feed it into the session. Exactly one of Workload/Fixed
// selects the base stream on the first feed; later feeds may omit both to
// continue pulling from the session's current source.
type FeedSpec struct {
	Workload *WorkloadSpec `json:"workload,omitempty"`
	Fixed    *FixedSpec    `json:"fixed,omitempty"`

	// Combinators, applied in this order when set: Poisson arrival
	// rewrite, Zipf address skew, read-ratio redraw, transfer-size
	// redraw, burst modulation, request-count limit.
	PoissonRate float64  `json:"poissonRate,omitempty"`
	ZipfTheta   float64  `json:"zipfTheta,omitempty"`
	ReadRatio   *float64 `json:"readRatio,omitempty"`
	MinPages    int      `json:"minPages,omitempty"`
	MaxPages    int      `json:"maxPages,omitempty"`
	BurstOnNS   int64    `json:"burstOnNS,omitempty"`
	BurstOffNS  int64    `json:"burstOffNS,omitempty"`
	Limit       int64    `json:"limit,omitempty"`

	// Seed drives the built source; zero uses the session's seed.
	Seed uint64 `json:"seed,omitempty"`

	// Count feeds at most this many requests now; zero drains the source
	// (rejected unless the source is bounded).
	Count int64 `json:"count,omitempty"`
}

// FeedResponse reports how many requests the feed admitted.
type FeedResponse struct {
	Fed     int64 `json:"fed"`
	Backlog int64 `json:"backlog"`
}

// AdvanceRequest runs the session forward by DNS simulated nanoseconds.
type AdvanceRequest struct {
	DNS int64 `json:"dNS"`
}

// SessionInfo is one row of the session listing.
type SessionInfo struct {
	ID         string `json:"id"`
	SimTimeNS  int64  `json:"simTimeNS"`
	WallNS     int64  `json:"wallNS"`
	Backlog    int64  `json:"backlog"`
	IdleNS     int64  `json:"idleNS"`
	MaxBacklog int    `json:"maxBacklog"`

	// Fault-injection counters, zero (and omitted) when the session runs
	// fault-free. Degraded reports the drive's read-only state.
	ReadRetries   int64 `json:"readRetries,omitempty"`
	ProgramFails  int64 `json:"programFails,omitempty"`
	RetiredBlocks int64 `json:"retiredBlocks,omitempty"`
	FailedIOs     int64 `json:"failedIOs,omitempty"`
	Degraded      bool  `json:"degraded,omitempty"`
}

// ListResponse is the session listing.
type ListResponse struct {
	Sessions []SessionInfo `json:"sessions"`
	Draining bool          `json:"draining"`
}

// SnapshotConfigSummary condenses the configuration a warm-state image
// was captured under to what a client needs for choosing one: the
// platform shape, whether collection and faults were live during aging,
// and the scheduler (hydration may override it).
type SnapshotConfigSummary struct {
	Scheduler    string `json:"scheduler"`
	Channels     int    `json:"channels"`
	ChipsPerChan int    `json:"chipsPerChan"`
	QueueDepth   int    `json:"queueDepth"`
	LogicalPages int64  `json:"logicalPages,omitempty"`
	GCEnabled    bool   `json:"gcEnabled"`
	FaultsArmed  bool   `json:"faultsArmed,omitempty"`
}

// SnapshotInfo is one row of the snapshot catalog: a warm-state image in
// the daemon's -snapshot-dir, named as OpenRequest.WarmState accepts it.
// A file that fails to parse as a snapshot is still listed, with Error
// set and no config or stats — the catalog surfaces a corrupt image
// rather than hiding it.
type SnapshotInfo struct {
	Name   string                   `json:"name"`
	Config *SnapshotConfigSummary   `json:"config,omitempty"`
	Stats  *sprinkler.SnapshotStats `json:"stats,omitempty"`
	Error  string                   `json:"error,omitempty"`
}

// ListSnapshotsResponse is the snapshot catalog, sorted by name.
type ListSnapshotsResponse struct {
	Snapshots []SnapshotInfo `json:"snapshots"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// buildSource constructs the feed's workload source for cfg via the
// declarative SourceSpec combinators, and reports whether the stream is
// bounded (a zero Count may only drain a bounded source).
func (f FeedSpec) buildSource(cfg sprinkler.Config, seed uint64) (sprinkler.Source, bool, error) {
	var spec sprinkler.SourceSpec
	bounded := f.Limit > 0
	switch {
	case f.Workload != nil && f.Fixed != nil:
		return nil, false, fmt.Errorf("feed spec names both a workload and a fixed stream")
	case f.Workload != nil:
		spec = sprinkler.WorkloadSpec{
			Name:     f.Workload.Name,
			Requests: f.Workload.Requests,
			MaxPages: f.Workload.MaxPages,
			Seed:     f.Workload.Seed,
		}.Spec()
		bounded = bounded || f.Workload.Requests > 0
	case f.Fixed != nil:
		spec = sprinkler.FixedSpec{
			Requests:   f.Fixed.Requests,
			Pages:      f.Fixed.Pages,
			Write:      f.Fixed.Write,
			Sequential: f.Fixed.Sequential,
			Seed:       f.Fixed.Seed,
		}.Spec("fixed")
		bounded = bounded || f.Fixed.Requests > 0
	default:
		return nil, false, fmt.Errorf("feed spec needs a workload or fixed stream")
	}
	if f.PoissonRate > 0 {
		spec = spec.WithPoisson(f.PoissonRate)
	}
	if f.ZipfTheta > 0 {
		spec = spec.WithZipf(f.ZipfTheta)
	}
	if f.ReadRatio != nil {
		spec = spec.WithReadRatio(*f.ReadRatio)
	}
	if f.MinPages > 0 || f.MaxPages > 0 {
		spec = spec.WithPages(f.MinPages, f.MaxPages)
	}
	if f.BurstOnNS > 0 || f.BurstOffNS > 0 {
		spec = spec.WithBurst(f.BurstOnNS, f.BurstOffNS)
	}
	if f.Limit > 0 {
		spec = spec.WithLimit(f.Limit)
	}
	if f.Seed != 0 {
		seed = f.Seed
	}
	src, err := spec.New(cfg, seed)
	if err != nil {
		return nil, false, err
	}
	return src, bounded, nil
}
