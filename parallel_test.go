package sprinkler_test

// Parallel-kernel parity suite: the partitioned per-channel kernel must be
// byte-identical to the serial kernel — same events, same tie-breaks, same
// Result down to the last float bit. Every scheduler runs randomized
// trials over geometry, queue depth, workload shape and preconditioning
// pressure, and the full JSON-rendered Result is compared. A single
// diverging field means the conservative lookahead admitted an event
// reordering and fails the suite.

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"sprinkler"
)

// parityConfig builds a randomized platform eligible for the partitioned
// kernel (>= 2 channels). Each trial lands in one of three cells:
// pristine (GC off), GC-active (clipped logical space keeps planes under
// collection pressure), or fault-armed (GC on plus the full flash fault
// model: retry ladders, program rewrites, block retirements, spares).
func parityConfig(rng *rand.Rand, kind sprinkler.SchedulerKind) sprinkler.Config {
	cfg := sprinkler.DefaultConfig()
	cfg.Scheduler = kind
	cfg.Channels = []int{2, 4, 8}[rng.Intn(3)]
	cfg.ChipsPerChan = []int{1, 2, 4}[rng.Intn(3)]
	cfg.BlocksPerPlane = 64
	cfg.PagesPerBlock = 32
	cfg.QueueDepth = []int{8, 32, 64}[rng.Intn(3)]
	switch rng.Intn(3) {
	case 0: // pristine
		cfg.DisableGC = true
	case 1: // GC-active
		cfg.BlocksPerPlane = 24
		cfg.LogicalPages = cfg.TotalPages() * 85 / 100
		cfg.GCFreeTarget = 8
	default: // fault-armed, GC on
		cfg.BlocksPerPlane = 32
		cfg.LogicalPages = cfg.TotalPages() * 85 / 100
		cfg.Faults = sprinkler.FaultSpec{
			ReadFailProb:    0.02,
			ProgramFailProb: 0.02,
			EraseFailProb:   0.05,
			ReadRetryMax:    3,
			ReadRetryMult:   2,
			RewriteMax:      4,
			SpareBlockFrac:  0.08,
			Seed:            rng.Uint64(),
		}
	}
	return cfg
}

// paritySource picks a randomized workload for the config.
func paritySource(t *testing.T, rng *rand.Rand, cfg sprinkler.Config, n int) sprinkler.Source {
	t.Helper()
	switch rng.Intn(4) {
	case 0:
		src, err := cfg.NewWorkloadSource(sprinkler.WorkloadSpec{
			Name: "msnfs1", Requests: n, Seed: rng.Uint64(),
		})
		if err != nil {
			t.Fatalf("workload source: %v", err)
		}
		return src
	case 1:
		return sprinkler.SliceSource(sprinkler.SequentialReads(n, 1+rng.Intn(8)))
	case 2:
		return sprinkler.SliceSource(sprinkler.SequentialWrites(n, 1+rng.Intn(8)))
	default:
		src, err := cfg.NewWorkloadSource(sprinkler.WorkloadSpec{
			Name: "proj0", Requests: n, Seed: rng.Uint64(),
		})
		if err != nil {
			t.Fatalf("workload source: %v", err)
		}
		return src
	}
}

// runOnce builds a device for cfg (optionally fragmented first) and runs
// the source, returning the Result's JSON rendering.
func runOnce(t *testing.T, cfg sprinkler.Config, precond bool, pseed uint64, src sprinkler.Source) string {
	t.Helper()
	dev, err := sprinkler.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if precond {
		dev.Precondition(0.6, 0.3, pseed)
	}
	res, err := dev.Run(context.Background(), src)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// TestParallelMatchesSerial is the headline parity test: randomized trials
// per scheduler, serial vs partitioned kernel, byte-identical Results.
func TestParallelMatchesSerial(t *testing.T) {
	trials := 4
	requests := 600
	if testing.Short() {
		trials, requests = 2, 250
	}
	for _, kind := range sprinkler.Schedulers() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(len(kind)) * 7919))
			for trial := 0; trial < trials; trial++ {
				cfg := parityConfig(rng, kind)
				precond := rng.Intn(2) == 0
				pseed := rng.Uint64()
				srcSeed := rng.Int63()

				serial := cfg
				serial.ParallelChannels = 0
				parallel := cfg
				parallel.ParallelChannels = 2 + rng.Intn(7) // 2..8 workers

				sRNG := rand.New(rand.NewSource(srcSeed))
				pRNG := rand.New(rand.NewSource(srcSeed))
				got := runOnce(t, parallel, precond, pseed, paritySource(t, pRNG, parallel, requests))
				want := runOnce(t, serial, precond, pseed, paritySource(t, sRNG, serial, requests))
				if got != want {
					t.Fatalf("trial %d (channels=%d chips/chan=%d qd=%d precond=%v gc=%v faults=%v workers=%d): parallel kernel diverged\n serial:   %s\n parallel: %s",
						trial, cfg.Channels, cfg.ChipsPerChan, cfg.QueueDepth, precond,
						!cfg.DisableGC, cfg.Faults != (sprinkler.FaultSpec{}), parallel.ParallelChannels, want, got)
				}
			}
		})
	}
}

// TestParallelWithGCEngages asserts a GC-active configuration now keeps
// the partitioned kernel — UsesParallelKernel reports it engaged — and
// that a run with background collection actually firing stays
// byte-identical to the serial kernel.
func TestParallelWithGCEngages(t *testing.T) {
	cfg := sprinkler.DefaultConfig()
	cfg.Channels = 4
	cfg.ChipsPerChan = 2
	cfg.BlocksPerPlane = 32
	cfg.PagesPerBlock = 16
	cfg.GCFreeTarget = 8 // keep planes under pressure so GC actually runs

	knobbed := cfg
	knobbed.ParallelChannels = 8
	if !knobbed.UsesParallelKernel() {
		t.Fatal("GC-enabled config no longer resolves to the partitioned kernel")
	}
	if cfg.UsesParallelKernel() {
		t.Fatal("knob-less config resolves to the partitioned kernel")
	}

	run := func(c sprinkler.Config) string {
		dev, err := sprinkler.New(c)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		dev.Precondition(0.8, 0.5, 11)
		res, err := dev.Run(context.Background(), sprinkler.SliceSource(sprinkler.SequentialWrites(800, 4)))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if res.GCRuns == 0 {
			t.Fatal("workload did not trigger GC; parity under collection untested")
		}
		b, _ := json.Marshal(res)
		return string(b)
	}
	if got, want := run(knobbed), run(cfg); got != want {
		t.Fatalf("partitioned kernel diverged under GC:\n serial:   %s\n parallel: %s", want, got)
	}
}

// TestParallelFallbackIneligible pins the remaining serial-fallback
// corner: a single-channel platform has no cross-channel lookahead to
// exploit, so the knob must resolve to the serial kernel and stay inert.
func TestParallelFallbackIneligible(t *testing.T) {
	cfg := sprinkler.DefaultConfig()
	cfg.Channels = 1
	cfg.ChipsPerChan = 4
	cfg.BlocksPerPlane = 32
	cfg.PagesPerBlock = 16
	cfg.GCFreeTarget = 8

	knobbed := cfg
	knobbed.ParallelChannels = 8
	if knobbed.UsesParallelKernel() {
		t.Fatal("single-channel config resolved to the partitioned kernel")
	}

	run := func(c sprinkler.Config) string {
		dev, err := sprinkler.New(c)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		dev.Precondition(0.8, 0.5, 11)
		res, err := dev.Run(context.Background(), sprinkler.SliceSource(sprinkler.SequentialWrites(400, 4)))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		b, _ := json.Marshal(res)
		return string(b)
	}
	if got, want := run(knobbed), run(cfg); got != want {
		t.Fatalf("ParallelChannels changed a single-channel run:\n want: %s\n got:  %s", want, got)
	}
}

// TestParallelDegradedModeParity drives both kernels through spare-pool
// exhaustion — every erase fails, spares are scarce, the drive degrades
// to read-only mode mid-run — and demands byte-identical Results,
// including the degraded flag and the failed-write accounting.
func TestParallelDegradedModeParity(t *testing.T) {
	cfg := sprinkler.DefaultConfig()
	cfg.Scheduler = sprinkler.SPK3
	cfg.Channels = 4
	cfg.ChipsPerChan = 1
	cfg.BlocksPerPlane = 16
	cfg.PagesPerBlock = 16
	cfg.GCFreeTarget = 4
	cfg.Faults = sprinkler.FaultSpec{
		EraseFailProb:  1.0,
		SpareBlockFrac: 0.1,
		Seed:           13,
	}

	run := func(c sprinkler.Config) string {
		dev, err := sprinkler.New(c)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		dev.Precondition(0.95, 0.5, 21)
		src, err := c.NewFixedSource(sprinkler.FixedSpec{Requests: 4000, Pages: 4, Write: true, Seed: 3})
		if err != nil {
			t.Fatalf("source: %v", err)
		}
		res, err := dev.Run(context.Background(), src)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if !res.DegradedMode {
			t.Fatalf("drive did not degrade: %d erase fails, %d retired, %d failed IOs",
				res.EraseFails, res.RetiredBlocks, res.FailedIOs)
		}
		b, _ := json.Marshal(res)
		return string(b)
	}

	parallel := cfg
	parallel.ParallelChannels = 4
	if !parallel.UsesParallelKernel() {
		t.Fatal("degraded-mode config did not resolve to the partitioned kernel")
	}
	if got, want := run(parallel), run(cfg); got != want {
		t.Fatalf("partitioned kernel diverged through spare exhaustion:\n serial:   %s\n parallel: %s", want, got)
	}
}

// TestParallelSnapshotHydrated captures one warm GC-pressured snapshot
// and hydrates it into both kernels — CompatibleConfig tolerates the
// ParallelChannels difference — then runs the same write-heavy workload
// on each and demands byte-identical Results with collection active.
func TestParallelSnapshotHydrated(t *testing.T) {
	cfg := sprinkler.DefaultConfig()
	cfg.Scheduler = sprinkler.SPK2
	cfg.Channels = 4
	cfg.ChipsPerChan = 2
	cfg.BlocksPerPlane = 24
	cfg.PagesPerBlock = 16
	cfg.LogicalPages = cfg.TotalPages() * 85 / 100
	cfg.GCFreeTarget = 8

	warm, err := sprinkler.New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	warm.Precondition(0.8, 0.5, 23)
	var buf bytes.Buffer
	if err := warm.Checkpoint(&buf); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	snap, err := sprinkler.ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}

	run := func(c sprinkler.Config) string {
		dev, err := snap.NewDevice(c)
		if err != nil {
			t.Fatalf("NewDevice(ParallelChannels=%d): %v", c.ParallelChannels, err)
		}
		res, err := dev.Run(context.Background(), sprinkler.SliceSource(sprinkler.SequentialWrites(500, 4)))
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		if res.GCRuns == 0 {
			t.Fatal("hydrated run triggered no GC; warm-state parity untested")
		}
		b, _ := json.Marshal(res)
		return string(b)
	}

	parallel := cfg
	parallel.ParallelChannels = 4
	if !parallel.UsesParallelKernel() {
		t.Fatal("hydration config did not resolve to the partitioned kernel")
	}
	if got, want := run(parallel), run(cfg); got != want {
		t.Fatalf("snapshot-hydrated kernels diverged:\n serial:   %s\n parallel: %s", want, got)
	}
}

// TestParallelResetFlipsKernel asserts Device.Reset rebuilds the kernel
// when the partitioning capability flips, in both directions, with parity
// against fresh construction throughout.
func TestParallelResetFlipsKernel(t *testing.T) {
	serial := sprinkler.DefaultConfig()
	serial.Channels = 4
	serial.ChipsPerChan = 2
	serial.BlocksPerPlane = 64
	serial.PagesPerBlock = 32
	serial.DisableGC = true
	parallel := serial
	parallel.ParallelChannels = 4

	src := func() sprinkler.Source {
		return sprinkler.SliceSource(sprinkler.SequentialReads(300, 4))
	}
	fingerprint := func(res *sprinkler.Result) string {
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return string(b)
	}

	dev, err := sprinkler.New(serial)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res, err := dev.Run(context.Background(), src())
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	want := fingerprint(res)

	// serial -> parallel -> serial, recycling the same device.
	for i, cfg := range []sprinkler.Config{parallel, serial, parallel} {
		if err := dev.Reset(cfg); err != nil {
			t.Fatalf("Reset %d: %v", i, err)
		}
		res, err := dev.Run(context.Background(), src())
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if got := fingerprint(res); got != want {
			t.Fatalf("reset %d (ParallelChannels=%d) diverged:\n want: %s\n got:  %s",
				i, cfg.ParallelChannels, want, got)
		}
	}
}

// TestParallelSessionMatchesSerial drives the windowed Session API —
// Feed/Advance/Snapshot/Drain — on both kernels and compares every
// intermediate snapshot and the final Result.
func TestParallelSessionMatchesSerial(t *testing.T) {
	base := sprinkler.DefaultConfig()
	base.Channels = 4
	base.ChipsPerChan = 2
	base.BlocksPerPlane = 64
	base.PagesPerBlock = 32
	base.DisableGC = true

	type obs struct {
		snaps []sprinkler.Snapshot
		final string
	}
	drive := func(cfg sprinkler.Config) obs {
		sess, err := sprinkler.Open(cfg)
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		src := sprinkler.SliceSource(sprinkler.SequentialWrites(400, 4))
		var o obs
		for {
			n, err := sess.Feed(src, 50)
			if err != nil {
				t.Fatalf("Feed: %v", err)
			}
			if err := sess.Advance(2_000_000); err != nil { // 2 ms windows
				t.Fatalf("Advance: %v", err)
			}
			o.snaps = append(o.snaps, sess.Snapshot())
			if n == 0 {
				break
			}
		}
		res, err := sess.Drain(context.Background())
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
		b, _ := json.Marshal(res)
		o.final = string(b)
		return o
	}

	parallel := base
	parallel.ParallelChannels = 4
	got, want := drive(parallel), drive(base)
	if len(got.snaps) != len(want.snaps) {
		t.Fatalf("window counts differ: serial %d, parallel %d", len(want.snaps), len(got.snaps))
	}
	for i := range want.snaps {
		if got.snaps[i] != want.snaps[i] {
			t.Fatalf("window %d snapshot diverged:\n serial:   %+v\n parallel: %+v", i, want.snaps[i], got.snaps[i])
		}
	}
	if got.final != want.final {
		t.Fatalf("drained result diverged:\n serial:   %s\n parallel: %s", want.final, got.final)
	}
}
