package sprinkler_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"sprinkler"
)

// drainSource collects up to max requests from a source.
func drainSource(t *testing.T, src sprinkler.Source, max int) []sprinkler.Request {
	t.Helper()
	var out []sprinkler.Request
	for len(out) < max {
		r, ok := src.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out
}

// resetCases enumerates every built-in source and combinator as a seeded
// builder, so the replay-parity test can treat them uniformly. Bounded
// shapes keep the drains fast; the deep case stacks combinators five
// levels to exercise seed propagation through a whole tree.
func resetCases(cfg sprinkler.Config, csv []byte) []struct {
	name  string
	build func(seed uint64) (sprinkler.Source, error)
} {
	span := cfg.TotalPages() * 9 / 10
	table := func(name string, n int, seed uint64) (sprinkler.Source, error) {
		return cfg.NewWorkloadSource(sprinkler.WorkloadSpec{Name: name, Requests: n, Seed: seed})
	}
	return []struct {
		name  string
		build func(seed uint64) (sprinkler.Source, error)
	}{
		{"workload-stream", func(seed uint64) (sprinkler.Source, error) {
			return table("msnfs1", 150, seed)
		}},
		{"fixed-random", func(seed uint64) (sprinkler.Source, error) {
			return cfg.NewFixedSource(sprinkler.FixedSpec{Requests: 150, Pages: 4, Write: true, Seed: seed})
		}},
		{"fixed-sequential", func(seed uint64) (sprinkler.Source, error) {
			return cfg.NewFixedSource(sprinkler.FixedSpec{Requests: 150, Pages: 8, Sequential: true, Seed: seed})
		}},
		{"csv", func(seed uint64) (sprinkler.Source, error) {
			return sprinkler.NewCSVSource(bytes.NewReader(csv)), nil
		}},
		{"slice", func(seed uint64) (sprinkler.Source, error) {
			return sprinkler.SliceSource(sprinkler.SequentialReads(100, 4)), nil
		}},
		{"limit", func(seed uint64) (sprinkler.Source, error) {
			src, err := table("hm0", 0, seed)
			if err != nil {
				return nil, err
			}
			return sprinkler.Limit(src, 120), nil
		}},
		{"poisson", func(seed uint64) (sprinkler.Source, error) {
			src, err := table("cfs0", 150, seed)
			if err != nil {
				return nil, err
			}
			return sprinkler.Poisson(src, 250_000, seed), nil
		}},
		{"burst", func(seed uint64) (sprinkler.Source, error) {
			src, err := table("cfs3", 150, seed)
			if err != nil {
				return nil, err
			}
			return sprinkler.Burst(src, 1_000_000, 3_000_000)
		}},
		{"zipf", func(seed uint64) (sprinkler.Source, error) {
			src, err := table("hm1", 150, seed)
			if err != nil {
				return nil, err
			}
			return sprinkler.Zipf(src, 0.99, span, seed)
		}},
		{"read-ratio", func(seed uint64) (sprinkler.Source, error) {
			src, err := table("proj4", 150, seed)
			if err != nil {
				return nil, err
			}
			return sprinkler.ReadRatio(src, 0.7, seed)
		}},
		{"resize", func(seed uint64) (sprinkler.Source, error) {
			src, err := table("msnfs1", 150, seed)
			if err != nil {
				return nil, err
			}
			return sprinkler.Resize(src, 2, 16, span, seed)
		}},
		{"mix", func(seed uint64) (sprinkler.Source, error) {
			a, err := table("msnfs1", 0, sprinkler.SubSeed(seed, 0))
			if err != nil {
				return nil, err
			}
			b, err := table("cfs0", 0, sprinkler.SubSeed(seed, 1))
			if err != nil {
				return nil, err
			}
			m, err := sprinkler.Mix(seed,
				sprinkler.Weighted{Source: a, Weight: 3},
				sprinkler.Weighted{Source: b, Weight: 1})
			if err != nil {
				return nil, err
			}
			return sprinkler.Limit(m, 150), nil
		}},
		{"phases", func(seed uint64) (sprinkler.Source, error) {
			a, err := table("hm0", 0, sprinkler.SubSeed(seed, 0))
			if err != nil {
				return nil, err
			}
			b, err := table("proj0", 80, sprinkler.SubSeed(seed, 1))
			if err != nil {
				return nil, err
			}
			return sprinkler.Phases(
				sprinkler.Phase{Source: a, Requests: 60},
				sprinkler.Phase{Source: b, DurationNS: 2_000_000},
			)
		}},
		{"deep-composition", func(seed uint64) (sprinkler.Source, error) {
			base, err := table("msnfs2", 0, seed)
			if err != nil {
				return nil, err
			}
			z, err := sprinkler.Zipf(base, 0.8, span, seed)
			if err != nil {
				return nil, err
			}
			rr, err := sprinkler.ReadRatio(z, 0.5, seed)
			if err != nil {
				return nil, err
			}
			bu, err := sprinkler.Burst(sprinkler.Poisson(rr, 100_000, seed), 500_000, 1_500_000)
			if err != nil {
				return nil, err
			}
			return sprinkler.Limit(bu, 150), nil
		}},
	}
}

// TestResetReplayParity is the Resettable contract pin, randomized: for
// every built-in source and combinator, Reset(seed') must replay the
// byte-identical stream a fresh construction with seed' produces, and a
// second Reset back to the original seed must reproduce the original
// stream — across random seed pairs.
func TestResetReplayParity(t *testing.T) {
	cfg := smallConfig(sprinkler.SPK3)
	reqs, err := cfg.GenerateWorkload("cfs0", 120, 9)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sprinkler.WriteCSV(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for _, tc := range resetCases(cfg, buf.Bytes()) {
		t.Run(tc.name, func(t *testing.T) {
			for round := 0; round < 4; round++ {
				seedA, seedB := rng.Uint64(), rng.Uint64()
				src, err := tc.build(seedA)
				if err != nil {
					t.Fatal(err)
				}
				original := drainSource(t, src, 200)
				if len(original) == 0 {
					t.Fatal("source emitted nothing")
				}

				// Reset to a different seed == fresh build with that seed.
				if err := sprinkler.ResetSource(src, seedB); err != nil {
					t.Fatalf("Reset: %v", err)
				}
				fresh, err := tc.build(seedB)
				if err != nil {
					t.Fatal(err)
				}
				want := drainSource(t, fresh, 200)
				got := drainSource(t, src, 200)
				if len(got) != len(want) {
					t.Fatalf("round %d: reset stream length %d != fresh %d", round, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("round %d: request %d diverged after Reset(%d):\n reset: %+v\n fresh: %+v",
							round, i, seedB, got[i], want[i])
					}
				}

				// Reset back to the original seed == the original stream.
				if err := sprinkler.ResetSource(src, seedA); err != nil {
					t.Fatalf("second Reset: %v", err)
				}
				replay := drainSource(t, src, 200)
				if len(replay) != len(original) {
					t.Fatalf("round %d: replay length %d != original %d", round, len(replay), len(original))
				}
				for i := range original {
					if replay[i] != original[i] {
						t.Fatalf("round %d: request %d diverged on replay:\n replay:   %+v\n original: %+v",
							round, i, replay[i], original[i])
					}
				}
			}
		})
	}
}

// TestCSVSourceResetNonSeekable: a CSV stream over a non-seekable reader
// must refuse to Reset (and the pool must then fall back to fresh builds).
func TestCSVSourceResetNonSeekable(t *testing.T) {
	src := sprinkler.NewCSVSource(bufio.NewReader(strings.NewReader("0,R,0,4\n")))
	if _, ok := src.Next(); !ok {
		t.Fatal("CSV source empty")
	}
	if err := sprinkler.ResetSource(src, 1); err == nil || !strings.Contains(err.Error(), "non-seekable") {
		t.Fatalf("want non-seekable error, got %v", err)
	}
	// Seekable readers replay fine.
	s2 := sprinkler.NewCSVSource(strings.NewReader("0,R,0,4\n100,W,8,2\n"))
	first := drainSource(t, s2, 10)
	if err := sprinkler.ResetSource(s2, 7); err != nil {
		t.Fatal(err)
	}
	second := drainSource(t, s2, 10)
	if len(first) != 2 || len(second) != 2 || first[0] != second[0] || first[1] != second[1] {
		t.Fatalf("CSV replay diverged: %+v vs %+v", first, second)
	}
}

// structuredGrid builds a grid whose workload axis is pure structure:
// combinator-wrapped specs over one base workload, swept alongside plain
// Table 1 workloads, across every scheduler.
func structuredGrid(seed uint64) sprinkler.Grid {
	base := sprinkler.WorkloadSpec{Name: "msnfs1", Requests: 90, MaxPages: 32}.Spec()
	return sprinkler.Grid{
		Name:       "pooled",
		Base:       smallConfig(sprinkler.SPK3),
		Schedulers: sprinkler.Schedulers(),
		Workloads:  []string{"cfs0"},
		Requests:   90,
		Sources: []sprinkler.SourceSpec{
			base.WithBurst(1_000_000, 3_000_000),
			base.WithZipf(0.99),
			base.WithReadRatio(0.65),
			sprinkler.MixSpec("mix",
				sprinkler.WeightedSpec{Spec: sprinkler.WorkloadSpec{Name: "msnfs1"}.Spec(), Weight: 3},
				sprinkler.WeightedSpec{Spec: sprinkler.WorkloadSpec{Name: "hm0"}.Spec(), Weight: 1},
			).WithLimit(90),
		},
		Seed: seed,
	}
}

// TestPooledSourceSweepParity is the pooled-source correctness pin,
// randomized: the same structured grid (five schedulers × plain +
// combinator workloads) runs fresh-per-cell (NoReuse), through a shared
// arena once, and through the same arena again (so the second pass checks
// every source out of the warm pool). All three must produce JSON-level
// byte-identical Results cell for cell.
func TestPooledSourceSweepParity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for round := 0; round < 3; round++ {
		grid := structuredGrid(rng.Uint64())
		runnerSeed := rng.Uint64()
		fingerprints := func(results []sprinkler.CellResult) map[string]string {
			out := map[string]string{}
			for _, cr := range results {
				if cr.Err != nil {
					t.Fatalf("round %d: cell %q failed: %v", round, cr.Name, cr.Err)
				}
				b, err := json.Marshal(cr.Result)
				if err != nil {
					t.Fatal(err)
				}
				out[cr.Name] = string(b)
			}
			return out
		}

		fresh := fingerprints(sprinkler.Runner{Workers: 2, Seed: runnerSeed, NoReuse: true}.
			Run(context.Background(), grid.Cells()))

		arena := sprinkler.NewDeviceArena()
		cold := fingerprints(sprinkler.Runner{Workers: 2, Seed: runnerSeed, Arena: arena}.
			Run(context.Background(), grid.Cells()))
		if arena.PooledSources() == 0 {
			t.Fatal("no sources were pooled")
		}
		warm := fingerprints(sprinkler.Runner{Workers: 2, Seed: runnerSeed, Arena: arena}.
			Run(context.Background(), grid.Cells()))

		if len(fresh) != len(cold) || len(fresh) != len(warm) {
			t.Fatalf("round %d: result counts differ: %d/%d/%d", round, len(fresh), len(cold), len(warm))
		}
		for name, want := range fresh {
			if cold[name] != want {
				t.Fatalf("round %d: cell %q diverged on the cold arena pass:\nfresh:  %s\npooled: %s",
					round, name, want, cold[name])
			}
			if warm[name] != want {
				t.Fatalf("round %d: cell %q diverged on the warm (recycled-source) pass:\nfresh:  %s\npooled: %s",
					round, name, want, warm[name])
			}
		}
	}
}

// TestPooledSourcesDoNotLeakAcrossCells: results rendered from earlier
// cells must stay bit-stable while later cells reuse the pooled sources
// and the device's recycled request objects — nothing a pooled source or
// I/O free list hands to a later cell may alias an earlier cell's Result.
func TestPooledSourcesDoNotLeakAcrossCells(t *testing.T) {
	grid := structuredGrid(5)
	arena := sprinkler.NewDeviceArena()
	runner := sprinkler.Runner{Workers: 1, Arena: arena}

	first := runner.Run(context.Background(), grid.Cells())
	snapshots := make(map[string]string, len(first))
	for _, cr := range first {
		if cr.Err != nil {
			t.Fatalf("cell %q failed: %v", cr.Name, cr.Err)
		}
		b, _ := json.Marshal(cr.Result)
		snapshots[cr.Name] = string(b)
	}

	// Re-run the whole grid on the same arena: every device, source and
	// I/O free list from the first pass is recycled under the first
	// pass's still-live Results.
	for _, cr := range runner.Run(context.Background(), grid.Cells()) {
		if cr.Err != nil {
			t.Fatalf("second pass cell %q failed: %v", cr.Name, cr.Err)
		}
	}
	for _, cr := range first {
		b, _ := json.Marshal(cr.Result)
		if string(b) != snapshots[cr.Name] {
			t.Fatalf("cell %q's Result mutated after pooled reuse:\nbefore: %s\nafter:  %s",
				cr.Name, snapshots[cr.Name], b)
		}
	}

	// One source pooled per distinct workload coordinate (5 specs), one
	// device per topology: the pools hold recycled objects, not one per
	// cell.
	if n := arena.PooledSources(); n != 5 {
		t.Fatalf("arena pooled %d sources, want 5 (one per workload axis point)", n)
	}
	if n := arena.Size(); n != 1 {
		t.Fatalf("arena pooled %d devices, want 1", n)
	}
}

// TestPinnedSeedSpecPooledParity: a spec with an explicit Seed freezes its
// trace — a pooled checkout Reset to a different cell seed must still
// replay the pinned stream, exactly like a fresh build would.
func TestPinnedSeedSpecPooledParity(t *testing.T) {
	cfg := smallConfig(sprinkler.SPK3)
	spec := sprinkler.WorkloadSpec{Name: "msnfs1", Requests: 60, Seed: 7}.Spec()

	fresh, err := spec.New(cfg, 12345)
	if err != nil {
		t.Fatal(err)
	}
	want := drainSource(t, fresh, 100)

	arena := sprinkler.NewDeviceArena()
	first, err := arena.GetSource("k", 12345, func(seed uint64) (sprinkler.Source, error) {
		return spec.New(cfg, seed)
	})
	if err != nil {
		t.Fatal(err)
	}
	drainSource(t, first, 100)
	arena.PutSource("k", first)

	// Checked out under a completely different cell seed: the pin wins.
	pooled, err := arena.GetSource("k", 999, func(seed uint64) (sprinkler.Source, error) {
		return spec.New(cfg, seed)
	})
	if err != nil {
		t.Fatal(err)
	}
	got := drainSource(t, pooled, 100)
	if len(got) != len(want) {
		t.Fatalf("pinned replay length %d != fresh %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("request %d: pooled pinned-seed spec diverged from fresh:\n pooled: %+v\n fresh:  %+v",
				i, got[i], want[i])
		}
	}
}

// TestGridSourceKeyIncludesConfig: two grids with identical names and
// labels but different platforms must not share pooled sources — a source
// bakes the platform's logical span in at build time.
func TestGridSourceKeyIncludesConfig(t *testing.T) {
	mk := func(channels int) sprinkler.Grid {
		cfg := smallConfig(sprinkler.SPK3)
		cfg.Channels = channels
		return sprinkler.Grid{Name: "same", Base: cfg, Workloads: []string{"cfs0"}, Requests: 40}
	}
	a := mk(2).Cells()
	b := mk(4).Cells()
	if a[0].SourceKey == "" || b[0].SourceKey == "" {
		t.Fatal("grid cells missing source keys")
	}
	if a[0].SourceKey == b[0].SourceKey {
		t.Fatalf("different platforms share a source-pool key: %q", a[0].SourceKey)
	}
	// Same grid, same platform: the key (and the seed) must be stable.
	if again := mk(2).Cells(); again[0].SourceKey != a[0].SourceKey || again[0].Seed != a[0].Seed {
		t.Fatal("source key or seed not deterministic")
	}
	// The scheduler axis must still share one key per point.
	g := mk(2)
	g.Schedulers = sprinkler.Schedulers()
	cells := g.Cells()
	for _, c := range cells[1:] {
		if c.SourceKey != cells[0].SourceKey {
			t.Fatalf("schedulers do not share the source key: %q vs %q", c.SourceKey, cells[0].SourceKey)
		}
	}
}

// TestArenaMaxSourcesLRU pins the bounded source pool: Put past the cap
// evicts the least-recently-pooled source.
func TestArenaMaxSourcesLRU(t *testing.T) {
	arena := &sprinkler.DeviceArena{MaxSources: 2}
	srcs := make([]sprinkler.Source, 3)
	for i := range srcs {
		srcs[i] = sprinkler.SliceSource(sprinkler.SequentialReads(4, 2))
		arena.PutSource(string(rune('a'+i)), srcs[i])
	}
	if n := arena.PooledSources(); n != 2 {
		t.Fatalf("bounded pool holds %d sources, want 2", n)
	}
	// "a" was evicted: its checkout falls back to the builder.
	built := false
	got, err := arena.GetSource("a", 1, func(uint64) (sprinkler.Source, error) {
		built = true
		return sprinkler.SliceSource(nil), nil
	})
	if err != nil || got == nil || !built {
		t.Fatalf("evicted key did not rebuild (err=%v, built=%v)", err, built)
	}
	// "b" and "c" survived and come back as the same objects.
	for i, key := range []string{"b", "c"} {
		got, err := arena.GetSource(key, 1, func(uint64) (sprinkler.Source, error) {
			t.Fatalf("key %q rebuilt despite being pooled", key)
			return nil, nil
		})
		if err != nil || got != srcs[i+1] {
			t.Fatalf("key %q: pooled source not returned (err=%v)", key, err)
		}
	}
}

// TestArenaMaxDevicesLRU pins the bounded-arena contract: Put past the cap
// evicts the least-recently-used pooled device, and the survivors are the
// ones handed back out.
func TestArenaMaxDevicesLRU(t *testing.T) {
	mk := func(channels int) (sprinkler.Config, *sprinkler.Device) {
		cfg := smallConfig(sprinkler.SPK3)
		cfg.Channels = channels
		d, err := sprinkler.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return cfg, d
	}
	cfgA, devA := mk(1)
	cfgB, devB := mk(2)
	cfgC, devC := mk(4)

	arena := &sprinkler.DeviceArena{MaxDevices: 2}
	arena.Put(devA)
	arena.Put(devB)
	arena.Put(devC) // exceeds the cap: devA (oldest) must go
	if n := arena.Size(); n != 2 {
		t.Fatalf("bounded arena holds %d devices, want 2", n)
	}

	gotB, err := arena.Get(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if gotB != devB {
		t.Fatal("bounded arena evicted a recently used device")
	}
	gotC, err := arena.Get(cfgC)
	if err != nil {
		t.Fatal(err)
	}
	if gotC != devC {
		t.Fatal("most recently pooled device was not retained")
	}
	gotA, err := arena.Get(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	if gotA == devA {
		t.Fatal("evicted device resurfaced")
	}
	if n := arena.Size(); n != 0 {
		t.Fatalf("arena should be empty after checkouts, has %d", n)
	}

	// Recency updates on reuse: B used last (put later) survives over C.
	arena.Put(gotC)
	arena.Put(gotB)
	_, devD := mk(8)
	arena.Put(devD) // evicts gotC, the least recently put
	if got, err := arena.Get(cfgB); err != nil || got != gotB {
		t.Fatalf("recently used device evicted (err=%v)", err)
	}
	if got, err := arena.Get(cfgC); err != nil || got == gotC {
		t.Fatalf("LRU device not evicted (err=%v)", err)
	}
}
